// Anytime: sweeps the energy budget and shows why mixed candidate sets win
// (§3.5). With only traditional networks, tight budgets force a hard drop
// to a much smaller model; the anytime nest degrades smoothly; the mixed
// set gets the best of both — traditional accuracy when the budget is
// loose, anytime flexibility when it is tight.
//
//	go run ./examples/anytime
package main

import (
	"fmt"
	"log"

	"github.com/alert-project/alert"
)

func main() {
	plat := alert.CPU1()
	full := alert.ImageCandidates()
	var trad, anytime []*alert.Model
	for _, m := range full {
		if m.IsAnytime() {
			anytime = append(anytime, m)
		} else {
			trad = append(trad, m)
		}
	}

	const deadline = 0.200
	sets := []struct {
		name   string
		models []*alert.Model
	}{
		{"traditional-only", trad},
		{"anytime-only", anytime},
		{"mixed (ALERT)", full},
	}

	fmt.Printf("maximize accuracy under a 200ms deadline, sweeping the power budget (CPU1, memory contention):\n\n")
	fmt.Printf("%-10s", "budget")
	for _, s := range sets {
		fmt.Printf(" %18s", s.name)
	}
	fmt.Println()

	for _, watts := range []float64{12, 16, 20, 26, 34, 45} {
		fmt.Printf("%7.0f W ", watts)
		for _, set := range sets {
			rep, err := alert.Simulate(alert.SimConfig{
				Platform: plat,
				Models:   set.models,
				Spec: alert.Spec{
					Objective:    alert.MaximizeAccuracy,
					Deadline:     deadline,
					EnergyBudget: watts * deadline,
				},
				Contention: alert.MemoryContention,
				Inputs:     300,
				Seed:       31,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %11.2f%% acc.", 100*rep.AvgQuality)
			_ = rep
		}
		fmt.Println()
	}
}
