// Videopipeline: a motion-tracking-style camera pipeline (the paper's §1
// motivating workload) that must classify every frame before the next one
// arrives, under a power budget, while a memory-hungry job is repeatedly
// scheduled alongside it — the Figure 9 scenario.
//
// Watch the trace: when the burst hits, ALERT abandons the big traditional
// network for the anytime Depth-Nest and drops the power cap; when the
// burst ends it snaps back within an input or two.
//
//	go run ./examples/videopipeline
package main

import (
	"fmt"
	"log"

	"github.com/alert-project/alert"
)

func main() {
	plat := alert.CPU1()
	models := alert.ImageCandidates()

	// 30 fps camera: every frame must be out in ~33ms... too harsh for the
	// biggest model on a laptop, so the pipeline runs at 10 fps with a
	// 100 ms frame budget and a 30 W power envelope.
	const deadline = 0.100
	const powerEnvelopeW = 30
	spec := alert.Spec{
		Objective:    alert.MaximizeAccuracy,
		Deadline:     deadline,
		EnergyBudget: powerEnvelopeW * deadline,
	}

	const frames = 150
	burst := alert.Burst{Start: 40, End: 110, Scenario: alert.MemoryContention}

	var lastModel string
	rep, err := alert.Simulate(alert.SimConfig{
		Platform: plat,
		Models:   models,
		Spec:     spec,
		Bursts:   []alert.Burst{burst},
		Inputs:   frames,
		Seed:     11,
		Trace: func(s alert.TraceSample) {
			// Print transitions and a sparse heartbeat rather than all 150
			// frames.
			if s.ModelName != lastModel || s.Input%25 == 0 {
				mark := " "
				if s.Contention {
					mark = "*"
				}
				fmt.Printf("frame %3d %s %-16s cap=%4.1fW latency=%5.1fms accuracy=%.3f\n",
					s.Input, mark, s.ModelName, s.Decision.CapW, 1000*s.Latency, s.Quality)
				lastModel = s.ModelName
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%d frames, burst on [%d,%d): avg accuracy %.1f%%, avg power %.1fW, misses %.1f%%\n",
		rep.Inputs, burst.Start, burst.End,
		100*rep.AvgQuality, rep.AvgEnergy/deadline, 100*rep.DeadlineMissRate)
}
