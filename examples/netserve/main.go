// Netserve: host the ALERT network serving front end on a loopback port
// and drive it through the typed client — decide → observe round trips,
// a batched dispatch, stream listing/eviction, and a graceful drain.
// This is cmd/alertserve and client/ in one self-contained process.
//
//	go run ./examples/netserve
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"github.com/alert-project/alert"
	"github.com/alert-project/alert/client"
	"github.com/alert-project/alert/internal/netserve"
)

func main() {
	// The serving stack: shared decision engine + sharded stream table
	// (alert.Server), wrapped by the HTTP front end with a bounded
	// admission gate.
	srv, err := alert.NewServer(alert.CPU1(), alert.ImageCandidates(), alert.ServerOptions{Shards: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	front := netserve.New(srv, netserve.Config{MaxInflight: 64, MaxQueue: 256})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: front}
	go hs.Serve(ln)
	defer hs.Close()
	fmt.Printf("front end listening on %s\n", ln.Addr())

	c, err := client.New("http://"+ln.Addr().String(), client.Options{MaxRetries: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	spec := alert.Spec{Objective: alert.MinimizeEnergy, Deadline: 0.120, AccuracyGoal: 0.93}

	// One stream's decide → execute → observe loop over the wire. The
	// feedback (latency 1.3x the prediction) teaches the stream's server-
	// side Kalman filter that its environment runs slow.
	for i := 0; i < 50; i++ {
		d, est, err := c.Decide(ctx, 1, spec)
		if err != nil {
			log.Fatal(err)
		}
		err = c.Observe(ctx, 1, alert.Feedback{
			Decision:       d,
			Latency:        est.LatMean * 1.3,
			CompletedStage: -1,
			IdlePowerW:     5,
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// A batched dispatch across many streams: one HTTP request, one
	// decision per (stream, spec), results in request order.
	var b client.Batch
	for stream := 2; stream < 10; stream++ {
		b.Add(stream, spec)
	}
	res, err := b.Flush(ctx, c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch of %d served; stream 2 chose model %d at %.1f W\n",
		len(res), res[0].Decision.Model, res[0].Decision.CapW)

	ids, err := c.Streams(ctx)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("live streams: %v\n", ids)
	fmt.Printf("serve: %s\n", stats.Serve)
	fmt.Printf("net:   %s\n", stats.Net)

	// Evict the contended stream, then drain: new requests would now get
	// 503 + Retry-After while in-flight ones finish.
	if err := c.EvictStream(ctx, 1); err != nil {
		log.Fatal(err)
	}
	dctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := front.Drain(dctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained cleanly")
}
