// Translation: simultaneous-interpretation-style sentence prediction (the
// paper's §1 NLP workload). All words of a sentence share one sentence-wide
// deadline, so a slow word steals budget from every word after it — the
// goal-adjustment path of §3.2 step 2. ALERT compensates per word; a naive
// fixed per-word deadline does not.
//
//	go run ./examples/translation
package main

import (
	"fmt"
	"log"

	"github.com/alert-project/alert"
)

func main() {
	plat := alert.CPU1()
	models := alert.SentenceCandidates()

	// Interpretation must keep up with speech: ~2-4 words/second budget
	// (the paper cites 2-4 s per sentence). Per-word budget: 60 ms.
	spec := alert.Spec{
		Objective:    alert.MinimizeEnergy,
		Deadline:     0.060,
		AccuracyGoal: 0.66,
	}

	run := func(contention alert.Contention, label string) {
		var slowWords, recovered int
		rep, err := alert.Simulate(alert.SimConfig{
			Platform:   plat,
			Models:     models,
			Spec:       spec,
			Contention: contention,
			Inputs:     2000, // ~95 sentences
			Seed:       23,
			Trace: func(s alert.TraceSample) {
				// A "slow word" consumed over 1.5x its share; the next
				// words run against a tightened goal.
				if s.Latency > 1.5*spec.Deadline {
					slowWords++
				} else if s.DeadlineMet {
					recovered++
				}
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		ppl := alert.PerplexityFromQuality(rep.AvgQuality)
		fmt.Printf("%-8s: %d words, avg %.1fms/word, %.2fJ/word, perplexity %.0f, misses %.1f%%, slow words %d\n",
			label, rep.Inputs, 1000*rep.AvgLatency, rep.AvgEnergy, ppl,
			100*rep.DeadlineMissRate, slowWords)
	}

	fmt.Println("sentence prediction with shared per-sentence deadlines (60ms/word):")
	run(alert.NoContention, "quiet")
	run(alert.ComputeContention, "compute")
	run(alert.MemoryContention, "memory")
}
