// Quickstart: build an ALERT scheduler, ask it for decisions, feed back
// measurements, and run a full simulated deployment.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/alert-project/alert"
)

func main() {
	// A scheduler manages one inference task on one platform. Here: the
	// paper's image-classification candidate set (five Sparse ResNets plus
	// an anytime Depth-Nest) on the CPU1 laptop.
	plat := alert.CPU1()
	sched, err := alert.NewScheduler(plat, alert.ImageCandidates(), alert.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Requirement: finish each frame within 120 ms and deliver at least
	// 93 % accuracy, spending as little energy as possible (Eq. 2).
	spec := alert.Spec{
		Objective:    alert.MinimizeEnergy,
		Deadline:     0.120,
		AccuracyGoal: 0.93,
	}

	// The decide/observe loop is the whole integration surface. In a real
	// deployment the latency and idle power come from clocks and RAPL;
	// here we fake a stable environment 10% slower than the profile.
	fmt.Println("manual decide/observe loop:")
	for i := 0; i < 5; i++ {
		mu, _ := sched.XiEstimate()
		d, est := sched.Decide(spec)
		m := sched.Models()[d.Model]
		// est.LatMean is µ·t_prof for the executed portion, so t_prof is
		// recoverable; pretend the environment runs at ξ = 1.10.
		measured := 1.10 * est.LatMean / max(mu, 1e-9)
		sched.Observe(alert.Feedback{
			Decision:       d,
			Latency:        measured,
			CompletedStage: len(m.Stages) - 1,
			IdlePowerW:     6,
		})
		muPost, sigma := sched.XiEstimate()
		fmt.Printf("  input %d: %-16s @ %5.1fW  predicted %.1fms (Pr[deadline]=%.3f)  ξ→N(%.3f, %.3f)\n",
			i, m.Name, d.CapW, 1000*est.LatMean, est.PrDeadline, muPost, sigma)
	}

	// Or let the built-in simulator drive the loop over a dynamic
	// environment with a memory-hungry co-runner.
	rep, err := alert.Simulate(alert.SimConfig{
		Platform:   plat,
		Models:     alert.ImageCandidates(),
		Spec:       spec,
		Contention: alert.MemoryContention,
		Inputs:     400,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated deployment under memory contention:\n")
	fmt.Printf("  %d inputs: avg latency %.1fms, avg energy %.2fJ, avg accuracy %.1f%%, deadline misses %.1f%%\n",
		rep.Inputs, 1000*rep.AvgLatency, rep.AvgEnergy, 100*rep.AvgQuality, 100*rep.DeadlineMissRate)
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
