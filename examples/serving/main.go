// Serving: drive many concurrent inference streams through alert.Server —
// one shared decision engine plus a per-stream session (private Kalman
// filter state) in a sharded stream table — then print per-stream slowdown
// estimates and the server's throughput counters.
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"log"
	"sync"

	"github.com/alert-project/alert"
)

func main() {
	// Four shards: stream s pins to shard s mod 4 for FIFO ordering, but
	// every stream keeps its own session — its own Kalman filter state —
	// so the lightly loaded and contended streams below learn independent
	// slowdown estimates, exactly as dedicated Schedulers would.
	plat := alert.CPU1()
	srv, err := alert.NewServer(plat, alert.ImageCandidates(), alert.ServerOptions{Shards: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	spec := alert.Spec{
		Objective:    alert.MinimizeEnergy,
		Deadline:     0.120,
		AccuracyGoal: 0.93,
	}

	// Eight client streams in different environments: even streams run
	// near the profile (xi ~ 1.05), odd streams are heavily contended
	// (xi ~ 1.6). Each shard's filter should learn its own streams'
	// slowdown without cross-talk.
	const streams, inputs = 8, 200
	var wg sync.WaitGroup
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func(stream int) {
			defer wg.Done()
			xi := 1.05
			if stream%2 == 1 {
				xi = 1.6
			}
			for i := 0; i < inputs; i++ {
				d, _ := srv.Decide(stream, spec)
				// Stand-in for running the model: latency is the profiled
				// time at the decided cap scaled by the stream's
				// environment slowdown.
				measured := xi * srv.Models()[d.Model].RefLatency / plat.Speed(d.CapW)
				srv.Observe(stream, alert.Feedback{
					Decision: d, Latency: measured, CompletedStage: -1, IdlePowerW: 5,
				})
			}
		}(s)
	}
	wg.Wait()

	// A batched dispatch: one decision for every stream in a single call,
	// results in request order.
	reqs := make([]alert.BatchRequest, streams)
	for i := range reqs {
		reqs[i] = alert.BatchRequest{Stream: i, Spec: spec}
	}
	fmt.Println("stream  xi-estimate  batched decision")
	for i, r := range srv.DecideBatch(reqs) {
		mu, sigma := srv.XiEstimate(i)
		fmt.Printf("%4d    %.3f±%.3f  model=%d cap=%.0fW stop=%.3fs\n",
			i, mu, sigma, r.Decision.Model, r.Decision.CapW, r.Decision.PlannedStop)
	}
	fmt.Printf("\nshards=%d %s\n", srv.Shards(), srv.Stats())
}
