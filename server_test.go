package alert

import (
	"sync"
	"testing"
)

func testSpec() Spec {
	return Spec{Objective: MinimizeEnergy, Deadline: 0.15, AccuracyGoal: 0.9}
}

// TestServerMatchesScheduler drives the same feedback script through a
// one-shard Server and a plain Scheduler and requires identical decisions —
// the sharding layer must not change per-stream semantics.
func TestServerMatchesScheduler(t *testing.T) {
	sched, err := NewScheduler(CPU1(), ImageCandidates(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(CPU1(), ImageCandidates(), ServerOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	spec := testSpec()
	for i := 0; i < 40; i++ {
		want, _ := sched.Decide(spec)
		got, _ := srv.Decide(0, spec)
		if got != want {
			t.Fatalf("input %d: server decision %+v, scheduler %+v", i, got, want)
		}
		lat := 1.1 * srv.prof.At(want.Model, want.Cap)
		fb := Feedback{Decision: want, Latency: lat, CompletedStage: -1, IdlePowerW: 5}
		sched.Observe(fb)
		srv.Observe(0, fb)
	}
	mu, _ := sched.XiEstimate()
	muSrv, _ := srv.XiEstimate(0)
	if mu != muSrv {
		t.Errorf("xi diverged: scheduler %.6f, server %.6f", mu, muSrv)
	}
}

// TestServerConcurrentStreams hammers a multi-shard server from many
// goroutines; run under -race this is the data-race regression test.
func TestServerConcurrentStreams(t *testing.T) {
	srv, err := NewServer(CPU1(), ImageCandidates(), ServerOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	for s := 0; s < 8; s++ {
		wg.Add(1)
		go func(stream int) {
			defer wg.Done()
			spec := testSpec()
			for i := 0; i < 30; i++ {
				d, est := srv.Decide(stream, spec)
				if est.LatMean <= 0 {
					t.Errorf("stream %d: non-positive latency estimate", stream)
					return
				}
				srv.Observe(stream, Feedback{
					Decision: d, Latency: d.CapW * 0.001, CompletedStage: -1,
				})
			}
		}(s)
	}
	wg.Wait()

	stats := srv.Stats()
	if stats.Decisions != 8*30 {
		t.Errorf("stats decisions = %d, want %d", stats.Decisions, 8*30)
	}
}

// TestServerDecideBatch checks batched dispatch end-to-end through the
// public API.
func TestServerDecideBatch(t *testing.T) {
	srv, err := NewServer(CPU1(), ImageCandidates(), ServerOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	reqs := make([]BatchRequest, 12)
	for i := range reqs {
		reqs[i] = BatchRequest{Stream: i % 3, Spec: testSpec()}
	}
	res := srv.DecideBatch(reqs)
	if len(res) != len(reqs) {
		t.Fatalf("got %d results, want %d", len(res), len(reqs))
	}
	for i, r := range res {
		if r.Stream != reqs[i].Stream {
			t.Errorf("result %d: stream %d, want %d", i, r.Stream, reqs[i].Stream)
		}
		if r.Decision.CapW != srv.PowerCaps()[r.Decision.Cap] {
			t.Errorf("result %d: CapW %.1f not the cap-ladder value", i, r.Decision.CapW)
		}
	}
	if srv.DecideBatch(nil) != nil {
		t.Error("empty batch should return nil")
	}
	if srv.Shards() != 2 {
		t.Errorf("Shards = %d, want 2", srv.Shards())
	}
	if len(srv.Models()) == 0 {
		t.Error("Models() empty")
	}
}

// TestServerStreamLifecycle pins the public session lifecycle: sessions
// appear in Streams() on first use, EvictStream releases them, and a
// returning stream restarts from the prior — even when several streams
// share one shard.
func TestServerStreamLifecycle(t *testing.T) {
	srv, err := NewServer(CPU1(), ImageCandidates(), ServerOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	spec := testSpec()
	for stream := 0; stream < 5; stream++ {
		d, _ := srv.Decide(stream, spec)
		lat := 2.0 * srv.prof.At(d.Model, d.Cap)
		srv.Observe(stream, Feedback{Decision: d, Latency: lat, CompletedStage: -1, IdlePowerW: 5})
	}
	if got := srv.Streams(); got != 5 {
		t.Fatalf("Streams() = %d after 5 streams on 2 shards, want 5", got)
	}
	if st := srv.Stats(); st.Streams != 5 || st.SessionBytes <= 0 {
		t.Errorf("stats gauges (streams=%d, session_bytes=%d) implausible", st.Streams, st.SessionBytes)
	}

	if mu, _ := srv.XiEstimate(3); mu <= 1.0 {
		t.Errorf("stream 3 xi mean %.3f after 2x-slowdown feedback, want > 1", mu)
	}
	srv.EvictStream(3)
	if got := srv.Streams(); got != 4 {
		t.Fatalf("Streams() = %d after eviction, want 4", got)
	}
	if mu, _ := srv.XiEstimate(3); mu != 1.0 {
		t.Errorf("post-eviction xi mean %.3f, want the 1.0 prior", mu)
	}
}

// TestServerDefaults exercises the zero-options path and option validation.
func TestServerDefaults(t *testing.T) {
	srv, err := NewServer(CPU1(), ImageCandidates(), ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if srv.Shards() < 1 {
		t.Errorf("default Shards = %d, want >= 1", srv.Shards())
	}
	srv.Close()

	if _, err := NewServer(CPU1(), ImageCandidates(), ServerOptions{Options: Options{Prth: 1.5}}); err == nil {
		t.Error("Prth 1.5 should be rejected")
	}
}
