package main

import (
	"net"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/alert-project/alert"
	"github.com/alert-project/alert/internal/netserve"
)

func testConfig() loadConfig {
	cfg, err := parseFlags([]string{
		"-scenario", "bursty", "-streams", "3", "-inputs", "80", "-seed", "5",
	})
	if err != nil {
		panic(err)
	}
	return cfg
}

// TestLoadDeterminism is the acceptance guarantee: replaying the same
// scenario with the same seed yields byte-identical per-stream decision
// sequences, independent of goroutine scheduling.
func TestLoadDeterminism(t *testing.T) {
	a, err := runLoad(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := runLoad(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.DecisionSeqs) != len(b.DecisionSeqs) {
		t.Fatalf("stream counts differ: %d vs %d", len(a.DecisionSeqs), len(b.DecisionSeqs))
	}
	for s := range a.DecisionSeqs {
		if a.DecisionSeqs[s] != b.DecisionSeqs[s] {
			t.Errorf("stream %d decision sequences differ", s)
		}
		if a.DecisionSeqs[s] == "" {
			t.Errorf("stream %d produced no decisions", s)
		}
	}
	if a.SLOAttainment != b.SLOAttainment || a.MissRate != b.MissRate ||
		a.P50 != b.P50 || a.P95 != b.P95 || a.P99 != b.P99 {
		t.Error("aggregate metrics differ between identical runs")
	}
}

// TestRecordReplay closes the loop: a trace recorded by one run and
// replayed by another must reproduce the original decision sequences
// exactly — the trace file carries everything environment-shaped.
func TestRecordReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")

	cfg := testConfig()
	original, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := original.Trace.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	replayCfg := cfg
	replayCfg.scenarioName = ""
	replayCfg.replayPath = path
	replayed, err := runLoad(replayCfg)
	if err != nil {
		t.Fatal(err)
	}
	for s := range original.DecisionSeqs {
		if original.DecisionSeqs[s] != replayed.DecisionSeqs[s] {
			t.Errorf("stream %d: replayed decisions differ from the recorded run", s)
		}
	}
	if replayed.Trace.Scenario != original.Trace.Scenario {
		t.Errorf("replayed scenario %q, want %q", replayed.Trace.Scenario, original.Trace.Scenario)
	}
}

// TestReferenceScorerReplayIdentical is the load-generator leg of the
// decide-fast-path differential criterion: the same scenario replay must
// produce byte-identical per-stream decision sequences and aggregates
// whether the server's shard controllers use the optimized hot path or the
// naive reference scorer (-reference-scorer).
func TestReferenceScorerReplayIdentical(t *testing.T) {
	fast, err := runLoad(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if parsed, err := parseFlags([]string{"-reference-scorer"}); err != nil || !parsed.referenceScorer {
		t.Fatalf("-reference-scorer flag did not parse: %v", err)
	}
	refCfg := testConfig()
	refCfg.referenceScorer = true
	ref, err := runLoad(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	for s := range fast.DecisionSeqs {
		if fast.DecisionSeqs[s] != ref.DecisionSeqs[s] {
			t.Errorf("stream %d: fast-path decisions diverge from the reference scorer", s)
		}
	}
	if fast.SLOAttainment != ref.SLOAttainment || fast.MissRate != ref.MissRate ||
		fast.AvgEnergy != ref.AvgEnergy || fast.AvgQuality != ref.AvgQuality {
		t.Error("aggregate metrics diverge between fast and reference runs")
	}
}

// TestShardCountInvariance is the alertload-level differential criterion
// for the Engine/Session split: the same replay must produce byte-identical
// per-stream decision sequences whether every stream has a private shard or
// all streams are multiplexed onto a single shard's worker. With one shard,
// every stream's session lives on one goroutine and the cross-stream
// interleaving is maximally schedule-dependent — decisions must not care.
func TestShardCountInvariance(t *testing.T) {
	solo := testConfig()
	solo.shards = solo.streams // one stream per shard, the pre-session layout
	oneShard := testConfig()
	oneShard.shards = 1      // every stream on one worker
	defaults := testConfig() // 0 = one per CPU

	a, err := runLoad(solo)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runLoad(oneShard)
	if err != nil {
		t.Fatal(err)
	}
	c, err := runLoad(defaults)
	if err != nil {
		t.Fatal(err)
	}
	for s := range a.DecisionSeqs {
		if a.DecisionSeqs[s] != b.DecisionSeqs[s] {
			t.Errorf("stream %d: decisions differ between one-shard-per-stream and single-shard runs", s)
		}
		if a.DecisionSeqs[s] != c.DecisionSeqs[s] {
			t.Errorf("stream %d: decisions differ between explicit and default shard counts", s)
		}
	}
	if a.SLOAttainment != b.SLOAttainment || a.AvgEnergy != b.AvgEnergy || a.AvgQuality != b.AvgQuality {
		t.Error("aggregate metrics changed with the shard count")
	}
}

// startAlertserve stands up the network front end over a fresh
// alert.Server with alertload's default platform/task (CPU1/image), like a
// running cmd/alertserve.
func startAlertserve(t *testing.T, cfg netserve.Config) string {
	t.Helper()
	srv, err := alert.NewServer(alert.CPU1(), alert.ImageCandidates(), alert.ServerOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(netserve.New(srv, cfg))
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestAddrModeMatchesInProcess is the tentpole acceptance criterion: the
// same replay driven over loopback sockets against a live network front
// end produces byte-identical per-stream decision sequences to the
// in-process alert.Server path — the HTTP/JSON wire carries every float64
// exactly, and per-stream FIFO survives the network hop.
func TestAddrModeMatchesInProcess(t *testing.T) {
	inProc, err := runLoad(testConfig())
	if err != nil {
		t.Fatal(err)
	}

	url := startAlertserve(t, netserve.Config{})
	remoteCfg := testConfig()
	remoteCfg.addr = url
	remote, err := runLoad(remoteCfg)
	if err != nil {
		t.Fatal(err)
	}
	for s := range inProc.DecisionSeqs {
		if inProc.DecisionSeqs[s] != remote.DecisionSeqs[s] {
			t.Errorf("stream %d: network decisions diverge from in-process", s)
		}
		if remote.DecisionSeqs[s] == "" {
			t.Errorf("stream %d produced no decisions over the network", s)
		}
	}
	if inProc.SLOAttainment != remote.SLOAttainment || inProc.MissRate != remote.MissRate ||
		inProc.AvgEnergy != remote.AvgEnergy || inProc.AvgQuality != remote.AvgQuality {
		t.Error("aggregate metrics diverge between in-process and network runs")
	}

	// A second network run against the SAME server must match too: the
	// up-front eviction resets the driven streams, so server history does
	// not leak into a replay.
	again, err := runLoad(remoteCfg)
	if err != nil {
		t.Fatal(err)
	}
	for s := range inProc.DecisionSeqs {
		if inProc.DecisionSeqs[s] != again.DecisionSeqs[s] {
			t.Errorf("stream %d: second network run diverges (eviction did not reset the stream)", s)
		}
	}
}

// TestAddrModePlatformMismatch: driving a server profiled on a different
// platform must fail loudly at preflight, not silently compare decisions
// made against the wrong profile table.
func TestAddrModePlatformMismatch(t *testing.T) {
	srv, err := alert.NewServer(alert.GPU(), alert.ImageCandidates(), alert.ServerOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(netserve.New(srv, netserve.Config{}))
	t.Cleanup(ts.Close)

	cfg := testConfig()
	cfg.addr = ts.URL
	if _, err := runLoad(cfg); err == nil || !strings.Contains(err.Error(), "platform") {
		t.Fatalf("platform mismatch must fail preflight, got %v", err)
	}
}

// TestAddrModeUnderOverload replays through a deliberately tiny admission
// gate: the client rides out the 429s by retrying, every request is
// eventually served, and the decision sequences stay byte-identical —
// overload sheds cleanly without corrupting any stream.
func TestAddrModeUnderOverload(t *testing.T) {
	inProc, err := runLoad(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	url := startAlertserve(t, netserve.Config{MaxInflight: 1, MaxQueue: 1, RetryAfter: time.Millisecond})
	remoteCfg := testConfig()
	remoteCfg.addr = url
	remote, err := runLoad(remoteCfg)
	if err != nil {
		t.Fatal(err)
	}
	for s := range inProc.DecisionSeqs {
		if inProc.DecisionSeqs[s] != remote.DecisionSeqs[s] {
			t.Errorf("stream %d: decisions diverge under admission pressure", s)
		}
	}
}

// startBinaryAlertserve is startAlertserve plus a binwire listener on the
// same front end, returning the binary server so tests can assert traffic
// really rode it.
func startBinaryAlertserve(t *testing.T, cfg netserve.Config) (string, *netserve.BinaryServer) {
	t.Helper()
	srv, err := alert.NewServer(alert.CPU1(), alert.ImageCandidates(), alert.ServerOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	fe := netserve.New(srv, cfg)
	ts := httptest.NewServer(fe)
	t.Cleanup(ts.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	bs := netserve.NewBinary(fe, ln, netserve.BinaryConfig{})
	go bs.Serve()
	t.Cleanup(func() { bs.Close() })
	return ts.URL, bs
}

// TestWireBinaryMatchesInProcess mirrors TestAddrModeMatchesInProcess over
// the binary transport: -wire=binary must produce byte-identical decision
// sequences to the in-process path, with the data plane actually riding
// the binwire listener rather than quietly falling back to JSON.
func TestWireBinaryMatchesInProcess(t *testing.T) {
	inProc, err := runLoad(testConfig())
	if err != nil {
		t.Fatal(err)
	}

	url, bs := startBinaryAlertserve(t, netserve.Config{})
	remoteCfg := testConfig()
	remoteCfg.addr = url
	remoteCfg.wire = "binary"
	remote, err := runLoad(remoteCfg)
	if err != nil {
		t.Fatal(err)
	}
	for s := range inProc.DecisionSeqs {
		if inProc.DecisionSeqs[s] != remote.DecisionSeqs[s] {
			t.Errorf("stream %d: binary-wire decisions diverge from in-process", s)
		}
		if remote.DecisionSeqs[s] == "" {
			t.Errorf("stream %d produced no decisions over the binary wire", s)
		}
	}
	if snap := bs.BinStats(); snap.Decides == 0 || snap.Observes == 0 {
		t.Errorf("binary listener counters %+v: the run fell back to JSON", snap)
	}
}

// TestWireBinaryUnderOverload mirrors TestAddrModeUnderOverload: the same
// tiny admission gate, but the 429-shaped error frames and Retry-After
// hints ride the binary protocol. Every request must still eventually be
// served with byte-identical decisions.
func TestWireBinaryUnderOverload(t *testing.T) {
	inProc, err := runLoad(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	url, bs := startBinaryAlertserve(t, netserve.Config{MaxInflight: 1, MaxQueue: 1, RetryAfter: time.Millisecond})
	remoteCfg := testConfig()
	remoteCfg.addr = url
	remoteCfg.wire = "binary"
	remote, err := runLoad(remoteCfg)
	if err != nil {
		t.Fatal(err)
	}
	for s := range inProc.DecisionSeqs {
		if inProc.DecisionSeqs[s] != remote.DecisionSeqs[s] {
			t.Errorf("stream %d: decisions diverge under admission pressure on the binary wire", s)
		}
	}
	if snap := bs.BinStats(); snap.Decides == 0 {
		t.Errorf("binary listener counters %+v: the run fell back to JSON", snap)
	}
}

// TestWireFlagErrors pins -wire validation: unknown wires and wires with
// nothing to carry fail at parse time, and a binary run against a server
// with no binary listener fails at preflight instead of silently driving
// JSON.
func TestWireFlagErrors(t *testing.T) {
	if _, err := parseFlags([]string{"-wire", "carrier-pigeon", "-addr", "h:1"}); err == nil {
		t.Error("unknown -wire must error")
	}
	if _, err := parseFlags([]string{"-wire", "binary"}); err == nil {
		t.Error("-wire=binary without -addr/-addrs/-chaos must error")
	}
	url := startAlertserve(t, netserve.Config{})
	cfg := testConfig()
	cfg.addr = url
	cfg.wire = "binary"
	if _, err := runLoad(cfg); err == nil || !strings.Contains(err.Error(), "binary listener") {
		t.Fatalf("binary wire against a JSON-only server = %v, want a preflight error naming the missing listener", err)
	}
}

// TestDecisionsOut: the -decisions-out artifact carries exactly the
// per-stream sequences the report holds.
func TestDecisionsOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions.txt")
	var out strings.Builder
	if err := run([]string{
		"-scenario", "bursty", "-streams", "2", "-inputs", "40", "-seed", "5",
		"-decisions-out", path,
	}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "decision sequences written") {
		t.Errorf("missing decisions-out confirmation:\n%s", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("decisions file has %d lines, want 2:\n%s", len(lines), data)
	}
	for s, line := range lines {
		if !strings.HasPrefix(line, "stream "+string(rune('0'+s))+": ") {
			t.Errorf("line %d malformed: %q", s, line)
		}
		if len(line) < 20 {
			t.Errorf("line %d suspiciously short: %q", s, line)
		}
	}
}

// TestStreamsAreIndependent: streams never share session state, so adding
// streams must not perturb an existing stream's decisions.
func TestStreamsAreIndependent(t *testing.T) {
	small := testConfig()
	small.streams = 2
	big := testConfig()
	big.streams = 4

	a, err := runLoad(small)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runLoad(big)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < small.streams; s++ {
		if a.DecisionSeqs[s] != b.DecisionSeqs[s] {
			t.Errorf("stream %d decisions changed when fleet grew", s)
		}
	}
}

// TestRunSmoke drives the CLI end-to-end, including -record.
func TestRunSmoke(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rec.json")
	var out strings.Builder
	err := run([]string{
		"-scenario", "thermal", "-streams", "2", "-inputs", "60", "-record", path,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"SLO attainment", "deadline-miss", "p50", "p95", "p99", "trace recorded"} {
		if !strings.Contains(got, want) {
			t.Errorf("output lacks %q:\n%s", want, got)
		}
	}

	var replay strings.Builder
	if err := run([]string{"-replay", path, "-streams", "2", "-inputs", "60"}, &replay); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(replay.String(), "scenario=thermal") {
		t.Errorf("replay lost the scenario name:\n%s", replay.String())
	}
	if strings.Contains(replay.String(), "note:") {
		t.Errorf("matching-seed replay should not warn:\n%s", replay.String())
	}

	// A replay under a different -seed cannot reproduce the recording's
	// decisions; the banner must say which seed ran and point at the
	// recording's.
	var mismatched strings.Builder
	if err := run([]string{"-replay", path, "-streams", "2", "-inputs", "60", "-seed", "99"}, &mismatched); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(mismatched.String(), "seed=99") {
		t.Errorf("banner must report the driving seed:\n%s", mismatched.String())
	}
	if !strings.Contains(mismatched.String(), "note: replayed trace was recorded with seed=1") {
		t.Errorf("mismatched-seed replay must warn:\n%s", mismatched.String())
	}
}

// TestClosedLoopMode forces closed-loop pacing: with no queueing the
// response time equals the service time, so misses can only come from slow
// service, never arrival bursts.
func TestClosedLoopMode(t *testing.T) {
	open := testConfig()
	open.mode = "open"
	closed := testConfig()
	closed.mode = "closed"

	or, err := runLoad(open)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := runLoad(closed)
	if err != nil {
		t.Fatal(err)
	}
	// Decisions are driven by the environment, not the arrival process.
	for s := range or.DecisionSeqs {
		if or.DecisionSeqs[s] != cr.DecisionSeqs[s] {
			t.Errorf("stream %d: arrival mode changed decisions", s)
		}
	}
	// Queueing can only hurt: open-loop p99 response >= closed-loop p99.
	if or.P99 < cr.P99-1e-12 {
		t.Errorf("open-loop p99 %g below closed-loop %g", or.P99, cr.P99)
	}
}

func TestFlagErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Error("unknown flag must error")
	}
	if err := run([]string{"-scenario", "nope"}, &out); err == nil {
		t.Error("unknown scenario must error")
	}
	if err := run([]string{"-streams", "0"}, &out); err == nil {
		t.Error("zero streams must error")
	}
	if err := run([]string{"-mode", "sideways"}, &out); err == nil {
		t.Error("bad mode must error")
	}
	if err := run([]string{"-replay", "/does/not/exist.json"}, &out); err == nil {
		t.Error("missing replay file must error")
	}
}

// TestAddrsModeMatchesInProcess is the cluster acceptance criterion: the
// same replay routed across a 3-node cluster — with every stream
// live-migrated to the next member every 25 inputs — produces byte-
// identical per-stream decision sequences to the single in-process
// server. The session snapshot wire is canonical binary, so a stream
// served by three nodes in sequence is indistinguishable (decision-wise)
// from one served by a single process.
func TestAddrsModeMatchesInProcess(t *testing.T) {
	inProc, err := runLoad(testConfig())
	if err != nil {
		t.Fatal(err)
	}

	urls := []string{
		startAlertserve(t, netserve.Config{NodeID: "a"}),
		startAlertserve(t, netserve.Config{NodeID: "b"}),
		startAlertserve(t, netserve.Config{NodeID: "c"}),
	}
	clusterCfg := testConfig()
	clusterCfg.addrs = strings.Join(urls, ",")
	clusterCfg.migrateEvery = 25
	clustered, err := runLoad(clusterCfg)
	if err != nil {
		t.Fatal(err)
	}
	for s := range inProc.DecisionSeqs {
		if inProc.DecisionSeqs[s] != clustered.DecisionSeqs[s] {
			t.Errorf("stream %d: clustered decisions diverge from in-process", s)
		}
		if clustered.DecisionSeqs[s] == "" {
			t.Errorf("stream %d produced no decisions across the cluster", s)
		}
	}
	if inProc.SLOAttainment != clustered.SLOAttainment || inProc.MissRate != clustered.MissRate ||
		inProc.AvgEnergy != clustered.AvgEnergy || inProc.AvgQuality != clustered.AvgQuality {
		t.Error("aggregate metrics diverge between in-process and clustered runs")
	}
	// With 80 inputs and a 25-input cadence every stream migrated at least
	// once, so the cluster must have performed real exports and imports.
	if clustered.ServerStats.StreamExports == 0 || clustered.ServerStats.StreamImports == 0 {
		t.Errorf("no migrations recorded: exports=%d imports=%d",
			clustered.ServerStats.StreamExports, clustered.ServerStats.StreamImports)
	}
	// A second clustered run against the SAME nodes must match too: the
	// preflight evicts the driven streams on every member, wherever their
	// sessions ended up.
	again, err := runLoad(clusterCfg)
	if err != nil {
		t.Fatal(err)
	}
	for s := range inProc.DecisionSeqs {
		if inProc.DecisionSeqs[s] != again.DecisionSeqs[s] {
			t.Errorf("stream %d: second clustered run diverges (cluster-wide eviction failed)", s)
		}
	}
}

// TestAddrsFlagErrors: the cluster flags compose safely.
func TestAddrsFlagErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-addr", "x:1", "-addrs", "x:1,y:2"}, &out); err == nil {
		t.Error("-addr with -addrs must error")
	}
	if err := run([]string{"-migrate-every", "10"}, &out); err == nil {
		t.Error("-migrate-every without -addrs must error")
	}
	if err := run([]string{"-addrs", "x:1", "-migrate-every", "-1"}, &out); err == nil {
		t.Error("negative -migrate-every must error")
	}
	if err := run([]string{"-addrs", " , "}, &out); err == nil {
		t.Error("empty -addrs list must error")
	}
	if err := run([]string{"-addrs", "x:1", "-shards", "4"}, &out); err == nil {
		t.Error("-shards with -addrs must error")
	}
}

// TestChaosSmoke runs the chaos mode end-to-end through run(): a 3-node
// fleet with a graceful and a checkpoint-aligned hard kill/restart cycle,
// recorded to a fleet trace. The run must come back green, the recording
// must be byte-identical across same-seed invocations (the chaos-schedule
// determinism CI pins), and replaying it must reproduce the schedule.
func TestChaosSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node chaos run")
	}
	dir := t.TempDir()
	f1 := filepath.Join(dir, "f1.json")
	f2 := filepath.Join(dir, "f2.json")
	args := []string{"-chaos", "-streams", "4", "-inputs", "36", "-kill-every", "12", "-seed", "9"}

	var out strings.Builder
	if err := run(append(args, "-fleet-record", f1), &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"all invariants held", "kill", "restart", "fleet trace recorded"} {
		if !strings.Contains(got, want) {
			t.Errorf("output lacks %q:\n%s", want, got)
		}
	}

	var out2 strings.Builder
	if err := run(append(args, "-fleet-record", f2), &out2); err != nil {
		t.Fatalf("%v\n%s", err, out2.String())
	}
	b1, err := os.ReadFile(f1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(f2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Error("same seed compiled different fleet traces")
	}

	var replay strings.Builder
	if err := run([]string{"-chaos", "-fleet", f1}, &replay); err != nil {
		t.Fatalf("%v\n%s", err, replay.String())
	}
	if !strings.Contains(replay.String(), "all invariants held") {
		t.Errorf("fleet replay not green:\n%s", replay.String())
	}
	if !strings.Contains(replay.String(), "replaying fleet") {
		t.Errorf("replay banner missing:\n%s", replay.String())
	}
}

// TestChaosBinaryWire runs the unmanaged self-healing drill with the data
// plane on the binary transport: kills sever binwire connections, the
// cluster absorbs them on its own, and every invariant still holds.
func TestChaosBinaryWire(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node chaos run")
	}
	var out strings.Builder
	err := run([]string{
		"-chaos", "-unmanaged", "-wire", "binary",
		"-streams", "4", "-nodes", "3", "-inputs", "36", "-kill-every", "18", "-seed", "9",
	}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"binary transport", "all invariants held", "unmanaged kill"} {
		if !strings.Contains(got, want) {
			t.Errorf("output lacks %q:\n%s", want, got)
		}
	}
}

// TestChaosFlagErrors: the chaos flag set composes with nothing that drives
// a remote server or rewires the in-process controller.
func TestChaosFlagErrors(t *testing.T) {
	var out strings.Builder
	for _, args := range [][]string{
		{"-chaos", "-addr", "127.0.0.1:1"},
		{"-chaos", "-addrs", "127.0.0.1:1"},
		{"-chaos", "-replay", "x.json"},
		{"-chaos", "-record", "x.json"},
		{"-chaos", "-reference-scorer"},
		{"-chaos", "-decisions-out", "x.txt"},
		{"-chaos", "-nodes", "1"},
		{"-chaos", "-platform", "GPU"},
		{"-chaos", "-task", "sentence"},
		{"-nodes", "5"},
		{"-kill-every", "10"},
		{"-fleet", "x.json"},
		{"-fleet-record", "x.json"},
		{"-chaos", "-fleet", "/does/not/exist.json"},
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("%v accepted, want error", args)
		}
	}
}
