// Command alertload is the scenario-driven load generator for the
// concurrent serving layer: it drives an alert.Server with many inference
// streams whose environment, arrival process, and requirement spec follow a
// compiled (or recorded) scenario trace, and reports SLO attainment,
// deadline-miss rate, and latency percentiles.
//
// Each stream runs the paper's decide → execute → observe loop against its
// own virtual-time simulation environment replaying the scenario trace;
// the Server multiplexes all streams across its shard pool. In open-loop
// mode requests arrive on the trace's arrival process and queue behind the
// stream's previous work (response time = queueing wait + service time);
// in closed-loop mode the next request is issued on completion.
//
// Usage:
//
//	alertload -scenario bursty -streams 8 -inputs 300        # built-in scenario
//	alertload -scenario thermal -record trace.json           # record the trace
//	alertload -replay trace.json                             # replay a recording
//	alertload -replay trace.json -addr 127.0.0.1:8372        # drive a live alertserve
//	alertload -replay trace.json -addr 127.0.0.1:8372 -wire=binary  # same, over binwire
//	alertload -addrs h1:8372,h2:8372,h3:8372 -migrate-every 50  # drive a cluster
//	alertload -chaos -nodes 3 -kill-every 12                 # chaos harness run
//	alertload -chaos -unmanaged -nodes 4 -kill-every 12      # self-healing drill
//	alertload -chaos -fleet fleet.json                       # replay a chaos schedule
//
// With -addr the same load is driven over the network against a running
// cmd/alertserve instead of an in-process server, through the typed client
// (client/) with per-stream connection reuse. The wire carries every
// float64 exactly, so -addr replays produce byte-identical per-stream
// decision sequences to the in-process path (pinned in main_test.go; the
// target streams are evicted first so the replay starts from fresh
// sessions). -decisions-out writes the per-stream sequences to a file,
// which is how CI diffs the two paths.
//
// -wire selects the remote transport: json (default) drives the HTTP API,
// binary upgrades the data plane onto the server's binwire listener
// (alertserve -binary-addr; preflight fails if the server does not
// advertise one). Decision sequences are byte-identical across wires —
// the same -decisions-out diff CI runs for -addr covers -wire=binary.
// With -chaos, -wire=binary gives every fleet node a binary listener and
// runs the whole failure drill over the binary transport.
//
// With -addrs the load is spread across a cluster of alertserves: streams
// route to members by consistent hashing (client/cluster), and
// -migrate-every N live-migrates each stream to the next member every N
// inputs — decision sequences stay byte-identical through every move
// because session snapshots ship in their canonical binary encoding.
//
// With -chaos the run becomes a fleet-scale failure drill instead of a load
// test: an in-process cluster of -nodes members is driven through a compiled
// scenario.FleetTrace — kill/restart cycles every -kill-every inputs, a flash
// crowd, byzantine clients — while internal/chaos machine-checks the serving
// invariants (no lost accepted requests, balanced gauges, single ownership,
// determinism vs a solo controller) continuously. -fleet-record writes the
// compiled FleetTrace; -fleet replays one (same bytes in, same schedule out,
// which is how CI pins chaos-schedule determinism). The exit status is the
// verdict: non-zero iff an invariant was violated.
//
// Replays are deterministic: the same trace and seed yield byte-identical
// per-stream decision sequences (verified in main_test.go) at ANY shard
// count — every stream owns its own session (filter state + decision
// cache) on the server's shared decision engine, so the scheduling-
// dependent interleaving of streams on a shard changes service order but
// never decisions. -shards therefore defaults to one worker per CPU and is
// purely a throughput knob.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"sync"
	"time"

	"github.com/alert-project/alert"
	"github.com/alert-project/alert/client"
	"github.com/alert-project/alert/client/cluster"
	"github.com/alert-project/alert/internal/chaos"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/metrics"
	"github.com/alert-project/alert/internal/scenario"
	"github.com/alert-project/alert/internal/sim"
	"github.com/alert-project/alert/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "alertload:", err)
		os.Exit(1)
	}
}

// loadConfig is the resolved invocation.
type loadConfig struct {
	scenarioName string
	replayPath   string
	recordPath   string
	platform     string
	task         string
	streams      int
	inputs       int
	seed         int64
	shards       int
	mode         string // "auto" | "open" | "closed"
	addr         string // non-empty: drive a live alertserve over the network
	addrs        string // non-empty: drive a cluster of alertserves with hash routing
	wire         string // "json" | "binary": transport for remote/chaos data planes
	migrateEvery int    // with addrs: migrate each stream every N inputs
	decisionsOut string // non-empty: write per-stream decision sequences here

	// chaos mode: drive an in-process fleet through failures instead of a
	// load test, with the invariant checker trailing.
	chaos        bool
	nodes        int    // fleet size
	killEvery    int    // kill a node every N inputs (0 = inputs/3)
	restartAfter int    // restart it N inputs later (0 = killEvery/2)
	unmanaged    bool   // hard kills only, absorbed by the cluster itself
	fleetPath    string // replay a recorded FleetTrace instead of compiling
	fleetRecord  string // record the compiled FleetTrace here
	adaptive     bool   // with -chaos: every node's gate adaptive + SLO-shedding

	// gate-compare mode: static vs adaptive admission head to head at
	// -overload × gate capacity (see gatecompare.go).
	gateCompare  bool
	overload     float64
	gateInflight int
	gateQueue    int
	serviceDelay time.Duration
	wallDeadline time.Duration

	objective      string
	deadlineFactor float64
	accuracy       float64
	budgetW        float64

	// referenceScorer swaps every shard controller onto the naive
	// pre-optimization scorer; replays are byte-identical either way
	// (pinned in main_test.go), so this exists for differential testing.
	referenceScorer bool
}

// streamResult is one stream's contribution to the report.
type streamResult struct {
	rec *metrics.Record
	// decisions is the stream's decision sequence, one compact token per
	// input — the replay-determinism artifact.
	decisions string
}

// loadReport aggregates a run for printing and for tests.
type loadReport struct {
	Trace    *scenario.Trace
	OpenLoop bool
	Streams  int
	Inputs   int
	// Seed is the -seed that drove stream noise in this run; it matches
	// Trace.Seed only when the trace was compiled by this invocation
	// (replays must pass the recording's seed to reproduce decisions).
	Seed int64

	SLOAttainment float64
	MissRate      float64
	P50, P95, P99 float64
	AvgEnergy     float64
	AvgQuality    float64
	ServerStats   alert.ServerStats

	// DecisionSeqs holds each stream's decision sequence, indexed by
	// stream id.
	DecisionSeqs []string
}

// run is main with injectable arguments and output, so the CLI is testable
// end-to-end without a subprocess.
func run(args []string, stdout io.Writer) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	if cfg.gateCompare {
		return runGateCompare(cfg, stdout)
	}
	if cfg.chaos {
		return runChaos(cfg, stdout)
	}
	if cfg.addr != "" {
		fmt.Fprintf(stdout, "driving remote server at %s wire=%s\n", cfg.addr, cfg.wire)
	}
	rep, err := runLoad(cfg)
	if err != nil {
		return err
	}
	if cfg.recordPath != "" {
		if err := rep.Trace.WriteFile(cfg.recordPath); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "trace recorded to %s (%d ticks)\n", cfg.recordPath, rep.Trace.Len())
	}
	if cfg.decisionsOut != "" {
		if err := writeDecisions(cfg.decisionsOut, rep.DecisionSeqs); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "decision sequences written to %s (%d streams)\n", cfg.decisionsOut, len(rep.DecisionSeqs))
	}
	mode := "closed"
	if rep.OpenLoop {
		mode = "open"
	}
	fmt.Fprintf(stdout, "scenario=%s platform=%s streams=%d inputs/stream=%d loop=%s seed=%d\n",
		rep.Trace.Scenario, rep.Trace.Platform, rep.Streams, rep.Inputs, mode, rep.Seed)
	if rep.Trace.Seed != rep.Seed {
		fmt.Fprintf(stdout, "note: replayed trace was recorded with seed=%d; pass -seed %d to reproduce its decisions\n",
			rep.Trace.Seed, rep.Trace.Seed)
	}
	fmt.Fprintf(stdout, "SLO attainment %.1f%% | deadline-miss %.1f%% | latency p50 %.4fs p95 %.4fs p99 %.4fs\n",
		100*rep.SLOAttainment, 100*rep.MissRate, rep.P50, rep.P95, rep.P99)
	fmt.Fprintf(stdout, "avg energy %.3fJ | avg quality %.4f\n", rep.AvgEnergy, rep.AvgQuality)
	fmt.Fprintf(stdout, "serving: %s\n", rep.ServerStats)
	return nil
}

func parseFlags(args []string) (loadConfig, error) {
	var cfg loadConfig
	fs := flag.NewFlagSet("alertload", flag.ContinueOnError)
	fs.StringVar(&cfg.scenarioName, "scenario", "bursty",
		"built-in scenario to compile (see internal/scenario); ignored with -replay")
	fs.StringVar(&cfg.replayPath, "replay", "", "replay a recorded scenario trace (JSON)")
	fs.StringVar(&cfg.recordPath, "record", "", "record the compiled trace to this path")
	fs.StringVar(&cfg.platform, "platform", "CPU1", "Embedded | CPU1 | CPU2 | GPU")
	fs.StringVar(&cfg.task, "task", "image", "image | sentence")
	fs.IntVar(&cfg.streams, "streams", 8, "concurrent inference streams")
	fs.IntVar(&cfg.inputs, "inputs", 300, "inputs per stream")
	fs.Int64Var(&cfg.seed, "seed", 1, "seed for trace compilation and stream noise")
	fs.IntVar(&cfg.shards, "shards", 0, "server stream-table shards (0 = one per CPU; decisions are shard-count-invariant)")
	fs.StringVar(&cfg.mode, "mode", "auto", "auto | open | closed loop")
	fs.StringVar(&cfg.addr, "addr", "",
		"drive a live alertserve at this host:port (or URL) instead of an in-process server; its streams [0,streams) are evicted first")
	fs.StringVar(&cfg.addrs, "addrs", "",
		"comma-separated alertserve members; streams are routed across the cluster by consistent hashing (streams [0,streams) evicted on every member first)")
	fs.StringVar(&cfg.wire, "wire", "json",
		"json | binary: transport for the remote data plane (-addr/-addrs/-chaos); binary requires alertserve -binary-addr")
	fs.IntVar(&cfg.migrateEvery, "migrate-every", 0,
		"with -addrs: live-migrate each stream to the next member every N inputs (0 = never)")
	fs.StringVar(&cfg.decisionsOut, "decisions-out", "",
		"write per-stream decision sequences to this file (one line per stream)")
	fs.StringVar(&cfg.objective, "objective", "energy", "energy (minimize energy) | error (minimize error)")
	fs.Float64Var(&cfg.deadlineFactor, "deadline-factor", 1.25, "deadline as a multiple of the slowest model's latency")
	fs.Float64Var(&cfg.accuracy, "accuracy", 0.92, "accuracy goal (energy objective)")
	fs.Float64Var(&cfg.budgetW, "budget-watts", 0, "energy budget as avg watts over the deadline window (error objective; 0 = platform default cap)")
	fs.BoolVar(&cfg.referenceScorer, "reference-scorer", false,
		"score with the naive reference scorer instead of the optimized hot path (differential testing; decisions are identical)")
	fs.BoolVar(&cfg.chaos, "chaos", false,
		"run the chaos harness: an in-process fleet driven through kill/restart cycles, flash crowds, and byzantine clients under the invariant checker")
	fs.IntVar(&cfg.nodes, "nodes", 3, "with -chaos: fleet size")
	fs.IntVar(&cfg.killEvery, "kill-every", 0,
		"with -chaos: kill a node every N inputs, alternating graceful and checkpoint-aligned hard kills (0 = inputs/3)")
	fs.IntVar(&cfg.restartAfter, "restart-after", 0,
		"with -chaos: restart each killed node N inputs after its kill (0 = half of -kill-every)")
	fs.BoolVar(&cfg.unmanaged, "unmanaged", false,
		"with -chaos: unmanaged hard kills only — no restarts, no harness orchestration; the cluster's membership + self-healing layer absorbs each kill by itself")
	fs.StringVar(&cfg.fleetPath, "fleet", "",
		"with -chaos: replay a recorded fleet trace (JSON) instead of compiling one from -scenario")
	fs.StringVar(&cfg.fleetRecord, "fleet-record", "",
		"with -chaos: record the compiled fleet trace to this path")
	fs.BoolVar(&cfg.adaptive, "adaptive", false,
		"with -chaos: run every fleet node's admission gate with the measured-delay controller and SLO shedder on")
	fs.BoolVar(&cfg.gateCompare, "gate-compare", false,
		"drive the same overload schedule through a static and an adaptive admission gate and compare SLO attainment (exit non-zero if adaptive loses)")
	fs.Float64Var(&cfg.overload, "overload", 2.0,
		"with -gate-compare: offered load as a multiple of the static gate's capacity (gate-inflight / service-delay)")
	fs.IntVar(&cfg.gateInflight, "gate-inflight", 2,
		"with -gate-compare: the gates' initial inflight limit")
	fs.IntVar(&cfg.gateQueue, "gate-queue", 16,
		"with -gate-compare: the gates' initial queue limit")
	fs.DurationVar(&cfg.serviceDelay, "service-delay", 3*time.Millisecond,
		"with -gate-compare: pinned per-decide service time, so gate capacity is a known quantity")
	fs.DurationVar(&cfg.wallDeadline, "wall-deadline", 18*time.Millisecond,
		"with -gate-compare: nominal wall-clock deadline per request (scaled per input by the trace's deadline churn)")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	if cfg.streams <= 0 || cfg.inputs <= 0 {
		return cfg, fmt.Errorf("streams and inputs must be positive")
	}
	switch cfg.mode {
	case "auto", "open", "closed":
	default:
		return cfg, fmt.Errorf("unknown -mode %q", cfg.mode)
	}
	if cfg.addr != "" && cfg.addrs != "" {
		return cfg, fmt.Errorf("-addr and -addrs are mutually exclusive")
	}
	remote := cfg.addr != "" || cfg.addrs != ""
	switch cfg.wire {
	case "json", "binary":
	default:
		return cfg, fmt.Errorf("unknown -wire %q (json | binary)", cfg.wire)
	}
	if cfg.wire == "binary" && !remote && !cfg.chaos {
		return cfg, fmt.Errorf("-wire=binary requires -addr, -addrs, or -chaos (the in-process path has no wire)")
	}
	if remote && cfg.referenceScorer {
		return cfg, fmt.Errorf("-reference-scorer configures the in-process server and cannot apply to a remote -addr/-addrs")
	}
	if remote && cfg.shards != 0 {
		return cfg, fmt.Errorf("-shards configures the in-process server; the remote server's shard count is its own")
	}
	if cfg.migrateEvery < 0 {
		return cfg, fmt.Errorf("-migrate-every must be >= 0")
	}
	if cfg.migrateEvery > 0 && cfg.addrs == "" {
		return cfg, fmt.Errorf("-migrate-every requires -addrs (migration moves sessions between cluster members)")
	}
	if cfg.gateCompare {
		if remote || cfg.chaos {
			return cfg, fmt.Errorf("-gate-compare builds its own pair of in-process servers and cannot combine with -addr, -addrs, or -chaos")
		}
		if cfg.wire != "json" {
			return cfg, fmt.Errorf("-gate-compare drives the HTTP/JSON path (admission semantics are transport-identical; see the binwire tests)")
		}
		if cfg.referenceScorer || cfg.decisionsOut != "" || cfg.recordPath != "" {
			return cfg, fmt.Errorf("-reference-scorer, -decisions-out, and -record do not apply to -gate-compare (it oracle-checks decisions itself)")
		}
		if cfg.overload <= 0 || cfg.gateInflight <= 0 || cfg.gateQueue <= 0 {
			return cfg, fmt.Errorf("-overload, -gate-inflight, and -gate-queue must be positive")
		}
		if cfg.serviceDelay <= 0 || cfg.wallDeadline <= 0 {
			return cfg, fmt.Errorf("-service-delay and -wall-deadline must be positive")
		}
	} else if cfg.overload != 2.0 || cfg.gateInflight != 2 || cfg.gateQueue != 16 ||
		cfg.serviceDelay != 3*time.Millisecond || cfg.wallDeadline != 18*time.Millisecond {
		return cfg, fmt.Errorf("-overload, -gate-inflight, -gate-queue, -service-delay, and -wall-deadline require -gate-compare")
	}
	if cfg.adaptive && !cfg.chaos {
		return cfg, fmt.Errorf("-adaptive requires -chaos (-gate-compare runs both gates itself)")
	}
	if cfg.chaos {
		if remote {
			return cfg, fmt.Errorf("-chaos builds its own in-process fleet and cannot drive -addr/-addrs")
		}
		if cfg.replayPath != "" || cfg.recordPath != "" {
			return cfg, fmt.Errorf("-chaos schedules are recorded and replayed with -fleet-record/-fleet, not -record/-replay")
		}
		if cfg.referenceScorer || cfg.decisionsOut != "" {
			return cfg, fmt.Errorf("-reference-scorer and -decisions-out do not apply to -chaos (the checker compares decisions itself)")
		}
		if cfg.nodes < 2 {
			return cfg, fmt.Errorf("-chaos needs -nodes >= 2 (kill recovery migrates to survivors)")
		}
		if cfg.killEvery < 0 || cfg.restartAfter < 0 {
			return cfg, fmt.Errorf("-kill-every and -restart-after must be >= 0")
		}
		if cfg.unmanaged && cfg.restartAfter != 0 {
			return cfg, fmt.Errorf("-unmanaged runs without an orchestrator and cannot -restart-after (dead nodes stay dead)")
		}
		// The harness fleet is profiled like the default run; other
		// platforms/tasks would diverge from its solo reference controller.
		if !strings.EqualFold(cfg.platform, "CPU1") || !strings.HasPrefix(strings.ToLower(cfg.task), "image") {
			return cfg, fmt.Errorf("-chaos supports -platform CPU1 -task image (the fleet nodes are profiled for them)")
		}
	} else if cfg.nodes != 3 || cfg.killEvery != 0 || cfg.restartAfter != 0 || cfg.unmanaged || cfg.fleetPath != "" || cfg.fleetRecord != "" {
		return cfg, fmt.Errorf("-nodes, -kill-every, -restart-after, -unmanaged, -fleet, and -fleet-record require -chaos")
	}
	return cfg, nil
}

// backend abstracts the server under load: the in-process alert.Server, or
// a remote alertserve reached through the typed client (-addr). Both
// expose the same per-stream decide/observe semantics, which is what makes
// the two paths' decision sequences byte-identical.
type backend interface {
	Decide(stream int, spec alert.Spec) (alert.Decision, alert.Estimate)
	Observe(stream int, fb alert.Feedback)
	Stats() alert.ServerStats
}

// remoteBackend adapts the typed client to the backend interface. The
// drive loops are error-free by construction against the in-process
// server; over the network any request can fail, so the first error is
// latched and fails the whole run after the streams finish.
type remoteBackend struct {
	c   *client.Client
	ctx context.Context

	mu  sync.Mutex
	err error
}

func (r *remoteBackend) fail(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.mu.Unlock()
}

func (r *remoteBackend) firstErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

func (r *remoteBackend) Decide(stream int, spec alert.Spec) (alert.Decision, alert.Estimate) {
	d, est, err := r.c.Decide(r.ctx, stream, spec)
	if err != nil {
		r.fail(fmt.Errorf("decide stream %d: %w", stream, err))
	}
	return d, est
}

func (r *remoteBackend) Observe(stream int, fb alert.Feedback) {
	if err := r.c.Observe(r.ctx, stream, fb); err != nil {
		r.fail(fmt.Errorf("observe stream %d: %w", stream, err))
	}
}

func (r *remoteBackend) Stats() alert.ServerStats {
	stats, err := r.c.Stats(r.ctx)
	if err != nil {
		r.fail(fmt.Errorf("stats: %w", err))
	}
	return stats.Serve
}

// clusterBackend drives a whole alertserve cluster (-addrs): requests are
// routed to each stream's consistent-hash home, and with -migrate-every N
// every stream is live-migrated to the next member every N inputs — the
// decision sequences must stay byte-identical through every move, which is
// what TestAddrsModeMatchesInProcess pins.
type clusterBackend struct {
	cl           *cluster.Cluster
	members      []string
	ctx          context.Context
	migrateEvery int

	mu    sync.Mutex
	err   error
	steps map[int]int // per-stream decide count, for the migration cadence
}

func newClusterBackend(cfg loadConfig, plat *alert.Platform, models []*dnn.Model) (*clusterBackend, error) {
	var members []string
	for _, a := range strings.Split(cfg.addrs, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		if !strings.Contains(a, "://") {
			a = "http://" + a
		}
		members = append(members, a)
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("-addrs lists no members")
	}
	// As with -addr: overload retries are safe (shed before state), and a
	// replay needs every request served.
	cl, err := cluster.New(members, cluster.Options{Client: client.Options{MaxRetries: 100, PreferBinary: cfg.wire == "binary"}})
	if err != nil {
		return nil, err
	}
	cb := &clusterBackend{
		cl:           cl,
		members:      members,
		ctx:          context.Background(),
		migrateEvery: cfg.migrateEvery,
		steps:        make(map[int]int),
	}
	// Preflight every member: one mis-profiled node would silently corrupt
	// whichever streams hash onto it. Then evict the driven streams
	// everywhere — a stream's session may live on any member after earlier
	// migrations.
	for _, addr := range members {
		node, _ := cl.Node(addr)
		stats, err := node.Stats(cb.ctx)
		if err != nil {
			cl.Close()
			return nil, fmt.Errorf("probing %s: %w", addr, err)
		}
		if cfg.wire == "binary" && stats.BinaryAddr == "" {
			cl.Close()
			return nil, fmt.Errorf("cluster member %s has no binary listener (start alertserve with -binary-addr)", addr)
		}
		if !strings.EqualFold(stats.Platform, plat.Name) {
			cl.Close()
			return nil, fmt.Errorf("cluster member %s serves platform %s, this run simulates %s (start alertserve with -platform %s)",
				addr, stats.Platform, plat.Name, plat.Name)
		}
		if stats.Models != len(models) {
			cl.Close()
			return nil, fmt.Errorf("cluster member %s serves %d candidate models, this run simulates %d (start alertserve with -task %s)",
				addr, stats.Models, len(models), cfg.task)
		}
		for s := 0; s < cfg.streams; s++ {
			if err := node.EvictStream(cb.ctx, s); err != nil {
				cl.Close()
				return nil, fmt.Errorf("evicting stream %d on %s: %w", s, addr, err)
			}
		}
	}
	return cb, nil
}

func (b *clusterBackend) fail(err error) {
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.mu.Unlock()
}

func (b *clusterBackend) firstErr() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

func (b *clusterBackend) Decide(stream int, spec alert.Spec) (alert.Decision, alert.Estimate) {
	if b.migrateEvery > 0 {
		b.mu.Lock()
		n := b.steps[stream]
		b.steps[stream] = n + 1
		b.mu.Unlock()
		if n > 0 && n%b.migrateEvery == 0 {
			from := b.cl.Route(stream)
			to := b.nextMember(from)
			if err := b.cl.Migrate(b.ctx, stream, from, to); err != nil {
				b.fail(fmt.Errorf("migrating stream %d %s -> %s: %w", stream, from, to, err))
			}
		}
	}
	d, est, err := b.cl.Decide(b.ctx, stream, spec)
	if err != nil {
		b.fail(fmt.Errorf("decide stream %d: %w", stream, err))
	}
	return d, est
}

func (b *clusterBackend) Observe(stream int, fb alert.Feedback) {
	if err := b.cl.Observe(b.ctx, stream, fb); err != nil {
		b.fail(fmt.Errorf("observe stream %d: %w", stream, err))
	}
}

// Stats sums the members' serving counters; the latency columns take the
// cluster-wide max and the decision-weighted average.
func (b *clusterBackend) Stats() alert.ServerStats {
	var sum alert.ServerStats
	var weightedAvg time.Duration
	for _, addr := range b.members {
		node, ok := b.cl.Node(addr)
		if !ok {
			continue
		}
		stats, err := node.Stats(b.ctx)
		if err != nil {
			b.fail(fmt.Errorf("stats from %s: %w", addr, err))
			continue
		}
		s := stats.Serve
		sum.Decisions += s.Decisions
		sum.Observes += s.Observes
		sum.Batches += s.Batches
		sum.Streams += s.Streams
		sum.SessionBytes += s.SessionBytes
		sum.StreamExports += s.StreamExports
		sum.StreamImports += s.StreamImports
		sum.DecidesPerSec += s.DecidesPerSec
		weightedAvg += s.AvgDecideLatency * time.Duration(s.Decisions)
		if s.MaxDecideLatency > sum.MaxDecideLatency {
			sum.MaxDecideLatency = s.MaxDecideLatency
		}
		if s.Uptime > sum.Uptime {
			sum.Uptime = s.Uptime
		}
	}
	if sum.Decisions > 0 {
		sum.AvgDecideLatency = weightedAvg / time.Duration(sum.Decisions)
	}
	return sum
}

// nextMember returns the member after addr in -addrs order, wrapping.
func (b *clusterBackend) nextMember(addr string) string {
	for i, a := range b.members {
		if a == addr {
			return b.members[(i+1)%len(b.members)]
		}
	}
	return b.members[0]
}

// runLoad executes the load test and returns the aggregate report.
func runLoad(cfg loadConfig) (*loadReport, error) {
	plat, err := alert.PlatformByName(cfg.platform)
	if err != nil {
		return nil, err
	}
	models := alert.ImageCandidates()
	task := dnn.ImageClassification
	if strings.HasPrefix(strings.ToLower(cfg.task), "sent") {
		models = alert.SentenceCandidates()
		task = dnn.SentencePrediction
	}

	spec, err := baseSpec(cfg, plat, models)
	if err != nil {
		return nil, err
	}
	deadline := spec.Deadline

	var tr *scenario.Trace
	if cfg.replayPath != "" {
		if tr, err = scenario.ReadFile(cfg.replayPath); err != nil {
			return nil, err
		}
	} else {
		sspec, err := scenario.ByName(cfg.scenarioName)
		if err != nil {
			return nil, err
		}
		if tr, err = scenario.Compile(sspec, plat, cfg.inputs, deadline, cfg.seed); err != nil {
			return nil, err
		}
	}
	open := tr.OpenLoop()
	switch cfg.mode {
	case "open":
		open = true
	case "closed":
		open = false
	}

	// The server under load: in-process by default, a live alertserve over
	// the network with -addr. Shards bound only worker concurrency; every
	// stream gets its own session either way, so the shard count never
	// changes decisions and 0 can safely mean "one per CPU" (the
	// alert.NewServer default).
	var (
		bk     backend
		remote interface{ firstErr() error }
	)
	if cfg.addrs != "" {
		cb, err := newClusterBackend(cfg, plat, models)
		if err != nil {
			return nil, err
		}
		defer cb.cl.Close()
		bk, remote = cb, cb
	} else if cfg.addr != "" {
		base := cfg.addr
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		// Overload 429s are retried by the client itself (they are shed
		// before any state is touched, so retries cannot double-apply);
		// replays need every request served, not load shed.
		cl, err := client.New(base, client.Options{MaxRetries: 100, PreferBinary: cfg.wire == "binary"})
		if err != nil {
			return nil, err
		}
		defer cl.Close()
		rb := &remoteBackend{c: cl, ctx: context.Background()}
		// Preflight: the remote server must be profiled like this run, or
		// its decisions answer a different question and every comparison
		// (and the byte-identical replay property) is silently garbage.
		stats, err := cl.Stats(rb.ctx)
		if err != nil {
			return nil, fmt.Errorf("probing %s: %w", cfg.addr, err)
		}
		if cfg.wire == "binary" && stats.BinaryAddr == "" {
			return nil, fmt.Errorf("remote server at %s has no binary listener (start alertserve with -binary-addr)", cfg.addr)
		}
		if !strings.EqualFold(stats.Platform, plat.Name) {
			return nil, fmt.Errorf("remote server at %s serves platform %s, this run simulates %s (start alertserve with -platform %s)",
				cfg.addr, stats.Platform, plat.Name, plat.Name)
		}
		if stats.Models != len(models) {
			return nil, fmt.Errorf("remote server at %s serves %d candidate models, this run simulates %d (start alertserve with -task %s)",
				cfg.addr, stats.Models, len(models), cfg.task)
		}
		// Fresh sessions for the streams this run drives, so the replay is
		// reproducible regardless of the server's prior traffic.
		for s := 0; s < cfg.streams; s++ {
			if err := cl.EvictStream(rb.ctx, s); err != nil {
				return nil, fmt.Errorf("evicting stream %d on %s: %w", s, cfg.addr, err)
			}
		}
		bk, remote = rb, rb
	} else {
		srv, err := alert.NewServer(plat, models, alert.ServerOptions{
			Shards:  cfg.shards,
			Options: alert.Options{ReferenceScorer: cfg.referenceScorer},
		})
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		bk = srv
	}

	// The streams replay the same trace but draw independent input streams
	// and platform noise, like distinct users of one deployment. Profiling
	// is deterministic, so this table equals the server's internal one.
	prof, err := dnn.Profile(plat, models)
	if err != nil {
		return nil, err
	}

	results := make([]streamResult, cfg.streams)
	var wg sync.WaitGroup
	for s := 0; s < cfg.streams; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			results[s] = driveStream(bk, prof, tr, spec, task, driveConfig{
				stream: s,
				inputs: cfg.inputs,
				seed:   cfg.seed + int64(s)*7919,
				open:   open,
			})
		}(s)
	}
	wg.Wait()
	if remote != nil {
		if err := remote.firstErr(); err != nil {
			return nil, err
		}
	}

	rep := &loadReport{
		Trace:        tr,
		OpenLoop:     open,
		Streams:      cfg.streams,
		Inputs:       cfg.inputs,
		Seed:         cfg.seed,
		DecisionSeqs: make([]string, cfg.streams),
	}
	all := metrics.NewRecord("alertload")
	for s, res := range results {
		all.Merge(res.rec)
		rep.DecisionSeqs[s] = res.decisions
	}
	rep.SLOAttainment = all.SLOAttainment()
	rep.MissRate = all.DeadlineMissRate()
	rep.P50 = all.LatencyPercentile(50)
	rep.P95 = all.LatencyPercentile(95)
	rep.P99 = all.LatencyPercentile(99)
	rep.AvgEnergy = all.AvgEnergy()
	rep.AvgQuality = all.AvgQuality()
	rep.ServerStats = bk.Stats()
	if remote != nil {
		if err := remote.firstErr(); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// baseSpec resolves the objective flags into the nominal request spec. The
// deadline yardstick is the slowest candidate at the top cap.
func baseSpec(cfg loadConfig, plat *alert.Platform, models []*dnn.Model) (alert.Spec, error) {
	slowest := 0.0
	for _, m := range models {
		if lat := m.RefLatency / plat.Speed(plat.PMax); lat > slowest {
			slowest = lat
		}
	}
	deadline := cfg.deadlineFactor * slowest

	spec := alert.Spec{Deadline: deadline}
	switch strings.ToLower(cfg.objective) {
	case "energy":
		spec.Objective = alert.MinimizeEnergy
		spec.AccuracyGoal = cfg.accuracy
	case "error":
		spec.Objective = alert.MaximizeAccuracy
		w := cfg.budgetW
		if w <= 0 {
			w = plat.DefaultCap
		}
		spec.EnergyBudget = w * deadline
	default:
		return alert.Spec{}, fmt.Errorf("unknown objective %q", cfg.objective)
	}
	return spec, nil
}

// runChaos drives the chaos harness: compile (or replay) a fleet schedule,
// run the in-process fleet through it with the invariant checker trailing,
// and turn the checker's verdict into the exit status.
func runChaos(cfg loadConfig, stdout io.Writer) error {
	plat, models := alert.CPU1(), alert.ImageCandidates()
	spec, err := baseSpec(cfg, plat, models)
	if err != nil {
		return err
	}

	var ft *scenario.FleetTrace
	if cfg.fleetPath != "" {
		if ft, err = scenario.ReadFleetFile(cfg.fleetPath); err != nil {
			return err
		}
		if cfg.unmanaged && !ft.Unmanaged {
			return fmt.Errorf("-unmanaged with a managed fleet trace: the recorded schedule decides the mode")
		}
		mode := ""
		if ft.Unmanaged {
			mode = " (unmanaged)"
		}
		fmt.Fprintf(stdout, "replaying fleet %s%s: %d rounds, %d streams, %d nodes, seed %d\n",
			ft.Fleet, mode, ft.Len(), ft.Streams, ft.Nodes, ft.Seed)
	} else {
		sspec, err := scenario.ByName(cfg.scenarioName)
		if err != nil {
			return err
		}
		killEvery := cfg.killEvery
		if killEvery <= 0 {
			killEvery = cfg.inputs / 3
		}
		var fspec scenario.FleetSpec
		if cfg.unmanaged {
			fspec, err = scenario.DefaultUnmanagedFleet(sspec, cfg.streams, cfg.nodes, cfg.inputs, killEvery)
		} else {
			fspec, err = scenario.DefaultFleet(sspec, cfg.streams, cfg.nodes, cfg.inputs, killEvery, cfg.restartAfter)
		}
		if err != nil {
			return err
		}
		if ft, err = scenario.CompileFleet(fspec, plat, cfg.inputs, spec.Deadline, cfg.seed); err != nil {
			return err
		}
	}
	if cfg.fleetRecord != "" {
		if err := ft.WriteFile(cfg.fleetRecord); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "fleet trace recorded to %s (%d rounds)\n", cfg.fleetRecord, ft.Len())
	}

	if cfg.wire == "binary" {
		fmt.Fprintln(stdout, "chaos fleet data plane riding the binary transport")
	}
	// Seed 0: a replayed trace reproduces with its own recorded seed.
	if cfg.adaptive {
		fmt.Fprintln(stdout, "chaos fleet admission gates running adaptive with SLO shedding")
	}
	h, err := chaos.New(chaos.Options{
		Fleet:    ft,
		Base:     spec,
		Binary:   cfg.wire == "binary",
		Adaptive: cfg.adaptive,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stdout, "chaos: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	defer h.Close()
	rep, err := h.Run(context.Background())
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, rep.Summary())
	if !rep.OK() {
		return fmt.Errorf("%d invariant violations", len(rep.Violations))
	}
	return nil
}

// driveConfig parameterizes one stream's drive loop.
type driveConfig struct {
	stream int
	inputs int
	seed   int64
	open   bool
}

// driveStream runs one inference stream against the server: the paper's
// decide → execute → observe loop, with execution simulated by a
// virtual-time environment replaying the scenario trace, and arrivals
// paced by the trace's arrival process (open loop) or by completion
// (closed loop).
func driveStream(srv backend, prof *dnn.ProfileTable, tr *scenario.Trace,
	base alert.Spec, task dnn.Task, dc driveConfig) streamResult {

	env := sim.NewEnv(prof, tr.Source(), dc.seed*3+2)
	stream := workload.NewStream(task, dc.inputs, dc.seed*3+1)
	tracker := workload.NewDeadlineTracker(task, base.Deadline, 0)
	rec := metrics.NewRecord(fmt.Sprintf("stream-%d", dc.stream))
	var seq strings.Builder

	cur := base
	var arrive, free float64 // virtual clocks: last arrival, server free
	for {
		in, ok := stream.Next()
		if !ok {
			break
		}
		tick := tr.At(in.ID)
		if next := tr.SpecFor(in.ID, base); next != cur {
			cur = next
			tracker.SetPerInput(cur.Deadline)
		}

		// Arrival: open loop queues scenario-shaped arrivals behind the
		// stream's previous work; closed loop issues on completion.
		if dc.open {
			arrive += tick.Gap
		} else {
			arrive = free
		}
		start := math.Max(arrive, free)
		wait := start - arrive

		goal := tracker.GoalFor(in)
		dspec := cur
		dspec.Deadline = goal
		d, _ := srv.Decide(dc.stream, dspec)
		out := env.Step(sim.Decision{
			Model:       d.Model,
			Cap:         d.Cap,
			PlannedStop: d.PlannedStop,
			Overhead:    d.Overhead,
		}, in, goal, cur.Deadline)
		tracker.Observe(in, out.Latency)
		srv.Observe(dc.stream, alert.Feedback{
			Decision:       d,
			Latency:        out.Latency,
			CompletedStage: out.Stage,
			IdlePowerW:     out.IdlePower,
		})
		free = start + out.Latency
		response := wait + out.Latency

		s := metrics.Sample{
			Latency:         response,
			Goal:            cur.Deadline,
			Energy:          out.Energy,
			Quality:         out.Quality,
			TrueXi:          out.TrueXi,
			Model:           d.Model,
			Cap:             out.CapApplied,
			LatencyViolated: response > cur.Deadline,
		}
		switch cur.Objective {
		case alert.MinimizeEnergy:
			s.AccuracyViolated = out.Quality < cur.AccuracyGoal
		case alert.MaximizeAccuracy:
			s.EnergyViolated = cur.EnergyBudget > 0 && out.Energy > cur.EnergyBudget
		}
		rec.Add(s)
		fmt.Fprintf(&seq, "%d,%d,%.17g,%.17g;", d.Model, d.Cap, d.PlannedStop, d.Overhead)
	}
	return streamResult{rec: rec, decisions: seq.String()}
}

// writeDecisions persists the per-stream decision sequences, one line per
// stream — the replay-determinism artifact CI diffs between the in-process
// and -addr paths.
func writeDecisions(path string, seqs []string) error {
	var b strings.Builder
	for s, seq := range seqs {
		fmt.Fprintf(&b, "stream %d: %s\n", s, seq)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
