package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/alert-project/alert"
	"github.com/alert-project/alert/client"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/metrics"
	"github.com/alert-project/alert/internal/netserve"
	"github.com/alert-project/alert/internal/scenario"
)

// Gate-compare mode (-gate-compare): the head-to-head overload rehearsal
// for the adaptive admission controller. The same trace-shaped request
// schedule is driven at -overload × the static gate's capacity through two
// identical in-process servers — one behind the static gate, one behind
// the adaptive gate with SLO shedding — and both runs report wall-clock
// SLO attainment (sheds count as misses). Service time is pinned with
// Config.ServiceDelay so "capacity" is a known quantity instead of an
// artifact of host speed.
//
// Two invariants are machine-checked on every run, per gate:
//
//   - Zero dropped accepted requests: every request either returns a real
//     decision or a structured 429; any other failure aborts the run.
//   - Admission never changes computation: each stream's served requests
//     are replayed in order against a fresh in-process alert.Server and
//     the decision sequences must match byte for byte.
//
// The exit status is the verdict: non-zero if the adaptive gate's SLO
// attainment falls below the static gate's.

// gateTrialConfig parameterizes one trial (and is reused by the
// BenchmarkGateCompare harness, which is how BENCH_8.json gets its
// numbers).
type gateTrialConfig struct {
	trace        *scenario.Trace
	base         alert.Spec
	plat         *alert.Platform
	models       []*dnn.Model
	streams      int
	inputs       int
	shards       int
	overload     float64
	gateInflight int
	gateQueue    int
	serviceDelay time.Duration
	wallDeadline time.Duration
}

// gateTrialResult is one gate's side of the comparison.
type gateTrialResult struct {
	issued, served, shed, met int
	// specs[s] is the ordered spec sequence of stream s's *served*
	// requests; tokens[s] the matching decision tokens. Together they are
	// the determinism artifact the oracle replays.
	specs  [][]alert.Spec
	tokens []string
	// gate is the admission gate's final snapshot — for the adaptive run,
	// the limits the controller discovered.
	gate metrics.OverloadSnapshot
}

// slo is deadline attainment with sheds counted as misses: to the caller a
// shed request is a missed deadline.
func (r *gateTrialResult) slo() float64 {
	if r.issued == 0 {
		return 0
	}
	return float64(r.met) / float64(r.issued)
}

// decisionToken formats a decision exactly like driveStream's sequence
// artifact, so "byte-identical" means the same thing in both modes.
func decisionToken(d alert.Decision) string {
	return fmt.Sprintf("%d,%d,%.17g,%.17g;", d.Model, d.Cap, d.PlannedStop, d.Overhead)
}

// trialFeedback derives the observe-loop feedback deterministically from
// the decide response, so the oracle replay reconstructs the identical
// session evolution from the recorded decisions alone.
func trialFeedback(d alert.Decision, latMean float64) alert.Feedback {
	return alert.Feedback{Decision: d, Latency: latMean * 1.05, CompletedStage: -1, IdlePowerW: 4}
}

// runGateTrial drives the schedule through one front end. Each stream is a
// serialized driver aiming at scheduled arrival times (open loop with
// lateness): a request launches at its scheduled instant when the stream's
// previous one has finished, immediately otherwise — so per-stream
// decide → observe order stays strict (the determinism contract) while the
// fleet of streams supplies the overload.
func runGateTrial(cfg gateTrialConfig, adaptive bool) (*gateTrialResult, error) {
	srv, err := alert.NewServer(cfg.plat, cfg.models, alert.ServerOptions{Shards: cfg.shards})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	front := netserve.New(srv, netserve.Config{
		MaxInflight:  cfg.gateInflight,
		MaxQueue:     cfg.gateQueue,
		Adaptive:     adaptive,
		SLOShed:      adaptive,
		ServiceDelay: cfg.serviceDelay,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hsrv := &http.Server{Handler: front}
	go hsrv.Serve(ln)
	defer hsrv.Close()
	base := "http://" + ln.Addr().String()

	// Decides run with retries off so every shed surfaces as the 429 it
	// is; observes retry through overload because the feedback loop must
	// not lose samples (they are idempotent per served decision here:
	// each is sent once and retried only until accepted).
	decide, err := client.New(base, client.Options{})
	if err != nil {
		return nil, err
	}
	defer decide.Close()
	observe, err := client.New(base, client.Options{MaxRetries: 100})
	if err != nil {
		return nil, err
	}
	defer observe.Close()

	// Offered load: -overload × the static gate's service capacity,
	// shaped by the trace's inter-arrival gaps (uniform when the trace is
	// closed-loop), split evenly across the streams.
	capacity := float64(cfg.gateInflight) / cfg.serviceDelay.Seconds()
	perStreamGap := float64(cfg.streams) / (cfg.overload * capacity)
	meanGap := 0.0
	for j := 0; j < cfg.inputs; j++ {
		meanGap += cfg.trace.At(j).Gap
	}
	meanGap /= float64(cfg.inputs)
	gapScale := 0.0
	if meanGap > 0 {
		gapScale = perStreamGap / meanGap
	}

	res := &gateTrialResult{
		specs:  make([][]alert.Spec, cfg.streams),
		tokens: make([]string, cfg.streams),
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	ctx := context.Background()
	start := time.Now()
	for s := 0; s < cfg.streams; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			var (
				specs             []alert.Spec
				tokens            strings.Builder
				served, shed, met int
			)
			sched := start
			for j := 0; j < cfg.inputs; j++ {
				gap := perStreamGap
				if gapScale > 0 {
					gap = cfg.trace.At(j).Gap * gapScale
				}
				sched = sched.Add(time.Duration(gap * float64(time.Second)))
				if d := time.Until(sched); d > 0 {
					time.Sleep(d)
				}

				// The trace's churn sets this input's spec; its deadline
				// ratio scales the nominal wall deadline, so tight trace
				// deadlines are tight wall deadlines the shedder can
				// recognize as hopeless under load.
				dspec := cfg.trace.SpecFor(j, cfg.base)
				dspec.Deadline = cfg.wallDeadline.Seconds() * (dspec.Deadline / cfg.base.Deadline)

				t0 := time.Now()
				d, est, err := decide.Decide(ctx, s, dspec)
				sojourn := time.Since(t0)
				if err != nil {
					var oe *client.OverloadError
					if errors.As(err, &oe) {
						shed++
						continue
					}
					fail(fmt.Errorf("stream %d input %d: accepted-request path failed: %w", s, j, err))
					return
				}
				if est.LatMean <= 0 {
					fail(fmt.Errorf("stream %d input %d: served request carried an empty decision", s, j))
					return
				}
				served++
				if sojourn.Seconds() <= dspec.Deadline {
					met++
				}
				specs = append(specs, dspec)
				tokens.WriteString(decisionToken(d))
				if err := observe.Observe(ctx, s, trialFeedback(d, est.LatMean)); err != nil {
					fail(fmt.Errorf("stream %d input %d: observe failed: %w", s, j, err))
					return
				}
			}
			mu.Lock()
			res.issued += cfg.inputs
			res.served += served
			res.shed += shed
			res.met += met
			res.specs[s] = specs
			res.tokens[s] = tokens.String()
			mu.Unlock()
		}(s)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if res.served+res.shed != res.issued {
		return nil, fmt.Errorf("request conservation broke: served %d + shed %d != issued %d",
			res.served, res.shed, res.issued)
	}
	res.gate = front.OverloadStats()
	return res, nil
}

// verifyGateDecisions is the oracle: replay every stream's served requests
// in order against a fresh in-process alert.Server and require the
// decision sequences to match byte for byte. Admission decides whether a
// request runs, never what it computes.
func verifyGateDecisions(cfg gateTrialConfig, res *gateTrialResult) error {
	ref, err := alert.NewServer(cfg.plat, cfg.models, alert.ServerOptions{Shards: 1})
	if err != nil {
		return err
	}
	defer ref.Close()
	for s := 0; s < cfg.streams; s++ {
		var tokens strings.Builder
		for _, spec := range res.specs[s] {
			d, est := ref.Decide(s, spec)
			tokens.WriteString(decisionToken(d))
			ref.Observe(s, trialFeedback(d, est.LatMean))
		}
		if tokens.String() != res.tokens[s] {
			return fmt.Errorf("stream %d: served decisions diverged from the in-process replay\n gate: %s\n ref:  %s",
				s, res.tokens[s], tokens.String())
		}
	}
	return nil
}

// gateTrialConfigFrom resolves the flag set into a trial config, compiling
// (or replaying) the trace once so both gates see the identical schedule.
func gateTrialConfigFrom(cfg loadConfig) (gateTrialConfig, error) {
	var tc gateTrialConfig
	plat, err := alert.PlatformByName(cfg.platform)
	if err != nil {
		return tc, err
	}
	models := alert.ImageCandidates()
	if strings.HasPrefix(strings.ToLower(cfg.task), "sent") {
		models = alert.SentenceCandidates()
	}
	base, err := baseSpec(cfg, plat, models)
	if err != nil {
		return tc, err
	}
	var tr *scenario.Trace
	if cfg.replayPath != "" {
		if tr, err = scenario.ReadFile(cfg.replayPath); err != nil {
			return tc, err
		}
	} else {
		sspec, err := scenario.ByName(cfg.scenarioName)
		if err != nil {
			return tc, err
		}
		if tr, err = scenario.Compile(sspec, plat, cfg.inputs, base.Deadline, cfg.seed); err != nil {
			return tc, err
		}
	}
	return gateTrialConfig{
		trace:        tr,
		base:         base,
		plat:         plat,
		models:       models,
		streams:      cfg.streams,
		inputs:       cfg.inputs,
		shards:       cfg.shards,
		overload:     cfg.overload,
		gateInflight: cfg.gateInflight,
		gateQueue:    cfg.gateQueue,
		serviceDelay: cfg.serviceDelay,
		wallDeadline: cfg.wallDeadline,
	}, nil
}

// runGateCompare is the -gate-compare entry point: one trial per gate,
// both oracle-checked, and the SLO verdict as the exit status.
func runGateCompare(cfg loadConfig, stdout io.Writer) error {
	tc, err := gateTrialConfigFrom(cfg)
	if err != nil {
		return err
	}
	capacity := float64(tc.gateInflight) / tc.serviceDelay.Seconds()
	fmt.Fprintf(stdout, "gate-compare: scenario=%s streams=%d inputs/stream=%d seed=%d\n",
		tc.trace.Scenario, tc.streams, tc.inputs, cfg.seed)
	fmt.Fprintf(stdout, "gate-compare: offered %.1fx capacity (%.0f rps), service %s, gate %d/%d, wall deadline %s\n",
		tc.overload, tc.overload*capacity, tc.serviceDelay, tc.gateInflight, tc.gateQueue, tc.wallDeadline)

	report := func(name string, r *gateTrialResult) {
		fmt.Fprintf(stdout, "%-9s slo %5.1f%% | served %d/%d (met %d) shed %d (hopeless %d, overload %d, deadline %d) | final limits %d/%d (+%d/-%d moves) | svc %s qd-p95 %s\n",
			name+":", 100*r.slo(), r.served, r.issued, r.met, r.shed,
			r.gate.ShedHopeless, r.gate.ShedOverload, r.gate.ShedDeadline,
			r.gate.InflightLimit, r.gate.QueueLimit, r.gate.LimitIncreases, r.gate.LimitDecreases,
			r.gate.ServiceEWMA.Round(time.Microsecond*10), r.gate.QueueDelayP95)
	}

	static, err := runGateTrial(tc, false)
	if err != nil {
		return fmt.Errorf("static gate trial: %w", err)
	}
	if err := verifyGateDecisions(tc, static); err != nil {
		return fmt.Errorf("static gate trial: %w", err)
	}
	report("static", static)

	adaptive, err := runGateTrial(tc, true)
	if err != nil {
		return fmt.Errorf("adaptive gate trial: %w", err)
	}
	if err := verifyGateDecisions(tc, adaptive); err != nil {
		return fmt.Errorf("adaptive gate trial: %w", err)
	}
	report("adaptive", adaptive)

	gain := 100 * (adaptive.slo() - static.slo())
	fmt.Fprintf(stdout, "decision determinism: both gates byte-identical to the in-process replay\n")
	fmt.Fprintf(stdout, "adaptive SLO gain: %+.1f pp\n", gain)
	if adaptive.slo() < static.slo() {
		return fmt.Errorf("adaptive gate lost: slo %.1f%% < static %.1f%%", 100*adaptive.slo(), 100*static.slo())
	}
	return nil
}
