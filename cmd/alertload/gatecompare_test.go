package main

import (
	"strings"
	"testing"
)

// gateCompareConfig parses a -gate-compare flag set at a scale the caller
// picks; the shared defaults keep the trials short enough for tests.
func gateCompareConfig(t testing.TB, extra ...string) loadConfig {
	t.Helper()
	args := append([]string{
		"-gate-compare", "-scenario", "churn", "-seed", "7",
		"-streams", "4", "-inputs", "8",
	}, extra...)
	cfg, err := parseFlags(args)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestGateTrialInvariants runs one small trial per gate at 2x overload and
// checks the two machine-checked guarantees directly: request conservation
// (every request served or shed, none dropped) and the determinism oracle
// (served decisions byte-identical to an in-process replay). It does NOT
// assert adaptive ≥ static — at this scale the comparison is noise; the
// CI-gated verdict runs at -streams 32 -inputs 40.
func TestGateTrialInvariants(t *testing.T) {
	tc, err := gateTrialConfigFrom(gateCompareConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, adaptive := range []bool{false, true} {
		name := "static"
		if adaptive {
			name = "adaptive"
		}
		t.Run(name, func(t *testing.T) {
			res, err := runGateTrial(tc, adaptive)
			if err != nil {
				t.Fatal(err)
			}
			if res.issued != tc.streams*tc.inputs {
				t.Errorf("issued %d, want %d", res.issued, tc.streams*tc.inputs)
			}
			if res.served+res.shed != res.issued {
				t.Errorf("conservation broke: served %d + shed %d != issued %d",
					res.served, res.shed, res.issued)
			}
			if res.served == 0 {
				t.Error("trial served nothing")
			}
			if err := verifyGateDecisions(tc, res); err != nil {
				t.Errorf("determinism oracle: %v", err)
			}
			if res.gate.Adaptive != adaptive || res.gate.SLOShed != adaptive {
				t.Errorf("gate snapshot adaptive=%v slo_shed=%v, want %v",
					res.gate.Adaptive, res.gate.SLOShed, adaptive)
			}
			if !adaptive && (res.gate.InflightLimit != tc.gateInflight || res.gate.QueueLimit != tc.gateQueue) {
				t.Errorf("static gate moved its limits to %d/%d",
					res.gate.InflightLimit, res.gate.QueueLimit)
			}
		})
	}
}

// TestGateCompareRun drives the full -gate-compare mode through run() below
// capacity (-overload 0.5) with a roomy wall deadline: no queue can fill (4
// streams vs a 16-slot queue), no deadline is ever hopeless (500ms vs
// millisecond-scale delays), so neither gate sheds, both serve everything
// in time, and the adaptive-loses exit path cannot trip — the report's
// shape is stable enough to pin.
func TestGateCompareRun(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-gate-compare", "-scenario", "steady", "-seed", "3",
		"-streams", "4", "-inputs", "8", "-overload", "0.5",
		"-wall-deadline", "500ms",
	}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"gate-compare: scenario=steady",
		"offered 0.5x capacity",
		"static:", "adaptive:",
		"decision determinism: both gates byte-identical to the in-process replay",
		"adaptive SLO gain:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output lacks %q:\n%s", want, got)
		}
	}
}

// TestGateCompareFlagErrors: the gate-compare flag set rejects everything
// that would change what the trial measures, and its tuning knobs refuse to
// dangle without the mode.
func TestGateCompareFlagErrors(t *testing.T) {
	var out strings.Builder
	for _, args := range [][]string{
		{"-gate-compare", "-addr", "127.0.0.1:1"},
		{"-gate-compare", "-addrs", "127.0.0.1:1,127.0.0.1:2"},
		{"-gate-compare", "-chaos"},
		{"-gate-compare", "-wire", "binary"},
		{"-gate-compare", "-reference-scorer"},
		{"-gate-compare", "-decisions-out", "x.txt"},
		{"-gate-compare", "-record", "x.json"},
		{"-gate-compare", "-overload", "0"},
		{"-gate-compare", "-overload", "-1"},
		{"-gate-compare", "-gate-inflight", "0"},
		{"-gate-compare", "-gate-queue", "0"},
		{"-gate-compare", "-service-delay", "0s"},
		{"-gate-compare", "-wall-deadline", "-1ms"},
		{"-overload", "3"},
		{"-gate-inflight", "4"},
		{"-gate-queue", "8"},
		{"-service-delay", "5ms"},
		{"-wall-deadline", "25ms"},
		{"-adaptive"},
		{"-adaptive", "-gate-compare"},
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("%v accepted, want error", args)
		}
	}
}

// BenchmarkGateCompare is the CI perf artifact behind the
// -min-adaptive-slo-gain bench gate: one sub-benchmark per gate at the same
// 2x-overload schedule the overload-smoke job drives, each reporting SLO
// attainment as the "slo%" metric. benchreport subtracts static from
// adaptive to derive the adaptive-slo-gain series.
func BenchmarkGateCompare(b *testing.B) {
	tc, err := gateTrialConfigFrom(gateCompareConfig(b, "-streams", "32", "-inputs", "40"))
	if err != nil {
		b.Fatal(err)
	}
	for _, adaptive := range []bool{false, true} {
		name := "static"
		if adaptive {
			name = "adaptive"
		}
		b.Run(name, func(b *testing.B) {
			var slo float64
			for i := 0; i < b.N; i++ {
				res, err := runGateTrial(tc, adaptive)
				if err != nil {
					b.Fatal(err)
				}
				if err := verifyGateDecisions(tc, res); err != nil {
					b.Fatal(err)
				}
				slo = 100 * res.slo()
			}
			// ns/op is left at the default (the schedule's wall time);
			// benchreport keys on the slo% column.
			b.ReportMetric(slo, "slo%")
		})
	}
}
