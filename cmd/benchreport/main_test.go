package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// canned is a representative `go test -bench -benchmem` transcript: mixed
// packages, -GOMAXPROCS suffixes, custom metrics, and non-benchmark noise.
const canned = `goos: linux
goarch: amd64
pkg: github.com/alert-project/alert/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkDecide/naive-8         	     500	     58683 ns/op	     17041 decisions/s	       0 B/op	       0 allocs/op
BenchmarkDecide/uncached-8      	     500	     22777 ns/op	     43904 decisions/s	       0 B/op	       0 allocs/op
BenchmarkDecide/cached-8        	     500	        17.52 ns/op	  57077626 decisions/s	       0 B/op	       0 allocs/op
PASS
ok  	github.com/alert-project/alert/internal/core	0.092s
pkg: github.com/alert-project/alert/internal/serve
BenchmarkPoolDecideBatch-8   	     300	     15729 ns/op	   4069029 decisions/s	   12048 B/op	      28 allocs/op
BenchmarkPoolManyStreams/shared-engine-8         	     300	     22440 ns/op	       846.9 bytes/stream	     44563 decisions/s	   1927862 streams/s	       1 B/op	       0 allocs/op
BenchmarkPoolManyStreams/naive-controllers-8     	     300	     23445 ns/op	     32272 bytes/stream	     42653 decisions/s	     36624 streams/s	       0 B/op	       0 allocs/op
ok  	github.com/alert-project/alert/internal/serve	0.018s
pkg: github.com/alert-project/alert/internal/netserve
BenchmarkNetServe/decide-8       	     300	     61732 ns/op	     16200 decisions/s	   10531 B/op	     118 allocs/op
BenchmarkNetServe/batch64-8      	     300	    549911 ns/op	    116383 decisions/s	  134012 B/op	     230 allocs/op
BenchmarkNetServe/binary-8       	     300	      4514 ns/op	    221532 decisions/s	     529 B/op	       2 allocs/op
BenchmarkBinaryServerDecide-8    	     300	     14804 ns/op	     67549 decisions/s	       0 B/op	       0 allocs/op
ok  	github.com/alert-project/alert/internal/netserve	0.193s
pkg: github.com/alert-project/alert/cmd/alertload
BenchmarkGateCompare/static-8    	       1	 961042183 ns/op	        10.16 slo%	  912384 B/op	    9421 allocs/op
BenchmarkGateCompare/adaptive-8  	       1	 958731044 ns/op	        31.25 slo%	  899102 B/op	    9310 allocs/op
ok  	github.com/alert-project/alert/cmd/alertload	2.287s
`

func TestParseBenchOutput(t *testing.T) {
	entries, err := parseBenchOutput(canned)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 12 {
		t.Fatalf("parsed %d entries, want 12", len(entries))
	}
	shared := find(entries, "BenchmarkPoolManyStreams/shared-engine")
	if shared == nil || shared.Metrics["bytes/stream"] != 846.9 {
		t.Errorf("shared-engine bytes/stream entry wrong: %+v", shared)
	}
	cached := find(entries, "BenchmarkDecide/cached")
	if cached == nil {
		t.Fatal("BenchmarkDecide/cached not found (proc suffix not stripped?)")
	}
	if cached.NsPerOp != 17.52 || cached.Iterations != 500 {
		t.Errorf("cached ns/op = %g iters = %d", cached.NsPerOp, cached.Iterations)
	}
	if cached.AllocsPerOp == nil || *cached.AllocsPerOp != 0 {
		t.Errorf("cached allocs/op = %v, want explicit 0", cached.AllocsPerOp)
	}
	if got := cached.Metrics["decisions/s"]; got != 57077626 {
		t.Errorf("cached decisions/s = %g", got)
	}
	batch := find(entries, "BenchmarkPoolDecideBatch")
	if batch == nil || batch.AllocsPerOp == nil || *batch.AllocsPerOp != 28 {
		t.Errorf("batch entry wrong: %+v", batch)
	}
	gate := find(entries, "BenchmarkGateCompare/adaptive")
	if gate == nil || gate.Metrics["slo%"] != 31.25 {
		t.Errorf("gate-compare adaptive slo%% entry wrong: %+v", gate)
	}
}

func TestMergeMinKeepsFastestRun(t *testing.T) {
	text := canned + `
BenchmarkDecide/uncached-8      	     500	     19909 ns/op	     50227 decisions/s	       0 B/op	       0 allocs/op
BenchmarkDecide/naive-8         	     500	     60001 ns/op	     16000 decisions/s	       0 B/op	       0 allocs/op
`
	entries, err := parseBenchOutput(text)
	if err != nil {
		t.Fatal(err)
	}
	merged := mergeMin(entries)
	if len(merged) != 12 {
		t.Fatalf("merged to %d entries, want 12", len(merged))
	}
	if un := find(merged, "BenchmarkDecide/uncached"); un == nil || un.NsPerOp != 19909 {
		t.Errorf("uncached merge kept %+v, want the 19909 ns/op run", un)
	}
	if nv := find(merged, "BenchmarkDecide/naive"); nv == nil || nv.NsPerOp != 58683 {
		t.Errorf("naive merge kept %+v, want the 58683 ns/op run", nv)
	}
}

func TestDerivedSpeedups(t *testing.T) {
	entries, err := parseBenchOutput(canned)
	if err != nil {
		t.Fatal(err)
	}
	d := derived(entries)
	if len(d) != 6 {
		t.Fatalf("derived %d entries, want 6", len(d))
	}
	un := d[0].Metrics["x"]
	if un < 2.5 || un > 2.7 {
		t.Errorf("uncached speedup = %g, want ~2.58", un)
	}
	if ca := d[1].Metrics["x"]; ca < 3000 {
		t.Errorf("cached speedup = %g, want thousands", ca)
	}
	if mem := d[2].Metrics["x"]; mem < 38 || mem > 39 {
		t.Errorf("manystreams bytes reduction = %g, want ~38.1 (32272/846.9)", mem)
	}
	if d[2].Name != "derived/manystreams-bytes-reduction" {
		t.Errorf("third derived entry is %q", d[2].Name)
	}
	if d[3].Name != "derived/netserve-batch-speedup" {
		t.Errorf("fourth derived entry is %q", d[3].Name)
	}
	if net := d[3].Metrics["x"]; net < 7.1 || net > 7.3 {
		t.Errorf("netserve batch speedup = %g, want ~7.18 (116383/16200)", net)
	}
	if d[4].Name != "derived/netserve-binwire-speedup" {
		t.Errorf("fifth derived entry is %q", d[4].Name)
	}
	if bw := d[4].Metrics["x"]; bw < 13.6 || bw > 13.8 {
		t.Errorf("netserve binwire speedup = %g, want ~13.67 (221532/16200)", bw)
	}
	if d[5].Name != "derived/adaptive-slo-gain" {
		t.Errorf("sixth derived entry is %q", d[5].Name)
	}
	if pp := d[5].Metrics["pp"]; pp < 21.0 || pp > 21.2 {
		t.Errorf("adaptive slo gain = %g pp, want ~21.09 (31.25 - 10.16)", pp)
	}
}

func TestCheckGates(t *testing.T) {
	entries, _ := parseBenchOutput(canned)
	entries = append(entries, derived(entries)...)
	if err := checkGates(entries, 2.0, 10.0, 2.0, 10.0, 0.0); err != nil {
		t.Errorf("gates should pass on the canned snapshot: %v", err)
	}
	if err := checkGates(entries, 10.0, 10.0, 2.0, 10.0, 0.0); err == nil {
		t.Error("uncached speedup 2.58x must fail a 10x gate")
	}
	if err := checkGates(entries, 2.0, 100.0, 2.0, 10.0, 0.0); err == nil {
		t.Error("38x memory reduction must fail a 100x gate")
	}

	// An alloc regression on the cached path must fail.
	regressed, _ := parseBenchOutput(strings.Replace(canned,
		"17.52 ns/op	  57077626 decisions/s	       0 B/op	       0 allocs/op",
		"17.52 ns/op	  57077626 decisions/s	      48 B/op	       2 allocs/op", 1))
	regressed = append(regressed, derived(regressed)...)
	if err := checkGates(regressed, 2.0, 10.0, 2.0, 10.0, 0.0); err == nil ||
		!strings.Contains(err.Error(), "allocates") {
		t.Errorf("alloc regression not caught: %v", err)
	}

	// A snapshot missing the many-streams pair cannot assert the memory
	// contract and must say so.
	noMem, _ := parseBenchOutput(strings.ReplaceAll(canned, "BenchmarkPoolManyStreams", "BenchmarkGone"))
	noMem = append(noMem, derived(noMem)...)
	if err := checkGates(noMem, 2.0, 10.0, 2.0, 10.0, 0.0); err == nil ||
		!strings.Contains(err.Error(), "manystreams") {
		t.Errorf("missing many-streams pair not caught: %v", err)
	}

	// The ~7.2x network batch amplification must fail a 100x gate, and a
	// snapshot without the netserve pair cannot assert the contract.
	if err := checkGates(entries, 2.0, 10.0, 100.0, 10.0, 0.0); err == nil ||
		!strings.Contains(err.Error(), "netserve-batch-speedup") {
		t.Errorf("net batch speedup gate not enforced: %v", err)
	}
	noNet, _ := parseBenchOutput(strings.ReplaceAll(canned, "BenchmarkNetServe", "BenchmarkGone"))
	noNet = append(noNet, derived(noNet)...)
	if err := checkGates(noNet, 2.0, 10.0, 2.0, 10.0, 0.0); err == nil ||
		!strings.Contains(err.Error(), "netserve") {
		t.Errorf("missing netserve pair not caught: %v", err)
	}

	// The binary transport's 13.67x must fail a 100x gate, and an alloc
	// regression on the server's binary decide path must be caught.
	if err := checkGates(entries, 2.0, 10.0, 2.0, 100.0, 0.0); err == nil ||
		!strings.Contains(err.Error(), "binwire") {
		t.Errorf("binwire speedup gate not enforced: %v", err)
	}
	binRegressed, _ := parseBenchOutput(strings.Replace(canned,
		"14804 ns/op	     67549 decisions/s	       0 B/op	       0 allocs/op",
		"14804 ns/op	     67549 decisions/s	      96 B/op	       3 allocs/op", 1))
	binRegressed = append(binRegressed, derived(binRegressed)...)
	if err := checkGates(binRegressed, 2.0, 10.0, 2.0, 10.0, 0.0); err == nil ||
		!strings.Contains(err.Error(), "BinaryServerDecide") {
		t.Errorf("binary server alloc regression not caught: %v", err)
	}

	// The canned +21.09 pp adaptive SLO gain must fail a +30 pp gate, and
	// a snapshot without the gate-compare pair cannot assert the adaptive
	// admission contract.
	if err := checkGates(entries, 2.0, 10.0, 2.0, 10.0, 30.0); err == nil ||
		!strings.Contains(err.Error(), "adaptive-slo-gain") {
		t.Errorf("adaptive slo gain gate not enforced: %v", err)
	}
	noGate, _ := parseBenchOutput(strings.ReplaceAll(canned, "BenchmarkGateCompare", "BenchmarkGone"))
	noGate = append(noGate, derived(noGate)...)
	if err := checkGates(noGate, 2.0, 10.0, 2.0, 10.0, 0.0); err == nil ||
		!strings.Contains(err.Error(), "adaptive-slo-gain") {
		t.Errorf("missing gate-compare pair not caught: %v", err)
	}

	// A snapshot without the decide benchmarks cannot be gated.
	if err := checkGates(nil, 2.0, 10.0, 2.0, 10.0, 0.0); err == nil {
		t.Error("empty snapshot must fail the gate")
	}
}

// TestRunFromInput drives the CLI end-to-end in parse mode: captured
// output in, JSON snapshot out, gates enforced.
func TestRunFromInput(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	out := filepath.Join(dir, "BENCH_test.json")
	if err := os.WriteFile(in, []byte(canned), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := run([]string{"-input", in, "-out", out, "-check"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "perf gates passed") {
		t.Errorf("missing gate confirmation in output: %q", buf.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var entries []Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if len(entries) != 18 { // 12 parsed + 6 derived
		t.Errorf("snapshot has %d entries, want 18", len(entries))
	}

	// And a failing gate must surface as an error.
	if err := run([]string{"-input", in, "-out", out, "-check", "-min-speedup", "1e9"}, &buf); err == nil {
		t.Error("impossible min-speedup should fail")
	}
	if err := run([]string{"-input", in, "-out", out, "-check", "-min-adaptive-slo-gain", "99"}, &buf); err == nil {
		t.Error("impossible min-adaptive-slo-gain should fail")
	}
}

func TestRunNoResults(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(in, []byte("PASS\nok x 0.1s\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := run([]string{"-input", in}, &buf); err == nil {
		t.Error("no benchmark results should be an error")
	}
}
