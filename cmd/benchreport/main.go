// Command benchreport is the perf-trajectory harness: it runs the decide
// and serving benchmarks with -benchmem, parses the results, and emits a
// BENCH_<n>.json snapshot (ns/op, allocs/op, and the decisions/s metric the
// benchmarks report) so hot-path regressions are visible PR over PR.
//
// Because BenchmarkDecide measures the retained naive scorer ("naive")
// alongside the optimized scan ("uncached") and the memoized steady state
// ("cached") in the same run, every snapshot carries its own baseline: the
// derived speedup entries need no stored history to be meaningful, and
// -check can gate on them no matter how fast or slow the machine is.
//
// Usage:
//
//	benchreport -out BENCH_4.json                 # run benchmarks, write snapshot
//	benchreport -out BENCH_4.json -check          # also enforce the perf gates
//	benchreport -input bench.txt -out BENCH_4.json # parse captured `go test -bench` output
//
// The -check gates:
//
//   - BenchmarkDecide/cached must report 0 allocs/op (the steady-state
//     serve path is contractually allocation-free),
//   - BenchmarkDecide/uncached and /cached must be at least -min-speedup
//     times faster than BenchmarkDecide/naive from the same run, and
//   - BenchmarkPoolManyStreams/shared-engine must use at least
//     -min-mem-reduction times fewer bytes per stream than the same run's
//     naive one-Controller-per-stream construction (the Engine/Session
//     memory contract at 10k streams), and
//   - BenchmarkNetServe/batch64 must sustain at least
//     -min-net-batch-speedup times the decisions/s of the same run's
//     single-decide loopback round trips (the network batching contract),
//   - BenchmarkNetServe/binary must sustain at least -min-binwire-speedup
//     times the decisions/s of the same run's single-request JSON decides
//     (the binary transport contract), and
//   - BenchmarkBinaryServerDecide must report 0 allocs/op (the server's
//     steady-state binary decide path is contractually allocation-free;
//     the benchmark's client side allocates nothing, so allocs/op is the
//     server's count), and
//   - BenchmarkGateCompare/adaptive must beat the same run's /static SLO
//     attainment by at least -min-adaptive-slo-gain percentage points
//     under the shared 2x-overload schedule (the adaptive admission
//     contract).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

// Entry is one benchmark result (or derived metric) in the JSON snapshot.
type Entry struct {
	// Name is the benchmark path with the -GOMAXPROCS suffix stripped,
	// e.g. "BenchmarkDecide/cached".
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations,omitempty"`
	NsPerOp    float64 `json:"ns_per_op,omitempty"`
	// BytesPerOp and AllocsPerOp are pointers so a genuine 0 (the value the
	// gates care about) survives JSON encoding while absent -benchmem data
	// is omitted.
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type config struct {
	bench              string
	benchtime          string
	count              int
	heavyBench         string
	heavyBenchtime     string
	overloadBench      string
	overloadBenchtime  string
	pkgs               string
	out                string
	input              string
	check              bool
	minSpeedup         float64
	minMemReduction    float64
	minNetBatchSpeedup float64
	minBinwireSpeedup  float64
	minAdaptiveSLOGain float64
}

func run(args []string, stdout io.Writer) error {
	var cfg config
	fs := flag.NewFlagSet("benchreport", flag.ContinueOnError)
	fs.StringVar(&cfg.bench, "bench",
		"^(BenchmarkDecide|BenchmarkDecideZoo|BenchmarkDecideAtCap|BenchmarkPoolDecide|BenchmarkPoolDecideObserve|BenchmarkPoolDecideBatch|BenchmarkPoolManyStreams|BenchmarkServeBatch|BenchmarkNetServe|BenchmarkBinaryServerDecide|BenchmarkSnapshotRoundTrip)$",
		"benchmark regex passed to go test -bench")
	fs.StringVar(&cfg.benchtime, "benchtime", "300x", "benchtime passed to go test")
	fs.IntVar(&cfg.count, "count", 3,
		"go test -count for the fast benchmarks; duplicate results merge by min ns/op, damping scheduler noise before the speedup gates")
	fs.StringVar(&cfg.heavyBench, "heavy-bench", "^BenchmarkServerUnderScenario$",
		"benchmark regex for the second, slower pass (empty disables it)")
	fs.StringVar(&cfg.heavyBenchtime, "heavy-benchtime", "20x", "benchtime for the heavy pass")
	fs.StringVar(&cfg.overloadBench, "overload-bench", "^BenchmarkGateCompare$",
		"benchmark regex for the wall-clock overload pass, run once (empty disables it)")
	fs.StringVar(&cfg.overloadBenchtime, "overload-benchtime", "1x", "benchtime for the overload pass")
	fs.StringVar(&cfg.pkgs, "pkgs", "./...", "packages passed to go test")
	fs.StringVar(&cfg.out, "out", "", "write the JSON snapshot to this path (default stdout)")
	fs.StringVar(&cfg.input, "input", "", "parse this captured `go test -bench` output instead of running go test")
	fs.BoolVar(&cfg.check, "check", false, "enforce the decide perf gates (0 allocs cached, min speedups)")
	fs.Float64Var(&cfg.minSpeedup, "min-speedup", 2.0,
		"minimum BenchmarkDecide speedup over the same run's naive baseline")
	fs.Float64Var(&cfg.minMemReduction, "min-mem-reduction", 10.0,
		"minimum BenchmarkPoolManyStreams bytes-per-stream reduction of the shared engine over the same run's naive per-stream controllers")
	fs.Float64Var(&cfg.minNetBatchSpeedup, "min-net-batch-speedup", 2.0,
		"minimum BenchmarkNetServe decisions/s amplification of batch64 over the same run's single-decide round trips")
	fs.Float64Var(&cfg.minBinwireSpeedup, "min-binwire-speedup", 10.0,
		"minimum BenchmarkNetServe decisions/s amplification of the binary transport over the same run's single-request JSON decides")
	fs.Float64Var(&cfg.minAdaptiveSLOGain, "min-adaptive-slo-gain", 0.0,
		"minimum BenchmarkGateCompare SLO-attainment gain (percentage points) of the adaptive gate over the same run's static gate")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var text string
	if cfg.input != "" {
		b, err := os.ReadFile(cfg.input)
		if err != nil {
			return err
		}
		text = string(b)
	} else {
		// Two passes: the microsecond-scale decide/serve benchmarks run
		// -count times each (min-merged below), the millisecond-scale
		// scenario benchmarks once with a smaller benchtime.
		fast, err := goTestBench(cfg.bench, cfg.benchtime, cfg.count, cfg.pkgs)
		if err != nil {
			return err
		}
		text = fast
		if cfg.heavyBench != "" {
			heavy, err := goTestBench(cfg.heavyBench, cfg.heavyBenchtime, 1, cfg.pkgs)
			if err != nil {
				return err
			}
			text += "\n" + heavy
		}
		// The overload pass runs once: each iteration drives a fixed
		// wall-clock schedule, so repeating it buys no noise damping —
		// the slo% metric is a property of the schedule, not the host.
		if cfg.overloadBench != "" {
			overload, err := goTestBench(cfg.overloadBench, cfg.overloadBenchtime, 1, cfg.pkgs)
			if err != nil {
				return err
			}
			text += "\n" + overload
		}
	}

	entries, err := parseBenchOutput(text)
	if err != nil {
		return err
	}
	entries = mergeMin(entries)
	if len(entries) == 0 {
		return fmt.Errorf("no benchmark results found")
	}
	entries = append(entries, derived(entries)...)

	js, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	js = append(js, '\n')
	if cfg.out != "" {
		if err := os.WriteFile(cfg.out, js, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %d entries to %s\n", len(entries), cfg.out)
	} else {
		stdout.Write(js)
	}

	if cfg.check {
		if err := checkGates(entries, cfg.minSpeedup, cfg.minMemReduction, cfg.minNetBatchSpeedup, cfg.minBinwireSpeedup, cfg.minAdaptiveSLOGain); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "perf gates passed")
	}
	return nil
}

// goTestBench runs one `go test -bench` pass and returns its output.
func goTestBench(bench, benchtime string, count int, pkgs string) (string, error) {
	args := []string{"test", "-run", "^$", "-bench", bench, "-benchmem",
		"-benchtime", benchtime, "-count", strconv.Itoa(count), pkgs}
	out, err := exec.Command("go", args...).CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("go %s failed: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out), nil
}

// mergeMin collapses repeated results for one benchmark (-count > 1) into
// the fastest run: min ns/op is the standard noise-damping estimator, and
// it is applied symmetrically to the naive baseline and its replacements,
// so the derived speedups compare best case against best case.
func mergeMin(entries []Entry) []Entry {
	byName := map[string]int{}
	var out []Entry
	for _, e := range entries {
		if i, ok := byName[e.Name]; ok {
			if e.NsPerOp < out[i].NsPerOp {
				out[i] = e
			}
			continue
		}
		byName[e.Name] = len(out)
		out = append(out, e)
	}
	return out
}

// benchLine matches one `go test -bench` result line: name, iterations,
// ns/op, then any sequence of "<value> <unit>" pairs (-benchmem columns and
// custom b.ReportMetric units).
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.e+]+) ns/op(.*)$`)

// metricPair matches one trailing "<value> <unit>" column.
var metricPair = regexp.MustCompile(`([0-9.e+-]+) (\S+)`)

// procSuffix is the -GOMAXPROCS decoration go test appends to parallel-
// capable benchmark names.
var procSuffix = regexp.MustCompile(`-\d+$`)

// parseBenchOutput extracts benchmark entries from `go test -bench` output,
// ignoring every non-benchmark line (package headers, PASS/ok, etc.).
func parseBenchOutput(text string) ([]Entry, error) {
	var out []Entry
	for _, line := range strings.Split(text, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q: %v", line, err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %v", line, err)
		}
		e := Entry{Name: procSuffix.ReplaceAllString(m[1], ""), Iterations: iters, NsPerOp: ns}
		for _, pair := range metricPair.FindAllStringSubmatch(m[4], -1) {
			v, err := strconv.ParseFloat(pair[1], 64)
			if err != nil {
				continue
			}
			switch pair[2] {
			case "B/op":
				b := v
				e.BytesPerOp = &b
			case "allocs/op":
				a := v
				e.AllocsPerOp = &a
			default:
				if e.Metrics == nil {
					e.Metrics = map[string]float64{}
				}
				e.Metrics[pair[2]] = v
			}
		}
		out = append(out, e)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// find returns the entry with the given normalized name.
func find(entries []Entry, name string) *Entry {
	for i := range entries {
		if entries[i].Name == name {
			return &entries[i]
		}
	}
	return nil
}

// derived appends the same-run comparison entries the gates (and the BENCH
// trajectory) read: how much faster the optimized scan and the memoized
// steady state are than the naive baseline measured moments earlier, and
// how many times fewer bytes per stream the shared-engine stream table
// costs than one controller per stream.
func derived(entries []Entry) []Entry {
	var out []Entry
	naive := find(entries, "BenchmarkDecide/naive")
	for _, tt := range []struct{ name, against string }{
		{"derived/decide-speedup-uncached-vs-naive", "BenchmarkDecide/uncached"},
		{"derived/decide-speedup-cached-vs-naive", "BenchmarkDecide/cached"},
	} {
		if e := find(entries, tt.against); naive != nil && e != nil && e.NsPerOp > 0 {
			out = append(out, Entry{
				Name:    tt.name,
				Metrics: map[string]float64{"x": naive.NsPerOp / e.NsPerOp},
			})
		}
	}
	shared := find(entries, "BenchmarkPoolManyStreams/shared-engine")
	perCtl := find(entries, "BenchmarkPoolManyStreams/naive-controllers")
	if shared != nil && perCtl != nil &&
		shared.Metrics["bytes/stream"] > 0 && perCtl.Metrics["bytes/stream"] > 0 {
		out = append(out, Entry{
			Name:    "derived/manystreams-bytes-reduction",
			Metrics: map[string]float64{"x": perCtl.Metrics["bytes/stream"] / shared.Metrics["bytes/stream"]},
		})
	}
	netSingle := find(entries, "BenchmarkNetServe/decide")
	netBatch := find(entries, "BenchmarkNetServe/batch64")
	if netSingle != nil && netBatch != nil &&
		netSingle.Metrics["decisions/s"] > 0 && netBatch.Metrics["decisions/s"] > 0 {
		out = append(out, Entry{
			Name:    "derived/netserve-batch-speedup",
			Metrics: map[string]float64{"x": netBatch.Metrics["decisions/s"] / netSingle.Metrics["decisions/s"]},
		})
	}
	netBinary := find(entries, "BenchmarkNetServe/binary")
	if netSingle != nil && netBinary != nil &&
		netSingle.Metrics["decisions/s"] > 0 && netBinary.Metrics["decisions/s"] > 0 {
		out = append(out, Entry{
			Name:    "derived/netserve-binwire-speedup",
			Metrics: map[string]float64{"x": netBinary.Metrics["decisions/s"] / netSingle.Metrics["decisions/s"]},
		})
	}
	// Adaptive-vs-static SLO attainment is a difference, not a ratio: the
	// static gate's slo% can legitimately be near zero under deep overload,
	// so percentage points are the stable unit.
	gateStatic := find(entries, "BenchmarkGateCompare/static")
	gateAdaptive := find(entries, "BenchmarkGateCompare/adaptive")
	if gateStatic != nil && gateAdaptive != nil {
		_, okS := gateStatic.Metrics["slo%"]
		_, okA := gateAdaptive.Metrics["slo%"]
		if okS && okA {
			out = append(out, Entry{
				Name:    "derived/adaptive-slo-gain",
				Metrics: map[string]float64{"pp": gateAdaptive.Metrics["slo%"] - gateStatic.Metrics["slo%"]},
			})
		}
	}
	return out
}

// checkGates enforces the decide-path perf, stream-table memory, and
// network-batching contracts on a parsed snapshot.
func checkGates(entries []Entry, minSpeedup, minMemReduction, minNetBatchSpeedup, minBinwireSpeedup, minAdaptiveSLOGain float64) error {
	cached := find(entries, "BenchmarkDecide/cached")
	if cached == nil {
		return fmt.Errorf("gate: BenchmarkDecide/cached missing from results")
	}
	if cached.AllocsPerOp == nil {
		return fmt.Errorf("gate: BenchmarkDecide/cached has no allocs/op (run with -benchmem)")
	}
	if *cached.AllocsPerOp != 0 {
		return fmt.Errorf("gate: BenchmarkDecide/cached allocates %g/op, want 0", *cached.AllocsPerOp)
	}
	for _, name := range []string{
		"derived/decide-speedup-uncached-vs-naive",
		"derived/decide-speedup-cached-vs-naive",
	} {
		e := find(entries, name)
		if e == nil {
			return fmt.Errorf("gate: %s missing (need BenchmarkDecide naive/uncached/cached in one run)", name)
		}
		if x := e.Metrics["x"]; x < minSpeedup {
			return fmt.Errorf("gate: %s = %.2fx, want >= %.2fx", name, x, minSpeedup)
		}
	}
	mem := find(entries, "derived/manystreams-bytes-reduction")
	if mem == nil {
		return fmt.Errorf("gate: derived/manystreams-bytes-reduction missing (need BenchmarkPoolManyStreams shared-engine/naive-controllers in one run)")
	}
	if x := mem.Metrics["x"]; x < minMemReduction {
		return fmt.Errorf("gate: derived/manystreams-bytes-reduction = %.2fx, want >= %.2fx", x, minMemReduction)
	}
	net := find(entries, "derived/netserve-batch-speedup")
	if net == nil {
		return fmt.Errorf("gate: derived/netserve-batch-speedup missing (need BenchmarkNetServe decide/batch64 in one run)")
	}
	if x := net.Metrics["x"]; x < minNetBatchSpeedup {
		return fmt.Errorf("gate: derived/netserve-batch-speedup = %.2fx, want >= %.2fx", x, minNetBatchSpeedup)
	}
	binwire := find(entries, "derived/netserve-binwire-speedup")
	if binwire == nil {
		return fmt.Errorf("gate: derived/netserve-binwire-speedup missing (need BenchmarkNetServe decide/binary in one run)")
	}
	if x := binwire.Metrics["x"]; x < minBinwireSpeedup {
		return fmt.Errorf("gate: derived/netserve-binwire-speedup = %.2fx, want >= %.2fx", x, minBinwireSpeedup)
	}
	binSrv := find(entries, "BenchmarkBinaryServerDecide")
	if binSrv == nil {
		return fmt.Errorf("gate: BenchmarkBinaryServerDecide missing from results")
	}
	if binSrv.AllocsPerOp == nil {
		return fmt.Errorf("gate: BenchmarkBinaryServerDecide has no allocs/op (run with -benchmem)")
	}
	if *binSrv.AllocsPerOp != 0 {
		return fmt.Errorf("gate: BenchmarkBinaryServerDecide allocates %g/op, want 0", *binSrv.AllocsPerOp)
	}
	gain := find(entries, "derived/adaptive-slo-gain")
	if gain == nil {
		return fmt.Errorf("gate: derived/adaptive-slo-gain missing (need BenchmarkGateCompare static/adaptive in one run)")
	}
	if pp := gain.Metrics["pp"]; pp < minAdaptiveSLOGain {
		return fmt.Errorf("gate: derived/adaptive-slo-gain = %+.1f pp, want >= %+.1f pp", pp, minAdaptiveSLOGain)
	}
	return nil
}
