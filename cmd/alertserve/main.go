// Command alertserve hosts the ALERT network serving front end: an
// alert.Server (shared decision engine + sharded stream table) behind the
// internal/netserve HTTP/JSON API, with bounded admission, periodic idle-
// stream eviction, and graceful drain on SIGINT/SIGTERM.
//
// Usage:
//
//	alertserve -addr 127.0.0.1:8372 -platform CPU1 -task image
//	alertserve -addr :8372 -max-inflight 256 -max-queue 1024 -idle-evict 10m
//	alertserve -addr 127.0.0.1:8372 -binary-addr 127.0.0.1:8373
//	alertserve -addr :8372 -node-id n1 -peers host2:8372,host3:8372
//	alertserve -addr 127.0.0.1:8372 -node-id n1 -membership -peers host2:8372,host3:8372
//
// -node-id and -peers give the node a cluster identity, advertised as soft
// state in GET /v1/stats: routing clients (client/cluster) discover the
// member set from any one node and route streams by consistent hashing,
// migrating live sessions between nodes with GET /v1/streams/{id}/snapshot
// and PUT /v1/streams/{id}. cmd/alertload -addrs drives such a cluster.
//
// -membership additionally runs the self-healing layer: the node
// heartbeats its peers (lease-based failure detection, view served on
// GET /v1/membership), replicates each stream's checkpoint to its ring
// successor every -replicate-every, and when a peer's lease expires
// restores the streams it owned from the freshest replicated checkpoint —
// no external orchestrator. Clients subscribed to the membership view
// (client/cluster.StartSync) follow the cluster through the failover.
//
// -binary-addr adds a second listener speaking the internal/binwire
// framed protocol: persistent pipelined connections, pooled buffers, and
// server-side group commit across connections. Its address is advertised
// in GET /v1/stats, so clients built with PreferBinary upgrade to it
// automatically; cmd/alertload -wire=binary drives it directly. Overload
// and drain produce error frames carrying the same retry_after_ms hint
// the HTTP path sends as a Retry-After header.
//
// Clients talk to it with the typed client package (client/) or plain
// HTTP; cmd/alertload -addr drives it with scenario-shaped load. On
// shutdown the server drains: new requests get 503 + Retry-After while
// everything already admitted finishes, then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/alert-project/alert"
	"github.com/alert-project/alert/internal/membership"
	"github.com/alert-project/alert/internal/netserve"
	"github.com/alert-project/alert/internal/selfheal"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "alertserve:", err)
		os.Exit(1)
	}
}

// run is main with injectable arguments, output, and readiness callback
// (invoked with the bound address once the listener is up), so the server
// is testable end-to-end without a subprocess. It serves until ctx is
// canceled, then drains and returns.
func run(ctx context.Context, args []string, stdout io.Writer, onReady func(addr string)) error {
	fs := flag.NewFlagSet("alertserve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8372", "listen address (host:port; port 0 picks a free port)")
	platName := fs.String("platform", "CPU1", "Embedded | CPU1 | CPU2 | GPU")
	task := fs.String("task", "image", "image | sentence")
	shards := fs.Int("shards", 0, "stream-table shards (0 = one per CPU)")
	queueDepth := fs.Int("queue-depth", 0, "per-shard FIFO capacity (0 = default)")
	maxInflight := fs.Int("max-inflight", 0, "admission gate: concurrent requests (0 = default 64)")
	maxQueue := fs.Int("max-queue", 0, "admission gate: waiting requests before 429 (0 = 2x max-inflight)")
	retryAfter := fs.Duration("retry-after", 0, "backoff hint on 429/503 (0 = 50ms)")
	adaptive := fs.Bool("adaptive", false, "let the measured-delay controller move the admission limits; -max-inflight/-max-queue become initial bounds")
	sloShed := fs.Bool("slo-shed", false, "shed requests whose deadline is predicted unmeetable at admission (429 + drain-estimate Retry-After)")
	binaryAddr := fs.String("binary-addr", "", "binwire listen address (host:port; empty = HTTP/JSON only)")
	coalesceWindow := fs.Duration("coalesce-window", 0, "binary dispatcher wait before flushing a decide batch (0 = group commit, no added latency)")
	nodeID := fs.String("node-id", "", "cluster identity advertised in /v1/stats (empty = standalone)")
	peers := fs.String("peers", "", "comma-separated peer addresses advertised in /v1/stats for client-side member discovery")
	idleEvict := fs.Duration("idle-evict", 0, "evict sessions idle longer than this, swept at the same period (0 = never)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "max wait for in-flight requests on shutdown")
	memberOn := fs.Bool("membership", false, "run the membership + self-healing layer (requires -node-id; -peers become heartbeat seeds)")
	advertise := fs.String("advertise", "", "address peers and clients dial to reach this node (default: the bound listen address)")
	heartbeat := fs.Duration("heartbeat", 0, "membership heartbeat period (0 = 250ms)")
	suspectAfter := fs.Duration("suspect-after", 0, "silence before a peer is suspected (0 = 4x heartbeat)")
	deadAfter := fs.Duration("dead-after", 0, "silence before a suspect is declared dead (0 = 3x suspect-after)")
	replicateEvery := fs.Duration("replicate-every", 0, "checkpoint-replication period to ring successors (0 = 2s)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *memberOn && *nodeID == "" {
		return errors.New("-membership requires -node-id")
	}

	plat, err := alert.PlatformByName(*platName)
	if err != nil {
		return err
	}
	models := alert.ImageCandidates()
	if strings.HasPrefix(strings.ToLower(*task), "sent") {
		models = alert.SentenceCandidates()
	}

	srv, err := alert.NewServer(plat, models, alert.ServerOptions{
		Shards:     *shards,
		QueueDepth: *queueDepth,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, p)
		}
	}
	// Bind before building the front end: the membership layer advertises
	// the bound address, which is only known once the listener is up.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	cfg := netserve.Config{
		MaxInflight: *maxInflight,
		MaxQueue:    *maxQueue,
		RetryAfter:  *retryAfter,
		Adaptive:    *adaptive,
		SLOShed:     *sloShed,
		NodeID:      *nodeID,
		Peers:       peerList,
	}
	var agent *membership.Agent
	var heal *selfheal.Manager
	if *memberOn {
		selfAddr := *advertise
		if selfAddr == "" {
			selfAddr = ln.Addr().String()
			if host, _, err := net.SplitHostPort(selfAddr); err == nil {
				if ip := net.ParseIP(host); ip != nil && ip.IsUnspecified() {
					ln.Close()
					return fmt.Errorf("listening on the unspecified address %s: peers cannot dial it, set -advertise", selfAddr)
				}
			}
		}
		agent, err = membership.New(membership.Config{
			ID:   *nodeID,
			Addr: selfAddr,
			// Wall-clock nanoseconds: strictly above anything a previous
			// instance of this ID ever advertised, so the cluster's memory
			// of our past death cannot outvote this incarnation.
			Incarnation:    uint64(time.Now().UnixNano()),
			Seeds:          peerList,
			HeartbeatEvery: *heartbeat,
			SuspectAfter:   *suspectAfter,
			DeadAfter:      *deadAfter,
			Transport:      &membership.HTTPTransport{},
			OnChange: func(v membership.View) {
				if heal != nil {
					heal.OnViewChange(v)
				}
			},
			Logf: func(format string, args ...any) {
				fmt.Fprintf(stdout, "alertserve: "+format+"\n", args...)
			},
		})
		if err != nil {
			ln.Close()
			return err
		}
		re := *replicateEvery
		if re == 0 {
			re = 2 * time.Second
		}
		heal, err = selfheal.New(selfheal.Config{
			NodeID:         *nodeID,
			Addr:           selfAddr,
			Agent:          agent,
			Server:         srv,
			ReplicateEvery: re,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(stdout, "alertserve: "+format+"\n", args...)
			},
		})
		if err != nil {
			ln.Close()
			return err
		}
		cfg.Membership = agent
		cfg.Recovery = heal
	}
	front := netserve.New(srv, cfg)

	// The binary listener shares the front end's admission gate, stream
	// table, and drain state — it is a second transport, not a second
	// server. Its address rides GET /v1/stats so PreferBinary clients
	// upgrade to it on their own.
	var bserver *netserve.BinaryServer
	if *binaryAddr != "" {
		bln, err := net.Listen("tcp", *binaryAddr)
		if err != nil {
			ln.Close()
			return err
		}
		bserver = netserve.NewBinary(front, bln, netserve.BinaryConfig{CoalesceWindow: *coalesceWindow})
		go bserver.Serve()
	}

	fmt.Fprintf(stdout, "alertserve: listening on %s platform=%s task=%s shards=%d\n",
		ln.Addr(), plat.Name, *task, srv.Shards())
	if bserver != nil {
		fmt.Fprintf(stdout, "alertserve: binary listener on %s coalesce-window=%s\n", bserver.Addr(), *coalesceWindow)
	}
	if *nodeID != "" {
		fmt.Fprintf(stdout, "alertserve: cluster node %q peers=%d\n", *nodeID, len(peerList))
	}
	if *memberOn {
		fmt.Fprintf(stdout, "alertserve: membership on, advertising %s, %d seeds\n", agent.Addr(), len(peerList))
		go agent.Run(ctx)
		go heal.Run(ctx)
	}
	if onReady != nil {
		onReady(ln.Addr().String())
	}

	// Periodic idle-stream reaper, so abandoned streams cannot grow the
	// table forever on a long-lived server.
	reaperDone := make(chan struct{})
	if *idleEvict > 0 {
		go func() {
			defer close(reaperDone)
			tick := time.NewTicker(*idleEvict)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					if n := srv.EvictIdle(*idleEvict); n > 0 {
						fmt.Fprintf(stdout, "alertserve: evicted %d idle streams\n", n)
					}
				case <-ctx.Done():
					return
				}
			}
		}()
	} else {
		close(reaperDone)
	}

	hs := &http.Server{Handler: front}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err // listener failed before shutdown was requested
	case <-ctx.Done():
	}
	// The reaper shares stdout; join it before writing again so a tick in
	// flight cannot race the shutdown prints.
	<-reaperDone

	// Graceful drain: flip the front end first so keep-alive connections
	// get 503 + Retry-After instead of hanging, then close the listener
	// and wait for in-flight requests.
	fmt.Fprintln(stdout, "alertserve: draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := front.Drain(dctx)
	if bserver != nil {
		// Drain first, close after: between the two, binary callers get 503
		// error frames with the Retry-After hint instead of a dead socket.
		bserver.Close()
		fmt.Fprintf(stdout, "alertserve: binary listener closed; served %s\n", bserver.BinStats())
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	<-serveErr // always http.ErrServerClosed after Shutdown
	fmt.Fprintf(stdout, "alertserve: drained; served %s\n", front.NetStats())
	fmt.Fprintf(stdout, "alertserve: stream table %s\n", srv.Stats())
	if drainErr != nil {
		return fmt.Errorf("drain: %w", drainErr)
	}
	return nil
}
