// Command alertserve hosts the ALERT network serving front end: an
// alert.Server (shared decision engine + sharded stream table) behind the
// internal/netserve HTTP/JSON API, with bounded admission, periodic idle-
// stream eviction, and graceful drain on SIGINT/SIGTERM.
//
// Usage:
//
//	alertserve -addr 127.0.0.1:8372 -platform CPU1 -task image
//	alertserve -addr :8372 -max-inflight 256 -max-queue 1024 -idle-evict 10m
//	alertserve -addr :8372 -node-id n1 -peers host2:8372,host3:8372
//
// -node-id and -peers give the node a cluster identity, advertised as soft
// state in GET /v1/stats: routing clients (client/cluster) discover the
// member set from any one node and route streams by consistent hashing,
// migrating live sessions between nodes with GET /v1/streams/{id}/snapshot
// and PUT /v1/streams/{id}. cmd/alertload -addrs drives such a cluster.
//
// Clients talk to it with the typed client package (client/) or plain
// HTTP; cmd/alertload -addr drives it with scenario-shaped load. On
// shutdown the server drains: new requests get 503 + Retry-After while
// everything already admitted finishes, then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/alert-project/alert"
	"github.com/alert-project/alert/internal/netserve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "alertserve:", err)
		os.Exit(1)
	}
}

// run is main with injectable arguments, output, and readiness callback
// (invoked with the bound address once the listener is up), so the server
// is testable end-to-end without a subprocess. It serves until ctx is
// canceled, then drains and returns.
func run(ctx context.Context, args []string, stdout io.Writer, onReady func(addr string)) error {
	fs := flag.NewFlagSet("alertserve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8372", "listen address (host:port; port 0 picks a free port)")
	platName := fs.String("platform", "CPU1", "Embedded | CPU1 | CPU2 | GPU")
	task := fs.String("task", "image", "image | sentence")
	shards := fs.Int("shards", 0, "stream-table shards (0 = one per CPU)")
	queueDepth := fs.Int("queue-depth", 0, "per-shard FIFO capacity (0 = default)")
	maxInflight := fs.Int("max-inflight", 0, "admission gate: concurrent requests (0 = default 64)")
	maxQueue := fs.Int("max-queue", 0, "admission gate: waiting requests before 429 (0 = 2x max-inflight)")
	retryAfter := fs.Duration("retry-after", 0, "backoff hint on 429/503 (0 = 50ms)")
	nodeID := fs.String("node-id", "", "cluster identity advertised in /v1/stats (empty = standalone)")
	peers := fs.String("peers", "", "comma-separated peer addresses advertised in /v1/stats for client-side member discovery")
	idleEvict := fs.Duration("idle-evict", 0, "evict sessions idle longer than this, swept at the same period (0 = never)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "max wait for in-flight requests on shutdown")
	if err := fs.Parse(args); err != nil {
		return err
	}

	plat, err := alert.PlatformByName(*platName)
	if err != nil {
		return err
	}
	models := alert.ImageCandidates()
	if strings.HasPrefix(strings.ToLower(*task), "sent") {
		models = alert.SentenceCandidates()
	}

	srv, err := alert.NewServer(plat, models, alert.ServerOptions{
		Shards:     *shards,
		QueueDepth: *queueDepth,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, p)
		}
	}
	front := netserve.New(srv, netserve.Config{
		MaxInflight: *maxInflight,
		MaxQueue:    *maxQueue,
		RetryAfter:  *retryAfter,
		NodeID:      *nodeID,
		Peers:       peerList,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "alertserve: listening on %s platform=%s task=%s shards=%d\n",
		ln.Addr(), plat.Name, *task, srv.Shards())
	if *nodeID != "" {
		fmt.Fprintf(stdout, "alertserve: cluster node %q peers=%d\n", *nodeID, len(peerList))
	}
	if onReady != nil {
		onReady(ln.Addr().String())
	}

	// Periodic idle-stream reaper, so abandoned streams cannot grow the
	// table forever on a long-lived server.
	reaperDone := make(chan struct{})
	if *idleEvict > 0 {
		go func() {
			defer close(reaperDone)
			tick := time.NewTicker(*idleEvict)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					if n := srv.EvictIdle(*idleEvict); n > 0 {
						fmt.Fprintf(stdout, "alertserve: evicted %d idle streams\n", n)
					}
				case <-ctx.Done():
					return
				}
			}
		}()
	} else {
		close(reaperDone)
	}

	hs := &http.Server{Handler: front}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err // listener failed before shutdown was requested
	case <-ctx.Done():
	}
	// The reaper shares stdout; join it before writing again so a tick in
	// flight cannot race the shutdown prints.
	<-reaperDone

	// Graceful drain: flip the front end first so keep-alive connections
	// get 503 + Retry-After instead of hanging, then close the listener
	// and wait for in-flight requests.
	fmt.Fprintln(stdout, "alertserve: draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := front.Drain(dctx)
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	<-serveErr // always http.ErrServerClosed after Shutdown
	fmt.Fprintf(stdout, "alertserve: drained; served %s\n", front.NetStats())
	fmt.Fprintf(stdout, "alertserve: stream table %s\n", srv.Stats())
	if drainErr != nil {
		return fmt.Errorf("drain: %w", drainErr)
	}
	return nil
}
