package main

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/alert-project/alert"
	"github.com/alert-project/alert/client"
)

// TestServeAndDrain boots the server on a free loopback port, drives it
// through the typed client, then cancels the context and checks the drain
// path runs to completion.
func TestServeAndDrain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ready := make(chan string, 1)
	done := make(chan error, 1)
	var out strings.Builder
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-shards", "2", "-idle-evict", "50ms",
		}, &out, func(addr string) { ready <- addr })
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	c, err := client.New("http://"+addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	spec := alert.Spec{Objective: alert.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9}
	d, est, err := c.Decide(ctx, 1, spec)
	if err != nil {
		t.Fatal(err)
	}
	if est.LatMean <= 0 {
		t.Fatalf("empty decision: %+v / %+v", d, est)
	}
	if err := c.Observe(ctx, 1, alert.Feedback{Decision: d, Latency: est.LatMean, CompletedStage: -1}); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Net.Decides != 1 || stats.Serve.Decisions != 1 {
		t.Errorf("stats = %+v / %+v, want one decide", stats.Net, stats.Serve)
	}

	// The idle reaper must collect the stream once it goes quiet.
	deadline := time.Now().Add(5 * time.Second)
	for {
		ids, err := c.Streams(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("idle reaper never evicted streams %v", ids)
		}
		time.Sleep(10 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
	got := out.String()
	for _, want := range []string{"listening on", "draining", "drained", "stream table"} {
		if !strings.Contains(got, want) {
			t.Errorf("output lacks %q:\n%s", want, got)
		}
	}
}

// TestBinaryListenerFlag boots the server with both listeners, upgrades a
// PreferBinary client onto the advertised binary address, and checks the
// data plane really rode the binary transport before a clean drain.
func TestBinaryListenerFlag(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ready := make(chan string, 1)
	done := make(chan error, 1)
	var out strings.Builder
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-binary-addr", "127.0.0.1:0", "-shards", "2",
		}, &out, func(addr string) { ready <- addr })
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	c, err := client.New("http://"+addr, client.Options{PreferBinary: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	spec := alert.Spec{Objective: alert.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9}
	d, est, err := c.Decide(ctx, 1, spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Observe(ctx, 1, alert.Feedback{Decision: d, Latency: est.LatMean, CompletedStage: -1}); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BinaryAddr == "" {
		t.Error("stats do not advertise the binary listener")
	}
	if stats.Bin == nil || stats.Bin.Decides != 1 || stats.Bin.Observes != 1 {
		t.Errorf("binary counters = %+v, want 1 decide / 1 observe", stats.Bin)
	}
	if stats.Net.Decides != 0 {
		t.Errorf("HTTP served %d decides, want 0 (data plane should ride binary)", stats.Net.Decides)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
	got := out.String()
	for _, want := range []string{"binary listener on", "binary listener closed", "drained"} {
		if !strings.Contains(got, want) {
			t.Errorf("output lacks %q:\n%s", want, got)
		}
	}
}

func TestFlagAndConfigErrors(t *testing.T) {
	ctx := context.Background()
	var out strings.Builder
	if err := run(ctx, []string{"-no-such-flag"}, &out, nil); err == nil {
		t.Error("unknown flag must error")
	}
	if err := run(ctx, []string{"-platform", "nope"}, &out, nil); err == nil {
		t.Error("unknown platform must error")
	}
	if err := run(ctx, []string{"-addr", "256.256.256.256:99999"}, &out, nil); err == nil {
		t.Error("unlistenable address must error")
	}
	if err := run(ctx, []string{"-addr", "127.0.0.1:0", "-binary-addr", "256.256.256.256:99999"}, &out, nil); err == nil {
		t.Error("unlistenable binary address must error")
	}
}

// TestClusterIdentityFlags: -node-id and -peers surface in /v1/stats so
// routing clients can discover the member set from one seed address.
func TestClusterIdentityFlags(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ready := make(chan string, 1)
	done := make(chan error, 1)
	var out strings.Builder
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-shards", "1",
			"-node-id", "n1", "-peers", "10.0.0.2:8372, 10.0.0.3:8372,",
		}, &out, func(addr string) { ready <- addr })
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	c, err := client.New("http://"+addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.NodeID != "n1" {
		t.Errorf("node_id = %q, want n1", stats.NodeID)
	}
	if len(stats.Peers) != 2 || stats.Peers[0] != "10.0.0.2:8372" || stats.Peers[1] != "10.0.0.3:8372" {
		t.Errorf("peers = %v, want the two trimmed addresses", stats.Peers)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
	if !strings.Contains(out.String(), `cluster node "n1" peers=2`) {
		t.Errorf("startup banner lacks cluster identity:\n%s", out.String())
	}
}

// TestAdaptiveFlags: -adaptive and -slo-shed reach the admission gate and
// surface in the /v1/stats overload snapshot, with the static flags-off
// escape hatch staying the default.
func TestAdaptiveFlags(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ready := make(chan string, 1)
	done := make(chan error, 1)
	var out strings.Builder
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-shards", "1",
			"-adaptive", "-slo-shed", "-max-inflight", "4", "-max-queue", "8",
		}, &out, func(addr string) { ready <- addr })
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	c, err := client.New("http://"+addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Overload == nil {
		t.Fatal("stats.overload missing")
	}
	if !stats.Overload.Adaptive || !stats.Overload.SLOShed {
		t.Errorf("overload flags = adaptive %v slo_shed %v, want both true",
			stats.Overload.Adaptive, stats.Overload.SLOShed)
	}
	if stats.Overload.InflightLimit != 4 || stats.Overload.QueueLimit != 8 {
		t.Errorf("initial limits = %d/%d, want 4/8",
			stats.Overload.InflightLimit, stats.Overload.QueueLimit)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}
