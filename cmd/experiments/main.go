// Command experiments regenerates every table and figure of the paper's
// evaluation. Each experiment prints its result as an aligned text table
// whose rows/series mirror the published artifact; DESIGN.md maps every
// experiment ID to the modules that implement it.
//
// Usage:
//
//	experiments -exp all            # everything, full scale (minutes)
//	experiments -exp fig3,fig9      # a subset
//	experiments -exp table4 -quick  # reduced grid for a fast look
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/alert-project/alert/internal/contention"
	"github.com/alert-project/alert/internal/experiment"
	"github.com/alert-project/alert/internal/export"
)

func main() {
	exps := flag.String("exp", "all", "comma-separated experiment ids: fig2,fig3,fig4,fig5,fig6,fig7,fig8,fig9,fig10,fig11,table4,table5 or all")
	quick := flag.Bool("quick", false, "use the reduced grid (faster, noisier)")
	seed := flag.Int64("seed", 42, "experiment seed")
	csvDir := flag.String("csv", "", "also export CSV files into this directory")
	flag.Parse()

	sc := experiment.FullScale()
	if *quick {
		sc = experiment.QuickScale()
	}
	sc.Seed = *seed

	want := map[string]bool{}
	for _, id := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(strings.ToLower(id))] = true
	}
	all := want["all"]
	selected := func(id string) bool { return all || want[id] }

	run := func(id string, fn func() (fmt.Stringer, error)) {
		if !selected(id) {
			return
		}
		start := time.Now()
		res, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("==== %s (%.1fs) ====\n%s\n", id, time.Since(start).Seconds(), res)
	}

	run("fig2", func() (fmt.Stringer, error) { return wrap(experiment.RunFig2(sc)) })
	run("fig3", func() (fmt.Stringer, error) { return wrap(experiment.RunFig3(sc)) })
	run("fig4", func() (fmt.Stringer, error) { return wrap(experiment.RunFigVariance(false, sc)) })
	run("fig5", func() (fmt.Stringer, error) { return wrap(experiment.RunFigVariance(true, sc)) })
	run("fig6", func() (fmt.Stringer, error) { return wrap(experiment.RunFig6(sc)) })

	// Table 4 feeds Figure 7, so compute them together when either is
	// requested.
	if selected("table4") || selected("fig7") {
		start := time.Now()
		t4, err := experiment.RunTable4(sc, experiment.CellOptions{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "table4: %v\n", err)
			os.Exit(1)
		}
		if selected("table4") {
			fmt.Printf("==== table4 (%.1fs) ====\n%s\n", time.Since(start).Seconds(), t4.Render())
		}
		if selected("fig7") {
			fmt.Printf("==== fig7 ====\n%s\n", experiment.Fig7(t4).Render())
		}
	}

	run("table5", func() (fmt.Stringer, error) { return wrap(experiment.RunTable5(sc)) })
	run("fig8", func() (fmt.Stringer, error) { return wrap(experiment.RunFig8(sc)) })
	run("fig9", func() (fmt.Stringer, error) { return wrap(experiment.RunFig9(sc)) })
	if selected("fig10") {
		for _, scenario := range []contention.Scenario{contention.Default, contention.Memory} {
			start := time.Now()
			res, err := experiment.RunFig10(scenario, sc)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fig10: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("==== fig10/%s (%.1fs) ====\n%s\n", scenario, time.Since(start).Seconds(), res.Render())
		}
	}
	run("fig11", func() (fmt.Stringer, error) { return wrap(experiment.RunFig11(sc)) })

	if *csvDir != "" {
		if err := export.WriteAll(*csvDir, sc); err != nil {
			fmt.Fprintf(os.Stderr, "csv export: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("CSV artifacts written to %s\n", *csvDir)
	}
}

// renderer adapts the experiment results' Render methods to fmt.Stringer.
type renderer struct{ render func() string }

func (r renderer) String() string { return r.render() }

func wrap[T interface{ Render() string }](res T, err error) (fmt.Stringer, error) {
	if err != nil {
		return nil, err
	}
	return renderer{res.Render}, nil
}
