// Command experiments regenerates every table and figure of the paper's
// evaluation. Each experiment prints its result as an aligned text table
// whose rows/series mirror the published artifact; DESIGN.md maps every
// experiment ID to the modules that implement it.
//
// Usage:
//
//	experiments -exp all            # everything, full scale (minutes)
//	experiments -exp fig3,fig9      # a subset
//	experiments -exp table4 -quick  # reduced grid for a fast look
//	experiments -exp table4 -parallel 8   # 8 settings per cell at once
//	experiments -exp scenario -scenario phased,thermal  # dynamic environments
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/alert-project/alert/internal/contention"
	"github.com/alert-project/alert/internal/experiment"
	"github.com/alert-project/alert/internal/export"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run is main with injectable arguments and output, so the CLI is testable
// end-to-end without a subprocess.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	exps := fs.String("exp", "all", "comma-separated experiment ids: fig2,fig3,fig4,fig5,fig6,fig7,fig8,fig9,fig10,fig11,table4,table5,scenario or all")
	quick := fs.Bool("quick", false, "use the reduced grid (faster, noisier)")
	scenarios := fs.String("scenario", "all",
		"comma-separated environment scenarios for -exp scenario (see internal/scenario; all = every built-in)")
	seed := fs.Int64("seed", 42, "experiment seed")
	csvDir := fs.String("csv", "", "also export CSV files into this directory")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0),
		"constraint settings run concurrently per cell (results are seed-deterministic at any value; 1 = serial)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	sc := experiment.FullScale()
	if *quick {
		sc = experiment.QuickScale()
	}
	sc.Seed = *seed
	sc.Parallelism = *parallel

	known := map[string]bool{"all": true}
	for _, id := range []string{"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "table4", "table5", "scenario"} {
		known[id] = true
	}
	want := map[string]bool{}
	for _, id := range strings.Split(*exps, ",") {
		id = strings.TrimSpace(strings.ToLower(id))
		if !known[id] {
			return fmt.Errorf("unknown experiment id %q", id)
		}
		want[id] = true
	}
	all := want["all"]
	selected := func(id string) bool { return all || want[id] }

	var firstErr error
	run := func(id string, fn func() (fmt.Stringer, error)) {
		if firstErr != nil || !selected(id) {
			return
		}
		start := time.Now()
		res, err := fn()
		if err != nil {
			firstErr = fmt.Errorf("%s: %w", id, err)
			return
		}
		fmt.Fprintf(stdout, "==== %s (%.1fs) ====\n%s\n", id, time.Since(start).Seconds(), res)
	}

	run("fig2", func() (fmt.Stringer, error) { return wrap(experiment.RunFig2(sc)) })
	run("fig3", func() (fmt.Stringer, error) { return wrap(experiment.RunFig3(sc)) })
	run("fig4", func() (fmt.Stringer, error) { return wrap(experiment.RunFigVariance(false, sc)) })
	run("fig5", func() (fmt.Stringer, error) { return wrap(experiment.RunFigVariance(true, sc)) })
	run("fig6", func() (fmt.Stringer, error) { return wrap(experiment.RunFig6(sc)) })

	// Table 4 feeds Figure 7, so compute them together when either is
	// requested.
	if firstErr == nil && (selected("table4") || selected("fig7")) {
		start := time.Now()
		t4, err := experiment.RunTable4(sc, experiment.CellOptions{})
		if err != nil {
			return fmt.Errorf("table4: %w", err)
		}
		if selected("table4") {
			fmt.Fprintf(stdout, "==== table4 (%.1fs) ====\n%s\n", time.Since(start).Seconds(), t4.Render())
		}
		if selected("fig7") {
			fmt.Fprintf(stdout, "==== fig7 ====\n%s\n", experiment.Fig7(t4).Render())
		}
	}

	run("table5", func() (fmt.Stringer, error) { return wrap(experiment.RunTable5(sc)) })
	run("fig8", func() (fmt.Stringer, error) { return wrap(experiment.RunFig8(sc)) })
	run("fig9", func() (fmt.Stringer, error) { return wrap(experiment.RunFig9(sc)) })
	if firstErr == nil && selected("fig10") {
		for _, scenario := range []contention.Scenario{contention.Default, contention.Memory} {
			start := time.Now()
			res, err := experiment.RunFig10(scenario, sc)
			if err != nil {
				return fmt.Errorf("fig10: %w", err)
			}
			fmt.Fprintf(stdout, "==== fig10/%s (%.1fs) ====\n%s\n", scenario, time.Since(start).Seconds(), res.Render())
		}
	}
	run("fig11", func() (fmt.Stringer, error) { return wrap(experiment.RunFig11(sc)) })
	run("scenario", func() (fmt.Stringer, error) {
		var names []string // nil = every built-in
		if s := strings.TrimSpace(strings.ToLower(*scenarios)); s != "" && s != "all" {
			names = strings.Split(s, ",")
			for i := range names {
				names[i] = strings.TrimSpace(names[i])
			}
		}
		return wrap(experiment.RunScenarioSweep(names, sc))
	})
	if firstErr != nil {
		return firstErr
	}

	if *csvDir != "" {
		if err := export.WriteAll(*csvDir, sc); err != nil {
			return fmt.Errorf("csv export: %w", err)
		}
		fmt.Fprintf(stdout, "CSV artifacts written to %s\n", *csvDir)
	}
	return nil
}

// renderer adapts the experiment results' Render methods to fmt.Stringer.
type renderer struct{ render func() string }

func (r renderer) String() string { return r.render() }

func wrap[T interface{ Render() string }](res T, err error) (fmt.Stringer, error) {
	if err != nil {
		return nil, err
	}
	return renderer{res.Render}, nil
}
