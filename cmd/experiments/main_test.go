package main

import (
	"strings"
	"testing"
)

// TestRunQuickFig3 is the end-to-end smoke test: one cheap experiment at
// quick scale must render its table.
func TestRunQuickFig3(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "fig3", "-quick"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "==== fig3") {
		t.Errorf("missing fig3 banner in:\n%s", out.String())
	}
}

// TestRunParallelDeterminism runs the same experiment serially and with
// -parallel and requires identical output — the flag must never change
// results, only wall-clock time.
func TestRunParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("cell run too slow for -short")
	}
	var serial, parallel strings.Builder
	if err := run([]string{"-exp", "fig8", "-quick", "-parallel", "1"}, &serial); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "fig8", "-quick", "-parallel", "6"}, &parallel); err != nil {
		t.Fatal(err)
	}
	// The banner embeds elapsed seconds; compare everything after it.
	strip := func(s string) string {
		_, rest, ok := strings.Cut(s, "====\n")
		if !ok {
			t.Fatalf("unexpected output shape:\n%s", s)
		}
		return rest
	}
	if strip(serial.String()) != strip(parallel.String()) {
		t.Error("fig8 output differs between -parallel 1 and -parallel 6")
	}
}

// TestRunScenarioSweep exercises the -scenario dimension end-to-end: a
// named-scenario subset must render one row per scenario.
func TestRunScenarioSweep(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "scenario", "-scenario", "thermal,bursty", "-quick"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "==== scenario") {
		t.Fatalf("missing scenario banner in:\n%s", got)
	}
	for _, name := range []string{"thermal", "bursty"} {
		if !strings.Contains(got, name) {
			t.Errorf("missing %s row in:\n%s", name, got)
		}
	}
	if err := run([]string{"-exp", "scenario", "-scenario", "nope"}, &out); err == nil {
		t.Error("unknown scenario name: want error, got nil")
	}
}

// TestRunFlagErrors checks bad invocations surface as errors, not exits.
func TestRunFlagErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Error("unknown flag: want error, got nil")
	}
	if err := run([]string{"-exp", "nosuchfig"}, &out); err == nil {
		t.Error("unknown experiment id: want error, got nil")
	}
}
