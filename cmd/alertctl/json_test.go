package main

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the -json golden file")

// goldenArgs pin a small deterministic run: every line of its -json output
// is committed as testdata/trace_golden.jsonl.
var goldenArgs = []string{
	"-json", "-trace", "-platform", "CPU1", "-task", "image",
	"-contention", "memory", "-inputs", "12", "-seed", "3",
}

const goldenPath = "testdata/trace_golden.jsonl"

// TestJSONGolden runs the CLI in -json trace mode against the committed
// golden transcript. Structure and strings must match exactly; numbers are
// compared with a tiny relative tolerance so a math-library ulp change in
// a future Go release cannot break the build while a real behavior change
// still does. Regenerate with: go test ./cmd/alertctl -run JSONGolden -update
func TestJSONGolden(t *testing.T) {
	var out strings.Builder
	if err := run(goldenArgs, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()

	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	gotLines := splitLines(got)
	wantLines := splitLines(string(want))
	if len(gotLines) != len(wantLines) {
		t.Fatalf("output has %d lines, golden has %d", len(gotLines), len(wantLines))
	}
	// 12 trace records + 1 summary.
	if len(gotLines) != 13 {
		t.Fatalf("output has %d lines, want 13", len(gotLines))
	}
	for i := range gotLines {
		compareJSONLine(t, i, gotLines[i], wantLines[i])
	}

	// The last record is the summary; the rest are trace records in input
	// order.
	var last map[string]any
	if err := json.Unmarshal([]byte(gotLines[len(gotLines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last["type"] != "summary" {
		t.Errorf("final record type = %v, want summary", last["type"])
	}
}

// TestJSONSummaryOnly: without -trace, -json emits exactly one summary
// object.
func TestJSONSummaryOnly(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-json", "-inputs", "30", "-seed", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := splitLines(out.String())
	if len(lines) != 1 {
		t.Fatalf("output has %d lines, want 1:\n%s", len(lines), out.String())
	}
	var s summaryJSON
	if err := json.Unmarshal([]byte(lines[0]), &s); err != nil {
		t.Fatal(err)
	}
	if s.Type != "summary" || s.Inputs != 30 || s.Platform != "CPU1" {
		t.Errorf("summary = %+v", s)
	}
	if s.AvgLatencyS <= 0 || s.AvgQuality <= 0 || s.DeadlineS <= 0 {
		t.Errorf("summary metrics empty: %+v", s)
	}
}

func splitLines(s string) []string {
	return strings.Split(strings.TrimRight(s, "\n"), "\n")
}

// compareJSONLine compares two single-object JSON lines: identical key
// sets, exact non-numeric values, numerics within 1e-9 relative tolerance.
func compareJSONLine(t *testing.T, idx int, got, want string) {
	t.Helper()
	var g, w map[string]any
	if err := json.Unmarshal([]byte(got), &g); err != nil {
		t.Fatalf("line %d: output not JSON: %v\n%s", idx, err, got)
	}
	if err := json.Unmarshal([]byte(want), &w); err != nil {
		t.Fatalf("line %d: golden not JSON: %v\n%s", idx, err, want)
	}
	if len(g) != len(w) {
		t.Errorf("line %d: %d keys, golden has %d", idx, len(g), len(w))
	}
	for k, wv := range w {
		gv, ok := g[k]
		if !ok {
			t.Errorf("line %d: missing key %q", idx, k)
			continue
		}
		switch wn := wv.(type) {
		case float64:
			gn, ok := gv.(float64)
			if !ok {
				t.Errorf("line %d key %q: %v not a number", idx, k, gv)
				continue
			}
			if diff := math.Abs(gn - wn); diff > 1e-9*math.Max(1, math.Abs(wn)) {
				t.Errorf("line %d key %q: %v, golden %v", idx, k, gn, wn)
			}
		default:
			if gv != wv {
				t.Errorf("line %d key %q: %v, golden %v", idx, k, gv, wv)
			}
		}
	}
}
