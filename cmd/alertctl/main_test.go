package main

import (
	"strings"
	"testing"
)

// TestRunSummary is the end-to-end smoke test: a short simulated run must
// print the summary block.
func TestRunSummary(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-inputs", "20", "-seed", "7"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"platform=CPU1", "objective=energy", "inputs=20", "avg_latency="} {
		if !strings.Contains(got, want) {
			t.Errorf("summary missing %q in:\n%s", want, got)
		}
	}
}

// TestRunTraceAndErrorObjective covers the trace path and the error
// objective with a sentence task.
func TestRunTraceAndErrorObjective(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-inputs", "10", "-trace", "-objective", "error",
		"-task", "sentence", "-contention", "memory", "-platform", "CPU2",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "input") || !strings.Contains(got, "model") {
		t.Errorf("trace header missing in:\n%s", got)
	}
	if !strings.Contains(got, "objective=error") {
		t.Errorf("summary missing error objective in:\n%s", got)
	}
}

// TestRunFlagErrors checks bad flags surface as errors, not exits.
func TestRunFlagErrors(t *testing.T) {
	var out strings.Builder
	cases := [][]string{
		{"-platform", "TPU9"},
		{"-objective", "fastest"},
		{"-contention", "gamma-rays"},
		{"-no-such-flag"},
	}
	for _, args := range cases {
		if err := run(args, &out); err == nil {
			t.Errorf("args %v: want error, got nil", args)
		}
	}
}
