// Command alertctl runs the ALERT scheduler over one simulated deployment
// scenario and prints either a per-input trace or a summary — the quickest
// way to watch the controller adapt.
//
// Usage:
//
//	alertctl -platform CPU1 -task image -contention memory \
//	         -objective energy -deadline-factor 1.25 -accuracy 0.93 -trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/alert-project/alert"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "alertctl:", err)
		os.Exit(1)
	}
}

// run is main with injectable arguments and output, so the CLI is testable
// end-to-end without a subprocess.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("alertctl", flag.ContinueOnError)
	platName := fs.String("platform", "CPU1", "Embedded | CPU1 | CPU2 | GPU")
	task := fs.String("task", "image", "image | sentence")
	cont := fs.String("contention", "none", "none | compute | memory")
	objective := fs.String("objective", "energy", "energy (minimize energy) | error (minimize error)")
	deadlineFactor := fs.Float64("deadline-factor", 1.25, "deadline as a multiple of the largest model's latency")
	accuracy := fs.Float64("accuracy", 0.92, "accuracy goal (energy objective)")
	budgetW := fs.Float64("budget-watts", 0, "energy budget as avg watts over the deadline window (error objective; 0 = platform default cap)")
	inputs := fs.Int("inputs", 200, "number of inputs")
	seed := fs.Int64("seed", 1, "simulation seed")
	trace := fs.Bool("trace", false, "print a per-input trace")
	if err := fs.Parse(args); err != nil {
		return err
	}

	plat, err := findPlatform(*platName)
	if err != nil {
		return err
	}
	models := alert.ImageCandidates()
	if strings.HasPrefix(strings.ToLower(*task), "sent") {
		models = alert.SentenceCandidates()
	}

	// The deadline yardstick is the slowest candidate at the top cap.
	slowest := 0.0
	for _, m := range models {
		if lat := m.RefLatency / plat.Speed(plat.PMax); lat > slowest {
			slowest = lat
		}
	}
	deadline := *deadlineFactor * slowest

	spec := alert.Spec{Deadline: deadline}
	switch strings.ToLower(*objective) {
	case "energy":
		spec.Objective = alert.MinimizeEnergy
		spec.AccuracyGoal = *accuracy
	case "error":
		spec.Objective = alert.MaximizeAccuracy
		w := *budgetW
		if w <= 0 {
			w = plat.DefaultCap
		}
		spec.EnergyBudget = w * deadline
	default:
		return fmt.Errorf("unknown objective %q", *objective)
	}

	scenario := alert.NoContention
	switch strings.ToLower(*cont) {
	case "none", "default":
	case "compute":
		scenario = alert.ComputeContention
	case "memory":
		scenario = alert.MemoryContention
	default:
		return fmt.Errorf("unknown contention %q", *cont)
	}

	cfg := alert.SimConfig{
		Platform:   plat,
		Models:     models,
		Spec:       spec,
		Contention: scenario,
		Inputs:     *inputs,
		Seed:       *seed,
	}
	if *trace {
		fmt.Fprintf(stdout, "%-6s %-16s %7s %9s %8s %8s %5s\n",
			"input", "model", "cap(W)", "latency", "quality", "xi", "cont")
		cfg.Trace = func(s alert.TraceSample) {
			mark := ""
			if s.Contention {
				mark = "*"
			}
			fmt.Fprintf(stdout, "%-6d %-16s %7.1f %9.4f %8.4f %8.3f %5s\n",
				s.Input, s.ModelName, s.Decision.CapW, s.Latency, s.Quality, s.TrueXi, mark)
		}
	}

	rep, err := alert.Simulate(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "\nplatform=%s task=%s contention=%s objective=%s deadline=%.4fs\n",
		plat.Name, *task, *cont, *objective, deadline)
	fmt.Fprintf(stdout, "inputs=%d avg_latency=%.4fs avg_energy=%.3fJ avg_quality=%.4f violations=%.1f%% misses=%.1f%%\n",
		rep.Inputs, rep.AvgLatency, rep.AvgEnergy, rep.AvgQuality,
		100*rep.ViolationRate, 100*rep.DeadlineMissRate)
	return nil
}

func findPlatform(name string) (*alert.Platform, error) {
	for _, p := range alert.Platforms() {
		if strings.EqualFold(p.Name, name) {
			return p, nil
		}
	}
	return nil, fmt.Errorf("unknown platform %q", name)
}
