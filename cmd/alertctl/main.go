// Command alertctl runs the ALERT scheduler over one simulated deployment
// scenario and prints either a per-input trace or a summary — the quickest
// way to watch the controller adapt.
//
// Usage:
//
//	alertctl -platform CPU1 -task image -contention memory \
//	         -objective energy -deadline-factor 1.25 -accuracy 0.93 -trace
//	alertctl -json -trace        # one JSON object per input + a summary object
//
// With -json every output line is one JSON object with stable field names:
// a "trace" record per input (when -trace is set) and a final "summary"
// record, so the run pipes straight into jq or a log collector.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/alert-project/alert"
)

// traceJSON is the -json wire form of one input's trace record. Field
// names are stable; changes must be additive.
type traceJSON struct {
	Type         string  `json:"type"` // "trace"
	Input        int     `json:"input"`
	Model        int     `json:"model"`
	ModelName    string  `json:"model_name"`
	CapW         float64 `json:"cap_w"`
	PlannedStopS float64 `json:"planned_stop_s,omitempty"`
	GoalS        float64 `json:"goal_s"`
	LatencyS     float64 `json:"latency_s"`
	EnergyJ      float64 `json:"energy_j"`
	Quality      float64 `json:"quality"`
	TrueXi       float64 `json:"true_xi"`
	DeadlineMet  bool    `json:"deadline_met"`
	Contention   bool    `json:"contention"`
}

// summaryJSON is the -json wire form of the run summary.
type summaryJSON struct {
	Type             string  `json:"type"` // "summary"
	Platform         string  `json:"platform"`
	Task             string  `json:"task"`
	Contention       string  `json:"contention"`
	Objective        string  `json:"objective"`
	DeadlineS        float64 `json:"deadline_s"`
	Inputs           int     `json:"inputs"`
	AvgLatencyS      float64 `json:"avg_latency_s"`
	AvgEnergyJ       float64 `json:"avg_energy_j"`
	AvgQuality       float64 `json:"avg_quality"`
	ViolationRate    float64 `json:"violation_rate"`
	DeadlineMissRate float64 `json:"deadline_miss_rate"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "alertctl:", err)
		os.Exit(1)
	}
}

// run is main with injectable arguments and output, so the CLI is testable
// end-to-end without a subprocess.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("alertctl", flag.ContinueOnError)
	platName := fs.String("platform", "CPU1", "Embedded | CPU1 | CPU2 | GPU")
	task := fs.String("task", "image", "image | sentence")
	cont := fs.String("contention", "none", "none | compute | memory")
	objective := fs.String("objective", "energy", "energy (minimize energy) | error (minimize error)")
	deadlineFactor := fs.Float64("deadline-factor", 1.25, "deadline as a multiple of the largest model's latency")
	accuracy := fs.Float64("accuracy", 0.92, "accuracy goal (energy objective)")
	budgetW := fs.Float64("budget-watts", 0, "energy budget as avg watts over the deadline window (error objective; 0 = platform default cap)")
	inputs := fs.Int("inputs", 200, "number of inputs")
	seed := fs.Int64("seed", 1, "simulation seed")
	trace := fs.Bool("trace", false, "print a per-input trace")
	jsonOut := fs.Bool("json", false, "emit one JSON object per line (trace records and the summary)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	plat, err := alert.PlatformByName(*platName)
	if err != nil {
		return err
	}
	models := alert.ImageCandidates()
	if strings.HasPrefix(strings.ToLower(*task), "sent") {
		models = alert.SentenceCandidates()
	}

	// The deadline yardstick is the slowest candidate at the top cap.
	slowest := 0.0
	for _, m := range models {
		if lat := m.RefLatency / plat.Speed(plat.PMax); lat > slowest {
			slowest = lat
		}
	}
	deadline := *deadlineFactor * slowest

	spec := alert.Spec{Deadline: deadline}
	switch strings.ToLower(*objective) {
	case "energy":
		spec.Objective = alert.MinimizeEnergy
		spec.AccuracyGoal = *accuracy
	case "error":
		spec.Objective = alert.MaximizeAccuracy
		w := *budgetW
		if w <= 0 {
			w = plat.DefaultCap
		}
		spec.EnergyBudget = w * deadline
	default:
		return fmt.Errorf("unknown objective %q", *objective)
	}

	scenario := alert.NoContention
	switch strings.ToLower(*cont) {
	case "none", "default":
	case "compute":
		scenario = alert.ComputeContention
	case "memory":
		scenario = alert.MemoryContention
	default:
		return fmt.Errorf("unknown contention %q", *cont)
	}

	cfg := alert.SimConfig{
		Platform:   plat,
		Models:     models,
		Spec:       spec,
		Contention: scenario,
		Inputs:     *inputs,
		Seed:       *seed,
	}
	enc := json.NewEncoder(stdout)
	if *trace {
		if *jsonOut {
			cfg.Trace = func(s alert.TraceSample) {
				enc.Encode(traceJSON{
					Type:         "trace",
					Input:        s.Input,
					Model:        s.Decision.Model,
					ModelName:    s.ModelName,
					CapW:         s.Decision.CapW,
					PlannedStopS: s.Decision.PlannedStop,
					GoalS:        s.GoalSeconds,
					LatencyS:     s.Latency,
					EnergyJ:      s.Energy,
					Quality:      s.Quality,
					TrueXi:       s.TrueXi,
					DeadlineMet:  s.DeadlineMet,
					Contention:   s.Contention,
				})
			}
		} else {
			fmt.Fprintf(stdout, "%-6s %-16s %7s %9s %8s %8s %5s\n",
				"input", "model", "cap(W)", "latency", "quality", "xi", "cont")
			cfg.Trace = func(s alert.TraceSample) {
				mark := ""
				if s.Contention {
					mark = "*"
				}
				fmt.Fprintf(stdout, "%-6d %-16s %7.1f %9.4f %8.4f %8.3f %5s\n",
					s.Input, s.ModelName, s.Decision.CapW, s.Latency, s.Quality, s.TrueXi, mark)
			}
		}
	}

	rep, err := alert.Simulate(cfg)
	if err != nil {
		return err
	}
	if *jsonOut {
		return enc.Encode(summaryJSON{
			Type:             "summary",
			Platform:         plat.Name,
			Task:             *task,
			Contention:       *cont,
			Objective:        *objective,
			DeadlineS:        deadline,
			Inputs:           rep.Inputs,
			AvgLatencyS:      rep.AvgLatency,
			AvgEnergyJ:       rep.AvgEnergy,
			AvgQuality:       rep.AvgQuality,
			ViolationRate:    rep.ViolationRate,
			DeadlineMissRate: rep.DeadlineMissRate,
		})
	}
	fmt.Fprintf(stdout, "\nplatform=%s task=%s contention=%s objective=%s deadline=%.4fs\n",
		plat.Name, *task, *cont, *objective, deadline)
	fmt.Fprintf(stdout, "inputs=%d avg_latency=%.4fs avg_energy=%.3fJ avg_quality=%.4f violations=%.1f%% misses=%.1f%%\n",
		rep.Inputs, rep.AvgLatency, rep.AvgEnergy, rep.AvgQuality,
		100*rep.ViolationRate, 100*rep.DeadlineMissRate)
	return nil
}
