// Package overload is the adaptive admission subsystem: a resizable gate
// (Gate) shared by the JSON and binary transports, a measured-delay
// controller (Controller) that tunes the gate's effective limits from
// observed queue delay vs. per-request deadline headroom, and an SLO
// tracker (SLOTracker) recording per-stream deadline attainment.
//
// The controller always measures — queue-delay EWMA/percentiles, service
// and headroom EWMAs, shed-by-class counters — so observability is on even
// when adaptation is off and the gate runs its static configuration.
package overload

import (
	"math"
	"sync"
	"time"

	"github.com/alert-project/alert/internal/metrics"
)

// Config sets the gate's static bounds and the controller's policy knobs.
// Zero-valued knobs take the documented defaults.
type Config struct {
	// Inflight and Queue are the static gate bounds — the controller's
	// initial operating point, and its fixed limits when Adaptive is off.
	Inflight int
	Queue    int
	// Adaptive lets the control loop move the effective limits. Off, the
	// limits stay pinned at Inflight/Queue and the loop is a no-op.
	Adaptive bool
	// SLOShed enables hopeless-deadline shedding at admission.
	SLOShed bool
	// AdjustEvery is the control-loop cadence (default 10ms). The loop also
	// waits for at least a handful of fresh queue-delay samples per step.
	AdjustEvery time.Duration
	// TargetFrac sets the queue-delay target as a fraction of the observed
	// deadline headroom EWMA (default 0.5): the gate aims to spend at most
	// half a typical request's headroom on waiting.
	TargetFrac float64
	// FallbackTarget is the queue-delay target before any deadline-carrying
	// request has been observed (default 5ms).
	FallbackTarget time.Duration
	// RetryAfter is the drain-estimate fallback before any service-latency
	// samples exist (default 50ms) — the static hint the server was
	// configured with.
	RetryAfter time.Duration
	// Clock overrides time.Now for tests.
	Clock func() time.Time
}

const (
	defaultAdjustEvery    = 10 * time.Millisecond
	defaultTargetFrac     = 0.5
	defaultFallbackTarget = 5 * time.Millisecond
	defaultRetryAfter     = 50 * time.Millisecond

	// minAdjustSamples is the fewest fresh queue-delay samples a control
	// step needs; below it the loop would be steering on noise.
	minAdjustSamples = 4
	// decreaseBeta is the multiplicative-decrease factor; growth is +1.
	decreaseBeta = 0.7
	// growCap and shrinkFloor bound adaptation relative to the static
	// configuration: limits may grow to 4x and shrink to 1/8 (floor 1).
	growCap     = 4
	shrinkFloor = 8
	// svcInflation is how far the service EWMA must rise above its
	// low-water mark before the controller reads it as contention and
	// shrinks the inflight limit.
	svcInflation = 2.0
	// ewmaAlpha is the smoothing factor of all the controller's EWMAs.
	ewmaAlpha = 0.1
	// maxRetryAfter caps the drain estimate a rejection may hint.
	maxRetryAfter = 30 * time.Second

	// histBuckets is the queue-delay histogram size: bucket i holds delays
	// in (2^(i-1)µs, 2^iµs], so the top bucket is ~2^39µs ≈ 6 days.
	histBuckets = 40
)

// ShedClass labels why the gate refused a request.
type ShedClass int

const (
	// ShedHopeless: the SLO shedder predicted the deadline could not be met.
	ShedHopeless ShedClass = iota
	// ShedOverload: the admission queue was full.
	ShedOverload
	// ShedDeadline: the deadline expired while the request was queued.
	ShedDeadline
	// ShedDraining: the server was draining for shutdown.
	ShedDraining
	shedClasses
)

// Controller is the measured-delay control loop. Two coupled AIMD loops
// tune the gate's effective limits around the static configuration:
//
//   - The inflight limit steers on observed service latency vs. its own
//     low-water mark: service time inflating with concurrency means the
//     engine is past its capacity knee, so the limit shrinks
//     multiplicatively; stable service time while requests wait (queue
//     delay at or above half the target) grows it additively, letting the
//     system discover capacity a conservative static bound left unused.
//
//   - The queue limit steers on observed queue delay: p95 above the target
//     (TargetFrac of the deadline-headroom EWMA) once capacity is maxed or
//     contended shrinks it multiplicatively — shedding starts earlier,
//     bounding how long an admitted request can wait — and delay
//     comfortably under the target re-grows it additively.
//
// All methods are safe for concurrent use.
type Controller struct {
	cfg      Config
	now      func() time.Time
	minInfl  int
	maxInfl  int
	maxQueue int

	mu          sync.Mutex
	limInflight int
	limQueue    int
	lastAdjust  time.Time
	samples     int // fresh queue-delay samples since the last adjust

	qdEWMA       float64 // seconds
	svcEWMA      float64
	svcFloor     float64 // decayed low-water mark of svcEWMA
	headroomEWMA float64

	hist [histBuckets]float64

	increases int64
	decreases int64
	shed      [shedClasses]int64
}

// NewController builds a controller at cfg's static operating point.
func NewController(cfg Config) *Controller {
	if cfg.Inflight < 1 {
		cfg.Inflight = 1
	}
	if cfg.Queue < 1 {
		cfg.Queue = 1
	}
	if cfg.AdjustEvery <= 0 {
		cfg.AdjustEvery = defaultAdjustEvery
	}
	if cfg.TargetFrac <= 0 {
		cfg.TargetFrac = defaultTargetFrac
	}
	if cfg.FallbackTarget <= 0 {
		cfg.FallbackTarget = defaultFallbackTarget
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = defaultRetryAfter
	}
	now := cfg.Clock
	if now == nil {
		now = time.Now
	}
	c := &Controller{
		cfg:         cfg,
		now:         now,
		minInfl:     max(1, cfg.Inflight/shrinkFloor),
		maxInfl:     cfg.Inflight * growCap,
		maxQueue:    cfg.Queue * growCap,
		limInflight: cfg.Inflight,
		limQueue:    cfg.Queue,
	}
	c.lastAdjust = now()
	return c
}

// Limits returns the effective inflight and queue limits right now.
func (c *Controller) Limits() (inflight, queue int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.limInflight, c.limQueue
}

// ObserveAdmission folds in one admitted request: how long it waited at
// the gate and, when positive, its deadline headroom. Called by the Gate
// on every grant; it is also the control loop's clock tick.
func (c *Controller) ObserveAdmission(wait time.Duration, deadlineS float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ws := wait.Seconds()
	if ws < 0 {
		ws = 0
	}
	c.qdEWMA = ewma(c.qdEWMA, ws)
	c.hist[bucketOf(wait)]++
	c.samples++
	if deadlineS > 0 && !math.IsInf(deadlineS, 1) {
		c.headroomEWMA = ewma(c.headroomEWMA, deadlineS)
	}
	c.maybeAdjustLocked(c.now())
}

// ObserveService folds in one completed decide's service time — the
// engine-latency half of the serveability prediction.
func (c *Controller) ObserveService(d time.Duration) {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.svcEWMA = ewma(c.svcEWMA, d.Seconds())
	if c.svcFloor == 0 || c.svcEWMA < c.svcFloor {
		c.svcFloor = c.svcEWMA
	}
}

// maybeAdjustLocked runs one control step if the cadence and sample
// thresholds are met. Caller holds c.mu.
func (c *Controller) maybeAdjustLocked(now time.Time) {
	if !c.cfg.Adaptive {
		return
	}
	if now.Sub(c.lastAdjust) < c.cfg.AdjustEvery || c.samples < minAdjustSamples {
		return
	}
	target := c.cfg.TargetFrac * c.headroomEWMA
	if target <= 0 {
		target = c.cfg.FallbackTarget.Seconds()
	}
	p95 := c.percentileLocked(0.95).Seconds()
	contended := c.svcFloor > 0 && c.svcEWMA > svcInflation*c.svcFloor

	// Inflight loop: service latency is the contention signal. Inflated
	// service time means the engine is past its capacity knee — back off.
	// Stable service time with requests actually waiting means the static
	// bound is leaving capacity unused — raise concurrency to absorb the
	// load. (Growth needs demand: an idle gate learns nothing by growing.)
	switch {
	case contended:
		c.limInflight = c.shrink(c.limInflight, c.minInfl)
	case p95 >= target/2 && c.svcFloor > 0 && c.limInflight < c.maxInfl:
		c.limInflight++
		c.increases++
	}

	// Queue loop: the queue limit bounds how long an admitted request can
	// wait, so it steers on the queue-delay percentile. While the inflight
	// loop still has room to add capacity, a hot queue is its demand
	// signal, not a reason to shed — only once capacity is maxed out (or
	// the engine is contended) does delay above target shrink the queue so
	// shedding starts earlier.
	switch {
	case p95 > target && (contended || c.limInflight >= c.maxInfl):
		c.limQueue = c.shrink(c.limQueue, 1)
	case p95 < target/2 && c.limQueue < c.maxQueue:
		// Comfortable margin: admit more waiting before refusing.
		c.limQueue++
		c.increases++
	}

	// Let the service low-water mark drift up slowly so a real capacity
	// change (faster hardware, lighter specs) can be re-learned.
	c.svcFloor *= 1.01

	// Age the histogram so the percentiles track the current regime.
	for i := range c.hist {
		c.hist[i] *= 0.5
	}
	c.samples = 0
	c.lastAdjust = now
}

// shrink applies one multiplicative-decrease step with the given floor.
func (c *Controller) shrink(limit, floor int) int {
	next := int(float64(limit) * decreaseBeta)
	if next >= limit {
		next = limit - 1
	}
	if next < floor {
		next = floor
	}
	if next != limit {
		c.decreases++
	}
	return next
}

// Hopeless predicts whether a request with the given deadline headroom
// (seconds) would miss it even if admitted now: expected queue delay (p95)
// plus expected service time already exceeds the headroom. Cold start —
// no service samples yet — never predicts hopeless.
func (c *Controller) Hopeless(deadlineS float64) bool {
	if deadlineS <= 0 || math.IsInf(deadlineS, 1) {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.svcEWMA <= 0 {
		return false
	}
	return c.percentileLocked(0.95).Seconds()+c.svcEWMA > deadlineS
}

// DrainEstimate is the controller's current guess at how long the gate
// needs to drain the given backlog: (queued+1) requests through
// limInflight servers at the observed service time, clamped to
// [1ms, 30s]. Before any service samples exist it falls back to the
// configured static hint.
func (c *Controller) DrainEstimate(queued int) time.Duration {
	c.mu.Lock()
	svc, lim := c.svcEWMA, c.limInflight
	c.mu.Unlock()
	if svc <= 0 {
		return c.cfg.RetryAfter
	}
	if queued < 0 {
		queued = 0
	}
	est := time.Duration(float64(queued+1) * svc / float64(lim) * float64(time.Second))
	if est < time.Millisecond {
		est = time.Millisecond
	}
	if est > maxRetryAfter {
		est = maxRetryAfter
	}
	return est
}

// RecordShed counts one refused request by class.
func (c *Controller) RecordShed(class ShedClass) {
	if class < 0 || class >= shedClasses {
		return
	}
	c.mu.Lock()
	c.shed[class]++
	c.mu.Unlock()
}

// Adaptive reports whether the control loop may move the limits.
func (c *Controller) Adaptive() bool { return c.cfg.Adaptive }

// SLOShed reports whether hopeless-deadline shedding is enabled.
func (c *Controller) SLOShed() bool { return c.cfg.SLOShed }

// snapshotLocked fills the controller half of an OverloadSnapshot.
// Caller holds c.mu.
func (c *Controller) snapshotLocked(s *metrics.OverloadSnapshot) {
	s.Adaptive = c.cfg.Adaptive
	s.SLOShed = c.cfg.SLOShed
	s.InflightLimit = c.limInflight
	s.QueueLimit = c.limQueue
	s.QueueDelayEWMA = secsDur(c.qdEWMA)
	s.QueueDelayP50 = c.percentileLocked(0.50)
	s.QueueDelayP95 = c.percentileLocked(0.95)
	s.QueueDelayP99 = c.percentileLocked(0.99)
	s.ServiceEWMA = secsDur(c.svcEWMA)
	s.HeadroomEWMA = secsDur(c.headroomEWMA)
	s.LimitIncreases = c.increases
	s.LimitDecreases = c.decreases
	s.ShedHopeless = c.shed[ShedHopeless]
	s.ShedOverload = c.shed[ShedOverload]
	s.ShedDeadline = c.shed[ShedDeadline]
	s.ShedDraining = c.shed[ShedDraining]
}

// percentileLocked reads percentile p (0..1) off the log-bucketed delay
// histogram, as the upper bound of the bucket holding the rank. Caller
// holds c.mu.
func (c *Controller) percentileLocked(p float64) time.Duration {
	var total float64
	for _, n := range c.hist {
		total += n
	}
	if total <= 0 {
		return 0
	}
	rank := p * total
	var seen float64
	for i, n := range c.hist {
		seen += n
		if seen >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(histBuckets - 1)
}

// bucketOf maps a delay to its histogram bucket: bucket i covers
// (2^(i-1)µs, 2^iµs].
func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	i := 0
	for upper := int64(1); us > upper && i < histBuckets-1; upper <<= 1 {
		i++
	}
	return i
}

// bucketUpper is the inverse: bucket i's upper bound, 2^iµs.
func bucketUpper(i int) time.Duration {
	return time.Duration(int64(1)<<uint(i)) * time.Microsecond
}

func ewma(cur, sample float64) float64 {
	if cur == 0 {
		return sample
	}
	return cur + ewmaAlpha*(sample-cur)
}

func secsDur(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
