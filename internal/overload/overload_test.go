package overload

import (
	"context"
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable, manually-advanced clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func TestControllerStaticLimitsPinned(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{Inflight: 4, Queue: 8, Clock: clk.now})
	for i := 0; i < 100; i++ {
		clk.advance(20 * time.Millisecond)
		c.ObserveAdmission(time.Second, 0.010) // way past any target
	}
	if li, lq := c.Limits(); li != 4 || lq != 8 {
		t.Fatalf("static limits moved: inflight=%d queue=%d", li, lq)
	}
}

func TestControllerShrinksQueueOnDelay(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{Inflight: 4, Queue: 16, Adaptive: true, Clock: clk.now})
	c.ObserveService(2 * time.Millisecond) // stable service
	// Queue delay (20ms) far above target (half of 10ms headroom): the
	// controller first spends the inflight headroom (capacity discovery),
	// then — capacity maxed, delay still hot — shrinks the queue so
	// shedding starts earlier.
	for i := 0; i < 200; i++ {
		clk.advance(5 * time.Millisecond)
		c.ObserveAdmission(20*time.Millisecond, 0.010)
	}
	li, lq := c.Limits()
	if li != 4*growCap {
		t.Fatalf("inflight limit did not max out first: %d", li)
	}
	if lq >= 16 {
		t.Fatalf("queue limit did not shrink under delay: %d", lq)
	}
	if lq < 1 {
		t.Fatalf("queue limit below floor: %d", lq)
	}
}

func TestControllerGrowsQueueUnderComfort(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{Inflight: 2, Queue: 4, Adaptive: true, Clock: clk.now})
	c.ObserveService(3 * time.Millisecond) // stable service
	// Negligible delay against 100ms headroom: the queue probes up, but
	// the inflight limit holds — growth needs demand (requests waiting),
	// and an idle gate learns nothing by growing.
	for i := 0; i < 400; i++ {
		clk.advance(5 * time.Millisecond)
		c.ObserveAdmission(10*time.Microsecond, 0.100)
	}
	li, lq := c.Limits()
	if li != 2 {
		t.Fatalf("inflight limit moved without demand: %d", li)
	}
	if lq <= 4 {
		t.Fatalf("queue limit did not grow: %d", lq)
	}
	if lq > 4*growCap {
		t.Fatalf("queue limit past cap: %d", lq)
	}
}

func TestControllerGrowsInflightUnderDemand(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{Inflight: 2, Queue: 4, Adaptive: true, Clock: clk.now})
	c.ObserveService(2 * time.Millisecond) // stable service
	// Delay past half the target (10ms headroom -> 5ms target) with stable
	// service: demand without contention, so concurrency probes up to the
	// cap to absorb the load.
	for i := 0; i < 200; i++ {
		clk.advance(5 * time.Millisecond)
		c.ObserveAdmission(4*time.Millisecond, 0.010)
	}
	li, _ := c.Limits()
	if li != 2*growCap {
		t.Fatalf("inflight limit did not grow to the cap under demand: %d", li)
	}
}

func TestControllerShrinksInflightOnServiceInflation(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{Inflight: 8, Queue: 16, Adaptive: true, Clock: clk.now})
	// Establish a low service floor, then inflate it well past 2x.
	for i := 0; i < 50; i++ {
		c.ObserveService(2 * time.Millisecond)
	}
	for i := 0; i < 200; i++ {
		c.ObserveService(50 * time.Millisecond)
	}
	// Tick the loop with moderate delay so the grow branch stays off.
	for i := 0; i < 100; i++ {
		clk.advance(5 * time.Millisecond)
		c.ObserveAdmission(4*time.Millisecond, 0.010)
	}
	li, _ := c.Limits()
	if li >= 8 {
		t.Fatalf("inflight limit did not shrink on service inflation: %d", li)
	}
	if li < 1 {
		t.Fatalf("inflight limit below floor: %d", li)
	}
}

func TestControllerHopeless(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{Inflight: 2, Queue: 4, SLOShed: true, Clock: clk.now})
	// Cold start never sheds, whatever the deadline.
	if c.Hopeless(0.0001) {
		t.Fatal("cold controller predicted hopeless")
	}
	for i := 0; i < 50; i++ {
		c.ObserveService(5 * time.Millisecond)
		c.ObserveAdmission(10*time.Millisecond, 0.050)
	}
	// Expected cost ~ p95(>=10ms bucket upper ~16ms) + 5ms service.
	if !c.Hopeless(0.008) {
		t.Fatal("8ms deadline should be hopeless against ~20ms expected cost")
	}
	if c.Hopeless(0.500) {
		t.Fatal("500ms deadline should not be hopeless")
	}
	if c.Hopeless(0) || c.Hopeless(-1) {
		t.Fatal("no-deadline requests can never be hopeless")
	}
}

func TestControllerDrainEstimate(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{Inflight: 2, Queue: 8, RetryAfter: 70 * time.Millisecond, Clock: clk.now})
	// No service samples: static fallback.
	if got := c.DrainEstimate(5); got != 70*time.Millisecond {
		t.Fatalf("cold drain estimate = %v, want static 70ms", got)
	}
	for i := 0; i < 200; i++ {
		c.ObserveService(10 * time.Millisecond)
	}
	// 4 queued + 1 through 2 servers at 10ms each: ~25ms.
	got := c.DrainEstimate(4)
	if got < 20*time.Millisecond || got > 30*time.Millisecond {
		t.Fatalf("drain estimate = %v, want ~25ms", got)
	}
	if got := c.DrainEstimate(0); got < time.Millisecond {
		t.Fatalf("drain estimate below 1ms floor: %v", got)
	}
}

func TestGateFIFOAndLimits(t *testing.T) {
	clk := newFakeClock()
	g := NewGate(NewController(Config{Inflight: 1, Queue: 2, Clock: clk.now}))

	v, _ := g.TryAcquire(0)
	if v != GateAdmitted {
		t.Fatalf("first acquire = %v, want admitted", v)
	}
	v1, w1 := g.TryAcquire(0)
	v2, w2 := g.TryAcquire(0)
	if v1 != GateQueued || v2 != GateQueued {
		t.Fatalf("queue verdicts = %v, %v", v1, v2)
	}
	if v, _ := g.TryAcquire(0); v != GateFull {
		t.Fatalf("over-queue verdict = %v, want full", v)
	}

	order := make(chan int, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if g.Wait(context.Background(), w1) {
			order <- 1
			g.Release()
		}
	}()
	// Ensure w1's goroutine parks before w2's so delivery order is FIFO by
	// enqueue, not goroutine scheduling: grants go strictly front-first.
	go func() {
		defer wg.Done()
		if g.Wait(context.Background(), w2) {
			order <- 2
			g.Release()
		}
	}()
	g.Release()
	wg.Wait()
	if a, b := <-order, <-order; a != 1 || b != 2 {
		t.Fatalf("grant order = %d,%d, want FIFO 1,2", a, b)
	}
	if in, q := g.Occupancy(); in != 0 || q != 0 {
		t.Fatalf("occupancy after drain = %d/%d, want 0/0", in, q)
	}
}

func TestGateWaitCancel(t *testing.T) {
	clk := newFakeClock()
	g := NewGate(NewController(Config{Inflight: 1, Queue: 4, Clock: clk.now}))
	g.ForceAcquire()
	_, w := g.TryAcquire(0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if g.Wait(ctx, w) {
		t.Fatal("cancelled wait reported granted")
	}
	if _, q := g.Occupancy(); q != 0 {
		t.Fatalf("queued = %d after cancel, want 0", q)
	}
	// The slot freed later must not leak to the cancelled waiter.
	g.Release()
	if v, _ := g.TryAcquire(0); v != GateAdmitted {
		t.Fatalf("acquire after cancel+release = %v, want admitted", v)
	}
}

func TestGateCancelGrantRace(t *testing.T) {
	// A grant that lands while the waiter is cancelling must be returned:
	// run many racy iterations and verify no slot leaks.
	clk := newFakeClock()
	g := NewGate(NewController(Config{Inflight: 1, Queue: 8, Clock: clk.now}))
	for i := 0; i < 500; i++ {
		v, _ := g.TryAcquire(0)
		if v != GateAdmitted {
			t.Fatalf("iter %d: initial acquire = %v", i, v)
		}
		_, w := g.TryAcquire(0)
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan bool)
		go func() { done <- g.Wait(ctx, w) }()
		go cancel()
		g.Release()
		if <-done {
			g.Release() // granted: normal path
		}
		if in, q := g.Occupancy(); in != 0 || q != 0 {
			t.Fatalf("iter %d: leaked occupancy %d/%d", i, in, q)
		}
	}
}

func TestGateResizeWakesWaiters(t *testing.T) {
	clk := newFakeClock()
	ctrl := NewController(Config{Inflight: 2, Queue: 8, Adaptive: true, Clock: clk.now})
	g := NewGate(ctrl)
	g.ForceAcquire()
	g.ForceAcquire()
	_, w := g.TryAcquire(0)
	// Grow the effective limit by hand, then release one slot: grantLocked
	// re-reads the limits and should wake the waiter and still have room.
	ctrl.mu.Lock()
	ctrl.limInflight = 4
	ctrl.mu.Unlock()
	g.Release()
	select {
	case <-w.c:
	case <-time.After(time.Second):
		t.Fatal("waiter not woken after limit growth + release")
	}
	if v, _ := g.TryAcquire(0); v != GateAdmitted {
		t.Fatal("grown limit should admit directly")
	}
}

func TestGateShouldShed(t *testing.T) {
	clk := newFakeClock()
	ctrl := NewController(Config{Inflight: 1, Queue: 4, SLOShed: true, Clock: clk.now})
	g := NewGate(ctrl)
	for i := 0; i < 50; i++ {
		ctrl.ObserveService(5 * time.Millisecond)
		ctrl.ObserveAdmission(10*time.Millisecond, 0.050)
	}
	if g.ShouldShed(0.001) {
		t.Fatal("unsaturated gate must never shed")
	}
	g.ForceAcquire()
	if !g.ShouldShed(0.001) {
		t.Fatal("saturated gate should shed a 1ms deadline")
	}
	if g.ShouldShed(1.0) {
		t.Fatal("serveable deadline shed")
	}
	if g.ShouldShed(0) {
		t.Fatal("no-deadline request shed")
	}

	off := NewGate(NewController(Config{Inflight: 1, Queue: 4, Clock: clk.now}))
	off.ForceAcquire()
	if off.ShouldShed(0.000001) {
		t.Fatal("shedding disabled but ShouldShed fired")
	}
}

func TestGateSnapshot(t *testing.T) {
	clk := newFakeClock()
	ctrl := NewController(Config{Inflight: 2, Queue: 4, Adaptive: true, SLOShed: true, Clock: clk.now})
	g := NewGate(ctrl)
	g.ForceAcquire()
	ctrl.ObserveService(4 * time.Millisecond)
	ctrl.ObserveAdmission(2*time.Millisecond, 0.020)
	ctrl.RecordShed(ShedHopeless)
	ctrl.RecordShed(ShedOverload)
	s := g.Snapshot()
	if !s.Adaptive || !s.SLOShed {
		t.Fatalf("mode flags lost: %+v", s)
	}
	if s.Inflight != 1 || s.InflightLimit != 2 || s.QueueLimit != 4 {
		t.Fatalf("occupancy/limits wrong: %+v", s)
	}
	if s.ShedHopeless != 1 || s.ShedOverload != 1 {
		t.Fatalf("shed counters wrong: %+v", s)
	}
	if s.QueueDelayP95 <= 0 || s.ServiceEWMA <= 0 || s.HeadroomEWMA <= 0 {
		t.Fatalf("signal estimates empty: %+v", s)
	}
	if s.RetryAfterHint <= 0 {
		t.Fatalf("no retry hint: %+v", s)
	}
}

func TestSLOTracker(t *testing.T) {
	tr := NewSLOTracker(2)
	tr.RecordServed(7, true)
	tr.RecordServed(7, true)
	tr.RecordServed(7, false)
	tr.RecordShed(7)
	tr.RecordServed(3, true)
	// Past the cap: streams 9 and 10 share the overflow bucket.
	tr.RecordServed(9, true)
	tr.RecordShed(10)

	rows := tr.Snapshot()
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (two streams + overflow)", len(rows))
	}
	if rows[0].Stream != 3 || rows[1].Stream != 7 || rows[2].Stream != -1 {
		t.Fatalf("row order wrong: %+v", rows)
	}
	s7 := rows[1]
	if s7.Served != 3 || s7.Met != 2 || s7.Shed != 1 {
		t.Fatalf("stream 7 tallies wrong: %+v", s7)
	}
	if s7.Attainment != 0.5 {
		t.Fatalf("stream 7 attainment = %v, want 0.5 (2 met of 4 offered)", s7.Attainment)
	}
	ov := rows[2]
	if ov.Served != 1 || ov.Shed != 1 {
		t.Fatalf("overflow tallies wrong: %+v", ov)
	}
	if empty := NewSLOTracker(0).Snapshot(); empty != nil {
		t.Fatalf("empty tracker snapshot = %+v, want nil", empty)
	}
}

func TestBucketRoundTrip(t *testing.T) {
	for _, d := range []time.Duration{0, time.Microsecond, 3 * time.Microsecond,
		time.Millisecond, 700 * time.Millisecond, time.Hour} {
		i := bucketOf(d)
		if up := bucketUpper(i); up < d {
			t.Fatalf("bucket upper %v < sample %v", up, d)
		}
		if i > 0 && bucketUpper(i-1) >= d {
			t.Fatalf("sample %v fits a lower bucket", d)
		}
	}
}
