package overload

import (
	"context"
	"sync"
	"time"

	"github.com/alert-project/alert/internal/metrics"
)

// Verdict is a TryAcquire outcome.
type Verdict int

const (
	// GateAdmitted: a slot was granted immediately; call Release when done.
	GateAdmitted Verdict = iota
	// GateQueued: the request joined the wait queue; call Wait on the
	// returned Waiter.
	GateQueued
	// GateFull: the wait queue is at its limit; the request must be shed.
	GateFull
)

// Gate is the shared admission semaphore both transports sit behind. It is
// a FIFO counting semaphore whose limits are read from the Controller on
// every grant, so the control loop can shrink or grow them live: a shrink
// strands no one (inflight drains down to the new limit as requests
// finish), a grow wakes queued waiters on the next release.
type Gate struct {
	ctrl *Controller

	mu       sync.Mutex
	inflight int
	queued   int
	// waiters is the FIFO wait queue: a slice ring with a head cursor.
	// Cancelled entries are nilled in place and skipped at pop, keeping
	// both pop and cancel O(1) amortized.
	waiters []*Waiter
	head    int
}

// Waiter is one queued admission request.
type Waiter struct {
	c        chan struct{}
	enq      time.Time
	deadline float64
	granted  bool
	pos      int // index into Gate.waiters, for O(1) cancel
}

// NewGate builds a gate governed by ctrl.
func NewGate(ctrl *Controller) *Gate {
	return &Gate{ctrl: ctrl}
}

// Controller returns the gate's governing controller.
func (g *Gate) Controller() *Controller { return g.ctrl }

// TryAcquire attempts admission without waiting. GateAdmitted means a slot
// is held; GateQueued returns a Waiter to Wait on; GateFull means shed.
// deadlineS is the request's deadline headroom in seconds (0 = none); it
// feeds the controller's headroom estimate.
func (g *Gate) TryAcquire(deadlineS float64) (Verdict, *Waiter) {
	g.mu.Lock()
	limI, limQ := g.ctrl.Limits()
	if g.queued == 0 && g.inflight < limI {
		g.inflight++
		g.mu.Unlock()
		g.ctrl.ObserveAdmission(0, deadlineS)
		return GateAdmitted, nil
	}
	if g.queued >= limQ {
		g.mu.Unlock()
		return GateFull, nil
	}
	w := &Waiter{c: make(chan struct{}), enq: g.ctrl.now(), deadline: deadlineS, pos: len(g.waiters)}
	g.waiters = append(g.waiters, w)
	g.queued++
	g.mu.Unlock()
	return GateQueued, w
}

// Wait blocks until the waiter is granted a slot (true — the caller now
// holds it and must Release) or ctx is done (false — the caller holds
// nothing; if a grant raced the cancellation the slot is returned).
func (g *Gate) Wait(ctx context.Context, w *Waiter) bool {
	select {
	case <-w.c:
		return true
	case <-ctx.Done():
	}
	g.mu.Lock()
	if w.granted {
		// The grant landed between ctx firing and taking the lock; the
		// caller is walking away, so put the slot back.
		g.mu.Unlock()
		g.Release()
		return false
	}
	g.waiters[w.pos] = nil
	g.queued--
	g.mu.Unlock()
	return false
}

// Release returns a slot and hands it to the longest-waiting waiter, if
// any. It also re-reads the limits, so a grown inflight limit admits more
// than one waiter here.
func (g *Gate) Release() {
	g.mu.Lock()
	g.inflight--
	g.grantLocked()
	g.mu.Unlock()
}

// grantLocked admits waiters in FIFO order while slots are free. Caller
// holds g.mu. The controller's admission callback runs under g.mu; the
// lock order g.mu -> ctrl.mu is safe because the controller never calls
// back into the gate.
func (g *Gate) grantLocked() {
	limI, _ := g.ctrl.Limits()
	for g.inflight < limI {
		w := g.popLocked()
		if w == nil {
			return
		}
		g.queued--
		g.inflight++
		w.granted = true
		wait := g.ctrl.now().Sub(w.enq)
		close(w.c)
		g.ctrl.ObserveAdmission(wait, w.deadline)
	}
}

// popLocked removes and returns the FIFO-front waiter, skipping cancelled
// entries, or nil if the queue is empty. Caller holds g.mu.
func (g *Gate) popLocked() *Waiter {
	for g.head < len(g.waiters) {
		w := g.waiters[g.head]
		g.waiters[g.head] = nil
		g.head++
		if w != nil {
			return w
		}
	}
	g.waiters = g.waiters[:0]
	g.head = 0
	return nil
}

// Saturated reports whether the gate is at or past its inflight limit or
// has anyone queued — the precondition for SLO shedding: an unsaturated
// gate never sheds.
func (g *Gate) Saturated() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	limI, _ := g.ctrl.Limits()
	return g.inflight >= limI || g.queued > 0
}

// ShouldShed is the SLO shedder's admission-time predicate: shed when
// shedding is enabled, the gate is saturated, and the controller predicts
// the deadline cannot be met.
func (g *Gate) ShouldShed(deadlineS float64) bool {
	if !g.ctrl.SLOShed() || deadlineS <= 0 {
		return false
	}
	return g.Saturated() && g.ctrl.Hopeless(deadlineS)
}

// RetryAfter is the honest hint a rejection should carry right now: the
// controller's drain estimate for the current backlog.
func (g *Gate) RetryAfter() time.Duration {
	g.mu.Lock()
	queued := g.queued
	g.mu.Unlock()
	return g.ctrl.DrainEstimate(queued)
}

// Occupancy returns the current inflight and queued counts.
func (g *Gate) Occupancy() (inflight, queued int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inflight, g.queued
}

// Snapshot assembles the full observability view: occupancy plus the
// controller's limits, signal estimates, and shed counters.
func (g *Gate) Snapshot() metrics.OverloadSnapshot {
	var s metrics.OverloadSnapshot
	g.mu.Lock()
	s.Inflight = g.inflight
	s.Queued = g.queued
	queued := g.queued
	g.mu.Unlock()
	g.ctrl.mu.Lock()
	g.ctrl.snapshotLocked(&s)
	g.ctrl.mu.Unlock()
	s.RetryAfterHint = g.ctrl.DrainEstimate(queued)
	return s
}

// ForceAcquire occupies one slot unconditionally, ignoring the limits.
// Test hook: lets tests pin the gate at saturation.
func (g *Gate) ForceAcquire() {
	g.mu.Lock()
	g.inflight++
	g.mu.Unlock()
}
