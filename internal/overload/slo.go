package overload

import (
	"sort"
	"sync"

	"github.com/alert-project/alert/internal/metrics"
)

// defaultSLOStreams caps how many distinct streams the tracker keeps
// per-stream rows for; streams past the cap share an overflow bucket so a
// million-stream deployment's stats response stays bounded.
const defaultSLOStreams = 1024

// SLOTracker records per-stream deadline attainment: decides served within
// their deadline, decides served late, and requests the gate shed. All
// methods are safe for concurrent use.
type SLOTracker struct {
	mu       sync.Mutex
	cells    map[int]*sloCell
	max      int
	overflow sloCell
}

type sloCell struct {
	served int64
	met    int64
	shed   int64
}

// NewSLOTracker builds a tracker keeping up to maxStreams per-stream rows
// (0 = the 1024 default).
func NewSLOTracker(maxStreams int) *SLOTracker {
	if maxStreams <= 0 {
		maxStreams = defaultSLOStreams
	}
	return &SLOTracker{cells: make(map[int]*sloCell), max: maxStreams}
}

func (t *SLOTracker) cell(stream int) *sloCell {
	if c, ok := t.cells[stream]; ok {
		return c
	}
	if len(t.cells) >= t.max {
		return &t.overflow
	}
	c := &sloCell{}
	t.cells[stream] = c
	return c
}

// RecordServed folds in one served decide and whether it met its deadline.
func (t *SLOTracker) RecordServed(stream int, met bool) {
	t.mu.Lock()
	c := t.cell(stream)
	c.served++
	if met {
		c.met++
	}
	t.mu.Unlock()
}

// RecordShed folds in one request the gate refused — a deadline miss from
// the stream's point of view.
func (t *SLOTracker) RecordShed(stream int) {
	t.mu.Lock()
	t.cell(stream).shed++
	t.mu.Unlock()
}

// Snapshot returns per-stream rows sorted by stream id, with the overflow
// bucket (stream -1) last when populated. Nil when nothing was recorded.
func (t *SLOTracker) Snapshot() []metrics.StreamSLO {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.cells) == 0 && t.overflow == (sloCell{}) {
		return nil
	}
	out := make([]metrics.StreamSLO, 0, len(t.cells)+1)
	for id, c := range t.cells {
		out = append(out, row(id, c))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stream < out[j].Stream })
	if t.overflow != (sloCell{}) {
		out = append(out, row(-1, &t.overflow))
	}
	return out
}

func row(id int, c *sloCell) metrics.StreamSLO {
	r := metrics.StreamSLO{Stream: id, Served: c.served, Met: c.met, Shed: c.shed}
	if n := c.served + c.shed; n > 0 {
		r.Attainment = float64(r.Met) / float64(n)
	}
	return r
}
