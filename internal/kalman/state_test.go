package kalman

import (
	"math"
	"testing"
)

// TestXiFilterStateRoundTrip: a filter restored from State() under the same
// parameters must be indistinguishable from the original — identical
// outputs now, and bit-identical outputs through any shared future
// observation sequence. This is the bit-exactness contract the session
// snapshot machinery (core.SessionSnapshot) is built on.
func TestXiFilterStateRoundTrip(t *testing.T) {
	p := DefaultXiParams()
	orig := NewXiFilter(p)
	obs := []float64{1.2, 0.9, 1.7, 1.05, 2.4, 0.8, 1.0}
	for _, xi := range obs {
		orig.Observe(xi)
	}

	restored := MakeXiFilterFromState(p, orig.State())
	if restored.State() != orig.State() {
		t.Fatalf("restored state %+v != original %+v", restored.State(), orig.State())
	}
	if restored.Mean() != orig.Mean() || restored.Var() != orig.Var() ||
		restored.Gain() != orig.Gain() || restored.ProcessNoise() != orig.ProcessNoise() ||
		restored.PredictiveVar() != orig.PredictiveVar() || restored.N() != orig.N() {
		t.Fatal("restored filter outputs differ from the original's")
	}

	// Replay continuation: both filters fold in the same future and must
	// stay bit-identical at every step (== on float64, not a tolerance).
	future := []float64{1.5, 1.5, 0.7, 3.0, 1.1, 0.95, 1.3, 2.2}
	for i, xi := range future {
		orig.Observe(xi)
		restored.Observe(xi)
		if restored.State() != orig.State() {
			t.Fatalf("step %d: restored filter diverged: %+v vs %+v", i, restored.State(), orig.State())
		}
	}
}

// TestXiFilterStateFresh: the state of a fresh filter restores to a fresh
// filter — snapshotting a stream that never observed anything is exact too.
func TestXiFilterStateFresh(t *testing.T) {
	p := DefaultXiParams()
	fresh := MakeXiFilter(p)
	restored := MakeXiFilterFromState(p, fresh.State())
	if restored != fresh {
		t.Fatalf("restored fresh filter %+v != %+v", restored, fresh)
	}
}

// TestIdlePowerFilterStateRoundTrip mirrors the ξ round trip for the
// idle-power filter.
func TestIdlePowerFilterStateRoundTrip(t *testing.T) {
	p := DefaultIdleParams()
	orig := NewIdlePowerFilter(p)
	for _, r := range []float64{0.25, 0.4, 0.31, 0.28, 0.5} {
		orig.Observe(r)
	}

	restored := MakeIdlePowerFilterFromState(p, orig.State())
	if restored.State() != orig.State() {
		t.Fatalf("restored state %+v != original %+v", restored.State(), orig.State())
	}
	for i, r := range []float64{0.33, 0.27, 0.6, 0.45} {
		orig.Observe(r)
		restored.Observe(r)
		if restored.Ratio() != orig.Ratio() || restored.State() != orig.State() {
			t.Fatalf("step %d: restored idle filter diverged", i)
		}
	}
}

// TestStateCarriesNonFiniteBits: State/MakeFromState are pure codecs — they
// must preserve whatever bits the struct holds, including non-finite values
// a corrupted snapshot might carry, leaving policy to the restore layer.
func TestStateCarriesNonFiniteBits(t *testing.T) {
	st := XiState{K: math.NaN(), Q: math.Inf(1), Y: -0.0, Mu: 1, Sigma2: 2, N: 3}
	f := MakeXiFilterFromState(DefaultXiParams(), st)
	got := f.State()
	if math.Float64bits(got.K) != math.Float64bits(st.K) ||
		math.Float64bits(got.Q) != math.Float64bits(st.Q) ||
		math.Float64bits(got.Y) != math.Float64bits(st.Y) ||
		got.Mu != st.Mu || got.Sigma2 != st.Sigma2 || got.N != st.N {
		t.Fatalf("state round trip altered bits: %+v vs %+v", got, st)
	}
}
