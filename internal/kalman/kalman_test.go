package kalman

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/alert-project/alert/internal/mathx"
)

func TestXiFilterConvergesToConstant(t *testing.T) {
	f := NewXiFilter(DefaultXiParams())
	for i := 0; i < 200; i++ {
		f.Observe(1.4)
	}
	if math.Abs(f.Mean()-1.4) > 1e-6 {
		t.Errorf("mean = %g, want 1.4", f.Mean())
	}
	if f.Std() > 0.05 {
		t.Errorf("std = %g, should be small for constant input", f.Std())
	}
}

func TestXiFilterTracksStep(t *testing.T) {
	f := NewXiFilter(DefaultXiParams())
	for i := 0; i < 100; i++ {
		f.Observe(1.0)
	}
	quietStd := f.Std()
	// Step to 1.5: the mean must lock within a handful of observations and
	// the variance must spike on the way (the volatility signal of §3.4).
	var maxStd float64
	for i := 0; i < 10; i++ {
		f.Observe(1.5)
		if f.Std() > maxStd {
			maxStd = f.Std()
		}
	}
	if math.Abs(f.Mean()-1.5) > 0.05 {
		t.Errorf("mean after step = %g, want ~1.5", f.Mean())
	}
	if maxStd < 3*quietStd {
		t.Errorf("variance did not spike on step: quiet %g, max %g", quietStd, maxStd)
	}
	// And decay again once the new level is stable.
	for i := 0; i < 100; i++ {
		f.Observe(1.5)
	}
	if f.Std() > 2*quietStd+1e-3 {
		t.Errorf("variance did not re-converge: %g vs quiet %g", f.Std(), quietStd)
	}
}

func TestXiFilterNoisyEstimate(t *testing.T) {
	rng := mathx.NewRand(5)
	f := NewXiFilter(DefaultXiParams())
	for i := 0; i < 2000; i++ {
		f.Observe(1.2 + 0.05*rng.NormFloat64())
	}
	if math.Abs(f.Mean()-1.2) > 0.05 {
		t.Errorf("noisy mean = %g, want ~1.2", f.Mean())
	}
	// Predictive std must be on the order of the observation noise: large
	// enough to cover it, not wildly above.
	if f.PredictiveStd() < 0.02 || f.PredictiveStd() > 0.25 {
		t.Errorf("predictive std = %g, want around 0.05", f.PredictiveStd())
	}
}

func TestXiFilterRejectsGarbage(t *testing.T) {
	f := NewXiFilter(DefaultXiParams())
	f.Observe(1.3)
	mu, n := f.Mean(), f.N()
	f.Observe(math.NaN())
	f.Observe(math.Inf(1))
	f.Observe(-2)
	f.Observe(0)
	if f.Mean() != mu || f.N() != n {
		t.Error("garbage observation changed filter state")
	}
}

func TestXiFilterInvariants(t *testing.T) {
	f := func(obs []float64) bool {
		flt := NewXiFilter(DefaultXiParams())
		for _, o := range obs {
			flt.Observe(math.Mod(math.Abs(o), 1e5) + 0.01) // positive, credible
			if math.IsNaN(flt.Mean()) || math.IsInf(flt.Mean(), 0) {
				return false
			}
			if flt.Var() <= 0 || math.IsNaN(flt.Var()) {
				return false
			}
			if flt.Gain() < 0 || flt.Gain() > 1 {
				return false
			}
			if flt.ProcessNoise() < DefaultXiParams().Q0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXiFilterMeanStaysInObservationEnvelope(t *testing.T) {
	f := func(obs []float64) bool {
		flt := NewXiFilter(DefaultXiParams())
		lo, hi := flt.Mean(), flt.Mean()
		for _, o := range obs {
			x := math.Mod(math.Abs(o), 10) + 0.01
			flt.Observe(x)
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
			// The posterior mean is a convex combination of its initial
			// value and the observations, so it must stay inside the
			// envelope spanned by them.
			if flt.Mean() < lo-1e-9 || flt.Mean() > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXiFilterReset(t *testing.T) {
	p := DefaultXiParams()
	f := NewXiFilter(p)
	for i := 0; i < 50; i++ {
		f.Observe(2.0)
	}
	f.Reset()
	if f.Mean() != p.Mu0 || f.Var() != p.Var0 || f.N() != 0 || f.Gain() != p.K0 {
		t.Error("reset did not restore initial state")
	}
}

func TestPaperLiteralParamsDegenerate(t *testing.T) {
	// Documents why DefaultXiParams lowers Q0: with the literal constants
	// the posterior std is pinned near sqrt(Q0) ~= 0.32 and the gain near
	// 1 no matter how quiet the input is.
	f := NewXiFilter(PaperLiteralXiParams())
	for i := 0; i < 500; i++ {
		f.Observe(1.0)
	}
	if f.Std() < 0.25 {
		t.Errorf("expected the literal-constant filter to stay pinned at high variance, got std %g", f.Std())
	}
	if f.Gain() < 0.95 {
		t.Errorf("expected saturated gain, got %g", f.Gain())
	}
}

func TestPredictiveVarDominatesPosterior(t *testing.T) {
	f := NewXiFilter(DefaultXiParams())
	rng := mathx.NewRand(9)
	for i := 0; i < 300; i++ {
		f.Observe(1 + 0.1*rng.NormFloat64())
		if f.PredictiveVar() < f.Var() {
			t.Fatal("predictive variance below posterior variance")
		}
	}
}

func TestIdlePowerFilterConverges(t *testing.T) {
	f := NewIdlePowerFilter(DefaultIdleParams())
	for i := 0; i < 300; i++ {
		f.Observe(0.22)
	}
	if math.Abs(f.Ratio()-0.22) > 0.01 {
		t.Errorf("ratio = %g, want 0.22", f.Ratio())
	}
}

func TestIdlePowerFilterTracksDrift(t *testing.T) {
	f := NewIdlePowerFilter(DefaultIdleParams())
	for i := 0; i < 100; i++ {
		f.Observe(0.2)
	}
	for i := 0; i < 200; i++ {
		f.Observe(0.5) // co-runner arrives, idle draw rises
	}
	if math.Abs(f.Ratio()-0.5) > 0.05 {
		t.Errorf("ratio after drift = %g, want ~0.5", f.Ratio())
	}
}

func TestIdlePowerFilterRejectsGarbage(t *testing.T) {
	f := NewIdlePowerFilter(DefaultIdleParams())
	f.Observe(0.3)
	r, n := f.Ratio(), f.N()
	f.Observe(math.NaN())
	f.Observe(-1)
	f.Observe(math.Inf(1))
	if f.Ratio() != r || f.N() != n {
		t.Error("garbage observation changed idle filter state")
	}
}

func TestIdlePowerFilterReset(t *testing.T) {
	p := DefaultIdleParams()
	f := NewIdlePowerFilter(p)
	f.Observe(0.9)
	f.Reset()
	if f.Ratio() != p.Phi0 || f.N() != 0 {
		t.Error("reset did not restore initial state")
	}
}
