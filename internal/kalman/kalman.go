// Package kalman implements the two estimators at the heart of the ALERT
// runtime (Wan et al., USENIX ATC 2020):
//
//   - XiFilter: the adaptive-noise scalar Kalman filter of Eq. 5 that tracks
//     the global slowdown factor ξ, the single random variable relating the
//     current execution environment to the offline profiling environment.
//     Its novelty (relative to textbook filters) is twofold: the process
//     noise Q adapts to recent innovation magnitude with a forgetting factor
//     (following Akhlaghi et al. 2017), and the posterior *variance* is a
//     first-class output used by the controller as a volatility signal, not
//     just an internal quantity.
//
//   - IdlePowerFilter: the fixed-gain filter of Eq. 8 that tracks φ, the
//     ratio of DNN-idle system power to the active power cap, needed by the
//     energy prediction of Eq. 9 because co-located jobs keep drawing power
//     while the inference job waits for its next input.
package kalman

import "math"

// XiParams collects the Eq. 5 constants. The zero value is not useful; use
// DefaultXiParams, which matches the paper's initialization (§3.4).
type XiParams struct {
	// K0 is the initial Kalman gain K(0).
	K0 float64
	// R is the (constant) measurement noise.
	R float64
	// Q0 is the initial process noise and also its floor: the paper caps
	// Q from below at Q(0) so the filter never becomes complacent.
	Q0 float64
	// Mu0 is the initial mean of ξ; 1 means "behaves like the profile".
	Mu0 float64
	// Var0 is the initial variance of ξ.
	Var0 float64
	// Alpha is the forgetting factor for the adaptive process noise.
	Alpha float64
}

// DefaultXiParams returns the filter configuration used by this
// implementation: the paper's initialization (K(0)=0.5, µ(0)=1, σ²(0)=0.1,
// α=0.3, R=0.001) with the process-noise floor lowered to Q(0)=1e-4.
//
// The paper states Q(0)=0.1, but with R=0.001 that floor fixes the
// steady-state posterior at σ ≈ √Q(0) ≈ 0.32 and the gain at ≈0.99
// regardless of how quiet the environment is — the filter degenerates to
// "trust the last observation, with enormous uncertainty", which
// contradicts the paper's own worked example (§3.4) of completion
// probabilities like 97 % vs 99.9 % that require σ on the order of a few
// percent. With Q(0)=1e-4 the adaptive process noise does what the
// Akhlaghi extension intends: σ settles near 0.02 in calm environments and
// inflates past 0.1 within two or three surprise observations. See
// PaperLiteralXiParams for the stated constants.
func DefaultXiParams() XiParams {
	return XiParams{K0: 0.5, R: 0.001, Q0: 1e-4, Mu0: 1, Var0: 0.1, Alpha: 0.3}
}

// PaperLiteralXiParams returns the constants exactly as §3.4 states them,
// including Q(0)=0.1. Kept for reference and for the sensitivity tests
// that document why the default deviates.
func PaperLiteralXiParams() XiParams {
	return XiParams{K0: 0.5, R: 0.001, Q0: 0.1, Mu0: 1, Var0: 0.1, Alpha: 0.3}
}

// XiFilter tracks the global slowdown factor. It is deliberately scalar:
// ALERT's key design bet is that one number (plus its variance) suffices to
// re-rank the entire DNN × power-cap configuration space.
type XiFilter struct {
	p XiParams

	k      float64 // Kalman gain K(n)
	q      float64 // adaptive process noise Q(n)
	y      float64 // last innovation y(n)
	mu     float64 // posterior mean µ(n)
	sigma2 float64 // posterior variance σ²(n)
	n      int     // observations folded in so far
}

// NewXiFilter constructs a filter with the given parameters.
func NewXiFilter(p XiParams) *XiFilter {
	f := MakeXiFilter(p)
	return &f
}

// MakeXiFilter returns an initialized filter by value, for embedding in a
// larger per-stream struct (e.g. a core.Session) without a separate heap
// allocation per filter.
func MakeXiFilter(p XiParams) XiFilter {
	return XiFilter{
		p:      p,
		k:      p.K0,
		q:      p.Q0,
		mu:     p.Mu0,
		sigma2: p.Var0,
	}
}

// Observe folds one slowdown observation xi = t_measured / t_profiled into
// the filter, following Eq. 5 exactly:
//
//	Q(n) = max{Q(0), αQ(n−1) + (1−α)(K(n−1)·y(n−1))²}
//	K(n) = ((1−K(n−1))σ²(n−1) + Q(n)) / ((1−K(n−1))σ²(n−1) + Q(n) + R)
//	y(n) = ξ_obs − µ(n−1)
//	µ(n) = µ(n−1) + K(n)·y(n)
//	σ²(n) = (1−K(n−1))σ²(n−1) + Q(n)
//
// maxCredibleXi bounds admissible slowdown observations. A measured
// slowdown of a million means a broken clock, not a slow machine; admitting
// it would overflow the squared-innovation update and poison the filter.
const maxCredibleXi = 1e6

// Non-finite, non-positive, or absurdly large observations are ignored: a
// crashed or skipped inference carries no timing information, and admitting
// NaN would poison every subsequent prediction.
func (f *XiFilter) Observe(xi float64) {
	if math.IsNaN(xi) || math.IsInf(xi, 0) || xi <= 0 || xi > maxCredibleXi {
		return
	}
	kPrev := f.k
	ky := kPrev * f.y
	f.q = math.Max(f.p.Q0, f.p.Alpha*f.q+(1-f.p.Alpha)*ky*ky)

	prior := (1-kPrev)*f.sigma2 + f.q
	f.k = prior / (prior + f.p.R)

	f.y = xi - f.mu
	f.mu += f.k * f.y
	f.sigma2 = prior
	f.n++
}

// Mean returns the posterior mean µ(n) of ξ.
func (f *XiFilter) Mean() float64 { return f.mu }

// Var returns the posterior variance σ²(n) of ξ. The controller reads this
// as a volatility signal: high variance demotes long-latency configurations
// because their deadline-completion probability collapses first.
func (f *XiFilter) Var() float64 { return f.sigma2 }

// Std returns the posterior standard deviation of ξ.
func (f *XiFilter) Std() float64 { return math.Sqrt(f.sigma2) }

// PredictiveVar returns the variance of the *next observation* of ξ: the
// posterior variance of the mean, plus the process noise the state will
// accumulate before that observation, plus the measurement noise R. The
// controller's deadline probabilities (Eq. 6) are statements about the next
// input's realized slowdown, not about the mean, so using the posterior
// alone would systematically under-margin every decision.
func (f *XiFilter) PredictiveVar() float64 { return f.sigma2 + f.q + f.p.R }

// PredictiveStd returns the square root of PredictiveVar.
func (f *XiFilter) PredictiveStd() float64 { return math.Sqrt(f.PredictiveVar()) }

// Gain returns the current Kalman gain, exposed for tests and introspection.
func (f *XiFilter) Gain() float64 { return f.k }

// ProcessNoise returns the current adaptive process noise Q(n).
func (f *XiFilter) ProcessNoise() float64 { return f.q }

// N returns the number of observations folded in.
func (f *XiFilter) N() int { return f.n }

// Reset restores the filter to its initial state, used when the deployment
// switches to a different profile table (e.g. platform migration).
func (f *XiFilter) Reset() {
	f.k = f.p.K0
	f.q = f.p.Q0
	f.y = 0
	f.mu = f.p.Mu0
	f.sigma2 = f.p.Var0
	f.n = 0
}

// XiState is the complete mutable state of an XiFilter — everything the
// recursion of Eq. 5 carries from one observation to the next, exported so
// a serving layer can snapshot a filter, ship it to another process, and
// resume it there with bit-identical behaviour (see MakeXiFilterFromState).
// The parameters are deliberately not part of the state: they belong to the
// engine configuration both endpoints already share.
type XiState struct {
	// K is the Kalman gain K(n), Q the adaptive process noise Q(n), Y the
	// last innovation y(n), Mu the posterior mean µ(n), Sigma2 the posterior
	// variance σ²(n).
	K, Q, Y, Mu, Sigma2 float64
	// N counts the observations folded in so far.
	N int64
}

// State captures the filter's mutable state. Restoring it with
// MakeXiFilterFromState under the same parameters yields a filter whose
// every future output is bit-identical to this one's.
func (f *XiFilter) State() XiState {
	return XiState{K: f.k, Q: f.q, Y: f.y, Mu: f.mu, Sigma2: f.sigma2, N: int64(f.n)}
}

// MakeXiFilterFromState rebuilds a filter from a captured state, by value
// for embedding. It is the inverse of State: the restored filter and the
// original produce bit-identical observation sequences from here on.
func MakeXiFilterFromState(p XiParams, st XiState) XiFilter {
	return XiFilter{
		p:      p,
		k:      st.K,
		q:      st.Q,
		y:      st.Y,
		mu:     st.Mu,
		sigma2: st.Sigma2,
		n:      int(st.N),
	}
}

// IdleParams collects the Eq. 8 constants. M0 is the initial process
// variance M(0), S the process noise, V the measurement noise, Phi0 the
// initial idle-power ratio estimate.
type IdleParams struct {
	M0, S, V, Phi0 float64
}

// DefaultIdleParams returns the paper's initialization:
// M(0)=0.01, S=0.0001, V=0.001. φ(0) defaults to 0.3, a typical idle-to-cap
// ratio on the platforms profiled in §2.
func DefaultIdleParams() IdleParams {
	return IdleParams{M0: 0.01, S: 0.0001, V: 0.001, Phi0: 0.3}
}

// IdlePowerFilter tracks φ(n), the predicted ratio of DNN-idle power to the
// inference power cap (Eq. 8). Unlike XiFilter its gain schedule is the
// classic fixed-noise recursion — idle power drifts slowly, so adaptivity
// buys nothing there.
type IdlePowerFilter struct {
	p   IdleParams
	m   float64 // process variance M(n)
	phi float64 // posterior estimate φ(n)
	n   int
}

// NewIdlePowerFilter constructs the filter.
func NewIdlePowerFilter(p IdleParams) *IdlePowerFilter {
	f := MakeIdlePowerFilter(p)
	return &f
}

// MakeIdlePowerFilter returns an initialized filter by value, the embedding
// companion of MakeXiFilter.
func MakeIdlePowerFilter(p IdleParams) IdlePowerFilter {
	return IdlePowerFilter{p: p, m: p.M0, phi: p.Phi0}
}

// Observe folds one measurement of p_idle / p_cap into the estimate:
//
//	W(n) = (M(n−1)+S) / (M(n−1)+S+V)
//	M(n) = (1−W(n))(M(n−1)+S)
//	φ(n) = φ(n−1) + W(n)·(obs − φ(n−1))
func (f *IdlePowerFilter) Observe(ratio float64) {
	if math.IsNaN(ratio) || math.IsInf(ratio, 0) || ratio < 0 {
		return
	}
	w := (f.m + f.p.S) / (f.m + f.p.S + f.p.V)
	f.m = (1 - w) * (f.m + f.p.S)
	f.phi += w * (ratio - f.phi)
	f.n++
}

// Ratio returns the posterior idle-power ratio φ(n).
func (f *IdlePowerFilter) Ratio() float64 { return f.phi }

// N returns the number of observations folded in.
func (f *IdlePowerFilter) N() int { return f.n }

// Reset restores the initial state.
func (f *IdlePowerFilter) Reset() {
	f.m = f.p.M0
	f.phi = f.p.Phi0
	f.n = 0
}

// IdleState is the complete mutable state of an IdlePowerFilter, the Eq. 8
// companion of XiState: M the process variance M(n), Phi the posterior
// estimate φ(n), N the observation count.
type IdleState struct {
	M, Phi float64
	N      int64
}

// State captures the filter's mutable state for snapshot/restore.
func (f *IdlePowerFilter) State() IdleState {
	return IdleState{M: f.m, Phi: f.phi, N: int64(f.n)}
}

// MakeIdlePowerFilterFromState rebuilds a filter from a captured state, by
// value for embedding; the inverse of State.
func MakeIdlePowerFilterFromState(p IdleParams, st IdleState) IdlePowerFilter {
	return IdlePowerFilter{p: p, m: st.M, phi: st.Phi, n: int(st.N)}
}
