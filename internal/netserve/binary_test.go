package netserve

import (
	"bytes"
	"context"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/alert-project/alert"
	"github.com/alert-project/alert/internal/binwire"
)

// startBinary binds a loopback listener, attaches a BinaryServer to the
// front end, and starts accepting; Close runs at test cleanup.
func startBinary(t *testing.T, front *Server, cfg BinaryConfig) *BinaryServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	bs := NewBinary(front, ln, cfg)
	go bs.Serve()
	t.Cleanup(func() { bs.Close() })
	return bs
}

// rawConn drives the binary listener with hand-built frames — the tests
// below deliberately sit underneath client.BinaryTransport so they pin the
// wire itself, not the client's interpretation of it.
type rawConn struct {
	t    *testing.T
	conn net.Conn
	rd   *binwire.Reader
	id   uint64
}

func dialBinary(t *testing.T, addr string) *rawConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &rawConn{t: t, conn: conn, rd: binwire.NewReader(conn)}
}

func (rc *rawConn) send(frame []byte) {
	rc.t.Helper()
	if _, err := rc.conn.Write(frame); err != nil {
		rc.t.Fatalf("write frame: %v", err)
	}
}

func (rc *rawConn) next() binwire.Frame {
	rc.t.Helper()
	f, err := rc.rd.Next()
	if err != nil {
		rc.t.Fatalf("read frame: %v", err)
	}
	return f
}

// expect reads one frame and requires the given type and id.
func (rc *rawConn) expect(want binwire.MsgType, id uint64) binwire.Frame {
	rc.t.Helper()
	f := rc.next()
	if f.Type != want || f.ID != id {
		if f.Type == binwire.MsgError {
			code, ms, msg, _ := binwire.DecodeError(f.Body)
			rc.t.Fatalf("got error frame code=%d retry_after_ms=%d %q, want type %d id %d", code, ms, msg, want, id)
		}
		rc.t.Fatalf("got frame type=%d id=%d, want type %d id %d", f.Type, f.ID, want, id)
	}
	return f
}

func (rc *rawConn) decide(stream int, spec alert.Spec) (alert.Decision, alert.Estimate) {
	rc.t.Helper()
	rc.id++
	rc.send(binwire.AppendDecide(nil, rc.id, stream, spec))
	f := rc.expect(binwire.MsgDecideResp, rc.id)
	d, e, _, err := binwire.DecodeDecideResp(f.Body)
	if err != nil {
		rc.t.Fatal(err)
	}
	return d, e
}

func (rc *rawConn) observe(stream int, fb alert.Feedback) {
	rc.t.Helper()
	rc.id++
	rc.send(binwire.AppendObserve(nil, rc.id, stream, fb))
	rc.expect(binwire.MsgObserveResp, rc.id)
}

// expectError reads one frame and requires an error with the given code,
// returning its retry_after_ms hint.
func (rc *rawConn) expectError(id uint64, code uint16) int64 {
	rc.t.Helper()
	f := rc.expect(binwire.MsgError, id)
	gotCode, ms, msg, err := binwire.DecodeError(f.Body)
	if err != nil {
		rc.t.Fatal(err)
	}
	if gotCode != code {
		rc.t.Fatalf("error frame code %d (%q), want %d", gotCode, msg, code)
	}
	return ms
}

func sameDecision(a, b alert.Decision) bool {
	return a.Model == b.Model && a.Cap == b.Cap &&
		math.Float64bits(a.CapW) == math.Float64bits(b.CapW) &&
		math.Float64bits(a.PlannedStop) == math.Float64bits(b.PlannedStop) &&
		math.Float64bits(a.Overhead) == math.Float64bits(b.Overhead)
}

// TestBinaryDecideMatchesInProcess pins the tentpole invariant at the
// frame level: a stream driven over the binary listener — decide, observe
// the measured latency, decide again — produces the exact decision
// sequence, bit for bit, of the same stream driven against alert.Server
// in-process.
func TestBinaryDecideMatchesInProcess(t *testing.T) {
	front := New(testAlertServer(t, 2), Config{})
	bs := startBinary(t, front, BinaryConfig{})
	rc := dialBinary(t, bs.Addr())
	ref := testAlertServer(t, 2)

	spec := alert.Spec{Objective: alert.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9}
	const stream = 3
	for i := 0; i < 40; i++ {
		d, est := rc.decide(stream, spec)
		rd, rest := ref.Decide(stream, spec)
		if !sameDecision(d, rd) {
			t.Fatalf("step %d: binary decision %+v != in-process %+v", i, d, rd)
		}
		if math.Float64bits(est.LatMean) != math.Float64bits(rest.LatMean) ||
			math.Float64bits(est.Energy) != math.Float64bits(rest.Energy) {
			t.Fatalf("step %d: estimates diverge: %+v vs %+v", i, est, rest)
		}
		fb := alert.Feedback{Decision: d, Latency: est.LatMean * 1.07, CompletedStage: -1}
		rc.observe(stream, fb)
		ref.Observe(stream, fb)
	}

	snap := bs.BinStats()
	if snap.Decides != 40 || snap.Observes != 40 {
		t.Errorf("counters = decides %d observes %d, want 40/40", snap.Decides, snap.Observes)
	}
	if snap.FramesIn != 80 || snap.FramesOut != 80 {
		t.Errorf("frames = in %d out %d, want 80/80", snap.FramesIn, snap.FramesOut)
	}
}

// TestBinaryBatch checks the client-sent batch frame: results come back in
// request order and match what the engine computes in-process.
func TestBinaryBatch(t *testing.T) {
	front := New(testAlertServer(t, 2), Config{})
	bs := startBinary(t, front, BinaryConfig{})
	rc := dialBinary(t, bs.Addr())
	ref := testAlertServer(t, 2)

	spec := alert.Spec{Objective: alert.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9}
	reqs := []alert.BatchRequest{
		{Stream: 1, Spec: spec},
		{Stream: 2, Spec: spec},
		{Stream: 1, Spec: spec},
	}
	rc.id++
	rc.send(binwire.AppendBatch(nil, rc.id, reqs))
	f := rc.expect(binwire.MsgBatchResp, rc.id)
	res, err := binwire.DecodeBatchResp(f.Body, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.DecideBatch(reqs)
	if len(res) != len(want) {
		t.Fatalf("%d results, want %d", len(res), len(want))
	}
	for i := range res {
		if res[i].Stream != want[i].Stream || !sameDecision(res[i].Decision, want[i].Decision) {
			t.Fatalf("result %d: %+v != in-process %+v", i, res[i], want[i])
		}
	}
	if snap := bs.BinStats(); snap.Batches != 1 || snap.BatchDecisions != 3 {
		t.Errorf("batch counters = %d/%d, want 1/3", snap.Batches, snap.BatchDecisions)
	}
}

// TestBinaryOverloadRetryAfter squeezes the gate to MaxInflight=1 /
// MaxQueue=1 and checks the binary path's rejection carries the same
// Retry-After semantics as the HTTP 429: an error frame with the
// configured hint in retry_after_ms, and the queued request still served
// once the token frees.
func TestBinaryOverloadRetryAfter(t *testing.T) {
	front := New(testAlertServer(t, 1), Config{
		MaxInflight: 1, MaxQueue: 1, RetryAfter: 25 * time.Millisecond,
	})
	bs := startBinary(t, front, BinaryConfig{})
	spec := alert.Spec{Objective: alert.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9}

	front.HoldTokenForTest()
	queued := dialBinary(t, bs.Addr())
	queued.send(binwire.AppendDecide(nil, 1, 5, spec))
	// Wait until that decide actually occupies the single queue slot
	// before probing, or the probe could win the slot instead.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, depth := front.gate.Occupancy()
		if depth == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first decide never reached the admission queue")
		}
		time.Sleep(time.Millisecond)
	}

	rejected := dialBinary(t, bs.Addr())
	rejected.send(binwire.AppendDecide(nil, 2, 6, spec))
	if ms := rejected.expectError(2, binwire.CodeOverloaded); ms != 25 {
		t.Fatalf("retry_after_ms = %d, want 25", ms)
	}

	front.ReleaseTokenForTest()
	queued.expect(binwire.MsgDecideResp, 1)
	if snap := bs.BinStats(); snap.RejectedOverload == 0 {
		t.Errorf("rejected_overload = %d, want > 0", snap.RejectedOverload)
	}
}

// TestBinaryDrainSemantics mirrors the HTTP drain contract frame by frame:
// after Drain, decides and evicts bounce with 503 + Retry-After,
// checkpoint stays ungated, and export stays drain-exempt so sessions can
// leave the node.
func TestBinaryDrainSemantics(t *testing.T) {
	front := New(testAlertServer(t, 1), Config{RetryAfter: 40 * time.Millisecond})
	bs := startBinary(t, front, BinaryConfig{})
	rc := dialBinary(t, bs.Addr())

	spec := alert.Spec{Objective: alert.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9}
	rc.decide(11, spec)

	if err := front.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	rc.id++
	rc.send(binwire.AppendDecide(nil, rc.id, 11, spec))
	if ms := rc.expectError(rc.id, binwire.CodeUnavailable); ms != 40 {
		t.Fatalf("draining retry_after_ms = %d, want 40", ms)
	}
	rc.id++
	rc.send(binwire.AppendStreamReq(nil, binwire.MsgEvict, rc.id, 11))
	rc.expectError(rc.id, binwire.CodeUnavailable)

	rc.id++
	rc.send(binwire.AppendStreamReq(nil, binwire.MsgCheckpoint, rc.id, 11))
	f := rc.expect(binwire.MsgSnapshotResp, rc.id)
	_, ckBlob, err := binwire.DecodeSnapshot(f.Type, f.Body)
	if err != nil {
		t.Fatal(err)
	}
	ck := append([]byte(nil), ckBlob...)

	rc.id++
	rc.send(binwire.AppendStreamReq(nil, binwire.MsgExport, rc.id, 11))
	f = rc.expect(binwire.MsgSnapshotResp, rc.id)
	_, exBlob, err := binwire.DecodeSnapshot(f.Type, f.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ck, exBlob) {
		t.Error("checkpoint and export of the same session produced different blobs")
	}
	if snap := bs.BinStats(); snap.RejectedDraining != 2 || snap.Exports != 1 || snap.Checkpoints != 1 {
		t.Errorf("drain counters = %+v", snap)
	}
}

// TestBinaryMigration exports a warmed session over the wire, imports it
// into a second node, and checks the restored session is bit-identical (a
// checkpoint on the target re-marshals to the exported bytes). Missing
// streams 404; importing over a live stream conflicts with 409.
func TestBinaryMigration(t *testing.T) {
	frontA := New(testAlertServer(t, 1), Config{})
	frontB := New(testAlertServer(t, 1), Config{})
	bsA := startBinary(t, frontA, BinaryConfig{})
	bsB := startBinary(t, frontB, BinaryConfig{})
	a := dialBinary(t, bsA.Addr())
	b := dialBinary(t, bsB.Addr())

	spec := alert.Spec{Objective: alert.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9}
	const stream = 21
	for i := 0; i < 5; i++ {
		d, est := a.decide(stream, spec)
		a.observe(stream, alert.Feedback{Decision: d, Latency: est.LatMean, CompletedStage: -1})
	}

	// Export from A; the stream is gone afterwards.
	a.id++
	a.send(binwire.AppendStreamReq(nil, binwire.MsgExport, a.id, stream))
	f := a.expect(binwire.MsgSnapshotResp, a.id)
	_, blob, err := binwire.DecodeSnapshot(f.Type, f.Body)
	if err != nil {
		t.Fatal(err)
	}
	exported := append([]byte(nil), blob...)
	a.id++
	a.send(binwire.AppendStreamReq(nil, binwire.MsgExport, a.id, stream))
	a.expectError(a.id, binwire.CodeNotFound)

	// Import into B and read it back: byte-identical session state.
	b.id++
	b.send(binwire.AppendSnapshot(nil, binwire.MsgImport, b.id, stream, exported))
	b.expect(binwire.MsgImportResp, b.id)
	b.id++
	b.send(binwire.AppendStreamReq(nil, binwire.MsgCheckpoint, b.id, stream))
	f = b.expect(binwire.MsgSnapshotResp, b.id)
	_, blob, err = binwire.DecodeSnapshot(f.Type, f.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, exported) {
		t.Error("imported session re-marshals to different bytes than the export")
	}

	// A second import over the live stream conflicts.
	b.id++
	b.send(binwire.AppendSnapshot(nil, binwire.MsgImport, b.id, stream, exported))
	b.expectError(b.id, binwire.CodeConflict)
}

// TestBinaryVersionRejected sends a frame stamped with a future version:
// the server answers one error frame naming the version it speaks and
// hangs up (it cannot trust the rest of the byte stream).
func TestBinaryVersionRejected(t *testing.T) {
	front := New(testAlertServer(t, 1), Config{})
	bs := startBinary(t, front, BinaryConfig{})
	rc := dialBinary(t, bs.Addr())

	frame := binwire.AppendStreamReq(nil, binwire.MsgEvict, 9, 1)
	frame[4] = 2 // version byte
	rc.send(frame)
	f := rc.expect(binwire.MsgError, 9)
	code, _, msg, err := binwire.DecodeError(f.Body)
	if err != nil {
		t.Fatal(err)
	}
	if code != binwire.CodeBadRequest || !strings.Contains(msg, "version") {
		t.Fatalf("version rejection = code %d %q", code, msg)
	}
	if _, err := rc.rd.Next(); err == nil {
		t.Fatal("connection stayed open after version mismatch")
	}
}

// TestBinaryUnknownTypeKeepsConnection sends a frame with an unassigned
// type: the server answers an error frame but keeps the connection — the
// framing is intact, so later frames are still trustworthy.
func TestBinaryUnknownTypeKeepsConnection(t *testing.T) {
	front := New(testAlertServer(t, 1), Config{})
	bs := startBinary(t, front, BinaryConfig{})
	rc := dialBinary(t, bs.Addr())

	rc.send(binwire.AppendStreamReq(nil, binwire.MsgType(99), 1, 1))
	rc.expectError(1, binwire.CodeBadRequest)
	spec := alert.Spec{Objective: alert.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9}
	rc.decide(2, spec) // still served
	if snap := bs.BinStats(); snap.BadFrames != 1 {
		t.Errorf("bad_frames = %d, want 1", snap.BadFrames)
	}
}

// TestBinaryCoalesce pipelines a burst of decides on one connection under
// a coalescing window and checks the dispatcher served them as shared
// DecideBatch flushes rather than one engine crossing each.
func TestBinaryCoalesce(t *testing.T) {
	front := New(testAlertServer(t, 2), Config{})
	bs := startBinary(t, front, BinaryConfig{CoalesceWindow: 30 * time.Millisecond})
	rc := dialBinary(t, bs.Addr())

	spec := alert.Spec{Objective: alert.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9}
	const burst = 8
	var frames []byte
	for i := 1; i <= burst; i++ {
		frames = binwire.AppendDecide(frames, uint64(i), i, spec)
	}
	rc.send(frames)

	got := make(map[uint64]bool)
	for i := 0; i < burst; i++ {
		f := rc.next()
		if f.Type != binwire.MsgDecideResp {
			t.Fatalf("frame %d: type %d", i, f.Type)
		}
		got[f.ID] = true
	}
	if len(got) != burst {
		t.Fatalf("saw %d distinct responses, want %d", len(got), burst)
	}
	snap := bs.BinStats()
	if snap.Decides != burst {
		t.Errorf("decides = %d, want %d", snap.Decides, burst)
	}
	if snap.Coalesced < 2 || snap.CoalesceFlushes < 1 {
		t.Errorf("coalesced = %d across %d flushes, want a shared flush", snap.Coalesced, snap.CoalesceFlushes)
	}
}

// TestStatsAdvertisesBinary checks GET /v1/stats grows the binary
// listener's address and counters once one is attached — the discovery
// hook PreferBinary clients rely on.
func TestStatsAdvertisesBinary(t *testing.T) {
	front := New(testAlertServer(t, 1), Config{})

	var before StatsResponse
	if code := doJSON(t, front, http.MethodGet, "/v1/stats", nil, &before); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if before.BinaryAddr != "" || before.Bin != nil {
		t.Fatalf("stats advertise a binary listener before one exists: %+v", before)
	}

	bs := startBinary(t, front, BinaryConfig{})
	rc := dialBinary(t, bs.Addr())
	rc.decide(1, alert.Spec{Objective: alert.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9})

	var after StatsResponse
	if code := doJSON(t, front, http.MethodGet, "/v1/stats", nil, &after); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if after.BinaryAddr != bs.Addr() {
		t.Errorf("binary_addr = %q, want %q", after.BinaryAddr, bs.Addr())
	}
	if after.Bin == nil || after.Bin.Decides != 1 {
		t.Errorf("bin counters = %+v, want 1 decide", after.Bin)
	}
}

// TestMetricsEndpoint checks the Prometheus exposition: the endpoint is
// ungated, text-format, and carries serve, HTTP, and binary families.
func TestMetricsEndpoint(t *testing.T) {
	front := New(testAlertServer(t, 1), Config{})
	bs := startBinary(t, front, BinaryConfig{})
	rc := dialBinary(t, bs.Addr())
	rc.decide(1, alert.Spec{Objective: alert.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9})

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	front.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE alert_serve_decisions_total counter",
		"alert_serve_decisions_total 1",
		"alert_http_decides_total",
		"alert_binwire_decides_total 1",
		"alert_binwire_conns 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}
