package netserve

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/alert-project/alert"
	"github.com/alert-project/alert/internal/binwire"
)

// waitQueued polls until the gate's queue depth reaches want — tests that
// need a request parked at the gate before probing use this instead of
// sleeping.
func waitQueued(t *testing.T, s *Server, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, depth := s.gate.Occupancy(); depth >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %d", want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRetryHintClamp pins the Retry-After clamp table: the hint a 429
// carries never exceeds the request's remaining deadline headroom, is
// floored at 1ms so it stays a usable hint, and degenerate deadlines
// (zero, negative, infinite) leave the configured hint untouched.
func TestRetryHintClamp(t *testing.T) {
	s := New(testAlertServer(t, 1), Config{RetryAfter: 50 * time.Millisecond})
	cases := []struct {
		name      string
		deadlineS float64
		want      time.Duration
	}{
		{"no deadline", 0, 50 * time.Millisecond},
		{"negative deadline", -3, 50 * time.Millisecond},
		{"roomy deadline", 10, 50 * time.Millisecond},
		{"exact deadline", 0.05, 50 * time.Millisecond},
		{"clamped", 0.02, 20 * time.Millisecond},
		{"sub-millisecond floors at 1ms", 0.0001, time.Millisecond},
		{"infinite deadline", math.Inf(1), 50 * time.Millisecond},
		{"huge deadline", 1e300, 50 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := s.retryHint(tc.deadlineS); got != tc.want {
			t.Errorf("%s: retryHint(%g) = %v, want %v", tc.name, tc.deadlineS, got, tc.want)
		}
	}
}

// TestRetryHintClampE2E drives the clamp through the wire: a static gate
// configured with a 50ms hint rejects a request that only has 20ms of
// deadline left, and the 429 body hints 20ms — not a retry scheduled past
// the caller's own deadline.
func TestRetryHintClampE2E(t *testing.T) {
	s := New(testAlertServer(t, 1), Config{
		MaxInflight: 1, MaxQueue: 1, RetryAfter: 50 * time.Millisecond,
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	s.HoldTokenForTest()
	// Park one long-deadline request in the only queue slot.
	parked, _ := json.Marshal(DecideRequest{Stream: 1, Spec: Spec{
		Objective: ObjectiveMinEnergy, DeadlineS: 30, AccuracyGoal: 0.9,
	}})
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Post(ts.URL+"/v1/decide", "application/json", bytes.NewReader(parked))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	waitQueued(t, s, 1)

	probe, _ := json.Marshal(DecideRequest{Stream: 2, Spec: Spec{
		Objective: ObjectiveMinEnergy, DeadlineS: 0.02, AccuracyGoal: 0.9,
	}})
	resp, err := http.Post(ts.URL+"/v1/decide", "application/json", bytes.NewReader(probe))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	var e ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.RetryAfterMs != 20 {
		t.Errorf("retry_after_ms = %d, want 20 (clamped to deadline headroom)", e.RetryAfterMs)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After header = %q, want %q (ceil to whole seconds, floor 1)", ra, "1")
	}

	s.ReleaseTokenForTest()
	<-done
}

// TestAdmissionTimeoutEdges pins the deadline→admission-bound conversion
// for the degenerate inputs a client can put on the wire: zero and
// negative mean "no bound", sub-millisecond values survive the float math,
// and +Inf/NaN/overflow must not come out already expired.
func TestAdmissionTimeoutEdges(t *testing.T) {
	cases := []struct {
		name    string
		seconds float64
		want    time.Duration
		bounded bool
	}{
		{"zero", 0, 0, false},
		{"negative", -1, 0, false},
		{"sub-millisecond", 0.0005, 500 * time.Microsecond, true},
		{"one nanosecond", 1e-9, time.Nanosecond, true},
		{"plain", 0.2, 200 * time.Millisecond, true},
		{"positive infinity", math.Inf(1), 0, false},
		{"negative infinity", math.Inf(-1), 0, false},
		{"NaN", math.NaN(), 0, false},
		{"overflows int64", 1e300, 0, false},
	}
	for _, tc := range cases {
		d, ok := admissionTimeout(tc.seconds)
		if ok != tc.bounded || (ok && d != tc.want) {
			t.Errorf("%s: admissionTimeout(%g) = (%v, %v), want (%v, %v)",
				tc.name, tc.seconds, d, ok, tc.want, tc.bounded)
		}
	}
}

// TestSubMillisecondDeadlineHTTP: a 0.5ms deadline that cannot clear the
// queue is rejected promptly as a deadline expiry, and the hint it carries
// is floored at 1ms rather than rounding to a useless zero.
func TestSubMillisecondDeadlineHTTP(t *testing.T) {
	s := New(testAlertServer(t, 1), Config{MaxInflight: 1, MaxQueue: 4})
	ts := httptest.NewServer(s)
	defer ts.Close()

	s.HoldTokenForTest()
	defer s.ReleaseTokenForTest()

	body, _ := json.Marshal(DecideRequest{Stream: 1, Spec: Spec{
		Objective: ObjectiveMinEnergy, DeadlineS: 0.0005, AccuracyGoal: 0.9,
	}})
	resp, err := http.Post(ts.URL+"/v1/decide", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	var e ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.RetryAfterMs < 1 {
		t.Errorf("retry_after_ms = %d, want >= 1", e.RetryAfterMs)
	}
	if snap := s.NetStats(); snap.RejectedDeadline != 1 {
		t.Errorf("rejected_deadline = %d, want 1", snap.RejectedDeadline)
	}
}

// TestBinaryDeadlineEdges drives the same degenerate deadlines through the
// binary listener: +Inf admits once capacity frees (JSON cannot even carry
// it — the binary wire can, and it must mean "infinitely patient", not
// "already expired"), and a sub-millisecond deadline expires in the queue
// with a non-zero hint.
func TestBinaryDeadlineEdges(t *testing.T) {
	front := New(testAlertServer(t, 1), Config{MaxInflight: 1, MaxQueue: 4})
	bs := startBinary(t, front, BinaryConfig{})

	// +Inf deadline: queues patiently, served after release.
	front.HoldTokenForTest()
	inf := dialBinary(t, bs.Addr())
	inf.send(binwire.AppendDecide(nil, 1, 5, alert.Spec{
		Objective: alert.MinimizeEnergy, Deadline: math.Inf(1), AccuracyGoal: 0.9,
	}))
	waitQueued(t, front, 1)
	front.ReleaseTokenForTest()
	f := inf.expect(binwire.MsgDecideResp, 1)
	if _, est, _, err := binwire.DecodeDecideResp(f.Body); err != nil || est.LatMean <= 0 {
		t.Fatalf("infinite-deadline decide not served: est=%+v err=%v", est, err)
	}

	// Sub-millisecond deadline with the slot held: expires in queue, 429
	// frame with a floored (>=1ms) hint.
	front.HoldTokenForTest()
	defer front.ReleaseTokenForTest()
	tight := dialBinary(t, bs.Addr())
	tight.send(binwire.AppendDecide(nil, 2, 6, alert.Spec{
		Objective: alert.MinimizeEnergy, Deadline: 0.0005, AccuracyGoal: 0.9,
	}))
	if ms := tight.expectError(2, binwire.CodeOverloaded); ms < 1 {
		t.Errorf("retry_after_ms = %d, want >= 1", ms)
	}
	if snap := bs.BinStats(); snap.RejectedDeadline != 1 {
		t.Errorf("rejected_deadline = %d, want 1", snap.RejectedDeadline)
	}
}

// TestHopelessShedHTTP exercises the SLO shedder end to end: with the gate
// saturated and the controller warmed to a 10ms expected service time, a
// request with only 1ms of deadline is shed before it queues — 429 with
// the drain estimate as the hint — and every ledger (net counters, shed
// classes, per-stream SLO) records it.
func TestHopelessShedHTTP(t *testing.T) {
	s := New(testAlertServer(t, 1), Config{MaxInflight: 1, MaxQueue: 4, SLOShed: true})
	ts := httptest.NewServer(s)
	defer ts.Close()

	s.gate.Controller().ObserveService(10 * time.Millisecond)
	s.HoldTokenForTest() // saturate: inflight == limit
	defer s.ReleaseTokenForTest()

	body, _ := json.Marshal(DecideRequest{Stream: 3, Spec: Spec{
		Objective: ObjectiveMinEnergy, DeadlineS: 0.001, AccuracyGoal: 0.9,
	}})
	start := time.Now()
	resp, err := http.Post(ts.URL+"/v1/decide", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	// The whole point of shedding: the hopeless request did not wait out
	// its deadline in the queue first.
	if waited := time.Since(start); waited > time.Second {
		t.Errorf("shed took %s, want immediate", waited)
	}
	var e ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, "deadline cannot be met") {
		t.Errorf("error = %q, want a hopeless-deadline message", e.Error)
	}
	if e.RetryAfterMs < 1 {
		t.Errorf("retry_after_ms = %d, want >= 1 (drain estimate)", e.RetryAfterMs)
	}

	if snap := s.NetStats(); snap.RejectedHopeless != 1 {
		t.Errorf("rejected_hopeless = %d, want 1", snap.RejectedHopeless)
	}
	ov := s.OverloadStats()
	if ov.ShedHopeless != 1 {
		t.Errorf("shed_hopeless = %d, want 1", ov.ShedHopeless)
	}
	if !ov.SLOShed || ov.Adaptive {
		t.Errorf("snapshot flags = adaptive %v slo_shed %v, want false/true", ov.Adaptive, ov.SLOShed)
	}
	rows := s.slo.Snapshot()
	if len(rows) != 1 || rows[0].Stream != 3 || rows[0].Shed != 1 || rows[0].Served != 0 {
		t.Errorf("slo rows = %+v, want stream 3 with one shed", rows)
	}
}

// TestHopelessShedBinary is the binary twin: identical admission
// semantics, so the same saturated gate sheds the same hopeless deadline
// with a 429 error frame and a non-zero hint.
func TestHopelessShedBinary(t *testing.T) {
	front := New(testAlertServer(t, 1), Config{MaxInflight: 1, MaxQueue: 4, SLOShed: true})
	bs := startBinary(t, front, BinaryConfig{})

	front.gate.Controller().ObserveService(10 * time.Millisecond)
	front.HoldTokenForTest()
	defer front.ReleaseTokenForTest()

	rc := dialBinary(t, bs.Addr())
	rc.send(binwire.AppendDecide(nil, 1, 4, alert.Spec{
		Objective: alert.MinimizeEnergy, Deadline: 0.001, AccuracyGoal: 0.9,
	}))
	if ms := rc.expectError(1, binwire.CodeOverloaded); ms < 1 {
		t.Errorf("retry_after_ms = %d, want >= 1", ms)
	}
	if snap := bs.BinStats(); snap.RejectedHopeless != 1 {
		t.Errorf("rejected_hopeless = %d, want 1", snap.RejectedHopeless)
	}
	if ov := front.OverloadStats(); ov.ShedHopeless != 1 {
		t.Errorf("shed_hopeless = %d, want 1", ov.ShedHopeless)
	}
}

// TestDynamicRetryAfterHTTP: with the adaptive gate on, an overload 429
// carries the controller's live drain estimate — (queued+1) × expected
// service time / inflight limit — instead of the static configured hint.
func TestDynamicRetryAfterHTTP(t *testing.T) {
	s := New(testAlertServer(t, 1), Config{
		MaxInflight: 1, MaxQueue: 1, Adaptive: true, RetryAfter: time.Hour,
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	s.gate.Controller().ObserveService(10 * time.Millisecond)
	s.HoldTokenForTest()

	parked, _ := json.Marshal(DecideRequest{Stream: 1, Spec: Spec{
		Objective: ObjectiveMinEnergy, DeadlineS: 30, AccuracyGoal: 0.9,
	}})
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Post(ts.URL+"/v1/decide", "application/json", bytes.NewReader(parked))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	waitQueued(t, s, 1)

	probe, _ := json.Marshal(DecideRequest{Stream: 2, Spec: Spec{
		Objective: ObjectiveMinEnergy, AccuracyGoal: 0.9,
	}})
	resp, err := http.Post(ts.URL+"/v1/decide", "application/json", bytes.NewReader(probe))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	var e ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	// One queued request ahead, 10ms expected service, limit 1:
	// (1+1) × 10ms / 1 = 20ms. Exact because EWMA seeds on first sample.
	if e.RetryAfterMs != 20 {
		t.Errorf("retry_after_ms = %d, want 20 (drain estimate, not the 1h static hint)", e.RetryAfterMs)
	}

	s.ReleaseTokenForTest()
	<-done
}

// TestStatsAndMetricsOverload checks the observability surface: GET
// /v1/stats carries the gate snapshot and per-stream SLO table, and GET
// /metrics renders the alert_overload_* families.
func TestStatsAndMetricsOverload(t *testing.T) {
	s := New(testAlertServer(t, 1), Config{MaxInflight: 3, MaxQueue: 6, SLOShed: true})

	var dec DecideResponse
	if code := doJSON(t, s, http.MethodPost, "/v1/decide", DecideRequest{Stream: 11, Spec: testSpec()}, &dec); code != http.StatusOK {
		t.Fatalf("decide status %d", code)
	}

	var stats StatsResponse
	if code := doJSON(t, s, http.MethodGet, "/v1/stats", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if stats.Overload == nil {
		t.Fatal("stats.overload missing")
	}
	if stats.Overload.InflightLimit != 3 || stats.Overload.QueueLimit != 6 {
		t.Errorf("limits = %d/%d, want 3/6", stats.Overload.InflightLimit, stats.Overload.QueueLimit)
	}
	if !stats.Overload.SLOShed || stats.Overload.Adaptive {
		t.Errorf("flags = %+v, want slo_shed only", stats.Overload)
	}
	if stats.Overload.ServiceEWMA <= 0 {
		t.Errorf("service_ewma = %v, want > 0 after a served decide", stats.Overload.ServiceEWMA)
	}
	if len(stats.SLO) != 1 || stats.SLO[0].Stream != 11 || stats.SLO[0].Served != 1 ||
		stats.SLO[0].Met != 1 || stats.SLO[0].Attainment != 1 {
		t.Errorf("slo = %+v, want stream 11 served=met=1", stats.SLO)
	}

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	bodyStr := rec.Body.String()
	for _, want := range []string{
		"alert_overload_slo_shed 1\n",
		"alert_overload_adaptive 0\n",
		"alert_overload_inflight_limit 3\n",
		"alert_overload_queue_limit 6\n",
		"alert_overload_shed_hopeless_total 0\n",
	} {
		if !strings.Contains(bodyStr, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestAdaptiveServesIdenticalDecisions: turning the adaptive gate and SLO
// shedder on must not change a single served decision — admission decides
// *whether* a request runs, never *what* it computes. Same script, static
// vs adaptive server, bit-identical decision sequence.
func TestAdaptiveServesIdenticalDecisions(t *testing.T) {
	static := New(testAlertServer(t, 1), Config{})
	adaptive := New(testAlertServer(t, 1), Config{Adaptive: true, SLOShed: true})

	spec := testSpec()
	for i := 0; i < 20; i++ {
		var ds, da DecideResponse
		if code := doJSON(t, static, http.MethodPost, "/v1/decide", DecideRequest{Stream: 1, Spec: spec}, &ds); code != http.StatusOK {
			t.Fatalf("static decide %d: status %d", i, code)
		}
		if code := doJSON(t, adaptive, http.MethodPost, "/v1/decide", DecideRequest{Stream: 1, Spec: spec}, &da); code != http.StatusOK {
			t.Fatalf("adaptive decide %d: status %d", i, code)
		}
		if ds.Decision != da.Decision {
			t.Fatalf("step %d: adaptive decision %+v != static %+v", i, da.Decision, ds.Decision)
		}
		fb := Feedback{Decision: ds.Decision, LatencyS: ds.Estimate.LatMeanS * 1.05, CompletedStage: -1}
		if code := doJSON(t, static, http.MethodPost, "/v1/observe", ObserveRequest{Stream: 1, Feedback: fb}, nil); code != http.StatusAccepted {
			t.Fatalf("static observe %d: status %d", i, code)
		}
		if code := doJSON(t, adaptive, http.MethodPost, "/v1/observe", ObserveRequest{Stream: 1, Feedback: fb}, nil); code != http.StatusAccepted {
			t.Fatalf("adaptive observe %d: status %d", i, code)
		}
	}
}
