package netserve

import "github.com/alert-project/alert"

// Recovery is the self-healing hook the front end delegates to
// (implemented by internal/selfheal.Manager; an interface here because
// the import direction is fixed — selfheal dials peers through the client
// wire types, so netserve can never import it). When nil, the replica and
// claim endpoints 404 and no restoring holds apply — a node without
// self-healing behaves exactly as before.
type Recovery interface {
	// Restoring reports whether a stream's session is currently being
	// restored from a replicated checkpoint. While true, decides and
	// observes for the stream are shed with 503 + Retry-After: the
	// failover window's bounded, hinted shed. Requests are never lost
	// after acceptance — they are refused before touching any state.
	Restoring(stream int) bool
	// StoreReplica saves a peer's replicated checkpoint of a stream it
	// owns. decisions is the snapshot's decision count (its freshness).
	StoreReplica(stream int, owner string, decisions int64, snap alert.SessionSnapshot)
	// Replicas lists the replicated checkpoints held for peers.
	Replicas() []ReplicaInfo
	// HandleClaim answers a peer's ownership claim for a stream it just
	// imported or restored. superseded=true means this node holds a
	// session that outranks the claim (the claimant must evict its copy);
	// otherwise any local session that the claim outranks has been
	// evicted before returning. local is this node's session decision
	// count at answer time (-1 when it holds none).
	HandleClaim(stream int, claimant, kind string, decisions int64) (superseded bool, local int64)
	// AnnounceImport broadcasts an ownership claim for a session this
	// node just imported over the wire (PUT /v1/streams/{id}), resolving
	// any concurrent failover restore of the same stream. It returns true
	// if a peer's session outranked ours — the import has been evicted
	// and the caller must report the conflict.
	AnnounceImport(stream int, decisions int64) (superseded bool)
}

// ReplicaInfo describes one held replica.
type ReplicaInfo struct {
	Stream    int
	Owner     string
	Decisions int64
}

// Claim kinds: how the claimant came to hold the session it is claiming.
// At equal decision counts an import (a deliberate migration) outranks a
// restore (a failover guess from a replica that is by construction no
// fresher than any export), and equal kinds fall back to the higher node
// id — a total order, so concurrent claims always leave exactly one
// holder.
const (
	ClaimKindImport  = "import"
	ClaimKindRestore = "restore"
)
