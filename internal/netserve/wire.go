package netserve

import (
	"fmt"

	"github.com/alert-project/alert"
	"github.com/alert-project/alert/internal/metrics"
)

// This file is the HTTP wire contract: the JSON shapes of every /v1
// endpoint, shared by the server handlers and the typed client package
// (client/). Field names are stable; changes must be additive.
//
// All float64 fields round-trip bit-exactly: encoding/json emits the
// shortest decimal that parses back to the same float64, which is what
// makes a network replay's decision sequences byte-identical to the
// in-process path (pinned by cmd/alertload's -addr tests).

// Objective wire values.
const (
	ObjectiveMinEnergy   = "min_energy"
	ObjectiveMaxAccuracy = "max_accuracy"
)

// Spec is the wire form of alert.Spec. Seconds/joules suffixes make the
// units explicit on the wire; zero optional fields are omitted.
type Spec struct {
	// Objective is "min_energy" (meet the accuracy goal, minimize energy)
	// or "max_accuracy" (meet the energy budget, maximize accuracy).
	Objective string `json:"objective"`
	// DeadlineS is the per-input latency goal in seconds. It doubles as
	// the request's admission deadline: a decide request still queued at
	// the admission gate when its deadline has elapsed is rejected with
	// 429 (a decision that late is useless to the stream).
	DeadlineS     float64 `json:"deadline_s"`
	EnergyBudgetJ float64 `json:"energy_budget_j,omitempty"`
	AccuracyGoal  float64 `json:"accuracy_goal,omitempty"`
	Prth          float64 `json:"prth,omitempty"`
}

// ToSpec converts the wire spec to the public one.
func (s Spec) ToSpec() (alert.Spec, error) {
	out := alert.Spec{
		Deadline:     s.DeadlineS,
		EnergyBudget: s.EnergyBudgetJ,
		AccuracyGoal: s.AccuracyGoal,
		Prth:         s.Prth,
	}
	switch s.Objective {
	case ObjectiveMinEnergy:
		out.Objective = alert.MinimizeEnergy
	case ObjectiveMaxAccuracy:
		out.Objective = alert.MaximizeAccuracy
	default:
		return out, fmt.Errorf("unknown objective %q (want %q or %q)",
			s.Objective, ObjectiveMinEnergy, ObjectiveMaxAccuracy)
	}
	return out, nil
}

// FromSpec converts a public spec to its wire form.
func FromSpec(s alert.Spec) Spec {
	out := Spec{
		DeadlineS:     s.Deadline,
		EnergyBudgetJ: s.EnergyBudget,
		AccuracyGoal:  s.AccuracyGoal,
		Prth:          s.Prth,
	}
	if s.Objective == alert.MaximizeAccuracy {
		out.Objective = ObjectiveMaxAccuracy
	} else {
		out.Objective = ObjectiveMinEnergy
	}
	return out
}

// Decision is the wire form of alert.Decision.
type Decision struct {
	Model        int     `json:"model"`
	Cap          int     `json:"cap"`
	CapW         float64 `json:"cap_w"`
	PlannedStopS float64 `json:"planned_stop_s,omitempty"`
	OverheadS    float64 `json:"overhead_s,omitempty"`
}

// ToDecision converts the wire decision to the public one.
func (d Decision) ToDecision() alert.Decision {
	return alert.Decision{
		Model:       d.Model,
		Cap:         d.Cap,
		CapW:        d.CapW,
		PlannedStop: d.PlannedStopS,
		Overhead:    d.OverheadS,
	}
}

// FromDecision converts a public decision to its wire form.
func FromDecision(d alert.Decision) Decision {
	return Decision{
		Model:        d.Model,
		Cap:          d.Cap,
		CapW:         d.CapW,
		PlannedStopS: d.PlannedStop,
		OverheadS:    d.Overhead,
	}
}

// Estimate is the wire form of alert.Estimate (the scheduler's predictions
// for the chosen candidate).
type Estimate struct {
	Model         int     `json:"model"`
	Cap           int     `json:"cap"`
	StopStage     int     `json:"stop_stage"`
	RunToDeadline bool    `json:"run_to_deadline,omitempty"`
	LatMeanS      float64 `json:"lat_mean_s"`
	PrDeadline    float64 `json:"pr_deadline"`
	Quality       float64 `json:"quality"`
	PrQuality     float64 `json:"pr_quality"`
	EnergyJ       float64 `json:"energy_j"`
	PlannedStopS  float64 `json:"planned_stop_s,omitempty"`
}

// ToEstimate converts the wire estimate to the public one.
func (e Estimate) ToEstimate() alert.Estimate {
	var out alert.Estimate
	out.Model = e.Model
	out.Cap = e.Cap
	out.StopStage = e.StopStage
	out.RunToDeadline = e.RunToDeadline
	out.LatMean = e.LatMeanS
	out.PrDeadline = e.PrDeadline
	out.Quality = e.Quality
	out.PrQuality = e.PrQuality
	out.Energy = e.EnergyJ
	out.PlannedStop = e.PlannedStopS
	return out
}

// FromEstimate converts a public estimate to its wire form.
func FromEstimate(e alert.Estimate) Estimate {
	return Estimate{
		Model:         e.Model,
		Cap:           e.Cap,
		StopStage:     e.StopStage,
		RunToDeadline: e.RunToDeadline,
		LatMeanS:      e.LatMean,
		PrDeadline:    e.PrDeadline,
		Quality:       e.Quality,
		PrQuality:     e.PrQuality,
		EnergyJ:       e.Energy,
		PlannedStopS:  e.PlannedStop,
	}
}

// Feedback is the wire form of alert.Feedback. CompletedStage keeps its
// -1 sentinel (no omitempty: stage 0 is a real stage).
type Feedback struct {
	Decision       Decision `json:"decision"`
	LatencyS       float64  `json:"latency_s"`
	CompletedStage int      `json:"completed_stage"`
	IdlePowerW     float64  `json:"idle_power_w,omitempty"`
}

// ToFeedback converts the wire feedback to the public one.
func (f Feedback) ToFeedback() alert.Feedback {
	return alert.Feedback{
		Decision:       f.Decision.ToDecision(),
		Latency:        f.LatencyS,
		CompletedStage: f.CompletedStage,
		IdlePowerW:     f.IdlePowerW,
	}
}

// FromFeedback converts a public feedback to its wire form.
func FromFeedback(f alert.Feedback) Feedback {
	return Feedback{
		Decision:       FromDecision(f.Decision),
		LatencyS:       f.Latency,
		CompletedStage: f.CompletedStage,
		IdlePowerW:     f.IdlePowerW,
	}
}

// DecideRequest is the POST /v1/decide body.
type DecideRequest struct {
	Stream int  `json:"stream"`
	Spec   Spec `json:"spec"`
}

// DecideResponse is the POST /v1/decide reply. NodeID echoes the serving
// node's cluster identity (empty for a standalone node): routing clients —
// and the chaos harness's single-ownership checker — use it to verify which
// member actually served each decision.
type DecideResponse struct {
	Decision Decision `json:"decision"`
	Estimate Estimate `json:"estimate"`
	NodeID   string   `json:"node_id,omitempty"`
}

// ObserveRequest is the POST /v1/observe body.
type ObserveRequest struct {
	Stream   int      `json:"stream"`
	Feedback Feedback `json:"feedback"`
}

// BatchRequest is the POST /v1/decide-batch body.
type BatchRequest struct {
	Requests []DecideRequest `json:"requests"`
}

// BatchResponse is the POST /v1/decide-batch reply; Results are in request
// order.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
}

// BatchResult is one request's slot in a BatchResponse.
type BatchResult struct {
	Stream   int      `json:"stream"`
	Decision Decision `json:"decision"`
	Estimate Estimate `json:"estimate"`
}

// StatsResponse is the GET /v1/stats reply: the stream table's counters
// (what was served) plus the front end's (what the HTTP surface saw).
// Platform and Models identify the serving configuration, so clients
// driving comparisons (cmd/alertload -addr) can refuse a server profiled
// on a different platform or candidate set instead of silently comparing
// incommensurable decisions.
type StatsResponse struct {
	Serve metrics.ServeSnapshot `json:"serve"`
	Net   metrics.NetSnapshot   `json:"net"`
	// Platform is the name of the platform the server's candidate set was
	// profiled on; Models is the candidate count.
	Platform string `json:"platform"`
	Models   int    `json:"models"`
	Shards   int    `json:"shards"`
	Streams  int    `json:"streams"`
	// NodeID and Peers are the node's cluster identity as configured at
	// startup (cmd/alertserve -node-id/-peers): soft state that routing
	// clients use for discovery and sanity checks. Empty for a standalone
	// node.
	NodeID string   `json:"node_id,omitempty"`
	Peers  []string `json:"peers,omitempty"`
	// BinaryAddr is the binary wire listener's address, advertised when
	// cmd/alertserve runs with -binary-addr; clients built with
	// PreferBinary discover the faster transport here and fall back to
	// JSON when it is absent. Bin is that listener's counter snapshot.
	BinaryAddr string               `json:"binary_addr,omitempty"`
	Bin        *metrics.BinSnapshot `json:"bin,omitempty"`
	// Overload is the admission gate's live state: effective limits,
	// queue-delay signal, shed-by-class counters. Always present — the
	// controller measures even when adaptation is off. SLO is per-stream
	// deadline attainment, absent until a deadline-carrying request has
	// been served or shed.
	Overload *metrics.OverloadSnapshot `json:"overload,omitempty"`
	SLO      []metrics.StreamSLO       `json:"slo,omitempty"`
}

// StreamsResponse is the GET /v1/streams reply.
type StreamsResponse struct {
	Count int   `json:"count"`
	IDs   []int `json:"ids"`
}

// EvictResponse is the DELETE /v1/streams/{id} reply.
type EvictResponse struct {
	Stream  int `json:"stream"`
	Streams int `json:"streams"`
}

// SnapshotResponse is the GET /v1/streams/{id}/snapshot reply: the
// exported session in its canonical binary encoding, base64-wrapped so the
// filter floats ride JSON as opaque bytes instead of formatted numbers
// (bit-exactness is the whole point of the binary format). Version echoes
// the snapshot's format version for operators; the blob itself carries it
// too and the importing node revalidates.
type SnapshotResponse struct {
	Stream      int    `json:"stream"`
	Version     int    `json:"version"`
	SnapshotB64 string `json:"snapshot_b64"`
}

// ImportRequest is the PUT /v1/streams/{id} body; SnapshotB64 is the
// base64 canonical binary encoding, normally copied verbatim from a
// SnapshotResponse.
type ImportRequest struct {
	SnapshotB64 string `json:"snapshot_b64"`
}

// ImportResponse is the PUT /v1/streams/{id} reply.
type ImportResponse struct {
	Stream  int `json:"stream"`
	Streams int `json:"streams"`
}

// ReplicaPutRequest is the PUT /v1/replicas/{id} body: a checkpoint of a
// stream owned by Owner, replicated here so this node can restore the
// stream if Owner dies. The snapshot's own decision count is its
// freshness; no separate field to fall out of sync with the blob.
type ReplicaPutRequest struct {
	Owner       string `json:"owner"`
	SnapshotB64 string `json:"snapshot_b64"`
}

// ReplicaPutResponse is the PUT /v1/replicas/{id} reply.
type ReplicaPutResponse struct {
	Stream   int `json:"stream"`
	Replicas int `json:"replicas"`
}

// ReplicaWire is one held replica in a ReplicasResponse.
type ReplicaWire struct {
	Stream    int    `json:"stream"`
	Owner     string `json:"owner"`
	Decisions int64  `json:"decisions"`
}

// ReplicasResponse is the GET /v1/replicas reply, sorted by stream id.
type ReplicasResponse struct {
	Count    int           `json:"count"`
	Replicas []ReplicaWire `json:"replicas,omitempty"`
}

// ClaimRequest is the POST /v1/claims body: NodeID announces it now
// serves Stream with a session of Decisions decisions, acquired by Kind
// (ClaimKindImport or ClaimKindRestore). Receivers holding a staler
// session for the stream evict it; receivers holding a fresher one answer
// superseded, and the claimant evicts instead. See the kind constants for
// the total order that breaks ties.
type ClaimRequest struct {
	Stream    int    `json:"stream"`
	NodeID    string `json:"node_id"`
	Decisions int64  `json:"decisions"`
	Kind      string `json:"kind"`
}

// ClaimResponse is the POST /v1/claims reply. Decisions is the answering
// node's session decision count for the stream at answer time (-1 when it
// holds none) — claimants use it for logging and invariant checks.
type ClaimResponse struct {
	Superseded bool  `json:"superseded"`
	Decisions  int64 `json:"decisions"`
}

// ErrorResponse is the JSON body of every non-2xx reply. RetryAfterMs
// mirrors the Retry-After header on 429/503 so clients that only read the
// body still back off correctly.
type ErrorResponse struct {
	Error        string `json:"error"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
}
