package netserve_test

import (
	"context"
	"net"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/alert-project/alert"
	"github.com/alert-project/alert/client"
	"github.com/alert-project/alert/internal/binwire"
	"github.com/alert-project/alert/internal/netserve"
)

// BenchmarkNetServe measures the network front end over a loopback
// listener through the real typed client — the full serving stack a remote
// caller pays: encode, round trip, admission gate, stream table, decode.
//
//	decide   one JSON request per decision — the per-request floor
//	batch64  64 decisions per JSON request — what batching amortizes
//	binary   one binwire frame per decision over the pipelined binary
//	         transport — what the frame encoding plus server-side
//	         coalescing buys back without the caller batching anything
//
// All report decisions/s; cmd/benchreport derives the batch-vs-single and
// binary-vs-JSON amplifications and gates on them (BENCH_5.json /
// BENCH_7.json).
func BenchmarkNetServe(b *testing.B) {
	srv, err := alert.NewServer(alert.CPU1(), alert.ImageCandidates(), alert.ServerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	fe := netserve.New(srv, netserve.Config{MaxInflight: 256, MaxQueue: 4096})
	ts := httptest.NewServer(fe)
	defer ts.Close()
	c, err := client.New(ts.URL, client.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	spec := alert.Spec{Objective: alert.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9}

	b.Run("decide", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := c.Decide(ctx, i%64, spec); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
	})

	b.Run("batch64", func(b *testing.B) {
		const size = 64
		reqs := make([]alert.BatchRequest, size)
		for i := range reqs {
			reqs[i] = alert.BatchRequest{Stream: i, Spec: spec}
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := c.DecideBatch(ctx, reqs)
			if err != nil {
				b.Fatal(err)
			}
			if len(res) != size {
				b.Fatalf("%d results, want %d", len(res), size)
			}
		}
		b.ReportMetric(float64(b.N*size)/b.Elapsed().Seconds(), "decisions/s")
	})

	b.Run("binary", func(b *testing.B) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		bs := netserve.NewBinary(fe, ln, netserve.BinaryConfig{})
		go bs.Serve()
		defer bs.Close()
		bt := client.NewBinaryTransport(bs.Addr())
		defer bt.Close()

		// Pipelined: many goroutines keep singleton requests in flight and
		// the server's group commit coalesces them across connections. The
		// deep parallelism is the transport's design point — every waiting
		// request rides someone else's syscall.
		//
		// Warm up at full parallelism first: dialing the pool, spinning up
		// reader/writer goroutines, and creating 64 sessions would otherwise
		// dominate short -benchtime runs and understate the steady state the
		// perf gate measures.
		var warm sync.WaitGroup
		for g := 0; g < 64; g++ {
			warm.Add(1)
			go func(g int) {
				defer warm.Done()
				for i := 0; i < 20; i++ {
					if _, _, _, err := bt.Decide(ctx, g%64, spec); err != nil {
						b.Error(err)
						return
					}
				}
			}(g)
		}
		warm.Wait()
		var stream atomic.Int64
		b.SetParallelism(64)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			id := int(stream.Add(1)) % 64
			for pb.Next() {
				if _, _, _, err := bt.Decide(ctx, id, spec); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
	})
}

// BenchmarkBinaryServerDecide isolates the server's cost per binary decide
// by driving the listener with pre-encoded frames over one connection and
// reading replies with a reused frame reader — the client side of the loop
// allocates nothing, so allocs/op IS the server's steady-state allocation
// count per request. cmd/benchreport gates it at zero (BENCH_7.json): the
// decode → admit → coalesce → decide → encode path must stay allocation
// free or the transport's throughput story degrades under GC pressure.
func BenchmarkBinaryServerDecide(b *testing.B) {
	srv, err := alert.NewServer(alert.CPU1(), alert.ImageCandidates(), alert.ServerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	fe := netserve.New(srv, netserve.Config{MaxInflight: 256, MaxQueue: 4096})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	bs := netserve.NewBinary(fe, ln, netserve.BinaryConfig{})
	go bs.Serve()
	defer bs.Close()

	conn, err := net.Dial("tcp", bs.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	spec := alert.Spec{Objective: alert.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9}
	frame := binwire.AppendDecide(nil, 1, 5, spec)
	rd := binwire.NewReader(conn)

	roundTrip := func() {
		if _, err := conn.Write(frame); err != nil {
			b.Fatal(err)
		}
		f, err := rd.Next()
		if err != nil {
			b.Fatal(err)
		}
		if f.Type != binwire.MsgDecideResp {
			b.Fatalf("frame type %d", f.Type)
		}
	}
	// Warm the path: session created, buffers sized, pools primed.
	for i := 0; i < 100; i++ {
		roundTrip()
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		roundTrip()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
}
