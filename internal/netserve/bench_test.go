package netserve_test

import (
	"context"
	"net/http/httptest"
	"testing"

	"github.com/alert-project/alert"
	"github.com/alert-project/alert/client"
	"github.com/alert-project/alert/internal/netserve"
)

// BenchmarkNetServe measures the network front end over a loopback
// listener through the real typed client — the full serving stack a remote
// caller pays: JSON encode, HTTP round trip (keep-alive reuse), admission
// gate, stream table, JSON decode.
//
//	decide   one request per decision — the per-request floor
//	batch64  64 decisions per request — what batching amortizes
//
// Both report decisions/s; cmd/benchreport derives the batch-vs-single
// amplification and gates on it (BENCH_5.json).
func BenchmarkNetServe(b *testing.B) {
	srv, err := alert.NewServer(alert.CPU1(), alert.ImageCandidates(), alert.ServerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(netserve.New(srv, netserve.Config{MaxInflight: 256, MaxQueue: 4096}))
	defer ts.Close()
	c, err := client.New(ts.URL, client.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	spec := alert.Spec{Objective: alert.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9}

	b.Run("decide", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := c.Decide(ctx, i%64, spec); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
	})

	b.Run("batch64", func(b *testing.B) {
		const size = 64
		reqs := make([]alert.BatchRequest, size)
		for i := range reqs {
			reqs[i] = alert.BatchRequest{Stream: i, Spec: spec}
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := c.DecideBatch(ctx, reqs)
			if err != nil {
				b.Fatal(err)
			}
			if len(res) != size {
				b.Fatalf("%d results, want %d", len(res), size)
			}
		}
		b.ReportMetric(float64(b.N*size)/b.Elapsed().Seconds(), "decisions/s")
	})
}
