// Binary wire listener: the binwire protocol served over persistent TCP,
// sharing the HTTP front end's admission gate, drain state, and recovery
// holds so the two transports are one server with two encodings.
//
// # Why it is fast
//
// Three things remove the HTTP path's per-request costs:
//
//  1. binwire frames replace JSON: fixed-width encode/decode into reused
//     buffers, no reflection, no header parsing, bit-exact floats.
//  2. Connections are persistent and pipelined: a client stamps each
//     request with an id and may keep many in flight; no per-request
//     connection or goroutine setup.
//  3. Decide requests from ALL connections funnel into one dispatcher
//     that swaps out everything pending at once (group commit): while a
//     flush is in the engine, new arrivals pile up and leave as a single
//     DecideBatch — the per-shard task amortization that made wire
//     batch64 ~5.5x now applies transparently to singleton requests. An
//     idle server flushes a lone request immediately (no added latency);
//     a fixed CoalesceWindow can widen batches further at a latency cost.
//
// The steady-state server path for a decide allocates nothing: frame
// decode aliases the reader's buffer, the pending queue and flush slices
// are reused, the engine's singleton path recycles its reply futures, and
// the response is encoded into the connection's reused write buffer.
//
// # Ordering and admission
//
// Every frame is admitted individually through the shared gate BEFORE
// joining the coalescer, so MaxInflight/MaxQueue bound both transports
// together and admission stays all-or-nothing: a coalesced request was
// already accepted, and accepted requests are always served — drain waits
// for them. Rejections are error frames carrying the same Retry-After
// hint (retry_after_ms) as the HTTP 429/503 bodies.
//
// Frames on one connection are processed in arrival order: observes and
// stream ops run synchronously on the read goroutine, decides enter the
// dispatcher in arrival order and flushes preserve it, so a client that
// awaits each response per stream observes exactly the in-process
// semantics (byte-identical decision sequences, pinned by
// cmd/alertload's wire tests).
package netserve

import (
	"bufio"
	"context"
	"net"
	"sync"
	"time"

	"github.com/alert-project/alert"
	"github.com/alert-project/alert/internal/binwire"
	"github.com/alert-project/alert/internal/metrics"
	"github.com/alert-project/alert/internal/overload"
)

// BinaryConfig tunes the binary listener. The zero value is production
// ready.
type BinaryConfig struct {
	// CoalesceWindow, when positive, makes the dispatcher wait this long
	// after a wake before swapping out the pending decide queue, trading
	// latency for larger cross-connection batches. 0 selects group
	// commit: flush immediately, and let batches form naturally from
	// what arrives while the previous flush is in the engine — no added
	// latency when idle, near-ideal amortization when busy.
	CoalesceWindow time.Duration
}

// BinaryServer serves the binwire protocol over TCP on behalf of an HTTP
// front end. Build it with NewBinary, feed it a listener with Serve, and
// Close it after the front end has drained.
type BinaryServer struct {
	front  *Server
	bin    *metrics.BinCounters
	window time.Duration

	// Coalescer state: pending decides swap wholesale under pmu; wake
	// (capacity 1) nudges the dispatcher.
	pmu     sync.Mutex
	pending []pendingDecide
	wake    chan struct{}
	stop    chan struct{}
	done    chan struct{}

	mu     sync.Mutex
	ln     net.Listener
	addr   string
	conns  map[net.Conn]struct{}
	closed bool
}

// pendingDecide is one admitted decide waiting in the coalescer.
type pendingDecide struct {
	c      *binConn
	id     uint64
	stream int
	spec   alert.Spec
	start  time.Time
	// admitted is when the request cleared the gate; service time —
	// admitted to reply — is what feeds the controller's latency estimate.
	admitted time.Time
}

// NewBinary attaches a binary listener to the front end over an
// already-bound listener; call Serve to start accepting. Taking the bound
// listener here (rather than in Serve) makes the advertised address part
// of the front end's state before HTTP can answer a single stats read, so
// a PreferBinary client can never probe a binary-serving node and
// conclude it speaks only JSON.
func NewBinary(front *Server, ln net.Listener, cfg BinaryConfig) *BinaryServer {
	bs := &BinaryServer{
		front:  front,
		bin:    metrics.NewBinCounters(),
		window: cfg.CoalesceWindow,
		wake:   make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		ln:     ln,
		addr:   ln.Addr().String(),
		conns:  make(map[net.Conn]struct{}),
	}
	front.mu.Lock()
	front.binary = bs
	front.mu.Unlock()
	go bs.dispatch()
	return bs
}

// Addr returns the bound listen address.
func (bs *BinaryServer) Addr() string { return bs.addr }

// BinStats snapshots the listener's counters.
func (bs *BinaryServer) BinStats() metrics.BinSnapshot { return bs.bin.Snapshot() }

// Serve accepts connections until the listener fails or Close is called,
// returning nil on a clean Close.
func (bs *BinaryServer) Serve() error {
	for {
		conn, err := bs.ln.Accept()
		if err != nil {
			bs.mu.Lock()
			closed := bs.closed
			bs.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		go bs.serveConn(conn)
	}
}

// Close stops accepting, closes every connection, and stops the
// dispatcher after a final flush (releasing any admission tokens still
// held by pending decides). Call it after the front end's Drain so
// already-admitted requests got their replies first. Idempotent.
func (bs *BinaryServer) Close() error {
	bs.mu.Lock()
	if bs.closed {
		bs.mu.Unlock()
		<-bs.done
		return nil
	}
	bs.closed = true
	ln := bs.ln
	conns := make([]net.Conn, 0, len(bs.conns))
	for c := range bs.conns {
		conns = append(conns, c)
	}
	bs.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	close(bs.stop)
	<-bs.done
	return nil
}

// track registers a live connection; it reports false when the server is
// already closed (the caller must drop the connection).
func (bs *BinaryServer) track(c net.Conn) bool {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if bs.closed {
		return false
	}
	bs.conns[c] = struct{}{}
	return true
}

func (bs *BinaryServer) untrack(c net.Conn) {
	bs.mu.Lock()
	delete(bs.conns, c)
	bs.mu.Unlock()
}

// binConn is the server side of one connection: a read loop feeding the
// dispatcher, and a mutex-serialized writer with a reused encode buffer
// (responses to one connection may come from the dispatcher and the read
// goroutine concurrently).
type binConn struct {
	srv  *BinaryServer
	conn net.Conn

	wmu  sync.Mutex
	wbuf []byte

	// fwbuf accumulates this connection's responses during one dispatcher
	// flush so a coalesced batch costs one write syscall per connection,
	// not one per response. Only the dispatcher touches fwbuf/fdirty, so
	// they need no lock; the final write still takes wmu to serialize with
	// the read goroutine's acks.
	fwbuf  []byte
	fdirty bool
}

func (bs *BinaryServer) serveConn(conn net.Conn) {
	if !bs.track(conn) {
		conn.Close()
		return
	}
	bs.bin.RecordConnOpen()
	defer func() {
		bs.untrack(conn)
		conn.Close()
		bs.bin.RecordConnClose()
	}()
	if tc, ok := conn.(*net.TCPConn); ok {
		// Response frames are small; waiting for a full segment would
		// serialize the pipeline on the delayed-ACK timer.
		tc.SetNoDelay(true)
	}
	c := &binConn{srv: bs, conn: conn, wbuf: make([]byte, 0, 512)}
	// The buffered reader turns a pipelined burst of small frames into one
	// read syscall; binwire.Reader alone would pay two per frame.
	rd := binwire.NewReader(bufio.NewReaderSize(conn, 64<<10))
	var batchBuf []alert.BatchRequest
	for {
		f, err := rd.Next()
		if err != nil {
			// EOF between frames is a clean hangup; everything else —
			// truncation, oversized or malformed framing — also just
			// drops the connection: framing errors leave no way to know
			// where the next frame starts.
			return
		}
		bs.bin.RecordFrameIn()
		if f.Version != binwire.Version {
			bs.bin.RecordBadFrame()
			c.sendError(f.ID, binwire.CodeBadRequest, 0, "unsupported binwire version (server speaks 1)")
			return
		}
		switch f.Type {
		case binwire.MsgDecide:
			bs.handleDecide(c, f)
		case binwire.MsgObserve:
			bs.handleObserve(c, f)
		case binwire.MsgBatch:
			batchBuf = bs.handleBatch(c, f, batchBuf[:0])
		case binwire.MsgExport:
			bs.handleStreamOp(c, f)
		case binwire.MsgCheckpoint:
			bs.handleStreamOp(c, f)
		case binwire.MsgEvict:
			bs.handleStreamOp(c, f)
		case binwire.MsgImport:
			bs.handleImport(c, f)
		default:
			bs.bin.RecordBadFrame()
			c.sendError(f.ID, binwire.CodeBadRequest, 0, "unexpected frame type")
		}
	}
}

// retryAfterMs is the static hint attached to drain/restore error frames —
// the binary twin of writeError's retry_after_ms body field.
func (bs *BinaryServer) retryAfterMs() int64 {
	return int64(bs.front.retryAfter / time.Millisecond)
}

// hintMs converts a resolved Retry-After duration to the error frame's
// millisecond hint — the binary twin of writeErrorHint (same 1ms floor).
func hintMs(hint time.Duration) int64 {
	ms := int64(hint / time.Millisecond)
	if ms < 1 {
		ms = 1
	}
	return ms
}

// admit runs the shared admission gate for a binary request, paying for a
// deadline context only when the request actually queues. On admitOK the
// caller owes a front.release().
func (bs *BinaryServer) admit(deadlineS float64, drainExempt bool) admitStatus {
	st, w := bs.front.tryAdmit(deadlineS, drainExempt)
	if w == nil {
		return st
	}
	ctx := context.Background()
	if d, ok := admissionTimeout(deadlineS); ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	return bs.front.admitQueued(ctx, w, drainExempt)
}

// rejectAdmit sends the error frame for a failed admission, mirroring
// admitOrRejectFull's status codes and Retry-After semantics — the same
// dynamic drain-estimate hint, clamped to deadline headroom, when the
// adaptive gate is on.
func (bs *BinaryServer) rejectAdmit(c *binConn, id uint64, st admitStatus, deadlineS float64) {
	ctrl := bs.front.gate.Controller()
	switch st {
	case admitOverload:
		bs.bin.RecordRejectOverload()
		ctrl.RecordShed(overload.ShedOverload)
		c.sendError(id, binwire.CodeOverloaded, hintMs(bs.front.retryHint(deadlineS)), "admission queue full")
	case admitDeadline:
		bs.bin.RecordRejectDeadline()
		ctrl.RecordShed(overload.ShedDeadline)
		c.sendError(id, binwire.CodeOverloaded, hintMs(bs.front.retryHint(0)), "deadline expired before admission")
	case admitDraining:
		bs.bin.RecordRejectDraining()
		ctrl.RecordShed(overload.ShedDraining)
		c.sendError(id, binwire.CodeUnavailable, bs.retryAfterMs(), "server draining")
	}
}

// shedIfHopeless is the SLO shedder on the binary path — the twin of the
// HTTP handler of the same name, sending the same 429-class error frame
// with the controller's drain estimate as the hint.
func (bs *BinaryServer) shedIfHopeless(c *binConn, id uint64, stream int, deadlineS float64) bool {
	if !bs.front.gate.ShouldShed(deadlineS) {
		return false
	}
	bs.bin.RecordRejectHopeless()
	bs.front.gate.Controller().RecordShed(overload.ShedHopeless)
	bs.front.slo.RecordShed(stream)
	c.sendError(id, binwire.CodeOverloaded, hintMs(bs.front.gate.RetryAfter()), "deadline cannot be met at current load")
	return true
}

// rejectIfRestoring sheds a request whose stream is mid-restore, the
// binary twin of the HTTP handler of the same name.
func (bs *BinaryServer) rejectIfRestoring(c *binConn, id uint64, stream int) bool {
	if bs.front.recovery == nil || !bs.front.recovery.Restoring(stream) {
		return false
	}
	bs.bin.RecordRejectRestoring()
	c.sendError(id, binwire.CodeUnavailable, bs.retryAfterMs(), "stream is restoring after failover")
	return true
}

// handleDecide admits a decide and hands it to the coalescer; the
// response is written by the dispatcher (or an error frame here on
// rejection).
func (bs *BinaryServer) handleDecide(c *binConn, f binwire.Frame) {
	start := time.Now()
	stream, spec, err := binwire.DecodeDecide(f.Body)
	if err != nil {
		bs.bin.RecordBadFrame()
		c.sendError(f.ID, binwire.CodeBadRequest, 0, err.Error())
		return
	}
	if bs.rejectIfRestoring(c, f.ID, stream) {
		return
	}
	if bs.shedIfHopeless(c, f.ID, stream, spec.Deadline) {
		return
	}
	if st := bs.admit(spec.Deadline, false); st != admitOK {
		bs.rejectAdmit(c, f.ID, st, spec.Deadline)
		bs.front.slo.RecordShed(stream)
		return
	}
	bs.pmu.Lock()
	bs.pending = append(bs.pending, pendingDecide{c: c, id: f.ID, stream: stream, spec: spec, start: start, admitted: time.Now()})
	bs.pmu.Unlock()
	select {
	case bs.wake <- struct{}{}:
	default:
	}
}

// dispatch is the coalescing flush loop: on each wake it swaps out
// everything pending and serves it as one unit. It exits after Close,
// flushing one last time so no admitted request is left holding a token.
func (bs *BinaryServer) dispatch() {
	defer close(bs.done)
	var local []pendingDecide
	var reqs []alert.BatchRequest
	var dirty []*binConn
	for {
		select {
		case <-bs.wake:
		case <-bs.stop:
			local = bs.swapPending(local)
			bs.flush(local, &reqs, &dirty)
			return
		}
		if bs.window > 0 {
			time.Sleep(bs.window)
		}
		local = bs.swapPending(local)
		bs.flush(local, &reqs, &dirty)
	}
}

// swapPending exchanges the shared pending queue for the dispatcher's
// recycled one.
func (bs *BinaryServer) swapPending(into []pendingDecide) []pendingDecide {
	bs.pmu.Lock()
	out := bs.pending
	bs.pending = into[:0]
	bs.pmu.Unlock()
	return out
}

// flush serves one swapped-out set of decides. A singleton takes the
// engine's pooled single-decide path (zero allocations); anything larger
// becomes one DecideBatch, amortizing per-shard task dispatch across
// every connection that contributed — and the responses are written
// grouped by connection, one syscall per contributing connection rather
// than one per decision.
func (bs *BinaryServer) flush(batch []pendingDecide, reqs *[]alert.BatchRequest, dirty *[]*binConn) {
	switch len(batch) {
	case 0:
	case 1:
		p := batch[0]
		bs.front.sleepServiceDelay()
		d, est := bs.front.alert.Decide(p.stream, p.spec)
		p.c.sendDecideResp(p.id, d, est)
		bs.front.gate.Controller().ObserveService(time.Since(p.admitted))
		sojourn := time.Since(p.start)
		bs.front.recordServedSLO(p.stream, p.spec.Deadline, sojourn)
		bs.bin.RecordDecide(sojourn)
		bs.front.release()
	default:
		rs := (*reqs)[:0]
		for _, p := range batch {
			rs = append(rs, alert.BatchRequest{Stream: p.stream, Spec: p.spec})
		}
		*reqs = rs
		bs.front.sleepServiceDelay()
		results := bs.front.alert.DecideBatch(rs)
		ctrl := bs.front.gate.Controller()
		for i, p := range batch {
			if !p.c.fdirty {
				p.c.fdirty = true
				*dirty = append(*dirty, p.c)
			}
			p.c.fwbuf = binwire.AppendDecideResp(p.c.fwbuf, p.id, results[i].Decision, results[i].Estimate, bs.front.nodeID)
			bs.bin.RecordFrameOut()
			ctrl.ObserveService(time.Since(p.admitted))
			sojourn := time.Since(p.start)
			bs.front.recordServedSLO(p.stream, p.spec.Deadline, sojourn)
			bs.bin.RecordDecide(sojourn)
			bs.front.release()
		}
		for _, c := range *dirty {
			c.wmu.Lock()
			c.conn.Write(c.fwbuf) // on error the read loop tears down
			c.wmu.Unlock()
			c.fwbuf = c.fwbuf[:0]
			c.fdirty = false
		}
		*dirty = (*dirty)[:0]
		bs.bin.RecordCoalesce(len(batch))
	}
}

// handleObserve runs an observe synchronously on the read goroutine: the
// session update is enqueued before the ack frame is written, so a client
// that awaits it sees the same FIFO ordering as the in-process path.
func (bs *BinaryServer) handleObserve(c *binConn, f binwire.Frame) {
	stream, fb, err := binwire.DecodeObserve(f.Body)
	if err != nil {
		bs.bin.RecordBadFrame()
		c.sendError(f.ID, binwire.CodeBadRequest, 0, err.Error())
		return
	}
	if bs.rejectIfRestoring(c, f.ID, stream) {
		return
	}
	if st := bs.admit(0, false); st != admitOK {
		bs.rejectAdmit(c, f.ID, st, 0)
		return
	}
	defer bs.front.release()
	bs.front.alert.Observe(stream, fb)
	bs.bin.RecordObserve()
	c.sendObserveResp(f.ID)
}

// handleBatch serves a client-sent batch frame whole, like the HTTP
// decide-batch handler: one admission, one DecideBatch, all-or-nothing.
// It returns the decoded-request buffer for reuse.
func (bs *BinaryServer) handleBatch(c *binConn, f binwire.Frame, buf []alert.BatchRequest) []alert.BatchRequest {
	reqs, err := binwire.DecodeBatch(f.Body, buf)
	if err != nil {
		bs.bin.RecordBadFrame()
		c.sendError(f.ID, binwire.CodeBadRequest, 0, err.Error())
		return reqs
	}
	minDeadline := 0.0
	for _, r := range reqs {
		if bs.rejectIfRestoring(c, f.ID, r.Stream) {
			return reqs
		}
		if r.Spec.Deadline > 0 && (minDeadline == 0 || r.Spec.Deadline < minDeadline) {
			minDeadline = r.Spec.Deadline
		}
	}
	// The SLO shedder judges the batch's tightest deadline, shedding whole
	// like the HTTP twin.
	if len(reqs) > 0 && bs.front.gate.ShouldShed(minDeadline) {
		bs.bin.RecordRejectHopeless()
		bs.front.gate.Controller().RecordShed(overload.ShedHopeless)
		for _, r := range reqs {
			bs.front.slo.RecordShed(r.Stream)
		}
		c.sendError(f.ID, binwire.CodeOverloaded, hintMs(bs.front.gate.RetryAfter()), "deadline cannot be met at current load")
		return reqs
	}
	if st := bs.admit(minDeadline, false); st != admitOK {
		bs.rejectAdmit(c, f.ID, st, minDeadline)
		for _, r := range reqs {
			bs.front.slo.RecordShed(r.Stream)
		}
		return reqs
	}
	defer bs.front.release()
	start := time.Now()
	bs.front.sleepServiceDelay()
	results := bs.front.alert.DecideBatch(reqs)
	bs.front.gate.Controller().ObserveService(time.Since(start))
	sojourn := time.Since(start)
	for _, r := range reqs {
		bs.front.recordServedSLO(r.Stream, r.Spec.Deadline, sojourn)
	}
	bs.bin.RecordBatch(len(results))
	c.sendBatchResp(f.ID, results)
	return reqs
}

// handleStreamOp serves export, checkpoint, and evict synchronously.
// Export is admission-gated but drain-exempt (sessions must be able to
// leave a draining node); checkpoint is ungated like its HTTP twin; evict
// is gated normally.
func (bs *BinaryServer) handleStreamOp(c *binConn, f binwire.Frame) {
	stream, err := binwire.DecodeStreamReq(f.Type, f.Body)
	if err != nil {
		bs.bin.RecordBadFrame()
		c.sendError(f.ID, binwire.CodeBadRequest, 0, err.Error())
		return
	}
	switch f.Type {
	case binwire.MsgExport:
		if st := bs.admit(0, true); st != admitOK {
			bs.rejectAdmit(c, f.ID, st, 0)
			return
		}
		defer bs.front.release()
		snap, ok := bs.front.alert.ExportStream(stream)
		if !ok {
			c.sendError(f.ID, binwire.CodeNotFound, 0, "stream has no session")
			return
		}
		blob, err := snap.MarshalBinary()
		if err != nil {
			c.sendError(f.ID, binwire.CodeInternal, 0, err.Error())
			return
		}
		bs.bin.RecordExport()
		c.sendSnapshot(binwire.MsgSnapshotResp, f.ID, stream, blob)
	case binwire.MsgCheckpoint:
		snap, ok := bs.front.alert.SnapshotStream(stream)
		if !ok {
			c.sendError(f.ID, binwire.CodeNotFound, 0, "stream has no session")
			return
		}
		blob, err := snap.MarshalBinary()
		if err != nil {
			c.sendError(f.ID, binwire.CodeInternal, 0, err.Error())
			return
		}
		bs.bin.RecordCheckpoint()
		c.sendSnapshot(binwire.MsgSnapshotResp, f.ID, stream, blob)
	case binwire.MsgEvict:
		if st := bs.admit(0, false); st != admitOK {
			bs.rejectAdmit(c, f.ID, st, 0)
			return
		}
		defer bs.front.release()
		bs.front.alert.EvictStream(stream)
		bs.bin.RecordEviction()
		c.sendStreamResp(binwire.MsgEvictResp, f.ID, stream)
	}
}

// handleImport restores an exported session, mirroring the HTTP import
// handler: gated, never drain-exempt, and announced to the recovery layer
// so concurrent movers of one stream resolve to a single winner.
func (bs *BinaryServer) handleImport(c *binConn, f binwire.Frame) {
	stream, blob, err := binwire.DecodeSnapshot(f.Type, f.Body)
	if err != nil {
		bs.bin.RecordBadFrame()
		c.sendError(f.ID, binwire.CodeBadRequest, 0, err.Error())
		return
	}
	var snap alert.SessionSnapshot
	if err := snap.UnmarshalBinary(blob); err != nil {
		bs.bin.RecordBadFrame()
		c.sendError(f.ID, binwire.CodeBadRequest, 0, err.Error())
		return
	}
	if st := bs.admit(0, false); st != admitOK {
		bs.rejectAdmit(c, f.ID, st, 0)
		return
	}
	defer bs.front.release()
	if err := bs.front.alert.ImportStream(stream, snap); err != nil {
		c.sendError(f.ID, binwire.CodeConflict, 0, err.Error())
		return
	}
	if bs.front.recovery != nil {
		if bs.front.recovery.AnnounceImport(stream, snap.Decisions) {
			c.sendError(f.ID, binwire.CodeConflict, 0, "a peer serves a fresher session; import evicted")
			return
		}
	}
	bs.bin.RecordImport()
	c.sendStreamResp(binwire.MsgImportResp, f.ID, stream)
}

// The send* methods encode into the connection's reused buffer under its
// write mutex. Write errors are dropped: the read loop observes the dead
// connection and tears everything down.

func (c *binConn) sendDecideResp(id uint64, d alert.Decision, e alert.Estimate) {
	c.wmu.Lock()
	c.wbuf = binwire.AppendDecideResp(c.wbuf[:0], id, d, e, c.srv.front.nodeID)
	_, err := c.conn.Write(c.wbuf)
	c.wmu.Unlock()
	if err == nil {
		c.srv.bin.RecordFrameOut()
	}
}

func (c *binConn) sendObserveResp(id uint64) {
	c.wmu.Lock()
	c.wbuf = binwire.AppendObserveResp(c.wbuf[:0], id)
	_, err := c.conn.Write(c.wbuf)
	c.wmu.Unlock()
	if err == nil {
		c.srv.bin.RecordFrameOut()
	}
}

func (c *binConn) sendBatchResp(id uint64, res []alert.BatchResult) {
	c.wmu.Lock()
	c.wbuf = binwire.AppendBatchResp(c.wbuf[:0], id, res)
	_, err := c.conn.Write(c.wbuf)
	c.wmu.Unlock()
	if err == nil {
		c.srv.bin.RecordFrameOut()
	}
}

func (c *binConn) sendSnapshot(t binwire.MsgType, id uint64, stream int, blob []byte) {
	c.wmu.Lock()
	c.wbuf = binwire.AppendSnapshot(c.wbuf[:0], t, id, stream, blob)
	_, err := c.conn.Write(c.wbuf)
	c.wmu.Unlock()
	if err == nil {
		c.srv.bin.RecordFrameOut()
	}
}

func (c *binConn) sendStreamResp(t binwire.MsgType, id uint64, stream int) {
	c.wmu.Lock()
	c.wbuf = binwire.AppendStreamReq(c.wbuf[:0], t, id, stream)
	_, err := c.conn.Write(c.wbuf)
	c.wmu.Unlock()
	if err == nil {
		c.srv.bin.RecordFrameOut()
	}
}

func (c *binConn) sendError(id uint64, code uint16, retryAfterMs int64, msg string) {
	c.wmu.Lock()
	c.wbuf = binwire.AppendError(c.wbuf[:0], id, code, retryAfterMs, msg)
	_, err := c.conn.Write(c.wbuf)
	c.wmu.Unlock()
	if err == nil {
		c.srv.bin.RecordFrameOut()
	}
}
