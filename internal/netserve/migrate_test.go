package netserve

import (
	"context"
	"encoding/base64"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"github.com/alert-project/alert"
)

// TestMigrationOverHTTP is the wire-level migration differential test:
// drive a stream against node A through the HTTP surface, export its
// session with GET /v1/streams/{id}/snapshot, import it into node B with
// PUT /v1/streams/{id}, continue the traffic on B — and require the
// stitched decision sequence to be bit-identical to one in-process
// alert.Server serving the whole sequence.
func TestMigrationOverHTTP(t *testing.T) {
	nodeA := New(testAlertServer(t, 2), Config{NodeID: "a"})
	nodeB := New(testAlertServer(t, 3), Config{NodeID: "b"})
	solo := testAlertServer(t, 1)

	const stream, n = 11, 60
	specs := make([]Spec, n)
	for i := range specs {
		specs[i] = Spec{Objective: ObjectiveMinEnergy, DeadlineS: 0.1 + 0.002*float64(i), AccuracyGoal: 0.9}
	}

	step := func(node *Server, i int) Decision {
		var dec DecideResponse
		if code := doJSON(t, node, http.MethodPost, "/v1/decide", DecideRequest{Stream: stream, Spec: specs[i]}, &dec); code != http.StatusOK {
			t.Fatalf("step %d: decide status %d", i, code)
		}
		fb := Feedback{Decision: dec.Decision, LatencyS: dec.Estimate.LatMeanS * 1.07, CompletedStage: -1, IdlePowerW: 4}
		if code := doJSON(t, node, http.MethodPost, "/v1/observe", ObserveRequest{Stream: stream, Feedback: fb}, nil); code != http.StatusAccepted {
			t.Fatalf("step %d: observe status %d", i, code)
		}
		return dec.Decision
	}
	soloStep := func(i int) Decision {
		spec, err := specs[i].ToSpec()
		if err != nil {
			t.Fatal(err)
		}
		d, est := solo.Decide(stream, spec)
		solo.Observe(stream, alert.Feedback{Decision: d, Latency: est.LatMean * 1.07, CompletedStage: -1, IdlePowerW: 4})
		return FromDecision(d)
	}

	for i := 0; i < n/2; i++ {
		if got, want := step(nodeA, i), soloStep(i); got != want {
			t.Fatalf("pre-migration step %d: %+v, want %+v", i, got, want)
		}
	}

	var snap SnapshotResponse
	if code := doJSON(t, nodeA, http.MethodGet, fmt.Sprintf("/v1/streams/%d/snapshot", stream), nil, &snap); code != http.StatusOK {
		t.Fatalf("export status %d", code)
	}
	if snap.Stream != stream || snap.Version != 1 || snap.SnapshotB64 == "" {
		t.Fatalf("export reply %+v", snap)
	}
	// Export removed the session: a second export finds nothing.
	if code := doJSON(t, nodeA, http.MethodGet, fmt.Sprintf("/v1/streams/%d/snapshot", stream), nil, nil); code != http.StatusNotFound {
		t.Fatalf("re-export status %d, want 404", code)
	}

	var imp ImportResponse
	if code := doJSON(t, nodeB, http.MethodPut, fmt.Sprintf("/v1/streams/%d", stream), ImportRequest{SnapshotB64: snap.SnapshotB64}, &imp); code != http.StatusOK {
		t.Fatalf("import status %d", code)
	}
	if imp.Stream != stream || imp.Streams != 1 {
		t.Fatalf("import reply %+v", imp)
	}

	for i := n / 2; i < n; i++ {
		if got, want := step(nodeB, i), soloStep(i); got != want {
			t.Fatalf("post-migration step %d: %+v, want %+v", i, got, want)
		}
	}

	// The nodes' stats reflect the migration and their identities.
	var statsA, statsB StatsResponse
	doJSON(t, nodeA, http.MethodGet, "/v1/stats", nil, &statsA)
	doJSON(t, nodeB, http.MethodGet, "/v1/stats", nil, &statsB)
	if statsA.NodeID != "a" || statsB.NodeID != "b" {
		t.Errorf("node ids = %q/%q, want a/b", statsA.NodeID, statsB.NodeID)
	}
	if statsA.Net.Exports != 1 || statsA.Serve.StreamExports != 1 || statsA.Streams != 0 {
		t.Errorf("node a after export: net.exports=%d serve.exports=%d streams=%d, want 1/1/0",
			statsA.Net.Exports, statsA.Serve.StreamExports, statsA.Streams)
	}
	if statsB.Net.Imports != 1 || statsB.Serve.StreamImports != 1 || statsB.Streams != 1 {
		t.Errorf("node b after import: net.imports=%d serve.imports=%d streams=%d, want 1/1/1",
			statsB.Net.Imports, statsB.Serve.StreamImports, statsB.Streams)
	}
}

// TestImportRejections: garbled base64, a corrupt blob, and a conflicting
// live stream are refused with 400/400/409 and recorded, never imported.
func TestImportRejections(t *testing.T) {
	s := New(testAlertServer(t, 2), Config{})

	if code := doJSON(t, s, http.MethodPut, "/v1/streams/3", ImportRequest{SnapshotB64: "!!! not base64 !!!"}, nil); code != http.StatusBadRequest {
		t.Errorf("garbled base64: status %d, want 400", code)
	}
	if code := doJSON(t, s, http.MethodPut, "/v1/streams/3", ImportRequest{
		SnapshotB64: base64.StdEncoding.EncodeToString([]byte("junk")),
	}, nil); code != http.StatusBadRequest {
		t.Errorf("corrupt blob: status %d, want 400", code)
	}

	// Materialize stream 3, export a donor snapshot from another stream,
	// and try to land it on the live one.
	doJSON(t, s, http.MethodPost, "/v1/decide", DecideRequest{Stream: 3, Spec: testSpec()}, nil)
	doJSON(t, s, http.MethodPost, "/v1/decide", DecideRequest{Stream: 4, Spec: testSpec()}, nil)
	var snap SnapshotResponse
	if code := doJSON(t, s, http.MethodGet, "/v1/streams/4/snapshot", nil, &snap); code != http.StatusOK {
		t.Fatalf("export status %d", code)
	}
	if code := doJSON(t, s, http.MethodPut, "/v1/streams/3", ImportRequest{SnapshotB64: snap.SnapshotB64}, nil); code != http.StatusConflict {
		t.Errorf("import onto live stream: status %d, want 409", code)
	}

	var stats StatsResponse
	doJSON(t, s, http.MethodGet, "/v1/stats", nil, &stats)
	if stats.Net.Imports != 0 || stats.Serve.StreamImports != 0 {
		t.Errorf("rejected imports were counted as served: %+v", stats.Net)
	}
	if stats.Net.BadRequests != 2 {
		t.Errorf("bad_requests = %d, want 2", stats.Net.BadRequests)
	}
}

// TestDrainExportAsymmetry: a draining node still serves exports — that is
// how its sessions leave — but refuses imports with 503, and the export
// path never wedges Drain.
func TestDrainExportAsymmetry(t *testing.T) {
	s := New(testAlertServer(t, 2), Config{})

	doJSON(t, s, http.MethodPost, "/v1/decide", DecideRequest{Stream: 1, Spec: testSpec()}, nil)
	doJSON(t, s, http.MethodPost, "/v1/decide", DecideRequest{Stream: 2, Spec: testSpec()}, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	// Mutating traffic is refused...
	if code := doJSON(t, s, http.MethodPost, "/v1/decide", DecideRequest{Stream: 1, Spec: testSpec()}, nil); code != http.StatusServiceUnavailable {
		t.Errorf("decide during drain: status %d, want 503", code)
	}
	// ...including imports...
	var snap SnapshotResponse
	if code := doJSON(t, s, http.MethodGet, "/v1/streams/1/snapshot", nil, &snap); code != http.StatusOK {
		t.Fatalf("export during drain: status %d, want 200", code)
	}
	if code := doJSON(t, s, http.MethodPut, "/v1/streams/9", ImportRequest{SnapshotB64: snap.SnapshotB64}, nil); code != http.StatusServiceUnavailable {
		t.Errorf("import during drain: status %d, want 503", code)
	}
	// ...but the remaining session can still be exported.
	if code := doJSON(t, s, http.MethodGet, "/v1/streams/2/snapshot", nil, nil); code != http.StatusOK {
		t.Errorf("second export during drain failed")
	}
	var stats StatsResponse
	doJSON(t, s, http.MethodGet, "/v1/stats", nil, &stats)
	if stats.Streams != 0 {
		t.Errorf("streams = %d after draining exports, want 0", stats.Streams)
	}
}

// TestEvictRacesDecideBatch is the netserve-level eviction race test
// (the serve-layer twin is TestEvictStreamConcurrentWithDecideBatch):
// DELETE /v1/streams/{id} racing in-flight POST /v1/decide-batch on the
// same stream. Every batch response must carry a full set of real
// decisions — admission is all-or-nothing, the pool never drops accepted
// work — and the stream-table gauges must balance when the dust settles.
func TestEvictRacesDecideBatch(t *testing.T) {
	s := New(testAlertServer(t, 2), Config{MaxInflight: 32})

	const hot, rounds = 0, 120
	breq := BatchRequest{Requests: []DecideRequest{
		{Stream: hot, Spec: testSpec()},
		{Stream: 1, Spec: testSpec()},
		{Stream: hot, Spec: testSpec()},
	}}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			var resp BatchResponse
			if code := doJSON(t, s, http.MethodPost, "/v1/decide-batch", breq, &resp); code != http.StatusOK {
				t.Errorf("round %d: batch status %d", i, code)
				return
			}
			if len(resp.Results) != len(breq.Requests) {
				t.Errorf("round %d: %d results, want %d", i, len(resp.Results), len(breq.Requests))
				return
			}
			for j, r := range resp.Results {
				if r.Estimate.LatMeanS <= 0 {
					t.Errorf("round %d result %d lost to a concurrent evict: %+v", i, j, r)
					return
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if code := doJSON(t, s, http.MethodDelete, fmt.Sprintf("/v1/streams/%d", hot), nil, nil); code != http.StatusOK {
				t.Errorf("round %d: evict status %d", i, code)
				return
			}
		}
	}()
	wg.Wait()

	var stats StatsResponse
	doJSON(t, s, http.MethodGet, "/v1/stats", nil, &stats)
	var streams StreamsResponse
	doJSON(t, s, http.MethodGet, "/v1/streams", nil, &streams)
	if int64(streams.Count) != stats.Serve.Streams {
		t.Errorf("streams gauge %d != live table %d", stats.Serve.Streams, streams.Count)
	}
	if stats.Net.Batches != rounds || stats.Net.BatchDecisions != rounds*3 {
		t.Errorf("batch counters %d/%d, want %d/%d", stats.Net.Batches, stats.Net.BatchDecisions, rounds, rounds*3)
	}
	if stats.Net.Evictions != rounds {
		t.Errorf("evictions = %d, want %d", stats.Net.Evictions, rounds)
	}
}
