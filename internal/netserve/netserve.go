// Package netserve is the network serving front end over alert.Server: an
// HTTP/JSON API exposing the stream table to remote clients, with the
// production behaviors the in-process path never needed — bounded
// admission, per-request deadlines, and graceful drain.
//
// Endpoints (see wire.go for the exact JSON shapes):
//
//	POST   /v1/decide        one decision for one stream
//	POST   /v1/observe       feedback for one stream (fire-and-forget)
//	POST   /v1/decide-batch  one decision per request, request order
//	GET    /v1/stats         serve + front-end counter snapshots, node identity
//	GET    /metrics          the same counters in Prometheus text format
//	GET    /v1/streams       live stream ids
//	DELETE /v1/streams/{id}  evict one stream's session
//	GET    /v1/streams/{id}/snapshot  export (snapshot + remove) a session
//	GET    /v1/streams/{id}/checkpoint  checkpoint (snapshot, keep serving)
//	PUT    /v1/streams/{id}  import a previously exported session
//	GET    /v1/membership    the node's membership view (when enabled)
//	POST   /v1/membership    peer heartbeat; replies with the merged view
//	PUT    /v1/replicas/{id} store a peer's replicated checkpoint
//	GET    /v1/replicas      list held replicas
//	POST   /v1/claims        resolve an ownership claim after import/restore
//
// The membership/replica/claim endpoints are the self-healing control
// plane (see internal/membership and internal/selfheal); they bypass the
// admission gate because they are what decides who should be taking load,
// and they 404 on nodes that run without membership.
//
// # Admission control
//
// The in-process pool applies backpressure by blocking the submitter; a
// network server cannot block an unbounded number of connections without
// melting, so the front end bounds its exposure explicitly. At most
// MaxInflight requests are past the gate at once; up to MaxQueue more wait
// at it. A request that would exceed the queue is rejected immediately
// with 429 and a Retry-After hint, and a decide whose Spec deadline
// expires while it waits is rejected the same way (a decision that late is
// useless). Crucially, admission is all-or-nothing: once a request passes
// the gate it is always served — the pool beneath never drops work — so
// overload sheds cleanly at the edge with zero dropped accepted requests.
// Only the mutating endpoints pass the gate; the stats/streams reads stay
// ungated so monitoring keeps answering while the server is saturated or
// draining.
//
// # Ordering
//
// The per-stream FIFO guarantee of the pool extends over the wire per
// connection in the natural way: a client that waits for each response
// before its next request on a stream observes exactly the in-process
// semantics, and replays are byte-identical to driving alert.Server
// directly (cmd/alertload -addr pins this). Concurrent requests for one
// stream race at the admission gate like goroutines race at the pool.
//
// # Drain
//
// Drain flips the server into shutdown mode: new mutating requests are
// refused with 503 (clients see Retry-After and go elsewhere; reads still
// answer) while everything already admitted runs to completion.
// cmd/alertserve wires it to SIGINT/SIGTERM ahead of http.Server.Shutdown.
package netserve

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/alert-project/alert"
	"github.com/alert-project/alert/internal/membership"
	"github.com/alert-project/alert/internal/metrics"
	"github.com/alert-project/alert/internal/overload"
)

// Config sizes the front end. The zero value selects sensible defaults.
type Config struct {
	// MaxInflight bounds the requests concurrently past the admission gate
	// (the mutating endpoints: decide, observe, decide-batch, and stream
	// eviction; the stats/streams reads are deliberately ungated so
	// monitoring keeps answering under overload and drain); 0 means 64.
	MaxInflight int
	// MaxQueue bounds the requests waiting at the gate beyond MaxInflight;
	// a request arriving with the queue full is rejected with 429. 0 means
	// 2×MaxInflight.
	MaxQueue int
	// RetryAfter is the backoff hint attached to 429/503 responses; 0
	// means 50ms.
	RetryAfter time.Duration
	// NodeID names this node in a cluster; it is echoed in GET /v1/stats so
	// routing clients can verify they reached the member they meant to.
	// Empty means a standalone node.
	NodeID string
	// Peers lists the other cluster members' addresses, also echoed in
	// /v1/stats. Purely advisory soft state: clients treat it as a
	// bootstrap hint and re-probe members directly, so a stale list
	// degrades discovery, never correctness.
	Peers []string
	// Membership, if set, serves the node's live membership view on
	// GET /v1/membership and accepts peer heartbeats on POST
	// /v1/membership. Nil keeps both endpoints 404 (a static-membership
	// node).
	Membership *membership.Agent
	// Recovery, if set, enables the self-healing control plane — replica
	// storage (PUT/GET /v1/replicas), ownership claims (POST /v1/claims)
	// — and the restoring hold: decides/observes for a stream mid-restore
	// are shed with 503 + Retry-After instead of forking a fresh session.
	Recovery Recovery
	// Adaptive lets the measured-delay controller (internal/overload) move
	// the effective inflight/queue limits around the static
	// MaxInflight/MaxQueue configuration. Off (the default), the limits
	// stay pinned and the gate behaves exactly like the static one; the
	// controller still measures, so the overload observability is live
	// either way.
	Adaptive bool
	// SLOShed enables hopeless-deadline shedding: at admission, a request
	// whose Spec deadline is predicted unmeetable (current queue-delay p95
	// plus expected decide latency already exceeds it) is shed first, with
	// a drain-estimate Retry-After, so every shed request is one that
	// would have missed anyway.
	SLOShed bool
	// ServiceDelay, when positive, adds an artificial per-decide service
	// latency. It exists for overload rehearsal — cmd/alertload's
	// gate-compare mode and the CI overload smoke use it to drive real
	// queueing at the gate with wall-clock-meaningful deadlines. Zero (the
	// default) in production.
	ServiceDelay time.Duration
}

func (c Config) maxInflight() int {
	if c.MaxInflight <= 0 {
		return 64
	}
	return c.MaxInflight
}

func (c Config) maxQueue() int {
	if c.MaxQueue <= 0 {
		return 2 * c.maxInflight()
	}
	return c.MaxQueue
}

func (c Config) retryAfter() time.Duration {
	if c.RetryAfter <= 0 {
		return 50 * time.Millisecond
	}
	return c.RetryAfter
}

// Server is the HTTP front end. It implements http.Handler; mount it on
// any mux or serve it directly. The underlying alert.Server is owned by
// the caller and must outlive the front end.
type Server struct {
	alert      *alert.Server
	net        *metrics.NetCounters
	retryAfter time.Duration
	nodeID     string
	peers      []string
	agent      *membership.Agent
	recovery   Recovery

	// gate is the admission gate shared by both transports: a resizable
	// FIFO semaphore whose effective limits the overload controller owns.
	// A request must acquire a slot to run and releases it when done;
	// beyond the queue limit it is rejected, which is what bounds this
	// server's total exposure. slo records per-stream deadline attainment.
	gate         *overload.Gate
	slo          *overload.SLOTracker
	adaptive     bool
	serviceDelay time.Duration

	// Drain bookkeeping: draining refuses new admissions; inflight counts
	// admitted-but-unfinished requests; drained closes when draining is on
	// and inflight reaches zero.
	mu        sync.Mutex
	draining  bool
	inflight  int
	drained   chan struct{}
	drainOnce sync.Once

	// binary is the attached binary wire listener, nil until NewBinary;
	// guarded by mu because stats reads race the attach.
	binary *BinaryServer
}

// New builds the front end over an alert.Server.
func New(srv *alert.Server, cfg Config) *Server {
	return &Server{
		alert:      srv,
		net:        metrics.NewNetCounters(),
		retryAfter: cfg.retryAfter(),
		nodeID:     cfg.NodeID,
		peers:      cfg.Peers,
		agent:      cfg.Membership,
		recovery:   cfg.Recovery,
		gate: overload.NewGate(overload.NewController(overload.Config{
			Inflight:   cfg.maxInflight(),
			Queue:      cfg.maxQueue(),
			Adaptive:   cfg.Adaptive,
			SLOShed:    cfg.SLOShed,
			RetryAfter: cfg.retryAfter(),
		})),
		slo:          overload.NewSLOTracker(0),
		adaptive:     cfg.Adaptive,
		serviceDelay: cfg.ServiceDelay,
		drained:      make(chan struct{}),
	}
}

// OverloadStats snapshots the admission gate's live state.
func (s *Server) OverloadStats() metrics.OverloadSnapshot { return s.gate.Snapshot() }

// NetStats snapshots the front end's request/latency/overload counters.
func (s *Server) NetStats() metrics.NetSnapshot { return s.net.Snapshot() }

// Drain stops admitting mutating requests (new ones get 503 +
// Retry-After; reads still answer) and blocks until every admitted
// request has finished, or ctx expires. It is idempotent; the front end
// stays in draining mode afterwards.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	if s.inflight == 0 {
		s.drainOnce.Do(func() { close(s.drained) })
	}
	s.mu.Unlock()
	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// admitStatus classifies an admission attempt.
type admitStatus int

const (
	admitOK admitStatus = iota
	admitOverload
	admitDeadline
	admitDraining
)

// admit passes the request through the gate. On admitOK the caller MUST
// call s.release() when done — from that point the request is "accepted"
// and will be served no matter what. ctx carries the request's admission
// deadline (the Spec deadline for decides, the connection's lifetime
// otherwise); deadlineS is that same Spec deadline in seconds (0 = none),
// which feeds the controller's headroom estimate. drainExempt requests are
// still slot-gated but admitted while the server drains: stream export is
// the mechanism for moving sessions OFF a draining node, so refusing it
// would deadlock a graceful hand-off (imports stay refused — a draining
// node must shed state, not accept it).
func (s *Server) admit(ctx context.Context, deadlineS float64, drainExempt bool) admitStatus {
	st, w := s.tryAdmit(deadlineS, drainExempt)
	if w == nil {
		return st
	}
	return s.admitQueued(ctx, w, drainExempt)
}

// tryAdmit is admission's no-wait half: drain refusal, free-slot
// admission, or queue-full rejection. When it returns a non-nil Waiter the
// request has been counted into the queue and the caller MUST finish with
// admitQueued — the split exists so the binary listener can keep its hot
// path free of context plumbing and only build a deadline context when a
// request actually has to wait.
func (s *Server) tryAdmit(deadlineS float64, drainExempt bool) (admitStatus, *overload.Waiter) {
	// Cheap pre-check so a draining server refuses without queueing; the
	// authoritative check is settleAdmit's, after the slot is held.
	if !drainExempt && s.isDraining() {
		return admitDraining, nil
	}
	switch v, w := s.gate.TryAcquire(deadlineS); v {
	case overload.GateFull:
		return admitOverload, nil
	case overload.GateQueued:
		return admitOK, w
	}
	return s.settleAdmit(drainExempt), nil
}

// admitQueued waits at the gate after tryAdmit queued the request.
func (s *Server) admitQueued(ctx context.Context, w *overload.Waiter, drainExempt bool) admitStatus {
	if !s.gate.Wait(ctx, w) {
		return admitDeadline
	}
	return s.settleAdmit(drainExempt)
}

// settleAdmit finishes an admission that holds a gate slot: the drain
// recheck and the inflight bookkeeping run under one lock, so Drain's "no
// new work after the flip" promise holds even for requests that acquired
// their slot while the flip happened — they give it back and refuse.
func (s *Server) settleAdmit(drainExempt bool) admitStatus {
	s.mu.Lock()
	if s.draining && !drainExempt {
		s.mu.Unlock()
		s.gate.Release()
		return admitDraining
	}
	s.inflight++
	s.mu.Unlock()
	return admitOK
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// release returns an admitted request's gate slot and settles the drain
// bookkeeping.
func (s *Server) release() {
	s.gate.Release()
	s.mu.Lock()
	s.inflight--
	if s.draining && s.inflight == 0 {
		s.drainOnce.Do(func() { close(s.drained) })
	}
	s.mu.Unlock()
}

// HoldTokenForTest occupies one admission slot with no request attached,
// and ReleaseTokenForTest frees one. They exist so tests in other packages
// (client, cmd/alertload) can saturate the gate deterministically instead
// of racing real traffic against it; production code must never call them.
func (s *Server) HoldTokenForTest()    { s.gate.ForceAcquire() }
func (s *Server) ReleaseTokenForTest() { s.gate.Release() }

// maxBody bounds request bodies; a decide-batch of tens of thousands of
// requests fits comfortably.
const maxBody = 8 << 20

// ServeHTTP routes the /v1 API. Go 1.21-compatible by hand: method
// patterns in ServeMux arrived in 1.22 and go.mod supports 1.21.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	switch {
	case path == "/v1/decide":
		s.post(w, r, s.handleDecide)
	case path == "/v1/observe":
		s.post(w, r, s.handleObserve)
	case path == "/v1/decide-batch":
		s.post(w, r, s.handleDecideBatch)
	case path == "/v1/stats":
		s.get(w, r, s.handleStats)
	case path == "/metrics":
		s.get(w, r, s.handleMetrics)
	case path == "/v1/streams":
		s.get(w, r, s.handleStreams)
	case strings.HasPrefix(path, "/v1/streams/"):
		s.routeStream(w, r, strings.TrimPrefix(path, "/v1/streams/"))
	case path == membership.Endpoint:
		s.handleMembership(w, r)
	case path == "/v1/replicas":
		s.get(w, r, s.handleReplicas)
	case strings.HasPrefix(path, "/v1/replicas/"):
		s.routeReplica(w, r, strings.TrimPrefix(path, "/v1/replicas/"))
	case path == "/v1/claims":
		s.post(w, r, s.handleClaim)
	default:
		s.net.RecordBadRequest()
		s.writeError(w, http.StatusNotFound, fmt.Sprintf("no such endpoint %s", path), false)
	}
}

func (s *Server) post(w http.ResponseWriter, r *http.Request, h func(http.ResponseWriter, *http.Request)) {
	if r.Method != http.MethodPost {
		s.methodNotAllowed(w, http.MethodPost)
		return
	}
	h(w, r)
}

func (s *Server) get(w http.ResponseWriter, r *http.Request, h func(http.ResponseWriter, *http.Request)) {
	if r.Method != http.MethodGet {
		s.methodNotAllowed(w, http.MethodGet)
		return
	}
	h(w, r)
}

func (s *Server) methodNotAllowed(w http.ResponseWriter, allow string) {
	s.net.RecordBadRequest()
	w.Header().Set("Allow", allow)
	s.writeError(w, http.StatusMethodNotAllowed, "method not allowed", false)
}

func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req DecideRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	spec, err := req.Spec.ToSpec()
	if err != nil {
		s.net.RecordBadRequest()
		s.writeError(w, http.StatusBadRequest, err.Error(), false)
		return
	}
	if s.rejectIfRestoring(w, req.Stream) {
		return
	}
	if s.shedIfHopeless(w, req.Stream, spec.Deadline) {
		return
	}
	ctx := r.Context()
	// The Spec deadline propagates to admission: a decision still queued
	// when the input's deadline has passed serves nobody.
	if d, ok := admissionTimeout(spec.Deadline); ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	if !s.admitOrRejectDeadline(w, ctx, spec.Deadline) {
		s.slo.RecordShed(req.Stream)
		return
	}
	defer s.release()

	admitted := time.Now()
	s.sleepServiceDelay()
	d, est := s.alert.Decide(req.Stream, spec)
	s.gate.Controller().ObserveService(time.Since(admitted))
	sojourn := time.Since(start)
	s.recordServedSLO(req.Stream, spec.Deadline, sojourn)
	s.net.RecordDecide(sojourn)
	s.writeJSON(w, http.StatusOK, DecideResponse{
		Decision: FromDecision(d),
		Estimate: FromEstimate(est),
		NodeID:   s.nodeID,
	})
}

// sleepServiceDelay applies the configured artificial service latency
// (overload rehearsal only; see Config.ServiceDelay).
func (s *Server) sleepServiceDelay() {
	if s.serviceDelay > 0 {
		time.Sleep(s.serviceDelay)
	}
}

// recordServedSLO folds a served decide into the per-stream SLO tracker:
// met when the request had no deadline or its end-to-end sojourn fit it.
func (s *Server) recordServedSLO(stream int, deadlineS float64, sojourn time.Duration) {
	s.slo.RecordServed(stream, deadlineS <= 0 || sojourn.Seconds() <= deadlineS)
}

// shedIfHopeless is the SLO shedder: when the gate is saturated and the
// request's deadline is predicted unmeetable, shed it before it joins the
// queue — 429 with the controller's drain estimate as the Retry-After, so
// the client knows when capacity is expected back. Deliberately not
// clamped to the request's headroom: this deadline is already lost, the
// hint is for the next one.
func (s *Server) shedIfHopeless(w http.ResponseWriter, stream int, deadlineS float64) bool {
	if !s.gate.ShouldShed(deadlineS) {
		return false
	}
	s.net.RecordRejectHopeless()
	s.gate.Controller().RecordShed(overload.ShedHopeless)
	s.slo.RecordShed(stream)
	s.writeErrorHint(w, http.StatusTooManyRequests,
		"deadline cannot be met at current load", s.gate.RetryAfter())
	return true
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	var req ObserveRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if s.rejectIfRestoring(w, req.Stream) {
		return
	}
	if !s.admitOrReject(w, r.Context()) {
		return
	}
	defer s.release()

	// Observes are deadline-free, so they are never SLO-shed; the enqueue
	// below happens before the 202 is written, so a client that
	// round-trips observe → decide on one stream is FIFO-ordered exactly
	// like the in-process path.
	s.alert.Observe(req.Stream, req.Feedback.ToFeedback())
	s.net.RecordObserve()
	s.writeJSON(w, http.StatusAccepted, struct{}{})
}

func (s *Server) handleDecideBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req BatchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Requests) == 0 {
		s.net.RecordBadRequest()
		s.writeError(w, http.StatusBadRequest, "empty batch", false)
		return
	}
	inner := make([]alert.BatchRequest, len(req.Requests))
	minDeadline := 0.0
	for i, br := range req.Requests {
		spec, err := br.Spec.ToSpec()
		if err != nil {
			s.net.RecordBadRequest()
			s.writeError(w, http.StatusBadRequest, fmt.Sprintf("request %d: %v", i, err), false)
			return
		}
		inner[i] = alert.BatchRequest{Stream: br.Stream, Spec: spec}
		if spec.Deadline > 0 && (minDeadline == 0 || spec.Deadline < minDeadline) {
			minDeadline = spec.Deadline
		}
		// A batch touching a restoring stream sheds whole: serving the
		// rest while silently skipping one slot would break the
		// "results in request order" contract.
		if s.rejectIfRestoring(w, br.Stream) {
			return
		}
	}
	// The batch's admission deadline is its tightest member's: if that
	// one can no longer be served in time, the batch is late. The SLO
	// shedder judges the same tightest deadline — a batch sheds whole.
	if s.gate.ShouldShed(minDeadline) {
		s.net.RecordRejectHopeless()
		s.gate.Controller().RecordShed(overload.ShedHopeless)
		for _, br := range req.Requests {
			s.slo.RecordShed(br.Stream)
		}
		s.writeErrorHint(w, http.StatusTooManyRequests,
			"deadline cannot be met at current load", s.gate.RetryAfter())
		return
	}
	ctx := r.Context()
	if d, ok := admissionTimeout(minDeadline); ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	if !s.admitOrRejectDeadline(w, ctx, minDeadline) {
		for _, br := range req.Requests {
			s.slo.RecordShed(br.Stream)
		}
		return
	}
	defer s.release()

	admitted := time.Now()
	s.sleepServiceDelay()
	results := s.alert.DecideBatch(inner)
	s.gate.Controller().ObserveService(time.Since(admitted))
	sojourn := time.Since(start)
	out := BatchResponse{Results: make([]BatchResult, len(results))}
	for i, res := range results {
		s.recordServedSLO(res.Stream, inner[i].Spec.Deadline, sojourn)
		out.Results[i] = BatchResult{
			Stream:   res.Stream,
			Decision: FromDecision(res.Decision),
			Estimate: FromEstimate(res.Estimate),
		}
	}
	s.net.RecordBatch(len(results), sojourn)
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.net.RecordRead()
	resp := StatsResponse{
		Serve:    s.alert.Stats(),
		Net:      s.net.Snapshot(),
		Platform: s.alert.Platform().Name,
		Models:   len(s.alert.Models()),
		Shards:   s.alert.Shards(),
		Streams:  s.alert.Streams(),
		NodeID:   s.nodeID,
		Peers:    s.peers,
	}
	ov := s.gate.Snapshot()
	resp.Overload = &ov
	resp.SLO = s.slo.Snapshot()
	if bs := s.binaryServer(); bs != nil {
		resp.BinaryAddr = bs.Addr()
		snap := bs.bin.Snapshot()
		resp.Bin = &snap
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// binaryServer returns the attached binary listener, if any.
func (s *Server) binaryServer() *BinaryServer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.binary
}

// handleMetrics serves GET /metrics: the serve/net/binary counters in
// Prometheus text exposition format. Ungated like the stats read —
// scrapers must keep answering while the server is saturated or draining.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.net.RecordRead()
	var bin *metrics.BinSnapshot
	if bs := s.binaryServer(); bs != nil {
		snap := bs.bin.Snapshot()
		bin = &snap
	}
	ov := s.gate.Snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	metrics.WritePrometheus(w, s.alert.Stats(), s.net.Snapshot(), bin, &ov)
}

func (s *Server) handleStreams(w http.ResponseWriter, r *http.Request) {
	s.net.RecordRead()
	ids := s.alert.StreamIDs()
	s.writeJSON(w, http.StatusOK, StreamsResponse{Count: len(ids), IDs: ids})
}

// routeStream dispatches the per-stream endpoints:
//
//	DELETE /v1/streams/{id}             evict
//	PUT    /v1/streams/{id}             import a migrated session
//	GET    /v1/streams/{id}/snapshot    export (snapshot + remove) a session
//	GET    /v1/streams/{id}/checkpoint  checkpoint a session in place
func (s *Server) routeStream(w http.ResponseWriter, r *http.Request, rest string) {
	idStr, isSnapshot := strings.CutSuffix(rest, "/snapshot")
	var isCheckpoint bool
	if !isSnapshot {
		idStr, isCheckpoint = strings.CutSuffix(rest, "/checkpoint")
	}
	id, err := strconv.Atoi(idStr)
	if err != nil || strings.Contains(idStr, "/") {
		s.net.RecordBadRequest()
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad stream id %q", idStr), false)
		return
	}
	switch {
	case isSnapshot:
		if r.Method != http.MethodGet {
			s.methodNotAllowed(w, http.MethodGet)
			return
		}
		s.handleStreamExport(w, r, id)
	case isCheckpoint:
		if r.Method != http.MethodGet {
			s.methodNotAllowed(w, http.MethodGet)
			return
		}
		s.handleStreamCheckpoint(w, r, id)
	case r.Method == http.MethodDelete:
		s.handleStreamDelete(w, r, id)
	case r.Method == http.MethodPut:
		s.handleStreamImport(w, r, id)
	default:
		s.methodNotAllowed(w, "DELETE, PUT")
	}
}

func (s *Server) handleStreamDelete(w http.ResponseWriter, r *http.Request, id int) {
	if !s.admitOrReject(w, r.Context()) {
		return
	}
	defer s.release()

	s.alert.EvictStream(id)
	s.net.RecordEviction()
	s.writeJSON(w, http.StatusOK, EvictResponse{Stream: id, Streams: s.alert.Streams()})
}

// handleStreamExport serves GET /v1/streams/{id}/snapshot: drain the
// stream, snapshot its session, remove it, and ship the canonical binary
// snapshot (base64 in JSON — session floats never pass through JSON number
// formatting). Export is admission-gated but drain-exempt: it is how
// sessions leave a draining node.
func (s *Server) handleStreamExport(w http.ResponseWriter, r *http.Request, id int) {
	if !s.admitOrRejectExempt(w, r.Context(), true) {
		return
	}
	defer s.release()

	snap, ok := s.alert.ExportStream(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Sprintf("stream %d has no session", id), false)
		return
	}
	blob, err := snap.MarshalBinary()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error(), false)
		return
	}
	s.net.RecordExport()
	s.writeJSON(w, http.StatusOK, SnapshotResponse{
		Stream:      id,
		Version:     int(snap.Version),
		SnapshotB64: base64.StdEncoding.EncodeToString(blob),
	})
}

// handleStreamCheckpoint serves GET /v1/streams/{id}/checkpoint: snapshot
// the stream's session WITHOUT removing it — the periodic-backup read
// behind crash recovery (a node that dies ungracefully restarts its streams
// from their last checkpoints). Like the stats/streams reads it bypasses
// the admission gate entirely: it mutates nothing, must keep answering
// under overload and drain, and does not count toward the export/import
// balance that migration accounting checks.
func (s *Server) handleStreamCheckpoint(w http.ResponseWriter, r *http.Request, id int) {
	s.net.RecordRead()
	snap, ok := s.alert.SnapshotStream(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Sprintf("stream %d has no session", id), false)
		return
	}
	blob, err := snap.MarshalBinary()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error(), false)
		return
	}
	s.writeJSON(w, http.StatusOK, SnapshotResponse{
		Stream:      id,
		Version:     int(snap.Version),
		SnapshotB64: base64.StdEncoding.EncodeToString(blob),
	})
}

// handleStreamImport serves PUT /v1/streams/{id}: restore an exported
// session under the given id. Unlike export it is NOT drain-exempt — a
// draining node sheds state, it must not accept more.
func (s *Server) handleStreamImport(w http.ResponseWriter, r *http.Request, id int) {
	var req ImportRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	blob, err := base64.StdEncoding.DecodeString(req.SnapshotB64)
	if err != nil {
		s.net.RecordBadRequest()
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad snapshot encoding: %v", err), false)
		return
	}
	var snap alert.SessionSnapshot
	if err := snap.UnmarshalBinary(blob); err != nil {
		s.net.RecordBadRequest()
		s.writeError(w, http.StatusBadRequest, err.Error(), false)
		return
	}
	if !s.admitOrReject(w, r.Context()) {
		return
	}
	defer s.release()

	if err := s.alert.ImportStream(id, snap); err != nil {
		// A live target session is the caller racing itself (or another
		// migrator); 409 tells it the stream is already being served here.
		s.writeError(w, http.StatusConflict, err.Error(), false)
		return
	}
	// Announce ownership before answering: when this PUT returns 200,
	// every reachable peer has either evicted its staler copy of the
	// stream or outranked us (in which case our import is gone and the
	// caller gets the conflict). This is what keeps a migration and a
	// concurrent failover restore from forking the stream.
	if s.recovery != nil {
		if s.recovery.AnnounceImport(id, snap.Decisions) {
			s.writeError(w, http.StatusConflict,
				fmt.Sprintf("stream %d: a peer serves a fresher session; import evicted", id), false)
			return
		}
	}
	s.net.RecordImport()
	s.writeJSON(w, http.StatusOK, ImportResponse{Stream: id, Streams: s.alert.Streams()})
}

// rejectIfRestoring sheds a request whose stream is mid-restore after a
// failover: 503 + Retry-After, before any state is touched (so nothing is
// lost — the client retries onto the finished restore). Never fires
// without a Recovery.
func (s *Server) rejectIfRestoring(w http.ResponseWriter, stream int) bool {
	if s.recovery == nil || !s.recovery.Restoring(stream) {
		return false
	}
	s.net.RecordRejectRestoring()
	s.writeError(w, http.StatusServiceUnavailable,
		fmt.Sprintf("stream %d is restoring after failover", stream), true)
	return true
}

// handleMembership serves the membership endpoint: GET returns this
// node's current view; POST delivers a peer heartbeat and returns the
// merged view. Both bypass the admission gate — membership is the control
// plane that decides who should be taking load, so it must keep answering
// precisely when the data plane is saturated or draining.
func (s *Server) handleMembership(w http.ResponseWriter, r *http.Request) {
	if s.agent == nil {
		s.writeError(w, http.StatusNotFound, "membership not enabled on this node", false)
		return
	}
	switch r.Method {
	case http.MethodGet:
		s.net.RecordRead()
		s.writeView(w, s.agent.View())
	case http.MethodPost:
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
		if err != nil {
			s.net.RecordBadRequest()
			s.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad heartbeat body: %v", err), false)
			return
		}
		hb, err := membership.DecodeHeartbeat(body)
		if err != nil {
			s.net.RecordBadRequest()
			s.writeError(w, http.StatusBadRequest, err.Error(), false)
			return
		}
		s.writeView(w, s.agent.HandleHeartbeat(hb))
	default:
		s.methodNotAllowed(w, "GET, POST")
	}
}

// writeView writes a membership view in its canonical encoding.
func (s *Server) writeView(w http.ResponseWriter, v membership.View) {
	data, err := membership.EncodeView(v)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error(), false)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
	w.Write([]byte("\n"))
}

// routeReplica dispatches PUT /v1/replicas/{id}.
func (s *Server) routeReplica(w http.ResponseWriter, r *http.Request, idStr string) {
	if s.recovery == nil {
		s.writeError(w, http.StatusNotFound, "self-healing not enabled on this node", false)
		return
	}
	id, err := strconv.Atoi(idStr)
	if err != nil || strings.Contains(idStr, "/") {
		s.net.RecordBadRequest()
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad stream id %q", idStr), false)
		return
	}
	if r.Method != http.MethodPut {
		s.methodNotAllowed(w, http.MethodPut)
		return
	}
	s.handleReplicaPut(w, r, id)
}

// handleReplicaPut stores a peer's replicated checkpoint. Like the other
// control-plane endpoints it is ungated: replication is what makes the
// next failover lossless, so overload must not starve it.
func (s *Server) handleReplicaPut(w http.ResponseWriter, r *http.Request, id int) {
	var req ReplicaPutRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Owner == "" {
		s.net.RecordBadRequest()
		s.writeError(w, http.StatusBadRequest, "replica without owner", false)
		return
	}
	blob, err := base64.StdEncoding.DecodeString(req.SnapshotB64)
	if err != nil {
		s.net.RecordBadRequest()
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad snapshot encoding: %v", err), false)
		return
	}
	var snap alert.SessionSnapshot
	if err := snap.UnmarshalBinary(blob); err != nil {
		s.net.RecordBadRequest()
		s.writeError(w, http.StatusBadRequest, err.Error(), false)
		return
	}
	s.recovery.StoreReplica(id, req.Owner, snap.Decisions, snap)
	s.writeJSON(w, http.StatusOK, ReplicaPutResponse{Stream: id, Replicas: len(s.recovery.Replicas())})
}

// handleReplicas lists the replicas held for peers (ops and tests).
func (s *Server) handleReplicas(w http.ResponseWriter, r *http.Request) {
	if s.recovery == nil {
		s.writeError(w, http.StatusNotFound, "self-healing not enabled on this node", false)
		return
	}
	s.net.RecordRead()
	infos := s.recovery.Replicas()
	out := ReplicasResponse{Count: len(infos), Replicas: make([]ReplicaWire, len(infos))}
	for i, ri := range infos {
		out.Replicas[i] = ReplicaWire{Stream: ri.Stream, Owner: ri.Owner, Decisions: ri.Decisions}
	}
	s.writeJSON(w, http.StatusOK, out)
}

// handleClaim answers a peer's ownership claim (see ClaimRequest).
// Ungated: claims are how concurrent movers of one stream decide a single
// winner, and parking one behind a saturated gate would hold the fork
// window open.
func (s *Server) handleClaim(w http.ResponseWriter, r *http.Request) {
	if s.recovery == nil {
		s.writeError(w, http.StatusNotFound, "self-healing not enabled on this node", false)
		return
	}
	var req ClaimRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.NodeID == "" || (req.Kind != ClaimKindImport && req.Kind != ClaimKindRestore) {
		s.net.RecordBadRequest()
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("claim needs node_id and kind %q or %q", ClaimKindImport, ClaimKindRestore), false)
		return
	}
	superseded, local := s.recovery.HandleClaim(req.Stream, req.NodeID, req.Kind, req.Decisions)
	s.writeJSON(w, http.StatusOK, ClaimResponse{Superseded: superseded, Decisions: local})
}

// admissionTimeout converts a Spec deadline in seconds to an admission
// context timeout. ok is false when the deadline imposes no bound: zero,
// negative, or too large to represent as a time.Duration (the naive
// float64→int64 conversion of a huge product is implementation-defined,
// so an absurdly patient request must not come out already expired).
func admissionTimeout(seconds float64) (time.Duration, bool) {
	if seconds <= 0 {
		return 0, false
	}
	ns := seconds * float64(time.Second)
	// Inverted comparison so NaN (all comparisons false) lands in the
	// no-bound branch instead of an implementation-defined conversion.
	if !(ns < float64(math.MaxInt64)) {
		return 0, false
	}
	return time.Duration(ns), true
}

// admitOrReject runs the admission gate and writes the rejection response
// itself; the caller proceeds (and later releases) only on true.
func (s *Server) admitOrReject(w http.ResponseWriter, ctx context.Context) bool {
	return s.admitOrRejectFull(w, ctx, 0, false)
}

// admitOrRejectDeadline is admitOrReject for deadline-carrying requests:
// the deadline feeds the controller's headroom estimate and clamps the
// rejection's Retry-After hint.
func (s *Server) admitOrRejectDeadline(w http.ResponseWriter, ctx context.Context, deadlineS float64) bool {
	return s.admitOrRejectFull(w, ctx, deadlineS, false)
}

// admitOrRejectExempt is admitOrReject with control over the drain
// exemption (see admit).
func (s *Server) admitOrRejectExempt(w http.ResponseWriter, ctx context.Context, drainExempt bool) bool {
	return s.admitOrRejectFull(w, ctx, 0, drainExempt)
}

func (s *Server) admitOrRejectFull(w http.ResponseWriter, ctx context.Context, deadlineS float64, drainExempt bool) bool {
	ctrl := s.gate.Controller()
	switch s.admit(ctx, deadlineS, drainExempt) {
	case admitOK:
		return true
	case admitOverload:
		s.net.RecordRejectOverload()
		ctrl.RecordShed(overload.ShedOverload)
		s.writeErrorHint(w, http.StatusTooManyRequests, "admission queue full",
			s.retryHint(deadlineS))
	case admitDeadline:
		s.net.RecordRejectDeadline()
		ctrl.RecordShed(overload.ShedDeadline)
		// The deadline is spent, so there is nothing to clamp to: hint the
		// plain drain estimate for the caller's next request.
		s.writeErrorHint(w, http.StatusTooManyRequests, "deadline expired before admission",
			s.retryHint(0))
	case admitDraining:
		s.net.RecordRejectDraining()
		ctrl.RecordShed(overload.ShedDraining)
		s.writeError(w, http.StatusServiceUnavailable, "server draining", true)
	}
	return false
}

// retryHint resolves the Retry-After a rejection carries: the controller's
// live drain estimate when the gate is adaptive, the configured static
// hint otherwise — clamped in both cases to the request's remaining
// deadline headroom when it has one, because hinting a retry after the
// deadline has passed is useless. Floor 1ms so the hint stays a hint.
func (s *Server) retryHint(deadlineS float64) time.Duration {
	hint := s.retryAfter
	if s.adaptive {
		hint = s.gate.RetryAfter()
	}
	if d, ok := admissionTimeout(deadlineS); ok && d < hint {
		hint = d
		if hint < time.Millisecond {
			hint = time.Millisecond
		}
	}
	return hint
}

// decodeBody parses a JSON request body, writing the 400 itself on
// failure.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		s.net.RecordBadRequest()
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err), false)
		return false
	}
	return true
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError sends the JSON error body; retryable responses carry the
// configured static Retry-After hint.
func (s *Server) writeError(w http.ResponseWriter, status int, msg string, retryable bool) {
	if !retryable {
		s.writeJSON(w, status, ErrorResponse{Error: msg})
		return
	}
	s.writeErrorHint(w, status, msg, s.retryAfter)
}

// writeErrorHint sends a retryable JSON error carrying the given
// Retry-After hint, both as a header (in whole seconds, per RFC 9110,
// rounded up) and in the body in milliseconds for precision (floor 1ms —
// 0 would read as "no hint").
func (s *Server) writeErrorHint(w http.ResponseWriter, status int, msg string, hint time.Duration) {
	secs := int64((hint + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	ms := int64(hint / time.Millisecond)
	if ms < 1 {
		ms = 1
	}
	s.writeJSON(w, status, ErrorResponse{Error: msg, RetryAfterMs: ms})
}
