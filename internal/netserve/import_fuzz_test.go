package netserve

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"github.com/alert-project/alert"
)

// FuzzImportStreamBody throws arbitrary bodies at PUT /v1/streams/{id} —
// the endpoint a byzantine migrator controls end to end. Garbage JSON,
// truncated or mispadded base64, and valid base64 of corrupt snapshot
// binary must all come back 4xx: the handler must never panic, never 5xx,
// and never let a malformed body touch the stream table or an existing
// session's state.
func FuzzImportStreamBody(f *testing.F) {
	srv := testAlertServer(f, 1)
	s := New(srv, Config{})

	// A resident session whose state must survive every malformed import
	// bit-for-bit (checkpoint reads don't disturb it).
	srv.Decide(0, alert.Spec{Objective: alert.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9})
	baseSnap, ok := srv.SnapshotStream(0)
	if !ok {
		f.Fatal("resident session missing")
	}
	baseline, err := baseSnap.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	validB64 := base64.StdEncoding.EncodeToString(baseline)
	validBody, _ := json.Marshal(ImportRequest{SnapshotB64: validB64})

	f.Add(validBody)
	f.Add([]byte(`{not json`))
	f.Add([]byte(``))
	f.Add([]byte(`{"snapshot_b64": 42}`))
	f.Add([]byte(`{"snapshot_b64": "!!!not-base64!!!"}`))
	truncated, _ := json.Marshal(ImportRequest{SnapshotB64: validB64[:len(validB64)/2+1]})
	f.Add(truncated)
	corrupt, _ := json.Marshal(ImportRequest{SnapshotB64: base64.StdEncoding.EncodeToString([]byte("junk binary"))})
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, body []byte) {
		before := srv.Streams()
		req := httptest.NewRequest("PUT", "/v1/streams/7", bytes.NewReader(body))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)

		code := w.Code
		switch {
		case code >= 500:
			t.Fatalf("body %q: server error %d: %s", body, code, w.Body.String())
		case code == 200:
			// The fuzzer built a genuinely valid import; undo it so the next
			// iteration starts from the same table.
			if srv.Streams() != before+1 {
				t.Fatalf("accepted import did not add exactly one session (%d -> %d)", before, srv.Streams())
			}
			srv.EvictStream(7)
		default:
			// Rejected: the table must be untouched.
			if got := srv.Streams(); got != before {
				t.Fatalf("body %q: rejected with %d but stream count %d -> %d", body, code, before, got)
			}
		}

		snap, ok := srv.SnapshotStream(0)
		if !ok {
			t.Fatal("resident session vanished")
		}
		got, err := snap.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, baseline) {
			t.Fatalf("body %q: resident session state changed", body)
		}
	})
}
