package netserve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/alert-project/alert"
)

func testAlertServer(t testing.TB, shards int) *alert.Server {
	t.Helper()
	srv, err := alert.NewServer(alert.CPU1(), alert.ImageCandidates(), alert.ServerOptions{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

func testSpec() Spec {
	return Spec{Objective: ObjectiveMinEnergy, DeadlineS: 0.2, AccuracyGoal: 0.9}
}

// postJSON round-trips one request against the handler and decodes the
// response body into out (when non-nil), returning the status code.
func doJSON(t *testing.T, h http.Handler, method, path string, body, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Code < 300 {
		if err := json.NewDecoder(rec.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: bad response body: %v", method, path, err)
		}
	}
	return rec.Code
}

// TestEndpoints drives every endpoint once and checks the responses hang
// together: decisions are real, stats move, streams appear and evict.
func TestEndpoints(t *testing.T) {
	s := New(testAlertServer(t, 2), Config{})

	var dec DecideResponse
	if code := doJSON(t, s, http.MethodPost, "/v1/decide", DecideRequest{Stream: 7, Spec: testSpec()}, &dec); code != http.StatusOK {
		t.Fatalf("decide status %d", code)
	}
	if dec.Estimate.LatMeanS <= 0 {
		t.Errorf("decide returned an empty estimate: %+v", dec)
	}

	if code := doJSON(t, s, http.MethodPost, "/v1/observe", ObserveRequest{
		Stream: 7,
		Feedback: Feedback{
			Decision:       dec.Decision,
			LatencyS:       dec.Estimate.LatMeanS * 1.1,
			CompletedStage: -1,
		},
	}, nil); code != http.StatusAccepted {
		t.Fatalf("observe status %d", code)
	}

	var batch BatchResponse
	breq := BatchRequest{Requests: []DecideRequest{
		{Stream: 7, Spec: testSpec()},
		{Stream: 8, Spec: testSpec()},
		{Stream: 7, Spec: testSpec()},
	}}
	if code := doJSON(t, s, http.MethodPost, "/v1/decide-batch", breq, &batch); code != http.StatusOK {
		t.Fatalf("decide-batch status %d", code)
	}
	if len(batch.Results) != 3 {
		t.Fatalf("batch returned %d results, want 3", len(batch.Results))
	}
	for i, r := range batch.Results {
		if r.Stream != breq.Requests[i].Stream {
			t.Errorf("result %d stream %d, want %d (request order)", i, r.Stream, breq.Requests[i].Stream)
		}
		if r.Estimate.LatMeanS <= 0 {
			t.Errorf("result %d empty: %+v", i, r)
		}
	}

	var streams StreamsResponse
	if code := doJSON(t, s, http.MethodGet, "/v1/streams", nil, &streams); code != http.StatusOK {
		t.Fatalf("streams status %d", code)
	}
	if streams.Count != 2 || len(streams.IDs) != 2 || streams.IDs[0] != 7 || streams.IDs[1] != 8 {
		t.Errorf("streams = %+v, want ids [7 8]", streams)
	}

	var stats StatsResponse
	if code := doJSON(t, s, http.MethodGet, "/v1/stats", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if stats.Serve.Decisions != 4 || stats.Serve.Observes != 1 {
		t.Errorf("serve counters = %+v, want 4 decisions 1 observe", stats.Serve)
	}
	if stats.Net.Decides != 1 || stats.Net.Batches != 1 || stats.Net.BatchDecisions != 3 || stats.Net.Observes != 1 {
		t.Errorf("net counters = %+v", stats.Net)
	}
	if stats.Streams != 2 || stats.Shards != 2 {
		t.Errorf("stats gauges = streams %d shards %d, want 2/2", stats.Streams, stats.Shards)
	}
	if stats.Platform != "CPU1" || stats.Models == 0 {
		t.Errorf("stats identity = platform %q models %d, want CPU1 and a candidate count", stats.Platform, stats.Models)
	}

	var evict EvictResponse
	if code := doJSON(t, s, http.MethodDelete, "/v1/streams/7", nil, &evict); code != http.StatusOK {
		t.Fatalf("evict status %d", code)
	}
	if evict.Stream != 7 || evict.Streams != 1 {
		t.Errorf("evict = %+v, want stream 7, 1 remaining", evict)
	}
}

// TestNetworkMatchesInProcess is the netserve-level replay-equivalence
// criterion: the same decide/observe sequence through the HTTP surface and
// through alert.Server directly must produce bit-identical decisions —
// JSON carries every float64 exactly.
func TestNetworkMatchesInProcess(t *testing.T) {
	local := testAlertServer(t, 2)
	remote := New(testAlertServer(t, 1), Config{}) // different shard count on purpose
	ts := httptest.NewServer(remote)
	defer ts.Close()

	spec := alert.Spec{Objective: alert.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9}
	const stream, steps = 3, 40
	for i := 0; i < steps; i++ {
		want, wantEst := local.Decide(stream, spec)

		var body bytes.Buffer
		json.NewEncoder(&body).Encode(DecideRequest{Stream: stream, Spec: FromSpec(spec)})
		resp, err := http.Post(ts.URL+"/v1/decide", "application/json", &body)
		if err != nil {
			t.Fatal(err)
		}
		var dec DecideResponse
		if err := json.NewDecoder(resp.Body).Decode(&dec); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		got := dec.Decision.ToDecision()
		if got != want {
			t.Fatalf("step %d: network decision %+v != in-process %+v", i, got, want)
		}
		if gotEst := dec.Estimate.ToEstimate(); gotEst != wantEst {
			t.Fatalf("step %d: network estimate %+v != in-process %+v", i, gotEst, wantEst)
		}

		// Identical synthetic feedback on both paths; the slowdown varies
		// with i so the filter state actually moves.
		fb := alert.Feedback{
			Decision:       want,
			Latency:        wantEst.LatMean * (0.9 + 0.01*float64(i%20)),
			CompletedStage: -1,
			IdlePowerW:     5,
		}
		local.Observe(stream, fb)
		body.Reset()
		json.NewEncoder(&body).Encode(ObserveRequest{Stream: stream, Feedback: FromFeedback(fb)})
		resp, err = http.Post(ts.URL+"/v1/observe", "application/json", &body)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("observe status %d", resp.StatusCode)
		}
	}
}

// TestOverload is the acceptance-criteria overload test: with the gate
// artificially saturated, concurrent requests split cleanly into served
// 200s and bounded-queue 429s carrying Retry-After — and zero accepted
// requests are dropped (every 200 carries a real decision; 200s + 429s
// account for every request).
func TestOverload(t *testing.T) {
	s := New(testAlertServer(t, 1), Config{MaxInflight: 2, MaxQueue: 2, RetryAfter: 10 * time.Millisecond})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Saturate the admission gate from outside the HTTP path: deposit all
	// tokens so real requests must queue, overflow, or wait for release.
	for i := 0; i < 2; i++ {
		s.HoldTokenForTest()
	}

	const n = 30
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		served   int
		rejected int
	)
	body, _ := json.Marshal(DecideRequest{Stream: 1, Spec: Spec{Objective: ObjectiveMinEnergy, DeadlineS: 30, AccuracyGoal: 0.9}})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/decide", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("decide request failed: %v", err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				var dec DecideResponse
				if err := json.NewDecoder(resp.Body).Decode(&dec); err != nil || dec.Estimate.LatMeanS <= 0 {
					t.Errorf("accepted request served an empty decision: %+v err=%v", dec, err)
					return
				}
				mu.Lock()
				served++
				mu.Unlock()
			case http.StatusTooManyRequests:
				if ra := resp.Header.Get("Retry-After"); ra == "" {
					t.Error("429 without Retry-After header")
				}
				var e ErrorResponse
				if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.RetryAfterMs <= 0 {
					t.Errorf("429 body lacks retry_after_ms: %+v err=%v", e, err)
				}
				mu.Lock()
				rejected++
				mu.Unlock()
			default:
				t.Errorf("unexpected status %d", resp.StatusCode)
			}
		}()
	}

	// Let the herd arrive (the queue holds 2, the rest must 429), then
	// open the gate.
	time.Sleep(100 * time.Millisecond)
	for i := 0; i < 2; i++ {
		s.ReleaseTokenForTest()
	}
	wg.Wait()

	if served+rejected != n {
		t.Fatalf("served %d + rejected %d != %d requests", served, rejected, n)
	}
	if rejected == 0 {
		t.Fatal("no 429s: the queue bound did not engage")
	}
	if served < 2 {
		t.Fatalf("served %d, want at least the 2 queued requests", served)
	}
	snap := s.NetStats()
	if snap.RejectedOverload != int64(rejected) {
		t.Errorf("rejected_overload counter = %d, want %d", snap.RejectedOverload, rejected)
	}
	if snap.Decides != int64(served) {
		t.Errorf("decides counter = %d, want %d", snap.Decides, served)
	}

	// After the overload clears, the gate admits normally again.
	resp, err := http.Post(ts.URL+"/v1/decide", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-overload decide status %d, want 200", resp.StatusCode)
	}
}

// TestDeadlineExpiresInQueue: a decide whose Spec deadline elapses while
// it waits at the gate is rejected 429, not served late.
func TestDeadlineExpiresInQueue(t *testing.T) {
	s := New(testAlertServer(t, 1), Config{MaxInflight: 1, MaxQueue: 4})
	ts := httptest.NewServer(s)
	defer ts.Close()

	s.HoldTokenForTest() // hold the only slot for the whole test

	body, _ := json.Marshal(DecideRequest{Stream: 1, Spec: Spec{
		Objective: ObjectiveMinEnergy, DeadlineS: 0.05, AccuracyGoal: 0.9,
	}})
	start := time.Now()
	resp, err := http.Post(ts.URL+"/v1/decide", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 after deadline expiry", resp.StatusCode)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Errorf("rejection took %s, want ~the 50ms deadline", waited)
	}
	if snap := s.NetStats(); snap.RejectedDeadline != 1 {
		t.Errorf("rejected_deadline counter = %d, want 1", snap.RejectedDeadline)
	}
	s.ReleaseTokenForTest()
}

// TestHugeDeadlineAdmits: a Spec deadline too large to represent as a
// time.Duration must mean "no admission bound", not an already-expired
// context (the float64→int64 overflow is implementation-defined and
// negative on amd64, which would 429 the most patient request whenever it
// queued).
func TestHugeDeadlineAdmits(t *testing.T) {
	s := New(testAlertServer(t, 1), Config{MaxInflight: 1, MaxQueue: 4})
	s.HoldTokenForTest() // force the request through the queue path
	release := make(chan struct{})
	go func() {
		time.Sleep(20 * time.Millisecond)
		s.ReleaseTokenForTest()
		close(release)
	}()

	var dec DecideResponse
	code := doJSON(t, s, http.MethodPost, "/v1/decide", DecideRequest{
		Stream: 1,
		Spec:   Spec{Objective: ObjectiveMinEnergy, DeadlineS: 1e12, AccuracyGoal: 0.9},
	}, &dec)
	if code != http.StatusOK {
		t.Fatalf("status %d, want 200 (huge deadline treated as expired?)", code)
	}
	if dec.Estimate.LatMeanS <= 0 {
		t.Fatalf("empty decision: %+v", dec)
	}
	<-release
	if d, ok := admissionTimeout(0.5); !ok || d != 500*time.Millisecond {
		t.Errorf("admissionTimeout(0.5) = %v, %v; want 500ms, true", d, ok)
	}
	if _, ok := admissionTimeout(0); ok {
		t.Error("admissionTimeout(0) must impose no bound")
	}
	if _, ok := admissionTimeout(1e300); ok {
		t.Error("admissionTimeout(1e300) must impose no bound")
	}
}

// TestDrain: after Drain, new requests get 503 + Retry-After while
// admitted ones finish; Drain returns once inflight hits zero.
func TestDrain(t *testing.T) {
	s := New(testAlertServer(t, 1), Config{MaxInflight: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// One admitted request parked past the gate (simulated by taking its
	// token and inflight slot by hand).
	s.mu.Lock()
	s.inflight++
	s.mu.Unlock()
	s.HoldTokenForTest()

	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drainErr <- s.Drain(ctx)
	}()

	// Drain must refuse new work while the parked request is in flight.
	deadline := time.Now().Add(2 * time.Second)
	for {
		body, _ := json.Marshal(DecideRequest{Stream: 1, Spec: testSpec()})
		resp, err := http.Post(ts.URL+"/v1/decide", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		code := resp.StatusCode
		ra := resp.Header.Get("Retry-After")
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			if ra == "" {
				t.Error("503 without Retry-After header")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("draining server still answering %d", code)
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-drainErr:
		t.Fatalf("Drain returned %v with a request still in flight", err)
	default:
	}

	// The parked request finishes; Drain must now complete.
	s.release()
	if err := <-drainErr; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if snap := s.NetStats(); snap.RejectedDraining == 0 {
		t.Error("rejected_draining counter did not move")
	}
}

// TestBadRequests: malformed inputs get 4xx, never a hang or a 5xx panic.
func TestBadRequests(t *testing.T) {
	s := New(testAlertServer(t, 1), Config{})
	cases := []struct {
		method, path string
		body         string
		want         int
	}{
		{http.MethodPost, "/v1/decide", `{not json`, http.StatusBadRequest},
		{http.MethodPost, "/v1/decide", `{"stream":1,"spec":{"objective":"sideways","deadline_s":1}}`, http.StatusBadRequest},
		{http.MethodPost, "/v1/decide", `{"stream":1,"bogus_field":1}`, http.StatusBadRequest},
		{http.MethodPost, "/v1/decide-batch", `{"requests":[]}`, http.StatusBadRequest},
		{http.MethodGet, "/v1/decide", ``, http.StatusMethodNotAllowed},
		{http.MethodPost, "/v1/stats", ``, http.StatusMethodNotAllowed},
		{http.MethodDelete, "/v1/streams/notanint", ``, http.StatusBadRequest},
		{http.MethodGet, "/v1/streams/3", ``, http.StatusMethodNotAllowed},
		{http.MethodGet, "/v1/nope", ``, http.StatusNotFound},
	}
	for _, tc := range cases {
		req := httptest.NewRequest(tc.method, tc.path, bytes.NewReader([]byte(tc.body)))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != tc.want {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, rec.Code, tc.want)
		}
		var e ErrorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("%s %s: error body %q not an ErrorResponse", tc.method, tc.path, rec.Body.String())
		}
	}
	if snap := s.NetStats(); snap.BadRequests != int64(len(cases)) {
		t.Errorf("bad_requests counter = %d, want %d", snap.BadRequests, len(cases))
	}
}

// TestConcurrentTraffic hammers the full surface concurrently under the
// race detector: decides, batches, observes, reads, evictions.
func TestConcurrentTraffic(t *testing.T) {
	s := New(testAlertServer(t, 2), Config{MaxInflight: 8, MaxQueue: 1024})
	ts := httptest.NewServer(s)
	defer ts.Close()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				switch i % 5 {
				case 0, 1:
					body, _ := json.Marshal(DecideRequest{Stream: w, Spec: testSpec()})
					resp, err := http.Post(ts.URL+"/v1/decide", "application/json", bytes.NewReader(body))
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				case 2:
					body, _ := json.Marshal(BatchRequest{Requests: []DecideRequest{
						{Stream: w, Spec: testSpec()}, {Stream: w + 100, Spec: testSpec()},
					}})
					resp, err := http.Post(ts.URL+"/v1/decide-batch", "application/json", bytes.NewReader(body))
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				case 3:
					resp, err := http.Get(ts.URL + "/v1/stats")
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				case 4:
					req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/streams/%d", ts.URL, w+100), nil)
					resp, err := http.DefaultClient.Do(req)
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	snap := s.NetStats()
	if snap.Decides == 0 || snap.Batches == 0 || snap.Evictions == 0 {
		t.Errorf("traffic did not register: %+v", snap)
	}
	if snap.RejectedOverload != 0 {
		t.Errorf("unexpected overload rejections: %d (queue should be deep enough)", snap.RejectedOverload)
	}
}
