// Package chaos is the fleet-scale failure harness: it drives a live
// multi-node cluster through a compiled scenario.FleetTrace — flash crowds,
// node kill/restart cycles, byzantine clients — while a Checker machine-
// checks the serving invariants continuously instead of eyeballing logs.
//
// The invariants, precisely:
//
//   - No accepted request is ever lost: every Decide/Observe the driver
//     issues against a live route must succeed; admission rejections (429/
//     503) are legal, silent drops and transport errors to live nodes are
//     not.
//   - Single ownership: at any instant at most one node serves a stream.
//     Every decision carries the serving node's identity (DecideResponse
//     node_id), checked against the expected owner; ownership changes only
//     at reroutes the harness announced (migration, kill recovery). At
//     checkpoint rounds the per-node stream tables are polled and must be
//     pairwise disjoint and jointly complete.
//   - Gauges balance: on every poll, each node's Streams gauge equals the
//     length of its stream-id listing and SessionBytes equals
//     Streams × SessionBytes() — sessions are neither leaked nor double-
//     counted across exports, imports, kills, and restarts.
//   - Conservation across migration: a stream's final session must have
//     folded in exactly the decisions the driver issued, minus the ones a
//     hard kill provably lost (issued since the last checkpoint). The loss
//     is computed, expected, and reported — never silently absorbed.
//   - Determinism where defined: per-stream decision sequences are compared
//     byte-for-byte against a solo in-process controller fed identical
//     inputs. Graceful kills and checkpoint-aligned hard kills preserve
//     determinism; a misaligned hard kill forfeits it for the streams that
//     lost observations, and the checker reports those streams as diverged
//     (with the first diverging round) rather than hiding them.
//
// The Checker is deliberately separable from the Harness: it consumes
// announcements (SetOwner, ExpectDivergence) and evidence (RecordDecide,
// Poll) and can trail any live cluster the caller drives, not just the
// in-process fleet the Harness builds.
package chaos

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/alert-project/alert/client"
	"github.com/alert-project/alert/internal/core"
)

// maxViolations bounds the violation log: a broken invariant usually fires
// on every subsequent request, and the first few occurrences carry all the
// signal.
const maxViolations = 64

// Divergence records one stream whose decision sequence departed from the
// solo reference — expected after a hard kill that lost observations.
type Divergence struct {
	Stream int `json:"stream"`
	// Round is the first round whose decision differed (-1 if the stream
	// was marked divergence-expected but never actually diverged).
	Round int `json:"round"`
	// Reason says which failure forfeited determinism (e.g. the kill round
	// and how many decisions the restored checkpoint was missing).
	Reason string `json:"reason"`
}

// Report is the checker's verdict over a finished run.
type Report struct {
	Rounds      int   `json:"rounds"`
	Streams     int   `json:"streams"`
	Decides     int64 `json:"decides"`
	Observes    int64 `json:"observes"`
	Checkpoints int   `json:"checkpoints"`
	Kills       int   `json:"kills"`
	Restarts    int   `json:"restarts"`
	// Failovers counts kills the cluster absorbed on its own (unmanaged
	// mode): membership convergence + successor restore, no orchestrator.
	Failovers     int   `json:"failovers,omitempty"`
	Migrations    int   `json:"migrations"`
	ByzSent       int   `json:"byz_sent"`
	ByzRejected   int   `json:"byz_rejected"`
	MatchedRounds int64 `json:"matched_rounds"`
	// Diverged lists the streams excluded from the determinism comparison,
	// with the failure that excluded them. Sorted by stream.
	Diverged []Divergence `json:"diverged,omitempty"`
	// Violations are broken invariants; empty means the run is green.
	Violations []string `json:"violations,omitempty"`
}

// OK reports whether every invariant held.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Summary renders the one-screen human verdict.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos: %d rounds × %d streams: %d decides (%d matched vs solo), %d observes\n",
		r.Rounds, r.Streams, r.Decides, r.MatchedRounds, r.Observes)
	fmt.Fprintf(&b, "chaos: %d checkpoints, %d kills, %d restarts, %d migrations, %d/%d byzantine rejected\n",
		r.Checkpoints, r.Kills, r.Restarts, r.Migrations, r.ByzRejected, r.ByzSent)
	if r.Failovers > 0 {
		fmt.Fprintf(&b, "chaos: %d unmanaged failovers absorbed by the cluster itself\n", r.Failovers)
	}
	for _, d := range r.Diverged {
		fmt.Fprintf(&b, "chaos: stream %d diverged at round %d: %s\n", d.Stream, d.Round, d.Reason)
	}
	if len(r.Violations) == 0 {
		b.WriteString("chaos: all invariants held\n")
	} else {
		fmt.Fprintf(&b, "chaos: %d INVARIANT VIOLATIONS\n", len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "chaos:   %s\n", v)
		}
	}
	return b.String()
}

// divergence is the checker's mutable per-stream divergence state.
type divergence struct {
	expected bool
	reason   string
	round    int // first diverging round, -1 until seen
}

// Checker accumulates evidence from a chaos run and judges the invariants.
// All methods are safe for concurrent use; the harness calls RecordDecide
// from every stream goroutine.
type Checker struct {
	mu sync.Mutex
	// owner is the announced serving node per stream (node id, not addr).
	owner map[int]string
	// diverged tracks streams excluded from the determinism comparison.
	diverged map[int]*divergence
	// issued and lost count decisions per stream: issued-and-succeeded, and
	// provably lost to hard kills (for the conservation check).
	issued map[int]int64
	lost   map[int]int64

	decides, observes, matched int64
	violations                 []string
	dropped                    int // violations beyond maxViolations
}

// NewChecker builds an empty checker.
func NewChecker() *Checker {
	return &Checker{
		owner:    make(map[int]string),
		diverged: make(map[int]*divergence),
		issued:   make(map[int]int64),
		lost:     make(map[int]int64),
	}
}

// Violate records a broken invariant.
func (c *Checker) Violate(format string, args ...any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.violate(fmt.Sprintf(format, args...))
}

func (c *Checker) violate(msg string) {
	if len(c.violations) >= maxViolations {
		c.dropped++
		return
	}
	c.violations = append(c.violations, msg)
}

// SetOwner announces that a stream is now served by the given node — the
// reroute hook the harness calls around migrations and kill recovery.
// Decisions served by any other node are single-ownership violations.
func (c *Checker) SetOwner(stream int, node string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.owner[stream] = node
}

// ExpectDivergence marks a stream as having forfeited determinism (a hard
// kill lost `lost` of its decisions); subsequent mismatches against the
// solo reference are reported as divergence, not violations. Calling it
// again for an already-diverged stream keeps the first reason.
func (c *Checker) ExpectDivergence(stream int, lost int64, reason string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lost[stream] += lost
	if d, ok := c.diverged[stream]; ok {
		if !d.expected {
			d.expected = true
		}
		return
	}
	c.diverged[stream] = &divergence{expected: true, reason: reason, round: -1}
}

// RecordDecide feeds one served decision into the checker: which node
// served it (from the response's node_id echo), the decision token, and
// the solo reference's token for the same round.
func (c *Checker) RecordDecide(stream, round int, node, got, want string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.decides++
	c.issued[stream]++
	if own, ok := c.owner[stream]; ok && node != own {
		c.violate(fmt.Sprintf("single-ownership: stream %d round %d served by %q, expected owner %q",
			stream, round, node, own))
	}
	d := c.diverged[stream]
	if d != nil && d.round >= 0 {
		return // already diverged; the comparison is over for this stream
	}
	if got == want {
		c.matched++
		return
	}
	if d != nil && d.expected {
		d.round = round
		return
	}
	c.violate(fmt.Sprintf("determinism: stream %d round %d decided %q, solo decided %q (no failure forfeited this stream)",
		stream, round, got, want))
}

// RecordObserve counts one accepted observe.
func (c *Checker) RecordObserve() {
	c.mu.Lock()
	c.observes++
	c.mu.Unlock()
}

// Issued returns how many decides the driver has recorded for a stream —
// the harness uses it to size the loss when restoring a stale checkpoint.
func (c *Checker) Issued(stream int) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.issued[stream]
}

// CheckConservation verifies a stream's final session folded in every
// decision the driver issued minus the ones hard kills provably lost.
func (c *Checker) CheckConservation(stream int, finalDecisions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	want := c.issued[stream] - c.lost[stream]
	if finalDecisions != want {
		c.violate(fmt.Sprintf("conservation: stream %d session holds %d decisions, driver issued %d minus %d lost = %d",
			stream, finalDecisions, c.issued[stream], c.lost[stream], want))
	}
}

// Poll reads every live node's stats and stream listing and checks the
// table-shape invariants: gauges consistent with the listings, tables
// pairwise disjoint, and their union exactly the expected live set.
// expected maps stream id → true for every stream that should have a live
// session somewhere.
func (c *Checker) Poll(ctx context.Context, nodes map[string]*client.Client, expected map[int]bool) {
	type nodeState struct {
		name string
		ids  []int
	}
	states := make([]nodeState, 0, len(nodes))
	for name, cl := range nodes {
		stats, err := cl.Stats(ctx)
		if err != nil {
			c.Violate("poll: stats from live node %q failed: %v", name, err)
			continue
		}
		ids, err := cl.Streams(ctx)
		if err != nil {
			c.Violate("poll: stream listing from live node %q failed: %v", name, err)
			continue
		}
		// The listing races traffic in general, but the harness polls only
		// while the fleet is quiesced between rounds, so here they must
		// agree exactly.
		if int(stats.Serve.Streams) != len(ids) {
			c.Violate("gauge: node %q Streams gauge %d != %d listed sessions",
				name, stats.Serve.Streams, len(ids))
		}
		if want := stats.Serve.Streams * int64(core.SessionBytes()); stats.Serve.SessionBytes != want {
			c.Violate("gauge: node %q SessionBytes %d != %d sessions × %d bytes",
				name, stats.Serve.SessionBytes, stats.Serve.Streams, core.SessionBytes())
		}
		states = append(states, nodeState{name: name, ids: ids})
	}
	sort.Slice(states, func(i, j int) bool { return states[i].name < states[j].name })

	seen := make(map[int]string, len(expected))
	for _, st := range states {
		for _, id := range st.ids {
			if prev, dup := seen[id]; dup {
				c.Violate("single-ownership: stream %d live on both %q and %q", id, prev, st.name)
				continue
			}
			seen[id] = st.name
			if !expected[id] {
				c.Violate("table: node %q serves unexpected stream %d", st.name, id)
			}
		}
	}
	for id := range expected {
		if _, ok := seen[id]; !ok {
			c.Violate("table: stream %d has no live session on any node", id)
		}
	}
}

// Fill copies the checker's tallies into a report (the harness adds its
// own lifecycle counts).
func (c *Checker) Fill(r *Report) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r.Decides = c.decides
	r.Observes = c.observes
	r.MatchedRounds = c.matched
	r.Violations = append(r.Violations, c.violations...)
	if c.dropped > 0 {
		r.Violations = append(r.Violations,
			fmt.Sprintf("… and %d further violations suppressed", c.dropped))
	}
	for stream, d := range c.diverged {
		if d.round < 0 && !d.expected {
			continue
		}
		r.Diverged = append(r.Diverged, Divergence{Stream: stream, Round: d.round, Reason: d.reason})
	}
	sort.Slice(r.Diverged, func(i, j int) bool { return r.Diverged[i].Stream < r.Diverged[j].Stream })
}
