package chaos

import (
	"context"
	"strings"
	"testing"

	"github.com/alert-project/alert/internal/platform"
	"github.com/alert-project/alert/internal/scenario"
)

// compileFleet is the test helper: compile a fleet spec or die.
func compileFleet(t *testing.T, spec scenario.FleetSpec, inputs int, seed int64) *scenario.FleetTrace {
	t.Helper()
	ft, err := scenario.CompileFleet(spec, platform.CPU1(), inputs, 0.1, seed)
	if err != nil {
		t.Fatal(err)
	}
	return ft
}

// TestHarnessGracefulCycle is the core acceptance run in miniature: a
// 3-node fleet with two kill/restart cycles (one graceful, one hard but
// checkpoint-aligned), a flash crowd, and byzantine phases. Everything is
// lossless, so the checker must come back green with zero diverged streams
// and every decision matched against the solo reference.
func TestHarnessGracefulCycle(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node harness run")
	}
	base, err := scenario.ByName("bursty")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := scenario.DefaultFleet(base, 6, 3, 48, 12, 6)
	if err != nil {
		t.Fatal(err)
	}
	ft := compileFleet(t, spec, 48, 42)

	h, err := New(Options{Fleet: ft, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	rep, err := h.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.Summary())
	if !rep.OK() {
		t.Fatalf("invariant violations:\n%s", strings.Join(rep.Violations, "\n"))
	}
	if rep.Kills < 2 || rep.Restarts < 2 {
		t.Errorf("ran %d kills / %d restarts, want >= 2 cycles", rep.Kills, rep.Restarts)
	}
	if len(rep.Diverged) != 0 {
		t.Errorf("lossless schedule diverged: %+v", rep.Diverged)
	}
	if rep.MatchedRounds != rep.Decides {
		t.Errorf("matched %d of %d decisions against solo; lossless run must match all", rep.MatchedRounds, rep.Decides)
	}
	if rep.Decides == 0 || rep.Observes == 0 {
		t.Error("harness drove no traffic")
	}
	if rep.ByzSent > 0 && rep.ByzRejected != rep.ByzSent {
		t.Errorf("byzantine: %d of %d rejected cleanly", rep.ByzRejected, rep.ByzSent)
	}
	if rep.Migrations == 0 {
		t.Error("kill/restart cycles performed no migrations")
	}
}

// TestHarnessMisalignedHardKill is the differential satellite: a hard kill
// OFF the checkpoint cadence restores stale snapshots. Streams whose
// checkpoint captured everything they had decided replay byte-identically;
// streams that decided past their checkpoint lose those rounds and MUST be
// reported as diverged — not hidden, and not counted as violations.
func TestHarnessMisalignedHardKill(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node harness run")
	}
	// The base steps into a violent memory co-runner phase at round 14 —
	// inside the window the stale checkpoint loses (10..17) — so the
	// restored filter state genuinely decides differently from solo's.
	base := scenario.Spec{
		Name: "step",
		Contention: []scenario.ContentionPhase{
			{Inputs: 14, Environment: "default"},
			{Inputs: 16, Environment: "memory"},
		},
		Throttle: &scenario.Throttle{Period: 15, Duty: 0.5, MinCapFrac: 0.4},
	}
	const inputs = 30
	spec := scenario.FleetSpec{
		Name:            "misaligned",
		Streams:         5,
		Nodes:           3,
		Base:            base,
		CheckpointEvery: 10,
		NodeEvents: []scenario.NodeEvent{
			// Kill at 17: the round-10 checkpoint is 7 rounds stale for
			// every stream the victim owned.
			{AtInput: 17, Node: 0, Kind: scenario.EventKill},
			{AtInput: 24, Node: 0, Kind: scenario.EventRestart},
		},
	}
	ft := compileFleet(t, spec, inputs, 7)

	// The ring places streams by node address, and harness nodes listen on
	// ephemeral ports — so which node owns which streams varies per run,
	// and roughly (2/3)^5 of the time node 0 owns nothing when the kill
	// lands, making the run losslessly clean with nothing to diverge.
	// Retry until the victim actually orphaned a stream; a harness that
	// stops reporting real loss fails every attempt, so the retry cannot
	// mask a regression.
	var rep *Report
	for attempt := 0; ; attempt++ {
		h, err := New(Options{Fleet: ft})
		if err != nil {
			t.Fatal(err)
		}
		rep, err = h.Run(context.Background())
		h.Close()
		if err != nil {
			t.Fatal(err)
		}
		t.Log(rep.Summary())
		if len(rep.Diverged) > 0 || attempt == 4 {
			break
		}
		t.Logf("attempt %d: victim owned no streams (ephemeral-port ring placement); retrying", attempt)
	}

	// The stale restore is expected loss, never an invariant violation …
	if !rep.OK() {
		t.Fatalf("expected loss was flagged as violations:\n%s", strings.Join(rep.Violations, "\n"))
	}
	// … and the streams the victim owned are REPORTED as diverged, with
	// the kill spelled out, while everyone else stayed byte-identical.
	if len(rep.Diverged) == 0 {
		t.Fatal("misaligned hard kill reported no diverged streams")
	}
	if len(rep.Diverged) >= rep.Streams {
		t.Errorf("all %d streams diverged; the kill should only hit the victim's", rep.Streams)
	}
	sawReal := false
	for _, d := range rep.Diverged {
		if !strings.Contains(d.Reason, "hard kill") {
			t.Errorf("stream %d diverged for %q, want a hard-kill reason", d.Stream, d.Reason)
		}
		if d.Round >= 0 {
			sawReal = true
			if d.Round < 17 {
				t.Errorf("stream %d diverged at round %d, before the kill at 17", d.Stream, d.Round)
			}
		}
	}
	if !sawReal {
		t.Error("no stream actually decided differently after the stale restore")
	}
	if rep.MatchedRounds == rep.Decides {
		t.Error("stale restore cannot match the solo reference on every decision")
	}
}

// TestHarnessAlignedHardKillIsLossless: the same hard kill ON the
// checkpoint cadence loses nothing — the checkpoint folded in every
// decision — so decisions stay byte-identical to solo for every stream.
func TestHarnessAlignedHardKillIsLossless(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node harness run")
	}
	base, err := scenario.ByName("steady")
	if err != nil {
		t.Fatal(err)
	}
	const inputs = 30
	spec := scenario.FleetSpec{
		Name:            "aligned",
		Streams:         5,
		Nodes:           3,
		Base:            base,
		CheckpointEvery: 10,
		NodeEvents: []scenario.NodeEvent{
			{AtInput: 20, Node: 1, Kind: scenario.EventKill}, // checkpoint round
			{AtInput: 26, Node: 1, Kind: scenario.EventRestart},
		},
	}
	ft := compileFleet(t, spec, inputs, 7)

	h, err := New(Options{Fleet: ft})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	rep, err := h.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.Summary())
	if !rep.OK() {
		t.Fatalf("violations:\n%s", strings.Join(rep.Violations, "\n"))
	}
	if len(rep.Diverged) != 0 {
		t.Errorf("checkpoint-aligned hard kill diverged: %+v", rep.Diverged)
	}
	if rep.MatchedRounds != rep.Decides {
		t.Errorf("matched %d of %d decisions; aligned kill must stay byte-identical", rep.MatchedRounds, rep.Decides)
	}
}

// TestHarnessUnmanagedKill is the tentpole acceptance run: hard kills with
// NO harness orchestration — no RemoveMember, no restore, no Pin. The
// cluster's own failure detector declares the victims dead, the router
// ejects them through its membership subscription, and each ring successor
// restores the orphans from its replicated snapshots. Kills ride the
// replication cadence, so nothing accepted is ever lost and every decision
// stays byte-identical to the solo reference.
func TestHarnessUnmanagedKill(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node harness run")
	}
	base, err := scenario.ByName("steady")
	if err != nil {
		t.Fatal(err)
	}
	const inputs = 36
	spec, err := scenario.DefaultUnmanagedFleet(base, 6, 4, inputs, 12)
	if err != nil {
		t.Fatal(err)
	}
	ft := compileFleet(t, spec, inputs, 42)
	if !ft.Unmanaged {
		t.Fatal("compiled trace lost the unmanaged flag")
	}

	h, err := New(Options{Fleet: ft, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	rep, err := h.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.Summary())
	if !rep.OK() {
		t.Fatalf("invariant violations:\n%s", strings.Join(rep.Violations, "\n"))
	}
	if rep.Failovers != rep.Kills || rep.Kills < 2 {
		t.Errorf("absorbed %d of %d kills as unmanaged failovers, want all of >= 2", rep.Failovers, rep.Kills)
	}
	if rep.Migrations != 0 {
		t.Errorf("unmanaged run performed %d harness migrations, want 0", rep.Migrations)
	}
	if len(rep.Diverged) != 0 {
		t.Errorf("replication-aligned kills diverged: %+v", rep.Diverged)
	}
	if rep.MatchedRounds != rep.Decides {
		t.Errorf("matched %d of %d decisions; aligned unmanaged kills must stay byte-identical", rep.MatchedRounds, rep.Decides)
	}
	if rep.ByzSent > 0 && rep.ByzRejected != rep.ByzSent {
		t.Errorf("byzantine: %d of %d rejected cleanly", rep.ByzRejected, rep.ByzSent)
	}
}

// TestHarnessUnmanagedKillAdaptive reruns the unmanaged drill with every
// node's adaptive gate and SLO shedder on: the moving admission limits
// must not disturb a single harness invariant — no lost accepted work, no
// divergence, byte-identical decisions — because admission policy decides
// whether a request runs, never what it computes.
func TestHarnessUnmanagedKillAdaptive(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node harness run")
	}
	base, err := scenario.ByName("steady")
	if err != nil {
		t.Fatal(err)
	}
	const inputs = 36
	spec, err := scenario.DefaultUnmanagedFleet(base, 6, 4, inputs, 12)
	if err != nil {
		t.Fatal(err)
	}
	ft := compileFleet(t, spec, inputs, 42)

	h, err := New(Options{Fleet: ft, Adaptive: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	rep, err := h.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.Summary())
	if !rep.OK() {
		t.Fatalf("invariant violations with the adaptive gate on:\n%s", strings.Join(rep.Violations, "\n"))
	}
	if rep.Failovers != rep.Kills || rep.Kills < 2 {
		t.Errorf("absorbed %d of %d kills, want all of >= 2", rep.Failovers, rep.Kills)
	}
	if len(rep.Diverged) != 0 {
		t.Errorf("adaptive run diverged: %+v", rep.Diverged)
	}
	if rep.MatchedRounds != rep.Decides {
		t.Errorf("matched %d of %d decisions; the adaptive gate must not change served results", rep.MatchedRounds, rep.Decides)
	}
}

// TestHarnessRejectsManagedEventsWhenUnmanaged: an unmanaged trace carrying
// a restart (or graceful kill) must be refused up front — there is no
// orchestrator to execute it.
func TestHarnessRejectsManagedEventsWhenUnmanaged(t *testing.T) {
	base, err := scenario.ByName("steady")
	if err != nil {
		t.Fatal(err)
	}
	spec := scenario.FleetSpec{
		Name: "bad", Streams: 2, Nodes: 2, Base: base,
		NodeEvents: []scenario.NodeEvent{
			{AtInput: 4, Node: 0, Kind: scenario.EventKill},
			{AtInput: 8, Node: 0, Kind: scenario.EventRestart},
		},
	}
	ft := compileFleet(t, spec, 12, 1)
	ft.Unmanaged = true // forced past scenario validation, straight at the harness
	if _, err := New(Options{Fleet: ft}); err == nil {
		t.Fatal("harness accepted an unmanaged trace with a restart")
	}
}

// TestCheckerOwnership: decisions served by a node other than the announced
// owner are single-ownership violations; announced reroutes are not.
func TestCheckerOwnership(t *testing.T) {
	c := NewChecker()
	c.SetOwner(1, "n0")
	c.RecordDecide(1, 0, "n0", "a", "a")
	if v := c.violationCount(); v != 0 {
		t.Fatalf("clean decide raised %d violations", v)
	}
	c.RecordDecide(1, 1, "n2", "a", "a")
	if v := c.violationCount(); v != 1 {
		t.Fatalf("wrong-node decide raised %d violations, want 1", v)
	}
	c.SetOwner(1, "n2")
	c.RecordDecide(1, 2, "n2", "a", "a")
	if v := c.violationCount(); v != 1 {
		t.Fatalf("announced reroute still violated (total %d)", v)
	}
}

// TestCheckerDeterminism: a mismatch on an unforfeited stream is a
// violation; after ExpectDivergence it is recorded as divergence instead,
// and the comparison retires at the first diverging round.
func TestCheckerDeterminism(t *testing.T) {
	c := NewChecker()
	c.SetOwner(3, "n1")
	c.RecordDecide(3, 0, "n1", "x", "y")
	if v := c.violationCount(); v != 1 {
		t.Fatalf("unforfeited mismatch raised %d violations, want 1", v)
	}

	c2 := NewChecker()
	c2.SetOwner(4, "n1")
	c2.RecordDecide(4, 0, "n1", "x", "x")
	c2.ExpectDivergence(4, 2, "hard kill of n0 at round 1")
	c2.RecordDecide(4, 1, "n1", "x", "y")
	c2.RecordDecide(4, 2, "n1", "p", "q") // past divergence: not compared
	if v := c2.violationCount(); v != 0 {
		t.Fatalf("expected divergence raised %d violations", v)
	}
	var rep Report
	c2.Fill(&rep)
	if len(rep.Diverged) != 1 || rep.Diverged[0].Stream != 4 || rep.Diverged[0].Round != 1 {
		t.Fatalf("diverged = %+v, want stream 4 at round 1", rep.Diverged)
	}
	if rep.MatchedRounds != 1 {
		t.Fatalf("matched %d rounds, want 1 (only the pre-kill decide)", rep.MatchedRounds)
	}
}

// TestCheckerConservation: the final session must hold issued − lost
// decisions exactly.
func TestCheckerConservation(t *testing.T) {
	c := NewChecker()
	c.SetOwner(0, "n0")
	for i := 0; i < 10; i++ {
		c.RecordDecide(0, i, "n0", "a", "a")
	}
	c.ExpectDivergence(0, 3, "hard kill")
	c.CheckConservation(0, 7)
	if v := c.violationCount(); v != 0 {
		t.Fatalf("exact conservation raised %d violations", v)
	}
	c.CheckConservation(0, 6)
	if v := c.violationCount(); v != 1 {
		t.Fatalf("off-by-one conservation raised %d violations, want 1", v)
	}
}

// violationCount is a test peephole.
func (c *Checker) violationCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.violations) + c.dropped
}
