package chaos

import (
	"bytes"
	"encoding/base64"
	"io"

	"github.com/alert-project/alert/internal/mathx"
)

// oversizeBody is one byte past the netserve request-body bound (8 MiB,
// netserve.maxBody) plus slack, so an oversize byzantine request is always
// refused by MaxBytesReader.
const oversizeBody = 8<<20 + 16

// newByzRng derives the deterministic payload randomness for one byzantine
// request from its compiled seed.
func newByzRng(seed int64) *mathx.Rand { return mathx.NewRand(seed) }

func bytesReader(b []byte) io.Reader { return bytes.NewReader(b) }

func b64(b []byte) string { return base64.StdEncoding.EncodeToString(b) }

// junkReader yields n copies of c without materializing them — the
// oversize byzantine body.
type junkReader struct {
	n int
	c byte
}

func (j *junkReader) Read(p []byte) (int, error) {
	if j.n <= 0 {
		return 0, io.EOF
	}
	k := len(p)
	if k > j.n {
		k = j.n
	}
	for i := 0; i < k; i++ {
		p[i] = j.c
	}
	j.n -= k
	return k, nil
}
