package chaos

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/alert-project/alert"
	"github.com/alert-project/alert/client"
	"github.com/alert-project/alert/client/cluster"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/membership"
	"github.com/alert-project/alert/internal/netserve"
	"github.com/alert-project/alert/internal/scenario"
	"github.com/alert-project/alert/internal/selfheal"
	"github.com/alert-project/alert/internal/sim"
	"github.com/alert-project/alert/internal/workload"
)

// Unmanaged drills run the cluster's own failure detector with tight
// leases so a kill is absorbed in well under a second of wall time. The
// convergence grace is deliberately loose: it bounds how long the harness
// waits before calling a failover broken, not how fast a healthy one is.
const (
	unmanagedHeartbeat = 25 * time.Millisecond
	unmanagedSuspect   = 120 * time.Millisecond
	unmanagedDead      = 300 * time.Millisecond
	convergeGrace      = 20 * time.Second
)

// Options configures a Harness.
type Options struct {
	// Fleet is the compiled chaos schedule to drive. Required.
	Fleet *scenario.FleetTrace
	// Task selects the workload; the zero value means image classification.
	Task dnn.Task
	// Base is the nominal request spec. A zero Base selects MinimizeEnergy
	// with a deadline of 1.25× the slowest candidate's latency at full
	// power and accuracy goal 0.92 (the alertload defaults).
	Base alert.Spec
	// Shards sets each node's shard count, cycling if shorter than the
	// fleet; empty means 1+index (deliberately heterogeneous, exercising
	// shard-count-invariant replay).
	Shards []int
	// Seed drives the per-stream workload/environment randomness; 0 means
	// the fleet trace's compile seed.
	Seed int64
	// Binary gives every node a binwire listener next to its HTTP one and
	// upgrades the cluster clients onto it (PreferBinary): the same
	// failure drill, but with the data plane riding the binary transport.
	// Kills sever binary connections exactly like HTTP ones, and restarts
	// rebind the same remembered binary address.
	Binary bool
	// Adaptive runs every node's admission gate with the measured-delay
	// controller and SLO shedder on (internal/overload): the same failure
	// drill, but with the limits moving under load. The harness invariants
	// must hold either way — admission policy decides whether a request
	// runs, never what it computes.
	Adaptive bool
	// Logf, when set, receives progress lines (round, events) as the run
	// unfolds; nil is silent.
	Logf func(format string, args ...any)
}

// node is one in-process cluster member: a real alert.Server behind a real
// netserve front end on a real loopback listener, so a "kill" severs actual
// TCP connections and a "restart" rebinds the same address with an empty
// stream table — exactly what a crashed process would do.
type node struct {
	id     string
	index  int
	shards int
	// hostport is remembered across restarts so the node keeps its address
	// (first start binds :0 and records what it got).
	hostport string
	addr     string // http://hostport
	// binary adds a binwire listener; binHostport is remembered across
	// restarts like hostport, so PreferBinary clients redial the same
	// advertised address after a restart.
	binary      bool
	binHostport string
	// adaptive turns on the measured-delay controller + SLO shedder for
	// the node's admission gate (survives restarts like the addresses).
	adaptive bool
	// selfHealing wires a membership agent and selfheal manager into the
	// node (unmanaged fleets); managed fleets leave both nil and the
	// harness orchestrates failures itself, as before.
	selfHealing bool

	srv    *alert.Server
	front  *netserve.Server
	bsrv   *netserve.BinaryServer
	hsrv   *http.Server
	agent  *membership.Agent
	heal   *selfheal.Manager
	cancel context.CancelFunc // stops the agent's heartbeat loop
	alive  bool
}

// listen binds the node's address (remembered across restarts) without
// starting anything, so a self-healing fleet can learn every peer address
// before the first agent sends a heartbeat.
func (n *node) listen() (net.Listener, error) {
	listenOn := n.hostport
	if listenOn == "" {
		listenOn = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listenOn)
	if err != nil {
		return nil, fmt.Errorf("chaos: node %s: listen %s: %w", n.id, listenOn, err)
	}
	n.hostport = ln.Addr().String()
	n.addr = "http://" + n.hostport
	return ln, nil
}

// serve builds the stream table, the (optional) membership agent and
// self-healing manager, and the front end, then starts serving on ln.
// peers seeds the agent; ignored for non-self-healing nodes.
func (n *node) serve(ln net.Listener, peers []string) error {
	srv, err := alert.NewServer(alert.CPU1(), alert.ImageCandidates(), alert.ServerOptions{Shards: n.shards})
	if err != nil {
		ln.Close()
		return fmt.Errorf("chaos: node %s: %w", n.id, err)
	}
	n.srv = srv
	cfg := netserve.Config{NodeID: n.id, Adaptive: n.adaptive, SLOShed: n.adaptive}
	if n.selfHealing {
		agent, err := membership.New(membership.Config{
			ID:             n.id,
			Addr:           n.addr,
			Seeds:          peers,
			HeartbeatEvery: unmanagedHeartbeat,
			SuspectAfter:   unmanagedSuspect,
			DeadAfter:      unmanagedDead,
			Transport:      &membership.HTTPTransport{},
			OnChange: func(v membership.View) {
				if n.heal != nil {
					n.heal.OnViewChange(v)
				}
			},
		})
		if err != nil {
			ln.Close()
			srv.Close()
			return fmt.Errorf("chaos: node %s: %w", n.id, err)
		}
		heal, err := selfheal.New(selfheal.Config{
			NodeID: n.id, Addr: n.addr, Agent: agent, Server: srv,
		})
		if err != nil {
			ln.Close()
			srv.Close()
			return fmt.Errorf("chaos: node %s: %w", n.id, err)
		}
		n.agent, n.heal = agent, heal
		cfg.Membership, cfg.Recovery = agent, heal
		ctx, cancel := context.WithCancel(context.Background())
		n.cancel = cancel
		go agent.Run(ctx)
	}
	n.front = netserve.New(srv, cfg)
	if n.binary {
		listenOn := n.binHostport
		if listenOn == "" {
			listenOn = "127.0.0.1:0"
		}
		bln, err := net.Listen("tcp", listenOn)
		if err != nil {
			ln.Close()
			srv.Close()
			if n.cancel != nil {
				n.cancel()
			}
			return fmt.Errorf("chaos: node %s: binary listen %s: %w", n.id, listenOn, err)
		}
		n.binHostport = bln.Addr().String()
		n.bsrv = netserve.NewBinary(n.front, bln, netserve.BinaryConfig{})
		go n.bsrv.Serve()
	}
	n.hsrv = &http.Server{Handler: n.front}
	go n.hsrv.Serve(ln)
	n.alive = true
	return nil
}

// start is listen+serve in one step — the managed path, where peers are
// irrelevant (restarts only happen in managed fleets).
func (n *node) start() error {
	ln, err := n.listen()
	if err != nil {
		return err
	}
	return n.serve(ln, nil)
}

// stop takes the node down hard: listener and in-flight connections are
// severed, the pool is closed, the stream table is gone. Graceful kills
// migrate everything away before calling this. For self-healing nodes the
// heartbeat loop dies with the process, exactly like kill -9 would.
func (n *node) stop() {
	if !n.alive {
		return
	}
	n.alive = false
	if n.cancel != nil {
		n.cancel()
	}
	if n.bsrv != nil {
		n.bsrv.Close()
		n.bsrv = nil
	}
	n.hsrv.Close()
	n.srv.Close()
	n.srv, n.front, n.hsrv = nil, nil, nil
	n.agent, n.heal, n.cancel = nil, nil, nil
}

// checkpointRec is one stream's latest checkpoint: the snapshot plus the
// round it was taken (for divergence reporting).
type checkpointRec struct {
	snap  alert.SessionSnapshot
	round int
}

// Harness drives a fleet of in-process nodes through a FleetTrace with the
// Checker trailing every step.
type Harness struct {
	opts    Options
	fleet   *scenario.FleetTrace
	base    alert.Spec
	prof    *dnn.ProfileTable
	task    dnn.Task
	seed    int64
	nodes   []*node
	cl      *cluster.Cluster
	solo    *alert.Server
	checker *Checker

	// ownerAddr tracks which node's address currently serves each stream —
	// authoritative in the harness because every ownership change passes
	// through it (initial routing, migration, kill recovery).
	ownerAddr map[int]string
	// expectedLive marks streams that must have a live session somewhere
	// (first decide seen, not lost to an uncheckpointed hard kill). It is
	// the one piece of harness state the concurrent stream goroutines
	// write, hence its own lock; everything else mutates only between
	// rounds, single-threaded.
	liveMu       sync.Mutex
	expectedLive map[int]bool
	checkpoints  map[int]checkpointRec

	report Report
}

// New builds the fleet (all nodes live), the cluster router over it, the
// solo reference controller, and the checker. Close releases everything.
func New(opts Options) (*Harness, error) {
	if opts.Fleet == nil {
		return nil, errors.New("chaos: Options.Fleet is required")
	}
	if opts.Fleet.Len() == 0 {
		return nil, errors.New("chaos: fleet trace has no rounds")
	}
	task := opts.Task // zero value is dnn.ImageClassification
	plat, models := alert.CPU1(), alert.ImageCandidates()
	prof, err := dnn.Profile(plat, models)
	if err != nil {
		return nil, err
	}
	base := opts.Base
	if base == (alert.Spec{}) {
		slowest := 0.0
		for _, m := range models {
			if lat := m.RefLatency / plat.Speed(plat.PMax); lat > slowest {
				slowest = lat
			}
		}
		base = alert.Spec{Objective: alert.MinimizeEnergy, Deadline: 1.25 * slowest, AccuracyGoal: 0.92}
	}
	seed := opts.Seed
	if seed == 0 {
		seed = opts.Fleet.Seed
	}

	h := &Harness{
		opts:         opts,
		fleet:        opts.Fleet,
		base:         base,
		prof:         prof,
		task:         task,
		seed:         seed,
		checker:      NewChecker(),
		ownerAddr:    make(map[int]string),
		expectedLive: make(map[int]bool),
		checkpoints:  make(map[int]checkpointRec),
	}
	if opts.Fleet.Unmanaged {
		// Double safety beyond scenario validation: an unmanaged fleet has
		// no orchestrator, so restarts and graceful drains are meaningless.
		for r := 0; r < opts.Fleet.Len(); r++ {
			for _, ev := range opts.Fleet.EventsAt(r) {
				if ev.Kind == scenario.EventRestart || ev.Graceful {
					return nil, fmt.Errorf("chaos: unmanaged trace schedules %s at round %d", ev.Kind, r)
				}
			}
		}
	}
	// Bind every listener first, then serve: self-healing nodes need the
	// full peer address list as membership seeds before the first heartbeat.
	listeners := make([]net.Listener, 0, opts.Fleet.Nodes)
	for i := 0; i < opts.Fleet.Nodes; i++ {
		shards := 1 + i
		if len(opts.Shards) > 0 {
			shards = opts.Shards[i%len(opts.Shards)]
		}
		n := &node{id: fmt.Sprintf("n%d", i), index: i, shards: shards, selfHealing: opts.Fleet.Unmanaged, binary: opts.Binary, adaptive: opts.Adaptive}
		ln, err := n.listen()
		if err != nil {
			for _, l := range listeners {
				l.Close()
			}
			h.Close()
			return nil, err
		}
		h.nodes = append(h.nodes, n)
		listeners = append(listeners, ln)
	}
	for i, n := range h.nodes {
		var peers []string
		if n.selfHealing {
			for j, m := range h.nodes {
				if j != i {
					peers = append(peers, m.addr)
				}
			}
		}
		if err := n.serve(listeners[i], peers); err != nil {
			for _, l := range listeners[i+1:] {
				l.Close()
			}
			h.Close()
			return nil, err
		}
	}
	addrs := make([]string, len(h.nodes))
	for i, n := range h.nodes {
		addrs[i] = n.addr
	}
	clOpts := cluster.Options{}
	if opts.Fleet.Unmanaged {
		// During an unmanaged failover the new owner sheds requests with
		// 503 + Retry-After until the restore lands; a retry budget lets the
		// driver ride the hold out instead of counting a shed as a loss.
		clOpts.Client = client.Options{MaxRetries: 8, BackoffSeed: seed}
	}
	clOpts.Client.PreferBinary = opts.Binary
	h.cl, err = cluster.New(addrs, clOpts)
	if err != nil {
		h.Close()
		return nil, err
	}
	h.solo, err = alert.NewServer(plat, models, alert.ServerOptions{Shards: 1})
	if err != nil {
		h.Close()
		return nil, err
	}
	return h, nil
}

// Close stops every node and releases the cluster and solo controller.
func (h *Harness) Close() {
	if h.cl != nil {
		h.cl.Close()
	}
	for _, n := range h.nodes {
		n.stop()
	}
	if h.solo != nil {
		h.solo.Close()
	}
}

// Checker exposes the trailing invariant checker (for tests that want to
// feed or inspect it directly).
func (h *Harness) Checker() *Checker { return h.checker }

func (h *Harness) logf(format string, args ...any) {
	if h.opts.Logf != nil {
		h.opts.Logf(format, args...)
	}
}

// nodeByAddr resolves a member address back to the harness's node.
func (h *Harness) nodeByAddr(addr string) *node {
	for _, n := range h.nodes {
		if n.addr == addr {
			return n
		}
	}
	return nil
}

// liveClients returns name→client for every live member, for Checker.Poll.
func (h *Harness) liveClients() map[string]*client.Client {
	out := make(map[string]*client.Client)
	for _, n := range h.nodes {
		if !n.alive {
			continue
		}
		if cl, ok := h.cl.Node(n.addr); ok {
			out[n.id] = cl
		}
	}
	return out
}

// ownedBy lists the streams currently owned by a node, sorted (determinism
// of the recovery order matters for replayable runs).
func (h *Harness) ownedBy(addr string) []int {
	var out []int
	for s, a := range h.ownerAddr {
		if a == addr {
			out = append(out, s)
		}
	}
	sort.Ints(out)
	return out
}

// setOwner moves a stream's ownership in both the harness's table and the
// checker's.
func (h *Harness) setOwner(stream int, n *node) {
	h.ownerAddr[stream] = n.addr
	h.checker.SetOwner(stream, n.id)
}

// burst returns how many requests a stream issues in a round: the flash-
// crowd gap compression turned into extra requests (gap factor 0.25 → 4
// requests where 1 would have gone).
func (h *Harness) burst(stream, round int) int {
	b := int(math.Round(1 / h.fleet.GapScale(stream, round)))
	if b < 1 {
		b = 1
	}
	return b
}

// streamState is one driven stream: its private environment simulator,
// workload, and deadline tracker, advanced in lockstep with the fleet.
type streamState struct {
	env     *sim.Env
	in      workload.Stream
	tracker *workload.DeadlineTracker
	cur     alert.Spec
	done    bool
}

// Run drives the whole fleet trace and returns the checker's verdict. The
// loop is round-based lockstep: each round opens with checkpoints, then
// node events, then byzantine fire, then every live stream's requests run
// concurrently (goroutine per stream) to a barrier. Quiescing between
// rounds is what makes kills, restores, and table polls well-defined — and
// within a round the full cluster data path still runs under real
// concurrency.
func (h *Harness) Run(ctx context.Context) (*Report, error) {
	S, rounds := h.fleet.Streams, h.fleet.Len()
	h.report.Rounds = rounds
	h.report.Streams = S

	// Initial ownership is the ring's.
	for s := 0; s < S; s++ {
		n := h.nodeByAddr(h.cl.Route(s))
		if n == nil {
			return nil, fmt.Errorf("chaos: stream %d routes to unknown member", s)
		}
		h.setOwner(s, n)
	}

	states := make([]*streamState, S)
	for s := 0; s < S; s++ {
		total := 0
		for r := 0; r < rounds; r++ {
			total += h.burst(s, r)
		}
		seed := h.seed + int64(s)*7919
		states[s] = &streamState{
			env:     sim.NewEnv(h.prof, h.fleet.Base.Source(), seed+2),
			in:      workload.NewStream(h.task, total, seed+1),
			tracker: workload.NewDeadlineTracker(h.task, h.base.Deadline, 0),
			cur:     h.base,
		}
	}

	for r := 0; r < rounds; r++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if h.fleet.CheckpointAt(r) {
			h.takeCheckpoints(ctx, r)
			if h.fleet.Unmanaged {
				// Replication rides the checkpoint cadence: every live node
				// ships each stream's canonical snapshot to its ring
				// successor, so a kill later this round (events run after
				// checkpoints) finds a same-round replica waiting.
				for _, n := range h.nodes {
					if n.alive && n.heal != nil {
						n.heal.ReplicateOnce(ctx)
					}
				}
			}
			h.checker.Poll(ctx, h.liveClients(), h.expectedSet())
			h.report.Checkpoints++
		}
		for _, ev := range h.fleet.EventsAt(r) {
			if err := h.applyEvent(ctx, r, ev); err != nil {
				return nil, err
			}
		}
		for _, b := range h.fleet.ByzAt(r) {
			h.fireByz(ctx, b)
		}

		var wg sync.WaitGroup
		for s := 0; s < S; s++ {
			if states[s].done {
				continue
			}
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				h.driveRound(ctx, s, r, states[s])
			}(s)
		}
		wg.Wait()
	}

	// Final accounting: the table must be complete and every surviving
	// session must have folded in exactly the decisions the driver issued
	// minus the provable hard-kill losses.
	h.checker.Poll(ctx, h.liveClients(), h.expectedSet())
	for s := 0; s < S; s++ {
		n := h.nodeByAddr(h.ownerAddr[s])
		if n == nil || !n.alive {
			h.checker.Violate("final: stream %d owner is dead or unknown", s)
			continue
		}
		cl, _ := h.cl.Node(n.addr)
		snap, err := cl.ExportStream(ctx, s)
		if errors.Is(err, client.ErrNoSession) {
			h.checker.CheckConservation(s, 0)
			continue
		}
		if err != nil {
			h.checker.Violate("final: export stream %d from %s: %v", s, n.id, err)
			continue
		}
		h.checker.CheckConservation(s, int64(snap.Decisions))
	}

	h.checker.Fill(&h.report)
	return &h.report, nil
}

// markLive flips a stream's must-be-live expectation.
func (h *Harness) markLive(stream int, live bool) {
	h.liveMu.Lock()
	h.expectedLive[stream] = live
	h.liveMu.Unlock()
}

// isLive reads a stream's must-be-live expectation.
func (h *Harness) isLive(stream int) bool {
	h.liveMu.Lock()
	defer h.liveMu.Unlock()
	return h.expectedLive[stream]
}

// expectedSet snapshots which streams must be live somewhere right now.
func (h *Harness) expectedSet() map[int]bool {
	h.liveMu.Lock()
	defer h.liveMu.Unlock()
	out := make(map[int]bool, len(h.expectedLive))
	for s, v := range h.expectedLive {
		if v {
			out[s] = true
		}
	}
	return out
}

// takeCheckpoints snapshots every live stream in place via the owner's
// checkpoint endpoint — the periodic backup hard-kill recovery restores
// from.
func (h *Harness) takeCheckpoints(ctx context.Context, round int) {
	for s := 0; s < h.fleet.Streams; s++ {
		if !h.isLive(s) {
			continue
		}
		n := h.nodeByAddr(h.ownerAddr[s])
		if n == nil || !n.alive {
			h.checker.Violate("checkpoint round %d: stream %d owner dead", round, s)
			continue
		}
		cl, _ := h.cl.Node(n.addr)
		snap, err := cl.CheckpointStream(ctx, s)
		if err != nil {
			h.checker.Violate("checkpoint round %d: stream %d on %s: %v", round, s, n.id, err)
			continue
		}
		h.checkpoints[s] = checkpointRec{snap: snap, round: round}
	}
}

// applyEvent executes one kill or restart.
func (h *Harness) applyEvent(ctx context.Context, round int, ev scenario.NodeEvent) error {
	n := h.nodes[ev.Node]
	switch ev.Kind {
	case scenario.EventKill:
		if !n.alive {
			return fmt.Errorf("chaos: round %d: kill of dead node %s (trace bug)", round, n.id)
		}
		switch {
		case h.fleet.Unmanaged:
			h.logf("round %d: unmanaged kill %s", round, n.id)
			h.unmanagedKill(ctx, round, n)
		case ev.Graceful:
			h.logf("round %d: graceful kill %s", round, n.id)
			h.gracefulKill(ctx, n)
		default:
			h.logf("round %d: hard kill %s", round, n.id)
			h.hardKill(ctx, round, n)
		}
		h.report.Kills++
		h.checker.Poll(ctx, h.liveClients(), h.expectedSet())
	case scenario.EventRestart:
		if n.alive {
			return fmt.Errorf("chaos: round %d: restart of live node %s (trace bug)", round, n.id)
		}
		h.logf("round %d: restart %s", round, n.id)
		if err := h.restart(ctx, n); err != nil {
			return err
		}
		h.report.Restarts++
		h.checker.Poll(ctx, h.liveClients(), h.expectedSet())
	default:
		return fmt.Errorf("chaos: round %d: unknown event kind %q", round, ev.Kind)
	}
	return nil
}

// survivorsAfter lists the live nodes excluding the victim, in index order.
func (h *Harness) survivorsAfter(victim *node) []*node {
	var out []*node
	for _, n := range h.nodes {
		if n.alive && n != victim {
			out = append(out, n)
		}
	}
	return out
}

// gracefulKill migrates every session off the victim (announced reroutes,
// spread round-robin over the survivors), then removes the member and stops
// the process. Nothing is lost and determinism is preserved.
func (h *Harness) gracefulKill(ctx context.Context, victim *node) {
	survivors := h.survivorsAfter(victim)
	for k, s := range h.ownedBy(victim.addr) {
		target := survivors[k%len(survivors)]
		h.setOwner(s, target)
		if err := h.cl.Migrate(ctx, s, victim.addr, target.addr); err != nil {
			h.checker.Violate("graceful kill %s: migrate stream %d to %s: %v", victim.id, s, target.id, err)
			continue
		}
		h.report.Migrations++
	}
	if err := h.cl.RemoveMember(victim.addr); err != nil {
		h.checker.Violate("graceful kill %s: remove member: %v", victim.id, err)
	}
	victim.stop()
}

// hardKill stops the victim where it stands — its stream table dies with
// it — then restores each of its streams from the last checkpoint onto the
// stream's new hash-home. Streams whose checkpoint is stale (or missing)
// lose the decisions issued since it; the loss is announced to the checker
// as expected divergence, never hidden.
func (h *Harness) hardKill(ctx context.Context, round int, victim *node) {
	orphans := h.ownedBy(victim.addr)
	victim.stop()
	if err := h.cl.RemoveMember(victim.addr); err != nil {
		h.checker.Violate("hard kill %s: remove member: %v", victim.id, err)
		return
	}
	for _, s := range orphans {
		target := h.nodeByAddr(h.cl.Route(s)) // post-removal hash-home
		if target == nil || !target.alive {
			h.checker.Violate("hard kill %s: stream %d has no live home", victim.id, s)
			continue
		}
		h.setOwner(s, target)
		ck, has := h.checkpoints[s]
		if !has {
			// Nothing to restore: the stream restarts from scratch on its
			// next request, losing everything it had observed.
			if issued := h.checker.Issued(s); issued > 0 {
				h.checker.ExpectDivergence(s, issued,
					fmt.Sprintf("hard kill of %s at round %d with no checkpoint (%d decisions lost)", victim.id, round, issued))
			}
			h.markLive(s, false)
			continue
		}
		lost := h.checker.Issued(s) - int64(ck.snap.Decisions)
		if lost > 0 {
			h.checker.ExpectDivergence(s, lost,
				fmt.Sprintf("hard kill of %s at round %d restored checkpoint from round %d (%d decisions lost)",
					victim.id, round, ck.round, lost))
		}
		tcl, _ := h.cl.Node(target.addr)
		if err := tcl.ImportStream(ctx, s, ck.snap); err != nil {
			h.checker.Violate("hard kill %s: restore stream %d onto %s: %v", victim.id, s, target.id, err)
			continue
		}
		if err := h.cl.Pin(s, target.addr); err != nil {
			h.checker.Violate("hard kill %s: pin stream %d to %s: %v", victim.id, s, target.id, err)
		}
	}
}

// unmanagedKill stops the victim and then only watches: the surviving
// agents must declare it dead on their own, the router must eject it via
// its membership subscription, and the ring successor must restore every
// orphaned stream from its replicated snapshot — no RemoveMember, no
// harness-side restore. The harness's role shrinks to bookkeeping: wait
// for convergence (bounded by convergeGrace), account provable losses as
// expected divergence, and flag anything else as a violation.
func (h *Harness) unmanagedKill(ctx context.Context, round int, victim *node) {
	orphans := h.ownedBy(victim.addr)
	victim.stop()
	start := time.Now()
	deadline := start.Add(convergeGrace)

	// 1. Every survivor's failure detector converges on the death.
	for _, n := range h.survivorsAfter(victim) {
		for {
			if e, ok := n.agent.View().Entry(victim.id); ok && e.State == membership.StateDead {
				break
			}
			if time.Now().After(deadline) {
				h.checker.Violate("unmanaged kill %s: %s never declared it dead within %s", victim.id, n.id, convergeGrace)
				return
			}
			if sleepCtx(ctx, 5*time.Millisecond) != nil {
				return
			}
		}
	}
	h.logf("round %d: survivors declared %s dead after %s (lease timeout %s)",
		round, victim.id, time.Since(start).Round(time.Millisecond), unmanagedDead)

	// 2. The router ejects the victim through its membership subscription.
	for {
		if err := h.cl.SyncMembership(ctx); err == nil && !containsAddr(h.cl.Members(), victim.addr) {
			break
		}
		if time.Now().After(deadline) {
			h.checker.Violate("unmanaged kill %s: router never ejected it within %s", victim.id, convergeGrace)
			return
		}
		if sleepCtx(ctx, 10*time.Millisecond) != nil {
			return
		}
	}

	// 3. Each orphan resurfaces on a survivor — or its loss is accounted.
	for _, s := range orphans {
		if !h.isLive(s) {
			// Never served a request: nothing to restore, the ring just
			// routes its first decide somewhere new.
			if n := h.nodeByAddr(h.cl.Route(s)); n != nil {
				h.setOwner(s, n)
			}
			continue
		}
		ck, has := h.checkpoints[s]
		if !has {
			// Killed before the first replication round: no replica ever
			// shipped, so the stream restarts from scratch.
			if issued := h.checker.Issued(s); issued > 0 {
				h.checker.ExpectDivergence(s, issued,
					fmt.Sprintf("unmanaged kill of %s at round %d before any replication (%d decisions lost)", victim.id, round, issued))
			}
			h.markLive(s, false)
			if n := h.nodeByAddr(h.cl.Route(s)); n != nil {
				h.setOwner(s, n)
			}
			continue
		}
		holder := h.awaitRestore(ctx, s, deadline)
		if holder == nil {
			h.checker.Violate("unmanaged kill %s: stream %d never restored from its replica", victim.id, s)
			continue
		}
		h.setOwner(s, holder)
		// The successor==new-owner theorem, end to end: the node that held
		// the replica must be exactly where the rebuilt ring routes.
		if route := h.cl.Route(s); route != holder.addr {
			h.checker.Violate("unmanaged kill %s: stream %d restored on %s but routes to %s", victim.id, s, holder.addr, route)
		}
		if lost := h.checker.Issued(s) - int64(ck.snap.Decisions); lost > 0 {
			h.checker.ExpectDivergence(s, lost,
				fmt.Sprintf("unmanaged kill of %s at round %d restored the round-%d replica (%d decisions lost)",
					victim.id, round, ck.round, lost))
		}
	}
	h.report.Failovers++
	h.logf("round %d: cluster absorbed kill of %s in %s", round, victim.id, time.Since(start).Round(time.Millisecond))
}

// awaitRestore polls the survivors' stream listings until one of them holds
// the stream (restores announce themselves by simply appearing in the
// table), or the deadline passes.
func (h *Harness) awaitRestore(ctx context.Context, stream int, deadline time.Time) *node {
	for {
		for _, n := range h.nodes {
			if !n.alive {
				continue
			}
			cl, ok := h.cl.Node(n.addr)
			if !ok {
				continue
			}
			ids, err := cl.Streams(ctx)
			if err != nil {
				continue
			}
			for _, id := range ids {
				if id == stream {
					return n
				}
			}
		}
		if time.Now().After(deadline) {
			return nil
		}
		if sleepCtx(ctx, 10*time.Millisecond) != nil {
			return nil
		}
	}
}

// sleepCtx sleeps d or returns early with the context's error.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func containsAddr(addrs []string, addr string) bool {
	for _, a := range addrs {
		if a == addr {
			return true
		}
	}
	return false
}

// restart brings a node back on its remembered address with an empty table,
// re-adds it to the member set, and rebalances: any stream whose route now
// disagrees with where its session actually lives (the ring remapped its
// hash-home onto the returned node) is migrated there with an announced
// reroute — without this, the stream's next request would fork a fresh
// session on the new home while the real one kept living elsewhere.
func (h *Harness) restart(ctx context.Context, n *node) error {
	if err := n.start(); err != nil {
		return err
	}
	if err := h.cl.AddMember(n.addr); err != nil {
		return fmt.Errorf("chaos: re-add member %s: %w", n.id, err)
	}
	for s := 0; s < h.fleet.Streams; s++ {
		route := h.cl.Route(s)
		owner := h.ownerAddr[s]
		if route == owner {
			continue
		}
		target := h.nodeByAddr(route)
		if target == nil || !target.alive {
			h.checker.Violate("restart %s: stream %d routes to dead member", n.id, s)
			continue
		}
		h.setOwner(s, target)
		if err := h.cl.Migrate(ctx, s, owner, route); err != nil {
			h.checker.Violate("restart %s: migrate stream %d home: %v", n.id, s, err)
			continue
		}
		h.report.Migrations++
	}
	return nil
}

// token renders a decision in the byte-comparable form the determinism
// check (and cmd/alertload's -decisions output) uses.
func token(d alert.Decision) string {
	return fmt.Sprintf("%d,%d,%.17g,%.17g", d.Model, d.Cap, d.PlannedStop, d.Overhead)
}

// driveRound issues one round of a stream's traffic: burst-many
// decide/observe pairs against the cluster, mirrored on the solo reference.
// The environment steps on the cluster's decision — the system under test —
// so after an expected divergence the run keeps exercising the cluster
// honestly while the solo comparison for that stream is retired.
func (h *Harness) driveRound(ctx context.Context, s, r int, st *streamState) {
	for b := h.burst(s, r); b > 0; b-- {
		input, ok := st.in.Next()
		if !ok {
			st.done = true
			return
		}
		if next := h.fleet.Base.SpecFor(input.ID, h.base); next != st.cur {
			st.cur = next
			st.tracker.SetPerInput(st.cur.Deadline)
		}
		goal := st.tracker.GoalFor(input)
		dspec := st.cur
		dspec.Deadline = goal

		want, _ := h.solo.Decide(s, dspec)
		got, _, servedBy, err := h.cl.DecideServed(ctx, s, dspec)
		if err != nil {
			// An error on a live route is a lost accepted request — the
			// cluster invariant this harness exists to check.
			h.checker.Violate("decide: stream %d round %d: %v", s, r, err)
			return
		}
		h.markLive(s, true)
		h.checker.RecordDecide(s, r, servedBy, token(got), token(want))

		out := st.env.Step(sim.Decision{
			Model: got.Model, Cap: got.Cap,
			PlannedStop: got.PlannedStop, Overhead: got.Overhead,
		}, input, goal, st.cur.Deadline)
		st.tracker.Observe(input, out.Latency)
		fb := alert.Feedback{
			Decision:       got,
			Latency:        out.Latency,
			CompletedStage: out.Stage,
			IdlePowerW:     out.IdlePower,
		}
		h.solo.Observe(s, fb)
		if err := h.cl.Observe(ctx, s, fb); err != nil {
			h.checker.Violate("observe: stream %d round %d: %v", s, r, err)
			return
		}
		h.checker.RecordObserve()
	}
}

// fireByz sends one byzantine request (retargeting the next live node if
// the scheduled one is down) and records whether the cluster rejected it
// cleanly: a 4xx is correct, anything else — a 5xx, a transport error, a
// success — is a violation.
func (h *Harness) fireByz(ctx context.Context, b scenario.ByzRequest) {
	var target *node
	for k := 0; k < len(h.nodes); k++ {
		n := h.nodes[(b.Node+k)%len(h.nodes)]
		if n.alive {
			target = n
			break
		}
	}
	if target == nil {
		return // validated schedules always keep one node live
	}
	h.report.ByzSent++
	status, err := sendByz(ctx, target.addr, b, h.fleet.Streams)
	if err != nil {
		h.checker.Violate("byzantine %s at %s: transport error: %v", b.Kind, target.id, err)
		return
	}
	if status < 400 || status >= 500 {
		h.checker.Violate("byzantine %s at %s: status %d, want 4xx", b.Kind, target.id, status)
		return
	}
	h.report.ByzRejected++
}

// trickleReader yields one byte per Read — a slow client dribbling a body.
type trickleReader struct{ buf []byte }

func (t *trickleReader) Read(p []byte) (int, error) {
	if len(t.buf) == 0 {
		return 0, io.EOF
	}
	p[0] = t.buf[0]
	t.buf = t.buf[1:]
	return 1, nil
}

// byzHTTP is the raw client byzantine requests go through — deliberately
// not the typed client package, which refuses to build malformed bodies.
var byzHTTP = &http.Client{Timeout: 30 * time.Second}

// sendByz fires one hostile request at a node and returns the status code.
// Every payload is side-effect-free by construction: it must be rejected
// before it can touch the stream table, and the checker's table polls
// verify that it was.
func sendByz(ctx context.Context, addr string, b scenario.ByzRequest, streams int) (int, error) {
	rng := newByzRng(b.Seed)
	var (
		method, path string
		body         io.Reader
	)
	switch b.Kind {
	case scenario.ByzGarbageJSON:
		method, path = http.MethodPost, "/v1/decide"
		raw := make([]byte, 16+rng.Intn(64))
		for i := range raw {
			raw[i] = byte(rng.Intn(256))
		}
		body = bytesReader(append([]byte(`{"stream":`), raw...))
	case scenario.ByzTruncatedSnapshot:
		method, path = http.MethodPut, fmt.Sprintf("/v1/streams/%d", rng.Intn(streams))
		// Valid base64 of an invalid (truncated / version-garbled) snapshot.
		raw := make([]byte, 1+rng.Intn(32))
		for i := range raw {
			raw[i] = byte(rng.Intn(256))
		}
		body = bytesReader([]byte(fmt.Sprintf(`{"snapshot_b64":%q}`, b64(raw))))
	case scenario.ByzBadObjective:
		method, path = http.MethodPost, "/v1/decide"
		body = bytesReader([]byte(fmt.Sprintf(
			`{"stream":%d,"spec":{"objective":"frobnicate","deadline":0.1,"accuracy_goal":0.9}}`,
			rng.Intn(streams))))
	case scenario.ByzOversize:
		method, path = http.MethodPost, "/v1/decide"
		body = &junkReader{n: oversizeBody, c: 'x'}
	case scenario.ByzSlow:
		// A slow client dribbling an (invalid) body byte by byte: holds a
		// connection without ever becoming an accepted request.
		method, path = http.MethodPost, "/v1/decide"
		body = &trickleReader{buf: []byte(fmt.Sprintf(
			`{"stream":%d,"spec":{"objective":"frobnicate","deadline":0.1,"accuracy_goal":0.9}}`,
			rng.Intn(streams)))}
	default:
		return 0, fmt.Errorf("unknown byzantine kind %q", b.Kind)
	}
	req, err := http.NewRequestWithContext(ctx, method, addr+path, body)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := byzHTTP.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}
