// Package membership gives every alertserve node a live, self-maintained
// picture of the cluster: who exists, where they listen, and whether they
// are alive, suspected, or dead. It is a lease protocol, not a consensus
// protocol — each node heartbeats every peer it knows, piggybacking its
// full view on every beat (peer exchange: reaching one member is enough
// to transitively discover the rest), and expires leases through a
// suspicion window before declaring death:
//
//	alive --SuspectAfter without contact--> suspect
//	suspect --DeadAfter without contact--> dead
//	suspect --direct contact--> alive           (lease renewed)
//	dead --higher incarnation--> alive          (only the member itself)
//
// "Direct contact" is a heartbeat received from the member or a reply to
// one we sent it; gossiped "alive" never renews a lease, so a partition
// rumor cannot keep a corpse warm. Death is sticky at a given
// incarnation: a member that finds itself suspected or declared dead in
// someone's view refutes by incrementing its own incarnation, which wins
// every merge wholesale. That asymmetry (anyone can worsen, only the
// subject can improve) makes the merged state a lattice join and the
// whole cluster's beliefs convergent regardless of message order.
//
// The view is versioned per node (every local belief change bumps it) and
// served on /v1/membership; client/cluster polls and merges these views
// to rebuild its routing ring with no operator in the loop, and
// internal/selfheal subscribes to state transitions to trigger failover.
package membership

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Endpoint is the HTTP path membership speaks on: GET returns the node's
// current view, POST delivers a heartbeat and returns the merged view.
const Endpoint = "/v1/membership"

// Transport delivers one heartbeat to a peer address and returns the
// peer's view (its heartbeat reply). Implementations set their own
// timeouts; an error just means the lease is not renewed this round.
type Transport interface {
	Heartbeat(ctx context.Context, addr string, hb Heartbeat) (View, error)
}

// Config configures an Agent.
type Config struct {
	// ID uniquely names this node instance (alertserve -node-id). Required.
	ID string
	// Addr is the address peers and clients dial to reach this node.
	// Required; it is what the hash ring hashes, so it must match what
	// clients route on.
	Addr string
	// Incarnation seeds this instance's incarnation number. It must
	// exceed any incarnation a previous instance of the same ID ever
	// advertised, or the cluster's memory of the old instance's death
	// outvotes the new instance; wall-clock nanoseconds at startup works.
	// 0 means 1.
	Incarnation uint64
	// Seeds are peer addresses to heartbeat before they appear in the
	// view (the bootstrap set). IDs are learned from their replies.
	Seeds []string
	// HeartbeatEvery is the gossip period. 0 means 250ms.
	HeartbeatEvery time.Duration
	// SuspectAfter is how long without direct contact before a peer's
	// lease lapses into suspicion. 0 means 4×HeartbeatEvery.
	SuspectAfter time.Duration
	// DeadAfter is how long without direct contact before a suspected
	// peer is declared dead. Must exceed SuspectAfter. 0 means
	// 3×SuspectAfter.
	DeadAfter time.Duration
	// Transport sends heartbeats. Required for Run; an agent that only
	// answers (HandleHeartbeat) can leave it nil.
	Transport Transport
	// Now is the clock, injectable for tests. Nil means time.Now.
	Now func() time.Time
	// OnChange, if set, is called with a fresh view snapshot after every
	// version bump, outside the agent's lock. Keep it fast or hand off to
	// a goroutine; it runs on heartbeat and tick paths.
	OnChange func(View)
	// Logf, if set, receives one line per state transition.
	Logf func(format string, args ...any)
}

type peerState struct {
	e       Entry
	lastAck time.Time // last direct contact; zero for dead peers
}

// Agent is one node's membership state machine. All methods are safe for
// concurrent use.
type Agent struct {
	cfg Config

	mu      sync.Mutex
	self    Entry
	peers   map[string]*peerState // by member ID
	version uint64
	seq     uint64
}

// New builds an agent. The agent is inert until Run (or until peers start
// delivering heartbeats to HandleHeartbeat).
func New(cfg Config) (*Agent, error) {
	if cfg.ID == "" {
		return nil, errors.New("membership: Config.ID required")
	}
	if cfg.Addr == "" {
		return nil, errors.New("membership: Config.Addr required")
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 250 * time.Millisecond
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 4 * cfg.HeartbeatEvery
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 3 * cfg.SuspectAfter
	}
	if cfg.DeadAfter <= cfg.SuspectAfter {
		return nil, fmt.Errorf("membership: DeadAfter (%v) must exceed SuspectAfter (%v)",
			cfg.DeadAfter, cfg.SuspectAfter)
	}
	if cfg.Incarnation == 0 {
		cfg.Incarnation = 1
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Agent{
		cfg: cfg,
		self: Entry{
			ID:          cfg.ID,
			Addr:        cfg.Addr,
			Incarnation: cfg.Incarnation,
			State:       StateAlive,
		},
		peers:   make(map[string]*peerState),
		version: 1,
	}, nil
}

// ID returns this agent's member id.
func (a *Agent) ID() string { return a.cfg.ID }

// Addr returns this agent's advertised address.
func (a *Agent) Addr() string { return a.cfg.Addr }

// View returns a snapshot of this node's current belief: its own entry
// plus every known peer, ID-sorted, stamped with the local version.
func (a *Agent) View() View {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.viewLocked()
}

func (a *Agent) viewLocked() View {
	entries := make([]Entry, 0, len(a.peers)+1)
	entries = append(entries, a.self)
	for _, p := range a.peers {
		entries = append(entries, p.e)
	}
	sortEntries(entries)
	return View{Version: a.version, Entries: entries}
}

// Members returns the addresses of every member not known dead (self
// included), sorted and deduplicated — the hash-ring member set. Suspect
// members stay in: suspicion is a grace period, and yanking them from the
// ring on every slow probe is exactly the flap this layer exists to damp.
func (a *Agent) Members() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	set := map[string]bool{a.self.Addr: true}
	for _, p := range a.peers {
		if p.e.State != StateDead {
			set[p.e.Addr] = true
		}
	}
	out := make([]string, 0, len(set))
	for addr := range set {
		out = append(out, addr)
	}
	sort.Strings(out)
	return out
}

// Version returns the current view version.
func (a *Agent) Version() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.version
}

// HandleHeartbeat is the receive side: merge the sender's view, renew the
// sender's lease (a heartbeat is direct contact), and return our merged
// view as the reply. Exported for the HTTP layer.
func (a *Agent) HandleHeartbeat(hb Heartbeat) View {
	now := a.cfg.Now()
	a.mu.Lock()
	changed := a.mergeLocked(hb.View, now)
	if a.ackLocked(hb.From, now) {
		changed = true
	}
	if changed {
		a.version++
	}
	v := a.viewLocked()
	a.mu.Unlock()
	if changed {
		a.notify(v)
	}
	return v
}

// Merge folds a remote view into this agent's state without renewing any
// lease (no direct contact — e.g. a view fetched by an observer on our
// behalf). Used by tests and the fuzzer; the heartbeat path uses
// HandleHeartbeat.
func (a *Agent) Merge(remote View) {
	now := a.cfg.Now()
	a.mu.Lock()
	changed := a.mergeLocked(remote, now)
	if changed {
		a.version++
	}
	v := a.viewLocked()
	a.mu.Unlock()
	if changed {
		a.notify(v)
	}
}

// mergeLocked applies the lattice join entry by entry. Caller holds a.mu
// and bumps version if it returns true.
func (a *Agent) mergeLocked(remote View, now time.Time) bool {
	changed := false
	for _, re := range remote.Entries {
		if re.ID == a.self.ID {
			// Someone believes something about US. If they hold a higher
			// incarnation, a past instance's number is circulating; if they
			// hold our incarnation with a non-alive state, we are being
			// suspected or buried. Either way: refute, loudly — adopt an
			// incarnation above theirs and reassert alive. Merges are
			// monotone in incarnation, so this wins everywhere it reaches.
			if re.Incarnation > a.self.Incarnation ||
				(re.Incarnation == a.self.Incarnation && re.State != StateAlive) {
				a.self.Incarnation = re.Incarnation + 1
				a.logf("membership %s: refuting %s rumor, incarnation now %d",
					a.cfg.ID, re.State, a.self.Incarnation)
				changed = true
			}
			continue
		}
		p, known := a.peers[re.ID]
		switch {
		case !known:
			np := &peerState{e: re}
			if re.State != StateDead {
				// Grant a discovered peer a full lease: we have zero direct
				// evidence either way, and instant suspicion of every
				// newcomer would make bootstrap a flap storm.
				np.lastAck = now
			}
			a.peers[re.ID] = np
			a.logf("membership %s: discovered %s (%s) %s inc=%d",
				a.cfg.ID, re.ID, re.Addr, re.State, re.Incarnation)
			changed = true
		case re.Incarnation > p.e.Incarnation:
			// A refutation or a restarted instance: adopt wholesale. A
			// higher incarnation asserting alive is fresh evidence of life,
			// so the lease renews too.
			old := p.e.State
			p.e = re
			if re.State != StateDead {
				p.lastAck = now
			}
			if old != re.State {
				a.logf("membership %s: %s %s -> %s (incarnation %d)",
					a.cfg.ID, re.ID, old, re.State, re.Incarnation)
			}
			changed = true
		case re.Incarnation == p.e.Incarnation && worse(re.State, p.e.State):
			// Same incarnation, worse news: adopt it. This is how a death
			// observed by one node spreads. Note the converse is absent on
			// purpose — gossiped "alive" at the same incarnation does NOT
			// clear local suspicion; only direct contact or a refutation
			// does.
			a.logf("membership %s: %s %s -> %s (gossip)",
				a.cfg.ID, re.ID, p.e.State, re.State)
			p.e.State = re.State
			changed = true
		}
	}
	return changed
}

// ackLocked records direct contact with a member: lease renewed, and a
// suspect is restored to alive. Dead stays dead — at the recorded
// incarnation the member must refute (it will, as soon as it sees our
// view naming it dead). Caller holds a.mu and bumps version on true.
func (a *Agent) ackLocked(id string, now time.Time) bool {
	p, ok := a.peers[id]
	if !ok || p.e.State == StateDead {
		return false
	}
	p.lastAck = now
	if p.e.State == StateSuspect {
		p.e.State = StateAlive
		a.logf("membership %s: %s suspect -> alive (direct contact)", a.cfg.ID, id)
		return true
	}
	return false
}

// ackAddrLocked renews the lease of whichever live peer answers at addr —
// the reply path of an outgoing heartbeat, where we dialed an address,
// not an ID.
func (a *Agent) ackAddrLocked(addr string, now time.Time) bool {
	changed := false
	for id, p := range a.peers {
		if p.e.Addr == addr && p.e.State != StateDead {
			if a.ackLocked(id, now) {
				changed = true
			}
		}
	}
	return changed
}

// Tick advances the lease clocks: alive members we have not heard from in
// SuspectAfter become suspect, and suspects silent for DeadAfter (since
// last contact) are declared dead. Run calls this every heartbeat period;
// tests call it directly with a synthetic clock.
func (a *Agent) Tick() {
	now := a.cfg.Now()
	a.mu.Lock()
	changed := false
	for id, p := range a.peers {
		silent := now.Sub(p.lastAck)
		switch p.e.State {
		case StateAlive:
			if silent > a.cfg.DeadAfter {
				// A stalled ticker (scheduling pause, clock jump) must not
				// grant a free extra suspicion window: the thresholds are
				// wall-clock leases, not tick counts.
				p.e.State = StateDead
				a.logf("membership %s: %s alive -> dead (%v silent)", a.cfg.ID, id, silent)
				changed = true
			} else if silent > a.cfg.SuspectAfter {
				p.e.State = StateSuspect
				a.logf("membership %s: %s alive -> suspect (%v silent)", a.cfg.ID, id, silent)
				changed = true
			}
		case StateSuspect:
			if silent > a.cfg.DeadAfter {
				p.e.State = StateDead
				a.logf("membership %s: %s suspect -> dead (%v silent)", a.cfg.ID, id, silent)
				changed = true
			}
		}
	}
	if changed {
		a.version++
	}
	v := a.viewLocked()
	a.mu.Unlock()
	if changed {
		a.notify(v)
	}
}

// Run heartbeats every known peer (and every seed not yet in the view)
// once per HeartbeatEvery, merging replies and expiring leases, until ctx
// is cancelled. Dead members are not dialed — their tombstones ride the
// gossip instead; a resurrected instance announces itself with a higher
// incarnation.
func (a *Agent) Run(ctx context.Context) {
	ticker := time.NewTicker(a.cfg.HeartbeatEvery)
	defer ticker.Stop()
	for {
		a.beat(ctx)
		a.Tick()
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}

// beat sends one round of heartbeats concurrently and merges the replies.
func (a *Agent) beat(ctx context.Context) {
	if a.cfg.Transport == nil {
		return
	}
	a.mu.Lock()
	a.seq++
	hb := Heartbeat{From: a.cfg.ID, Seq: a.seq, View: a.viewLocked()}
	targets := make([]string, 0, len(a.peers)+len(a.cfg.Seeds))
	known := map[string]bool{a.self.Addr: true}
	for _, p := range a.peers {
		known[p.e.Addr] = true
		if p.e.State != StateDead {
			targets = append(targets, p.e.Addr)
		}
	}
	for _, s := range a.cfg.Seeds {
		if !known[s] {
			known[s] = true
			targets = append(targets, s)
		}
	}
	a.mu.Unlock()

	sendCtx, cancel := context.WithTimeout(ctx, a.cfg.HeartbeatEvery)
	defer cancel()
	var wg sync.WaitGroup
	for _, addr := range targets {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			reply, err := a.cfg.Transport.Heartbeat(sendCtx, addr, hb)
			if err != nil {
				return // lease simply not renewed this round
			}
			now := a.cfg.Now()
			a.mu.Lock()
			changed := a.mergeLocked(reply, now)
			if a.ackAddrLocked(addr, now) {
				changed = true
			}
			if changed {
				a.version++
			}
			v := a.viewLocked()
			a.mu.Unlock()
			if changed {
				a.notify(v)
			}
		}(addr)
	}
	wg.Wait()
}

func (a *Agent) notify(v View) {
	if a.cfg.OnChange != nil {
		a.cfg.OnChange(v)
	}
}

func (a *Agent) logf(format string, args ...any) {
	if a.cfg.Logf != nil {
		a.cfg.Logf(format, args...)
	}
}

func sortEntries(entries []Entry) {
	sort.Slice(entries, func(i, j int) bool { return entries[i].ID < entries[j].ID })
}
