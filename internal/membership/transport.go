package membership

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// maxReplyBody bounds how much of a heartbeat reply we will read: views
// are tiny (tens of bytes per member), so anything past 1 MiB is a
// misbehaving peer, not a big cluster.
const maxReplyBody = 1 << 20

// HTTPTransport delivers heartbeats as POST {addr}/v1/membership with a
// canonical JSON heartbeat body, expecting the peer's view back. It is
// the production transport; tests substitute in-process transports.
type HTTPTransport struct {
	// Client is the HTTP client to use. Nil means a private client with a
	// 2s timeout — heartbeats are latency probes, so they must not hang
	// on a wedged peer for the default transport's eternity.
	Client *http.Client
}

var defaultHeartbeatClient = &http.Client{Timeout: 2 * time.Second}

// Heartbeat implements Transport.
func (t *HTTPTransport) Heartbeat(ctx context.Context, addr string, hb Heartbeat) (View, error) {
	body, err := EncodeHeartbeat(hb)
	if err != nil {
		return View{}, err
	}
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url = strings.TrimSuffix(url, "/") + Endpoint
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return View{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	cl := t.Client
	if cl == nil {
		cl = defaultHeartbeatClient
	}
	resp, err := cl.Do(req)
	if err != nil {
		return View{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxReplyBody))
	if err != nil {
		return View{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return View{}, fmt.Errorf("membership: heartbeat %s: status %d", url, resp.StatusCode)
	}
	return DecodeView(data)
}
