package membership

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock shared by every agent in a test, so
// lease expiry is exact rather than sleep-based.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// memTransport wires agents together in process. Downed addresses error
// like a refused connection would.
type memTransport struct {
	mu     sync.Mutex
	agents map[string]*Agent // by addr
	down   map[string]bool
}

func newMemTransport() *memTransport {
	return &memTransport{agents: map[string]*Agent{}, down: map[string]bool{}}
}

func (t *memTransport) add(a *Agent) {
	t.mu.Lock()
	t.agents[a.Addr()] = a
	t.mu.Unlock()
}

func (t *memTransport) setDown(addr string, down bool) {
	t.mu.Lock()
	t.down[addr] = down
	t.mu.Unlock()
}

func (t *memTransport) Heartbeat(_ context.Context, addr string, hb Heartbeat) (View, error) {
	t.mu.Lock()
	target, ok := t.agents[addr]
	down := t.down[addr]
	t.mu.Unlock()
	if !ok || down {
		return View{}, fmt.Errorf("memtransport: %s unreachable", addr)
	}
	return target.HandleHeartbeat(hb), nil
}

// newTestAgent builds an agent on the shared clock/transport with tight,
// test-friendly lease timeouts: suspect after 40ms of silence, dead after
// 100ms.
func newTestAgent(t testing.TB, clock *fakeClock, tr *memTransport, id, addr string, seeds []string) *Agent {
	t.Helper()
	a, err := New(Config{
		ID:             id,
		Addr:           addr,
		Seeds:          seeds,
		HeartbeatEvery: 10 * time.Millisecond,
		SuspectAfter:   40 * time.Millisecond,
		DeadAfter:      100 * time.Millisecond,
		Transport:      tr,
		Now:            clock.Now,
	})
	if err != nil {
		t.Fatalf("New(%s): %v", id, err)
	}
	tr.add(a)
	return a
}

// beatAll runs one synchronous heartbeat round for every agent.
func beatAll(agents ...*Agent) {
	for _, a := range agents {
		a.beat(context.Background())
	}
}

func tickAll(agents ...*Agent) {
	for _, a := range agents {
		a.Tick()
	}
}

func stateOf(t *testing.T, a *Agent, id string) State {
	t.Helper()
	e, ok := a.View().Entry(id)
	if !ok {
		t.Fatalf("agent %s has no entry for %s", a.ID(), id)
	}
	return e.State
}

// TestTransitiveDiscovery: n1 seeds only n2, n3 seeds only n2 — after a
// couple of beats everyone must know everyone, because views piggyback on
// heartbeats.
func TestTransitiveDiscovery(t *testing.T) {
	clock := newFakeClock()
	tr := newMemTransport()
	a1 := newTestAgent(t, clock, tr, "n1", "h1:1", []string{"h2:2"})
	a2 := newTestAgent(t, clock, tr, "n2", "h2:2", nil)
	a3 := newTestAgent(t, clock, tr, "n3", "h3:3", []string{"h2:2"})

	beatAll(a1, a3) // n1,n3 introduce themselves to n2
	beatAll(a1, a3) // second beat picks each other up from n2's reply

	for _, a := range []*Agent{a1, a2, a3} {
		v := a.View()
		if len(v.Entries) != 3 {
			t.Fatalf("agent %s sees %d members, want 3: %+v", a.ID(), len(v.Entries), v.Entries)
		}
		for _, id := range []string{"n1", "n2", "n3"} {
			if stateOf(t, a, id) != StateAlive {
				t.Errorf("agent %s sees %s as %s, want alive", a.ID(), id, stateOf(t, a, id))
			}
		}
	}
}

// TestSuspectThenDead walks the lease state machine on a silent peer and
// checks the member set (ring input) drops the peer only at death.
func TestSuspectThenDead(t *testing.T) {
	clock := newFakeClock()
	tr := newMemTransport()
	a1 := newTestAgent(t, clock, tr, "n1", "h1:1", []string{"h2:2"})
	a2 := newTestAgent(t, clock, tr, "n2", "h2:2", []string{"h1:1"})
	beatAll(a1, a2)

	tr.setDown("h2:2", true)
	clock.Advance(50 * time.Millisecond) // past SuspectAfter (40ms)
	beatAll(a1)
	tickAll(a1)
	if got := stateOf(t, a1, "n2"); got != StateSuspect {
		t.Fatalf("after %v silence n2 is %s, want suspect", 50*time.Millisecond, got)
	}
	// Suspicion is a grace period: the member set must still include n2.
	if members := a1.Members(); len(members) != 2 {
		t.Fatalf("suspect member fell out of the member set: %v", members)
	}

	clock.Advance(60 * time.Millisecond) // total 110ms > DeadAfter (100ms)
	tickAll(a1)
	if got := stateOf(t, a1, "n2"); got != StateDead {
		t.Fatalf("after 110ms silence n2 is %s, want dead", got)
	}
	if members := a1.Members(); len(members) != 1 || members[0] != "h1:1" {
		t.Fatalf("dead member still in member set: %v", members)
	}
}

// TestDirectContactRenewsSuspect: a suspected member that answers again
// goes straight back to alive — no incarnation ceremony for a slow peer.
func TestDirectContactRenewsSuspect(t *testing.T) {
	clock := newFakeClock()
	tr := newMemTransport()
	a1 := newTestAgent(t, clock, tr, "n1", "h1:1", []string{"h2:2"})
	a2 := newTestAgent(t, clock, tr, "n2", "h2:2", []string{"h1:1"})
	beatAll(a1, a2)

	tr.setDown("h2:2", true)
	clock.Advance(50 * time.Millisecond)
	tickAll(a1)
	if got := stateOf(t, a1, "n2"); got != StateSuspect {
		t.Fatalf("n2 is %s, want suspect", got)
	}
	tr.setDown("h2:2", false)
	beatAll(a1) // direct reply renews the lease
	if got := stateOf(t, a1, "n2"); got != StateAlive {
		t.Fatalf("n2 is %s after direct contact, want alive", got)
	}
}

// TestGossipedAliveDoesNotResurrect: once n1 declares n2 dead, a third
// party relaying "n2 alive" at the same incarnation must not revive it —
// only n2 itself can, with a higher incarnation.
func TestGossipedAliveDoesNotResurrect(t *testing.T) {
	clock := newFakeClock()
	tr := newMemTransport()
	a1 := newTestAgent(t, clock, tr, "n1", "h1:1", []string{"h2:2"})
	a2 := newTestAgent(t, clock, tr, "n2", "h2:2", []string{"h1:1"})
	beatAll(a1, a2)

	tr.setDown("h2:2", true)
	clock.Advance(150 * time.Millisecond)
	tickAll(a1)
	if got := stateOf(t, a1, "n2"); got != StateDead {
		t.Fatalf("n2 is %s, want dead", got)
	}

	// A stale third-party view still believes n2 alive at incarnation 1.
	stale := View{Version: 9, Entries: []Entry{
		{ID: "n2", Addr: "h2:2", Incarnation: 1, State: StateAlive},
	}}
	a1.Merge(stale)
	if got := stateOf(t, a1, "n2"); got != StateDead {
		t.Fatalf("gossiped alive resurrected n2 (state %s)", got)
	}

	// But n2 itself, refuting with a higher incarnation, wins.
	refute := View{Version: 1, Entries: []Entry{
		{ID: "n2", Addr: "h2:2", Incarnation: 2, State: StateAlive},
	}}
	a1.Merge(refute)
	if got := stateOf(t, a1, "n2"); got != StateAlive {
		t.Fatalf("incarnation refutation did not revive n2 (state %s)", got)
	}
}

// TestSelfRefutation: an agent that learns it is suspected must bump its
// incarnation above the rumor and reassert alive.
func TestSelfRefutation(t *testing.T) {
	clock := newFakeClock()
	tr := newMemTransport()
	a2 := newTestAgent(t, clock, tr, "n2", "h2:2", nil)

	rumor := View{Version: 3, Entries: []Entry{
		{ID: "n2", Addr: "h2:2", Incarnation: 1, State: StateSuspect},
	}}
	a2.Merge(rumor)
	self, _ := a2.View().Entry("n2")
	if self.Incarnation != 2 || self.State != StateAlive {
		t.Fatalf("self entry after rumor = %+v, want incarnation 2 alive", self)
	}

	// A rumor carrying a HIGHER incarnation (e.g. from a previous life)
	// must be out-bid, not merely matched.
	a2.Merge(View{Version: 4, Entries: []Entry{
		{ID: "n2", Addr: "h2:2", Incarnation: 7, State: StateDead},
	}})
	self, _ = a2.View().Entry("n2")
	if self.Incarnation != 8 || self.State != StateAlive {
		t.Fatalf("self entry after dead rumor = %+v, want incarnation 8 alive", self)
	}
}

// TestDeathSpreadsByGossip: n3 never loses contact with anyone, but must
// still learn of n2's death from n1's piggybacked view.
func TestDeathSpreadsByGossip(t *testing.T) {
	clock := newFakeClock()
	tr := newMemTransport()
	a1 := newTestAgent(t, clock, tr, "n1", "h1:1", []string{"h2:2", "h3:3"})
	a2 := newTestAgent(t, clock, tr, "n2", "h2:2", []string{"h1:1"})
	a3 := newTestAgent(t, clock, tr, "n3", "h3:3", []string{"h1:1"})
	beatAll(a1, a2, a3)
	beatAll(a1, a2, a3)

	// n2 dies. Only n1 runs its lease clock (n3 never Ticks), so n1 ages
	// n2 out while keeping n3's lease warm with each beat — then n1's
	// heartbeat to n3 carries the tombstone.
	tr.setDown("h2:2", true)
	for i := 0; i < 3; i++ {
		clock.Advance(60 * time.Millisecond)
		a1.beat(context.Background())
		a1.Tick()
	}
	if got := stateOf(t, a1, "n2"); got != StateDead {
		t.Fatalf("n1 sees n2 as %s, want dead", got)
	}
	if got := stateOf(t, a1, "n3"); got != StateAlive {
		t.Fatalf("n1 sees n3 as %s, want alive (its lease was renewed each beat)", got)
	}
	if got := stateOf(t, a3, "n2"); got != StateDead {
		t.Fatalf("n3 sees n2 as %s after gossip, want dead", got)
	}
}

// TestOnChangeFires: every belief change produces exactly one callback
// with a version-bumped view.
func TestOnChangeFires(t *testing.T) {
	clock := newFakeClock()
	var (
		mu    sync.Mutex
		calls []uint64
	)
	a, err := New(Config{
		ID:   "n1",
		Addr: "h1:1",
		Now:  clock.Now,
		OnChange: func(v View) {
			mu.Lock()
			calls = append(calls, v.Version)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Merge(View{Entries: []Entry{{ID: "n2", Addr: "h2:2", Incarnation: 1, State: StateAlive}}})
	a.Merge(View{Entries: []Entry{{ID: "n2", Addr: "h2:2", Incarnation: 1, State: StateAlive}}}) // no-op
	a.Merge(View{Entries: []Entry{{ID: "n2", Addr: "h2:2", Incarnation: 1, State: StateDead}}})
	mu.Lock()
	defer mu.Unlock()
	if len(calls) != 2 {
		t.Fatalf("OnChange fired %d times (%v), want 2", len(calls), calls)
	}
	if calls[1] <= calls[0] {
		t.Fatalf("versions not monotonic: %v", calls)
	}
}

// TestMergeViewsLattice pins the client-side merge's join properties on a
// hand-built set of conflicting views: commutativity and idempotence are
// what let clients poll members in any order and still converge.
func TestMergeViewsLattice(t *testing.T) {
	va := View{Version: 2, Entries: []Entry{
		{ID: "n1", Addr: "h1:1", Incarnation: 1, State: StateAlive},
		{ID: "n2", Addr: "h2:2", Incarnation: 2, State: StateAlive},
		{ID: "n3", Addr: "h3:3", Incarnation: 1, State: StateDead},
	}}
	vb := View{Version: 5, Entries: []Entry{
		{ID: "n2", Addr: "h2:2", Incarnation: 2, State: StateSuspect},
		{ID: "n3", Addr: "h3:3", Incarnation: 1, State: StateAlive},
		{ID: "n4", Addr: "h4:4", Incarnation: 1, State: StateAlive},
	}}

	ab, _ := MergeViews(va, vb)
	ba, _ := MergeViews(vb, va)
	abJSON, err := EncodeView(ab)
	if err != nil {
		t.Fatalf("merged view not canonical: %v", err)
	}
	baJSON, _ := EncodeView(ba)
	if !bytes.Equal(abJSON, baJSON) {
		t.Fatalf("merge not commutative:\n a+b %s\n b+a %s", abJSON, baJSON)
	}

	again, changed := MergeViews(ab, vb)
	if changed {
		t.Fatalf("re-merging an absorbed view reported a change")
	}
	againJSON, _ := EncodeView(again)
	if !bytes.Equal(abJSON, againJSON) {
		t.Fatalf("merge not idempotent:\n once %s\n twice %s", abJSON, againJSON)
	}

	// Spot-check the join: n2 worse-state wins at equal incarnation, n3
	// dead wins over alive, n4 discovered.
	if e, _ := ab.Entry("n2"); e.State != StateSuspect {
		t.Errorf("n2 merged to %s, want suspect (worse state wins)", e.State)
	}
	if e, _ := ab.Entry("n3"); e.State != StateDead {
		t.Errorf("n3 merged to %s, want dead (dead is sticky)", e.State)
	}
	if _, ok := ab.Entry("n4"); !ok {
		t.Errorf("n4 lost in merge")
	}

	// Higher incarnation wins wholesale, even against a worse state.
	vc := View{Entries: []Entry{{ID: "n3", Addr: "h3:3b", Incarnation: 2, State: StateAlive}}}
	cd, _ := MergeViews(ab, vc)
	if e, _ := cd.Entry("n3"); e.State != StateAlive || e.Addr != "h3:3b" || e.Incarnation != 2 {
		t.Errorf("n3 refutation merged to %+v, want alive@h3:3b inc 2", e)
	}
}

// TestWireRejects: malformed payloads must be refused at decode, never
// reach the state machine.
func TestWireRejects(t *testing.T) {
	cases := map[string]string{
		"unsorted entries": `{"from":"a","seq":1,"view":{"version":1,"entries":[` +
			`{"id":"b","addr":"x","incarnation":1,"state":"alive"},` +
			`{"id":"a","addr":"y","incarnation":1,"state":"alive"}]}}`,
		"duplicate id": `{"from":"a","seq":1,"view":{"version":1,"entries":[` +
			`{"id":"a","addr":"x","incarnation":1,"state":"alive"},` +
			`{"id":"a","addr":"y","incarnation":1,"state":"alive"}]}}`,
		"empty id": `{"from":"a","seq":1,"view":{"version":1,"entries":[` +
			`{"id":"","addr":"x","incarnation":1,"state":"alive"}]}}`,
		"empty addr": `{"from":"a","seq":1,"view":{"version":1,"entries":[` +
			`{"id":"a","addr":"","incarnation":1,"state":"alive"}]}}`,
		"unknown state": `{"from":"a","seq":1,"view":{"version":1,"entries":[` +
			`{"id":"a","addr":"x","incarnation":1,"state":"zombie"}]}}`,
		"missing self entry": `{"from":"ghost","seq":1,"view":{"version":1,"entries":[` +
			`{"id":"a","addr":"x","incarnation":1,"state":"alive"}]}}`,
		"empty from": `{"from":"","seq":1,"view":{"version":1}}`,
		"unknown field": `{"from":"a","seq":1,"bogus":true,"view":{"version":1,"entries":[` +
			`{"id":"a","addr":"x","incarnation":1,"state":"alive"}]}}`,
		"trailing data": `{"from":"a","seq":1,"view":{"version":1,"entries":[` +
			`{"id":"a","addr":"x","incarnation":1,"state":"alive"}]}}{}`,
		"not json": `hello`,
	}
	for name, payload := range cases {
		if _, err := DecodeHeartbeat([]byte(payload)); err == nil {
			t.Errorf("%s: decode accepted %q", name, payload)
		}
	}
}

// TestWireRoundTrip: a live agent's heartbeat encodes, decodes, and
// re-encodes byte-identically.
func TestWireRoundTrip(t *testing.T) {
	clock := newFakeClock()
	tr := newMemTransport()
	a := newTestAgent(t, clock, tr, "n1", "h1:1", nil)
	a.Merge(View{Entries: []Entry{
		{ID: "n2", Addr: "h2:2", Incarnation: 3, State: StateSuspect},
		{ID: "n3", Addr: "h3:3", Incarnation: 1, State: StateDead},
	}})
	hb := Heartbeat{From: "n1", Seq: 42, View: a.View()}
	enc, err := EncodeHeartbeat(hb)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeHeartbeat(enc)
	if err != nil {
		t.Fatalf("decode own encoding: %v", err)
	}
	enc2, err := EncodeHeartbeat(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatalf("round trip not byte-identical:\n %s\n %s", enc, enc2)
	}
}
