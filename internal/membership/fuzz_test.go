package membership

import (
	"bytes"
	"testing"
	"time"
)

// FuzzMembershipWire holds the membership codec and state machine to the
// same standard as the fleet-trace codec (FuzzFleetTraceRoundTrip): any
// payload the decoder accepts must re-encode byte-identically after one
// canonicalizing round trip, and feeding it to a live agent must never
// panic — a byzantine peer controls this input end to end. Both message
// kinds are tried against every input: heartbeats (the POST body) and
// bare views (the GET body and heartbeat reply).
func FuzzMembershipWire(f *testing.F) {
	// Seed corpus: real payloads from a small simulated cluster...
	clock := newFakeClock()
	tr := newMemTransport()
	a1 := newTestAgent(f, clock, tr, "n1", "h1:1", []string{"h2:2"})
	a2 := newTestAgent(f, clock, tr, "n2", "h2:2", []string{"h1:1"})
	beatAll(a1, a2)
	tr.setDown("h2:2", true)
	clock.Advance(150 * time.Millisecond)
	a1.Tick() // n2 dead in n1's view: a view with a tombstone
	if hb, err := EncodeHeartbeat(Heartbeat{From: "n1", Seq: 7, View: a1.View()}); err == nil {
		f.Add(hb)
	}
	if v, err := EncodeView(a1.View()); err == nil {
		f.Add(v)
	}
	if v, err := EncodeView(View{Version: 1, Entries: []Entry{
		{ID: "solo", Addr: "s:1", Incarnation: 1, State: StateAlive},
	}}); err == nil {
		f.Add(v)
	}
	f.Add([]byte(`{"version":0}`))
	// ...and handcrafted near-misses the decoder must reject.
	f.Add([]byte(`{"from":"a","seq":1,"view":{"version":1,"entries":[{"id":"b","addr":"x","incarnation":1,"state":"alive"},{"id":"a","addr":"y","incarnation":1,"state":"alive"}]}}`))
	f.Add([]byte(`{"from":"a","seq":1,"view":{"version":1,"entries":[{"id":"a","addr":"x","incarnation":1,"state":"zombie"}]}}`))
	f.Add([]byte(`{"from":"ghost","seq":1,"view":{"version":1}}`))
	f.Add([]byte(`{"version":1,"entries":[{"id":"a","addr":"","incarnation":1,"state":"dead"}]}`))
	f.Add([]byte(`null`))

	f.Fuzz(func(t *testing.T, data []byte) {
		if hb, err := DecodeHeartbeat(data); err == nil {
			// Accepted heartbeat: canonical re-encode is a fixed point.
			first, err := EncodeHeartbeat(hb)
			if err != nil {
				t.Fatalf("decode-accepted heartbeat refuses to encode: %v", err)
			}
			hb2, err := DecodeHeartbeat(first)
			if err != nil {
				t.Fatalf("canonical heartbeat refuses to decode: %v", err)
			}
			second, err := EncodeHeartbeat(hb2)
			if err != nil {
				t.Fatalf("re-encode failed: %v", err)
			}
			if !bytes.Equal(first, second) {
				t.Fatalf("heartbeat round trip not a fixed point:\n %s\n %s", first, second)
			}
			// And the state machine absorbs it without panicking, from the
			// perspective of a bystander agent AND the named sender (the
			// self-refutation path).
			for _, id := range []string{"bystander", hb.From} {
				a, err := New(Config{ID: id, Addr: "fuzz:1", Now: clock.Now})
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				reply := a.HandleHeartbeat(hb)
				checkCanonicalView(t, reply)
				a.Tick()
				checkCanonicalView(t, a.View())
			}
		}
		if v, err := DecodeView(data); err == nil {
			first, err := EncodeView(v)
			if err != nil {
				t.Fatalf("decode-accepted view refuses to encode: %v", err)
			}
			v2, err := DecodeView(first)
			if err != nil {
				t.Fatalf("canonical view refuses to decode: %v", err)
			}
			second, err := EncodeView(v2)
			if err != nil {
				t.Fatalf("re-encode failed: %v", err)
			}
			if !bytes.Equal(first, second) {
				t.Fatalf("view round trip not a fixed point:\n %s\n %s", first, second)
			}
			// The client-side merge must also stay canonical and
			// idempotent on whatever the decoder let through.
			merged, _ := MergeViews(v, v)
			checkCanonicalView(t, merged)
			if again, changed := MergeViews(merged, v); changed {
				t.Fatalf("self-merge not idempotent: %+v vs %+v", merged, again)
			}
		}
	})
}

// checkCanonicalView asserts a view produced by the state machine always
// satisfies the wire invariants — i.e. it can be served to peers as-is.
func checkCanonicalView(t *testing.T, v View) {
	t.Helper()
	if err := v.validate(); err != nil {
		t.Fatalf("state machine produced a non-canonical view: %v (%+v)", err, v)
	}
}
