package membership

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// State is a member's lease state as one node sees it. The order matters:
// dead > suspect > alive — at equal incarnation the worse state wins a
// merge, so a death observed anywhere spreads everywhere, while "alive"
// gossip can never resurrect a member (only the member itself can, by
// bumping its incarnation — see Agent).
type State string

const (
	StateAlive   State = "alive"
	StateSuspect State = "suspect"
	StateDead    State = "dead"
)

// rank orders states by badness for merge purposes.
func (s State) rank() int {
	switch s {
	case StateAlive:
		return 0
	case StateSuspect:
		return 1
	case StateDead:
		return 2
	}
	return -1
}

func (s State) valid() bool { return s.rank() >= 0 }

// worse reports whether a is a strictly worse (more-failed) state than b.
func worse(a, b State) bool { return a.rank() > b.rank() }

// Entry is one member as seen in a view: identity, dialable address, and
// the (incarnation, state) pair that makes merges conflict-free. A higher
// incarnation always wins wholesale; at equal incarnation the worse state
// wins. Only the member itself ever bumps its incarnation (to refute a
// suspicion or death pinned on it), which is what makes "dead" safe to
// gossip: nobody else can undo it by accident.
type Entry struct {
	ID          string `json:"id"`
	Addr        string `json:"addr"`
	Incarnation uint64 `json:"incarnation"`
	State       State  `json:"state"`
}

// View is one node's current belief about the whole membership, version-
// stamped. Version is per-origin monotonic — it increments every time the
// origin's belief changes — and is NOT comparable across origins; merging
// two nodes' views goes entry-by-entry (MergeViews), never by version.
// Entries are canonically sorted by ID, strictly ascending.
type View struct {
	Version uint64  `json:"version"`
	Entries []Entry `json:"entries,omitempty"`
}

// Heartbeat is the one membership message: "I am <From>, here is
// everything I believe". Piggybacking the full view on every heartbeat is
// the peer-exchange mechanism — a node that can reach any one member
// transitively learns the whole cluster. From must name one of the view's
// entries (a sender always carries its own entry).
type Heartbeat struct {
	From string `json:"from"`
	Seq  uint64 `json:"seq"`
	View View   `json:"view"`
}

// Clone deep-copies a view so callers can hold it without aliasing agent
// internals.
func (v View) Clone() View {
	out := View{Version: v.Version}
	if len(v.Entries) > 0 {
		out.Entries = make([]Entry, len(v.Entries))
		copy(out.Entries, v.Entries)
	}
	return out
}

// Entry returns the entry for a member id, if present.
func (v View) Entry(id string) (Entry, bool) {
	for _, e := range v.Entries {
		if e.ID == id {
			return e, true
		}
	}
	return Entry{}, false
}

// validate enforces the canonical-form invariants decode promises:
// strictly ID-sorted unique entries, non-empty ids and addresses, known
// states. Everything downstream (merge, ring build, fuzz round-trip)
// leans on these, so a payload that violates them is rejected at the
// boundary rather than detonating in the state machine.
func (v View) validate() error {
	prev := ""
	for i, e := range v.Entries {
		if e.ID == "" {
			return fmt.Errorf("membership: entry %d: empty id", i)
		}
		if e.Addr == "" {
			return fmt.Errorf("membership: entry %q: empty addr", e.ID)
		}
		if !e.State.valid() {
			return fmt.Errorf("membership: entry %q: unknown state %q", e.ID, e.State)
		}
		if i > 0 && e.ID <= prev {
			return fmt.Errorf("membership: entries not strictly sorted by id (%q after %q)", e.ID, prev)
		}
		prev = e.ID
	}
	return nil
}

// EncodeView renders a view in canonical form: compact JSON, fixed field
// order, ID-sorted entries. Encoding a decoded payload is a byte-level
// fixed point — the property the wire fuzzer pins.
func EncodeView(v View) ([]byte, error) {
	if err := v.validate(); err != nil {
		return nil, err
	}
	return json.Marshal(v)
}

// DecodeView parses and validates a view payload.
func DecodeView(data []byte) (View, error) {
	var v View
	if err := strictUnmarshal(data, &v); err != nil {
		return View{}, err
	}
	if err := v.validate(); err != nil {
		return View{}, err
	}
	return v, nil
}

// EncodeHeartbeat renders a heartbeat in canonical form.
func EncodeHeartbeat(hb Heartbeat) ([]byte, error) {
	if err := hb.validate(); err != nil {
		return nil, err
	}
	return json.Marshal(hb)
}

// DecodeHeartbeat parses and validates a heartbeat payload.
func DecodeHeartbeat(data []byte) (Heartbeat, error) {
	var hb Heartbeat
	if err := strictUnmarshal(data, &hb); err != nil {
		return Heartbeat{}, err
	}
	if err := hb.validate(); err != nil {
		return Heartbeat{}, err
	}
	return hb, nil
}

func (hb Heartbeat) validate() error {
	if hb.From == "" {
		return fmt.Errorf("membership: heartbeat with empty from")
	}
	if err := hb.View.validate(); err != nil {
		return err
	}
	if _, ok := hb.View.Entry(hb.From); !ok {
		return fmt.Errorf("membership: heartbeat from %q does not carry its own entry", hb.From)
	}
	return nil
}

// strictUnmarshal decodes exactly one JSON value, rejecting unknown
// fields and trailing garbage — the same posture as the fleet-trace
// codec: a chaos replay or a byzantine peer must not be able to smuggle
// state the re-encode would silently drop.
func strictUnmarshal(data []byte, into any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("membership: decode: %w", err)
	}
	var trailing any
	if err := dec.Decode(&trailing); err == nil || trailing != nil {
		return fmt.Errorf("membership: trailing data after payload")
	}
	return nil
}

// MergeViews folds a remote view into a local one without any lease
// bookkeeping — the client-side merge. Per entry: unknown ids are added,
// a higher incarnation wins wholesale, and at equal incarnation the worse
// state wins. That rule is a join on a lattice (commutative, associative,
// idempotent), so any set of clients and servers that exchange views in
// any order converge on the same belief — the fixed point IS the
// membership. Version becomes the pairwise max, which keeps it monotonic
// for change detection but carries no cross-node meaning. The returned
// bool reports whether the merge changed anything.
//
// Agents do NOT use this for their own state: an agent additionally
// refutes its own suspicion and grants leases on direct contact (see
// Agent.HandleHeartbeat). MergeViews is for observers with no self entry.
func MergeViews(local, remote View) (View, bool) {
	out := local.Clone()
	changed := false
	for _, re := range remote.Entries {
		idx := -1
		for i, le := range out.Entries {
			if le.ID == re.ID {
				idx = i
				break
			}
		}
		if idx < 0 {
			out.Entries = append(out.Entries, re)
			changed = true
			continue
		}
		le := out.Entries[idx]
		if re.Incarnation > le.Incarnation ||
			(re.Incarnation == le.Incarnation && worse(re.State, le.State)) {
			if le != re {
				out.Entries[idx] = re
				changed = true
			}
		}
	}
	if remote.Version > out.Version {
		out.Version = remote.Version
		changed = true
	}
	sortEntries(out.Entries)
	return out, changed
}
