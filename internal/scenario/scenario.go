// Package scenario is the environment-scenario engine: a composable
// description language for the dynamic conditions ALERT claims robustness
// against (§6) — phase-switching co-runner contention, thermal/power-cap
// throttling ramps, diurnal and bursty (MMPP-style) arrival processes, and
// spec churn (deadline/accuracy requirements changing mid-stream).
//
// A Spec describes a scenario symbolically; Compile materializes it for a
// platform into a Trace, a per-input sequence of environment ticks that is
//
//   - deterministic: Compile is a pure function of (Spec, platform, length,
//     period, seed) — the same arguments always yield the identical Trace;
//   - replayable: a Trace round-trips through JSON byte-identically
//     (WriteFile/ReadFile), so a recorded trace can be replayed later or on
//     another machine and drive the exact same disturbance sequence;
//   - pluggable: Trace.Source adapts a trace to the contention.Source
//     interface, so internal/sim consumes scenario traces exactly the way
//     it consumes the stock co-runner models.
//
// Every layer above consumes traces through one of those three properties:
// internal/runner replays a trace as its disturbance source and applies its
// spec churn, internal/experiment adds a scenario dimension to constraint
// grids, and cmd/alertload shapes multi-stream load on alert.Server with a
// trace's arrival process.
package scenario

import (
	"fmt"
	"sort"

	"github.com/alert-project/alert/internal/contention"
)

// Spec describes one environment scenario symbolically. The zero value is a
// steady environment: no co-runner, no throttling, closed-loop arrivals, no
// spec churn. Specs are JSON-serializable so custom scenarios can live in
// files next to recorded traces.
type Spec struct {
	// Name identifies the scenario in traces, flags, and reports.
	Name string `json:"name"`
	// Description is a one-line human summary.
	Description string `json:"description,omitempty"`
	// Contention is the phase schedule of co-runner environments, cycled
	// over the stream. Empty means the Default environment throughout.
	Contention []ContentionPhase `json:"contention,omitempty"`
	// Throttle, when set, superimposes thermal/power-cap throttling ramps.
	Throttle *Throttle `json:"throttle,omitempty"`
	// Arrival shapes the request arrival process (load generation only;
	// simulation runs consume inputs back-to-back regardless).
	Arrival Arrival `json:"arrival"`
	// Churn, when set, changes the requirement spec mid-stream.
	Churn *Churn `json:"churn,omitempty"`
}

// ContentionPhase is one segment of the co-runner schedule: Inputs inputs
// spent in the named environment. Within a phase the environment evolves
// under the stock stochastic co-runner model (contention.NewSource); the
// phase boundary switches which co-runner class is present — the paper's
// "repeatedly stopped and then started" jobs, at scenario scale.
type ContentionPhase struct {
	// Inputs is the phase length; it must be positive.
	Inputs int `json:"inputs"`
	// Environment names the co-runner class: "default", "compute", or
	// "memory" (Table 3's run-time environments).
	Environment string `json:"environment"`
}

// Throttle describes a periodic thermal/power-cap throttling ramp: every
// Period inputs the platform's enforceable power ceiling ramps down to
// MinCapFrac of the top cap, holds for the duty window, and ramps back.
// This models sustained-load thermal capping and datacenter power-budget
// clamps — disturbances that, unlike co-runners, act through the power
// ladder itself.
type Throttle struct {
	// Period is the cycle length in inputs; it must be positive.
	Period int `json:"period"`
	// Duty is the fraction of the period spent throttled, in (0, 1].
	Duty float64 `json:"duty"`
	// Ramp is the number of inputs the ceiling takes to ramp down (and,
	// after the duty window, back up). 0 means an instant step.
	Ramp int `json:"ramp,omitempty"`
	// MinCapFrac is the deepest ceiling as a fraction of the platform's top
	// cap, in (0, 1]. The compiled ceiling never goes below the platform's
	// minimum cap.
	MinCapFrac float64 `json:"minCapFrac"`
	// Jitter is the per-input relative noise on the throttle depth,
	// modelling thermal-controller hunting. 0 means a clean ramp.
	Jitter float64 `json:"jitter,omitempty"`
}

// Arrival process kinds.
const (
	// ArrivalClosed issues the next request the moment the previous one
	// completes (closed loop). Gap fields in the compiled trace are zero.
	ArrivalClosed = "closed"
	// ArrivalPeriodic spaces arrivals exactly MeanGapFactor periods apart —
	// the paper's periodic-sensor setting.
	ArrivalPeriodic = "periodic"
	// ArrivalPoisson draws exponential inter-arrival gaps.
	ArrivalPoisson = "poisson"
	// ArrivalMMPP is a two-state Markov-modulated Poisson process: calm
	// stretches at MeanGapFactor interleaved with bursts at BurstGapFactor.
	ArrivalMMPP = "mmpp"
	// ArrivalDiurnal modulates a Poisson process with a sinusoidal rate —
	// a day/night load cycle compressed onto the stream.
	ArrivalDiurnal = "diurnal"
)

// Arrival describes the request arrival process. Gap factors are expressed
// in units of the nominal period (the base deadline), so the same Spec
// scales with the constraint setting it is compiled for.
type Arrival struct {
	// Process is one of the Arrival* constants; "" means ArrivalClosed.
	Process string `json:"process,omitempty"`
	// MeanGapFactor is the mean inter-arrival gap in periods (default 1).
	MeanGapFactor float64 `json:"meanGapFactor,omitempty"`
	// BurstGapFactor is the mean gap while an MMPP burst is active
	// (default MeanGapFactor/4).
	BurstGapFactor float64 `json:"burstGapFactor,omitempty"`
	// BurstInputs and CalmInputs are the mean MMPP sojourn lengths in
	// arrivals (defaults 40 and 120).
	BurstInputs int `json:"burstInputs,omitempty"`
	CalmInputs  int `json:"calmInputs,omitempty"`
	// CycleInputs is the diurnal cycle length in arrivals (default 500).
	CycleInputs int `json:"cycleInputs,omitempty"`
	// Swing is the diurnal rate amplitude in [0, 1) (default 0.6): the
	// instantaneous rate is mean × (1 + Swing·sin).
	Swing float64 `json:"swing,omitempty"`
}

// Churn describes requirement changes mid-stream: every Every inputs the
// active spec advances through the factor lists (cycled independently).
// This is the paper's "user needs change at run time" axis — a deadline
// tightening when the deployment switches from batch to interactive, an
// accuracy goal relaxing when the battery runs low.
type Churn struct {
	// Every is the switch cadence in inputs; it must be positive.
	Every int `json:"every"`
	// DeadlineFactors multiply the base deadline; an empty list (or a 0
	// entry) leaves the deadline unchanged for that phase.
	DeadlineFactors []float64 `json:"deadlineFactors,omitempty"`
	// AccuracyDeltas are added to the base accuracy goal (clamped to
	// [0, 1]); an empty list (or a 0 entry) leaves it unchanged.
	AccuracyDeltas []float64 `json:"accuracyDeltas,omitempty"`
}

// parseEnvironment maps a phase's environment name to the contention
// scenario it stands for.
func parseEnvironment(name string) (contention.Scenario, error) {
	switch name {
	case "", "default", "idle", "none":
		return contention.Default, nil
	case "compute":
		return contention.Compute, nil
	case "memory":
		return contention.Memory, nil
	default:
		return contention.Default, fmt.Errorf("scenario: unknown environment %q", name)
	}
}

// Validate reports the first structural problem with the spec, or nil.
func (s Spec) Validate() error {
	for _, p := range s.Contention {
		if p.Inputs <= 0 {
			return fmt.Errorf("scenario %q: contention phase length %d must be positive", s.Name, p.Inputs)
		}
		if _, err := parseEnvironment(p.Environment); err != nil {
			return err
		}
	}
	if t := s.Throttle; t != nil {
		if t.Period <= 0 {
			return fmt.Errorf("scenario %q: throttle period %d must be positive", s.Name, t.Period)
		}
		if t.Duty <= 0 || t.Duty > 1 {
			return fmt.Errorf("scenario %q: throttle duty %g outside (0, 1]", s.Name, t.Duty)
		}
		if t.MinCapFrac <= 0 || t.MinCapFrac > 1 {
			return fmt.Errorf("scenario %q: throttle minCapFrac %g outside (0, 1]", s.Name, t.MinCapFrac)
		}
		if t.Ramp < 0 || t.Jitter < 0 {
			return fmt.Errorf("scenario %q: throttle ramp/jitter must be non-negative", s.Name)
		}
	}
	switch s.Arrival.Process {
	case "", ArrivalClosed, ArrivalPeriodic, ArrivalPoisson, ArrivalMMPP, ArrivalDiurnal:
	default:
		return fmt.Errorf("scenario %q: unknown arrival process %q", s.Name, s.Arrival.Process)
	}
	if s.Arrival.Swing < 0 || s.Arrival.Swing >= 1 {
		return fmt.Errorf("scenario %q: arrival swing %g outside [0, 1)", s.Name, s.Arrival.Swing)
	}
	if c := s.Churn; c != nil {
		if c.Every <= 0 {
			return fmt.Errorf("scenario %q: churn cadence %d must be positive", s.Name, c.Every)
		}
		for _, f := range c.DeadlineFactors {
			if f < 0 {
				return fmt.Errorf("scenario %q: negative deadline factor %g", s.Name, f)
			}
		}
	}
	return nil
}

// HeaviestEnvironment returns the most intrusive co-runner environment the
// scenario ever enters. Constraint-grid builders use it to leave the same
// achievability headroom the paper's setup leaves (grids only contain
// settings some scheme can satisfy).
func (s Spec) HeaviestEnvironment() contention.Scenario {
	heaviest := contention.Default
	for _, p := range s.Contention {
		env, err := parseEnvironment(p.Environment)
		if err != nil {
			continue
		}
		if env > heaviest {
			heaviest = env
		}
	}
	return heaviest
}

// builtin is the named-scenario registry backing ByName and Names.
var builtin = map[string]Spec{
	"steady": {
		Name:        "steady",
		Description: "no co-runner, periodic arrivals — the profiled regime",
		Arrival:     Arrival{Process: ArrivalPeriodic},
	},
	// Built-in dynamics are paced so that even the shortest evaluation
	// stream (the quick grid's 120 inputs) experiences a transition: every
	// contention schedule changes phase, the thermal ramp enters and exits
	// its duty window, and the diurnal swing moves through at least half a
	// cycle within the first 120 inputs. Figure 9's reproducible burst
	// (inputs ~46–119 of 300) sets the granularity precedent; scenario
	// tests pin phased/thermal shapes, and the experiment sweep test
	// guards against rows degenerating into the steady environment.
	"phased": {
		Name:        "phased",
		Description: "co-runner classes switching in phases (idle → compute → idle → memory)",
		Contention: []ContentionPhase{
			{Inputs: 45, Environment: "default"},
			{Inputs: 70, Environment: "compute"},
			{Inputs: 30, Environment: "default"},
			{Inputs: 70, Environment: "memory"},
		},
		Arrival: Arrival{Process: ArrivalPeriodic},
	},
	"thermal": {
		Name:        "thermal",
		Description: "periodic thermal/power-cap throttling ramps under an otherwise idle machine",
		Throttle:    &Throttle{Period: 160, Duty: 0.45, Ramp: 25, MinCapFrac: 0.55, Jitter: 0.05},
		Arrival:     Arrival{Process: ArrivalPeriodic},
	},
	"bursty": {
		Name:        "bursty",
		Description: "MMPP bursty arrivals with compute co-runner phases riding the bursts",
		Contention: []ContentionPhase{
			{Inputs: 60, Environment: "default"},
			{Inputs: 40, Environment: "compute"},
		},
		Arrival: Arrival{
			Process:        ArrivalMMPP,
			MeanGapFactor:  1.6,
			BurstGapFactor: 0.35,
			BurstInputs:    30,
			CalmInputs:     70,
		},
	},
	"diurnal": {
		Name:        "diurnal",
		Description: "sinusoidal day/night arrival rate over mixed co-runner phases",
		Contention: []ContentionPhase{
			{Inputs: 80, Environment: "default"},
			{Inputs: 50, Environment: "memory"},
		},
		Arrival: Arrival{
			Process:       ArrivalDiurnal,
			MeanGapFactor: 1.4,
			CycleInputs:   240,
			Swing:         0.7,
		},
	},
	"churn": {
		Name:        "churn",
		Description: "deadline and accuracy requirements changing every 90 inputs",
		Churn: &Churn{
			Every:           90,
			DeadlineFactors: []float64{1, 0.7, 1.5},
			AccuracyDeltas:  []float64{0, -0.03, 0.015},
		},
		Arrival: Arrival{Process: ArrivalPeriodic},
	},
}

// Names lists the built-in scenarios in sorted order.
func Names() []string {
	out := make([]string, 0, len(builtin))
	for name := range builtin {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ByName returns the built-in scenario spec with the given name.
func ByName(name string) (Spec, error) {
	s, ok := builtin[name]
	if !ok {
		return Spec{}, fmt.Errorf("scenario: unknown scenario %q (have %v)", name, Names())
	}
	return s, nil
}
