package scenario

// Fleet scenarios: the chaos layer above per-stream Specs. A FleetSpec
// describes what happens to a whole serving cluster while every stream
// replays the same per-stream scenario — correlated flash crowds that hit a
// subset of streams at once, node kill/restart schedules, and byzantine
// client phases firing malformed or hostile traffic at the nodes. Like
// Spec/Trace, the symbolic FleetSpec compiles (CompileFleet) into a fully
// materialized FleetTrace that is
//
//   - deterministic: CompileFleet is a pure function of (FleetSpec,
//     platform, inputs, period, seed) — crowd memberships, event order, and
//     byzantine payload seeds are all drawn from seed-derived substreams;
//   - replayable: a FleetTrace round-trips through JSON byte-identically
//     (EncodeFleet/DecodeFleet are a fixed point on bytes), so a recorded
//     fleet run is a stable artifact CI can diff across replays;
//   - checkable: internal/chaos replays a FleetTrace against a live cluster
//     while asserting machine-checked invariants (no lost accepted request,
//     balanced export/import gauges, single ownership, determinism where it
//     is defined).
//
// The per-stream environment rides along unchanged: FleetTrace.Base is the
// ordinary compiled Trace every stream replays (with its own workload noise
// seed, exactly like cmd/alertload), compiled from the same seed as a
// non-fleet run so the solo reference controller sees identical inputs.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/alert-project/alert/internal/mathx"
	"github.com/alert-project/alert/internal/platform"
)

// Node event kinds.
const (
	// EventKill takes a node down at the start of the round. A graceful
	// kill drains and exports every session first (nothing is lost); a hard
	// kill closes the node where it stands, and streams restart from their
	// last checkpoint (losing whatever observed since it).
	EventKill = "kill"
	// EventRestart brings a previously killed node back (empty stream
	// table, same identity and address) at the start of the round.
	EventRestart = "restart"
)

// Byzantine request kinds: the hostile traffic a byzantine phase fires at
// the cluster. Every kind must be rejected cleanly (4xx, never a panic or
// a corrupted stream table).
const (
	// ByzGarbageJSON posts unparseable bytes to POST /v1/decide.
	ByzGarbageJSON = "garbage-json"
	// ByzTruncatedSnapshot PUTs a truncated/garbled base64 snapshot body to
	// PUT /v1/streams/{id}.
	ByzTruncatedSnapshot = "truncated-snapshot"
	// ByzBadObjective posts a structurally valid decide with an unknown
	// objective.
	ByzBadObjective = "bad-objective"
	// ByzOversize posts a body larger than the server's request-body bound.
	ByzOversize = "oversize"
	// ByzSlow trickles a valid decide body byte-by-byte — a slow client
	// holding a connection while the fleet is busy.
	ByzSlow = "slow"
)

// ByzKinds lists every byzantine request kind.
var ByzKinds = []string{ByzGarbageJSON, ByzTruncatedSnapshot, ByzBadObjective, ByzOversize, ByzSlow}

// FlashCrowd is a correlated load surge: for Inputs rounds starting at
// AtInput, a randomly chosen (but seed-deterministic) fraction of all
// streams sees its inter-arrival gaps multiplied by GapFactor. Factors
// below 1 are a surge — many streams spiking together, the way real flash
// crowds hit every replica of a popular shard at once.
type FlashCrowd struct {
	// AtInput is the round the crowd arrives; Inputs is how long it stays.
	AtInput int `json:"at"`
	Inputs  int `json:"inputs"`
	// StreamFraction in (0, 1] is the fraction of streams caught in the
	// crowd; membership is drawn once per crowd from the compile seed.
	StreamFraction float64 `json:"streamFraction"`
	// GapFactor (> 0) multiplies the affected streams' arrival gaps while
	// the crowd is active; < 1 compresses gaps (more load).
	GapFactor float64 `json:"gapFactor"`
}

// NodeEvent is one entry in the failure schedule: kill or restart node
// Node at the start of round AtInput.
type NodeEvent struct {
	AtInput int `json:"at"`
	// Node indexes the fleet's nodes, [0, FleetSpec.Nodes).
	Node int `json:"node"`
	// Kind is EventKill or EventRestart.
	Kind string `json:"kind"`
	// Graceful applies to kills: drain-and-export every session before
	// going down (lossless) instead of dying where the node stands.
	Graceful bool `json:"graceful,omitempty"`
}

// ByzantinePhase is a stretch of hostile client traffic: for Inputs rounds
// starting at AtInput, PerRound byzantine requests per round are fired at
// seed-chosen nodes, drawn from Kinds (all kinds when empty).
type ByzantinePhase struct {
	AtInput int `json:"at"`
	Inputs  int `json:"inputs"`
	// PerRound is how many byzantine requests fire each round (default 1).
	PerRound int `json:"perRound,omitempty"`
	// Kinds restricts the request kinds; empty means all of ByzKinds.
	Kinds []string `json:"kinds,omitempty"`
}

// FleetSpec describes a fleet-scale chaos scenario symbolically. Like Spec
// it is JSON-serializable so custom fleet scenarios can live in files.
type FleetSpec struct {
	// Name identifies the fleet scenario in traces and reports.
	Name string `json:"name"`
	// Description is a one-line human summary.
	Description string `json:"description,omitempty"`
	// Streams and Nodes size the fleet: how many inference streams drive
	// the cluster, and how many serving nodes it starts with.
	Streams int `json:"streams"`
	Nodes   int `json:"nodes"`
	// Base is the per-stream environment scenario every stream replays.
	Base Spec `json:"base"`
	// CheckpointEvery is the checkpoint cadence in rounds: at the start of
	// every round divisible by it, the harness snapshots every live session
	// (without disturbing it). A hard kill aligned to a checkpoint round is
	// therefore lossless. 0 means 25.
	CheckpointEvery int `json:"checkpointEvery,omitempty"`
	// Unmanaged switches the harness from orchestrated failure handling to
	// self-healing: a kill just stops the process, and the cluster itself —
	// membership leases, replicated checkpoints, successor restores — must
	// absorb it. Unmanaged schedules allow only hard kills: no restarts and
	// no graceful drains, because both are orchestrator moves by definition.
	Unmanaged bool `json:"unmanaged,omitempty"`
	// FlashCrowds, NodeEvents, and Byzantine are the chaos layers; all are
	// optional.
	FlashCrowds []FlashCrowd     `json:"flashCrowds,omitempty"`
	NodeEvents  []NodeEvent      `json:"nodeEvents,omitempty"`
	Byzantine   []ByzantinePhase `json:"byzantine,omitempty"`
}

// checkpointEvery resolves the checkpoint cadence default.
func (f FleetSpec) checkpointEvery() int {
	if f.CheckpointEvery <= 0 {
		return 25
	}
	return f.CheckpointEvery
}

// Validate reports the first structural problem with the fleet spec, or
// nil. The node-event schedule is validated as a program: kills must hit
// live nodes, restarts dead ones, and at least one node must survive every
// kill (a fleet with zero live nodes has nowhere to route anything).
func (f FleetSpec) Validate() error {
	if f.Streams <= 0 {
		return fmt.Errorf("fleet %q: streams %d must be positive", f.Name, f.Streams)
	}
	if f.Nodes <= 0 {
		return fmt.Errorf("fleet %q: nodes %d must be positive", f.Name, f.Nodes)
	}
	if f.CheckpointEvery < 0 {
		return fmt.Errorf("fleet %q: checkpointEvery %d must be non-negative", f.Name, f.CheckpointEvery)
	}
	if err := f.Base.Validate(); err != nil {
		return fmt.Errorf("fleet %q: base: %w", f.Name, err)
	}
	for i, c := range f.FlashCrowds {
		if c.AtInput < 0 || c.Inputs <= 0 {
			return fmt.Errorf("fleet %q: flash crowd %d: at %d / inputs %d invalid", f.Name, i, c.AtInput, c.Inputs)
		}
		if c.StreamFraction <= 0 || c.StreamFraction > 1 {
			return fmt.Errorf("fleet %q: flash crowd %d: streamFraction %g outside (0, 1]", f.Name, i, c.StreamFraction)
		}
		if c.GapFactor <= 0 {
			return fmt.Errorf("fleet %q: flash crowd %d: gapFactor %g must be positive", f.Name, i, c.GapFactor)
		}
	}
	if err := validateEvents(f.Name, f.NodeEvents, f.Nodes); err != nil {
		return err
	}
	if f.Unmanaged {
		if err := validateUnmanaged(f.Name, f.NodeEvents); err != nil {
			return err
		}
	}
	for i, b := range f.Byzantine {
		if b.AtInput < 0 || b.Inputs <= 0 {
			return fmt.Errorf("fleet %q: byzantine phase %d: at %d / inputs %d invalid", f.Name, i, b.AtInput, b.Inputs)
		}
		if b.PerRound < 0 {
			return fmt.Errorf("fleet %q: byzantine phase %d: perRound %d must be non-negative", f.Name, i, b.PerRound)
		}
		for _, k := range b.Kinds {
			if !knownByzKind(k) {
				return fmt.Errorf("fleet %q: byzantine phase %d: unknown kind %q (have %v)", f.Name, i, k, ByzKinds)
			}
		}
	}
	return nil
}

// validateEvents type-checks a node-event schedule: sorted replay order,
// legal kinds, and a liveness program that never kills a dead node,
// restarts a live one, or leaves zero nodes standing.
func validateEvents(name string, events []NodeEvent, nodes int) error {
	alive := make([]bool, nodes)
	for i := range alive {
		alive[i] = true
	}
	liveCount := nodes
	// Events are replayed in schedule order; validate in the same order.
	ordered := append([]NodeEvent(nil), events...)
	sortEvents(ordered)
	for i, e := range ordered {
		if e.AtInput < 0 {
			return fmt.Errorf("fleet %q: node event %d: at %d must be non-negative", name, i, e.AtInput)
		}
		if e.Node < 0 || e.Node >= nodes {
			return fmt.Errorf("fleet %q: node event %d: node %d outside [0, %d)", name, i, e.Node, nodes)
		}
		switch e.Kind {
		case EventKill:
			if !alive[e.Node] {
				return fmt.Errorf("fleet %q: node event %d kills node %d, which is already down", name, i, e.Node)
			}
			if liveCount == 1 {
				return fmt.Errorf("fleet %q: node event %d would kill the last live node", name, i)
			}
			alive[e.Node] = false
			liveCount--
		case EventRestart:
			if alive[e.Node] {
				return fmt.Errorf("fleet %q: node event %d restarts node %d, which is already live", name, i, e.Node)
			}
			alive[e.Node] = true
			liveCount++
		default:
			return fmt.Errorf("fleet %q: node event %d: unknown kind %q", name, i, e.Kind)
		}
	}
	return nil
}

// validateUnmanaged rejects schedule entries that presuppose an
// orchestrator: restarts (somebody must relaunch the process) and graceful
// kills (somebody must drain it). An unmanaged drill is kill -9 or nothing.
func validateUnmanaged(name string, events []NodeEvent) error {
	for i, e := range events {
		if e.Kind == EventRestart {
			return fmt.Errorf("fleet %q: unmanaged schedules forbid restarts (event %d)", name, i)
		}
		if e.Graceful {
			return fmt.Errorf("fleet %q: unmanaged schedules forbid graceful kills (event %d)", name, i)
		}
	}
	return nil
}

// sortEvents orders a schedule for replay: by round, then restarts before
// kills (a node bouncing within one round comes back before the next
// casualty), then by node for a total order.
func sortEvents(events []NodeEvent) {
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].AtInput != events[j].AtInput {
			return events[i].AtInput < events[j].AtInput
		}
		if events[i].Kind != events[j].Kind {
			return events[i].Kind == EventRestart
		}
		return events[i].Node < events[j].Node
	})
}

func knownByzKind(k string) bool {
	for _, known := range ByzKinds {
		if k == known {
			return true
		}
	}
	return false
}

// CompiledCrowd is a flash crowd with its membership resolved: the sorted
// stream ids caught in the surge and the half-open round interval it spans.
type CompiledCrowd struct {
	From      int     `json:"from"`
	Until     int     `json:"until"`
	GapFactor float64 `json:"gapFactor"`
	Members   []int   `json:"members"`
}

// ByzRequest is one compiled byzantine request: fire a Kind request at node
// Node at the start of round AtInput, with Seed driving the payload bytes.
// Node indexes the configured fleet; if that node is down when the request
// fires, the harness retargets the next live node deterministically.
type ByzRequest struct {
	AtInput int    `json:"at"`
	Kind    string `json:"kind"`
	Node    int    `json:"node"`
	Seed    int64  `json:"seed"`
}

// FleetTrace is a compiled, materialized fleet scenario: the shared
// per-stream environment trace plus the resolved chaos schedule. Like
// Trace it is immutable once compiled and round-trips through JSON
// byte-identically.
type FleetTrace struct {
	// Fleet is the FleetSpec.Name this trace was compiled from.
	Fleet string `json:"fleet"`
	// Seed is the compile seed; (FleetSpec, platform, inputs, period, Seed)
	// fully determine everything below.
	Seed int64 `json:"seed"`
	// Streams and Nodes are copied from the spec.
	Streams int `json:"streams"`
	Nodes   int `json:"nodes"`
	// CheckpointEvery is the resolved checkpoint cadence in rounds.
	CheckpointEvery int `json:"checkpointEvery"`
	// Unmanaged marks a self-healing drill: kills are absorbed by the
	// cluster's own membership and recovery machinery, never the harness.
	Unmanaged bool `json:"unmanaged,omitempty"`
	// Base is the per-stream environment trace, compiled from the same seed
	// as a non-fleet run of the base scenario (so the solo reference
	// controller replays identical inputs).
	Base *Trace `json:"base"`
	// Crowds, Events, and Byz are the resolved chaos schedule, each sorted
	// in replay order.
	Crowds []CompiledCrowd `json:"crowds,omitempty"`
	Events []NodeEvent     `json:"events,omitempty"`
	Byz    []ByzRequest    `json:"byz,omitempty"`
}

// Len returns the number of rounds (inputs per stream) in the fleet trace.
func (t *FleetTrace) Len() int {
	if t.Base == nil {
		return 0
	}
	return t.Base.Len()
}

// GapScale returns the arrival-gap multiplier for a stream at a round: the
// product of every active crowd the stream belongs to (1 outside crowds).
func (t *FleetTrace) GapScale(stream, input int) float64 {
	scale := 1.0
	for _, c := range t.Crowds {
		if input < c.From || input >= c.Until {
			continue
		}
		// Members is sorted; crowds are small relative to fleets, so a
		// binary search keeps the per-input cost negligible.
		i := sort.SearchInts(c.Members, stream)
		if i < len(c.Members) && c.Members[i] == stream {
			scale *= c.GapFactor
		}
	}
	return scale
}

// EventsAt returns the node events scheduled for the start of a round, in
// replay order (Events is kept sorted by CompileFleet and DecodeFleet).
func (t *FleetTrace) EventsAt(input int) []NodeEvent {
	lo := sort.Search(len(t.Events), func(i int) bool { return t.Events[i].AtInput >= input })
	hi := lo
	for hi < len(t.Events) && t.Events[hi].AtInput == input {
		hi++
	}
	return t.Events[lo:hi]
}

// ByzAt returns the byzantine requests scheduled for the start of a round.
func (t *FleetTrace) ByzAt(input int) []ByzRequest {
	lo := sort.Search(len(t.Byz), func(i int) bool { return t.Byz[i].AtInput >= input })
	hi := lo
	for hi < len(t.Byz) && t.Byz[hi].AtInput == input {
		hi++
	}
	return t.Byz[lo:hi]
}

// CheckpointAt reports whether round input opens with a fleet-wide session
// checkpoint. Round 0 does not: there is nothing to snapshot yet.
func (t *FleetTrace) CheckpointAt(input int) bool {
	return input > 0 && t.CheckpointEvery > 0 && input%t.CheckpointEvery == 0
}

// CompileFleet materializes a fleet scenario: the base per-stream trace
// (compiled with the same seed, so it matches a non-fleet compile of the
// base spec), crowd memberships, the validated event schedule, and the
// byzantine request stream. CompileFleet is pure: the same arguments always
// produce the identical FleetTrace, with each stochastic component drawing
// from its own seed-derived substream.
func CompileFleet(spec FleetSpec, plat *platform.Platform, inputs int, period float64, seed int64) (*FleetTrace, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	for _, e := range spec.NodeEvents {
		if e.AtInput >= inputs {
			return nil, fmt.Errorf("fleet %q: node event at round %d is beyond the %d-round trace", spec.Name, e.AtInput, inputs)
		}
	}
	base, err := Compile(spec.Base, plat, inputs, period, seed)
	if err != nil {
		return nil, err
	}

	// Independent substreams per chaos component, derived in a fixed order
	// (mirrors Compile's own substream discipline).
	root := mathx.NewRand(seed)
	crowdRng := root.Split()
	byzRng := root.Split()

	tr := &FleetTrace{
		Fleet:           spec.Name,
		Seed:            seed,
		Streams:         spec.Streams,
		Nodes:           spec.Nodes,
		CheckpointEvery: spec.checkpointEvery(),
		Unmanaged:       spec.Unmanaged,
		Base:            base,
	}

	for _, c := range spec.FlashCrowds {
		k := int(c.StreamFraction*float64(spec.Streams) + 0.5)
		if k < 1 {
			k = 1
		}
		if k > spec.Streams {
			k = spec.Streams
		}
		members := append([]int(nil), crowdRng.Perm(spec.Streams)[:k]...)
		sort.Ints(members)
		until := c.AtInput + c.Inputs
		if until > inputs {
			until = inputs
		}
		tr.Crowds = append(tr.Crowds, CompiledCrowd{
			From:      c.AtInput,
			Until:     until,
			GapFactor: c.GapFactor,
			Members:   members,
		})
	}

	tr.Events = append([]NodeEvent(nil), spec.NodeEvents...)
	sortEvents(tr.Events)

	for _, b := range spec.Byzantine {
		per := b.PerRound
		if per == 0 {
			per = 1
		}
		kinds := b.Kinds
		if len(kinds) == 0 {
			kinds = ByzKinds
		}
		until := b.AtInput + b.Inputs
		if until > inputs {
			until = inputs
		}
		for r := b.AtInput; r < until; r++ {
			for j := 0; j < per; j++ {
				tr.Byz = append(tr.Byz, ByzRequest{
					AtInput: r,
					Kind:    kinds[byzRng.Intn(len(kinds))],
					Node:    byzRng.Intn(spec.Nodes),
					Seed:    byzRng.Int63(),
				})
			}
		}
	}
	sort.SliceStable(tr.Byz, func(i, j int) bool { return tr.Byz[i].AtInput < tr.Byz[j].AtInput })
	return tr, nil
}

// EncodeFleet writes the fleet trace as indented JSON. Like Trace.Encode it
// is deterministic and a fixed point: encode → decode → encode is the
// identity on bytes, which is what lets CI diff two same-seed chaos runs.
func (t *FleetTrace) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t)
}

// DecodeFleet reads a fleet trace written by Encode, revalidating the
// chaos schedule so a hand-edited (or fuzzed) file cannot smuggle an
// illegal program into a replay.
func DecodeFleet(r io.Reader) (*FleetTrace, error) {
	var t FleetTrace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("scenario: decoding fleet trace: %w", err)
	}
	if t.Streams <= 0 || t.Nodes <= 0 {
		return nil, fmt.Errorf("scenario: fleet trace needs positive streams/nodes, got %d/%d", t.Streams, t.Nodes)
	}
	if t.CheckpointEvery <= 0 {
		return nil, fmt.Errorf("scenario: fleet trace checkpointEvery %d must be positive", t.CheckpointEvery)
	}
	if t.Base == nil {
		return nil, fmt.Errorf("scenario: fleet trace has no base trace")
	}
	for i, tick := range t.Base.Ticks {
		if tick.Slowdown < 1 {
			return nil, fmt.Errorf("scenario: fleet base tick %d has slowdown %g < 1", i, tick.Slowdown)
		}
	}
	for i, c := range t.Crowds {
		if c.From < 0 || c.Until < c.From || c.GapFactor <= 0 {
			return nil, fmt.Errorf("scenario: fleet crowd %d has invalid shape", i)
		}
		if !sort.IntsAreSorted(c.Members) {
			return nil, fmt.Errorf("scenario: fleet crowd %d members not sorted", i)
		}
		for _, m := range c.Members {
			if m < 0 || m >= t.Streams {
				return nil, fmt.Errorf("scenario: fleet crowd %d member %d outside [0, %d)", i, m, t.Streams)
			}
		}
	}
	if !sort.SliceIsSorted(t.Events, func(i, j int) bool {
		return t.Events[i].AtInput < t.Events[j].AtInput
	}) {
		return nil, fmt.Errorf("scenario: fleet events not sorted by round")
	}
	if err := validateEvents(t.Fleet, t.Events, t.Nodes); err != nil {
		return nil, err
	}
	if t.Unmanaged {
		if err := validateUnmanaged(t.Fleet, t.Events); err != nil {
			return nil, err
		}
	}
	for i, b := range t.Byz {
		if b.AtInput < 0 || !knownByzKind(b.Kind) || b.Node < 0 || b.Node >= t.Nodes {
			return nil, fmt.Errorf("scenario: fleet byz request %d invalid", i)
		}
	}
	if !sort.SliceIsSorted(t.Byz, func(i, j int) bool { return t.Byz[i].AtInput < t.Byz[j].AtInput }) {
		return nil, fmt.Errorf("scenario: fleet byz requests not sorted by round")
	}
	return &t, nil
}

// WriteFile records the fleet trace at path.
func (t *FleetTrace) WriteFile(path string) error {
	var buf bytes.Buffer
	if err := t.Encode(&buf); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// ReadFleetFile loads a fleet trace recorded by WriteFile.
func ReadFleetFile(path string) (*FleetTrace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeFleet(f)
}

// DefaultFleet builds the stock chaos fleet over a named built-in
// scenario: kill/restart cycles alternating graceful and checkpoint-
// aligned hard kills walking round-robin over the nodes, one flash crowd
// surging half the streams mid-run, and a byzantine phase overlapping the
// first failure. killEvery is the rounds between kills (0 disables
// failures); each killed node restarts restartAfter rounds later (0 means
// killEvery/2). The schedule is clamped so every killed node restarts
// within the trace.
func DefaultFleet(base Spec, streams, nodes, inputs, killEvery, restartAfter int) (FleetSpec, error) {
	spec := FleetSpec{
		Name:        "chaos-" + base.Name,
		Description: "kill/restart cycles, flash crowd, and byzantine clients over " + base.Name,
		Streams:     streams,
		Nodes:       nodes,
		Base:        base,
	}
	if killEvery > 0 {
		spec.CheckpointEvery = killEvery
		if restartAfter <= 0 {
			restartAfter = killEvery / 2
		}
		if restartAfter < 1 {
			restartAfter = 1
		}
		victim := 0
		cycle := 0
		for at := killEvery; at+restartAfter < inputs; at += killEvery {
			spec.NodeEvents = append(spec.NodeEvents,
				// Even cycles die gracefully (drain + export); odd cycles die
				// hard exactly on a checkpoint round, so the restore-from-
				// last-checkpoint is still lossless. Both flavors must keep
				// every invariant green.
				NodeEvent{AtInput: at, Node: victim, Kind: EventKill, Graceful: cycle%2 == 0},
				NodeEvent{AtInput: at + restartAfter, Node: victim, Kind: EventRestart},
			)
			victim = (victim + 1) % nodes
			cycle++
		}
	}
	if inputs >= 8 {
		spec.FlashCrowds = []FlashCrowd{{
			AtInput:        inputs / 4,
			Inputs:         inputs / 4,
			StreamFraction: 0.5,
			GapFactor:      0.25,
		}}
		spec.Byzantine = []ByzantinePhase{{
			AtInput:  inputs / 3,
			Inputs:   inputs / 4,
			PerRound: 1,
		}}
	}
	if err := spec.Validate(); err != nil {
		return FleetSpec{}, err
	}
	return spec, nil
}

// DefaultUnmanagedFleet builds the stock self-healing drill: hard kills
// only, no restarts, each aligned to a checkpoint round (so the replicated
// checkpoint the successor restores from is current and the drill stays
// deterministic), walking over the nodes until one survivor remains.
// killEvery is the rounds between kills (0 disables them) and doubles as
// the checkpoint/replication cadence. The flash crowd and byzantine phase
// from DefaultFleet ride along, so convergence happens under load and
// hostile traffic, not in a quiet room.
func DefaultUnmanagedFleet(base Spec, streams, nodes, inputs, killEvery int) (FleetSpec, error) {
	spec := FleetSpec{
		Name:        "unmanaged-" + base.Name,
		Description: "self-healing drill: unmanaged hard kills, flash crowd, and byzantine clients over " + base.Name,
		Streams:     streams,
		Nodes:       nodes,
		Base:        base,
		Unmanaged:   true,
	}
	if killEvery > 0 {
		spec.CheckpointEvery = killEvery
		victim := 0
		for at := killEvery; at < inputs && victim < nodes-1; at += killEvery {
			spec.NodeEvents = append(spec.NodeEvents,
				NodeEvent{AtInput: at, Node: victim, Kind: EventKill})
			victim++
		}
	}
	if inputs >= 8 {
		spec.FlashCrowds = []FlashCrowd{{
			AtInput:        inputs / 4,
			Inputs:         inputs / 4,
			StreamFraction: 0.5,
			GapFactor:      0.25,
		}}
		spec.Byzantine = []ByzantinePhase{{
			AtInput:  inputs / 3,
			Inputs:   inputs / 4,
			PerRound: 1,
		}}
	}
	if err := spec.Validate(); err != nil {
		return FleetSpec{}, err
	}
	return spec, nil
}
