package scenario

import (
	"bytes"
	"path/filepath"
	"testing"

	"github.com/alert-project/alert/internal/platform"
)

func testFleetSpec(t *testing.T) FleetSpec {
	t.Helper()
	base, err := ByName("bursty")
	if err != nil {
		t.Fatal(err)
	}
	return FleetSpec{
		Name:            "test-fleet",
		Streams:         8,
		Nodes:           3,
		Base:            base,
		CheckpointEvery: 20,
		FlashCrowds: []FlashCrowd{
			{AtInput: 30, Inputs: 40, StreamFraction: 0.5, GapFactor: 0.2},
			{AtInput: 50, Inputs: 10, StreamFraction: 0.25, GapFactor: 0.5},
		},
		NodeEvents: []NodeEvent{
			{AtInput: 40, Node: 1, Kind: EventKill, Graceful: true},
			{AtInput: 60, Node: 1, Kind: EventRestart},
			{AtInput: 80, Node: 0, Kind: EventKill},
			{AtInput: 100, Node: 0, Kind: EventRestart},
		},
		Byzantine: []ByzantinePhase{{AtInput: 45, Inputs: 20, PerRound: 2}},
	}
}

// TestCompileFleetDeterministic: the whole point — same arguments, same
// trace, byte for byte; different seeds move the stochastic parts.
func TestCompileFleetDeterministic(t *testing.T) {
	spec := testFleetSpec(t)
	plat := platform.CPU1()
	a, err := CompileFleet(spec, plat, 120, 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompileFleet(spec, plat, 120, 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	var ab, bb bytes.Buffer
	if err := a.Encode(&ab); err != nil {
		t.Fatal(err)
	}
	if err := b.Encode(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
		t.Fatal("same seed compiled different fleet traces")
	}

	c, err := CompileFleet(spec, plat, 120, 0.1, 8)
	if err != nil {
		t.Fatal(err)
	}
	var cb bytes.Buffer
	if err := c.Encode(&cb); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ab.Bytes(), cb.Bytes()) {
		t.Fatal("different seeds compiled identical fleet traces")
	}
}

// TestFleetBaseMatchesPlainCompile: the fleet's base trace must equal a
// non-fleet compile of the base spec with the same seed — the property that
// makes the solo reference controller in the chaos harness replay exactly
// the inputs a plain alertload run would see.
func TestFleetBaseMatchesPlainCompile(t *testing.T) {
	spec := testFleetSpec(t)
	plat := platform.CPU1()
	ft, err := CompileFleet(spec, plat, 120, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Compile(spec.Base, plat, 120, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := ft.Base.Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := plain.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("fleet base trace differs from a plain compile at the same seed")
	}
}

// TestFleetRoundTrip: WriteFile/ReadFleetFile must be byte-identical, and
// re-encoding the decoded trace must reproduce the file exactly (the fixed
// point CI's replay diff rests on).
func TestFleetRoundTrip(t *testing.T) {
	spec := testFleetSpec(t)
	ft, err := CompileFleet(spec, platform.CPU1(), 120, 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fleet.json")
	if err := ft.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFleetFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var orig, again bytes.Buffer
	if err := ft.Encode(&orig); err != nil {
		t.Fatal(err)
	}
	if err := back.Encode(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig.Bytes(), again.Bytes()) {
		t.Fatal("fleet trace does not round-trip byte-identically")
	}
}

// TestFleetGapScale: crowd membership is a strict subset, members see the
// compounded factor inside the window and nothing outside it.
func TestFleetGapScale(t *testing.T) {
	spec := testFleetSpec(t)
	ft, err := CompileFleet(spec, platform.CPU1(), 120, 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(ft.Crowds) != 2 {
		t.Fatalf("compiled %d crowds, want 2", len(ft.Crowds))
	}
	first := ft.Crowds[0]
	if len(first.Members) != 4 { // 0.5 of 8 streams
		t.Fatalf("crowd 0 has %d members, want 4", len(first.Members))
	}
	member := first.Members[0]
	outsider := -1
	for s := 0; s < spec.Streams; s++ {
		in := false
		for _, m := range first.Members {
			if m == s {
				in = true
			}
		}
		if !in {
			outsider = s
			break
		}
	}
	if outsider < 0 {
		t.Fatal("crowd 0 caught every stream; fraction 0.5 should leave outsiders")
	}
	if got := ft.GapScale(member, first.From); got != first.GapFactor {
		t.Errorf("member scale inside crowd = %g, want %g", got, first.GapFactor)
	}
	if got := ft.GapScale(member, first.Until); got != 1 {
		t.Errorf("member scale after crowd = %g, want 1", got)
	}
	if got := ft.GapScale(outsider, first.From); got != 1 {
		t.Errorf("outsider scale inside crowd = %g, want 1", got)
	}
	// Rounds where both crowds are active compound for double members.
	for _, m := range ft.Crowds[1].Members {
		inFirst := false
		for _, f := range first.Members {
			if f == m {
				inFirst = true
			}
		}
		if inFirst {
			want := first.GapFactor * ft.Crowds[1].GapFactor
			if got := ft.GapScale(m, 55); got != want {
				t.Errorf("double member scale = %g, want %g", got, want)
			}
			return
		}
	}
}

// TestFleetEventAccessors: EventsAt/ByzAt slice the sorted schedules by
// round; CheckpointAt follows the cadence and skips round 0.
func TestFleetEventAccessors(t *testing.T) {
	spec := testFleetSpec(t)
	ft, err := CompileFleet(spec, platform.CPU1(), 120, 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if evs := ft.EventsAt(40); len(evs) != 1 || evs[0].Kind != EventKill || evs[0].Node != 1 {
		t.Errorf("EventsAt(40) = %+v, want one kill of node 1", evs)
	}
	if evs := ft.EventsAt(41); len(evs) != 0 {
		t.Errorf("EventsAt(41) = %+v, want none", evs)
	}
	total := 0
	for r := 0; r < 120; r++ {
		total += len(ft.ByzAt(r))
	}
	if total != len(ft.Byz) || total != 2*20 {
		t.Errorf("byz requests total %d (schedule %d), want 40", total, len(ft.Byz))
	}
	if ft.CheckpointAt(0) {
		t.Error("round 0 must not checkpoint")
	}
	if !ft.CheckpointAt(40) || ft.CheckpointAt(41) {
		t.Error("checkpoint cadence broken")
	}
}

// TestFleetValidation: the schedule is a typed program — illegal programs
// must be rejected at compile time, not mid-run.
func TestFleetValidation(t *testing.T) {
	plat := platform.CPU1()
	base, err := ByName("steady")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*FleetSpec)
	}{
		{"zero streams", func(f *FleetSpec) { f.Streams = 0 }},
		{"zero nodes", func(f *FleetSpec) { f.Nodes = 0 }},
		{"kill dead node", func(f *FleetSpec) {
			f.NodeEvents = []NodeEvent{
				{AtInput: 10, Node: 0, Kind: EventKill},
				{AtInput: 20, Node: 0, Kind: EventKill},
			}
		}},
		{"restart live node", func(f *FleetSpec) {
			f.NodeEvents = []NodeEvent{{AtInput: 10, Node: 0, Kind: EventRestart}}
		}},
		{"kill last node", func(f *FleetSpec) {
			f.Nodes = 2
			f.NodeEvents = []NodeEvent{
				{AtInput: 10, Node: 0, Kind: EventKill},
				{AtInput: 20, Node: 1, Kind: EventKill},
			}
		}},
		{"unknown event kind", func(f *FleetSpec) {
			f.NodeEvents = []NodeEvent{{AtInput: 10, Node: 0, Kind: "pause"}}
		}},
		{"event node out of range", func(f *FleetSpec) {
			f.NodeEvents = []NodeEvent{{AtInput: 10, Node: 9, Kind: EventKill}}
		}},
		{"event beyond trace", func(f *FleetSpec) {
			f.NodeEvents = []NodeEvent{{AtInput: 500, Node: 0, Kind: EventKill}}
		}},
		{"bad crowd fraction", func(f *FleetSpec) {
			f.FlashCrowds = []FlashCrowd{{AtInput: 0, Inputs: 10, StreamFraction: 1.5, GapFactor: 0.5}}
		}},
		{"bad crowd gap factor", func(f *FleetSpec) {
			f.FlashCrowds = []FlashCrowd{{AtInput: 0, Inputs: 10, StreamFraction: 0.5, GapFactor: 0}}
		}},
		{"unknown byz kind", func(f *FleetSpec) {
			f.Byzantine = []ByzantinePhase{{AtInput: 0, Inputs: 5, Kinds: []string{"ddos"}}}
		}},
	}
	for _, tc := range cases {
		spec := FleetSpec{Name: "bad", Streams: 4, Nodes: 3, Base: base}
		tc.mut(&spec)
		if _, err := CompileFleet(spec, plat, 60, 0.1, 1); err == nil {
			t.Errorf("%s: CompileFleet accepted an illegal spec", tc.name)
		}
	}
}

// TestDefaultFleet: the stock chaos spec must validate, schedule at least
// two kill/restart cycles at the CI smoke's shape, and alternate graceful
// and hard kills.
func TestDefaultFleet(t *testing.T) {
	base, err := ByName("bursty")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := DefaultFleet(base, 6, 3, 120, 30, 15)
	if err != nil {
		t.Fatal(err)
	}
	kills, restarts, graceful := 0, 0, 0
	for _, e := range spec.NodeEvents {
		switch e.Kind {
		case EventKill:
			kills++
			if e.Graceful {
				graceful++
			}
			// Hard kills must land on checkpoint rounds so the restore from
			// the last checkpoint is lossless.
			if !e.Graceful && e.AtInput%spec.checkpointEvery() != 0 {
				t.Errorf("hard kill at round %d is not checkpoint-aligned (every %d)", e.AtInput, spec.checkpointEvery())
			}
		case EventRestart:
			restarts++
		}
	}
	if kills < 2 || restarts != kills {
		t.Fatalf("stock fleet schedules %d kills / %d restarts, want >= 2 matched cycles", kills, restarts)
	}
	if graceful == 0 || graceful == kills {
		t.Errorf("stock fleet kills are not mixed (graceful %d of %d)", graceful, kills)
	}
	if _, err := CompileFleet(spec, platform.CPU1(), 120, 0.1, 1); err != nil {
		t.Fatalf("stock fleet does not compile: %v", err)
	}
}
