package scenario

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/alert-project/alert/internal/contention"
	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/platform"
)

func compileBuiltin(t *testing.T, name string, n int, seed int64) *Trace {
	t.Helper()
	spec, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Compile(spec, platform.CPU1(), n, 0.1, seed)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNamesAndByName(t *testing.T) {
	names := Names()
	if len(names) < 5 {
		t.Fatalf("too few built-in scenarios: %v", names)
	}
	for _, name := range names {
		spec, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Name != name {
			t.Errorf("spec %q registered under %q", spec.Name, name)
		}
		if err := spec.Validate(); err != nil {
			t.Errorf("built-in %q invalid: %v", name, err)
		}
	}
	if _, err := ByName("no-such-scenario"); err == nil {
		t.Error("unknown name must error")
	}
}

func TestCompileDeterminism(t *testing.T) {
	for _, name := range Names() {
		a := compileBuiltin(t, name, 500, 7)
		b := compileBuiltin(t, name, 500, 7)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same-seed compiles differ", name)
		}
		c := compileBuiltin(t, name, 500, 8)
		if name != "steady" && name != "churn" && reflect.DeepEqual(a.Ticks, c.Ticks) {
			t.Errorf("%s: different seeds produced identical ticks", name)
		}
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	for _, name := range Names() {
		tr := compileBuiltin(t, name, 300, 3)
		var buf1 bytes.Buffer
		if err := tr.Encode(&buf1); err != nil {
			t.Fatal(err)
		}
		got, err := Decode(bytes.NewReader(buf1.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(tr, got) {
			t.Fatalf("%s: decoded trace differs from original", name)
		}
		var buf2 bytes.Buffer
		if err := got.Encode(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
			t.Fatalf("%s: JSON round-trip is not byte-identical", name)
		}
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	tr := compileBuiltin(t, "bursty", 200, 11)
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatal("file round-trip changed the trace")
	}
}

func TestDecodeRejectsSpeedups(t *testing.T) {
	bad := `{"scenario":"x","platform":"CPU1","arrival":"closed","seed":1,"period":0.1,"ticks":[{"slow":0.5}]}`
	if _, err := Decode(bytes.NewReader([]byte(bad))); err == nil {
		t.Fatal("slowdown < 1 must be rejected")
	}
}

func TestSourceReplaysIdentically(t *testing.T) {
	tr := compileBuiltin(t, "phased", 400, 5)
	a, b := tr.Source(), tr.Source()
	for i := 0; i < 450; i++ { // past the end: cycling must match too
		ea, eb := a.Next(), b.Next()
		if ea != eb {
			t.Fatalf("cursors diverged at %d: %+v vs %+v", i, ea, eb)
		}
		if ea.Slowdown < 1 {
			t.Fatalf("tick %d slowdown %g < 1", i, ea.Slowdown)
		}
	}
}

func TestPhasedContentionSwitches(t *testing.T) {
	tr := compileBuiltin(t, "phased", 215, 9)
	// Phases: default [0,45), compute [45,115), default [115,145),
	// memory [145,215). Named contention phases start with the co-runner
	// scheduled (NewActiveSource), so their first input must already show
	// power draw; the default phases must never show any.
	var activeInPhase, activeBefore int
	for i, tick := range tr.Ticks {
		if tick.ExtraPowerW > 0 {
			if i >= 45 && i < 115 {
				activeInPhase++
			}
			if i < 45 || (i >= 115 && i < 145) {
				activeBefore++
			}
		}
	}
	if activeInPhase == 0 {
		t.Error("compute phase never showed co-runner power draw")
	}
	if activeBefore > 0 {
		t.Errorf("default phases showed co-runner draw %d times", activeBefore)
	}
	if tr.Ticks[45].ExtraPowerW == 0 {
		t.Error("compute phase does not start with the co-runner scheduled")
	}
	if tr.Ticks[145].ExtraPowerW == 0 {
		t.Error("memory phase does not start with the co-runner scheduled")
	}
}

func TestThrottleCeilingShape(t *testing.T) {
	plat := platform.CPU1()
	spec, _ := ByName("thermal")
	tr, err := Compile(spec, plat, spec.Throttle.Period*2, 0.1, 13)
	if err != nil {
		t.Fatal(err)
	}
	floor := math.Max(plat.PMin, spec.Throttle.MinCapFrac*plat.PMax)
	var throttled int
	for i, tick := range tr.Ticks {
		if tick.CapLimitW == 0 {
			continue
		}
		throttled++
		if tick.CapLimitW < floor-1e-9 || tick.CapLimitW > plat.PMax+1e-9 {
			t.Fatalf("tick %d ceiling %g outside [%g, %g]", i, tick.CapLimitW, floor, plat.PMax)
		}
		if !tick.Active {
			t.Fatalf("tick %d throttled but not marked active", i)
		}
	}
	duty := float64(throttled) / float64(len(tr.Ticks))
	// Duty window plus the recovery ramp, with slack for jitter.
	if duty < 0.3 || duty > 0.85 {
		t.Errorf("throttled fraction %g implausible for duty %g", duty, spec.Throttle.Duty)
	}
}

func TestChurnOverrides(t *testing.T) {
	tr := compileBuiltin(t, "churn", 300, 17)
	base := core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.1, AccuracyGoal: 0.9}

	// Phase 0: factors (1, 0) leave the spec unchanged.
	if got := tr.SpecFor(0, base); got != base {
		t.Fatalf("phase 0 spec changed: %+v", got)
	}
	// Phase 1 (inputs 90..179): deadline × 0.7, accuracy − 0.03.
	got := tr.SpecFor(95, base)
	if math.Abs(got.Deadline-0.07) > 1e-12 || math.Abs(got.AccuracyGoal-0.87) > 1e-12 {
		t.Fatalf("phase 1 spec wrong: %+v", got)
	}
	// Phase 2 (inputs 180..269): deadline × 1.5, accuracy + 0.015.
	got = tr.SpecFor(200, base)
	if math.Abs(got.Deadline-0.15) > 1e-12 || math.Abs(got.AccuracyGoal-0.915) > 1e-12 {
		t.Fatalf("phase 2 spec wrong: %+v", got)
	}
}

func TestArrivalGaps(t *testing.T) {
	cases := []struct {
		name      string
		openLoop  bool
		meanLo    float64
		meanHi    float64
		identical bool // every gap equal (periodic)
	}{
		{"steady", true, 0.1, 0.1, true},
		{"bursty", true, 0.05, 0.25, false},
		{"diurnal", true, 0.08, 0.3, false},
		{"churn", true, 0.1, 0.1, true},
	}
	for _, tc := range cases {
		tr := compileBuiltin(t, tc.name, 2000, 23)
		if tr.OpenLoop() != tc.openLoop {
			t.Errorf("%s: OpenLoop = %v", tc.name, tr.OpenLoop())
		}
		var sum float64
		allEqual := true
		for _, tick := range tr.Ticks {
			sum += tick.Gap
			if tick.Gap != tr.Ticks[0].Gap {
				allEqual = false
			}
		}
		mean := sum / float64(len(tr.Ticks))
		if mean < tc.meanLo-1e-9 || mean > tc.meanHi+1e-9 {
			t.Errorf("%s: mean gap %g outside [%g, %g]", tc.name, mean, tc.meanLo, tc.meanHi)
		}
		if allEqual != tc.identical {
			t.Errorf("%s: allEqual = %v, want %v", tc.name, allEqual, tc.identical)
		}
	}
}

func TestValidateCatchesBadSpecs(t *testing.T) {
	bad := []Spec{
		{Name: "p", Contention: []ContentionPhase{{Inputs: 0, Environment: "compute"}}},
		{Name: "e", Contention: []ContentionPhase{{Inputs: 10, Environment: "martian"}}},
		{Name: "t", Throttle: &Throttle{Period: 0, Duty: 0.5, MinCapFrac: 0.5}},
		{Name: "d", Throttle: &Throttle{Period: 10, Duty: 1.5, MinCapFrac: 0.5}},
		{Name: "f", Throttle: &Throttle{Period: 10, Duty: 0.5, MinCapFrac: 0}},
		{Name: "a", Arrival: Arrival{Process: "fractal"}},
		{Name: "s", Arrival: Arrival{Process: ArrivalDiurnal, Swing: 1.0}},
		{Name: "c", Churn: &Churn{Every: 0}},
		{Name: "n", Churn: &Churn{Every: 10, DeadlineFactors: []float64{-1}}},
	}
	for _, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("spec %q should fail validation", spec.Name)
		}
	}
	if _, err := Compile(builtin["steady"], platform.CPU1(), 0, 0.1, 1); err == nil {
		t.Error("zero-length compile should fail")
	}
	if _, err := Compile(builtin["steady"], platform.CPU1(), 10, 0, 1); err == nil {
		t.Error("zero period compile should fail")
	}
}

func TestHeaviestEnvironment(t *testing.T) {
	if got := builtin["steady"].HeaviestEnvironment(); got != contention.Default {
		t.Errorf("steady heaviest = %v", got)
	}
	if got := builtin["phased"].HeaviestEnvironment(); got != contention.Memory {
		t.Errorf("phased heaviest = %v", got)
	}
	if got := builtin["bursty"].HeaviestEnvironment(); got != contention.Compute {
		t.Errorf("bursty heaviest = %v", got)
	}
}
