package scenario

import (
	"bytes"
	"testing"

	"github.com/alert-project/alert/internal/platform"
)

// FuzzFleetTraceRoundTrip extends FuzzTraceRoundTrip's contract to the
// fleet layer: any bytes DecodeFleet accepts must re-encode to a canonical
// fixed point, every compiled schedule invariant (sorted events, legal
// kill/restart program, in-range crowd members) must hold on the decoded
// trace, and the accessors must be drivable without panics.
func FuzzFleetTraceRoundTrip(f *testing.F) {
	addCompiled := func(spec FleetSpec, seed int64) {
		ft, err := CompileFleet(spec, platform.CPU1(), 60, 0.1, seed)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := ft.Encode(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	for _, name := range []string{"steady", "bursty", "churn"} {
		base, err := ByName(name)
		if err != nil {
			f.Fatal(err)
		}
		spec, err := DefaultFleet(base, 6, 3, 60, 20, 10)
		if err != nil {
			f.Fatal(err)
		}
		addCompiled(spec, 7)
	}
	base, err := ByName("phased")
	if err != nil {
		f.Fatal(err)
	}
	addCompiled(FleetSpec{
		Name: "bare", Streams: 2, Nodes: 2, Base: base,
	}, 11)
	// Handcrafted near-misses: unsorted events, dead-node kill, member out
	// of range, junk.
	f.Add([]byte(`{"fleet":"x","streams":2,"nodes":2,"checkpoint_every":5,"events":[{"at":9,"node":0,"kind":"kill"},{"at":3,"node":1,"kind":"kill"}]}`))
	f.Add([]byte(`{"fleet":"x","streams":2,"nodes":2,"checkpoint_every":5,"events":[{"at":3,"node":0,"kind":"restart"}]}`))
	f.Add([]byte(`{"fleet":"x","streams":2,"nodes":2,"checkpoint_every":5,"crowds":[{"from":0,"until":5,"gap_factor":0.5,"members":[7]}]}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		ft, err := DecodeFleet(bytes.NewReader(data))
		if err != nil {
			return // rejected input; nothing to round-trip
		}

		var first bytes.Buffer
		if err := ft.Encode(&first); err != nil {
			t.Fatalf("encoding a decoded fleet trace failed: %v", err)
		}
		ft2, err := DecodeFleet(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding our own encoding failed: %v\n%s", err, first.Bytes())
		}
		var second bytes.Buffer
		if err := ft2.Encode(&second); err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("encode∘decode is not a fixed point:\nfirst:  %s\nsecond: %s",
				first.Bytes(), second.Bytes())
		}

		// Schedule invariants DecodeFleet promises: a legal liveness
		// program over the events, sorted byz schedule, in-range members.
		live := make([]bool, ft.Nodes)
		for i := range live {
			live[i] = true
		}
		for i, ev := range ft.Events {
			if i > 0 && ft.Events[i-1].AtInput > ev.AtInput {
				t.Fatalf("DecodeFleet accepted unsorted events at %d", i)
			}
			switch ev.Kind {
			case EventKill:
				if !live[ev.Node] {
					t.Fatalf("DecodeFleet accepted kill of dead node %d", ev.Node)
				}
				live[ev.Node] = false
			case EventRestart:
				if live[ev.Node] {
					t.Fatalf("DecodeFleet accepted restart of live node %d", ev.Node)
				}
				live[ev.Node] = true
			default:
				t.Fatalf("DecodeFleet accepted event kind %q", ev.Kind)
			}
		}
		for _, c := range ft.Crowds {
			for i, m := range c.Members {
				if m < 0 || m >= ft.Streams {
					t.Fatalf("DecodeFleet accepted crowd member %d outside [0,%d)", m, ft.Streams)
				}
				if i > 0 && c.Members[i-1] >= m {
					t.Fatalf("DecodeFleet accepted unsorted/duplicate crowd members")
				}
			}
		}

		// Accessors must be drivable without panics, including past the end.
		n := ft.Len()
		for _, r := range []int{0, 1, n, 2*n + 3} {
			_ = ft.EventsAt(r)
			_ = ft.ByzAt(r)
			_ = ft.CheckpointAt(r)
			for s := -1; s <= ft.Streams; s++ {
				if g := ft.GapScale(s, r); g <= 0 {
					t.Fatalf("GapScale(%d,%d) = %g, want > 0", s, r, g)
				}
			}
		}
	})
}
