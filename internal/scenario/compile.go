package scenario

import (
	"fmt"
	"math"

	"github.com/alert-project/alert/internal/contention"
	"github.com/alert-project/alert/internal/mathx"
	"github.com/alert-project/alert/internal/platform"
)

// Compile materializes a scenario for a platform: n ticks with throttle
// ceilings in the platform's watts and arrival gaps scaled by period (the
// nominal seconds per input, normally the base deadline). Compile is pure:
// the same arguments always produce the identical trace, and every
// stochastic component draws from its own seed-derived substream, so adding
// or removing one component never perturbs the draws of the others.
func Compile(spec Spec, plat *platform.Platform, n int, period float64, seed int64) (*Trace, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("scenario %q: trace length %d must be positive", spec.Name, n)
	}
	if period <= 0 {
		return nil, fmt.Errorf("scenario %q: period %g must be positive", spec.Name, period)
	}

	// Independent substreams per component, derived in a fixed order.
	root := mathx.NewRand(seed)
	contRng := root.Split()
	throttleRng := root.Split()
	arrivalRng := root.Split()

	arrival := spec.Arrival.Process
	if arrival == "" {
		arrival = ArrivalClosed
	}
	tr := &Trace{
		Scenario: spec.Name,
		Platform: plat.Name,
		Arrival:  arrival,
		Seed:     seed,
		Period:   period,
		Ticks:    make([]Tick, n),
	}

	compileContention(tr.Ticks, spec.Contention, plat.Kind, contRng)
	if spec.Throttle != nil {
		compileThrottle(tr.Ticks, *spec.Throttle, plat, throttleRng)
	}
	compileArrivals(tr.Ticks, spec.Arrival, period, arrivalRng)
	if spec.Churn != nil {
		compileChurn(tr.Ticks, *spec.Churn)
	}
	return tr, nil
}

// MustCompile is Compile for known-good built-in specs; it panics on error.
func MustCompile(spec Spec, plat *platform.Platform, n int, period float64, seed int64) *Trace {
	tr, err := Compile(spec, plat, n, period, seed)
	if err != nil {
		panic(err)
	}
	return tr
}

// compileContention fills the co-runner fields by cycling the phase
// schedule, running the stock stochastic co-runner model within each phase.
// Each phase instance gets its own seed-derived source, so the environment
// re-converges to the same statistics every time the cycle repeats without
// the phases sharing generator state.
func compileContention(ticks []Tick, phases []ContentionPhase, kind platform.Kind, rng *mathx.Rand) {
	if len(phases) == 0 {
		phases = []ContentionPhase{{Inputs: len(ticks), Environment: "default"}}
	}
	i := 0
	for i < len(ticks) {
		for _, p := range phases {
			env, err := parseEnvironment(p.Environment)
			if err != nil {
				// Validate already rejected unknown names; default is a
				// safe stand-in for belt and braces.
				env = contention.Default
			}
			src := contention.NewActiveSource(env, kind, rng.Int63())
			for k := 0; k < p.Inputs && i < len(ticks); k++ {
				eff := src.Next()
				ticks[i].Slowdown = eff.Slowdown
				ticks[i].ExtraPowerW = eff.ExtraPower
				ticks[i].Active = eff.Active
				i++
			}
			if i >= len(ticks) {
				break
			}
		}
	}
}

// compileThrottle superimposes the periodic cap-ceiling ramp. The depth
// profile is a trapezoid per cycle — ramp down, hold, ramp up — with
// optional relative jitter; the ceiling in watts interpolates between the
// platform's top cap and MinCapFrac of it, floored at the platform minimum.
func compileThrottle(ticks []Tick, th Throttle, plat *platform.Platform, rng *mathx.Rand) {
	onLen := int(th.Duty * float64(th.Period))
	if onLen < 1 {
		onLen = 1
	}
	ramp := th.Ramp
	if ramp > onLen {
		ramp = onLen
	}
	floor := math.Max(plat.PMin, th.MinCapFrac*plat.PMax)
	for i := range ticks {
		// One jitter draw per input, in or out of the window, keeps the
		// sequence alignment independent of the schedule parameters.
		jit := 1 + th.Jitter*rng.NormFloat64()
		pos := i % th.Period
		var depth float64
		switch {
		case pos < onLen:
			if ramp > 0 && pos < ramp {
				depth = float64(pos+1) / float64(ramp)
			} else {
				depth = 1
			}
		case ramp > 0 && pos-onLen < ramp:
			depth = 1 - float64(pos-onLen+1)/float64(ramp)
		}
		if depth <= 0 {
			continue
		}
		depth = mathx.Clamp(depth*jit, 0, 1)
		ticks[i].CapLimitW = plat.PMax - depth*(plat.PMax-floor)
		ticks[i].Active = true
	}
}

// compileArrivals fills the inter-arrival gaps for open-loop processes.
func compileArrivals(ticks []Tick, a Arrival, period float64, rng *mathx.Rand) {
	meanGap := a.MeanGapFactor
	if meanGap <= 0 {
		meanGap = 1
	}
	meanGap *= period

	switch a.Process {
	case ArrivalPeriodic:
		for i := range ticks {
			ticks[i].Gap = meanGap
		}
	case ArrivalPoisson:
		for i := range ticks {
			ticks[i].Gap = rng.Exponential(meanGap)
		}
	case ArrivalMMPP:
		burstGap := a.BurstGapFactor * period
		if a.BurstGapFactor <= 0 {
			burstGap = meanGap / 4
		}
		burstLen := a.BurstInputs
		if burstLen <= 0 {
			burstLen = 40
		}
		calmLen := a.CalmInputs
		if calmLen <= 0 {
			calmLen = 120
		}
		bursting := false
		left := int(rng.Exponential(float64(calmLen))) + 1
		for i := range ticks {
			if left <= 0 {
				bursting = !bursting
				mean := float64(calmLen)
				if bursting {
					mean = float64(burstLen)
				}
				left = int(rng.Exponential(mean)) + 1
			}
			left--
			gap := meanGap
			if bursting {
				gap = burstGap
			}
			ticks[i].Gap = rng.Exponential(gap)
		}
	case ArrivalDiurnal:
		cycle := a.CycleInputs
		if cycle <= 0 {
			cycle = 500
		}
		swing := a.Swing
		if swing == 0 {
			swing = 0.6
		}
		for i := range ticks {
			rate := 1 + swing*math.Sin(2*math.Pi*float64(i)/float64(cycle))
			ticks[i].Gap = rng.Exponential(meanGap / rate)
		}
	default:
		// Closed loop: gaps stay zero; the load generator paces by
		// completion.
	}
}

// compileChurn stamps the active requirement overrides onto each tick,
// cycling the factor lists independently every Every inputs.
func compileChurn(ticks []Tick, c Churn) {
	for i := range ticks {
		phase := i / c.Every
		if len(c.DeadlineFactors) > 0 {
			ticks[i].DeadlineFactor = c.DeadlineFactors[phase%len(c.DeadlineFactors)]
		}
		if len(c.AccuracyDeltas) > 0 {
			ticks[i].AccuracyDelta = c.AccuracyDeltas[phase%len(c.AccuracyDeltas)]
		}
	}
}
