package scenario

import (
	"bytes"
	"testing"

	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/platform"
)

// FuzzTraceRoundTrip fuzzes the trace JSON surface: any bytes Decode
// accepts must re-encode to a canonical fixed point (encode → decode →
// encode is byte-identical — the property recorded traces being a stable,
// replayable artifact rests on), and the decoded trace must be fully
// usable (At/SpecFor/Source never panic, the slowdown ≥ 1 invariant
// holds). The seed corpus runs on every plain `go test`; CI additionally
// explores new inputs for a bounded -fuzztime.
func FuzzTraceRoundTrip(f *testing.F) {
	// Seeds: every built-in scenario compiled small, plus handcrafted
	// near-misses (invalid slowdown, wrong shape, junk).
	for _, name := range Names() {
		spec, err := ByName(name)
		if err != nil {
			f.Fatal(err)
		}
		tr, err := Compile(spec, platform.CPU1(), 12, 0.1, 7)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(`{"scenario":"x","arrival":"poisson","ticks":[{"slow":1,"gap":0.5,"dlf":2}]}`))
	f.Add([]byte(`{"ticks":[{"slow":0.5}]}`))
	f.Add([]byte(`{"ticks":[]}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejected input; nothing to round-trip
		}
		for i, tick := range tr.Ticks {
			if tick.Slowdown < 1 {
				t.Fatalf("Decode accepted tick %d with slowdown %g < 1", i, tick.Slowdown)
			}
		}

		var first bytes.Buffer
		if err := tr.Encode(&first); err != nil {
			t.Fatalf("encoding a decoded trace failed: %v", err)
		}
		tr2, err := Decode(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding our own encoding failed: %v\n%s", err, first.Bytes())
		}
		var second bytes.Buffer
		if err := tr2.Encode(&second); err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("encode∘decode is not a fixed point:\nfirst:  %s\nsecond: %s",
				first.Bytes(), second.Bytes())
		}

		// The decoded trace must be drivable without panics, including past
		// its end (At cycles) and when empty.
		base := core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.1, AccuracyGoal: 0.9}
		for _, i := range []int{0, 1, len(tr.Ticks), 3*len(tr.Ticks) + 5} {
			_ = tr.At(i)
			s := tr.SpecFor(i, base)
			if s.AccuracyGoal < 0 || s.AccuracyGoal > 1 {
				t.Fatalf("SpecFor(%d) accuracy goal %g outside [0,1]", i, s.AccuracyGoal)
			}
		}
		_ = tr.OpenLoop()
		src := tr.Source()
		for i := 0; i < 3; i++ {
			src.Next()
		}
	})
}
