package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"github.com/alert-project/alert/internal/contention"
	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/mathx"
)

// Tick is the environment's state for one input: the disturbance the input
// experiences, when it arrives, and which requirement spec is in force.
// Zero-valued optional fields mean "no effect" so steady stretches compress
// well in JSON.
type Tick struct {
	// Slowdown is the co-runner latency multiplier (>= 1).
	Slowdown float64 `json:"slow"`
	// ExtraPowerW is the wattage the co-runner adds to the system draw.
	ExtraPowerW float64 `json:"xpw,omitempty"`
	// CapLimitW, when positive, is the throttled power ceiling in watts.
	CapLimitW float64 `json:"cap,omitempty"`
	// Active mirrors whether any disturbance (co-runner or throttle) is on.
	Active bool `json:"act,omitempty"`
	// Gap is the inter-arrival time in seconds before this input
	// (open-loop arrival processes only; 0 for closed loop).
	Gap float64 `json:"gap,omitempty"`
	// DeadlineFactor, when positive, multiplies the base deadline.
	DeadlineFactor float64 `json:"dlf,omitempty"`
	// AccuracyDelta is added to the base accuracy goal.
	AccuracyDelta float64 `json:"accd,omitempty"`
}

// Trace is a compiled, materialized scenario: one Tick per input, plus the
// header identifying what it was compiled from. Traces are immutable once
// compiled; every consumer reads through At or a Source cursor, so one
// trace can back any number of concurrent replays.
type Trace struct {
	// Scenario is the Spec.Name this trace was compiled from.
	Scenario string `json:"scenario"`
	// Platform is the platform name the throttle ceilings are in watts for.
	Platform string `json:"platform"`
	// Arrival is the arrival-process kind (one of the Arrival* constants).
	Arrival string `json:"arrival"`
	// Seed is the compile seed; (Scenario, Platform, len, Period, Seed)
	// fully determine the tick sequence.
	Seed int64 `json:"seed"`
	// Period is the nominal seconds-per-input the gaps were scaled by.
	Period float64 `json:"period"`
	// Ticks is the per-input sequence.
	Ticks []Tick `json:"ticks"`
}

// Len returns the number of compiled ticks.
func (t *Trace) Len() int { return len(t.Ticks) }

// At returns the tick for input i, cycling when the stream outruns the
// trace so a short recorded trace can drive an arbitrarily long run.
func (t *Trace) At(i int) Tick {
	if len(t.Ticks) == 0 {
		return Tick{Slowdown: 1}
	}
	return t.Ticks[i%len(t.Ticks)]
}

// OpenLoop reports whether the trace carries an open-loop arrival process
// (inter-arrival gaps); closed-loop traces pace requests by completion.
func (t *Trace) OpenLoop() bool { return t.Arrival != "" && t.Arrival != ArrivalClosed }

// SpecFor returns the requirement spec in force for input i: the base spec
// with the tick's churn overrides applied. Traces without churn return base
// unchanged, so callers can cheaply detect changes by comparing specs.
func (t *Trace) SpecFor(i int, base core.Spec) core.Spec {
	tick := t.At(i)
	s := base
	if tick.DeadlineFactor > 0 {
		s.Deadline = base.Deadline * tick.DeadlineFactor
	}
	if tick.AccuracyDelta != 0 {
		s.AccuracyGoal = mathx.Clamp(base.AccuracyGoal+tick.AccuracyDelta, 0, 1)
	}
	return s
}

// cursor replays a trace as a contention.Source, cycling past the end.
type cursor struct {
	t *Trace
	i int
}

// Source returns a fresh replay cursor over the trace. Each call starts at
// tick 0, so every scheme (or stream) gets the identical disturbance
// sequence — the property all cross-scheme comparisons rest on.
func (t *Trace) Source() contention.Source { return &cursor{t: t} }

// Next implements contention.Source.
func (c *cursor) Next() contention.Effect {
	tick := c.t.At(c.i)
	c.i++
	return contention.Effect{
		Slowdown:   tick.Slowdown,
		ExtraPower: tick.ExtraPowerW,
		Active:     tick.Active,
		CapLimitW:  tick.CapLimitW,
	}
}

// Encode writes the trace as indented JSON. Encoding is deterministic:
// encoding the same trace always yields the same bytes, and a decoded
// trace re-encodes byte-identically (Go's float64 JSON round-trip is
// exact), which is what makes recorded traces a stable artifact.
func (t *Trace) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t)
}

// Decode reads a trace written by Encode.
func Decode(r io.Reader) (*Trace, error) {
	var t Trace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("scenario: decoding trace: %w", err)
	}
	for i, tick := range t.Ticks {
		if tick.Slowdown < 1 {
			return nil, fmt.Errorf("scenario: trace tick %d has slowdown %g < 1", i, tick.Slowdown)
		}
	}
	return &t, nil
}

// WriteFile records the trace at path.
func (t *Trace) WriteFile(path string) error {
	var buf bytes.Buffer
	if err := t.Encode(&buf); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// ReadFile loads a trace recorded by WriteFile.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}
