package multi

import (
	"testing"

	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/platform"
	"github.com/alert-project/alert/internal/sim"
)

func testEngine(t *testing.T) *core.Engine {
	t.Helper()
	prof, err := dnn.Profile(platform.CPU1(), dnn.ImageCandidates())
	if err != nil {
		t.Fatal(err)
	}
	return core.NewEngine(prof, core.DefaultOptions())
}

// newJobOn creates a job as production deployments do: one session on a
// shared per-platform engine.
func newJobOn(eng *core.Engine, name string, spec core.Spec, weight float64) *Job {
	return &Job{Name: name, Sess: eng.NewSession(), Spec: spec, Weight: weight}
}

func newJob(t *testing.T, name string, spec core.Spec, weight float64) *Job {
	return newJobOn(testEngine(t), name, spec, weight)
}

func accSpec(deadline float64) core.Spec {
	return core.Spec{Objective: core.MaximizeAccuracy, Deadline: deadline}
}

func warm(j *Job, xi float64) {
	for i := 0; i < 40; i++ {
		j.Sess.Observe(sim.Outcome{ObservedXi: xi, IdlePower: 6, CapApplied: 30})
	}
}

func TestNewCoordinatorValidation(t *testing.T) {
	if _, err := NewCoordinator(100); err == nil {
		t.Error("no jobs should fail")
	}
	a := newJob(t, "a", accSpec(0.2), 0)
	b := newJob(t, "b", accSpec(0.2), 0)
	if _, err := NewCoordinator(5, a, b); err == nil {
		t.Error("budget below the per-job floor should fail")
	}
	if _, err := NewCoordinator(60, a, b); err != nil {
		t.Error(err)
	}
	// Mixed platforms are rejected.
	gpuProf, err := dnn.Profile(platform.GPUPlatform(), dnn.ImageCandidates())
	if err != nil {
		t.Fatal(err)
	}
	g := newJobOn(core.NewEngine(gpuProf, core.DefaultOptions()), "g", accSpec(0.2), 0)
	if _, err := NewCoordinator(500, a, g); err == nil {
		t.Error("mixed platforms should fail")
	}
}

// TestSetBudgetWValidation is the regression test for the live-coordinator
// invariant: SetBudgetW must enforce the same floor NewCoordinator does,
// and a rejected update must leave the envelope untouched so Allocate keeps
// working.
func TestSetBudgetWValidation(t *testing.T) {
	a := newJob(t, "a", accSpec(0.2), 0)
	b := newJob(t, "b", accSpec(0.2), 0)
	co, err := NewCoordinator(60, a, b)
	if err != nil {
		t.Fatal(err)
	}
	floor := MinBudgetW(a, b)
	for _, w := range []float64{floor - 1, 0, -10} {
		if err := co.SetBudgetW(w); err == nil {
			t.Errorf("SetBudgetW(%g) below %gW floor should fail", w, floor)
		}
		if co.BudgetW() != 60 {
			t.Fatalf("rejected SetBudgetW(%g) changed the budget to %g", w, co.BudgetW())
		}
	}
	if got := TotalCapW(co.Allocate()); got > 60+1e-9 {
		t.Errorf("allocation %gW exceeds the unchanged 60W budget", got)
	}
	if err := co.SetBudgetW(floor); err != nil {
		t.Errorf("SetBudgetW at the floor should succeed: %v", err)
	}
	if co.BudgetW() != floor {
		t.Errorf("budget = %g, want %g", co.BudgetW(), floor)
	}
}

func TestAllocateRespectsBudget(t *testing.T) {
	a := newJob(t, "a", accSpec(0.15), 0)
	b := newJob(t, "b", accSpec(0.15), 0)
	warm(a, 1.0)
	warm(b, 1.0)
	for _, budget := range []float64{22, 35, 50, 70, 90} {
		co, err := NewCoordinator(budget, a, b)
		if err != nil {
			t.Fatal(err)
		}
		allocs := co.Allocate()
		if got := TotalCapW(allocs); got > budget+1e-9 {
			t.Errorf("budget %gW: allocated %gW", budget, got)
		}
	}
}

func TestMoreBudgetNeverHurts(t *testing.T) {
	a := newJob(t, "a", accSpec(0.12), 0)
	b := newJob(t, "b", accSpec(0.12), 0)
	warm(a, 1.1)
	warm(b, 1.1)
	co, _ := NewCoordinator(25, a, b)
	prev := -1.0
	for _, budget := range []float64{25, 40, 55, 70, 90} {
		co.SetBudgetW(budget)
		allocs := co.Allocate()
		var q float64
		for _, al := range allocs {
			q += al.Estimate.Quality
		}
		if q < prev-1e-9 {
			t.Errorf("budget %gW lowered total expected quality: %g < %g", budget, q, prev)
		}
		prev = q
	}
}

func TestTighterDeadlineDrawsMorePower(t *testing.T) {
	tight := newJob(t, "tight", accSpec(0.06), 0)
	loose := newJob(t, "loose", accSpec(0.40), 0)
	warm(tight, 1.0)
	warm(loose, 1.0)
	co, _ := NewCoordinator(55, tight, loose)
	allocs := co.Allocate()
	var tw, lw float64
	for _, al := range allocs {
		switch al.Job.Name {
		case "tight":
			tw = al.CapW
		case "loose":
			lw = al.CapW
		}
	}
	if tw <= lw {
		t.Errorf("tight-deadline job got %gW, loose got %gW", tw, lw)
	}
}

func TestWeightBiasesArbitration(t *testing.T) {
	heavy := newJob(t, "heavy", accSpec(0.1), 5)
	light := newJob(t, "light", accSpec(0.1), 1)
	warm(heavy, 1.0)
	warm(light, 1.0)
	co, _ := NewCoordinator(45, heavy, light)
	allocs := co.Allocate()
	var hw, lw float64
	for _, al := range allocs {
		switch al.Job.Name {
		case "heavy":
			hw = al.CapW
		case "light":
			lw = al.CapW
		}
	}
	if hw < lw {
		t.Errorf("weighted job got %gW, light job %gW", hw, lw)
	}
}

func TestEnergyMinimizingJobStopsDrawing(t *testing.T) {
	// An energy-minimizing job that is already feasible must not soak up
	// budget another job could use.
	saver := newJob(t, "saver", core.Spec{
		Objective: core.MinimizeEnergy, Deadline: 0.4, AccuracyGoal: 0.90,
	}, 0)
	chaser := newJob(t, "chaser", accSpec(0.12), 0)
	warm(saver, 1.0)
	warm(chaser, 1.0)
	co, _ := NewCoordinator(60, saver, chaser)
	allocs := co.Allocate()
	var sw, cw float64
	var sFeasible bool
	for _, al := range allocs {
		switch al.Job.Name {
		case "saver":
			sw, sFeasible = al.CapW, al.Feasible
		case "chaser":
			cw = al.CapW
		}
	}
	if !sFeasible {
		t.Fatal("saver should be feasible at 0.4s/0.90 with budget to spare")
	}
	if sw >= cw {
		t.Errorf("energy saver drew %gW vs accuracy chaser's %gW", sw, cw)
	}
}

func TestAllocationsCarryRunnableDecisions(t *testing.T) {
	a := newJob(t, "a", accSpec(0.15), 0)
	warm(a, 1.0)
	co, _ := NewCoordinator(45, a)
	for _, al := range co.Allocate() {
		if al.Decision.Cap != al.CapIdx {
			t.Error("decision cap disagrees with allocation")
		}
		if al.Decision.Model < 0 || al.Decision.Model >= al.Job.Prof().NumModels() {
			t.Error("invalid model")
		}
	}
}

func TestObserveIsolatesFilters(t *testing.T) {
	a := newJob(t, "a", accSpec(0.15), 0)
	b := newJob(t, "b", accSpec(0.15), 0)
	co, _ := NewCoordinator(60, a, b)
	for i := 0; i < 30; i++ {
		co.Observe(a, sim.Outcome{ObservedXi: 1.8, IdlePower: 6, CapApplied: 30})
	}
	if a.Sess.XiMean() < 1.5 {
		t.Error("job a's filter did not learn")
	}
	if b.Sess.XiMean() > 1.2 {
		t.Error("job b's filter was contaminated by job a's observations")
	}
}

// TestAllocateCountsDecisions is the coordinator-path regression for the
// DecideAtCap undercount: every arbitration round serves real decisions
// through each job's controller, and Decisions() must say so.
func TestAllocateCountsDecisions(t *testing.T) {
	a := newJob(t, "a", accSpec(0.2), 0)
	b := newJob(t, "b", accSpec(0.1), 0)
	coord, err := NewCoordinator(120, a, b)
	if err != nil {
		t.Fatal(err)
	}
	coord.Allocate()
	if a.Sess.Decisions() == 0 || b.Sess.Decisions() == 0 {
		t.Errorf("DecideAtCap served decisions but Decisions() = (%d, %d); the coordinator path undercounts",
			a.Sess.Decisions(), b.Sess.Decisions())
	}
}

// TestCoordinatorsShareEngineWithoutInterference is the regression test for
// the Engine/Session split at the coordinator level: two coordinators whose
// jobs all hold sessions on ONE shared engine must not interfere — heavy
// feedback and allocation rounds on one coordinator leave the other's
// allocations bit-identical to a control coordinator built on its own
// private engine.
func TestCoordinatorsShareEngineWithoutInterference(t *testing.T) {
	shared := testEngine(t)
	a1 := newJobOn(shared, "a1", accSpec(0.15), 0)
	b1 := newJobOn(shared, "b1", accSpec(0.15), 0)
	a2 := newJobOn(shared, "a2", accSpec(0.12), 0)
	b2 := newJobOn(shared, "b2", core.Spec{
		Objective: core.MinimizeEnergy, Deadline: 0.3, AccuracyGoal: 0.9,
	}, 0)
	co1, err := NewCoordinator(60, a1, b1)
	if err != nil {
		t.Fatal(err)
	}
	co2, err := NewCoordinator(55, a2, b2)
	if err != nil {
		t.Fatal(err)
	}

	// The control: co2's twin on a private engine, driven identically.
	control := testEngine(t)
	a3 := newJobOn(control, "a2", a2.Spec, 0)
	b3 := newJobOn(control, "b2", b2.Spec, 0)
	co3, err := NewCoordinator(55, a3, b3)
	if err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 5; round++ {
		// Hammer co1: heavy slowdown feedback and full allocation rounds on
		// the shared engine.
		warm(a1, 2.0)
		warm(b1, 1.7)
		co1.Allocate()

		// Identical light feedback into co2 and its control.
		out := sim.Outcome{ObservedXi: 1.0 + 0.05*float64(round), IdlePower: 6, CapApplied: 30}
		co2.Observe(a2, out)
		co3.Observe(a3, out)

		got := co2.Allocate()
		want := co3.Allocate()
		for i := range want {
			if got[i].CapIdx != want[i].CapIdx || got[i].Decision != want[i].Decision ||
				got[i].Estimate != want[i].Estimate || got[i].Feasible != want[i].Feasible {
				t.Fatalf("round %d job %s: shared-engine allocation %+v diverged from private-engine control %+v",
					round, want[i].Job.Name, got[i], want[i])
			}
		}
	}
	// And co1's hammering really happened on the same engine.
	if a1.Sess.XiMean() < 1.5 {
		t.Error("co1's feedback did not land")
	}
	if a1.Sess.Engine() != a2.Sess.Engine() {
		t.Error("test premise broken: jobs do not share an engine")
	}
}

func TestMinBudgetW(t *testing.T) {
	a := newJob(t, "a", accSpec(0.15), 0)
	b := newJob(t, "b", accSpec(0.15), 0)
	if got := MinBudgetW(a, b); got != 20 {
		t.Errorf("min budget %g, want 20 (2 x 10W floor)", got)
	}
}
