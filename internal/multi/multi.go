// Package multi extends ALERT to concurrent inference jobs — the future
// work §3.6 sketches: "To support multiple concurrent inference jobs,
// future work needs to extend ALERT to coordinate across these concurrent
// jobs. We expect the main idea of ALERT, such as using a global slowdown
// factor to estimate system variation, to still apply."
//
// The design keeps exactly that structure. Each job retains its own ALERT
// session (its own ξ filter, its own epoch and decision cache, its own
// spec); the coordinator only arbitrates the shared *power envelope*. Jobs
// on one platform share one immutable core.Engine — the candidate space is
// identical for every job, so per-job state is just the session. Every
// scheduling round the coordinator asks each session, per cap rung, "what
// is the best you can do with exactly this much power"
// (core.Session.DecideAtCap) and then splits the envelope by greedy
// marginal utility: wattage flows, one rung at a time, to whichever job
// improves the most per watt. The greedy split is optimal when per-job
// utility is concave in power — which latency-derived quality curves are,
// up to the anytime ladder's discretization — and within one rung of
// optimal otherwise.
package multi

import (
	"fmt"

	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/sim"
)

// Job is one inference stream participating in coordination.
type Job struct {
	// Name identifies the job in allocations.
	Name string
	// Sess is the job's private ALERT session. Jobs on the same platform
	// should share one core.Engine and hold one session each; a session is
	// never shared between jobs (each job learns its own slowdown).
	Sess *core.Session
	// Spec is the job's current requirement.
	Spec core.Spec
	// Weight scales the job's utility in arbitration; 0 means 1.
	Weight float64
}

// Prof returns the profile table of the job's engine. All jobs of one
// coordinator must share a platform (they share its power envelope).
func (j *Job) Prof() *dnn.ProfileTable { return j.Sess.Engine().Profile() }

func (j *Job) weight() float64 {
	if j.Weight <= 0 {
		return 1
	}
	return j.Weight
}

// Allocation is the coordinator's output for one job in one round.
type Allocation struct {
	Job      *Job
	CapIdx   int
	CapW     float64
	Decision sim.Decision
	Estimate core.Estimate
	// Feasible reports whether the job's constraints are met at the
	// allocated power.
	Feasible bool
}

// Coordinator arbitrates one platform power envelope across jobs.
type Coordinator struct {
	jobs    []*Job
	budgetW float64
}

// NewCoordinator builds a coordinator over jobs sharing a total power
// budget in watts. All jobs must be profiled on the same platform.
func NewCoordinator(budgetW float64, jobs ...*Job) (*Coordinator, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("multi: no jobs")
	}
	plat := jobs[0].Prof().Platform
	var minSum float64
	for _, j := range jobs {
		if j.Prof().Platform.Name != plat.Name {
			return nil, fmt.Errorf("multi: job %s on %s, want %s",
				j.Name, j.Prof().Platform.Name, plat.Name)
		}
		minSum += j.Prof().Caps[0]
	}
	if budgetW < minSum {
		return nil, fmt.Errorf("multi: budget %gW below the %gW floor (every job needs its minimum cap)",
			budgetW, minSum)
	}
	return &Coordinator{jobs: jobs, budgetW: budgetW}, nil
}

// BudgetW returns the shared envelope.
func (c *Coordinator) BudgetW() float64 { return c.budgetW }

// SetBudgetW adjusts the envelope between rounds (requirements are dynamic,
// §1: "the power budget ... may switch among different settings"). Like
// NewCoordinator it rejects envelopes below the job set's floor — every job
// needs its minimum cap — leaving the current budget unchanged, so a live
// coordinator can never be driven into a state Allocate cannot satisfy.
func (c *Coordinator) SetBudgetW(w float64) error {
	if floor := MinBudgetW(c.jobs...); w < floor {
		return fmt.Errorf("multi: budget %gW below the %gW floor (every job needs its minimum cap)",
			w, floor)
	}
	c.budgetW = w
	return nil
}

// utility is the scalar the greedy split maximizes for one job at one cap.
// For accuracy-maximizing jobs it is the expected quality; for energy-
// minimizing jobs it is the negated predicted energy once constraints are
// met (more power only helps until feasibility, then it is waste).
func utility(j *Job, est core.Estimate, feasible bool) float64 {
	u := 0.0
	switch j.Spec.Objective {
	case core.MaximizeAccuracy:
		u = est.Quality
		if !feasible {
			u -= 1 // infeasible allocations rank below every feasible one
		}
	case core.MinimizeEnergy:
		if feasible {
			u = 1 - est.Energy/1000 // prefer feasible, then cheaper
		} else {
			u = est.PrQuality - 1
		}
	}
	return u * j.weight()
}

// Allocate runs one arbitration round and returns per-job allocations whose
// cap wattages sum to at most the budget.
func (c *Coordinator) Allocate() []Allocation {
	n := len(c.jobs)
	allocs := make([]Allocation, n)
	// Memoized per-(job, cap) evaluations: DecideAtCap is pure given the
	// controller state, and the greedy loop revisits rungs.
	type evalKey struct{ job, cap int }
	memo := make(map[evalKey]Allocation, n*4)
	eval := func(ji, cap int) Allocation {
		k := evalKey{ji, cap}
		if a, ok := memo[k]; ok {
			return a
		}
		j := c.jobs[ji]
		d, est, ok := j.Sess.DecideAtCap(j.Spec, cap)
		a := Allocation{
			Job:      j,
			CapIdx:   cap,
			CapW:     j.Prof().Caps[cap],
			Decision: d,
			Estimate: est,
			Feasible: ok,
		}
		memo[k] = a
		return a
	}

	// Start every job at its floor rung.
	used := 0.0
	for i := range c.jobs {
		allocs[i] = eval(i, 0)
		used += allocs[i].CapW
	}

	// Greedy marginal-utility ascent: repeatedly promote the job whose
	// jump to some higher rung buys the most utility per watt within the
	// remaining budget. Jumps may span several rungs because utility
	// curves plateau where the model choice does not change — a
	// single-rung greedy would stall on the plateau even though a higher
	// rung improves.
	for {
		bestJob, bestGain := -1, 0.0
		var bestNext Allocation
		for i, j := range c.jobs {
			curU := utility(j, allocs[i].Estimate, allocs[i].Feasible)
			for next := allocs[i].CapIdx + 1; next < j.Prof().NumCaps(); next++ {
				na := eval(i, next)
				dw := na.CapW - allocs[i].CapW
				if used+dw > c.budgetW {
					break
				}
				gain := (utility(j, na.Estimate, na.Feasible) - curU) / dw
				if gain > 0 && (bestJob < 0 || gain > bestGain) {
					bestJob, bestGain, bestNext = i, gain, na
				}
			}
		}
		if bestJob < 0 {
			// No promotion fits the budget or improves anything. Stop —
			// for energy-minimizing jobs extra watts are pure waste.
			break
		}
		used += bestNext.CapW - allocs[bestJob].CapW
		allocs[bestJob] = bestNext
	}
	return allocs
}

// TotalCapW sums the allocated cap wattages.
func TotalCapW(allocs []Allocation) float64 {
	var sum float64
	for _, a := range allocs {
		sum += a.CapW
	}
	return sum
}

// Observe forwards one job's measurement to its own controller; slowdown
// learned by one job does not leak into another's filter (they may run
// different tasks with different sensitivities), matching the per-job
// estimator structure §3.6 anticipates.
func (c *Coordinator) Observe(job *Job, out sim.Outcome) {
	job.Sess.Observe(out)
}

// Jobs returns the coordinated jobs.
func (c *Coordinator) Jobs() []*Job { return c.jobs }

// MinBudgetW returns the smallest admissible envelope for a job set on a
// platform: every job pinned at its lowest rung.
func MinBudgetW(jobs ...*Job) float64 {
	var sum float64
	for _, j := range jobs {
		sum += j.Prof().Caps[0]
	}
	return sum
}
