package experiment

import (
	"fmt"
	"strings"

	"github.com/alert-project/alert/internal/contention"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/mathx"
	"github.com/alert-project/alert/internal/platform"
	"github.com/alert-project/alert/internal/sim"
	"github.com/alert-project/alert/internal/workload"
)

// VarianceBox is one boxplot of Figures 4/5: per-input latency statistics
// for one benchmark task on one platform.
type VarianceBox struct {
	Setting  string // IMG1 / IMG2 / NLP1 / NLP2
	Platform string
	Box      mathx.BoxStats
	OOM      bool // the model does not fit this platform's memory (Fig. 4 caption)
}

// FigVarianceResult is the §2.2 variability study: Figure 4 when Contended
// is false, Figure 5 when true.
type FigVarianceResult struct {
	Contended bool
	Boxes     []VarianceBox
}

// settingIDs maps the paper's setting labels to benchmark models.
func settingIDs() []struct {
	id    string
	model *dnn.Model
} {
	return []struct {
		id    string
		model *dnn.Model
	}{
		{"IMG1", dnn.VGG16()},
		{"IMG2", dnn.ResNet50()},
		{"NLP1", dnn.WordRNN()},
		{"NLP2", dnn.BERT()},
	}
}

// RunFigVariance measures per-input inference latency for every Table 2
// task on every platform, without (Fig. 4) or with (Fig. 5) a co-located
// job. For NLP1, one "input" is one sentence — the per-word RNN cost is
// nearly constant and the large variance the paper observes comes from
// sentence length.
func RunFigVariance(contended bool, sc Scale) (*FigVarianceResult, error) {
	res := &FigVarianceResult{Contended: contended}
	scenario := contention.Default
	if contended {
		scenario = contention.Memory
	}
	for _, s := range settingIDs() {
		for _, plat := range platform.All() {
			box := VarianceBox{Setting: s.id, Platform: plat.Name}
			if !plat.Fits(s.model.MemGB) {
				box.OOM = true
				res.Boxes = append(res.Boxes, box)
				continue
			}
			prof, err := dnn.Profile(plat, []*dnn.Model{s.model})
			if err != nil {
				return nil, err
			}
			capIdx := prof.CapIndex(plat.DefaultCap)
			cont := contention.NewSource(scenario, plat.Kind, sc.Seed+7)
			env := sim.NewEnv(prof, cont, sc.Seed+11)
			stream := workload.NewStream(s.model.Task, sc.Inputs, sc.Seed+13)

			var lats []float64
			sentenceLat := 0.0
			for {
				in, ok := stream.Next()
				if !ok {
					break
				}
				goal := prof.At(0, capIdx) * 1000
				out := env.Step(sim.Decision{Model: 0, Cap: capIdx}, in, goal, 0)
				if s.model.Task == dnn.SentencePrediction {
					sentenceLat += out.Latency
					if in.LastWord() {
						lats = append(lats, sentenceLat)
						sentenceLat = 0
					}
					continue
				}
				lats = append(lats, out.Latency)
			}
			box.Box = mathx.Box(lats)
			res.Boxes = append(res.Boxes, box)
		}
	}
	return res, nil
}

// Render produces the text form of Figure 4 or 5.
func (r *FigVarianceResult) Render() string {
	var b strings.Builder
	title := "Figure 4: latency variance across inputs and hardware (no co-located jobs)"
	if r.Contended {
		title = "Figure 5: latency variance with co-located jobs"
	}
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%-6s %-9s %10s %10s %10s %10s %10s\n",
		"Task", "Platform", "p10(s)", "p25(s)", "median(s)", "p75(s)", "p90(s)")
	for _, box := range r.Boxes {
		if box.OOM {
			fmt.Fprintf(&b, "%-6s %-9s %10s\n", box.Setting, box.Platform, "OOM")
			continue
		}
		fmt.Fprintf(&b, "%-6s %-9s %10.4f %10.4f %10.4f %10.4f %10.4f\n",
			box.Setting, box.Platform, box.Box.P10, box.Box.P25, box.Box.Median, box.Box.P75, box.Box.P90)
	}
	return b.String()
}
