package experiment

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/alert-project/alert/internal/contention"
	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/mathx"
)

// Table4Row is one row of the paper's Table 4: a (platform, DNN family,
// workload) triple with both objective columns.
type Table4Row struct {
	Key    CellKey
	Energy *Cell // minimize-energy task
	Error  *Cell // minimize-error task
}

// Table4 is the main evaluation result.
type Table4 struct {
	Rows    []Table4Row
	Schemes []string
}

// Table4Keys lists the 15 cells the paper evaluates: CPU1 and CPU2 run both
// tasks, the GPU runs image classification only ("the RNN-based sentence
// prediction task is better suited for CPU", §5.1).
func Table4Keys() []CellKey {
	var keys []CellKey
	for _, plat := range []string{"CPU1", "CPU2"} {
		for _, task := range []dnn.Task{dnn.ImageClassification, dnn.SentencePrediction} {
			for _, sc := range contention.Scenarios() {
				keys = append(keys, CellKey{Platform: plat, Task: task, Scenario: sc})
			}
		}
	}
	for _, sc := range contention.Scenarios() {
		keys = append(keys, CellKey{Platform: "GPU", Task: dnn.ImageClassification, Scenario: sc})
	}
	return keys
}

// RunTable4 reproduces Table 4 at the given scale.
func RunTable4(sc Scale, opt CellOptions) (*Table4, error) {
	schemes := opt.Schemes
	if schemes == nil {
		schemes = Table4Schemes
	}
	t := &Table4{Schemes: schemes}
	for _, key := range Table4Keys() {
		energy, err := RunCell(key, core.MinimizeEnergy, sc, opt)
		if err != nil {
			return nil, err
		}
		errCell, err := RunCell(key, core.MaximizeAccuracy, sc, opt)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Table4Row{Key: key, Energy: energy, Error: errCell})
	}
	return t, nil
}

// HarmonicMeans returns the bottom row of Table 4: per-scheme harmonic
// means of the normalized values across all rows, for one objective.
func (t *Table4) HarmonicMeans(energyTask bool) map[string]float64 {
	out := make(map[string]float64, len(t.Schemes))
	for _, id := range t.Schemes {
		var vals []float64
		for _, row := range t.Rows {
			cell := row.Energy
			if !energyTask {
				cell = row.Error
			}
			v := cell.Norm[id].NormValue
			if !math.IsNaN(v) && v > 0 {
				vals = append(vals, v)
			}
		}
		out[id] = mathx.HarmonicMean(vals)
	}
	return out
}

// ViolationShare returns, per scheme, the fraction of all constraint
// settings (across every row) the scheme violated — the asterisk series of
// Figure 7.
func (t *Table4) ViolationShare(energyTask bool) map[string]float64 {
	out := make(map[string]float64, len(t.Schemes))
	for _, id := range t.Schemes {
		var violated, total int
		for _, row := range t.Rows {
			cell := row.Energy
			if !energyTask {
				cell = row.Error
			}
			c := cell.Norm[id]
			violated += c.ViolatedSettings
			total += c.Settings
		}
		if total > 0 {
			out[id] = float64(violated) / float64(total)
		}
	}
	return out
}

// Render produces the aligned-text form of Table 4, superscripts rendered
// as ^k suffixes, mirroring the paper's caption semantics.
func (t *Table4) Render() string {
	var b strings.Builder
	render := func(title string, energyTask bool) {
		fmt.Fprintf(&b, "%s (normalized to OracleStatic, lower is better)\n", title)
		fmt.Fprintf(&b, "%-6s %-12s %-8s", "Plat.", "DNN", "Work.")
		for _, id := range t.Schemes {
			fmt.Fprintf(&b, " %12s", id)
		}
		b.WriteByte('\n')
		for _, row := range t.Rows {
			cell := row.Energy
			if !energyTask {
				cell = row.Error
			}
			fmt.Fprintf(&b, "%-6s %-12s %-8s", row.Key.Platform, row.Key.Family(), row.Key.Workload())
			for _, id := range t.Schemes {
				c := cell.Norm[id]
				val := fmt.Sprintf("%.2f", c.NormValue)
				if math.IsNaN(c.NormValue) {
					val = "--"
				}
				if c.ViolatedSettings > 0 {
					val += fmt.Sprintf("^%d", c.ViolatedSettings)
				}
				fmt.Fprintf(&b, " %12s", val)
			}
			b.WriteByte('\n')
		}
		hm := t.HarmonicMeans(energyTask)
		fmt.Fprintf(&b, "%-28s", "Harmonic mean")
		for _, id := range t.Schemes {
			fmt.Fprintf(&b, " %12.2f", hm[id])
		}
		b.WriteString("\n\n")
	}
	render("Table 4a: Energy in Minimize Energy Task", true)
	render("Table 4b: Error Rate in Minimize Error Task", false)
	return b.String()
}

// Fig7Summary condenses Table 4 into Figure 7: per scheme, the average
// normalized performance and the share of violated constraint settings, for
// both tasks.
type Fig7Summary struct {
	Schemes []string
	// NormPerf[task][scheme]; task 0 = minimize energy, 1 = minimize error.
	NormPerf   [2]map[string]float64
	Violations [2]map[string]float64
}

// Fig7 derives the summary from a completed Table 4.
func Fig7(t *Table4) *Fig7Summary {
	s := &Fig7Summary{Schemes: t.Schemes}
	s.NormPerf[0] = t.HarmonicMeans(true)
	s.NormPerf[1] = t.HarmonicMeans(false)
	s.Violations[0] = t.ViolationShare(true)
	s.Violations[1] = t.ViolationShare(false)
	return s
}

// Render produces the text form of Figure 7.
func (s *Fig7Summary) Render() string {
	var b strings.Builder
	b.WriteString("Figure 7: summary (normalized to OracleStatic; violations = % of settings >10% violated)\n")
	fmt.Fprintf(&b, "%-12s %18s %14s %18s %14s\n",
		"Scheme", "MinEnergy perf", "violations", "MinError perf", "violations")
	ids := append([]string(nil), s.Schemes...)
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Fprintf(&b, "%-12s %18.2f %13.1f%% %18.2f %13.1f%%\n",
			id, s.NormPerf[0][id], 100*s.Violations[0][id],
			s.NormPerf[1][id], 100*s.Violations[1][id])
	}
	return b.String()
}
