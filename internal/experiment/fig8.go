package experiment

import (
	"fmt"
	"strings"

	"github.com/alert-project/alert/internal/contention"
	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/mathx"
)

// Fig8Group is one subplot of Figure 8: a (platform, task) pair with, per
// contention scenario, the distribution over constraint settings of each
// scheme's average energy.
type Fig8Group struct {
	Platform string
	Task     dnn.Task
	// Boxes[scenario][scheme] summarizes per-setting average energies.
	Boxes map[contention.Scenario]map[string]mathx.BoxStats
}

// Fig8Result compares ALERT against Oracle and OracleStatic on the
// minimize-energy task across the whole requirement grid (§5.2, Fig. 8).
type Fig8Result struct {
	Groups []Fig8Group
}

// RunFig8 reproduces Figure 8's four subplots (CPU1/CPU2 x image/sentence).
func RunFig8(sc Scale) (*Fig8Result, error) {
	schemes := []string{SchemeALERT, SchemeOracle}
	res := &Fig8Result{}
	for _, plat := range []string{"CPU1", "CPU2"} {
		for _, task := range []dnn.Task{dnn.ImageClassification, dnn.SentencePrediction} {
			g := Fig8Group{
				Platform: plat,
				Task:     task,
				Boxes:    make(map[contention.Scenario]map[string]mathx.BoxStats),
			}
			for _, scenario := range contention.Scenarios() {
				key := CellKey{Platform: plat, Task: task, Scenario: scenario}
				cell, err := RunCell(key, core.MinimizeEnergy, sc, CellOptions{Schemes: schemes})
				if err != nil {
					return nil, err
				}
				byScheme := make(map[string]mathx.BoxStats)
				for _, id := range append(schemes, SchemeOracleSt) {
					var energies []float64
					for _, s := range cell.PerSetting[id] {
						energies = append(energies, s.AvgEnergy)
					}
					byScheme[id] = mathx.Box(energies)
				}
				g.Boxes[scenario] = byScheme
			}
			res.Groups = append(res.Groups, g)
		}
	}
	return res, nil
}

// Render produces the text form of Figure 8.
func (r *Fig8Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 8: ALERT vs Oracle and OracleStatic, minimize-energy task\n")
	b.WriteString("(per scheme: mean [min..max] of average energy in J across constraint settings)\n")
	for _, g := range r.Groups {
		task := "Image Classification"
		if g.Task == dnn.SentencePrediction {
			task = "Sentence Prediction"
		}
		fmt.Fprintf(&b, "-- %s, %s --\n", g.Platform, task)
		fmt.Fprintf(&b, "%-10s", "Scenario")
		order := []string{SchemeOracleSt, SchemeALERT, SchemeOracle}
		for _, id := range order {
			fmt.Fprintf(&b, " %26s", id)
		}
		b.WriteByte('\n')
		for _, scenario := range contention.Scenarios() {
			name := scenario.String()
			if scenario == contention.Default {
				name = "Default"
			}
			fmt.Fprintf(&b, "%-10s", name)
			for _, id := range order {
				box := g.Boxes[scenario][id]
				fmt.Fprintf(&b, "   %7.2f [%6.2f..%7.2f]", box.Mean, box.Min, box.Max)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
