package experiment

import (
	"testing"

	"github.com/alert-project/alert/internal/contention"
	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/platform"
)

func profFor(t *testing.T) *dnn.ProfileTable {
	t.Helper()
	prof, err := dnn.Profile(platform.CPU1(), dnn.ImageCandidates())
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

func TestScaleSettings(t *testing.T) {
	full := FullScale()
	if got := full.Settings(); got < 35 || got > 40 {
		t.Errorf("full scale has %d settings, Table 4's caption says 35-40", got)
	}
	if QuickScale().Settings() >= full.Settings() {
		t.Error("quick scale should be smaller")
	}
}

func TestEnergyGridShape(t *testing.T) {
	prof := profFor(t)
	sc := FullScale()
	grid := EnergyTaskGrid(prof, contention.Default, sc)
	if len(grid) != sc.Settings() {
		t.Fatalf("grid size %d", len(grid))
	}
	ref := referenceLatency(prof)
	for _, s := range grid {
		if s.Spec.Objective != core.MinimizeEnergy {
			t.Fatal("wrong objective")
		}
		if s.Spec.Deadline < 0.39*ref || s.Spec.Deadline > 2.01*ref {
			t.Errorf("deadline %g outside Table 3's 0.4x-2x range", s.Spec.Deadline)
		}
		if s.Spec.AccuracyGoal <= 0 || s.Spec.AccuracyGoal >= 1 {
			t.Errorf("accuracy goal %g", s.Spec.AccuracyGoal)
		}
		if s.Spec.EnergyBudget != 0 {
			t.Error("energy budget must be unset in the min-energy task")
		}
	}
}

func TestEnergyGridGoalsAchievableUnderContention(t *testing.T) {
	prof := profFor(t)
	for _, env := range contention.Scenarios() {
		for _, s := range EnergyTaskGrid(prof, env, QuickScale()) {
			hi := maxAccuracyWithin(prof, s.Spec.Deadline/contentionMargin(env))
			if s.Spec.AccuracyGoal > hi {
				t.Errorf("%v: goal %g above contention-safe achievable %g",
					env, s.Spec.AccuracyGoal, hi)
			}
		}
	}
}

func TestErrorGridShape(t *testing.T) {
	prof := profFor(t)
	sc := FullScale()
	grid := ErrorTaskGrid(prof, contention.Default, sc)
	if len(grid) != sc.Settings() {
		t.Fatalf("grid size %d", len(grid))
	}
	plat := prof.Platform
	for _, s := range grid {
		if s.Spec.Objective != core.MaximizeAccuracy {
			t.Fatal("wrong objective")
		}
		// Budget corresponds to an average wattage inside the platform's
		// envelope.
		watts := s.Spec.EnergyBudget / s.Spec.Deadline
		if watts < plat.PMin || watts > plat.PMax+1e-9 {
			t.Errorf("budget wattage %g outside [%g, %g]", watts, plat.PMin, plat.PMax)
		}
	}
}

func TestReferenceLatencyIsLargestAnytime(t *testing.T) {
	prof := profFor(t)
	ref := referenceLatency(prof)
	nest := prof.ModelIndex("DepthNest")
	if ref != prof.At(nest, prof.NumCaps()-1) {
		t.Errorf("reference latency %g should be the anytime model's", ref)
	}
	// Traditional-only sets fall back to the slowest model.
	tradProf, _ := dnn.Profile(platform.CPU1(), dnn.Traditional(dnn.ImageCandidates()))
	xl := tradProf.ModelIndex("SparseResNet-XL")
	if referenceLatency(tradProf) != tradProf.At(xl, tradProf.NumCaps()-1) {
		t.Error("traditional fallback wrong")
	}
}

func TestGridForDispatch(t *testing.T) {
	prof := profFor(t)
	sc := QuickScale()
	if GridFor(core.MinimizeEnergy, prof, contention.Default, sc)[0].Spec.Objective != core.MinimizeEnergy {
		t.Error("dispatch energy")
	}
	if GridFor(core.MaximizeAccuracy, prof, contention.Default, sc)[0].Spec.Objective != core.MaximizeAccuracy {
		t.Error("dispatch error")
	}
}
