package experiment

import (
	"fmt"
	"strings"

	"github.com/alert-project/alert/internal/baselines"
	"github.com/alert-project/alert/internal/contention"
	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/mathx"
	"github.com/alert-project/alert/internal/platform"
	"github.com/alert-project/alert/internal/runner"
	"github.com/alert-project/alert/internal/sim"
	"github.com/alert-project/alert/internal/workload"
)

// Fig11Histogram is the ξ distribution for one environment: the observed
// per-input slowdown factors and the Gaussian the Kalman filter fits.
type Fig11Histogram struct {
	Scenario contention.Scenario
	// Bins partition [Lo, Hi) evenly; Freq sums to 1.
	Lo, Hi float64
	Freq   []float64
	// MuHat / SigmaHat are the time-averaged filter estimates — the blue
	// "Estimation" curve of Figure 11.
	MuHat, SigmaHat float64
	// Stats summarizes the raw observations.
	Stats mathx.BoxStats
}

// Fig11Result reproduces the ξ-distribution study (§5.3, Fig. 11): image
// classification on CPU1 under the three environments. The paper's point
// is that the observations are *not* perfectly Gaussian and ALERT is
// robust to that.
type Fig11Result struct {
	Histograms []Fig11Histogram
}

// RunFig11 collects observed ξ values while ALERT runs a representative
// constraint setting, together with the filter's running estimate.
func RunFig11(sc Scale) (*Fig11Result, error) {
	plat, err := platform.ByName("CPU1")
	if err != nil {
		return nil, err
	}
	profs, err := BuildProfiles(plat, dnn.ImageClassification)
	if err != nil {
		return nil, err
	}
	res := &Fig11Result{}
	for _, scenario := range contention.Scenarios() {
		grid := EnergyTaskGrid(profs.Full, scenario, sc)
		setting := grid[len(grid)/2]
		cfg := runner.Config{
			Prof:      profs.Full,
			Scenario:  scenario,
			Spec:      setting.Spec,
			NumInputs: sc.Inputs * 2,
			Seed:      sc.Seed,
		}
		sched := baselines.NewAlert(SchemeALERT, profs.Full, setting.Spec, core.DefaultOptions())
		var xis []float64
		var muSum, sdSum float64
		runner.Run(cfg, sched, func(_ workload.Input, _ sim.Decision, out sim.Outcome) {
			xis = append(xis, out.TrueXi)
			muSum += sched.Session().XiMean()
			sdSum += sched.Session().XiStd()
		})

		h := Fig11Histogram{
			Scenario: scenario,
			MuHat:    muSum / float64(len(xis)),
			SigmaHat: sdSum / float64(len(xis)),
			Stats:    mathx.Box(xis),
		}
		h.Lo, h.Hi = h.Stats.Min, h.Stats.Max*1.0001
		const bins = 20
		h.Freq = make([]float64, bins)
		for _, x := range xis {
			b := int((x - h.Lo) / (h.Hi - h.Lo) * bins)
			if b >= bins {
				b = bins - 1
			}
			h.Freq[b] += 1 / float64(len(xis))
		}
		res.Histograms = append(res.Histograms, h)
	}
	return res, nil
}

// Render produces the text form of Figure 11: ASCII histograms with the
// fitted Gaussian parameters.
func (r *Fig11Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 11: distribution of ξ for image classification on CPU1\n")
	for _, h := range r.Histograms {
		fmt.Fprintf(&b, "-- %s: observed ξ in [%.3f, %.3f], KF fit N(µ=%.3f, σ=%.3f) --\n",
			h.Scenario, h.Stats.Min, h.Stats.Max, h.MuHat, h.SigmaHat)
		width := (h.Hi - h.Lo) / float64(len(h.Freq))
		for i, f := range h.Freq {
			lo := h.Lo + float64(i)*width
			bar := strings.Repeat("#", int(f*200+0.5))
			fmt.Fprintf(&b, "%7.3f %6.3f %s\n", lo, f, bar)
		}
	}
	return b.String()
}
