package experiment

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/scenario"
)

// scenarioScale is a deliberately tiny grid so the sweep stays test-fast.
func scenarioScale() Scale {
	return Scale{
		Inputs:          100,
		DeadlineFactors: []float64{0.6, 1.4},
		OtherLevels:     2,
		Seed:            42,
	}
}

func TestRunScenarioSweep(t *testing.T) {
	sweep, err := RunScenarioSweep([]string{"phased", "churn"}, scenarioScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Rows) != 2 {
		t.Fatalf("got %d rows", len(sweep.Rows))
	}
	for _, row := range sweep.Rows {
		alert := row.Norm[SchemeALERT]
		if alert.Settings != 4 {
			t.Errorf("%s: ALERT aggregated %d settings, want 4", row.Scenario, alert.Settings)
		}
		if !math.IsNaN(alert.NormValue) && alert.NormValue <= 0 {
			t.Errorf("%s: ALERT norm %g must be positive", row.Scenario, alert.NormValue)
		}
		for _, id := range ScenarioSchemes {
			if miss := row.MissRate[id]; miss < 0 || miss > 1 {
				t.Errorf("%s/%s: miss rate %g outside [0,1]", row.Scenario, id, miss)
			}
			if slo := row.SLO[id]; slo < 0 || slo > 1 {
				t.Errorf("%s/%s: SLO %g outside [0,1]", row.Scenario, id, slo)
			}
		}
	}
	text := sweep.Render()
	for _, want := range []string{"phased", "churn", SchemeALERT, "miss"} {
		if !strings.Contains(text, want) {
			t.Errorf("render lacks %q:\n%s", want, text)
		}
	}
}

func TestRunScenarioSweepUnknownName(t *testing.T) {
	if _, err := RunScenarioSweep([]string{"no-such"}, scenarioScale()); err == nil {
		t.Fatal("unknown scenario must error")
	}
}

// TestScenarioCellDeterminism is the grid-level replay guarantee: the same
// seed and scenario produce the identical cell, serial or parallel — the
// property that lets CI compare scenario numbers across runs.
func TestScenarioCellDeterminism(t *testing.T) {
	key := CellKey{Platform: "CPU1", Task: dnn.ImageClassification, Scenario: scenario.Spec{}.HeaviestEnvironment()}
	opts := CellOptions{Schemes: []string{SchemeALERT, SchemeNoCoord}, Scenario: "thermal"}
	serial, err := RunCell(key, core.MinimizeEnergy, scenarioScale(), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 4
	parallel, err := RunCell(key, core.MinimizeEnergy, scenarioScale(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Norm, parallel.Norm) {
		t.Error("parallel scenario cell diverged from serial")
	}
	if !reflect.DeepEqual(serial.PerSetting, parallel.PerSetting) {
		t.Error("per-setting scenario results diverged")
	}

	again, err := RunCell(key, core.MinimizeEnergy, scenarioScale(), CellOptions{
		Schemes: []string{SchemeALERT, SchemeNoCoord}, Scenario: "thermal",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.PerSetting, again.PerSetting) {
		t.Error("same-seed scenario cells diverged across runs")
	}
}

// TestScenarioChangesOutcomes guards the plumbing end-to-end: a throttling
// scenario must actually perturb the results relative to the stock
// contention-free environment.
func TestScenarioChangesOutcomes(t *testing.T) {
	key := CellKey{Platform: "CPU1", Task: dnn.ImageClassification}
	plain, err := RunCell(key, core.MinimizeEnergy, scenarioScale(), CellOptions{Schemes: []string{SchemeALERT}})
	if err != nil {
		t.Fatal(err)
	}
	throttled, err := RunCell(key, core.MinimizeEnergy, scenarioScale(), CellOptions{
		Schemes: []string{SchemeALERT}, Scenario: "thermal",
	})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(plain.PerSetting[SchemeALERT], throttled.PerSetting[SchemeALERT]) {
		t.Error("thermal scenario produced identical results to the steady environment")
	}
}
