package experiment

import (
	"github.com/alert-project/alert/internal/contention"
	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/dnn"
)

// contentionMargin is the latency headroom the experimenters leave when
// choosing "achievable" accuracy goals for an environment: goals are drawn
// from the range reachable when inference is slowed by the scenario's
// typical co-runner. Without it, grids would contain settings no scheme —
// not even the Oracle — can satisfy, which the paper's setup avoids (ALERT
// satisfies constraints in ~99 % of its tests, §5.2).
func contentionMargin(sc contention.Scenario) float64 {
	switch sc {
	case contention.Compute:
		return 1.5
	case contention.Memory:
		return 1.65
	default:
		return 1.08
	}
}

// Setting is one point of a constraint grid: a fully specified core.Spec
// plus the factors that generated it (for labelling output rows).
type Setting struct {
	Spec           core.Spec
	DeadlineFactor float64
	Level          int
}

// referenceLatency returns Table 3's deadline yardstick: the mean latency of
// the largest anytime DNN "measured under default setting without resource
// contention" — i.e. its profiled latency at the default (maximum) cap. If
// the set has no anytime model, the slowest model stands in.
func referenceLatency(prof *dnn.ProfileTable) float64 {
	top := prof.NumCaps() - 1
	best, bestLat := -1, 0.0
	for i, m := range prof.Models {
		if m.IsAnytime() && prof.At(i, top) > bestLat {
			best, bestLat = i, prof.At(i, top)
		}
	}
	if best < 0 {
		for i := range prof.Models {
			if prof.At(i, top) > bestLat {
				best, bestLat = i, prof.At(i, top)
			}
		}
	}
	return bestLat
}

// maxAccuracyWithin returns the highest final accuracy any candidate can
// deliver with nominal latency inside the deadline at some cap (anytime
// models contribute their best stage that fits).
func maxAccuracyWithin(prof *dnn.ProfileTable, deadline float64) float64 {
	best := 0.0
	top := prof.NumCaps() - 1
	for i, m := range prof.Models {
		t := prof.At(i, top)
		if !m.IsAnytime() {
			if t <= deadline && m.Accuracy > best {
				best = m.Accuracy
			}
			continue
		}
		for _, s := range m.Stages {
			if t*s.LatencyFrac <= deadline && s.Accuracy > best {
				best = s.Accuracy
			}
		}
	}
	return best
}

// minAccuracy returns the lowest useful accuracy in the candidate set (the
// weakest first-stage or smallest traditional model).
func minAccuracy(prof *dnn.ProfileTable) float64 {
	best := 1.0
	for _, m := range prof.Models {
		q := m.Accuracy
		if m.IsAnytime() {
			q = m.Stages[0].Accuracy
		}
		if q < best {
			best = q
		}
	}
	return best
}

// EnergyTaskGrid builds the constraint settings for the minimize-energy
// task (Eq. 2): deadline x accuracy-goal combinations. Accuracy goals span
// "the whole range achievable by trad. and Anytime DNN" (Table 3), kept
// achievable under each deadline so the grid matches the paper's setup
// where ALERT satisfies constraints in ~99 % of tests.
func EnergyTaskGrid(prof *dnn.ProfileTable, env contention.Scenario, sc Scale) []Setting {
	ref := referenceLatency(prof)
	lo := minAccuracy(prof)
	margin := contentionMargin(env)
	var out []Setting
	for _, f := range sc.DeadlineFactors {
		deadline := f * ref
		hi := maxAccuracyWithin(prof, deadline/margin)
		if hi <= lo {
			hi = lo + 0.001
		}
		for lvl := 0; lvl < sc.OtherLevels; lvl++ {
			frac := float64(lvl) / float64(max(sc.OtherLevels-1, 1))
			// The top level sits slightly below the best achievable
			// accuracy: a goal placed exactly at the frontier turns every
			// graceful degradation into a violation by rounding.
			goal := lo + (hi-lo)*frac*0.94
			out = append(out, Setting{
				Spec: core.Spec{
					Objective:    core.MinimizeEnergy,
					Deadline:     deadline,
					AccuracyGoal: goal,
				},
				DeadlineFactor: f,
				Level:          lvl,
			})
		}
	}
	return out
}

// ErrorTaskGrid builds the constraint settings for the minimize-error task
// (Eq. 1): deadline x energy-budget combinations. Budgets span "the whole
// feasible power-cap range on the machine" (Table 3): budget_k = cap_k x
// deadline for cap levels swept across the platform ladder.
func ErrorTaskGrid(prof *dnn.ProfileTable, env contention.Scenario, sc Scale) []Setting {
	ref := referenceLatency(prof)
	plat := prof.Platform
	var out []Setting
	for _, f := range sc.DeadlineFactors {
		deadline := f * ref
		for lvl := 0; lvl < sc.OtherLevels; lvl++ {
			frac := float64(lvl) / float64(max(sc.OtherLevels-1, 1))
			// Sweep the power envelope from a bit above the idle floor to
			// the full cap; the very bottom of the ladder cannot absorb
			// contention slowdowns and would be infeasible for everyone.
			capLevel := plat.PMin + (plat.PMax-plat.PMin)*(0.2+0.8*frac)
			budget := capLevel * deadline
			out = append(out, Setting{
				Spec: core.Spec{
					Objective:    core.MaximizeAccuracy,
					Deadline:     deadline,
					EnergyBudget: budget,
				},
				DeadlineFactor: f,
				Level:          lvl,
			})
		}
	}
	return out
}

// GridFor dispatches on the objective.
func GridFor(obj core.Objective, prof *dnn.ProfileTable, env contention.Scenario, sc Scale) []Setting {
	if obj == core.MinimizeEnergy {
		return EnergyTaskGrid(prof, env, sc)
	}
	return ErrorTaskGrid(prof, env, sc)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
