package experiment

import (
	"math"
	"reflect"
	"testing"

	"github.com/alert-project/alert/internal/contention"
	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/dnn"
)

// TestRunCellParallelMatchesSerial is the determinism contract of the
// parallel grid: a cell run at any parallelism must be byte-identical to
// the serial run, because every setting derives its own seed.
func TestRunCellParallelMatchesSerial(t *testing.T) {
	key := CellKey{Platform: "CPU1", Task: dnn.ImageClassification, Scenario: contention.Memory}
	sc := QuickScale()
	sc.Inputs = 40
	schemes := []string{SchemeALERT, SchemeAppOnly}

	serial, err := RunCell(key, core.MinimizeEnergy, sc, CellOptions{Schemes: schemes})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunCell(key, core.MinimizeEnergy, sc, CellOptions{Schemes: schemes, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(serial.PerSetting, parallel.PerSetting) {
		t.Error("per-setting results diverge between serial and parallel runs")
	}
	for _, id := range append([]string{}, schemes...) {
		s, p := serial.Norm[id], parallel.Norm[id]
		if s.ViolatedSettings != p.ViolatedSettings || s.Settings != p.Settings {
			t.Errorf("%s: violation counts diverge: serial %+v parallel %+v", id, s, p)
		}
		if s.NormValue != p.NormValue && !(math.IsNaN(s.NormValue) && math.IsNaN(p.NormValue)) {
			t.Errorf("%s: normalized value %v (serial) vs %v (parallel)", id, s.NormValue, p.NormValue)
		}
	}
}

// TestRunCellParallelKeepRecords checks record retention keeps grid order
// under parallel execution.
func TestRunCellParallelKeepRecords(t *testing.T) {
	key := CellKey{Platform: "CPU1", Task: dnn.ImageClassification, Scenario: contention.Default}
	sc := QuickScale()
	sc.Inputs = 20
	opt := CellOptions{Schemes: []string{SchemeALERT}, KeepRecords: true, Parallelism: 3}
	cell, err := RunCell(key, core.MinimizeEnergy, sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	recs := cell.RawRecords[SchemeALERT]
	if len(recs) != len(cell.Settings) {
		t.Fatalf("kept %d records for %d settings", len(recs), len(cell.Settings))
	}
	serialOpt := opt
	serialOpt.Parallelism = 0
	serialCell, err := RunCell(key, core.MinimizeEnergy, sc, serialOpt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if !reflect.DeepEqual(recs[i].Samples, serialCell.RawRecords[SchemeALERT][i].Samples) {
			t.Fatalf("setting %d: parallel record differs from serial", i)
		}
	}
}
