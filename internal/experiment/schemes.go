package experiment

import (
	"fmt"

	"github.com/alert-project/alert/internal/baselines"
	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/platform"
	"github.com/alert-project/alert/internal/runner"
)

// Scheme identifiers, matching Table 3's roster.
const (
	SchemeALERT     = "ALERT"
	SchemeALERTAny  = "ALERT-Any"
	SchemeALERTTrad = "ALERT-Trad"
	SchemeALERTStar = "ALERT*"
	SchemeSysOnly   = "Sys-only"
	SchemeAppOnly   = "App-only"
	SchemeNoCoord   = "No-coord"
	SchemeOracle    = "Oracle"
	SchemeOracleSt  = "OracleStatic"
)

// Table4Schemes is the roster evaluated per cell (OracleStatic is the
// normalization baseline and runs implicitly).
var Table4Schemes = []string{
	SchemeALERT, SchemeALERTAny, SchemeALERTTrad, SchemeALERTStar,
	SchemeSysOnly, SchemeAppOnly, SchemeNoCoord, SchemeOracle,
}

// Profiles bundles the three candidate-set profiles a cell needs: the full
// traditional+anytime set ALERT uses, the anytime-only set shared by
// ALERT-Any / App-only / No-coord, and the traditional-only set of
// ALERT-Trad.
type Profiles struct {
	Full, Any, Trad *dnn.ProfileTable
}

// BuildProfiles profiles the evaluation candidate sets for a task on a
// platform.
func BuildProfiles(p *platform.Platform, task dnn.Task) (*Profiles, error) {
	full := dnn.CandidatesFor(task)
	fullProf, err := dnn.Profile(p, full)
	if err != nil {
		return nil, err
	}
	anyProf, err := dnn.Profile(p, dnn.Anytime(full))
	if err != nil {
		return nil, err
	}
	tradProf, err := dnn.Profile(p, dnn.Traditional(full))
	if err != nil {
		return nil, err
	}
	return &Profiles{Full: fullProf, Any: anyProf, Trad: tradProf}, nil
}

// NewScheme constructs a scheduler by name together with the profile table
// it runs over.
func NewScheme(id string, profs *Profiles, spec core.Spec) (runner.Scheduler, *dnn.ProfileTable, error) {
	return newScheme(id, profs, spec, false)
}

// newScheme is NewScheme with the differential-testing knob: reference
// routes every ALERT-variant controller through the naive scorer
// (core.Options.ReferenceScorer), which must not change any grid number.
func newScheme(id string, profs *Profiles, spec core.Spec, reference bool) (runner.Scheduler, *dnn.ProfileTable, error) {
	opts := core.DefaultOptions()
	opts.ReferenceScorer = reference
	switch id {
	case SchemeALERT:
		return baselines.NewAlert(id, profs.Full, spec, opts), profs.Full, nil
	case SchemeALERTAny:
		return baselines.NewAlert(id, profs.Any, spec, opts), profs.Any, nil
	case SchemeALERTTrad:
		return baselines.NewAlert(id, profs.Trad, spec, opts), profs.Trad, nil
	case SchemeALERTStar:
		opts.UseVariance = false
		return baselines.NewAlert(id, profs.Full, spec, opts), profs.Full, nil
	case SchemeSysOnly:
		return baselines.NewSysOnly(profs.Full, spec), profs.Full, nil
	case SchemeAppOnly:
		return baselines.NewAppOnly(profs.Any), profs.Any, nil
	case SchemeNoCoord:
		return baselines.NewNoCoord(profs.Any, spec), profs.Any, nil
	case SchemeOracle:
		return baselines.NewOracle(spec), profs.Full, nil
	default:
		return nil, nil, fmt.Errorf("experiment: unknown scheme %q", id)
	}
}
