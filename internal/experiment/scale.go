// Package experiment reproduces every table and figure in the paper's
// evaluation (§2 and §5). Each experiment is a pure function from a Scale
// (stream lengths, constraint-grid density, seed) to a typed result struct
// with a text renderer, so the same code backs the cmd/experiments binary,
// the integration tests, and the benchmark harness.
package experiment

// Scale sets the size of an experiment run. Full reproduces the paper's
// setting counts (35–40 constraint settings per Table 4 cell); Quick is a
// reduced grid for tests and benchmarks.
type Scale struct {
	// Inputs is the stream length per run.
	Inputs int
	// DeadlineFactors multiply the reference latency (the mean latency of
	// the largest anytime DNN under the default environment, Table 3) to
	// form the deadline axis of every constraint grid.
	DeadlineFactors []float64
	// OtherLevels is the number of grid levels on the second constraint
	// axis (accuracy goals or energy budgets).
	OtherLevels int
	// Seed drives all randomness.
	Seed int64
	// Parallelism is the number of constraint settings run concurrently
	// inside each cell. Every setting is seed-deterministic and
	// independent, so results are identical at any value; 0 or 1 runs
	// serially.
	Parallelism int
}

// FullScale matches the paper: 6 deadline factors x 6 levels = 36 settings
// per cell, inside the 35–40 band of Table 4's caption.
func FullScale() Scale {
	return Scale{
		Inputs:          300,
		DeadlineFactors: []float64{0.4, 0.65, 0.9, 1.25, 1.6, 2.0},
		OtherLevels:     6,
		Seed:            42,
	}
}

// QuickScale is a 3x3 grid with short streams for tests and benchmarks.
func QuickScale() Scale {
	return Scale{
		Inputs:          120,
		DeadlineFactors: []float64{0.5, 1.0, 1.8},
		OtherLevels:     3,
		Seed:            42,
	}
}

// Settings returns the number of constraint settings per grid.
func (s Scale) Settings() int { return len(s.DeadlineFactors) * s.OtherLevels }
