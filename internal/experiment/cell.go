package experiment

import (
	"sync"

	"github.com/alert-project/alert/internal/baselines"
	"github.com/alert-project/alert/internal/contention"
	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/metrics"
	"github.com/alert-project/alert/internal/platform"
	"github.com/alert-project/alert/internal/runner"
	"github.com/alert-project/alert/internal/scenario"
)

// CellKey identifies one Table 4 cell: a platform, a task (DNN family), and
// a contention scenario.
type CellKey struct {
	Platform string
	Task     dnn.Task
	Scenario contention.Scenario
}

// Workload returns the Table 4 row label for the scenario ("Idle" is the
// paper's name for the Default environment in that table).
func (k CellKey) Workload() string {
	if k.Scenario == contention.Default {
		return "Idle"
	}
	return k.Scenario.String()
}

// Family returns the Table 4 DNN-column label.
func (k CellKey) Family() string {
	if k.Task == dnn.SentencePrediction {
		return "RNN"
	}
	return "SparseResnet"
}

// Cell is the result of running the full roster over one constraint grid.
type Cell struct {
	Key       CellKey
	Objective core.Objective
	// Norm maps scheme name to its Table 4 cell (normalized average +
	// violated-setting superscript).
	Norm map[string]metrics.CellResult
	// PerSetting keeps the raw per-setting aggregates per scheme
	// (including OracleStatic), backing Figures 8 and 10.
	PerSetting map[string][]metrics.SettingResult
	// Settings echoes the constraint grid that was run.
	Settings []Setting
	// RawRecords optionally retains the full per-input records keyed by
	// scheme, in grid order; populated only when KeepRecords is set.
	RawRecords map[string][]*metrics.Record
}

// CellOptions tune a cell run.
type CellOptions struct {
	// Schemes defaults to Table4Schemes.
	Schemes []string
	// KeepRecords retains per-input records (memory-heavy; Figures 8/10/11
	// need them, Table 4 does not).
	KeepRecords bool
	// Parallelism is the number of constraint settings executed
	// concurrently. Each setting is an independent, seed-deterministic
	// simulation, so the cell's results are identical at any parallelism;
	// values below 2 run serially, 0 keeps the serial default.
	Parallelism int
	// Scenario, when non-empty, names a built-in environment scenario
	// (internal/scenario). Every setting then runs against a trace of that
	// scenario compiled for the setting's deadline and seed — the scenario
	// dimension of the grid — instead of the stock CellKey.Scenario
	// co-runner source, and the trace's spec churn applies. CellKey.Scenario
	// still sets the grid's achievability margin.
	Scenario string
	// ReferenceScorer runs every ALERT-variant controller with the naive
	// pre-optimization scorer instead of the fast path. Grid results are
	// identical either way — the differential tests pin it — so this is a
	// testing/debugging knob only.
	ReferenceScorer bool
}

// RunCell executes one Table 4 cell: for every constraint setting in the
// grid it finds the OracleStatic baseline by exhaustive static search, runs
// every scheme over the identical environment draws, and normalizes.
func RunCell(key CellKey, obj core.Objective, sc Scale, opt CellOptions) (*Cell, error) {
	plat, err := platform.ByName(key.Platform)
	if err != nil {
		return nil, err
	}
	profs, err := BuildProfiles(plat, key.Task)
	if err != nil {
		return nil, err
	}
	schemes := opt.Schemes
	if schemes == nil {
		schemes = Table4Schemes
	}
	if opt.Parallelism == 0 {
		opt.Parallelism = sc.Parallelism
	}
	var scenSpec scenario.Spec
	if opt.Scenario != "" {
		if scenSpec, err = scenario.ByName(opt.Scenario); err != nil {
			return nil, err
		}
	}

	grid := GridFor(obj, profs.Full, key.Scenario, sc)
	cell := &Cell{
		Key:        key,
		Objective:  obj,
		Norm:       make(map[string]metrics.CellResult, len(schemes)),
		PerSetting: make(map[string][]metrics.SettingResult, len(schemes)+1),
		Settings:   grid,
	}
	if opt.KeepRecords {
		cell.RawRecords = make(map[string][]*metrics.Record)
	}

	// Every grid setting is an independent simulation with its own derived
	// seed, so the settings can run on as many goroutines as the caller
	// asks for. Results land in per-setting slots indexed by si and are
	// assembled in grid order below, keeping the cell byte-identical to a
	// serial run at any parallelism.
	type settingOut struct {
		results map[string]metrics.SettingResult
		// records is populated only under KeepRecords; otherwise each
		// setting's per-input samples become garbage as soon as the
		// setting aggregates, keeping peak memory at O(schemes) records.
		records map[string]*metrics.Record
		err     error
	}
	outs := make([]settingOut, len(grid))
	runSetting := func(si int) settingOut {
		setting := grid[si]
		seed := sc.Seed + int64(si)*9973
		baseCfg := runner.Config{
			Prof:      profs.Full,
			Scenario:  key.Scenario,
			Spec:      setting.Spec,
			NumInputs: sc.Inputs,
			Seed:      seed,
		}
		out := settingOut{results: make(map[string]metrics.SettingResult, len(schemes)+1)}
		if opt.Scenario != "" {
			// One trace per setting, shared by every scheme: the scenario
			// dimension stays apples-to-apples across the roster.
			tr, err := scenario.Compile(scenSpec, plat, sc.Inputs, setting.Spec.Deadline, seed)
			if err != nil {
				out.err = err
				return out
			}
			baseCfg.Trace = tr
		}
		if opt.KeepRecords {
			out.records = make(map[string]*metrics.Record, len(schemes)+1)
		}
		keep := func(id string, rec *metrics.Record) {
			out.results[id] = settingResult(id, rec)
			if opt.KeepRecords {
				out.records[id] = rec
			}
		}
		keep(SchemeOracleSt, baselines.OracleStatic(baseCfg).Record)
		for _, id := range schemes {
			sched, prof, err := newScheme(id, profs, setting.Spec, opt.ReferenceScorer)
			if err != nil {
				out.err = err
				return out
			}
			cfg := baseCfg
			cfg.Prof = prof
			keep(id, runner.Run(cfg, sched, nil))
		}
		return out
	}

	if workers := min(opt.Parallelism, len(grid)); workers > 1 {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for si := range next {
					outs[si] = runSetting(si)
				}
			}()
		}
		for si := range grid {
			next <- si
		}
		close(next)
		wg.Wait()
	} else {
		for si := range grid {
			outs[si] = runSetting(si)
		}
	}

	for _, out := range outs {
		if out.err != nil {
			return nil, out.err
		}
		for _, id := range append([]string{SchemeOracleSt}, schemes...) {
			cell.PerSetting[id] = append(cell.PerSetting[id], out.results[id])
			if opt.KeepRecords {
				cell.RawRecords[id] = append(cell.RawRecords[id], out.records[id])
			}
		}
	}

	for _, id := range schemes {
		cell.Norm[id] = metrics.Normalize(cell.PerSetting[id], cell.PerSetting[SchemeOracleSt],
			obj == core.MinimizeEnergy)
	}
	return cell, nil
}

func settingResult(scheme string, rec *metrics.Record) metrics.SettingResult {
	return metrics.SettingResult{
		Scheme:        scheme,
		AvgEnergy:     rec.AvgEnergy(),
		AvgError:      rec.AvgError(),
		Violated:      rec.SettingViolated(),
		ViolationRate: rec.ViolationRate(),
		MissRate:      rec.DeadlineMissRate(),
	}
}
