package experiment

import (
	"github.com/alert-project/alert/internal/baselines"
	"github.com/alert-project/alert/internal/contention"
	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/metrics"
	"github.com/alert-project/alert/internal/platform"
	"github.com/alert-project/alert/internal/runner"
)

// CellKey identifies one Table 4 cell: a platform, a task (DNN family), and
// a contention scenario.
type CellKey struct {
	Platform string
	Task     dnn.Task
	Scenario contention.Scenario
}

// Workload returns the Table 4 row label for the scenario ("Idle" is the
// paper's name for the Default environment in that table).
func (k CellKey) Workload() string {
	if k.Scenario == contention.Default {
		return "Idle"
	}
	return k.Scenario.String()
}

// Family returns the Table 4 DNN-column label.
func (k CellKey) Family() string {
	if k.Task == dnn.SentencePrediction {
		return "RNN"
	}
	return "SparseResnet"
}

// Cell is the result of running the full roster over one constraint grid.
type Cell struct {
	Key       CellKey
	Objective core.Objective
	// Norm maps scheme name to its Table 4 cell (normalized average +
	// violated-setting superscript).
	Norm map[string]metrics.CellResult
	// PerSetting keeps the raw per-setting aggregates per scheme
	// (including OracleStatic), backing Figures 8 and 10.
	PerSetting map[string][]metrics.SettingResult
	// Settings echoes the constraint grid that was run.
	Settings []Setting
	// RawRecords optionally retains the full per-input records keyed by
	// scheme, in grid order; populated only when KeepRecords is set.
	RawRecords map[string][]*metrics.Record
}

// CellOptions tune a cell run.
type CellOptions struct {
	// Schemes defaults to Table4Schemes.
	Schemes []string
	// KeepRecords retains per-input records (memory-heavy; Figures 8/10/11
	// need them, Table 4 does not).
	KeepRecords bool
}

// RunCell executes one Table 4 cell: for every constraint setting in the
// grid it finds the OracleStatic baseline by exhaustive static search, runs
// every scheme over the identical environment draws, and normalizes.
func RunCell(key CellKey, obj core.Objective, sc Scale, opt CellOptions) (*Cell, error) {
	plat, err := platform.ByName(key.Platform)
	if err != nil {
		return nil, err
	}
	profs, err := BuildProfiles(plat, key.Task)
	if err != nil {
		return nil, err
	}
	schemes := opt.Schemes
	if schemes == nil {
		schemes = Table4Schemes
	}

	grid := GridFor(obj, profs.Full, key.Scenario, sc)
	cell := &Cell{
		Key:        key,
		Objective:  obj,
		Norm:       make(map[string]metrics.CellResult, len(schemes)),
		PerSetting: make(map[string][]metrics.SettingResult, len(schemes)+1),
		Settings:   grid,
	}
	if opt.KeepRecords {
		cell.RawRecords = make(map[string][]*metrics.Record)
	}

	for si, setting := range grid {
		seed := sc.Seed + int64(si)*9973
		baseCfg := runner.Config{
			Prof:      profs.Full,
			Scenario:  key.Scenario,
			Spec:      setting.Spec,
			NumInputs: sc.Inputs,
			Seed:      seed,
		}

		static := baselines.OracleStatic(baseCfg)
		cell.PerSetting[SchemeOracleSt] = append(cell.PerSetting[SchemeOracleSt],
			settingResult(SchemeOracleSt, static.Record))
		if opt.KeepRecords {
			cell.RawRecords[SchemeOracleSt] = append(cell.RawRecords[SchemeOracleSt], static.Record)
		}

		for _, id := range schemes {
			sched, prof, err := NewScheme(id, profs, setting.Spec)
			if err != nil {
				return nil, err
			}
			cfg := baseCfg
			cfg.Prof = prof
			rec := runner.Run(cfg, sched, nil)
			cell.PerSetting[id] = append(cell.PerSetting[id], settingResult(id, rec))
			if opt.KeepRecords {
				cell.RawRecords[id] = append(cell.RawRecords[id], rec)
			}
		}
	}

	for _, id := range schemes {
		cell.Norm[id] = metrics.Normalize(cell.PerSetting[id], cell.PerSetting[SchemeOracleSt],
			obj == core.MinimizeEnergy)
	}
	return cell, nil
}

func settingResult(scheme string, rec *metrics.Record) metrics.SettingResult {
	return metrics.SettingResult{
		Scheme:    scheme,
		AvgEnergy: rec.AvgEnergy(),
		AvgError:  rec.AvgError(),
		Violated:  rec.SettingViolated(),
	}
}
