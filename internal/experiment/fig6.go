package experiment

import (
	"fmt"
	"math"
	"strings"

	"github.com/alert-project/alert/internal/baselines"
	"github.com/alert-project/alert/internal/contention"
	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/platform"
	"github.com/alert-project/alert/internal/runner"
)

// Fig6Point is one constraint setting of the §2.3 single-layer study.
type Fig6Point struct {
	Deadline     float64
	AccuracyGoal float64
	// Energies per scheme; +Inf when the scheme cannot meet the setting.
	SysOnly, AppOnly, Combined float64
}

// Fig6Result compares the App-level, Sys-level, and Combined oracles over
// the ImageNet zoo on CPU1 across deadlines 0.1–0.7 s and accuracy goals
// 85–95 % while minimizing energy.
type Fig6Result struct {
	Points []Fig6Point
	// AppOverCombined is the mean energy ratio across settings both can
	// meet (the paper reports App-only using ~60 % more energy).
	AppOverCombined float64
	// SysInfeasibleBelow is the smallest deadline the Sys-level oracle
	// could meet at any accuracy goal (paper: nothing below 0.3 s).
	SysInfeasibleBelow float64
}

// RunFig6 reproduces Figure 6.
func RunFig6(sc Scale) (*Fig6Result, error) {
	plat := platform.CPU1()
	zoo := dnn.ImageNetZoo(sc.Seed)
	prof, err := dnn.Profile(plat, zoo)
	if err != nil {
		return nil, err
	}
	defaultCap := prof.CapIndex(plat.DefaultCap)
	defaultModel := prof.ModelIndex(dnn.MostAccurate(zoo).Name)

	deadlines := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7}
	accGoals := []float64{0.85, 0.875, 0.90, 0.925, 0.95}

	res := &Fig6Result{SysInfeasibleBelow: math.Inf(1)}
	var ratios []float64
	for _, T := range deadlines {
		for _, Q := range accGoals {
			spec := core.Spec{Objective: core.MinimizeEnergy, Deadline: T, AccuracyGoal: Q}
			cfg := runner.Config{
				Prof:      prof,
				Scenario:  contention.Default,
				Spec:      spec,
				NumInputs: sc.Inputs / 2, // §2.3 used 90 inputs
				Seed:      sc.Seed + int64(1000*T) + int64(10000*Q),
			}
			point := Fig6Point{Deadline: T, AccuracyGoal: Q}
			point.SysOnly = oracleEnergy(cfg, baselines.NewSysOracle(spec, defaultModel))
			point.AppOnly = oracleEnergy(cfg, baselines.NewAppOracle(spec, defaultCap))
			point.Combined = oracleEnergy(cfg, baselines.NewOracle(spec))
			res.Points = append(res.Points, point)

			if !math.IsInf(point.SysOnly, 1) && T < res.SysInfeasibleBelow {
				res.SysInfeasibleBelow = T
			}
			if !math.IsInf(point.AppOnly, 1) && !math.IsInf(point.Combined, 1) {
				ratios = append(ratios, point.AppOnly/point.Combined)
			}
		}
	}
	if len(ratios) > 0 {
		var sum float64
		for _, r := range ratios {
			sum += r
		}
		res.AppOverCombined = sum / float64(len(ratios))
	}
	return res, nil
}

// oracleEnergy runs a (possibly layer-restricted) oracle and returns its
// average energy, or +Inf when the oracle violates constraints on more
// than 10 % of inputs — the ∞ bars of Figure 6.
func oracleEnergy(cfg runner.Config, o runner.Scheduler) float64 {
	rec := runner.Run(cfg, o, nil)
	if rec.SettingViolated() {
		return math.Inf(1)
	}
	return rec.AvgEnergy()
}

// Render produces the text form of Figure 6.
func (r *Fig6Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 6: minimize energy with latency+accuracy constraints, single-layer vs combined oracles (CPU1)\n")
	fmt.Fprintf(&b, "%-10s %-8s %12s %12s %12s\n", "Deadline", "AccGoal", "Sys-level", "App-level", "Combined")
	fm := func(x float64) string {
		if math.IsInf(x, 1) {
			return "inf"
		}
		return fmt.Sprintf("%.2f", x)
	}
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-10.2f %-8.3f %12s %12s %12s\n",
			p.Deadline, p.AccuracyGoal, fm(p.SysOnly), fm(p.AppOnly), fm(p.Combined))
	}
	fmt.Fprintf(&b, "App-level / Combined mean energy ratio: %.2f (paper: ~1.6)\n", r.AppOverCombined)
	fmt.Fprintf(&b, "Sys-level feasible only at deadlines >= %.2fs (paper: >= 0.3s)\n", r.SysInfeasibleBelow)
	return b.String()
}
