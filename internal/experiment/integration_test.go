package experiment

import (
	"math"
	"strings"
	"testing"

	"github.com/alert-project/alert/internal/contention"
	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/dnn"
)

// These integration tests assert the qualitative shapes of the paper's
// evaluation at reduced scale: who wins, roughly by how much, and where the
// crossovers fall. EXPERIMENTS.md records the full-scale numbers.

func TestCellMemoryEnergyShape(t *testing.T) {
	key := CellKey{Platform: "CPU1", Task: dnn.ImageClassification, Scenario: contention.Memory}
	cell, err := RunCell(key, core.MinimizeEnergy, QuickScale(), CellOptions{})
	if err != nil {
		t.Fatal(err)
	}
	alert := cell.Norm[SchemeALERT]
	oracle := cell.Norm[SchemeOracle]
	appOnly := cell.Norm[SchemeAppOnly]
	sysOnly := cell.Norm[SchemeSysOnly]

	// Oracle is the floor and never violates.
	if oracle.ViolatedSettings != 0 {
		t.Errorf("oracle violated %d settings", oracle.ViolatedSettings)
	}
	if alert.NormValue < oracle.NormValue {
		t.Errorf("ALERT (%.3f) below oracle (%.3f)", alert.NormValue, oracle.NormValue)
	}
	// ALERT lands within ~15% of the oracle's energy (the paper reports
	// 93-99% of optimal; our simulated contention is harsher on feedback
	// control, see EXPERIMENTS.md).
	if alert.NormValue > oracle.NormValue*1.2 {
		t.Errorf("ALERT (%.3f) too far from oracle (%.3f)", alert.NormValue, oracle.NormValue)
	}
	// ALERT does not lose to the static oracle.
	if alert.NormValue > 1.05 {
		t.Errorf("ALERT norm %.3f should not exceed OracleStatic", alert.NormValue)
	}
	// App-only wastes energy wholesale (it cannot move the cap).
	if appOnly.NormValue < 1.5 {
		t.Errorf("App-only norm %.3f suspiciously thrifty", appOnly.NormValue)
	}
	// Sys-only violates accuracy constraints on a large share of settings
	// (it is pinned to the fastest, least accurate model).
	if sysOnly.ViolatedSettings < cell.Norm[SchemeALERT].Settings/3 {
		t.Errorf("Sys-only violated only %d settings", sysOnly.ViolatedSettings)
	}
	// ALERT stays almost violation-free.
	if alert.ViolatedSettings > 2 {
		t.Errorf("ALERT violated %d settings", alert.ViolatedSettings)
	}
}

func TestCellErrorTaskShape(t *testing.T) {
	key := CellKey{Platform: "CPU1", Task: dnn.ImageClassification, Scenario: contention.Memory}
	cell, err := RunCell(key, core.MaximizeAccuracy, QuickScale(), CellOptions{})
	if err != nil {
		t.Fatal(err)
	}
	oracle := cell.Norm[SchemeOracle]
	alert := cell.Norm[SchemeALERT]
	sysOnly := cell.Norm[SchemeSysOnly]
	star := cell.Norm[SchemeALERTStar]

	if oracle.NormValue > 1.0 {
		t.Errorf("oracle error norm %.3f above static", oracle.NormValue)
	}
	// Sys-only's pinned fast model carries much more error than ALERT.
	if sysOnly.NormValue < alert.NormValue*1.15 {
		t.Errorf("Sys-only (%.3f) should trail ALERT (%.3f) clearly",
			sysOnly.NormValue, alert.NormValue)
	}
	// The mean-only ablation violates far more often (Fig. 10's point).
	if star.ViolatedSettings <= alert.ViolatedSettings {
		t.Errorf("ALERT* violations (%d) should exceed ALERT's (%d)",
			star.ViolatedSettings, alert.ViolatedSettings)
	}
}

func TestGPUQuieterThanCPU(t *testing.T) {
	// §5.2: "ALERT has more advantage over OracleStatic on CPUs than on
	// GPUs" because the GPU fluctuates less. Compare ALERT's normalized
	// energy on the Default scenario.
	sc := QuickScale()
	cpu, err := RunCell(CellKey{Platform: "CPU1", Task: dnn.ImageClassification, Scenario: contention.Default},
		core.MinimizeEnergy, sc, CellOptions{Schemes: []string{SchemeALERT, SchemeOracle}})
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := RunCell(CellKey{Platform: "GPU", Task: dnn.ImageClassification, Scenario: contention.Default},
		core.MinimizeEnergy, sc, CellOptions{Schemes: []string{SchemeALERT, SchemeOracle}})
	if err != nil {
		t.Fatal(err)
	}
	// On the quiet GPU the static oracle is near-optimal, so ALERT's
	// normalized value sits near 1; allow generous slack but require the
	// CPU advantage to be at least as large as the GPU's.
	if cpu.Norm[SchemeALERT].NormValue > gpu.Norm[SchemeALERT].NormValue+0.05 {
		t.Errorf("ALERT on CPU (%.3f) should gain at least as much vs static as on GPU (%.3f)",
			cpu.Norm[SchemeALERT].NormValue, gpu.Norm[SchemeALERT].NormValue)
	}
}

func TestFig2Spans(t *testing.T) {
	res, err := RunFig2(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if res.LatencySpan < 15 || res.LatencySpan > 21 {
		t.Errorf("latency span %.1fx, paper: ~18x", res.LatencySpan)
	}
	if res.ErrorSpan < 6.5 || res.ErrorSpan > 9 {
		t.Errorf("error span %.1fx, paper: ~7.8x", res.ErrorSpan)
	}
	if res.EnergySpan < 18 {
		t.Errorf("energy span %.1fx, paper: >20x", res.EnergySpan)
	}
	var hull int
	for _, r := range res.Rows {
		if r.OnHull {
			hull++
		}
	}
	if hull < 3 || hull == len(res.Rows) {
		t.Errorf("hull size %d of %d implausible", hull, len(res.Rows))
	}
	if !strings.Contains(res.Render(), "Figure 2") {
		t.Error("render missing title")
	}
}

func TestFig3Shape(t *testing.T) {
	res, err := RunFig3(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 31 {
		t.Errorf("%d power settings, paper sweeps 31", len(res.Rows))
	}
	if res.MinEnergyCap != 40 {
		t.Errorf("min energy at %gW, paper: 40W", res.MinEnergyCap)
	}
	if res.MaxEnergyCap < 56 || res.MaxEnergyCap > 72 {
		t.Errorf("max energy at %gW, paper: 64W", res.MaxEnergyCap)
	}
	if res.MaxOverMin < 1.15 || res.MaxOverMin > 1.45 {
		t.Errorf("max/min energy %.2f, paper: ~1.3", res.MaxOverMin)
	}
	if res.SpeedRatio < 1.9 || res.SpeedRatio > 2.1 {
		t.Errorf("speed ratio %.2f, paper: ~2x", res.SpeedRatio)
	}
	// Latency decreases monotonically with the cap.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Latency >= res.Rows[i-1].Latency {
			t.Fatal("latency not decreasing with power")
		}
	}
}

func TestFigVarianceShape(t *testing.T) {
	quiet, err := RunFigVariance(false, QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	loud, err := RunFigVariance(true, QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	// Embedded runs only NLP1; everything else OOMs (Fig. 4 caption).
	var oom int
	for _, b := range quiet.Boxes {
		if b.Platform == "Embedded" {
			if b.Setting == "NLP1" && b.OOM {
				t.Error("NLP1 should fit the embedded board")
			}
			if b.Setting != "NLP1" && !b.OOM {
				t.Errorf("%s should OOM on the embedded board", b.Setting)
			}
		}
		if b.OOM {
			oom++
		}
	}
	if oom != 3 {
		t.Errorf("OOM count %d, want 3", oom)
	}
	// Co-location raises the median and widens the spread (Fig. 5 vs 4).
	for i := range quiet.Boxes {
		q, l := quiet.Boxes[i], loud.Boxes[i]
		if q.OOM {
			continue
		}
		if l.Box.Median < q.Box.Median {
			t.Errorf("%s/%s: contended median below quiet", q.Setting, q.Platform)
		}
		qSpread := q.Box.P90 - q.Box.P10
		lSpread := l.Box.P90 - l.Box.P10
		if lSpread < qSpread {
			t.Errorf("%s/%s: contention narrowed the spread", q.Setting, q.Platform)
		}
	}
	// GPU is fastest for image tasks; Embedded slowest for NLP1.
	find := func(r *FigVarianceResult, set, plat string) VarianceBox {
		for _, b := range r.Boxes {
			if b.Setting == set && b.Platform == plat {
				return b
			}
		}
		t.Fatalf("missing box %s/%s", set, plat)
		return VarianceBox{}
	}
	if find(quiet, "IMG2", "GPU").Box.Median >= find(quiet, "IMG2", "CPU2").Box.Median {
		t.Error("GPU should be fastest on IMG2")
	}
	if find(quiet, "NLP1", "Embedded").Box.Median <= find(quiet, "NLP1", "CPU1").Box.Median {
		t.Error("Embedded should be slowest on NLP1")
	}
}

func TestFig6SingleLayerShape(t *testing.T) {
	res, err := RunFig6(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	// §2.3's two headline findings.
	if res.AppOverCombined < 1.2 {
		t.Errorf("App-level oracle should waste noticeably more energy than Combined: %.2f",
			res.AppOverCombined)
	}
	if res.SysInfeasibleBelow < 0.25 || res.SysInfeasibleBelow > 0.55 {
		t.Errorf("Sys-level feasibility crossover at %.2fs, paper: 0.3s", res.SysInfeasibleBelow)
	}
	// The combined oracle meets every setting the App-level oracle meets.
	for _, p := range res.Points {
		if !math.IsInf(p.AppOnly, 1) && math.IsInf(p.Combined, 1) {
			t.Errorf("combined infeasible where app-only feasible at T=%g Q=%g", p.Deadline, p.AccuracyGoal)
		}
		if !math.IsInf(p.Combined, 1) && !math.IsInf(p.AppOnly, 1) && p.Combined > p.AppOnly*1.02 {
			t.Errorf("combined (%.2f) worse than app-only (%.2f)", p.Combined, p.AppOnly)
		}
	}
}

func TestFig9DynamicBehaviour(t *testing.T) {
	res, err := RunFig9(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) != 2 {
		t.Fatal("want ALERT and ALERT-Trad traces")
	}
	alert, trad := res.Traces[0], res.Traces[1]
	// ALERT leans on the anytime network during the burst and keeps
	// accuracy high; ALERT-Trad must drop to small models and lose more.
	if share := alert.AnytimeShare(res.BurstStart, res.BurstEnd); share < 0.3 {
		t.Errorf("ALERT anytime share during burst %.2f, expected heavy use", share)
	}
	aBurst := alert.MeanQuality(res.BurstStart, res.BurstEnd)
	tBurst := trad.MeanQuality(res.BurstStart, res.BurstEnd)
	if aBurst <= tBurst {
		t.Errorf("ALERT burst quality %.4f not above ALERT-Trad %.4f", aBurst, tBurst)
	}
	// Both recover after the burst.
	if alert.MeanQuality(res.BurstEnd, 160) < alert.MeanQuality(0, res.BurstStart)-0.01 {
		t.Error("ALERT did not recover after the burst")
	}
	if trad.MeanQuality(res.BurstEnd, 160) < tBurst {
		t.Error("ALERT-Trad did not recover after the burst")
	}
}

func TestFig10ProbabilisticDesign(t *testing.T) {
	res, err := RunFig10(contention.Memory, QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 3 {
		t.Fatal("want Standard / Trad / Any groups")
	}
	for _, g := range res.Groups {
		if g.Alert.Mean > g.AlertStar.Mean*1.02 {
			t.Errorf("%s: ALERT perplexity %.1f worse than ALERT* %.1f",
				g.CandidateSet, g.Alert.Mean, g.AlertStar.Mean)
		}
		// Penn Treebank ballpark (Fig. 10's y-axes run ~100-300).
		if g.Alert.Mean < 80 || g.Alert.Mean > 400 {
			t.Errorf("%s: perplexity %.1f outside plausible range", g.CandidateSet, g.Alert.Mean)
		}
	}
}

func TestFig11XiDistributions(t *testing.T) {
	res, err := RunFig11(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Histograms) != 3 {
		t.Fatal("want three environments")
	}
	byScenario := map[contention.Scenario]Fig11Histogram{}
	for _, h := range res.Histograms {
		byScenario[h.Scenario] = h
		var total float64
		for _, f := range h.Freq {
			total += f
		}
		if math.Abs(total-1) > 1e-9 {
			t.Errorf("%v histogram mass %g", h.Scenario, total)
		}
	}
	// Contended environments shift the fitted mean and spread upward.
	d, m := byScenario[contention.Default], byScenario[contention.Memory]
	if m.MuHat <= d.MuHat {
		t.Error("memory contention should raise the fitted mean")
	}
	if m.SigmaHat <= d.SigmaHat {
		t.Error("memory contention should raise the fitted sigma")
	}
	// Default's observations concentrate near 1 (Fig. 11 top panel).
	if d.Stats.Median < 0.98 || d.Stats.Median > 1.06 {
		t.Errorf("default median xi %g", d.Stats.Median)
	}
	if m.Stats.P90 < 1.3 {
		t.Errorf("memory p90 xi %g, expected substantial slowdowns", m.Stats.P90)
	}
}

func TestTable5CandidateSets(t *testing.T) {
	sc := QuickScale()
	sc.Inputs = 100
	tbl, err := RunTable5(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 9 {
		t.Fatalf("rows = %d, want 3 platforms x 3 scenarios", len(tbl.Rows))
	}
	hm := tbl.HarmonicMeans(true)
	for _, id := range Table5Schemes {
		if math.IsNaN(hm[id]) || hm[id] <= 0 {
			t.Errorf("%s harmonic mean %g", id, hm[id])
		}
	}
	if !strings.Contains(tbl.Render(), "Harmonic mean") {
		t.Error("render incomplete")
	}
}

func TestCellDeterministic(t *testing.T) {
	key := CellKey{Platform: "CPU1", Task: dnn.ImageClassification, Scenario: contention.Compute}
	sc := QuickScale()
	sc.Inputs = 80
	opts := CellOptions{Schemes: []string{SchemeALERT}}
	a, err := RunCell(key, core.MinimizeEnergy, sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := RunCell(key, core.MinimizeEnergy, sc, opts)
	if a.Norm[SchemeALERT] != b.Norm[SchemeALERT] {
		t.Error("cell runs not deterministic")
	}
}
