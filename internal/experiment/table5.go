package experiment

import (
	"fmt"
	"math"
	"strings"

	"github.com/alert-project/alert/internal/contention"
	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/mathx"
	"github.com/alert-project/alert/internal/metrics"
)

// Table5Schemes is the candidate-set comparison roster: the full mixed set,
// the anytime-only set, and the traditional-only set.
var Table5Schemes = []string{SchemeALERT, SchemeALERTAny, SchemeALERTTrad}

// Table5Row is one (platform, workload) row of Table 5, Sparse ResNet task.
type Table5Row struct {
	Key    CellKey
	Energy map[string]metrics.CellResult
	Error  map[string]metrics.CellResult
}

// Table5 compares ALERT under different DNN candidate sets (§5.3).
type Table5 struct {
	Rows []Table5Row
}

// RunTable5 reproduces Table 5: image classification on CPU1/CPU2/GPU under
// the three environments.
func RunTable5(sc Scale) (*Table5, error) {
	t := &Table5{}
	for _, plat := range []string{"CPU1", "CPU2", "GPU"} {
		for _, scenario := range contention.Scenarios() {
			key := CellKey{Platform: plat, Task: dnn.ImageClassification, Scenario: scenario}
			opt := CellOptions{Schemes: Table5Schemes}
			energy, err := RunCell(key, core.MinimizeEnergy, sc, opt)
			if err != nil {
				return nil, err
			}
			errCell, err := RunCell(key, core.MaximizeAccuracy, sc, opt)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, Table5Row{
				Key:    key,
				Energy: energy.Norm,
				Error:  errCell.Norm,
			})
		}
	}
	return t, nil
}

// HarmonicMeans returns the bottom row for one objective column.
func (t *Table5) HarmonicMeans(energyTask bool) map[string]float64 {
	out := make(map[string]float64)
	for _, id := range Table5Schemes {
		var vals []float64
		for _, row := range t.Rows {
			cells := row.Energy
			if !energyTask {
				cells = row.Error
			}
			v := cells[id].NormValue
			if !math.IsNaN(v) && v > 0 {
				vals = append(vals, v)
			}
		}
		out[id] = mathx.HarmonicMean(vals)
	}
	return out
}

// Render produces the text form of Table 5.
func (t *Table5) Render() string {
	var b strings.Builder
	b.WriteString("Table 5: ALERT candidate sets, normalized to OracleStatic @ Sparse ResNet (lower is better)\n")
	fmt.Fprintf(&b, "%-6s %-8s", "Plat.", "Work.")
	for _, id := range Table5Schemes {
		fmt.Fprintf(&b, " %12s", id)
	}
	b.WriteString("   |")
	for _, id := range Table5Schemes {
		fmt.Fprintf(&b, " %12s", id)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-15s %38s   | %36s\n", "", "Minimize Energy Task", "Minimize Error Task")
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%-6s %-8s", row.Key.Platform, row.Key.Workload())
		writeCells := func(cells map[string]metrics.CellResult) {
			for _, id := range Table5Schemes {
				c := cells[id]
				val := fmt.Sprintf("%.2f", c.NormValue)
				if math.IsNaN(c.NormValue) {
					val = "--"
				}
				if c.ViolatedSettings > 0 {
					val += fmt.Sprintf("^%d", c.ViolatedSettings)
				}
				fmt.Fprintf(&b, " %12s", val)
			}
		}
		writeCells(row.Energy)
		b.WriteString("   |")
		writeCells(row.Error)
		b.WriteByte('\n')
	}
	hmE, hmR := t.HarmonicMeans(true), t.HarmonicMeans(false)
	fmt.Fprintf(&b, "%-15s", "Harmonic mean")
	for _, id := range Table5Schemes {
		fmt.Fprintf(&b, " %12.2f", hmE[id])
	}
	b.WriteString("   |")
	for _, id := range Table5Schemes {
		fmt.Fprintf(&b, " %12.2f", hmR[id])
	}
	b.WriteByte('\n')
	return b.String()
}
