package experiment

import (
	"reflect"
	"testing"

	"github.com/alert-project/alert/internal/contention"
	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/dnn"
)

// TestGridCellFastPathMatchesReference is the experiment-grid leg of the
// decide-fast-path differential criterion: a full Table 4 cell — every
// ALERT variant, every constraint setting, with per-input records kept —
// must be byte-identical whether the controllers score with the optimized
// hot path or the naive reference scorer.
func TestGridCellFastPathMatchesReference(t *testing.T) {
	key := CellKey{Platform: "CPU1", Task: dnn.ImageClassification, Scenario: contention.Memory}
	schemes := []string{SchemeALERT, SchemeALERTStar, SchemeALERTAny}
	base := CellOptions{Schemes: schemes, KeepRecords: true}

	fast, err := RunCell(key, core.MinimizeEnergy, scenarioScale(), base)
	if err != nil {
		t.Fatal(err)
	}
	refOpts := base
	refOpts.ReferenceScorer = true
	ref, err := RunCell(key, core.MinimizeEnergy, scenarioScale(), refOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fast.Norm, ref.Norm) {
		t.Error("normalized cell diverges between fast and reference scorers")
	}
	if !reflect.DeepEqual(fast.PerSetting, ref.PerSetting) {
		t.Error("per-setting aggregates diverge between fast and reference scorers")
	}
	for _, id := range schemes {
		for si := range fast.RawRecords[id] {
			if !reflect.DeepEqual(fast.RawRecords[id][si].Samples, ref.RawRecords[id][si].Samples) {
				t.Errorf("scheme %s setting %d: per-input samples diverge", id, si)
			}
		}
	}
}

// TestScenarioCellFastPathMatchesReference repeats the comparison along the
// scenario dimension, where compiled-trace spec churn retargets the
// controllers mid-stream — the cache-invalidation-heavy regime.
func TestScenarioCellFastPathMatchesReference(t *testing.T) {
	key := CellKey{Platform: "CPU1", Task: dnn.ImageClassification}
	base := CellOptions{Schemes: []string{SchemeALERT}, Scenario: "churn"}

	fast, err := RunCell(key, core.MinimizeEnergy, scenarioScale(), base)
	if err != nil {
		t.Fatal(err)
	}
	refOpts := base
	refOpts.ReferenceScorer = true
	ref, err := RunCell(key, core.MinimizeEnergy, scenarioScale(), refOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fast.PerSetting, ref.PerSetting) {
		t.Error("scenario cell diverges between fast and reference scorers")
	}
}
