package experiment

import (
	"strings"
	"testing"

	"github.com/alert-project/alert/internal/contention"
	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/mathx"
)

// TestRenderersProduceCompleteTables exercises every text renderer the
// cmd/experiments binary prints, checking structural completeness rather
// than exact strings.
func TestRenderersProduceCompleteTables(t *testing.T) {
	sc := QuickScale()
	sc.Inputs = 60

	t.Run("fig3", func(t *testing.T) {
		res, err := RunFig3(sc)
		if err != nil {
			t.Fatal(err)
		}
		out := res.Render()
		if strings.Count(out, "\n") < len(res.Rows) {
			t.Error("render shorter than the row count")
		}
		if !strings.Contains(out, "min energy @") {
			t.Error("missing summary line")
		}
	})

	t.Run("fig45", func(t *testing.T) {
		res, err := RunFigVariance(true, sc)
		if err != nil {
			t.Fatal(err)
		}
		out := res.Render()
		if !strings.Contains(out, "Figure 5") {
			t.Error("contended render mislabeled")
		}
		if !strings.Contains(out, "OOM") {
			t.Error("embedded OOMs missing from render")
		}
	})

	t.Run("fig6", func(t *testing.T) {
		res, err := RunFig6(sc)
		if err != nil {
			t.Fatal(err)
		}
		out := res.Render()
		if !strings.Contains(out, "inf") {
			t.Error("no infeasible settings rendered; Sys-level should fail tight deadlines")
		}
	})

	t.Run("fig9", func(t *testing.T) {
		res, err := RunFig9(sc)
		if err != nil {
			t.Fatal(err)
		}
		out := res.Render()
		if !strings.Contains(out, "ALERT-Trad") || !strings.Contains(out, "mean quality") {
			t.Error("fig9 render incomplete")
		}
	})

	t.Run("fig10", func(t *testing.T) {
		res, err := RunFig10(contention.Default, sc)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(res.Render(), "ALERT*") {
			t.Error("ablation column missing")
		}
	})

	t.Run("fig11", func(t *testing.T) {
		res, err := RunFig11(sc)
		if err != nil {
			t.Fatal(err)
		}
		out := res.Render()
		for _, name := range []string{"Default", "Compute", "Memory"} {
			if !strings.Contains(out, name) {
				t.Errorf("missing %s histogram", name)
			}
		}
	})

	t.Run("cell-and-fig7", func(t *testing.T) {
		key := CellKey{Platform: "GPU", Task: dnn.ImageClassification, Scenario: contention.Default}
		schemes := []string{SchemeALERT, SchemeOracle}
		energy, err := RunCell(key, core.MinimizeEnergy, sc, CellOptions{Schemes: schemes})
		if err != nil {
			t.Fatal(err)
		}
		errc, err := RunCell(key, core.MaximizeAccuracy, sc, CellOptions{Schemes: schemes})
		if err != nil {
			t.Fatal(err)
		}
		t4 := &Table4{
			Rows:    []Table4Row{{Key: key, Energy: energy, Error: errc}},
			Schemes: schemes,
		}
		out := t4.Render()
		if !strings.Contains(out, "Harmonic mean") || !strings.Contains(out, "GPU") {
			t.Error("table4 render incomplete")
		}
		f7 := Fig7(t4)
		if !strings.Contains(f7.Render(), "violations") {
			t.Error("fig7 render incomplete")
		}
		for _, id := range schemes {
			if f7.NormPerf[0][id] <= 0 {
				t.Errorf("%s: missing summary value", id)
			}
		}
	})

	t.Run("fig8", func(t *testing.T) {
		res := &Fig8Result{Groups: []Fig8Group{{
			Platform: "CPU1",
			Task:     dnn.ImageClassification,
			Boxes:    map[contention.Scenario]map[string]mathx.BoxStats{},
		}}}
		if !strings.Contains(res.Render(), "CPU1") {
			t.Error("fig8 render missing group header")
		}
	})

	t.Run("cellkey-labels", func(t *testing.T) {
		k := CellKey{Platform: "CPU1", Task: dnn.SentencePrediction, Scenario: contention.Default}
		if k.Workload() != "Idle" || k.Family() != "RNN" {
			t.Errorf("labels: %s/%s", k.Workload(), k.Family())
		}
		k2 := CellKey{Platform: "CPU1", Task: dnn.ImageClassification, Scenario: contention.Memory}
		if k2.Workload() != "Memory" || k2.Family() != "SparseResnet" {
			t.Errorf("labels: %s/%s", k2.Workload(), k2.Family())
		}
	})
}
