package experiment

import (
	"fmt"
	"strings"

	"github.com/alert-project/alert/internal/baselines"
	"github.com/alert-project/alert/internal/contention"
	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/platform"
	"github.com/alert-project/alert/internal/runner"
	"github.com/alert-project/alert/internal/sim"
	"github.com/alert-project/alert/internal/workload"
)

// Fig9Sample is one input of the Figure 9 trace.
type Fig9Sample struct {
	Input      int
	Latency    float64
	CapW       float64
	Quality    float64
	ModelName  string
	UsedAny    bool
	Contention bool
	Violated   bool
}

// Fig9Trace is one scheme's trajectory.
type Fig9Trace struct {
	Scheme  string
	Samples []Fig9Sample
}

// Fig9Result reproduces the dynamic-behaviour study: ALERT vs ALERT-Trad
// minimizing error under latency and energy constraints on CPU1 while a
// memory-contention burst covers inputs 46–119 of 160.
type Fig9Result struct {
	Deadline    float64
	PowerLimitW float64
	BurstStart  int
	BurstEnd    int
	Traces      []Fig9Trace
}

// RunFig9 runs the scripted trace for both schemes over identical draws.
func RunFig9(sc Scale) (*Fig9Result, error) {
	plat, err := platform.ByName("CPU1")
	if err != nil {
		return nil, err
	}
	profs, err := BuildProfiles(plat, dnn.ImageClassification)
	if err != nil {
		return nil, err
	}
	// Deadline: 1.25x mean latency of the largest anytime DNN in Default;
	// power limit 35 W (figure caption).
	deadline := 1.25 * referenceLatency(profs.Full)
	const limitW = 35.0
	spec := core.Spec{
		Objective:    core.MaximizeAccuracy,
		Deadline:     deadline,
		EnergyBudget: limitW * deadline,
	}
	const inputs = 160
	const burstStart, burstEnd = 46, 119

	res := &Fig9Result{
		Deadline:    deadline,
		PowerLimitW: limitW,
		BurstStart:  burstStart,
		BurstEnd:    burstEnd,
	}

	run := func(name string, prof *dnn.ProfileTable) error {
		cfg := runner.Config{
			Prof:      prof,
			Scenario:  contention.Memory, // used only for seeding; env overridden below
			Spec:      spec,
			NumInputs: inputs,
			Seed:      sc.Seed,
		}
		cont := contention.NewScripted(plat.Kind, sc.Seed+77,
			contention.Burst{Start: burstStart, End: burstEnd, Scenario: contention.Memory})
		env := sim.NewEnv(prof, cont, sc.Seed*3+3)
		sched := baselines.NewAlert(name, prof, spec, core.DefaultOptions())
		trace := Fig9Trace{Scheme: name}
		runner.RunEnv(cfg, env, sched, func(in workload.Input, d sim.Decision, out sim.Outcome) {
			m := prof.Models[d.Model]
			trace.Samples = append(trace.Samples, Fig9Sample{
				Input:      in.ID,
				Latency:    out.Latency,
				CapW:       out.CapApplied,
				Quality:    out.Quality,
				ModelName:  m.Name,
				UsedAny:    m.IsAnytime(),
				Contention: out.ContentionActive,
				Violated:   out.Latency > deadline || out.Energy > spec.EnergyBudget,
			})
		})
		res.Traces = append(res.Traces, trace)
		return nil
	}

	if err := run("ALERT", profs.Full); err != nil {
		return nil, err
	}
	if err := run("ALERT-Trad", profs.Trad); err != nil {
		return nil, err
	}
	return res, nil
}

// MeanQuality returns a trace's average quality over an input range.
func (t *Fig9Trace) MeanQuality(from, to int) float64 {
	var sum float64
	n := 0
	for _, s := range t.Samples {
		if s.Input >= from && s.Input < to {
			sum += s.Quality
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// AnytimeShare returns the fraction of inputs in the range served by an
// anytime model.
func (t *Fig9Trace) AnytimeShare(from, to int) float64 {
	var any, n int
	for _, s := range t.Samples {
		if s.Input >= from && s.Input < to {
			if s.UsedAny {
				any++
			}
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(any) / float64(n)
}

// Render produces the text form of Figure 9 (sampled every 5 inputs).
func (r *Fig9Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: minimize error under latency %.3fs and power %gW constraints (CPU1)\n",
		r.Deadline, r.PowerLimitW)
	fmt.Fprintf(&b, "memory contention active on inputs [%d, %d)\n", r.BurstStart, r.BurstEnd)
	for _, t := range r.Traces {
		fmt.Fprintf(&b, "-- %s --\n", t.Scheme)
		fmt.Fprintf(&b, "%-6s %10s %8s %9s %-16s %5s\n", "input", "latency(s)", "cap(W)", "quality", "model", "cont")
		for i, s := range t.Samples {
			if i%5 != 0 {
				continue
			}
			cont := ""
			if s.Contention {
				cont = "*"
			}
			fmt.Fprintf(&b, "%-6d %10.4f %8.1f %9.4f %-16s %5s\n",
				s.Input, s.Latency, s.CapW, s.Quality, s.ModelName, cont)
		}
		fmt.Fprintf(&b, "mean quality: pre-burst %.4f | burst %.4f | post-burst %.4f; anytime share in burst %.0f%%\n",
			t.MeanQuality(0, r.BurstStart), t.MeanQuality(r.BurstStart, r.BurstEnd),
			t.MeanQuality(r.BurstEnd, len(t.Samples)), 100*t.AnytimeShare(r.BurstStart, r.BurstEnd))
	}
	return b.String()
}
