package experiment

import (
	"fmt"
	"strings"

	"github.com/alert-project/alert/internal/contention"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/platform"
	"github.com/alert-project/alert/internal/sim"
	"github.com/alert-project/alert/internal/workload"
)

// Fig2Row is one network in the Figure 2 scatter.
type Fig2Row struct {
	Name     string
	Latency  float64 // measured mean latency, s
	ErrorPct float64 // top-5 error, %
	Energy   float64 // measured mean inference energy, J
	OnHull   bool
}

// Fig2Result is the 42-network tradeoff study of §2.1 on CPU2.
type Fig2Result struct {
	Rows []Fig2Row
	// Spans echo the paper's headline ratios: fastest-to-slowest latency,
	// highest-to-lowest error, and energy span.
	LatencySpan, ErrorSpan, EnergySpan float64
}

// RunFig2 measures every zoo model on CPU2 at the default cap over an
// image stream, as §2.1 does over 50k ImageNet images.
func RunFig2(sc Scale) (*Fig2Result, error) {
	plat := platform.CPU2()
	zoo := dnn.ImageNetZoo(sc.Seed)
	prof, err := dnn.Profile(plat, zoo)
	if err != nil {
		return nil, err
	}
	capIdx := prof.CapIndex(plat.DefaultCap)

	hull := make(map[string]bool)
	for _, m := range dnn.ZooLowerHull(zoo) {
		hull[m.Name] = true
	}

	res := &Fig2Result{}
	for i, m := range zoo {
		cont := contention.NewSource(contention.Default, plat.Kind, sc.Seed+int64(i))
		env := sim.NewEnv(prof, cont, sc.Seed+1000+int64(i))
		stream := workload.NewImageStream(sc.Inputs, sc.Seed+2000)
		var lat, en float64
		n := 0
		for {
			in, ok := stream.Next()
			if !ok {
				break
			}
			// No deadline in this study: measure unconstrained inference.
			goal := prof.At(i, capIdx) * 100
			out := env.Step(sim.Decision{Model: i, Cap: capIdx}, in, goal, 0)
			lat += out.Latency
			en += out.InferEnergy
			n++
		}
		res.Rows = append(res.Rows, Fig2Row{
			Name:     m.Name,
			Latency:  lat / float64(n),
			ErrorPct: 100 * (1 - m.Accuracy),
			Energy:   en / float64(n),
			OnHull:   hull[m.Name],
		})
	}

	minLat, maxLat := res.Rows[0].Latency, res.Rows[0].Latency
	minErr, maxErr := res.Rows[0].ErrorPct, res.Rows[0].ErrorPct
	minEn, maxEn := res.Rows[0].Energy, res.Rows[0].Energy
	for _, r := range res.Rows[1:] {
		minLat, maxLat = minF(minLat, r.Latency), maxF(maxLat, r.Latency)
		minErr, maxErr = minF(minErr, r.ErrorPct), maxF(maxErr, r.ErrorPct)
		minEn, maxEn = minF(minEn, r.Energy), maxF(maxEn, r.Energy)
	}
	res.LatencySpan = maxLat / minLat
	res.ErrorSpan = maxErr / minErr
	res.EnergySpan = maxEn / minEn
	return res, nil
}

// Render produces the text form of Figure 2.
func (r *Fig2Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 2: tradeoffs of 42 image-classification DNNs (CPU2, default power)\n")
	fmt.Fprintf(&b, "%-10s %12s %12s %12s %6s\n", "Model", "Latency(s)", "Top5Err(%)", "Energy(J)", "Hull")
	for _, row := range r.Rows {
		hull := ""
		if row.OnHull {
			hull = "*"
		}
		fmt.Fprintf(&b, "%-10s %12.4f %12.2f %12.2f %6s\n",
			row.Name, row.Latency, row.ErrorPct, row.Energy, hull)
	}
	fmt.Fprintf(&b, "spans: latency %.1fx, error %.1fx, energy %.1fx (paper: 18x, 7.8x, >20x)\n",
		r.LatencySpan, r.ErrorSpan, r.EnergySpan)
	return b.String()
}

// Fig3Row is one power setting in the Figure 3 sweep.
type Fig3Row struct {
	CapW    float64
	Latency float64 // mean inference latency, s
	Energy  float64 // mean energy per period (run + idle), J
}

// Fig3Result is the ResNet50 power sweep of §2.1 on CPU2 with periodic
// inputs (period = latency at the 40 W cap).
type Fig3Result struct {
	Rows   []Fig3Row
	Period float64
	// MinEnergyCap / MaxEnergyCap mark the curve's extremes; the paper
	// finds the minimum at 40 W and the maximum at 64 W (1.3x higher).
	MinEnergyCap, MaxEnergyCap float64
	MaxOverMin                 float64
	SpeedRatio                 float64 // speed(100W)/speed(40W), paper: >2x
}

// RunFig3 sweeps ResNet50 across the 40–100 W range in 2 W steps — the 31
// settings of §2.1.
func RunFig3(sc Scale) (*Fig3Result, error) {
	plat := platform.CPU2()
	plat.PStep = 2 // the sweep uses a finer ladder than the runtime's 5 W
	models := []*dnn.Model{dnn.ResNet50()}
	prof, err := dnn.Profile(plat, models)
	if err != nil {
		return nil, err
	}
	period := prof.At(0, 0) // nominal latency at the 40 W floor

	res := &Fig3Result{Period: period}
	for j := range prof.Caps {
		cont := contention.NewSource(contention.Default, plat.Kind, sc.Seed)
		env := sim.NewEnv(prof, cont, sc.Seed+int64(j))
		stream := workload.NewImageStream(sc.Inputs, sc.Seed+2000)
		var lat, en float64
		n := 0
		for {
			in, ok := stream.Next()
			if !ok {
				break
			}
			out := env.Step(sim.Decision{Model: 0, Cap: j}, in, period*100, period)
			lat += out.Latency
			en += out.Energy
			n++
		}
		res.Rows = append(res.Rows, Fig3Row{
			CapW:    prof.Caps[j],
			Latency: lat / float64(n),
			Energy:  en / float64(n),
		})
	}

	minI, maxI := 0, 0
	for i, r := range res.Rows {
		if r.Energy < res.Rows[minI].Energy {
			minI = i
		}
		if r.Energy > res.Rows[maxI].Energy {
			maxI = i
		}
	}
	res.MinEnergyCap = res.Rows[minI].CapW
	res.MaxEnergyCap = res.Rows[maxI].CapW
	res.MaxOverMin = res.Rows[maxI].Energy / res.Rows[minI].Energy
	res.SpeedRatio = res.Rows[0].Latency / res.Rows[len(res.Rows)-1].Latency
	return res, nil
}

// Render produces the text form of Figure 3.
func (r *Fig3Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 3: ResNet50 energy/latency across power caps (CPU2, period = latency@40W)\n")
	fmt.Fprintf(&b, "%-8s %12s %14s\n", "Cap(W)", "Latency(s)", "Energy/period(J)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8.0f %12.4f %14.3f\n", row.CapW, row.Latency, row.Energy)
	}
	fmt.Fprintf(&b, "min energy @ %.0fW, max energy @ %.0fW (%.2fx), speed 100W/40W = %.2fx\n",
		r.MinEnergyCap, r.MaxEnergyCap, r.MaxOverMin, r.SpeedRatio)
	fmt.Fprintf(&b, "(paper: min @ 40W, max @ 64W at 1.3x, speed ratio > 2x)\n")
	return b.String()
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
