package experiment

import (
	"fmt"
	"strings"

	"github.com/alert-project/alert/internal/baselines"
	"github.com/alert-project/alert/internal/contention"
	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/mathx"
	"github.com/alert-project/alert/internal/metrics"
	"github.com/alert-project/alert/internal/platform"
	"github.com/alert-project/alert/internal/runner"
)

// Fig10Group is one candidate-set column of Figure 10: the distribution
// over constraint settings of average perplexity for ALERT and for the
// mean-only ablation ALERT*.
type Fig10Group struct {
	CandidateSet string // "Standard", "Trad. Only", "Any. Only"
	Alert        mathx.BoxStats
	AlertStar    mathx.BoxStats
}

// Fig10Result evaluates ALERT's probabilistic design (§5.3): minimize
// error for sentence prediction on CPU1, reporting perplexity (lower is
// better), under the Default and Memory environments.
type Fig10Result struct {
	Scenario contention.Scenario
	Groups   []Fig10Group
}

// RunFig10 reproduces one subplot of Figure 10.
func RunFig10(scenario contention.Scenario, sc Scale) (*Fig10Result, error) {
	plat, err := platform.ByName("CPU1")
	if err != nil {
		return nil, err
	}
	profs, err := BuildProfiles(plat, dnn.SentencePrediction)
	if err != nil {
		return nil, err
	}
	sets := []struct {
		name string
		prof *dnn.ProfileTable
	}{
		{"Standard", profs.Full},
		{"Trad. Only", profs.Trad},
		{"Any. Only", profs.Any},
	}

	res := &Fig10Result{Scenario: scenario}
	for _, set := range sets {
		grid := ErrorTaskGrid(set.prof, scenario, sc)
		var alertPPL, starPPL []float64
		for si, setting := range grid {
			seed := sc.Seed + int64(si)*7919
			cfg := runner.Config{
				Prof:      set.prof,
				Scenario:  scenario,
				Spec:      setting.Spec,
				NumInputs: sc.Inputs,
				Seed:      seed,
			}
			opts := core.DefaultOptions()
			alert := baselines.NewAlert("ALERT", set.prof, setting.Spec, opts)
			alertPPL = append(alertPPL, avgPerplexity(runner.Run(cfg, alert, nil)))

			opts.UseVariance = false
			star := baselines.NewAlert("ALERT*", set.prof, setting.Spec, opts)
			starPPL = append(starPPL, avgPerplexity(runner.Run(cfg, star, nil)))
		}
		res.Groups = append(res.Groups, Fig10Group{
			CandidateSet: set.name,
			Alert:        mathx.Box(alertPPL),
			AlertStar:    mathx.Box(starPPL),
		})
	}
	return res, nil
}

// avgPerplexity converts a record's per-input qualities to mean perplexity.
func avgPerplexity(rec *metrics.Record) float64 {
	var sum float64
	n := 0
	for _, q := range rec.Qualities() {
		sum += dnn.PerplexityFromQuality(q)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Render produces the text form of one Figure 10 subplot.
func (r *Fig10Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10 (%s contention): minimize error for sentence prediction @ CPU1 — average perplexity, lower is better\n",
		r.Scenario)
	fmt.Fprintf(&b, "%-12s %24s %24s\n", "Candidates", "ALERT mean [min..max]", "ALERT* mean [min..max]")
	for _, g := range r.Groups {
		fmt.Fprintf(&b, "%-12s %8.1f [%6.1f..%7.1f] %8.1f [%6.1f..%7.1f]\n",
			g.CandidateSet, g.Alert.Mean, g.Alert.Min, g.Alert.Max,
			g.AlertStar.Mean, g.AlertStar.Min, g.AlertStar.Max)
	}
	return b.String()
}
