package experiment

import (
	"fmt"
	"math"
	"strings"

	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/mathx"
	"github.com/alert-project/alert/internal/metrics"
	"github.com/alert-project/alert/internal/scenario"
)

// ScenarioSchemes is the roster the scenario sweep runs: ALERT, its
// mean-only ablation, the single-layer and uncoordinated baselines, and the
// clairvoyant upper bound.
var ScenarioSchemes = []string{
	SchemeALERT, SchemeALERTStar, SchemeSysOnly, SchemeNoCoord, SchemeOracle,
}

// ScenarioRow is one environment scenario's results over the constraint
// grid: the Table 4-style normalized cell per scheme, plus the mean
// per-input deadline-miss and violation rates that steady-state tables hide.
type ScenarioRow struct {
	Scenario    string
	Description string
	Norm        map[string]metrics.CellResult
	MissRate    map[string]float64
	SLO         map[string]float64
}

// ScenarioSweep evaluates the roster across environment scenarios — the
// dynamic-environment dimension the paper's §6 claims and the steady-state
// grids of Table 4 cannot show. One row per built-in scenario: the same
// constraint grid, but every setting runs against a compiled scenario trace
// (phase-switching contention, throttling ramps, spec churn) instead of the
// stationary co-runner model.
type ScenarioSweep struct {
	Platform  string
	Objective core.Objective
	Scale     Scale
	Rows      []ScenarioRow
}

// RunScenarioSweep runs the scenario dimension for the named scenarios
// (nil or empty means all built-ins) on CPU1, image classification,
// minimize-energy — the paper's headline cell, now under dynamic
// environments.
func RunScenarioSweep(names []string, sc Scale) (*ScenarioSweep, error) {
	if len(names) == 0 {
		names = scenario.Names()
	}
	sweep := &ScenarioSweep{Platform: "CPU1", Objective: core.MinimizeEnergy, Scale: sc}
	for _, name := range names {
		spec, err := scenario.ByName(name)
		if err != nil {
			return nil, err
		}
		// The grid's achievability margin follows the heaviest co-runner
		// the scenario ever schedules, like the paper's setup keeps every
		// setting satisfiable by at least the oracle.
		key := CellKey{
			Platform: sweep.Platform,
			Task:     dnn.ImageClassification,
			Scenario: spec.HeaviestEnvironment(),
		}
		cell, err := RunCell(key, sweep.Objective, sc, CellOptions{
			Schemes:  ScenarioSchemes,
			Scenario: name,
		})
		if err != nil {
			return nil, err
		}
		row := ScenarioRow{
			Scenario:    name,
			Description: spec.Description,
			Norm:        cell.Norm,
			MissRate:    make(map[string]float64, len(ScenarioSchemes)),
			SLO:         make(map[string]float64, len(ScenarioSchemes)),
		}
		for _, id := range ScenarioSchemes {
			var miss, viol []float64
			for _, s := range cell.PerSetting[id] {
				miss = append(miss, s.MissRate)
				viol = append(viol, s.ViolationRate)
			}
			row.MissRate[id] = mathx.Mean(miss)
			row.SLO[id] = 1 - mathx.Mean(viol)
		}
		sweep.Rows = append(sweep.Rows, row)
	}
	return sweep, nil
}

// Render produces the sweep's text table: per scenario and scheme the
// normalized energy (violated-setting superscript) and the mean
// deadline-miss rate.
func (s *ScenarioSweep) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scenario sweep: %s, image classification, minimize-energy (norm. energy vs OracleStatic; ^n = violated settings; miss%% = mean deadline-miss rate)\n", s.Platform)
	fmt.Fprintf(&b, "%-10s", "Scenario")
	for _, id := range ScenarioSchemes {
		fmt.Fprintf(&b, " %18s", id)
	}
	b.WriteByte('\n')
	for _, row := range s.Rows {
		fmt.Fprintf(&b, "%-10s", row.Scenario)
		for _, id := range ScenarioSchemes {
			c := row.Norm[id]
			val := fmt.Sprintf("%.2f", c.NormValue)
			if math.IsNaN(c.NormValue) {
				val = "--"
			}
			if c.ViolatedSettings > 0 {
				val += fmt.Sprintf("^%d", c.ViolatedSettings)
			}
			fmt.Fprintf(&b, " %11s %5.1f%%", val, 100*row.MissRate[id])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
