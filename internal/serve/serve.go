// Package serve is ALERT's concurrent serving layer. The paper's runtime
// serves one inference stream per controller (§3.6); production traffic is
// many independent streams, so the pool shards them: N core.Controller
// replicas, each with its own Kalman filter state, each owned by exactly
// one worker goroutine that drains a private FIFO queue.
//
// The sharding preserves the paper's semantics exactly. A stream is pinned
// to a shard (stream mod N), its Decide/Observe requests are applied in
// submission order, and no controller state is ever shared across shards —
// so each shard's decision sequence is byte-identical to running that
// stream against a lone Controller serially. Cross-shard throughput scales
// with cores because shards never contend on anything but the counters,
// which are atomic.
//
// The invariants, precisely:
//
//   - Per-stream FIFO: all submissions for one stream land on one shard's
//     queue and are applied in submission order. An Observe returns before
//     it is applied, but a later Decide on the same stream is ordered
//     behind it and therefore sees the updated filter state.
//   - Shard isolation: streams mapping to different shards never affect
//     each other's decisions. Streams sharing a shard share its controller
//     (one ξ filter), so their interleaving — which is scheduling-
//     dependent — feeds one merged observation sequence; byte-exact
//     replayability across runs requires at most one stream per shard
//     (cmd/alertload's deterministic default).
//   - Reads run on the owning worker: XiEstimate and Drain enqueue like
//     any task, so they observe a prefix-consistent controller state and
//     never race with mutations.
//   - Backpressure, not shedding: a full queue blocks the submitter; the
//     pool never drops or reorders work.
package serve

import (
	"sync"
	"time"

	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/metrics"
	"github.com/alert-project/alert/internal/sim"
)

// Config sizes a Pool. Zero values select single-shard serving with a
// small queue.
type Config struct {
	// Shards is the number of controller replicas (and workers). Values
	// below 1 mean 1.
	Shards int
	// QueueDepth is the per-shard FIFO capacity. Submissions beyond it
	// block until the worker catches up (backpressure). Values below 1
	// mean 64.
	QueueDepth int
}

func (c Config) shards() int {
	if c.Shards < 1 {
		return 1
	}
	return c.Shards
}

func (c Config) depth() int {
	if c.QueueDepth < 1 {
		return 64
	}
	return c.QueueDepth
}

type taskKind int

const (
	taskDecide taskKind = iota
	taskObserve
	taskBarrier
	taskXi
)

type decideReply struct {
	d   sim.Decision
	est core.Estimate
}

type task struct {
	kind    taskKind
	spec    core.Spec
	out     sim.Outcome
	reply   chan decideReply // decide: buffered 1, worker never blocks
	done    chan struct{}    // barrier: closed when the shard reaches it
	xiReply chan [2]float64  // xi read: buffered 1
	start   time.Time
}

type shard struct {
	ctl    *core.Controller
	ch     chan task
	exited chan struct{}
}

// Pool is a sharded front-end over N controller replicas.
type Pool struct {
	shards   []*shard
	counters *metrics.ServeCounters

	closeOnce sync.Once
}

// NewPool builds one controller replica per shard over a shared (read-only)
// profile table and starts the shard workers.
func NewPool(prof *dnn.ProfileTable, opts core.Options, cfg Config) *Pool {
	p := &Pool{
		shards:   make([]*shard, cfg.shards()),
		counters: metrics.NewServeCounters(),
	}
	for i := range p.shards {
		s := &shard{
			ctl:    core.New(prof, opts),
			ch:     make(chan task, cfg.depth()),
			exited: make(chan struct{}),
		}
		p.shards[i] = s
		go p.work(s)
	}
	return p
}

func (p *Pool) work(s *shard) {
	defer close(s.exited)
	for t := range s.ch {
		switch t.kind {
		case taskDecide:
			d, est := s.ctl.Decide(t.spec)
			// Counters record before the reply unblocks the client, so a
			// Stats read that follows a completed Decide always sees it.
			p.counters.RecordDecide(time.Since(t.start))
			t.reply <- decideReply{d: d, est: est}
		case taskObserve:
			s.ctl.Observe(t.out)
			p.counters.RecordObserve()
		case taskBarrier:
			close(t.done)
		case taskXi:
			// Controller state is only ever touched on this goroutine;
			// reads must run here too or they race with the mutations.
			t.xiReply <- [2]float64{s.ctl.XiMean(), s.ctl.XiStd()}
		}
	}
}

// NumShards returns the replica count.
func (p *Pool) NumShards() int { return len(p.shards) }

// Counters exposes the pool's throughput/latency counters.
func (p *Pool) Counters() *metrics.ServeCounters { return p.counters }

// shardFor pins a stream to a shard.
func (p *Pool) shardFor(stream int) *shard {
	i := stream % len(p.shards)
	if i < 0 {
		i += len(p.shards)
	}
	return p.shards[i]
}

// Decide routes the spec to the stream's shard and blocks for the decision.
// Requests submitted to one shard are served in submission order.
func (p *Pool) Decide(stream int, spec core.Spec) (sim.Decision, core.Estimate) {
	reply := make(chan decideReply, 1)
	p.shardFor(stream).ch <- task{kind: taskDecide, spec: spec, reply: reply, start: time.Now()}
	r := <-reply
	return r.d, r.est
}

// Observe enqueues a measurement for the stream's shard and returns without
// waiting for it to be applied. It is still FIFO-ordered behind every
// earlier submission for that shard, so a subsequent Decide on the same
// stream sees the updated filter state.
func (p *Pool) Observe(stream int, out sim.Outcome) {
	p.shardFor(stream).ch <- task{kind: taskObserve, out: out}
}

// Request is one element of a batched dispatch.
type Request struct {
	// Stream selects the shard (and therefore the filter state) serving
	// this request.
	Stream int
	Spec   core.Spec
}

// Result is the pool's answer to one batched Request, in request order.
type Result struct {
	Decision sim.Decision
	Estimate core.Estimate
}

// DecideBatch dispatches the whole batch across shards and blocks until
// every decision is in. Requests that share a stream are served in batch
// order; requests on different streams run concurrently. Results are
// returned in request order.
func (p *Pool) DecideBatch(reqs []Request) []Result {
	if len(reqs) == 0 {
		return nil
	}
	p.counters.RecordBatch()
	replies := make([]chan decideReply, len(reqs))
	start := time.Now()
	for i, r := range reqs {
		replies[i] = make(chan decideReply, 1)
		p.shardFor(r.Stream).ch <- task{kind: taskDecide, spec: r.Spec, reply: replies[i], start: start}
	}
	out := make([]Result, len(reqs))
	for i := range replies {
		r := <-replies[i]
		out[i] = Result{Decision: r.d, Estimate: r.est}
	}
	return out
}

// Drain blocks until every shard has served everything submitted before the
// call. It is the fence that makes reading shard state (XiEstimate, tests)
// well-defined.
func (p *Pool) Drain() {
	barriers := make([]chan struct{}, len(p.shards))
	for i, s := range p.shards {
		barriers[i] = make(chan struct{})
		s.ch <- task{kind: taskBarrier, done: barriers[i]}
	}
	for _, b := range barriers {
		<-b
	}
}

// XiEstimate reports the (mean, std) of a shard's slowdown filter, ordered
// after everything submitted to that shard before the call.
func (p *Pool) XiEstimate(stream int) (mu, sigma float64) {
	reply := make(chan [2]float64, 1)
	p.shardFor(stream).ch <- task{kind: taskXi, xiReply: reply}
	r := <-reply
	return r[0], r[1]
}

// Close drains and stops every worker. The pool must not be used after
// Close; submissions concurrent with Close are the caller's race.
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		for _, s := range p.shards {
			close(s.ch)
		}
		for _, s := range p.shards {
			<-s.exited
		}
	})
}
