// Package serve is ALERT's concurrent serving layer. The paper's runtime
// serves one inference stream per controller (§3.6); production traffic is
// many independent streams, so the pool splits the controller the way
// internal/core does: one immutable core.Engine — the candidate space and
// its precomputed fast-path view, built once and shared by everything —
// and one lightweight core.Session per stream, held in a sharded stream
// table. Each shard is owned by exactly one worker goroutine that drains a
// private FIFO queue and multiplexes every session pinned to it; per-stream
// cost is one Session (a few hundred bytes), so the stream table scales to
// millions of streams on one engine.
//
// The sharding preserves the paper's semantics exactly, for every stream.
// A stream is pinned to a shard (stream mod N), its Decide/Observe requests
// are applied in submission order to its own session, and no session state
// is ever shared across streams — so every stream's decision sequence is
// byte-identical to running that stream against a lone Controller serially,
// no matter how many streams share its shard or how their traffic
// interleaves. Cross-shard throughput scales with cores because shards
// never contend on anything but the counters, which are atomic.
//
// The invariants, precisely:
//
//   - Per-stream FIFO: all submissions for one stream land on one shard's
//     queue and are applied in submission order. An Observe returns before
//     it is applied, but a later Decide on the same stream is ordered
//     behind it and therefore sees the updated filter state.
//   - Stream isolation: each stream has its own session (its own ξ and
//     idle-power filters, epoch, and decision cache), created on the
//     stream's first Decide or Observe (XiEstimate is a pure read and
//     answers sessionless streams from the engine's prior). Streams never
//     affect each other's decisions —
//     whether they map to different shards or share one — so replays are
//     byte-exact at any shard count; the scheduling-dependent interleaving
//     of a shard's streams changes only service order, never decisions.
//   - Session lifecycle: sessions are created on first use and live until
//     EvictStream removes them, or an EvictIdle sweep reaps them for having
//     no traffic within its maxAge (an idle stream costs its session's
//     bytes until then; the Streams/SessionBytes gauges watch the table). A
//     stream that returns after eviction starts a fresh session at the
//     prior filter state, exactly like a new stream.
//   - Reads run on the owning worker: XiEstimate and Drain enqueue like
//     any task, so they observe a prefix-consistent session state and
//     never race with mutations.
//   - Batched dispatch is shard-atomic: DecideBatch hands each shard one
//     group task carrying all of that shard's requests in batch order (one
//     channel operation per shard per batch), so a concurrent Observe
//     orders before or after the whole group, never inside it. Results
//     still come back in request order.
//   - Backpressure, not shedding: a full queue blocks the submitter; the
//     pool never drops or reorders work.
//
// Steady-state Decide is allocation-free: reply channels are pooled, tasks
// travel the shard channels by value, and a live stream's session is a map
// hit, so the only per-request work is the session's own (also
// allocation-free) decision. Only a stream's first request allocates — its
// session.
package serve

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/metrics"
	"github.com/alert-project/alert/internal/sim"
)

// Config sizes a Pool. Zero values select single-shard serving with a
// small queue.
type Config struct {
	// Shards is the number of stream-table shards (and workers). Values
	// below 1 mean 1. Streams per shard are unbounded; shards bound only
	// concurrency, not capacity.
	Shards int
	// QueueDepth is the per-shard FIFO capacity. Submissions beyond it
	// block until the worker catches up (backpressure). Values below 1
	// mean 64.
	QueueDepth int
}

func (c Config) shards() int {
	if c.Shards < 1 {
		return 1
	}
	return c.Shards
}

func (c Config) depth() int {
	if c.QueueDepth < 1 {
		return 64
	}
	return c.QueueDepth
}

type taskKind int

const (
	taskDecide taskKind = iota
	taskDecideGroup
	taskObserve
	taskEvict
	taskEvictIdle
	taskStreams
	taskBarrier
	taskXi
	taskExport
	taskImport
	taskSnapshot
)

type decideReply struct {
	d   sim.Decision
	est core.Estimate
}

// replyPool recycles the buffered-1 reply channels of the single-decide
// path. A fresh channel per Decide was the steady state's only allocation;
// pooling makes the whole submit→decide→reply round allocation-free. A
// pooled channel is always empty when Put back: the caller receives the one
// buffered reply before returning it.
var replyPool = sync.Pool{New: func() any { return make(chan decideReply, 1) }}

// batchGroup is one shard's slice of a DecideBatch dispatch: the shard's
// requests in batch order (stream + spec), plus where each result lands in
// the caller's request-ordered output. One group is one channel operation
// per shard per batch — the worker scores the whole group before touching
// the channel again, and writes results directly into the shared out slice
// (indices are disjoint across shards; wg.Wait gives the reader its
// happens-before).
type batchGroup struct {
	streams []int
	specs   []core.Spec
	idx     []int32
	out     []Result
	wg      *sync.WaitGroup
	start   time.Time
}

type task struct {
	kind    taskKind
	stream  int
	spec    core.Spec
	out     sim.Outcome
	reply   chan decideReply     // decide: buffered 1, worker never blocks
	group   *batchGroup          // decide group: one per shard per batch
	done    chan struct{}        // barrier/evict ack: closed when the shard reaches it
	xiReply chan [2]float64      // xi read: buffered 1
	evicted chan int             // idle sweep: evicted-count reply, buffered 1
	ids     chan []int           // stream listing: shard's stream ids, buffered 1
	snap    core.SessionSnapshot // import: the state to restore
	export  chan exportReply     // export: snapshot-and-remove reply, buffered 1
	imErr   chan error           // import: restore verdict, buffered 1
	// start is the submission timestamp of traffic tasks (decide/observe):
	// it feeds the latency counters and the session's last-use time. For
	// taskEvictIdle it carries the idle cutoff instead.
	start time.Time
}

// exportReply carries an ExportStream verdict: the snapshot, and whether
// the stream had a live session to snapshot at all.
type exportReply struct {
	snap core.SessionSnapshot
	ok   bool
}

// entry is one stream's slot in a shard's table: its session plus the
// submission time of the stream's latest traffic (Decide/Observe), the
// idle-eviction signal. Reads (XiEstimate) deliberately do not refresh
// lastUse — monitoring polls must not keep an abandoned stream alive.
type entry struct {
	sess    *core.Session
	lastUse time.Time
}

// shard is one stream-table partition: the sessions of every stream pinned
// here, all driven by the one worker goroutine that owns this struct. The
// sessions share one scan workspace — they are only ever used from this
// goroutine — so a shard's marginal cost per stream is just the Session.
type shard struct {
	eng      *core.Engine
	sessions map[int]*entry
	sc       *core.Scratch
	ch       chan task
	exited   chan struct{}
}

// session returns the stream's session, creating it on first use, and
// stamps the stream's last-use time with the task's submission time.
func (s *shard) session(stream int, at time.Time, counters *metrics.ServeCounters) *core.Session {
	e, ok := s.sessions[stream]
	if !ok {
		e = &entry{sess: s.eng.NewSessionWith(s.sc)}
		s.sessions[stream] = e
		counters.RecordSessionCreate(int64(core.SessionBytes()))
	}
	e.lastUse = at
	return e.sess
}

// Pool is a sharded stream table over one shared engine.
type Pool struct {
	eng      *core.Engine
	shards   []*shard
	counters *metrics.ServeCounters

	// clock supplies the submission timestamps that feed the latency
	// counters and the sessions' last-use times. It is time.Now in
	// production and swapped for a fake in the idle-eviction tests; it must
	// be set before any traffic and never changed afterwards.
	clock func() time.Time

	closeOnce sync.Once
}

// NewPool builds the shared engine once over a (read-only) profile table
// and starts the shard workers with empty stream tables.
func NewPool(prof *dnn.ProfileTable, opts core.Options, cfg Config) *Pool {
	eng := core.NewEngine(prof, opts)
	p := &Pool{
		eng:      eng,
		shards:   make([]*shard, cfg.shards()),
		counters: metrics.NewServeCounters(),
		clock:    time.Now,
	}
	for i := range p.shards {
		s := &shard{
			eng:      eng,
			sessions: make(map[int]*entry),
			sc:       eng.NewScratch(),
			ch:       make(chan task, cfg.depth()),
			exited:   make(chan struct{}),
		}
		p.shards[i] = s
		go p.work(s)
	}
	return p
}

func (p *Pool) work(s *shard) {
	defer close(s.exited)
	for t := range s.ch {
		switch t.kind {
		case taskDecide:
			// Queue delay — submit to pickup — is the pool's share of the
			// decide latency; the admission controller reads it off stats.
			p.counters.RecordQueueWait(time.Since(t.start))
			d, est := s.session(t.stream, t.start, p.counters).Decide(t.spec)
			// Counters record before the reply unblocks the client, so a
			// Stats read that follows a completed Decide always sees it.
			p.counters.RecordDecide(time.Since(t.start))
			t.reply <- decideReply{d: d, est: est}
		case taskDecideGroup:
			g := t.group
			p.counters.RecordQueueWait(time.Since(g.start))
			for j, spec := range g.specs {
				d, est := s.session(g.streams[j], g.start, p.counters).Decide(spec)
				p.counters.RecordDecide(time.Since(g.start))
				g.out[g.idx[j]] = Result{Decision: d, Estimate: est}
			}
			g.wg.Done()
		case taskObserve:
			s.session(t.stream, t.start, p.counters).Observe(t.out)
			p.counters.RecordObserve()
		case taskEvict:
			if _, ok := s.sessions[t.stream]; ok {
				delete(s.sessions, t.stream)
				p.counters.RecordSessionEvict(int64(core.SessionBytes()))
			}
			close(t.done)
		case taskEvictIdle:
			// t.start carries the cutoff: reap every session whose last
			// traffic predates it. Runs on the owning worker, so the sweep
			// is ordered like any task and cannot race in-flight decides.
			n := 0
			for stream, e := range s.sessions {
				if e.lastUse.Before(t.start) {
					delete(s.sessions, stream)
					p.counters.RecordSessionEvict(int64(core.SessionBytes()))
					n++
				}
			}
			t.evicted <- n
		case taskStreams:
			ids := make([]int, 0, len(s.sessions))
			for stream := range s.sessions {
				ids = append(ids, stream)
			}
			t.ids <- ids
		case taskExport:
			// Snapshot-and-remove on the owning worker: FIFO ordering means
			// every Decide/Observe submitted before the export has already
			// been applied (the queue IS the drain), and nothing can touch
			// the session between the snapshot and the delete.
			if e, ok := s.sessions[t.stream]; ok {
				snap := e.sess.Snapshot()
				delete(s.sessions, t.stream)
				p.counters.RecordSessionEvict(int64(core.SessionBytes()))
				p.counters.RecordStreamExport()
				t.export <- exportReply{snap: snap, ok: true}
			} else {
				t.export <- exportReply{}
			}
		case taskImport:
			// Restore onto this shard's shared workspace. An already-live
			// stream refuses the import: silently replacing a session that is
			// actively deciding would fork its decision sequence, which is
			// exactly what migration exists to prevent.
			if _, ok := s.sessions[t.stream]; ok {
				t.imErr <- fmt.Errorf("serve: stream %d already live, refusing import", t.stream)
				break
			}
			sess, err := s.eng.RestoreSessionWith(s.sc, t.snap)
			if err != nil {
				t.imErr <- err
				break
			}
			s.sessions[t.stream] = &entry{sess: sess, lastUse: t.start}
			p.counters.RecordSessionCreate(int64(core.SessionBytes()))
			p.counters.RecordStreamImport()
			t.imErr <- nil
		case taskSnapshot:
			// Checkpoint: snapshot on the owning worker WITHOUT removing the
			// session. FIFO ordering still gives crash consistency — every
			// Decide/Observe submitted before the checkpoint is folded in —
			// but the stream keeps serving here. Like XiEstimate, this is a
			// read, not traffic: it does not refresh lastUse, so periodic
			// checkpointing never keeps an abandoned stream alive.
			if e, ok := s.sessions[t.stream]; ok {
				t.export <- exportReply{snap: e.sess.Snapshot(), ok: true}
			} else {
				t.export <- exportReply{}
			}
		case taskBarrier:
			close(t.done)
		case taskXi:
			// Session state is only ever touched on this goroutine; reads
			// must run here too or they race with the mutations. A read is
			// not traffic: a stream with no session is answered from the
			// engine's prior without materializing one, so monitoring polls
			// (or reads racing an eviction) never re-inflate the table.
			if e, ok := s.sessions[t.stream]; ok {
				t.xiReply <- [2]float64{e.sess.XiMean(), e.sess.XiStd()}
			} else {
				mu, sigma := s.eng.XiPrior()
				t.xiReply <- [2]float64{mu, sigma}
			}
		}
	}
}

// Engine exposes the pool's shared immutable engine (e.g. for building
// dedicated comparison sessions in tests and benchmarks).
func (p *Pool) Engine() *core.Engine { return p.eng }

// NumShards returns the stream-table shard count.
func (p *Pool) NumShards() int { return len(p.shards) }

// NumStreams returns the live session count across all shards.
func (p *Pool) NumStreams() int { return int(p.counters.Snapshot().Streams) }

// Counters exposes the pool's throughput/latency counters and stream-table
// gauges.
func (p *Pool) Counters() *metrics.ServeCounters { return p.counters }

// shardIndex maps a stream id onto a shard slot.
func (p *Pool) shardIndex(stream int) int {
	i := stream % len(p.shards)
	if i < 0 {
		i += len(p.shards)
	}
	return i
}

// shardFor pins a stream to a shard.
func (p *Pool) shardFor(stream int) *shard {
	return p.shards[p.shardIndex(stream)]
}

// Decide routes the spec to the stream's shard and blocks for the decision,
// creating the stream's session on first use. Requests submitted to one
// shard are served in submission order. The steady-state round trip is
// allocation-free: the reply channel comes from a pool and the task rides
// the shard channel by value.
func (p *Pool) Decide(stream int, spec core.Spec) (sim.Decision, core.Estimate) {
	reply := replyPool.Get().(chan decideReply)
	p.shardFor(stream).ch <- task{kind: taskDecide, stream: stream, spec: spec, reply: reply, start: p.clock()}
	r := <-reply
	replyPool.Put(reply)
	return r.d, r.est
}

// Observe enqueues a measurement for the stream's session and returns
// without waiting for it to be applied. It is still FIFO-ordered behind
// every earlier submission for that shard, so a subsequent Decide on the
// same stream sees the updated filter state.
func (p *Pool) Observe(stream int, out sim.Outcome) {
	p.shardFor(stream).ch <- task{kind: taskObserve, stream: stream, out: out, start: p.clock()}
}

// EvictStream removes the stream's session from the table, releasing its
// memory, and blocks until the eviction is applied (so a sequential
// create→evict→read sequence observes the table shrink). Evicting an
// unknown stream is a no-op. Traffic already queued behind the eviction —
// or arriving later — recreates the session from the initial filter state,
// exactly like a brand-new stream.
func (p *Pool) EvictStream(stream int) {
	done := make(chan struct{})
	p.shardFor(stream).ch <- task{kind: taskEvict, stream: stream, done: done}
	<-done
}

// EvictIdle reaps every session whose last traffic (Decide or Observe —
// pure reads like XiEstimate do not count) is older than maxAge, returning
// how many it evicted. Long-lived servers run it periodically so abandoned
// streams cannot grow the table forever. The sweep is one task per shard,
// ordered like any other submission: traffic already queued behind it
// refreshes (or recreates) its stream afterwards, and an active stream —
// one whose last use is within maxAge — is never touched. It blocks until
// every shard has swept.
func (p *Pool) EvictIdle(maxAge time.Duration) int {
	cutoff := p.clock().Add(-maxAge)
	replies := make([]chan int, len(p.shards))
	for i, s := range p.shards {
		replies[i] = make(chan int, 1)
		s.ch <- task{kind: taskEvictIdle, start: cutoff, evicted: replies[i]}
	}
	total := 0
	for _, r := range replies {
		total += <-r
	}
	return total
}

// StreamIDs returns the ids of every live session, sorted ascending. Each
// shard reports its slice of the table from its own worker (so the listing
// is ordered behind everything submitted before the call); the table can of
// course change as soon as the snapshot returns.
func (p *Pool) StreamIDs() []int {
	replies := make([]chan []int, len(p.shards))
	for i, s := range p.shards {
		replies[i] = make(chan []int, 1)
		s.ch <- task{kind: taskStreams, ids: replies[i]}
	}
	var all []int
	for _, r := range replies {
		all = append(all, <-r...)
	}
	sort.Ints(all)
	return all
}

// Request is one element of a batched dispatch.
type Request struct {
	// Stream selects the session (and the shard that owns it) serving this
	// request.
	Stream int
	Spec   core.Spec
}

// Result is the pool's answer to one batched Request, in request order.
type Result struct {
	Decision sim.Decision
	Estimate core.Estimate
}

// DecideBatch dispatches the whole batch across shards and blocks until
// every decision is in. Requests that share a stream are served in batch
// order; requests on different streams run concurrently across shards.
// Results are returned in request order.
//
// The batch is grouped by shard before dispatch: each shard receives one
// task carrying all of its requests (one channel operation per shard per
// batch, not per request), scores them back-to-back on its worker — each
// against its own stream's session — and writes results straight into the
// shared request-ordered output. Within a shard the batch is atomic with
// respect to other submissions — an Observe submitted concurrently lands
// before or after the shard's whole group, never between two of its
// decisions.
func (p *Pool) DecideBatch(reqs []Request) []Result {
	if len(reqs) == 0 {
		return nil
	}
	p.counters.RecordBatch()
	n := len(p.shards)
	out := make([]Result, len(reqs))

	// Size each shard's group first so the stream/spec/index slices are
	// exact.
	counts := make([]int, n)
	for i := range reqs {
		counts[p.shardIndex(reqs[i].Stream)]++
	}
	start := p.clock()
	var wg sync.WaitGroup
	groups := make([]*batchGroup, n)
	for si, cnt := range counts {
		if cnt > 0 {
			groups[si] = &batchGroup{
				streams: make([]int, 0, cnt),
				specs:   make([]core.Spec, 0, cnt),
				idx:     make([]int32, 0, cnt),
				out:     out,
				wg:      &wg,
				start:   start,
			}
		}
	}
	for i, r := range reqs {
		g := groups[p.shardIndex(r.Stream)]
		g.streams = append(g.streams, r.Stream)
		g.specs = append(g.specs, r.Spec)
		g.idx = append(g.idx, int32(i))
	}
	for si, g := range groups {
		if g != nil {
			wg.Add(1)
			p.shards[si].ch <- task{kind: taskDecideGroup, group: g}
		}
	}
	wg.Wait()
	return out
}

// ExportStream drains the stream's pending traffic, snapshots its session,
// and atomically removes it from the table — the send side of a live
// migration (or a crash-consistent backup of one stream). The three steps
// are one task on the owning worker: per-stream FIFO ordering guarantees
// every Decide/Observe submitted before the export is folded into the
// snapshot, and nothing can slip between the snapshot and the removal. The
// second return is false if the stream had no live session (nothing to
// ship — the stream can simply start fresh elsewhere, exactly as if idle
// eviction had reaped it).
//
// Traffic submitted after the export recreates the stream from the initial
// filter state, exactly like EvictStream; callers migrating a stream stop
// routing to it first.
func (p *Pool) ExportStream(stream int) (core.SessionSnapshot, bool) {
	reply := make(chan exportReply, 1)
	p.shardFor(stream).ch <- task{kind: taskExport, stream: stream, export: reply}
	r := <-reply
	return r.snap, r.ok
}

// SnapshotStream checkpoints the stream's session without removing it —
// the periodic-backup primitive behind crash recovery: a node that dies
// without a graceful export restarts from its streams' last checkpoints.
// Like ExportStream the snapshot runs as one task on the owning worker, so
// it folds in every Decide/Observe submitted before the call; unlike
// ExportStream the session stays live and keeps serving. It is a pure read:
// it does not refresh the stream's last-use time, so periodic checkpoints
// never keep an idle stream alive. The second return is false if the stream
// has no live session.
func (p *Pool) SnapshotStream(stream int) (core.SessionSnapshot, bool) {
	reply := make(chan exportReply, 1)
	p.shardFor(stream).ch <- task{kind: taskSnapshot, stream: stream, export: reply}
	r := <-reply
	return r.snap, r.ok
}

// ImportStream restores a snapshotted session into the table under the
// given stream id — the receive side of a migration. The restore runs on
// the owning worker ordered like any task, so traffic for the stream
// submitted after ImportStream returns is served by the restored session,
// continuing the exported stream's decision sequence bit-for-bit. It
// refuses a stream that already has a live session (the caller is
// migrating onto a stale target) and snapshots that fail validation.
func (p *Pool) ImportStream(stream int, snap core.SessionSnapshot) error {
	reply := make(chan error, 1)
	p.shardFor(stream).ch <- task{kind: taskImport, stream: stream, snap: snap, imErr: reply, start: p.clock()}
	return <-reply
}

// Drain blocks until every shard has served everything submitted before the
// call. It is the fence that makes reading shard state (XiEstimate, tests)
// well-defined.
func (p *Pool) Drain() {
	barriers := make([]chan struct{}, len(p.shards))
	for i, s := range p.shards {
		barriers[i] = make(chan struct{})
		s.ch <- task{kind: taskBarrier, done: barriers[i]}
	}
	for _, b := range barriers {
		<-b
	}
}

// XiEstimate reports the (mean, std) of the stream's slowdown filter,
// ordered after everything submitted to that stream's shard before the
// call. It is a pure read: a stream with no live session is answered from
// the engine's prior without creating one, so polling unknown or evicted
// streams never grows the table.
func (p *Pool) XiEstimate(stream int) (mu, sigma float64) {
	reply := make(chan [2]float64, 1)
	p.shardFor(stream).ch <- task{kind: taskXi, stream: stream, xiReply: reply}
	r := <-reply
	return r[0], r[1]
}

// Close drains and stops every worker. The pool must not be used after
// Close; submissions concurrent with Close are the caller's race.
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		for _, s := range p.shards {
			close(s.ch)
		}
		for _, s := range p.shards {
			<-s.exited
		}
	})
}
