package serve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/sim"
)

// fakeClock is a race-safe manual clock for the idle-eviction tests: the
// pool's workers read it concurrently with the test advancing it.
type fakeClock struct{ ns atomic.Int64 }

func (c *fakeClock) now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *fakeClock) advance(d time.Duration) { c.ns.Add(int64(d)) }

// TestEvictIdle: sessions idle longer than maxAge are reaped, active ones
// survive with their filter state intact, and the stream-table gauges stay
// balanced through the sweep.
func TestEvictIdle(t *testing.T) {
	prof := testProfile(t)
	pool := NewPool(prof, core.DefaultOptions(), Config{Shards: 2})
	defer pool.Close()
	fc := &fakeClock{}
	pool.clock = fc.now // before any traffic; workers sync via the task channel

	spec := core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9}
	for stream := 0; stream < 5; stream++ {
		pool.Decide(stream, spec)
	}

	// Make stream 1's filter state distinguishable from a fresh session, so
	// surviving a sweep provably preserves state rather than recreating it.
	d, _ := pool.Decide(1, spec)
	for i := 0; i < 20; i++ {
		pool.Observe(1, outcomeFor(prof, d, 2.0))
	}
	muBefore, _ := pool.XiEstimate(1)
	if muBefore <= 1.0 {
		t.Fatalf("xi mean %.3f after heavy feedback, want > 1.0", muBefore)
	}

	// Streams 0 and 1 stay active past the cutoff; 2, 3, 4 go idle.
	fc.advance(time.Minute)
	pool.Decide(0, spec)
	pool.Observe(1, outcomeFor(prof, d, 2.0))

	if n := pool.EvictIdle(30 * time.Second); n != 3 {
		t.Fatalf("EvictIdle evicted %d sessions, want 3", n)
	}
	if got := pool.StreamIDs(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("StreamIDs after sweep = %v, want [0 1]", got)
	}
	snap := pool.Counters().Snapshot()
	if snap.Streams != 2 {
		t.Errorf("Streams gauge = %d after sweep, want 2", snap.Streams)
	}
	if want := snap.Streams * int64(core.SessionBytes()); snap.SessionBytes != want {
		t.Errorf("SessionBytes gauge = %d, want %d (streams × session size)", snap.SessionBytes, want)
	}

	// The surviving session kept its state; the evicted one reads back at
	// the prior without re-materializing.
	if mu, _ := pool.XiEstimate(1); mu <= 1.0 {
		t.Errorf("survivor xi mean = %.3f, want the evolved estimate (> 1.0)", mu)
	}
	if mu, _ := pool.XiEstimate(3); mu != 1.0 {
		t.Errorf("evicted stream xi mean = %.3f, want the 1.0 prior", mu)
	}
	if n := pool.NumStreams(); n != 2 {
		t.Errorf("NumStreams = %d after post-sweep reads, want 2 (reads must not create sessions)", n)
	}

	// A sweep with nothing idle is a no-op; one far in the future reaps the
	// rest and the gauges return to zero.
	if n := pool.EvictIdle(30 * time.Second); n != 0 {
		t.Errorf("second sweep evicted %d, want 0", n)
	}
	fc.advance(time.Hour)
	if n := pool.EvictIdle(30 * time.Second); n != 2 {
		t.Errorf("final sweep evicted %d, want 2", n)
	}
	if snap := pool.Counters().Snapshot(); snap.Streams != 0 || snap.SessionBytes != 0 {
		t.Errorf("gauges after full sweep = streams %d bytes %d, want 0/0", snap.Streams, snap.SessionBytes)
	}
}

// TestEvictIdleReadsDoNotRefresh: XiEstimate is a pure read, so polling a
// stream must not shield it from an idle sweep.
func TestEvictIdleReadsDoNotRefresh(t *testing.T) {
	prof := testProfile(t)
	pool := NewPool(prof, core.DefaultOptions(), Config{Shards: 1})
	defer pool.Close()
	fc := &fakeClock{}
	pool.clock = fc.now

	spec := core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9}
	pool.Decide(7, spec)
	fc.advance(time.Minute)
	pool.XiEstimate(7) // monitoring poll, not traffic
	if n := pool.EvictIdle(30 * time.Second); n != 1 {
		t.Errorf("EvictIdle evicted %d, want 1 (a read refreshed last-use)", n)
	}
}

// TestEvictStreamConcurrentWithDecideBatch is the stream-eviction race
// test: DecideBatch groups in flight on a stream while another goroutine
// evicts that same stream. Run under -race this pins memory safety; the
// assertions pin that no batch result is ever lost (every slot of every
// batch is a real decision — eviction between two of a shard's group
// decisions is impossible, and eviction between groups just means the next
// group recreates the session) and that the gauges balance afterwards.
func TestEvictStreamConcurrentWithDecideBatch(t *testing.T) {
	prof := testProfile(t)
	pool := NewPool(prof, core.DefaultOptions(), Config{Shards: 2, QueueDepth: 64})
	defer pool.Close()

	spec := core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9}
	const (
		hot     = 0 // the contested stream: batched against, evicted, observed
		batches = 150
	)
	var wg sync.WaitGroup

	// Batcher: every batch hits the hot stream (twice, so batch order within
	// the stream matters) plus two bystanders on the other shard.
	wg.Add(1)
	go func() {
		defer wg.Done()
		reqs := []Request{{Stream: hot, Spec: spec}, {Stream: 1, Spec: spec},
			{Stream: hot, Spec: spec}, {Stream: 3, Spec: spec}}
		for i := 0; i < batches; i++ {
			res := pool.DecideBatch(reqs)
			if len(res) != len(reqs) {
				t.Errorf("batch %d: %d results for %d requests", i, len(res), len(reqs))
				return
			}
			for j, r := range res {
				// A lost slot would be the zero Result; real decisions
				// always predict a positive mean latency.
				if r.Estimate.LatMean <= 0 {
					t.Errorf("batch %d result %d lost: %+v", i, j, r)
					return
				}
				if r.Decision.Model < 0 || r.Decision.Model >= len(prof.Models) {
					t.Errorf("batch %d result %d: model %d out of range", i, j, r.Decision.Model)
					return
				}
			}
		}
	}()

	// Evictor: hammers the hot stream's shard with evictions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < batches; i++ {
			pool.EvictStream(hot)
		}
	}()

	// Feedback: concurrent observes on the hot stream, interleaving with
	// both the groups and the evictions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		out := outcomeFor(prof, sim.Decision{}, 1.1)
		for i := 0; i < batches; i++ {
			pool.Observe(hot, out)
		}
	}()

	wg.Wait()
	pool.Drain()
	snap := pool.Counters().Snapshot()
	if want := int64(len(pool.StreamIDs())); snap.Streams != want {
		t.Errorf("Streams gauge = %d, want %d (live table entries)", snap.Streams, want)
	}
	if want := snap.Streams * int64(core.SessionBytes()); snap.SessionBytes != want {
		t.Errorf("SessionBytes gauge = %d, want %d", snap.SessionBytes, want)
	}
	if snap.Decisions != int64(batches*4) {
		t.Errorf("Decisions counter = %d, want %d (no lost batch work)", snap.Decisions, batches*4)
	}
	if snap.Observes != int64(batches) {
		t.Errorf("Observes counter = %d, want %d", snap.Observes, batches)
	}
}
