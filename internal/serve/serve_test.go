package serve

import (
	"reflect"
	"sync"
	"testing"

	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/mathx"
	"github.com/alert-project/alert/internal/platform"
	"github.com/alert-project/alert/internal/sim"
)

func testProfile(t testing.TB) *dnn.ProfileTable {
	t.Helper()
	prof, err := dnn.Profile(platform.CPU1(), dnn.ImageCandidates())
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

// step is one scripted Decide followed by a synthetic Observe; the xi draw
// depends only on (stream, index), so serial and sharded replays see the
// same feedback whenever decisions match.
type step struct {
	spec core.Spec
	xi   float64
}

func script(stream, n int) []step {
	rng := mathx.NewRand(int64(1000 + stream))
	out := make([]step, n)
	for i := range out {
		out[i] = step{
			spec: core.Spec{
				Objective:    core.MinimizeEnergy,
				Deadline:     0.1 + 0.1*rng.Float64(),
				AccuracyGoal: 0.85 + 0.1*rng.Float64(),
			},
			xi: 0.9 + 0.4*rng.Float64(),
		}
	}
	return out
}

func outcomeFor(prof *dnn.ProfileTable, d sim.Decision, xi float64) sim.Outcome {
	return sim.Outcome{ObservedXi: xi, IdlePower: 5, CapApplied: prof.Caps[d.Cap]}
}

// serialRun replays a stream's script against a lone Controller — the
// paper's one-stream-per-controller deployment the shards must match.
func serialRun(prof *dnn.ProfileTable, steps []step) []sim.Decision {
	ctl := core.New(prof, core.DefaultOptions())
	out := make([]sim.Decision, len(steps))
	for i, st := range steps {
		d, _ := ctl.Decide(st.spec)
		ctl.Observe(outcomeFor(prof, d, st.xi))
		out[i] = d
	}
	return out
}

// TestShardDeterminism is the serve-level differential criterion for the
// Engine/Session split: it drives more streams than shards through the pool
// concurrently — so every shard multiplexes several streams' sessions, and
// the cross-stream interleaving on each shard is scheduling-dependent — and
// checks each stream's decision sequence is identical to serial
// single-controller execution of that stream alone.
func TestShardDeterminism(t *testing.T) {
	prof := testProfile(t)
	const streams, steps = 7, 60

	pool := NewPool(prof, core.DefaultOptions(), Config{Shards: 2})
	defer pool.Close()

	got := make([][]sim.Decision, streams)
	var wg sync.WaitGroup
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			seq := make([]sim.Decision, 0, steps)
			for _, st := range script(s, steps) {
				d, _ := pool.Decide(s, st.spec)
				pool.Observe(s, outcomeFor(prof, d, st.xi))
				seq = append(seq, d)
			}
			got[s] = seq
		}(s)
	}
	wg.Wait()

	for s := 0; s < streams; s++ {
		want := serialRun(prof, script(s, steps))
		if !reflect.DeepEqual(got[s], want) {
			t.Errorf("stream %d: sharded decisions diverge from serial execution", s)
		}
	}
}

// TestObserveOrdering checks that an async Observe is applied before a
// later Decide on the same stream: after heavy-slowdown feedback the
// stream's xi estimate must have moved.
func TestObserveOrdering(t *testing.T) {
	prof := testProfile(t)
	pool := NewPool(prof, core.DefaultOptions(), Config{Shards: 2})
	defer pool.Close()

	spec := core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9}
	d, _ := pool.Decide(0, spec)
	for i := 0; i < 20; i++ {
		pool.Observe(0, outcomeFor(prof, d, 2.0))
	}
	mu, _ := pool.XiEstimate(0)
	if mu < 1.2 {
		t.Errorf("xi mean %.3f after sustained 2.0 slowdown feedback; observes not applied in order", mu)
	}
	// Stream 2 shares stream 0's shard (2 mod 2 == 0) but has its own
	// session, which saw nothing and must still be at its prior.
	mu2, _ := pool.XiEstimate(2)
	if mu2 != 1.0 {
		t.Errorf("untouched same-shard stream xi mean = %.3f, want 1.0 (state leaked across sessions)", mu2)
	}
	// A stream on the sibling shard must be at its prior too.
	mu1, _ := pool.XiEstimate(1)
	if mu1 != 1.0 {
		t.Errorf("untouched shard xi mean = %.3f, want 1.0 (state leaked across shards)", mu1)
	}
}

// TestXiEstimateDuringTraffic races XiEstimate against live Decide/Observe
// traffic on the same shard; under -race this pins the requirement that
// controller state is only ever read on its worker goroutine.
func TestXiEstimateDuringTraffic(t *testing.T) {
	prof := testProfile(t)
	pool := NewPool(prof, core.DefaultOptions(), Config{Shards: 1})
	defer pool.Close()

	spec := core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			d, _ := pool.Decide(0, spec)
			pool.Observe(0, outcomeFor(prof, d, 1.0+float64(i%5)*0.1))
		}
	}()
	for i := 0; i < 50; i++ {
		if mu, sigma := pool.XiEstimate(0); mu <= 0 || sigma < 0 {
			t.Fatalf("implausible xi estimate (%g, %g)", mu, sigma)
		}
	}
	<-done
}

// TestDecideBatch checks request-order results and per-stream FIFO within a
// batch.
func TestDecideBatch(t *testing.T) {
	prof := testProfile(t)
	pool := NewPool(prof, core.DefaultOptions(), Config{Shards: 3})
	defer pool.Close()

	spec := core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.15, AccuracyGoal: 0.9}
	reqs := make([]Request, 30)
	for i := range reqs {
		reqs[i] = Request{Stream: i % 5, Spec: spec}
	}
	res := pool.DecideBatch(reqs)
	if len(res) != len(reqs) {
		t.Fatalf("got %d results, want %d", len(res), len(reqs))
	}
	for i, r := range res {
		if r.Decision.Model < 0 || r.Decision.Model >= prof.NumModels() {
			t.Fatalf("result %d: model %d out of range", i, r.Decision.Model)
		}
	}
	if pool.DecideBatch(nil) != nil {
		t.Error("empty batch should return nil")
	}

	snap := pool.Counters().Snapshot()
	if snap.Decisions != int64(len(reqs)) {
		t.Errorf("counter decisions = %d, want %d", snap.Decisions, len(reqs))
	}
	if snap.Batches != 1 {
		t.Errorf("counter batches = %d, want 1", snap.Batches)
	}
	if snap.AvgDecideLatency <= 0 || snap.MaxDecideLatency < snap.AvgDecideLatency {
		t.Errorf("implausible latency counters: %+v", snap)
	}
}

// TestDecideBatchRequestOrder checks that the per-shard grouped dispatch
// still returns results in request order with the right per-request
// decision: distinct specs per request make a misplaced result visible.
func TestDecideBatchRequestOrder(t *testing.T) {
	prof := testProfile(t)
	pool := NewPool(prof, core.DefaultOptions(), Config{Shards: 4})
	defer pool.Close()

	// Mixed streams in a deliberately non-contiguous shard pattern, each
	// with its own deadline so expected decisions differ across requests.
	reqs := make([]Request, 41)
	for i := range reqs {
		reqs[i] = Request{
			Stream: (i * 7) % 13,
			Spec: core.Spec{
				Objective:    core.MinimizeEnergy,
				Deadline:     0.08 + 0.02*float64(i%6),
				AccuracyGoal: 0.9,
			},
		}
	}
	got := pool.DecideBatch(reqs)

	// The oracle: one lone controller per *stream* replaying that stream's
	// requests in batch order — streams share nothing, even when they share
	// a shard, so per-stream replay is the exact semantics.
	ctls := map[int]*core.Controller{}
	for i, r := range reqs {
		ctl, ok := ctls[r.Stream]
		if !ok {
			ctl = core.New(prof, core.DefaultOptions())
			ctls[r.Stream] = ctl
		}
		d, est := ctl.Decide(r.Spec)
		if got[i].Decision != d || got[i].Estimate != est {
			t.Fatalf("request %d (stream %d): result %+v, want %+v", i, r.Stream, got[i].Decision, d)
		}
	}
}

// TestDecideBatchFIFOWithObserves interleaves batches with per-stream
// Observes and checks each stream's decision sequence against serial
// execution: the grouped dispatch must preserve per-stream FIFO with
// feedback applied between batches.
func TestDecideBatchFIFOWithObserves(t *testing.T) {
	prof := testProfile(t)
	const streams, rounds = 3, 25
	// Fewer shards than streams: per-stream FIFO must hold even when a
	// shard's worker multiplexes several streams' sessions.
	pool := NewPool(prof, core.DefaultOptions(), Config{Shards: 2})
	defer pool.Close()

	scripts := make([][]step, streams)
	for s := range scripts {
		scripts[s] = script(s, rounds)
	}
	got := make([][]sim.Decision, streams)
	for r := 0; r < rounds; r++ {
		reqs := make([]Request, streams)
		for s := 0; s < streams; s++ {
			reqs[s] = Request{Stream: s, Spec: scripts[s][r].spec}
		}
		res := pool.DecideBatch(reqs)
		for s := 0; s < streams; s++ {
			got[s] = append(got[s], res[s].Decision)
			pool.Observe(s, outcomeFor(prof, res[s].Decision, scripts[s][r].xi))
		}
	}
	for s := 0; s < streams; s++ {
		want := serialRun(prof, scripts[s])
		if !reflect.DeepEqual(got[s], want) {
			t.Errorf("stream %d: batched decisions diverge from serial execution", s)
		}
	}
}

// TestDecideBatchStress races batched dispatch, single decides, and
// observes over more streams than shards; under -race this pins the grouped
// path's memory safety (disjoint result writes, wg-published reads).
func TestDecideBatchStress(t *testing.T) {
	prof := testProfile(t)
	pool := NewPool(prof, core.DefaultOptions(), Config{Shards: 3, QueueDepth: 8})
	defer pool.Close()

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			spec := core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.15, AccuracyGoal: 0.9}
			for i := 0; i < 30; i++ {
				reqs := make([]Request, 11)
				for j := range reqs {
					reqs[j] = Request{Stream: g*31 + j, Spec: spec}
				}
				res := pool.DecideBatch(reqs)
				for j, r := range res {
					if r.Decision.Model < 0 || r.Decision.Model >= prof.NumModels() {
						t.Errorf("bad model %d", r.Decision.Model)
						return
					}
					pool.Observe(reqs[j].Stream, outcomeFor(prof, r.Decision, 1.1))
				}
				d, _ := pool.Decide(g, spec)
				pool.Observe(g, outcomeFor(prof, d, 0.95))
			}
		}(g)
	}
	wg.Wait()
	pool.Drain()
	snap := pool.Counters().Snapshot()
	wantDecides := int64(goroutines * 30 * (11 + 1))
	if snap.Decisions != wantDecides {
		t.Errorf("decisions counter = %d, want %d", snap.Decisions, wantDecides)
	}
	if snap.Batches != int64(goroutines*30) {
		t.Errorf("batches counter = %d, want %d", snap.Batches, goroutines*30)
	}
}

// TestPoolDecideSteadyStateAllocs asserts the serve-layer allocation
// contract: with the reply channel pooled and the controller's cached fast
// path, a steady-state Decide round trip allocates nothing. The worker
// goroutine's allocations count too (AllocsPerRun reads the global
// counter), so an occasional sync.Pool refill after GC is tolerated but
// systematic per-call allocation is not.
func TestPoolDecideSteadyStateAllocs(t *testing.T) {
	prof := testProfile(t)
	pool := NewPool(prof, core.DefaultOptions(), Config{Shards: 1})
	defer pool.Close()
	spec := core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.92}
	pool.Decide(0, spec) // warm pool, cache, scratch
	if n := testing.AllocsPerRun(500, func() { pool.Decide(0, spec) }); n >= 1 {
		t.Errorf("steady-state pool Decide allocates %.2f/op, want ~0", n)
	}
}

// TestEvictStream pins the session lifecycle: create on first use, evict on
// demand (gauges move both ways), and a returning stream restarts from the
// initial filter state like a brand-new stream.
func TestEvictStream(t *testing.T) {
	prof := testProfile(t)
	pool := NewPool(prof, core.DefaultOptions(), Config{Shards: 2})
	defer pool.Close()

	spec := core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9}
	d, _ := pool.Decide(0, spec)
	for i := 0; i < 20; i++ {
		pool.Observe(0, outcomeFor(prof, d, 2.0))
	}
	if mu, _ := pool.XiEstimate(0); mu < 1.2 {
		t.Fatalf("xi mean %.3f, feedback not applied", mu)
	}
	if n := pool.NumStreams(); n != 1 {
		t.Fatalf("NumStreams = %d before eviction, want 1", n)
	}
	snap := pool.Counters().Snapshot()
	if want := snap.Streams * int64(core.SessionBytes()); snap.SessionBytes != want {
		t.Errorf("SessionBytes gauge = %d, want %d (streams × session size)", snap.SessionBytes, want)
	}

	pool.EvictStream(0)
	if n := pool.NumStreams(); n != 0 {
		t.Fatalf("NumStreams = %d after eviction, want 0", n)
	}
	if snap := pool.Counters().Snapshot(); snap.SessionBytes != 0 {
		t.Errorf("SessionBytes gauge = %d after eviction, want 0", snap.SessionBytes)
	}
	// Evicting an unknown stream is a no-op, not a panic or a negative
	// gauge.
	pool.EvictStream(42)
	if snap := pool.Counters().Snapshot(); snap.Streams != 0 {
		t.Errorf("Streams gauge = %d after no-op eviction, want 0", snap.Streams)
	}

	// The evicted stream must read back at the prior — and the read itself
	// must not re-materialize a session (XiEstimate is a pure read, so
	// monitoring polls cannot re-inflate the table EvictStream just shrank).
	if mu, _ := pool.XiEstimate(0); mu != 1.0 {
		t.Errorf("post-eviction xi mean = %.3f, want the 1.0 prior (stale session survived)", mu)
	}
	if n := pool.NumStreams(); n != 0 {
		t.Errorf("NumStreams = %d after a post-eviction XiEstimate, want 0 (read created a session)", n)
	}

	// Real traffic after eviction starts a fresh session.
	pool.Decide(0, spec)
	if n := pool.NumStreams(); n != 1 {
		t.Errorf("NumStreams = %d after post-eviction Decide, want 1", n)
	}
	if mu, _ := pool.XiEstimate(0); mu != 1.0 {
		t.Errorf("returning stream xi mean = %.3f, want a fresh 1.0 prior", mu)
	}
}

// TestStreamChurn100k churns 100k streams through the table — create on
// first use, evict after a short life — under concurrent steady-state
// traffic on long-lived streams. Under -race this pins the stream table's
// memory safety; the assertions pin the gauges' books and the steady
// streams' isolation from the churn (their decisions must equal solo serial
// execution, as always).
func TestStreamChurn100k(t *testing.T) {
	prof := testProfile(t)
	pool := NewPool(prof, core.DefaultOptions(), Config{Shards: 4, QueueDepth: 128})
	defer pool.Close()

	const (
		churners    = 8
		perChurner  = 12500 // 100k total
		steady      = 3
		steadySteps = 40
	)
	spec := core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9}

	var wg sync.WaitGroup
	// Steady long-lived streams: full decide→observe loops whose decision
	// sequences must come out identical to solo execution despite 100k
	// sessions being created and destroyed around them. Negative ids keep
	// them disjoint from the churn id space.
	gotSteady := make([][]sim.Decision, steady)
	for s := 0; s < steady; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			stream := -(s + 1)
			seq := make([]sim.Decision, 0, steadySteps)
			for _, st := range script(s, steadySteps) {
				d, _ := pool.Decide(stream, st.spec)
				pool.Observe(stream, outcomeFor(prof, d, st.xi))
				seq = append(seq, d)
			}
			gotSteady[s] = seq
		}(s)
	}
	// Churners: each stream lives for one or two requests, then is evicted.
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perChurner; i++ {
				stream := c*perChurner + i
				pool.Observe(stream, outcomeFor(prof, sim.Decision{}, 1.1))
				if i%64 == 0 { // a full decide now and then; every op on a fresh session
					pool.Decide(stream, spec)
				}
				pool.EvictStream(stream)
			}
		}(c)
	}
	wg.Wait()
	pool.Drain()

	for s := 0; s < steady; s++ {
		want := serialRun(prof, script(s, steadySteps))
		if !reflect.DeepEqual(gotSteady[s], want) {
			t.Errorf("steady stream %d: decisions diverged from solo execution under churn", s)
		}
	}
	snap := pool.Counters().Snapshot()
	if snap.Streams != steady {
		t.Errorf("Streams gauge = %d after churn, want %d (every churned session evicted)", snap.Streams, steady)
	}
	if want := snap.Streams * int64(core.SessionBytes()); snap.SessionBytes != want {
		t.Errorf("SessionBytes gauge = %d, want %d", snap.SessionBytes, want)
	}
	if snap.Observes != churners*perChurner+steady*steadySteps {
		t.Errorf("Observes = %d, want %d", snap.Observes, churners*perChurner+steady*steadySteps)
	}
}

// TestShardPinning checks the stream→shard map, including negative streams.
func TestShardPinning(t *testing.T) {
	prof := testProfile(t)
	pool := NewPool(prof, core.DefaultOptions(), Config{Shards: 4})
	defer pool.Close()

	if got := pool.shardFor(6); got != pool.shards[2] {
		t.Error("stream 6 should pin to shard 2 of 4")
	}
	if got := pool.shardFor(-1); got != pool.shards[3] {
		t.Error("stream -1 should pin to shard 3 of 4, not panic")
	}
	if pool.NumShards() != 4 {
		t.Errorf("NumShards = %d, want 4", pool.NumShards())
	}
}

// TestConfigDefaults checks the zero config still serves.
func TestConfigDefaults(t *testing.T) {
	prof := testProfile(t)
	pool := NewPool(prof, core.DefaultOptions(), Config{})
	defer pool.Close()
	if pool.NumShards() != 1 {
		t.Fatalf("zero config shards = %d, want 1", pool.NumShards())
	}
	d, est := pool.Decide(0, core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9})
	if est.LatMean <= 0 {
		t.Errorf("estimate LatMean = %g, want > 0", est.LatMean)
	}
	_ = d
	pool.Drain()
	pool.Close() // double Close must be safe
}
