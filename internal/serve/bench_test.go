package serve

import (
	"runtime"
	"testing"
	"time"

	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/sim"
)

// Pool-level benchmarks for cmd/benchreport's BENCH trajectory: the
// steady-state single-decide round trip (pooled reply channel + cached
// controller fast path) and the grouped batch dispatch (one channel
// operation per shard per batch).

// BenchmarkPoolDecide measures the submit→decide→reply round trip on one
// shard in steady state (same spec, no feedback): the controller serves
// from its decision cache, so this is the serving layer's own overhead.
func BenchmarkPoolDecide(b *testing.B) {
	pool := NewPool(testProfile(b), core.DefaultOptions(), Config{Shards: 1})
	defer pool.Close()
	spec := core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.93}
	pool.Decide(0, spec)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.Decide(0, spec)
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "decisions/s")
	}
}

// BenchmarkPoolDecideObserve is the paper's full per-input loop through the
// pool: decide, then feed back an observation (which busts the decision
// cache, so every decide is a full scan).
func BenchmarkPoolDecideObserve(b *testing.B) {
	prof := testProfile(b)
	pool := NewPool(prof, core.DefaultOptions(), Config{Shards: 1})
	defer pool.Close()
	spec := core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.93}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, _ := pool.Decide(0, spec)
		pool.Observe(0, sim.Outcome{ObservedXi: 1.05, IdlePower: 6, CapApplied: prof.Caps[d.Cap]})
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "decisions/s")
	}
}

// liveHeap returns the live heap after a forced GC, the before/after probe
// for the bytes-per-stream measurements below.
func liveHeap() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// BenchmarkPoolManyStreams is the stream-table scaling benchmark: 10k
// streams served by one pool (one shared core.Engine, one core.Session per
// stream) versus the naive construction the Engine/Session split replaced —
// one full core.Controller per stream, each carrying its own copy of the
// candidate space. Both sides report the measured marginal heap cost per
// stream ("bytes/stream", engine amortized in), the stream creation rate
// ("streams/s"), and decide throughput across the stream population;
// cmd/benchreport derives the memory-reduction factor from the pair and
// -check gates it at ≥ 10x.
func BenchmarkPoolManyStreams(b *testing.B) {
	const streams = 10000
	prof := testProfile(b)
	spec := core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.93}
	out := sim.Outcome{ObservedXi: 1.05, IdlePower: 6, CapApplied: 30}

	b.Run("shared-engine", func(b *testing.B) {
		before := liveHeap()
		start := time.Now()
		pool := NewPool(prof, core.DefaultOptions(), Config{Shards: 8, QueueDepth: 256})
		defer pool.Close()
		// Touch every stream once so its session exists (create-on-first-use).
		for s := 0; s < streams; s++ {
			pool.Observe(s, out)
		}
		pool.Drain()
		created := time.Since(start)
		perStream := float64(liveHeap()-before) / streams

		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pool.Decide(i%streams, spec)
		}
		b.StopTimer()
		b.ReportMetric(perStream, "bytes/stream")
		b.ReportMetric(streams/created.Seconds(), "streams/s")
		if sec := b.Elapsed().Seconds(); sec > 0 {
			b.ReportMetric(float64(b.N)/sec, "decisions/s")
		}
	})

	b.Run("naive-controllers", func(b *testing.B) {
		before := liveHeap()
		start := time.Now()
		ctls := make([]*core.Controller, streams)
		for s := range ctls {
			ctls[s] = core.New(prof, core.DefaultOptions())
			ctls[s].Observe(out)
		}
		created := time.Since(start)
		perStream := float64(liveHeap()-before) / streams

		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctls[i%streams].Decide(spec)
		}
		b.StopTimer()
		b.ReportMetric(perStream, "bytes/stream")
		b.ReportMetric(streams/created.Seconds(), "streams/s")
		if sec := b.Elapsed().Seconds(); sec > 0 {
			b.ReportMetric(float64(b.N)/sec, "decisions/s")
		}
		runtime.KeepAlive(ctls)
	})
}

// BenchmarkPoolDecideBatch measures grouped dispatch of a 64-request batch
// over 8 shards (8 channel operations per batch instead of 64).
func BenchmarkPoolDecideBatch(b *testing.B) {
	pool := NewPool(testProfile(b), core.DefaultOptions(), Config{Shards: 8, QueueDepth: 256})
	defer pool.Close()
	spec := core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.93}
	reqs := make([]Request, 64)
	for i := range reqs {
		reqs[i] = Request{Stream: i, Spec: spec}
	}
	pool.DecideBatch(reqs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.DecideBatch(reqs)
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N*len(reqs))/sec, "decisions/s")
	}
}
