package serve

import (
	"testing"

	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/sim"
)

// Pool-level benchmarks for cmd/benchreport's BENCH trajectory: the
// steady-state single-decide round trip (pooled reply channel + cached
// controller fast path) and the grouped batch dispatch (one channel
// operation per shard per batch).

// BenchmarkPoolDecide measures the submit→decide→reply round trip on one
// shard in steady state (same spec, no feedback): the controller serves
// from its decision cache, so this is the serving layer's own overhead.
func BenchmarkPoolDecide(b *testing.B) {
	pool := NewPool(testProfile(b), core.DefaultOptions(), Config{Shards: 1})
	defer pool.Close()
	spec := core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.93}
	pool.Decide(0, spec)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.Decide(0, spec)
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "decisions/s")
	}
}

// BenchmarkPoolDecideObserve is the paper's full per-input loop through the
// pool: decide, then feed back an observation (which busts the decision
// cache, so every decide is a full scan).
func BenchmarkPoolDecideObserve(b *testing.B) {
	prof := testProfile(b)
	pool := NewPool(prof, core.DefaultOptions(), Config{Shards: 1})
	defer pool.Close()
	spec := core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.93}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, _ := pool.Decide(0, spec)
		pool.Observe(0, sim.Outcome{ObservedXi: 1.05, IdlePower: 6, CapApplied: prof.Caps[d.Cap]})
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "decisions/s")
	}
}

// BenchmarkPoolDecideBatch measures grouped dispatch of a 64-request batch
// over 8 shards (8 channel operations per batch instead of 64).
func BenchmarkPoolDecideBatch(b *testing.B) {
	pool := NewPool(testProfile(b), core.DefaultOptions(), Config{Shards: 8, QueueDepth: 256})
	defer pool.Close()
	spec := core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.93}
	reqs := make([]Request, 64)
	for i := range reqs {
		reqs[i] = Request{Stream: i, Spec: spec}
	}
	pool.DecideBatch(reqs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.DecideBatch(reqs)
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N*len(reqs))/sec, "decisions/s")
	}
}
