package serve

import (
	"sync"
	"testing"

	"github.com/alert-project/alert/internal/core"
)

// TestExportImportMatchesSerial is the migration differential test at the
// stream-table layer: replay a stream's script half on pool A, migrate the
// session (ExportStream → ImportStream) to pool B, replay the second half
// there — the stitched decision sequence must be byte-identical to a lone
// Controller serving the whole script, i.e. the hand-off is invisible.
func TestExportImportMatchesSerial(t *testing.T) {
	prof := testProfile(t)
	const stream, n = 7, 120
	steps := script(stream, n)
	want := serialRun(prof, steps)

	a := NewPool(prof, core.DefaultOptions(), Config{Shards: 2})
	defer a.Close()
	b := NewPool(prof, core.DefaultOptions(), Config{Shards: 3})
	defer b.Close()

	for i := 0; i < n/2; i++ {
		d, _ := a.Decide(stream, steps[i].spec)
		if d != want[i] {
			t.Fatalf("pre-migration step %d: decision %+v, want %+v", i, d, want[i])
		}
		a.Observe(stream, outcomeFor(prof, d, steps[i].xi))
	}

	snap, ok := a.ExportStream(stream)
	if !ok {
		t.Fatal("ExportStream found no session for a live stream")
	}
	if err := b.ImportStream(stream, snap); err != nil {
		t.Fatal(err)
	}

	for i := n / 2; i < n; i++ {
		d, _ := b.Decide(stream, steps[i].spec)
		if d != want[i] {
			t.Fatalf("post-migration step %d: decision %+v, want %+v", i, d, want[i])
		}
		b.Observe(stream, outcomeFor(prof, d, steps[i].xi))
	}

	// Migration bookkeeping: the exporter no longer owns the stream, the
	// importer does, and the counters record one export / one import.
	if ids := a.StreamIDs(); len(ids) != 0 {
		t.Errorf("exporter still owns streams %v", ids)
	}
	if ids := b.StreamIDs(); len(ids) != 1 || ids[0] != stream {
		t.Errorf("importer stream table = %v, want [%d]", ids, stream)
	}
	if s := a.Counters().Snapshot(); s.StreamExports != 1 || s.Streams != 0 || s.SessionBytes != 0 {
		t.Errorf("exporter counters: exports=%d streams=%d bytes=%d, want 1/0/0", s.StreamExports, s.Streams, s.SessionBytes)
	}
	if s := b.Counters().Snapshot(); s.StreamImports != 1 || s.Streams != 1 {
		t.Errorf("importer counters: imports=%d streams=%d, want 1/1", s.StreamImports, s.Streams)
	}
}

// TestExportDrainsQueuedTraffic: Observes already submitted (but possibly
// not yet applied) when ExportStream is called must be folded into the
// snapshot — the per-stream FIFO is the drain.
func TestExportDrainsQueuedTraffic(t *testing.T) {
	prof := testProfile(t)
	pool := NewPool(prof, core.DefaultOptions(), Config{Shards: 1, QueueDepth: 256})
	defer pool.Close()

	spec := core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9}
	d, _ := pool.Decide(3, spec)
	const observes = 100
	for i := 0; i < observes; i++ {
		pool.Observe(3, outcomeFor(prof, d, 1.2)) // async: returns before applied
	}
	snap, ok := pool.ExportStream(3)
	if !ok {
		t.Fatal("no session exported")
	}
	// Epoch = observe count + 1; every queued Observe must be in the state.
	if snap.Epoch != observes+1 {
		t.Fatalf("snapshot epoch %d, want %d (export ran before the queue drained)", snap.Epoch, observes+1)
	}
	if snap.Decisions != 1 {
		t.Fatalf("snapshot decisions %d, want 1", snap.Decisions)
	}
}

// TestExportUnknownStream: exporting a stream with no session reports
// ok=false (nothing to ship) and moves no gauges.
func TestExportUnknownStream(t *testing.T) {
	pool := NewPool(testProfile(t), core.DefaultOptions(), Config{Shards: 2})
	defer pool.Close()
	if _, ok := pool.ExportStream(42); ok {
		t.Error("ExportStream invented a session for an unknown stream")
	}
	if s := pool.Counters().Snapshot(); s.StreamExports != 0 || s.Streams != 0 {
		t.Errorf("counters moved on a no-op export: %+v", s)
	}
}

// TestImportRefusals: importing onto a live stream and importing an invalid
// snapshot both error without disturbing the table.
func TestImportRefusals(t *testing.T) {
	prof := testProfile(t)
	pool := NewPool(prof, core.DefaultOptions(), Config{Shards: 2})
	defer pool.Close()

	spec := core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9}
	pool.Decide(5, spec)
	mu0, _ := pool.XiEstimate(5)

	donor := pool.Engine().NewSession()
	snap := donor.Snapshot()
	if err := pool.ImportStream(5, snap); err == nil {
		t.Error("ImportStream replaced a live session")
	}
	if mu, _ := pool.XiEstimate(5); mu != mu0 {
		t.Error("refused import perturbed the live session")
	}

	bad := snap
	bad.Epoch = 0
	if err := pool.ImportStream(6, bad); err == nil {
		t.Error("ImportStream accepted an invalid snapshot")
	}
	if ids := pool.StreamIDs(); len(ids) != 1 || ids[0] != 5 {
		t.Errorf("stream table = %v after refused imports, want [5]", ids)
	}
	if s := pool.Counters().Snapshot(); s.StreamImports != 0 {
		t.Errorf("imports counter = %d after refusals, want 0", s.StreamImports)
	}
}

// TestExportImportConcurrentWithTraffic is the migration race test: a hot
// stream is bounced between two pools by one goroutine while others throw
// Decide/Observe/DecideBatch/EvictStream traffic at both pools. Under
// -race this pins memory safety; the assertions pin that every batch result
// is a real decision and the stream-table gauges balance afterwards.
func TestExportImportConcurrentWithTraffic(t *testing.T) {
	prof := testProfile(t)
	a := NewPool(prof, core.DefaultOptions(), Config{Shards: 2, QueueDepth: 64})
	defer a.Close()
	b := NewPool(prof, core.DefaultOptions(), Config{Shards: 2, QueueDepth: 64})
	defer b.Close()

	spec := core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9}
	const (
		hot    = 0
		rounds = 150
	)
	var wg sync.WaitGroup

	// Migrator: bounce the hot stream a→b→a. Failed legs are fine (the
	// stream may have no session, or the target may have recreated one);
	// what matters is that no interleaving corrupts either table.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			src, dst := a, b
			if i%2 == 1 {
				src, dst = b, a
			}
			if snap, ok := src.ExportStream(hot); ok {
				_ = dst.ImportStream(hot, snap)
			}
		}
	}()

	// Traffic on both pools: batches touching the hot stream plus
	// bystanders, singles, observes, and evictions.
	for _, pool := range []*Pool{a, b} {
		pool := pool
		wg.Add(1)
		go func() {
			defer wg.Done()
			reqs := []Request{{Stream: hot, Spec: spec}, {Stream: 1, Spec: spec}, {Stream: hot, Spec: spec}}
			for i := 0; i < rounds; i++ {
				for j, r := range pool.DecideBatch(reqs) {
					if r.Estimate.LatMean <= 0 {
						t.Errorf("round %d result %d lost: %+v", i, j, r)
						return
					}
				}
				d, _ := pool.Decide(hot, spec)
				pool.Observe(hot, outcomeFor(prof, d, 1.1))
				if i%10 == 9 {
					pool.EvictStream(hot)
				}
			}
		}()
	}

	wg.Wait()
	for name, pool := range map[string]*Pool{"a": a, "b": b} {
		pool.Drain()
		s := pool.Counters().Snapshot()
		if want := int64(len(pool.StreamIDs())); s.Streams != want {
			t.Errorf("pool %s: Streams gauge = %d, want %d", name, s.Streams, want)
		}
		if want := s.Streams * int64(core.SessionBytes()); s.SessionBytes != want {
			t.Errorf("pool %s: SessionBytes gauge = %d, want %d", name, s.SessionBytes, want)
		}
	}
}
