// Package runner executes one scheduling scheme over one workload stream in
// one simulated environment and records what the paper's evaluation
// measures. It is deliberately scheme-agnostic: ALERT, the single-layer
// baselines, and the oracles all implement the same Scheduler interface, so
// every number in Tables 4–5 and Figures 6–11 flows through this one loop.
package runner

import (
	"github.com/alert-project/alert/internal/contention"
	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/metrics"
	"github.com/alert-project/alert/internal/scenario"
	"github.com/alert-project/alert/internal/sim"
	"github.com/alert-project/alert/internal/workload"
)

// Scheduler picks a configuration for each input. Feedback schedulers use
// only their own observations; oracle schedulers may interrogate the
// environment (sim.Env.EvaluateAt / PeekXi), which on real hardware would
// require a time machine.
type Scheduler interface {
	// Name identifies the scheme in records and tables.
	Name() string
	// Decide selects the configuration for input in with the adjusted
	// latency goal.
	Decide(env *sim.Env, in workload.Input, goal float64) sim.Decision
	// Observe feeds back the measured outcome of the input just executed.
	Observe(in workload.Input, d sim.Decision, out sim.Outcome)
}

// SpecSetter is implemented by schedulers that can retarget to a changed
// requirement mid-stream (scenario spec churn). Schedulers without it keep
// optimizing for the spec they were built with while the accounting follows
// the churned spec — the honest model of a runtime that was never told the
// requirement moved.
type SpecSetter interface {
	SetSpec(core.Spec)
}

// Config describes one run: a profiled candidate set on a platform, an
// environment scenario, the constraint spec, and the stream length.
type Config struct {
	Prof      *dnn.ProfileTable
	Scenario  contention.Scenario
	Spec      core.Spec
	NumInputs int
	Seed      int64
	// Trace, when set, replaces Scenario as the disturbance source (the
	// compiled scenario trace replays through the same contention.Source
	// interface) and supplies per-input spec churn, which Run applies to
	// the deadline tracker, the violation accounting, and any scheduler
	// implementing SpecSetter.
	Trace *scenario.Trace
}

// streamSeed/contSeed/envSeed derive the three independent substream seeds
// so every scheme sees the identical input sequence and identical
// environment draws — the property that makes OracleStatic's exhaustive
// search and all cross-scheme comparisons apples-to-apples.
func (c Config) streamSeed() int64 { return c.Seed*3 + 1 }
func (c Config) contSeed() int64   { return c.Seed*3 + 2 }
func (c Config) envSeed() int64    { return c.Seed*3 + 3 }

// NewEnv builds the simulation environment for this config: a fresh replay
// cursor over the scenario trace when one is set, the stock stochastic
// co-runner source otherwise.
func (c Config) NewEnv() *sim.Env {
	if c.Trace != nil {
		return sim.NewEnv(c.Prof, c.Trace.Source(), c.envSeed())
	}
	cont := contention.NewSource(c.Scenario, c.Prof.Platform.Kind, c.contSeed())
	return sim.NewEnv(c.Prof, cont, c.envSeed())
}

// NewStream builds the input stream for this config.
func (c Config) NewStream() workload.Stream {
	task := c.Prof.Models[0].Task
	return workload.NewStream(task, c.NumInputs, c.streamSeed())
}

// Run executes the scheme over the configured stream and returns the
// record. An optional trace callback sees every (input, decision, outcome)
// triple — the hook behind Figure 9.
func Run(cfg Config, sched Scheduler, trace func(in workload.Input, d sim.Decision, out sim.Outcome)) *metrics.Record {
	return RunEnv(cfg, cfg.NewEnv(), sched, trace)
}

// RunEnv is Run with a caller-supplied environment, used by scripted-
// contention experiments (Fig. 9) that need a custom contention source.
func RunEnv(cfg Config, env *sim.Env, sched Scheduler, trace func(in workload.Input, d sim.Decision, out sim.Outcome)) *metrics.Record {
	stream := cfg.NewStream()
	task := cfg.Prof.Models[0].Task
	tracker := workload.NewDeadlineTracker(task, cfg.Spec.Deadline, 0)
	rec := metrics.NewRecord(sched.Name())

	// cur is the requirement in force for the current input; scenario spec
	// churn moves it mid-stream, and everything downstream — goal
	// adjustment, the scheduler (when it can listen), and the violation
	// accounting — follows the same churned spec.
	cur := cfg.Spec
	for {
		in, ok := stream.Next()
		if !ok {
			break
		}
		if cfg.Trace != nil {
			if next := cfg.Trace.SpecFor(in.ID, cfg.Spec); next != cur {
				cur = next
				tracker.SetPerInput(cur.Deadline)
				if ss, ok := sched.(SpecSetter); ok {
					ss.SetSpec(cur)
				}
			}
		}
		goal := tracker.GoalFor(in)
		d := sched.Decide(env, in, goal)
		out := env.Step(d, in, goal, cur.Deadline)
		tracker.Observe(in, out.Latency)
		sched.Observe(in, d, out)

		s := metrics.Sample{
			Latency:         out.Latency,
			Goal:            goal,
			Energy:          out.Energy,
			Quality:         out.Quality,
			TrueXi:          out.TrueXi,
			Model:           d.Model,
			Cap:             out.CapApplied,
			LatencyViolated: out.Latency > goal,
		}
		switch cur.Objective {
		case core.MinimizeEnergy:
			s.AccuracyViolated = out.Quality < cur.AccuracyGoal
		case core.MaximizeAccuracy:
			s.EnergyViolated = cur.EnergyBudget > 0 && out.Energy > cur.EnergyBudget
		}
		rec.Add(s)
		if trace != nil {
			trace(in, d, out)
		}
	}
	return rec
}
