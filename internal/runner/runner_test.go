package runner

import (
	"testing"

	"github.com/alert-project/alert/internal/contention"
	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/platform"
	"github.com/alert-project/alert/internal/sim"
	"github.com/alert-project/alert/internal/workload"
)

// fixed is a trivial scheduler for harness tests.
type fixed struct{ model, cap int }

func (f fixed) Name() string { return "fixed" }
func (f fixed) Decide(_ *sim.Env, _ workload.Input, goal float64) sim.Decision {
	return sim.Decision{Model: f.model, Cap: f.cap}
}
func (fixed) Observe(workload.Input, sim.Decision, sim.Outcome) {}

func config(t *testing.T, task dnn.Task, scenario contention.Scenario) Config {
	t.Helper()
	prof, err := dnn.Profile(platform.CPU1(), dnn.CandidatesFor(task))
	if err != nil {
		t.Fatal(err)
	}
	spec := core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.1, AccuracyGoal: 0.9}
	return Config{Prof: prof, Scenario: scenario, Spec: spec, NumInputs: 150, Seed: 3}
}

func TestRunProducesOneSamplePerInput(t *testing.T) {
	cfg := config(t, dnn.ImageClassification, contention.Default)
	rec := Run(cfg, fixed{0, 0}, nil)
	if rec.N() != cfg.NumInputs {
		t.Fatalf("samples = %d, want %d", rec.N(), cfg.NumInputs)
	}
}

func TestRunDeterministicAcrossSchedulers(t *testing.T) {
	cfg := config(t, dnn.ImageClassification, contention.Memory)
	a := Run(cfg, fixed{0, 0}, nil)
	b := Run(cfg, fixed{3, 5}, nil)
	for i := range a.Samples {
		if a.Samples[i].TrueXi != b.Samples[i].TrueXi {
			t.Fatalf("input %d: environment draws depend on decisions", i)
		}
	}
}

func TestRunViolationFlags(t *testing.T) {
	cfg := config(t, dnn.ImageClassification, contention.Default)
	cfg.Spec.AccuracyGoal = 0.99 // unreachable: every input violates accuracy
	rec := Run(cfg, fixed{0, 0}, nil)
	for _, s := range rec.Samples {
		if !s.AccuracyViolated {
			t.Fatal("accuracy violation not flagged")
		}
		if s.EnergyViolated {
			t.Fatal("energy flag must be unused in the min-energy task")
		}
	}
}

func TestRunEnergyViolationFlagsInErrorTask(t *testing.T) {
	cfg := config(t, dnn.ImageClassification, contention.Default)
	cfg.Spec = core.Spec{Objective: core.MaximizeAccuracy, Deadline: 0.1, EnergyBudget: 1e-9}
	rec := Run(cfg, fixed{0, len(cfg.Prof.Caps) - 1}, nil)
	for _, s := range rec.Samples {
		if !s.EnergyViolated {
			t.Fatal("energy violation not flagged")
		}
	}
}

func TestRunTraceCallback(t *testing.T) {
	cfg := config(t, dnn.ImageClassification, contention.Default)
	var n int
	Run(cfg, fixed{0, 0}, func(in workload.Input, d sim.Decision, out sim.Outcome) {
		if in.ID != n {
			t.Fatalf("trace out of order: %d at %d", in.ID, n)
		}
		n++
	})
	if n != cfg.NumInputs {
		t.Fatalf("trace saw %d inputs", n)
	}
}

func TestSentenceGoalsAdjustAcrossWords(t *testing.T) {
	cfg := config(t, dnn.SentencePrediction, contention.Default)
	cfg.Spec.Deadline = 0.02
	// Pin a deliberately slow configuration so early words overrun and
	// later words' goals tighten.
	slow := cfg.Prof.ModelIndex("RNN-W4")
	rec := Run(cfg, fixed{slow, 0}, nil)
	var sawTightened bool
	for _, s := range rec.Samples {
		if s.Goal < cfg.Spec.Deadline*0.999 {
			sawTightened = true
			break
		}
	}
	if !sawTightened {
		t.Error("no word ever saw a tightened goal despite overruns")
	}
}

func TestRunEnvCustomEnvironment(t *testing.T) {
	cfg := config(t, dnn.ImageClassification, contention.Default)
	cont := contention.NewScripted(platform.CPU, 1, contention.Burst{Start: 0, End: cfg.NumInputs, Scenario: contention.Memory})
	env := sim.NewEnv(cfg.Prof, cont, 7)
	rec := RunEnv(cfg, env, fixed{0, 0}, nil)
	var contended int
	for _, s := range rec.Samples {
		if s.TrueXi > 1.08 {
			contended++
		}
	}
	if contended < cfg.NumInputs/2 {
		t.Errorf("scripted full-run burst barely visible: %d contended", contended)
	}
}
