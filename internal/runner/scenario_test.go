// Scenario-trace tests live in an external test package because they use
// internal/baselines, which itself imports runner.
package runner_test

import (
	"fmt"
	"strings"
	"testing"

	"github.com/alert-project/alert/internal/baselines"
	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/platform"
	"github.com/alert-project/alert/internal/runner"
	"github.com/alert-project/alert/internal/scenario"
	"github.com/alert-project/alert/internal/sim"
	"github.com/alert-project/alert/internal/workload"
)

// pinned is a trivial scheduler holding one configuration.
type pinned struct{ model, cap int }

func (pinned) Name() string { return "pinned" }
func (p pinned) Decide(_ *sim.Env, _ workload.Input, _ float64) sim.Decision {
	return sim.Decision{Model: p.model, Cap: p.cap}
}
func (pinned) Observe(workload.Input, sim.Decision, sim.Outcome) {}

// traceConfig builds a scenario-trace-driven config for a built-in
// scenario on CPU1 image classification.
func traceConfig(t *testing.T, name string, seed int64) runner.Config {
	t.Helper()
	prof, err := dnn.Profile(platform.CPU1(), dnn.CandidatesFor(dnn.ImageClassification))
	if err != nil {
		t.Fatal(err)
	}
	cfg := runner.Config{
		Prof:      prof,
		Spec:      core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.1, AccuracyGoal: 0.9},
		NumInputs: 150,
		Seed:      seed,
	}
	spec, err := scenario.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := scenario.Compile(spec, prof.Platform, cfg.NumInputs, cfg.Spec.Deadline, seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trace = tr
	return cfg
}

// decisionString flattens a run's decision sequence for byte-exact
// comparison.
func decisionString(cfg runner.Config, sched runner.Scheduler) string {
	var b strings.Builder
	runner.Run(cfg, sched, func(_ workload.Input, d sim.Decision, _ sim.Outcome) {
		fmt.Fprintf(&b, "%d,%d,%.17g,%.17g;", d.Model, d.Cap, d.PlannedStop, d.Overhead)
	})
	return b.String()
}

// TestTraceReplayIdenticalDecisions pins the scenario acceptance property
// at the runner level: the same trace and seed yield a byte-identical
// decision sequence from the full adaptive scheduler.
func TestTraceReplayIdenticalDecisions(t *testing.T) {
	for _, name := range []string{"phased", "thermal", "churn"} {
		mk := func() (runner.Config, runner.Scheduler) {
			cfg := traceConfig(t, name, 11)
			return cfg, baselines.NewAlert("ALERT", cfg.Prof, cfg.Spec, core.DefaultOptions())
		}
		cfgA, schedA := mk()
		cfgB, schedB := mk()
		a, b := decisionString(cfgA, schedA), decisionString(cfgB, schedB)
		if a == "" {
			t.Fatalf("%s: empty decision sequence", name)
		}
		if a != b {
			t.Errorf("%s: same trace + same seed produced different decision sequences", name)
		}
	}
}

// TestTraceChurnMovesAccounting: under the churn scenario the goal moves
// mid-stream, and both the deadline tracker and the violation accounting
// must follow it.
func TestTraceChurnMovesAccounting(t *testing.T) {
	cfg := traceConfig(t, "churn", 3)
	rec := runner.Run(cfg, pinned{0, 0}, nil)
	seen := map[float64]bool{}
	for _, s := range rec.Samples {
		seen[s.Goal] = true
	}
	// churn cycles deadline factors {1, 0.7, 1.5} every 90 inputs; a
	// 150-input run crosses one boundary, so at least two distinct goals.
	if len(seen) < 2 {
		t.Errorf("goals never moved under churn: %v", seen)
	}
}

// TestTraceThrottleClampsCap: under the thermal scenario the applied cap
// must drop below the requested top cap during throttle windows — and only
// then.
func TestTraceThrottleClampsCap(t *testing.T) {
	cfg := traceConfig(t, "thermal", 5)
	top := len(cfg.Prof.Caps) - 1
	topW := cfg.Prof.Caps[top]
	rec := runner.Run(cfg, pinned{0, top}, nil)
	var clamped int
	for _, s := range rec.Samples {
		if s.Cap < topW-1e-9 {
			clamped++
		}
	}
	if clamped == 0 {
		t.Error("thermal trace never clamped the applied cap")
	}
	if clamped == len(rec.Samples) {
		t.Error("cap clamped on every input; throttle duty cycle missing")
	}
}
