// Runner-level differential test for the core decide fast path: the full
// adaptive scheduler run end-to-end over scenario traces (including spec
// churn through runner.SpecSetter) must produce byte-identical decision
// sequences and records whether the controller scores with the optimized
// SoA scan + decision cache or with the retained naive reference scorer.
package runner_test

import (
	"reflect"
	"testing"

	"github.com/alert-project/alert/internal/baselines"
	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/runner"
)

// TestAlertFastPathMatchesReferenceOverTraces is the runner-level leg of
// the differential acceptance criterion. The churn scenario moves the spec
// mid-stream (SetSpec → changed cache key), and every Observe bumps the
// cache epoch, so this exercises memoization, invalidation, and the scan
// itself under realistic dynamics.
func TestAlertFastPathMatchesReferenceOverTraces(t *testing.T) {
	for _, name := range []string{"phased", "thermal", "bursty", "churn"} {
		cfg := traceConfig(t, name, 17)

		fast := baselines.NewAlert("ALERT", cfg.Prof, cfg.Spec, core.DefaultOptions())
		refOpts := core.DefaultOptions()
		refOpts.ReferenceScorer = true
		ref := baselines.NewAlert("ALERT", cfg.Prof, cfg.Spec, refOpts)

		fastSeq := decisionString(cfg, fast)
		refSeq := decisionString(cfg, ref)
		if fastSeq == "" {
			t.Fatalf("%s: empty decision sequence", name)
		}
		if fastSeq != refSeq {
			t.Errorf("%s: fast-path decisions diverge from the reference scorer", name)
		}

		// Records too: same decisions through the same environment must
		// yield identical per-input samples and aggregates.
		recFast := runner.Run(cfg, baselines.NewAlert("ALERT", cfg.Prof, cfg.Spec, core.DefaultOptions()), nil)
		recRef := runner.Run(cfg, baselines.NewAlert("ALERT", cfg.Prof, cfg.Spec, refOpts), nil)
		if !reflect.DeepEqual(recFast.Samples, recRef.Samples) {
			t.Errorf("%s: per-input samples diverge between fast and reference runs", name)
		}
	}
}
