package core

import (
	"bytes"
	"math"
	"testing"

	"github.com/alert-project/alert/internal/mathx"
	"github.com/alert-project/alert/internal/sim"
)

// TestSnapshotRestoreReplayIdentical is the tentpole differential test:
// snapshot a session mid-stream, restore it (directly and through the
// binary codec), and drive original and restored sessions through the same
// future traffic — every decision and estimate must be bit-identical (==),
// i.e. restore-then-replay is indistinguishable from never having
// snapshotted.
func TestSnapshotRestoreReplayIdentical(t *testing.T) {
	for _, prof := range diffProfiles(t) {
		eng := NewEngine(prof, DefaultOptions())
		orig := eng.NewSession()
		rng := mathx.NewRand(23)
		spec := specGen(rng)

		// Evolve the session past its priors with mixed traffic.
		for step := 0; step < 120; step++ {
			switch {
			case rng.Float64() < 0.4:
				orig.Observe(sim.Outcome{
					ObservedXi: 0.7 + rng.Float64(),
					IdlePower:  8 * rng.Float64(),
					CapApplied: prof.Caps[rng.Intn(prof.NumCaps())],
				})
			case rng.Float64() < 0.3:
				spec = specGen(rng)
			}
			orig.Decide(spec)
		}

		// Snapshot → restore, both in-memory and through the binary codec.
		snap := orig.Snapshot()
		restored, err := eng.RestoreSession(snap)
		if err != nil {
			t.Fatal(err)
		}
		wire, err := snap.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var decoded SessionSnapshot
		if err := decoded.UnmarshalBinary(wire); err != nil {
			t.Fatal(err)
		}
		if decoded != snap {
			t.Fatalf("binary round trip changed the snapshot:\n in %+v\nout %+v", snap, decoded)
		}
		shipped, err := eng.RestoreSession(decoded)
		if err != nil {
			t.Fatal(err)
		}

		if restored.FilterEpoch() != orig.FilterEpoch() || restored.Decisions() != orig.Decisions() ||
			restored.XiMean() != orig.XiMean() || restored.XiStd() != orig.XiStd() ||
			restored.IdleRatio() != orig.IdleRatio() {
			t.Fatal("restored session state differs from the original's")
		}

		// Replay continuation: identical future traffic, bit-identical
		// decisions at every step, for both restore paths.
		for step := 0; step < 200; step++ {
			switch {
			case rng.Float64() < 0.4:
				out := sim.Outcome{
					ObservedXi: 0.6 + 1.6*rng.Float64(),
					IdlePower:  10 * rng.Float64(),
					CapApplied: prof.Caps[rng.Intn(prof.NumCaps())],
				}
				orig.Observe(out)
				restored.Observe(out)
				shipped.Observe(out)
			case rng.Float64() < 0.3:
				spec = specGen(rng)
			}
			d0, e0 := orig.Decide(spec)
			d1, e1 := restored.Decide(spec)
			d2, e2 := shipped.Decide(spec)
			if d0 != d1 || e0 != e1 {
				t.Fatalf("step %d: restored session diverged:\norig (%+v, %+v)\nrest (%+v, %+v)", step, d0, e0, d1, e1)
			}
			if d0 != d2 || e0 != e2 {
				t.Fatalf("step %d: binary-shipped session diverged", step)
			}
		}
	}
}

// TestSnapshotFreshSession: a fresh session's snapshot restores to a
// session indistinguishable from a fresh one — the degenerate migration of
// a stream that never saw traffic works.
func TestSnapshotFreshSession(t *testing.T) {
	prof := diffProfiles(t)[0]
	eng := NewEngine(prof, DefaultOptions())
	fresh := eng.NewSession()
	restored, err := eng.RestoreSession(fresh.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Objective: MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9}
	d0, e0 := eng.NewSession().Decide(spec)
	d1, e1 := restored.Decide(spec)
	if d0 != d1 || e0 != e1 {
		t.Fatal("restored fresh session decides differently from a fresh session")
	}
}

// TestSnapshotDoesNotConsume: snapshotting must not perturb the session it
// reads — the original keeps deciding identically to a twin that was never
// snapshotted.
func TestSnapshotDoesNotConsume(t *testing.T) {
	prof := diffProfiles(t)[0]
	eng := NewEngine(prof, DefaultOptions())
	a, b := eng.NewSession(), eng.NewSession()
	spec := Spec{Objective: MinimizeEnergy, Deadline: 0.15, AccuracyGoal: 0.9}
	for i := 0; i < 50; i++ {
		out := sim.Outcome{ObservedXi: 1 + 0.01*float64(i), IdlePower: 5, CapApplied: prof.Caps[0]}
		a.Observe(out)
		b.Observe(out)
		a.Snapshot() // only a is snapshotted, every iteration
		da, ea := a.Decide(spec)
		db, eb := b.Decide(spec)
		if da != db || ea != eb {
			t.Fatalf("step %d: snapshotting perturbed the session", i)
		}
	}
}

// TestSnapshotBinaryCanonical: the encoding is a fixed point — encode →
// decode → encode is byte-identical — and has the documented fixed width.
func TestSnapshotBinaryCanonical(t *testing.T) {
	prof := diffProfiles(t)[0]
	sess := NewEngine(prof, DefaultOptions()).NewSession()
	sess.Observe(sim.Outcome{ObservedXi: 1.3, IdlePower: 4, CapApplied: prof.Caps[0]})
	sess.Decide(Spec{Objective: MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9})

	snap := sess.Snapshot()
	b1, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(b1) != SnapshotBinaryLen {
		t.Fatalf("encoded %d bytes, want %d", len(b1), SnapshotBinaryLen)
	}
	var dec SessionSnapshot
	if err := dec.UnmarshalBinary(b1); err != nil {
		t.Fatal(err)
	}
	b2, err := dec.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("encode∘decode is not the identity:\n%x\n%x", b1, b2)
	}
}

// TestSnapshotUnmarshalRejects: wrong lengths and unknown versions error
// cleanly instead of decoding garbage.
func TestSnapshotUnmarshalRejects(t *testing.T) {
	good, err := (SessionSnapshot{Version: SnapshotVersion, Epoch: 1}).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var snap SessionSnapshot
	for _, tc := range [][]byte{
		nil,
		{},
		good[:len(good)-1],
		append(append([]byte{}, good...), 0),
	} {
		if err := snap.UnmarshalBinary(tc); err == nil {
			t.Errorf("UnmarshalBinary accepted %d bytes", len(tc))
		}
	}
	bad := append([]byte{}, good...)
	bad[0], bad[1] = 0xFF, 0xFF // version 0xFFFF
	if err := snap.UnmarshalBinary(bad); err == nil {
		t.Error("UnmarshalBinary accepted an unknown version")
	}
}

// TestRestoreSessionRejects: snapshots no genuine session could produce —
// wrong version, reserved epoch, non-finite or negative filter state — are
// refused at restore, the semantic gate the permissive codec defers to.
func TestRestoreSessionRejects(t *testing.T) {
	prof := diffProfiles(t)[0]
	eng := NewEngine(prof, DefaultOptions())
	valid := eng.NewSession().Snapshot()

	cases := map[string]func(*SessionSnapshot){
		"version":        func(s *SessionSnapshot) { s.Version = 99 },
		"epoch zero":     func(s *SessionSnapshot) { s.Epoch = 0 },
		"negative count": func(s *SessionSnapshot) { s.Decisions = -1 },
		"nan mu":         func(s *SessionSnapshot) { s.Xi.Mu = math.NaN() },
		"inf sigma":      func(s *SessionSnapshot) { s.Xi.Sigma2 = math.Inf(1) },
		"negative var":   func(s *SessionSnapshot) { s.Xi.Sigma2 = -0.5 },
		"nan phi":        func(s *SessionSnapshot) { s.Idle.Phi = math.NaN() },
		"negative xi n":  func(s *SessionSnapshot) { s.Xi.N = -3 },
	}
	for name, mutate := range cases {
		snap := valid
		mutate(&snap)
		if _, err := eng.RestoreSession(snap); err == nil {
			t.Errorf("%s: RestoreSession accepted an invalid snapshot", name)
		}
	}
	if _, err := eng.RestoreSession(valid); err != nil {
		t.Errorf("RestoreSession rejected a valid snapshot: %v", err)
	}
}

// TestRestoreSessionWithSharedScratch: restoring onto a shard's shared
// workspace (the serving layer's import path) decides identically to a
// private-workspace restore.
func TestRestoreSessionWithSharedScratch(t *testing.T) {
	prof := diffProfiles(t)[0]
	eng := NewEngine(prof, DefaultOptions())
	sess := eng.NewSession()
	for i := 0; i < 30; i++ {
		sess.Observe(sim.Outcome{ObservedXi: 1.1, IdlePower: 3, CapApplied: prof.Caps[0]})
	}
	snap := sess.Snapshot()

	private, err := eng.RestoreSession(snap)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := eng.RestoreSessionWith(eng.NewScratch(), snap)
	if err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRand(5)
	for i := 0; i < 60; i++ {
		spec := specGen(rng)
		d0, e0 := private.Decide(spec)
		d1, e1 := shared.Decide(spec)
		if d0 != d1 || e0 != e1 {
			t.Fatalf("step %d: shared-scratch restore diverged", i)
		}
	}
}
