package core

import (
	"testing"

	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/platform"
	"github.com/alert-project/alert/internal/sim"
)

// The decide benchmarks measure the three hot-path regimes side by side so
// one run carries its own baseline: "naive" is the retained pre-optimization
// scorer (Options.ReferenceScorer), "uncached" is the SoA scan with hoisted
// quantile math (every iteration Observes first, so the cache never hits),
// and "cached" is the steady-state memoized path. cmd/benchreport parses
// these into BENCH_<pr>.json and gates on cached allocs/op == 0 and the
// uncached- and cached-vs-naive speedups.

func benchProfile(b *testing.B) *dnn.ProfileTable {
	b.Helper()
	prof, err := dnn.Profile(platform.CPU1(), dnn.ImageCandidates())
	if err != nil {
		b.Fatal(err)
	}
	return prof
}

func benchSpec() Spec {
	return Spec{Objective: MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.93}
}

func reportRate(b *testing.B) {
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "decisions/s")
	}
}

// BenchmarkDecide is the headline hot-path benchmark: one full decision on
// the mixed traditional+anytime image candidate set.
func BenchmarkDecide(b *testing.B) {
	prof := benchProfile(b)
	spec := benchSpec()
	out := sim.Outcome{ObservedXi: 1.05, IdlePower: 6, CapApplied: 30}

	run := func(b *testing.B, reference, observeEachIter bool) {
		opts := DefaultOptions()
		opts.ReferenceScorer = reference
		ctl := New(prof, opts)
		ctl.Observe(out)
		ctl.Decide(spec) // warm scratch + cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if observeEachIter {
				ctl.Observe(out)
			}
			ctl.Decide(spec)
		}
		b.StopTimer()
		reportRate(b)
	}

	// The pre-PR scorer, measured in the same run as its replacements; the
	// Observe per iteration matches "uncached" so the comparison isolates
	// the scan itself (the reference path never caches anyway).
	b.Run("naive", func(b *testing.B) { run(b, true, true) })
	// The optimized scan with the cache busted by an Observe per iteration.
	b.Run("uncached", func(b *testing.B) { run(b, false, true) })
	// The steady-state memoized path: same spec, no filter movement.
	b.Run("cached", func(b *testing.B) { run(b, false, false) })
}

// BenchmarkDecideZoo is BenchmarkDecide/uncached over the 42-model
// all-traditional zoo — the large-space case the SoA layout targets.
func BenchmarkDecideZoo(b *testing.B) {
	prof, err := dnn.Profile(platform.CPU2(), dnn.ImageNetZoo(1))
	if err != nil {
		b.Fatal(err)
	}
	spec := Spec{Objective: MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9}
	out := sim.Outcome{ObservedXi: 1.05, IdlePower: 20, CapApplied: 60}
	for _, ref := range []struct {
		name string
		on   bool
	}{{"naive", true}, {"fast", false}} {
		b.Run(ref.name, func(b *testing.B) {
			opts := DefaultOptions()
			opts.ReferenceScorer = ref.on
			ctl := New(prof, opts)
			ctl.Observe(out)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctl.Observe(out)
				ctl.Decide(spec)
			}
			b.StopTimer()
			reportRate(b)
		})
	}
}

// BenchmarkDecideAtCap measures the rung-restricted primitive the multi-job
// coordinator calls in its greedy loop; the fast path scans the rung's
// precomputed index list instead of filtering the whole space.
func BenchmarkDecideAtCap(b *testing.B) {
	prof := benchProfile(b)
	spec := benchSpec()
	for _, ref := range []struct {
		name string
		on   bool
	}{{"naive", true}, {"fast", false}} {
		b.Run(ref.name, func(b *testing.B) {
			opts := DefaultOptions()
			opts.ReferenceScorer = ref.on
			ctl := New(prof, opts)
			ctl.Observe(sim.Outcome{ObservedXi: 1.05, IdlePower: 6, CapApplied: 30})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctl.DecideAtCap(spec, i%prof.NumCaps())
			}
			b.StopTimer()
			reportRate(b)
		})
	}
}

// BenchmarkSnapshotRoundTrip measures the migration hot loop — snapshot a
// live session, encode it to the canonical binary form, decode, and restore
// — reporting bytes/snapshot (the wire cost of shipping one stream) and
// snapshots/s (how fast a node can drain its stream table during a rolling
// restart). cmd/benchreport carries both into BENCH_<pr>.json.
func BenchmarkSnapshotRoundTrip(b *testing.B) {
	prof := benchProfile(b)
	eng := NewEngine(prof, DefaultOptions())
	sess := eng.NewSession()
	spec := benchSpec()
	for i := 0; i < 64; i++ {
		sess.Observe(sim.Outcome{ObservedXi: 1.05, IdlePower: 6, CapApplied: 30})
		sess.Decide(spec)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var wire []byte
	for i := 0; i < b.N; i++ {
		var err error
		wire, err = sess.Snapshot().MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		var snap SessionSnapshot
		if err := snap.UnmarshalBinary(wire); err != nil {
			b.Fatal(err)
		}
		if _, err := eng.RestoreSession(snap); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(wire)), "bytes/snapshot")
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "snapshots/s")
	}
}
