package core

// The decide hot path. Decide runs once per inference input on every
// serving layer (runner, experiment grid, serve.Pool shards, cmd/alertload),
// so the per-candidate scoring here is the single hottest loop in the
// repository. This file restructures it around three ideas, none of which
// may change a single decision:
//
//  1. Structure-of-arrays candidate space (candSpace): everything about a
//     candidate that depends only on the profile table — t_prof, p_{i,j},
//     the anytime stage ladders as nominal latencies, the per-cap index
//     lists DecideAtCap scans — is precomputed once at NewEngine and laid
//     out in flat parallel slices, so the scan loop touches no *dnn.Model
//     pointers and recomputes no products. The space lives on the shared
//     Engine: every Session scans the same arrays.
//  2. Loop-invariant hoisting (scoreParams): the standard-normal quantiles
//     behind the Eq. 12 energy estimate and the §3.5 anytime stop plan
//     depend only on (spec, filter state), not on the candidate, yet the
//     naive scorer paid one mathx.NormQuantile per candidate. They are now
//     computed once per Decide. The anytime quality ladder likewise
//     evaluates each stage's completion probability once instead of twice
//     (the naive ladder recomputes stage si+1's CDF as it advances).
//  3. Bit-exactness over micro-tricks: the scan must stay byte-identical to
//     the naive estimate/EstimateAll oracle (the differential tests compare
//     Estimates with ==), so only transformations that reproduce the exact
//     same float64 operation sequence are admitted. In particular the
//     (x−µ)/σ standardization keeps the division: multiplying by a
//     precomputed 1/σ (or 1/t_prof) is faster but perturbs the last ulp,
//     which can flip a near-tie between candidates.
//
// On top of the faster scan, Decide memoizes (spec, filter epoch) →
// Estimate per Session: Observe bumps the session's epoch, so steady-state
// streams whose spec did not change between observations skip the scan
// entirely. See decideCache below.

import (
	"math"

	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/mathx"
	"github.com/alert-project/alert/internal/sim"
)

// candSpace is the structure-of-arrays view of the candidate slice, indexed
// by the same candidate index as Engine.candidates.
type candSpace struct {
	// model/capIdx/stop/runToDL mirror the Candidate fields.
	model   []int32
	capIdx  []int32
	stop    []int32
	runToDL []bool
	// tProf and power are the profile-table lookups t_prof[i][j] and
	// p_{i,j} for the candidate's (model, cap).
	tProf []float64
	power []float64
	// acc and qFail are the candidate model's final accuracy and
	// deadline-miss quality.
	acc   []float64
	qFail []float64
	// stageNom[i][si] is stage si's nominal latency LatencyFrac·t_prof at
	// the candidate's (model, cap); stageAcc[i][si] its accuracy. nil for
	// traditional candidates. Candidates sharing (model, cap) share the
	// backing slice.
	stageNom [][]float64
	stageAcc [][]float64
	// all is the identity index list (scan order = enumeration order);
	// byCap[j] lists the candidates at cap rung j in enumeration order, so
	// DecideAtCap scans only its rung yet breaks ties exactly like a scan
	// of the full space filtered to the rung.
	byCap [][]int32
	all   []int32
	// maxStages sizes the Scratch buffer for ladder CDFs.
	maxStages int
}

// newCandSpace precomputes the SoA layout from the enumerated candidates.
func newCandSpace(prof *dnn.ProfileTable, cands []Candidate) candSpace {
	n := len(cands)
	s := candSpace{
		model:    make([]int32, n),
		capIdx:   make([]int32, n),
		stop:     make([]int32, n),
		runToDL:  make([]bool, n),
		tProf:    make([]float64, n),
		power:    make([]float64, n),
		acc:      make([]float64, n),
		qFail:    make([]float64, n),
		stageNom: make([][]float64, n),
		stageAcc: make([][]float64, n),
		byCap:    make([][]int32, prof.NumCaps()),
		all:      make([]int32, n),
	}
	// Shared stage ladders per (model, cap): LatencyFrac·t_prof is the same
	// two-operand product the naive scorer computes, so sharing the
	// precomputed slice is bit-exact.
	type mc struct{ m, c int }
	noms := make(map[mc][]float64)
	accs := make(map[int][]float64)
	for i, cand := range cands {
		m := prof.Models[cand.Model]
		tp := prof.At(cand.Model, cand.Cap)
		s.model[i] = int32(cand.Model)
		s.capIdx[i] = int32(cand.Cap)
		s.stop[i] = int32(cand.StopStage)
		s.runToDL[i] = cand.RunToDeadline
		s.tProf[i] = tp
		s.power[i] = prof.PowerAt(cand.Model, cand.Cap)
		s.acc[i] = m.Accuracy
		s.qFail[i] = m.QFail
		s.all[i] = int32(i)
		s.byCap[cand.Cap] = append(s.byCap[cand.Cap], int32(i))
		if !m.IsAnytime() {
			continue
		}
		key := mc{cand.Model, cand.Cap}
		nom, ok := noms[key]
		if !ok {
			nom = make([]float64, len(m.Stages))
			for si, st := range m.Stages {
				nom[si] = st.LatencyFrac * tp
			}
			noms[key] = nom
		}
		acc, ok := accs[cand.Model]
		if !ok {
			acc = make([]float64, len(m.Stages))
			for si, st := range m.Stages {
				acc[si] = st.Accuracy
			}
			accs[cand.Model] = acc
		}
		s.stageNom[i] = nom
		s.stageAcc[i] = acc
		if len(m.Stages) > s.maxStages {
			s.maxStages = len(m.Stages)
		}
	}
	return s
}

// Scratch is the scan workspace: the anytime ladder's per-stage completion
// probabilities for one estimateFast call, sized to the engine's longest
// stage ladder so the hot path never allocates, plus the memo of which
// (ladder, cut, µ, σ) the buffer's prefix of length ladderN currently
// holds, letting consecutive stop-stage candidates reuse it (see
// estimateFast).
//
// A Scratch is pure workspace, not state: every value read from it during
// a scan is fully determined by the memo key, so scans produce identical
// results whether the workspace is private, shared across the sessions of
// a serving shard, or freshly zeroed. It must only be shared by sessions
// driven from one goroutine.
type Scratch struct {
	buf         []float64
	ladderNom   *float64
	ladderCut   float64
	ladderMu    float64
	ladderSigma float64
	ladderN     int
}

// scoreParams are the per-Decide invariants of candidate scoring: the
// current ξ belief and the two standard-normal quantiles the naive scorer
// recomputed per candidate.
type scoreParams struct {
	mu, sigma float64
	// zEnergy is NormQuantile(energyQuantile(spec), µ, σ): the Eq. 12
	// latency quantile per unit of nominal work.
	zEnergy float64
	// zStop is NormQuantile(q, µ, σ) for the §3.5 stop quantile (Prth when
	// the spec sets one): the planned-stop budget per unit of nominal work.
	zStop float64
}

// scoreParamsFor computes the per-Decide invariants once.
func (s *Session) scoreParamsFor(spec Spec) scoreParams {
	p := scoreParams{mu: s.xi.Mean(), sigma: s.sigmaForPrediction()}
	p.zEnergy = mathx.NormQuantile(s.energyQuantile(spec), p.mu, p.sigma)
	q := s.eng.opts.StopQuantile
	if spec.Prth > 0 {
		q = spec.Prth
	}
	p.zStop = mathx.NormQuantile(q, p.mu, p.sigma)
	return p
}

// prWithin is Eq. 6's building block: the probability that a work chunk of
// nominal duration d completes within budget b, Pr[ξ·d ≤ b].
func prWithin(d, b, mu, sigma float64) float64 {
	if d <= 0 {
		return 1
	}
	return mathx.NormCDF(b/d, mu, sigma)
}

// estimateFast scores candidate i under the spec, producing the exact
// Estimate the naive estimate() produces (the differential tests in
// differential_test.go pin the equality with ==). goal is the adjusted
// deadline; p the hoisted per-Decide invariants.
func (s *Session) estimateFast(i int32, goal float64, spec Spec, p scoreParams) Estimate {
	space := &s.eng.space
	est := Estimate{Candidate: s.eng.candidates[i]}
	tp := space.tProf[i]

	if space.stageNom[i] == nil {
		est.LatMean = p.mu * tp
		est.PrDeadline = prWithin(tp, goal, p.mu, p.sigma)
		est.Quality = est.PrDeadline*space.acc[i] + (1-est.PrDeadline)*space.qFail[i]
		switch {
		case spec.AccuracyGoal <= 0 || space.qFail[i] >= spec.AccuracyGoal:
			est.PrQuality = 1
		case space.acc[i] >= spec.AccuracyGoal:
			est.PrQuality = est.PrDeadline
		default:
			est.PrQuality = 0
		}
		lat := p.zEnergy * tp
		if lat < est.LatMean {
			lat = est.LatMean
		}
		est.Energy = s.energyAt(space.power[i], lat, goal)
		return est
	}

	nom := space.stageNom[i]
	accs := space.stageAcc[i]
	k := int(space.stop[i])

	var stop float64
	if space.runToDL[i] {
		stop = goal
	} else {
		stop = p.zStop * nom[k]
		if stop > goal {
			stop = goal
		}
		if stop <= 0 {
			stop = goal
		}
	}
	est.PlannedStop = stop
	cut := math.Min(stop, goal)

	// Raw (unclamped) per-stage completion probabilities, each evaluated
	// once; the naive ladder evaluates stage si+1's CDF as the look-ahead of
	// iteration si and again as iteration si+1's own term.
	//
	// Consecutive candidates in enumeration order share (model, cap) —
	// hence the same nominal-latency ladder — and differ only in stop
	// stage. Whenever they also share the cut (tight deadlines clamp every
	// stop to the goal), the raw CDFs already sitting in the workspace are
	// bit-exact for this candidate too: raws[si] depends only on
	// (nom, cut, µ, σ). The memo keys on exactly those, so a K-stage
	// ladder's scan degrades from O(K²) CDF evaluations to O(K) when cuts
	// coincide, with zero effect otherwise — including when the workspace
	// is shared with other sessions of the serving shard.
	sc := s.sc
	raws := sc.buf[:k+1]
	start := 0
	if sc.ladderN > 0 && &nom[0] == sc.ladderNom && cut == sc.ladderCut &&
		p.mu == sc.ladderMu && p.sigma == sc.ladderSigma {
		start = sc.ladderN
	} else {
		sc.ladderNom, sc.ladderCut, sc.ladderMu, sc.ladderSigma = &nom[0], cut, p.mu, p.sigma
		sc.ladderN = 0
	}
	for si := start; si <= k; si++ {
		sc.buf[si] = prWithin(nom[si], cut, p.mu, p.sigma)
	}
	if k+1 > sc.ladderN {
		sc.ladderN = k + 1
	}

	// Quality ladder under the cut. The clamped probability of iteration
	// si+1 equals iteration si's look-ahead term, so one running value
	// carries the whole recurrence.
	pr := raws[0] // min(raws[0], 1) — a CDF never exceeds 1
	quality := 0.0
	for si := 0; si <= k; si++ {
		nextPr := 0.0
		if si < k {
			nextPr = math.Min(raws[si+1], pr)
		}
		quality += accs[si] * (pr - nextPr)
		pr = nextPr
	}
	quality += space.qFail[i] * (1 - raws[0])
	est.Quality = quality
	est.PrDeadline = raws[k]

	switch {
	case spec.AccuracyGoal <= 0 || space.qFail[i] >= spec.AccuracyGoal:
		est.PrQuality = 1
	default:
		est.PrQuality = 0
		for si := 0; si <= k; si++ {
			if accs[si] >= spec.AccuracyGoal {
				est.PrQuality = raws[si]
				break
			}
		}
	}

	meanExec := math.Min(p.mu*nom[k], cut)
	est.LatMean = meanExec
	qExec := math.Min(p.zEnergy*nom[k], cut)
	if qExec < meanExec {
		qExec = meanExec
	}
	est.Energy = s.energyAt(space.power[i], qExec, goal)
	return est
}

// selector accumulates the feasible optimum under the spec's objective
// plus the infeasibility fallback (quality-maximal, energy tiebreak — §4's
// latency > accuracy > power hierarchy). One implementation serves both
// the fast and the reference scan, so the selection semantics cannot
// silently diverge between them.
type selector struct {
	spec           Spec
	conf           float64
	minimizeEnergy bool
	best, fb       Estimate
	bestSet, fbSet bool
}

func (s *Session) newSelector(spec Spec) selector {
	sel := selector{spec: spec, conf: s.eng.opts.Confidence,
		minimizeEnergy: spec.Objective == MinimizeEnergy}
	if spec.Prth > 0 {
		sel.conf = spec.Prth
	}
	return sel
}

// consider folds one candidate's estimate into the running selection,
// reproducing the pre-optimization Decide/DecideAtCap semantics exactly
// (candidates must arrive in enumeration order for identical tie breaks).
func (s *selector) consider(e Estimate) {
	if !s.fbSet || e.Quality > s.fb.Quality ||
		(e.Quality == s.fb.Quality && e.Energy < s.fb.Energy) {
		s.fb, s.fbSet = e, true
	}
	if s.spec.Prth > 0 && e.PrDeadline < s.spec.Prth {
		return
	}
	// Latency is a constraint in both tasks; anytime candidates are
	// exempt (the runtime cuts them at the goal).
	if e.StopStage < 0 && e.PrDeadline < s.conf {
		return
	}
	if s.minimizeEnergy {
		if e.PrQuality < s.conf {
			return
		}
	} else if s.spec.EnergyBudget > 0 && e.Energy > s.spec.EnergyBudget {
		return
	}
	if !s.bestSet ||
		(s.minimizeEnergy && e.Energy < s.best.Energy) ||
		(!s.minimizeEnergy && e.Quality > s.best.Quality) {
		s.best, s.bestSet = e, true
	}
}

// scan scores the candidates in idxs (which must be in enumeration order)
// with the optimized estimator. ok is false when no candidate is feasible
// (the fallback still serves). DecideAtCap reuses it over a single rung's
// index list.
func (s *Session) scan(idxs []int32, goal float64, spec Spec, p scoreParams) (best, fb Estimate, ok bool) {
	sel := s.newSelector(spec)
	for _, i := range idxs {
		sel.consider(s.estimateFast(i, goal, spec, p))
	}
	return sel.best, sel.fb, sel.bestSet
}

// scanReference is scan with the naive per-candidate estimate() — the
// pre-optimization scorer retained as the differential-testing oracle and
// selectable at runtime via Options.ReferenceScorer.
func (s *Session) scanReference(idxs []int32, goal float64, spec Spec) (best, fb Estimate, ok bool) {
	sel := s.newSelector(spec)
	for _, i := range idxs {
		sel.consider(s.estimate(s.eng.candidates[i], goal, spec))
	}
	return sel.best, sel.fb, sel.bestSet
}

// decideCacheSize bounds the per-epoch memoization: one slot per distinct
// spec seen since the last Observe. A steady-state stream uses one; a
// session whose spec churns between observations uses a few. Slots are
// recycled round-robin, so pathological spec churn degrades to the plain
// scan, never to unbounded growth.
const decideCacheSize = 4

// decideCacheEntry memoizes one (spec, epoch) → Estimate. The Decision is
// not stored: it is a pure projection of the Estimate plus the engine's
// constant overhead (decisionFor), so recomputing it on a hit is bit-exact
// and keeps the Session's dominant field — this cache — a third smaller.
type decideCacheEntry struct {
	epoch uint64
	spec  Spec
	est   Estimate
}

// cacheGet returns the memoized decision for spec at the current filter
// epoch, if any. Entries from earlier epochs are dead: Observe moved the
// filters, so the scan could rank candidates differently.
func (s *Session) cacheGet(spec Spec) (sim.Decision, Estimate, bool) {
	for i := range s.cache {
		if s.cache[i].epoch == s.epoch && s.cache[i].spec == spec {
			return s.decisionFor(s.cache[i].est), s.cache[i].est, true
		}
	}
	return sim.Decision{}, Estimate{}, false
}

// cachePut memoizes a freshly scanned decision at the current epoch.
func (s *Session) cachePut(spec Spec, est Estimate) {
	s.cache[s.cacheNext] = decideCacheEntry{epoch: s.epoch, spec: spec, est: est}
	s.cacheNext = (s.cacheNext + 1) % decideCacheSize
}
