package core

// The decide hot path. Decide runs once per inference input on every
// serving layer (runner, experiment grid, serve.Pool shards, cmd/alertload),
// so the per-candidate scoring here is the single hottest loop in the
// repository. This file restructures it around three ideas, none of which
// may change a single decision:
//
//  1. Structure-of-arrays candidate space (candSpace): everything about a
//     candidate that depends only on the profile table — t_prof, p_{i,j},
//     the anytime stage ladders as nominal latencies, the per-cap index
//     lists DecideAtCap scans — is precomputed once at New and laid out in
//     flat parallel slices, so the scan loop touches no *dnn.Model pointers
//     and recomputes no products.
//  2. Loop-invariant hoisting (scoreParams): the standard-normal quantiles
//     behind the Eq. 12 energy estimate and the §3.5 anytime stop plan
//     depend only on (spec, filter state), not on the candidate, yet the
//     naive scorer paid one mathx.NormQuantile per candidate. They are now
//     computed once per Decide. The anytime quality ladder likewise
//     evaluates each stage's completion probability once instead of twice
//     (the naive ladder recomputes stage si+1's CDF as it advances).
//  3. Bit-exactness over micro-tricks: the scan must stay byte-identical to
//     the naive estimate/EstimateAll oracle (the differential tests compare
//     Estimates with ==), so only transformations that reproduce the exact
//     same float64 operation sequence are admitted. In particular the
//     (x−µ)/σ standardization keeps the division: multiplying by a
//     precomputed 1/σ (or 1/t_prof) is faster but perturbs the last ulp,
//     which can flip a near-tie between candidates.
//
// On top of the faster scan, Decide memoizes (spec, filter epoch) →
// (Decision, Estimate): Observe bumps the epoch, so steady-state streams
// whose spec did not change between observations skip the scan entirely.
// See decideCache below.

import (
	"math"

	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/mathx"
	"github.com/alert-project/alert/internal/sim"
)

// candSpace is the structure-of-arrays view of the candidate slice, indexed
// by the same candidate index as Controller.candidates.
type candSpace struct {
	// model/capIdx/stop/runToDL mirror the Candidate fields.
	model   []int32
	capIdx  []int32
	stop    []int32
	runToDL []bool
	// tProf and power are the profile-table lookups t_prof[i][j] and
	// p_{i,j} for the candidate's (model, cap).
	tProf []float64
	power []float64
	// acc and qFail are the candidate model's final accuracy and
	// deadline-miss quality.
	acc   []float64
	qFail []float64
	// stageNom[i][si] is stage si's nominal latency LatencyFrac·t_prof at
	// the candidate's (model, cap); stageAcc[i][si] its accuracy. nil for
	// traditional candidates. Candidates sharing (model, cap) share the
	// backing slice.
	stageNom [][]float64
	stageAcc [][]float64
	// all is the identity index list (scan order = enumeration order);
	// byCap[j] lists the candidates at cap rung j in enumeration order, so
	// DecideAtCap scans only its rung yet breaks ties exactly like a scan
	// of the full space filtered to the rung.
	byCap [][]int32
	all   []int32
	// maxStages sizes the per-controller scratch buffer for ladder CDFs.
	maxStages int
}

// newCandSpace precomputes the SoA layout from the enumerated candidates.
func newCandSpace(prof *dnn.ProfileTable, cands []Candidate) candSpace {
	n := len(cands)
	s := candSpace{
		model:    make([]int32, n),
		capIdx:   make([]int32, n),
		stop:     make([]int32, n),
		runToDL:  make([]bool, n),
		tProf:    make([]float64, n),
		power:    make([]float64, n),
		acc:      make([]float64, n),
		qFail:    make([]float64, n),
		stageNom: make([][]float64, n),
		stageAcc: make([][]float64, n),
		byCap:    make([][]int32, prof.NumCaps()),
		all:      make([]int32, n),
	}
	// Shared stage ladders per (model, cap): LatencyFrac·t_prof is the same
	// two-operand product the naive scorer computes, so sharing the
	// precomputed slice is bit-exact.
	type mc struct{ m, c int }
	noms := make(map[mc][]float64)
	accs := make(map[int][]float64)
	for i, cand := range cands {
		m := prof.Models[cand.Model]
		tp := prof.At(cand.Model, cand.Cap)
		s.model[i] = int32(cand.Model)
		s.capIdx[i] = int32(cand.Cap)
		s.stop[i] = int32(cand.StopStage)
		s.runToDL[i] = cand.RunToDeadline
		s.tProf[i] = tp
		s.power[i] = prof.PowerAt(cand.Model, cand.Cap)
		s.acc[i] = m.Accuracy
		s.qFail[i] = m.QFail
		s.all[i] = int32(i)
		s.byCap[cand.Cap] = append(s.byCap[cand.Cap], int32(i))
		if !m.IsAnytime() {
			continue
		}
		key := mc{cand.Model, cand.Cap}
		nom, ok := noms[key]
		if !ok {
			nom = make([]float64, len(m.Stages))
			for si, st := range m.Stages {
				nom[si] = st.LatencyFrac * tp
			}
			noms[key] = nom
		}
		acc, ok := accs[cand.Model]
		if !ok {
			acc = make([]float64, len(m.Stages))
			for si, st := range m.Stages {
				acc[si] = st.Accuracy
			}
			accs[cand.Model] = acc
		}
		s.stageNom[i] = nom
		s.stageAcc[i] = acc
		if len(m.Stages) > s.maxStages {
			s.maxStages = len(m.Stages)
		}
	}
	return s
}

// scoreParams are the per-Decide invariants of candidate scoring: the
// current ξ belief and the two standard-normal quantiles the naive scorer
// recomputed per candidate.
type scoreParams struct {
	mu, sigma float64
	// zEnergy is NormQuantile(energyQuantile(spec), µ, σ): the Eq. 12
	// latency quantile per unit of nominal work.
	zEnergy float64
	// zStop is NormQuantile(q, µ, σ) for the §3.5 stop quantile (Prth when
	// the spec sets one): the planned-stop budget per unit of nominal work.
	zStop float64
}

// scoreParamsFor computes the per-Decide invariants once.
func (c *Controller) scoreParamsFor(spec Spec) scoreParams {
	p := scoreParams{mu: c.xi.Mean(), sigma: c.sigmaForPrediction()}
	p.zEnergy = mathx.NormQuantile(c.energyQuantile(spec), p.mu, p.sigma)
	q := c.opts.StopQuantile
	if spec.Prth > 0 {
		q = spec.Prth
	}
	p.zStop = mathx.NormQuantile(q, p.mu, p.sigma)
	return p
}

// prWithin is Eq. 6's building block: the probability that a work chunk of
// nominal duration d completes within budget b, Pr[ξ·d ≤ b].
func prWithin(d, b, mu, sigma float64) float64 {
	if d <= 0 {
		return 1
	}
	return mathx.NormCDF(b/d, mu, sigma)
}

// estimateFast scores candidate i under the spec, producing the exact
// Estimate the naive estimate() produces (the differential tests in
// differential_test.go pin the equality with ==). goal is the adjusted
// deadline; p the hoisted per-Decide invariants.
func (c *Controller) estimateFast(i int32, goal float64, spec Spec, p scoreParams) Estimate {
	est := Estimate{Candidate: c.candidates[i]}
	tp := c.space.tProf[i]

	if c.space.stageNom[i] == nil {
		est.LatMean = p.mu * tp
		est.PrDeadline = prWithin(tp, goal, p.mu, p.sigma)
		est.Quality = est.PrDeadline*c.space.acc[i] + (1-est.PrDeadline)*c.space.qFail[i]
		switch {
		case spec.AccuracyGoal <= 0 || c.space.qFail[i] >= spec.AccuracyGoal:
			est.PrQuality = 1
		case c.space.acc[i] >= spec.AccuracyGoal:
			est.PrQuality = est.PrDeadline
		default:
			est.PrQuality = 0
		}
		lat := p.zEnergy * tp
		if lat < est.LatMean {
			lat = est.LatMean
		}
		est.Energy = c.energyAt(c.space.power[i], lat, goal)
		return est
	}

	nom := c.space.stageNom[i]
	accs := c.space.stageAcc[i]
	k := int(c.space.stop[i])

	var stop float64
	if c.space.runToDL[i] {
		stop = goal
	} else {
		stop = p.zStop * nom[k]
		if stop > goal {
			stop = goal
		}
		if stop <= 0 {
			stop = goal
		}
	}
	est.PlannedStop = stop
	cut := math.Min(stop, goal)

	// Raw (unclamped) per-stage completion probabilities, each evaluated
	// once; the naive ladder evaluates stage si+1's CDF as the look-ahead of
	// iteration si and again as iteration si+1's own term.
	//
	// Consecutive candidates in enumeration order share (model, cap) —
	// hence the same nominal-latency ladder — and differ only in stop
	// stage. Whenever they also share the cut (tight deadlines clamp every
	// stop to the goal), the raw CDFs already sitting in scratch are
	// bit-exact for this candidate too: raws[si] depends only on
	// (nom, cut, µ, σ). The memo keys on exactly those, so a K-stage
	// ladder's scan degrades from O(K²) CDF evaluations to O(K) when cuts
	// coincide, with zero effect otherwise.
	raws := c.scratch[:k+1]
	start := 0
	if c.ladderN > 0 && &nom[0] == c.ladderNom && cut == c.ladderCut &&
		p.mu == c.ladderMu && p.sigma == c.ladderSigma {
		start = c.ladderN
	} else {
		c.ladderNom, c.ladderCut, c.ladderMu, c.ladderSigma = &nom[0], cut, p.mu, p.sigma
		c.ladderN = 0
	}
	for si := start; si <= k; si++ {
		c.scratch[si] = prWithin(nom[si], cut, p.mu, p.sigma)
	}
	if k+1 > c.ladderN {
		c.ladderN = k + 1
	}

	// Quality ladder under the cut. The clamped probability of iteration
	// si+1 equals iteration si's look-ahead term, so one running value
	// carries the whole recurrence.
	pr := raws[0] // min(raws[0], 1) — a CDF never exceeds 1
	quality := 0.0
	for si := 0; si <= k; si++ {
		nextPr := 0.0
		if si < k {
			nextPr = math.Min(raws[si+1], pr)
		}
		quality += accs[si] * (pr - nextPr)
		pr = nextPr
	}
	quality += c.space.qFail[i] * (1 - raws[0])
	est.Quality = quality
	est.PrDeadline = raws[k]

	switch {
	case spec.AccuracyGoal <= 0 || c.space.qFail[i] >= spec.AccuracyGoal:
		est.PrQuality = 1
	default:
		est.PrQuality = 0
		for si := 0; si <= k; si++ {
			if accs[si] >= spec.AccuracyGoal {
				est.PrQuality = raws[si]
				break
			}
		}
	}

	meanExec := math.Min(p.mu*nom[k], cut)
	est.LatMean = meanExec
	qExec := math.Min(p.zEnergy*nom[k], cut)
	if qExec < meanExec {
		qExec = meanExec
	}
	est.Energy = c.energyAt(c.space.power[i], qExec, goal)
	return est
}

// selector accumulates the feasible optimum under the spec's objective
// plus the infeasibility fallback (quality-maximal, energy tiebreak — §4's
// latency > accuracy > power hierarchy). One implementation serves both
// the fast and the reference scan, so the selection semantics cannot
// silently diverge between them.
type selector struct {
	spec           Spec
	conf           float64
	minimizeEnergy bool
	best, fb       Estimate
	bestSet, fbSet bool
}

func (c *Controller) newSelector(spec Spec) selector {
	s := selector{spec: spec, conf: c.opts.Confidence,
		minimizeEnergy: spec.Objective == MinimizeEnergy}
	if spec.Prth > 0 {
		s.conf = spec.Prth
	}
	return s
}

// consider folds one candidate's estimate into the running selection,
// reproducing the pre-optimization Decide/DecideAtCap semantics exactly
// (candidates must arrive in enumeration order for identical tie breaks).
func (s *selector) consider(e Estimate) {
	if !s.fbSet || e.Quality > s.fb.Quality ||
		(e.Quality == s.fb.Quality && e.Energy < s.fb.Energy) {
		s.fb, s.fbSet = e, true
	}
	if s.spec.Prth > 0 && e.PrDeadline < s.spec.Prth {
		return
	}
	// Latency is a constraint in both tasks; anytime candidates are
	// exempt (the runtime cuts them at the goal).
	if e.StopStage < 0 && e.PrDeadline < s.conf {
		return
	}
	if s.minimizeEnergy {
		if e.PrQuality < s.conf {
			return
		}
	} else if s.spec.EnergyBudget > 0 && e.Energy > s.spec.EnergyBudget {
		return
	}
	if !s.bestSet ||
		(s.minimizeEnergy && e.Energy < s.best.Energy) ||
		(!s.minimizeEnergy && e.Quality > s.best.Quality) {
		s.best, s.bestSet = e, true
	}
}

// scan scores the candidates in idxs (which must be in enumeration order)
// with the optimized estimator. ok is false when no candidate is feasible
// (the fallback still serves). DecideAtCap reuses it over a single rung's
// index list.
func (c *Controller) scan(idxs []int32, goal float64, spec Spec, p scoreParams) (best, fb Estimate, ok bool) {
	sel := c.newSelector(spec)
	for _, i := range idxs {
		sel.consider(c.estimateFast(i, goal, spec, p))
	}
	return sel.best, sel.fb, sel.bestSet
}

// scanReference is scan with the naive per-candidate estimate() — the
// pre-optimization scorer retained as the differential-testing oracle and
// selectable at runtime via Options.ReferenceScorer.
func (c *Controller) scanReference(idxs []int32, goal float64, spec Spec) (best, fb Estimate, ok bool) {
	sel := c.newSelector(spec)
	for _, i := range idxs {
		sel.consider(c.estimate(c.candidates[i], goal, spec))
	}
	return sel.best, sel.fb, sel.bestSet
}

// decideCacheSize bounds the per-epoch memoization: one slot per distinct
// spec seen since the last Observe. Steady-state streams use one; a shard
// multiplexing a few streams with differing specs uses a few. Slots are
// recycled round-robin, so pathological spec churn degrades to the plain
// scan, never to unbounded growth.
const decideCacheSize = 4

// decideCacheEntry memoizes one (spec, epoch) → (Decision, Estimate).
type decideCacheEntry struct {
	epoch uint64
	spec  Spec
	d     sim.Decision
	est   Estimate
}

// cacheGet returns the memoized decision for spec at the current filter
// epoch, if any. Entries from earlier epochs are dead: Observe moved the
// filters, so the scan could rank candidates differently.
func (c *Controller) cacheGet(spec Spec) (sim.Decision, Estimate, bool) {
	for i := range c.cache {
		if c.cache[i].epoch == c.epoch && c.cache[i].spec == spec {
			return c.cache[i].d, c.cache[i].est, true
		}
	}
	return sim.Decision{}, Estimate{}, false
}

// cachePut memoizes a freshly scanned decision at the current epoch.
func (c *Controller) cachePut(spec Spec, d sim.Decision, est Estimate) {
	c.cache[c.cacheNext] = decideCacheEntry{epoch: c.epoch, spec: spec, d: d, est: est}
	c.cacheNext = (c.cacheNext + 1) % decideCacheSize
}
