package core

import (
	"bytes"
	"testing"

	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/platform"
	"github.com/alert-project/alert/internal/sim"
)

// FuzzSnapshotRoundTrip: UnmarshalBinary over arbitrary bytes must either
// reject with an error or decode to a snapshot whose re-encoding is
// byte-identical to the input (the codec is a fixed point), and must never
// panic. Mirrors FuzzTraceRoundTrip for the scenario trace format.
func FuzzSnapshotRoundTrip(f *testing.F) {
	// Seeds: real snapshots at several filter maturities, plus near-misses
	// (truncated, extended, version-mangled, all-zeros, junk).
	prof, err := dnn.Profile(platform.CPU1(), dnn.ImageCandidates())
	if err != nil {
		f.Fatal(err)
	}
	sess := NewEngine(prof, DefaultOptions()).NewSession()
	seed := func() {
		b, err := sess.Snapshot().MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	seed()
	for i := 0; i < 40; i++ {
		sess.Observe(sim.Outcome{ObservedXi: 0.9 + 0.03*float64(i), IdlePower: 5, CapApplied: prof.Caps[i%prof.NumCaps()]})
		sess.Decide(Spec{Objective: MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9})
	}
	seed()
	good, err := sess.Snapshot().MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good[:SnapshotBinaryLen-1])
	f.Add(append(append([]byte{}, good...), 0xAB))
	mangled := append([]byte{}, good...)
	mangled[0], mangled[1] = 0x02, 0x00
	f.Add(mangled)
	f.Add(make([]byte, SnapshotBinaryLen))
	f.Add([]byte("not a snapshot"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var snap SessionSnapshot
		if err := snap.UnmarshalBinary(data); err != nil {
			return // rejected input; nothing to round-trip
		}
		out, err := snap.MarshalBinary()
		if err != nil {
			t.Fatalf("MarshalBinary failed on a decoded snapshot: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("accepted bytes are not a fixed point:\n in %x\nout %x", data, out)
		}
	})
}
