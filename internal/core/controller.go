// Package core implements the ALERT runtime controller — the paper's
// primary contribution (§3). After every input it folds the measured
// slowdown into an adaptive Kalman filter over the global slowdown factor
// ξ (Eq. 5), then scores every DNN × power-cap × anytime-stop candidate by
// its probability of meeting the deadline (Eq. 6), its expected quality
// (Eq. 7 for traditional models, Eq. 13 for anytime ladders), and its
// predicted energy (Eq. 9, or the Prth-quantile variant Eq. 12), and picks
// the candidate that optimizes the user's objective subject to the
// remaining constraints (Eq. 1/2, or 10/11 when a probability threshold is
// set).
//
// The controller is split into two layers:
//
//   - Engine — the immutable, shareable half: the enumerated candidate
//     space, its SoA fast-path view, the resolved options and overhead
//     model. Built once per (ProfileTable, Options), safe for concurrent
//     use, shared by every stream on a platform.
//   - Session — the lightweight mutable per-stream half: the ξ and
//     idle-power Kalman filters, the filter epoch, and the decision cache.
//     A few hundred bytes per stream, one goroutine at a time.
//
// Controller is the paper's one-stream deployment (§3.6) preserved as a
// thin facade: a private Engine serving exactly one Session. Multi-stream
// layers (internal/serve, internal/multi) share one Engine and hold one
// Session per stream or job.
package core

import (
	"fmt"

	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/kalman"
)

// Objective selects which dimension is optimized while the other two are
// constrained (§3.1). Minimizing latency is omitted, as in the paper.
type Objective int

const (
	// MaximizeAccuracy solves Eq. 1 (Eq. 10 with a threshold): best quality
	// under an energy budget and a deadline.
	MaximizeAccuracy Objective = iota
	// MinimizeEnergy solves Eq. 2 (Eq. 11): least energy under an accuracy
	// goal and a deadline.
	MinimizeEnergy
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	switch o {
	case MaximizeAccuracy:
		return "MaximizeAccuracy"
	case MinimizeEnergy:
		return "MinimizeEnergy"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// Spec is the user requirement for one input: the (possibly goal-adjusted)
// deadline plus the two remaining constraint dimensions.
type Spec struct {
	Objective Objective
	// Deadline is T_goal in seconds.
	Deadline float64
	// EnergyBudget is E_goal in joules per input window (MaximizeAccuracy).
	EnergyBudget float64
	// AccuracyGoal is Q_goal in [0,1] (MinimizeEnergy).
	AccuracyGoal float64
	// Prth, if positive, is the user's probabilistic threshold: candidates
	// whose deadline probability falls below it are rejected (Eq. 10/11)
	// and energy is estimated at the Prth-quantile latency (Eq. 12).
	Prth float64
}

// Options tune the controller. The zero value is completed by
// DefaultOptions.
type Options struct {
	// Xi parameterizes the global-slowdown Kalman filter (Eq. 5).
	Xi kalman.XiParams
	// Idle parameterizes the idle-power filter (Eq. 8).
	Idle kalman.IdleParams
	// UseVariance enables the probabilistic design (§3.3 Idea 2). Setting
	// it false yields ALERT*, the mean-only ablation of Figure 10.
	UseVariance bool
	// StopQuantile is the ξ quantile used to plan anytime early stops: the
	// stop is placed where the chosen stage completes with this
	// probability. Defaults to 0.9; a positive Spec.Prth overrides it.
	StopQuantile float64
	// Confidence is the default chance-constraint level for the deadline
	// and accuracy-goal constraints: a traditional candidate must meet the
	// deadline — and, in the minimize-energy task, reach the accuracy
	// goal — with at least this probability. (Anytime candidates are
	// deadline-safe by construction: the runtime cuts them at the goal.)
	// Defaults to 0.98; a positive Spec.Prth overrides it. The ALERT*
	// ablation, having no variance estimate, degenerates to mean-latency
	// feasibility here.
	Confidence float64
	// EnergyConfidence is the latency quantile used in the energy
	// prediction (the Eq. 12 machinery) when the user sets no explicit
	// Prth. Estimating energy at the mean latency admits configurations
	// that exceed the budget on every above-average input — roughly half
	// of them — so the default is a 0.9-quantile estimate; Spec.Prth
	// overrides it.
	EnergyConfidence float64
	// OverheadFrac models the controller's own worst-case cost as a
	// fraction of the profiled mean input latency; it is charged to the
	// decision and pre-subtracted from the goal (§3.2 step 2, §4 measures
	// 0.6–1.7 %).
	OverheadFrac float64
	// ReferenceScorer makes Decide/DecideAtCap score candidates with the
	// naive per-candidate estimator (estimate) and no decision cache — the
	// pre-optimization hot path retained as the differential-testing
	// oracle. Decisions and estimates are identical either way; that
	// identity is exactly what the differential tests pin. Only useful for
	// tests, benchmarks, and debugging.
	ReferenceScorer bool
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options {
	return Options{
		Xi:               kalman.DefaultXiParams(),
		Idle:             kalman.DefaultIdleParams(),
		UseVariance:      true,
		StopQuantile:     0.9,
		Confidence:       0.98,
		EnergyConfidence: 0.9,
		OverheadFrac:     0.012,
	}
}

// Candidate identifies one point of the joint configuration space: a model,
// a power cap, and — for anytime models — the stage after which the runtime
// plans to stop. RunToDeadline marks the candidate that lets the ladder run
// until the goal itself (maximal quality, maximal energy); quantile-stopped
// candidates trade tail quality for energy (§3.5).
type Candidate struct {
	Model, Cap, StopStage int
	RunToDeadline         bool
}

// Estimate is the controller's prediction for one candidate, exposed for
// tests, traces (Fig. 9), and the ablation study.
type Estimate struct {
	Candidate
	// LatMean is the predicted mean latency µ·t_prof (of the executed
	// portion, for early-stopped anytime candidates).
	LatMean float64
	// PrDeadline is Eq. 6: the probability the candidate's final output
	// lands inside the deadline.
	PrDeadline float64
	// Quality is the expected quality q̂ (Eq. 7/13).
	Quality float64
	// PrQuality is the probability that the *realized* per-input quality
	// reaches the spec's accuracy goal — the chance-constraint form of
	// Eq. 2's q_{i,j} ≥ Q_goal. Expected quality alone is a trap here:
	// when the goal falls between two anytime stages, a candidate can
	// satisfy the goal in expectation while landing below it on most
	// inputs. 1.0 when the spec has no accuracy goal.
	PrQuality float64
	// Energy is the predicted energy ê over the input window (Eq. 9/12).
	Energy float64
	// PlannedStop is the wall-clock budget handed to the executor for
	// anytime candidates (0 for traditional).
	PlannedStop float64
}

// Controller is the ALERT runtime for one task on one platform: a private
// Engine serving exactly one Session, the paper's one-stream-per-controller
// deployment (§3.6) kept as a thin facade over the Engine/Session split.
// Layers serving many streams should build one Engine and one Session per
// stream instead (see Engine); the facade exists so single-stream callers
// (alert.Scheduler, baselines, examples) need not see the split at all.
type Controller struct {
	*Session
}

// New builds a controller — a fresh single-session engine — over a profiled
// candidate set.
func New(prof *dnn.ProfileTable, opts Options) *Controller {
	return &Controller{Session: NewEngine(prof, opts).NewSession()}
}
