// Package core implements the ALERT runtime controller — the paper's
// primary contribution (§3). After every input it folds the measured
// slowdown into an adaptive Kalman filter over the global slowdown factor
// ξ (Eq. 5), then scores every DNN × power-cap × anytime-stop candidate by
// its probability of meeting the deadline (Eq. 6), its expected quality
// (Eq. 7 for traditional models, Eq. 13 for anytime ladders), and its
// predicted energy (Eq. 9, or the Prth-quantile variant Eq. 12), and picks
// the candidate that optimizes the user's objective subject to the
// remaining constraints (Eq. 1/2, or 10/11 when a probability threshold is
// set).
package core

import (
	"fmt"
	"math"

	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/kalman"
	"github.com/alert-project/alert/internal/mathx"
	"github.com/alert-project/alert/internal/sim"
)

// Objective selects which dimension is optimized while the other two are
// constrained (§3.1). Minimizing latency is omitted, as in the paper.
type Objective int

const (
	// MaximizeAccuracy solves Eq. 1 (Eq. 10 with a threshold): best quality
	// under an energy budget and a deadline.
	MaximizeAccuracy Objective = iota
	// MinimizeEnergy solves Eq. 2 (Eq. 11): least energy under an accuracy
	// goal and a deadline.
	MinimizeEnergy
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	switch o {
	case MaximizeAccuracy:
		return "MaximizeAccuracy"
	case MinimizeEnergy:
		return "MinimizeEnergy"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// Spec is the user requirement for one input: the (possibly goal-adjusted)
// deadline plus the two remaining constraint dimensions.
type Spec struct {
	Objective Objective
	// Deadline is T_goal in seconds.
	Deadline float64
	// EnergyBudget is E_goal in joules per input window (MaximizeAccuracy).
	EnergyBudget float64
	// AccuracyGoal is Q_goal in [0,1] (MinimizeEnergy).
	AccuracyGoal float64
	// Prth, if positive, is the user's probabilistic threshold: candidates
	// whose deadline probability falls below it are rejected (Eq. 10/11)
	// and energy is estimated at the Prth-quantile latency (Eq. 12).
	Prth float64
}

// Options tune the controller. The zero value is completed by
// DefaultOptions.
type Options struct {
	// Xi parameterizes the global-slowdown Kalman filter (Eq. 5).
	Xi kalman.XiParams
	// Idle parameterizes the idle-power filter (Eq. 8).
	Idle kalman.IdleParams
	// UseVariance enables the probabilistic design (§3.3 Idea 2). Setting
	// it false yields ALERT*, the mean-only ablation of Figure 10.
	UseVariance bool
	// StopQuantile is the ξ quantile used to plan anytime early stops: the
	// stop is placed where the chosen stage completes with this
	// probability. Defaults to 0.9; a positive Spec.Prth overrides it.
	StopQuantile float64
	// Confidence is the default chance-constraint level for the deadline
	// and accuracy-goal constraints: a traditional candidate must meet the
	// deadline — and, in the minimize-energy task, reach the accuracy
	// goal — with at least this probability. (Anytime candidates are
	// deadline-safe by construction: the runtime cuts them at the goal.)
	// Defaults to 0.98; a positive Spec.Prth overrides it. The ALERT*
	// ablation, having no variance estimate, degenerates to mean-latency
	// feasibility here.
	Confidence float64
	// EnergyConfidence is the latency quantile used in the energy
	// prediction (the Eq. 12 machinery) when the user sets no explicit
	// Prth. Estimating energy at the mean latency admits configurations
	// that exceed the budget on every above-average input — roughly half
	// of them — so the default is a 0.9-quantile estimate; Spec.Prth
	// overrides it.
	EnergyConfidence float64
	// OverheadFrac models the controller's own worst-case cost as a
	// fraction of the profiled mean input latency; it is charged to the
	// decision and pre-subtracted from the goal (§3.2 step 2, §4 measures
	// 0.6–1.7 %).
	OverheadFrac float64
	// ReferenceScorer makes Decide/DecideAtCap score candidates with the
	// naive per-candidate estimator (estimate) and no decision cache — the
	// pre-optimization hot path retained as the differential-testing
	// oracle. Decisions and estimates are identical either way; that
	// identity is exactly what the differential tests pin. Only useful for
	// tests, benchmarks, and debugging.
	ReferenceScorer bool
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options {
	return Options{
		Xi:               kalman.DefaultXiParams(),
		Idle:             kalman.DefaultIdleParams(),
		UseVariance:      true,
		StopQuantile:     0.9,
		Confidence:       0.98,
		EnergyConfidence: 0.9,
		OverheadFrac:     0.012,
	}
}

// Candidate identifies one point of the joint configuration space: a model,
// a power cap, and — for anytime models — the stage after which the runtime
// plans to stop. RunToDeadline marks the candidate that lets the ladder run
// until the goal itself (maximal quality, maximal energy); quantile-stopped
// candidates trade tail quality for energy (§3.5).
type Candidate struct {
	Model, Cap, StopStage int
	RunToDeadline         bool
}

// Estimate is the controller's prediction for one candidate, exposed for
// tests, traces (Fig. 9), and the ablation study.
type Estimate struct {
	Candidate
	// LatMean is the predicted mean latency µ·t_prof (of the executed
	// portion, for early-stopped anytime candidates).
	LatMean float64
	// PrDeadline is Eq. 6: the probability the candidate's final output
	// lands inside the deadline.
	PrDeadline float64
	// Quality is the expected quality q̂ (Eq. 7/13).
	Quality float64
	// PrQuality is the probability that the *realized* per-input quality
	// reaches the spec's accuracy goal — the chance-constraint form of
	// Eq. 2's q_{i,j} ≥ Q_goal. Expected quality alone is a trap here:
	// when the goal falls between two anytime stages, a candidate can
	// satisfy the goal in expectation while landing below it on most
	// inputs. 1.0 when the spec has no accuracy goal.
	PrQuality float64
	// Energy is the predicted energy ê over the input window (Eq. 9/12).
	Energy float64
	// PlannedStop is the wall-clock budget handed to the executor for
	// anytime candidates (0 for traditional).
	PlannedStop float64
}

// Controller is the ALERT runtime for one task on one platform.
type Controller struct {
	prof *dnn.ProfileTable
	opts Options

	xi   *kalman.XiFilter
	idle *kalman.IdlePowerFilter

	// overhead is the precomputed per-decision cost in seconds.
	overhead float64

	// meanProfLat caches the candidate-set mean profiled latency at the
	// top cap, the yardstick for the overhead model.
	meanProfLat float64

	// candidates is the full DNN × cap × stop-stage space, enumerated once
	// at construction. The space depends only on the profile table, so
	// re-deriving it on every Decide (as estimateAll once did) wasted the
	// hot path's time on allocation; Decide now walks this slice.
	candidates []Candidate

	// space is the structure-of-arrays view of candidates with the
	// per-candidate profile invariants precomputed (see fastpath.go).
	space candSpace

	// scratch holds the anytime ladder's per-stage completion
	// probabilities during one estimateFast call; sized to the longest
	// stage ladder so the hot path never allocates. The ladder* fields
	// memoize which (ladder, cut, µ, σ) the scratch prefix of length
	// ladderN currently holds, letting consecutive stop-stage candidates
	// reuse it (see estimateFast).
	scratch     []float64
	ladderNom   *float64
	ladderCut   float64
	ladderMu    float64
	ladderSigma float64
	ladderN     int

	// epoch counts Observe calls (starting at 1). The decision cache keys
	// on it: a cached (spec, epoch) decision is valid exactly until the
	// next Observe moves the filters.
	epoch     uint64
	cache     [decideCacheSize]decideCacheEntry
	cacheNext int

	decisions int
}

// New builds a controller over a profiled candidate set.
func New(prof *dnn.ProfileTable, opts Options) *Controller {
	if opts.StopQuantile <= 0 || opts.StopQuantile >= 1 {
		opts.StopQuantile = 0.9
	}
	if opts.Confidence <= 0 || opts.Confidence >= 1 {
		opts.Confidence = 0.98
	}
	if opts.EnergyConfidence <= 0 || opts.EnergyConfidence >= 1 {
		opts.EnergyConfidence = 0.9
	}
	if opts.Xi == (kalman.XiParams{}) {
		opts.Xi = kalman.DefaultXiParams()
	}
	if opts.Idle == (kalman.IdleParams{}) {
		opts.Idle = kalman.DefaultIdleParams()
	}
	c := &Controller{
		prof: prof,
		opts: opts,
		xi:   kalman.NewXiFilter(opts.Xi),
		idle: kalman.NewIdlePowerFilter(opts.Idle),
	}
	top := prof.NumCaps() - 1
	var sum float64
	for i := 0; i < prof.NumModels(); i++ {
		sum += prof.At(i, top)
	}
	c.meanProfLat = sum / float64(prof.NumModels())
	c.overhead = opts.OverheadFrac * c.meanProfLat
	c.candidates = enumerateCandidates(prof)
	c.space = newCandSpace(prof, c.candidates)
	c.scratch = make([]float64, c.space.maxStages)
	// Epoch 0 is reserved so zero-valued cache entries can never match.
	c.epoch = 1
	return c
}

// enumerateCandidates materializes the joint space: every model × cap,
// expanded by stop stage for anytime models.
func enumerateCandidates(prof *dnn.ProfileTable) []Candidate {
	n := 0
	for _, m := range prof.Models {
		if m.IsAnytime() {
			n += len(m.Stages) + 1
		} else {
			n++
		}
	}
	out := make([]Candidate, 0, n*prof.NumCaps())
	for i := 0; i < prof.NumModels(); i++ {
		m := prof.Models[i]
		for j := 0; j < prof.NumCaps(); j++ {
			if !m.IsAnytime() {
				out = append(out, Candidate{Model: i, Cap: j, StopStage: -1})
				continue
			}
			for k := range m.Stages {
				out = append(out, Candidate{Model: i, Cap: j, StopStage: k})
			}
			out = append(out, Candidate{Model: i, Cap: j, StopStage: len(m.Stages) - 1, RunToDeadline: true})
		}
	}
	return out
}

// Candidates returns the precomputed joint configuration space in
// enumeration order (read-only; shared by every Decide).
func (c *Controller) Candidates() []Candidate { return c.candidates }

// Overhead returns the per-decision cost the controller charges itself.
func (c *Controller) Overhead() float64 { return c.overhead }

// XiMean returns the current posterior mean of ξ.
func (c *Controller) XiMean() float64 { return c.xi.Mean() }

// XiStd returns the current posterior standard deviation of ξ.
func (c *Controller) XiStd() float64 { return c.xi.Std() }

// IdleRatio returns the current idle-power ratio estimate φ.
func (c *Controller) IdleRatio() float64 { return c.idle.Ratio() }

// Decisions returns how many Decide and DecideAtCap calls have been served
// (including cache hits).
func (c *Controller) Decisions() int { return c.decisions }

// FilterEpoch returns the decision cache's epoch: it advances on every
// Observe, invalidating all memoized decisions.
func (c *Controller) FilterEpoch() uint64 { return c.epoch }

// Observe feeds back the measurement of the input just executed (§3.2
// step 1). It advances the filter epoch, invalidating every memoized
// decision — the filters may move, so every spec must be re-scored.
func (c *Controller) Observe(out sim.Outcome) {
	c.epoch++
	c.xi.Observe(out.ObservedXi)
	if out.CapApplied > 0 {
		c.idle.Observe(out.IdlePower / out.CapApplied)
	}
}

// adjustedGoal is the shared §3.2-step-2 deadline adjustment: the
// controller pre-subtracts its own worst-case decision cost, falling back
// to half the deadline when the overhead would consume it entirely.
func (c *Controller) adjustedGoal(deadline float64) float64 {
	goal := deadline - c.overhead
	if goal <= 0 {
		goal = deadline * 0.5
	}
	return goal
}

// sigmaForPrediction returns the ξ standard deviation used in predictions:
// the filter's predictive deviation for the next observation (posterior
// variance of the mean plus measurement noise), or zero for the ALERT*
// ablation. The posterior alone would under-margin every decision.
func (c *Controller) sigmaForPrediction() float64 {
	if !c.opts.UseVariance {
		return 0
	}
	return c.xi.PredictiveStd()
}

// estimate scores a single candidate under the spec. goal is the adjusted
// deadline (overhead already subtracted by the caller).
//
// This is the naive reference scorer, kept verbatim as the oracle the
// optimized hot path (fastpath.go) is differentially tested against:
// estimateFast must reproduce these Estimates bit-for-bit. EstimateAll and
// Options.ReferenceScorer score with it directly.
func (c *Controller) estimate(cand Candidate, goal float64, spec Spec) Estimate {
	m := c.prof.Models[cand.Model]
	power := c.prof.PowerAt(cand.Model, cand.Cap)
	tProf := c.prof.At(cand.Model, cand.Cap)
	mu, sigma := c.xi.Mean(), c.sigmaForPrediction()

	est := Estimate{Candidate: cand}

	// Probability that a work chunk of nominal duration d completes within
	// budget b: Pr[ξ·d ≤ b] (Eq. 6).
	prWithin := func(d, b float64) float64 {
		if d <= 0 {
			return 1
		}
		return mathx.NormCDF(b/d, mu, sigma)
	}

	if !m.IsAnytime() {
		est.LatMean = mu * tProf
		est.PrDeadline = prWithin(tProf, goal)
		// Eq. 7: expectation over the deadline step function.
		est.Quality = est.PrDeadline*m.Accuracy + (1-est.PrDeadline)*m.QFail
		switch {
		case spec.AccuracyGoal <= 0 || m.QFail >= spec.AccuracyGoal:
			est.PrQuality = 1
		case m.Accuracy >= spec.AccuracyGoal:
			est.PrQuality = est.PrDeadline
		default:
			est.PrQuality = 0
		}
		// Latency used for the energy estimate: the Eq. 12 quantile form,
		// at Prth when the user set one and at the default energy
		// confidence otherwise.
		lat := mathx.NormQuantile(c.energyQuantile(spec), mu, sigma) * tProf
		if lat < est.LatMean {
			lat = est.LatMean
		}
		est.Energy = c.energyAt(power, lat, goal)
		return est
	}

	// Anytime candidate stopped after stage k: execution is cut at
	// PlannedStop (never beyond the goal). Expected quality follows the
	// Eq. 13 ladder under the cut.
	k := cand.StopStage
	stageNominal := func(si int) float64 { return m.Stages[si].LatencyFrac * tProf }

	var stop float64
	if cand.RunToDeadline {
		stop = goal
	} else {
		q := c.opts.StopQuantile
		if spec.Prth > 0 {
			q = spec.Prth
		}
		stop = mathx.NormQuantile(q, mu, sigma) * stageNominal(k)
		if stop > goal {
			stop = goal
		}
		if stop <= 0 {
			stop = goal
		}
	}
	est.PlannedStop = stop

	cut := math.Min(stop, goal)
	// Quality ladder: Pr[stage si completes before cut], non-increasing in
	// si; stages beyond the planned stop never complete.
	prev := 1.0
	quality := 0.0
	prFirst := 0.0
	for si := 0; si <= k; si++ {
		pr := prWithin(stageNominal(si), cut)
		if si == 0 {
			prFirst = pr
		}
		if pr > prev {
			pr = prev
		}
		nextPr := 0.0
		if si < k {
			nextPr = math.Min(prWithin(stageNominal(si+1), cut), pr)
		}
		quality += m.Stages[si].Accuracy * (pr - nextPr)
		prev = pr
	}
	quality += m.QFail * (1 - prFirst)
	est.Quality = quality
	est.PrDeadline = prWithin(stageNominal(k), cut)

	// Chance constraint on the realized quality: the first stage at or
	// above the goal must complete inside the cut.
	switch {
	case spec.AccuracyGoal <= 0 || m.QFail >= spec.AccuracyGoal:
		est.PrQuality = 1
	default:
		est.PrQuality = 0
		for si := 0; si <= k; si++ {
			if m.Stages[si].Accuracy >= spec.AccuracyGoal {
				est.PrQuality = prWithin(stageNominal(si), cut)
				break
			}
		}
	}

	// Executed time: the ladder runs until stage k finishes or the cut
	// hits, whichever is first; its mean is E[min(ξ·d, cut)], approximated
	// by min at the mean, the same first-order treatment Eq. 9 applies.
	meanExec := math.Min(mu*stageNominal(k), cut)
	est.LatMean = meanExec
	// Energy at the Eq. 12 quantile (the cut bounds it from above).
	qExec := math.Min(mathx.NormQuantile(c.energyQuantile(spec), mu, sigma)*stageNominal(k), cut)
	if qExec < meanExec {
		qExec = meanExec
	}
	est.Energy = c.energyAt(power, qExec, goal)
	return est
}

// energyQuantile resolves the latency quantile for energy estimates.
func (c *Controller) energyQuantile(spec Spec) float64 {
	if spec.Prth > 0 {
		return spec.Prth
	}
	return c.opts.EnergyConfidence
}

// energyAt is Eq. 9: inference at the configuration's profiled power p_{i,j}
// for lat seconds, then idle at φ·p_{i,j} for the remainder of the goal
// window.
func (c *Controller) energyAt(power, lat, goal float64) float64 {
	idleTime := goal - lat
	if idleTime < 0 {
		idleTime = 0
	}
	return power*lat + c.idle.Ratio()*power*idleTime
}

// Decide selects the configuration for the next input (§3.2 steps 2–4).
// The returned Estimate describes the chosen candidate's predictions.
//
// The scan walks the precomputed SoA candidate space with the per-Decide
// quantile math hoisted (fastpath.go); the feasibility rules are the
// chance constraints of Eq. 1/2 (10/11 with a threshold), and the
// infeasible fallback follows §4's latency > accuracy > power hierarchy:
// maximizing expected quality already privileges deadline-meeting (missing
// collapses quality to QFail), so the fallback is the quality-maximal
// candidate with energy as the tiebreaker. Results are memoized per
// (spec, filter epoch): a steady-state stream whose spec did not change
// since the last Observe skips the scan entirely.
func (c *Controller) Decide(spec Spec) (sim.Decision, Estimate) {
	c.decisions++
	goal := c.adjustedGoal(spec.Deadline)
	if c.opts.ReferenceScorer {
		best, fb, ok := c.scanReference(c.space.all, goal, spec)
		if !ok {
			best = fb
		}
		return c.decisionFor(best), best
	}
	if d, est, ok := c.cacheGet(spec); ok {
		return d, est
	}
	best, fb, ok := c.scan(c.space.all, goal, spec, c.scoreParamsFor(spec))
	if !ok {
		best = fb
	}
	d := c.decisionFor(best)
	c.cachePut(spec, d, best)
	return d, best
}

// decisionFor projects the winning estimate onto the executor's decision.
func (c *Controller) decisionFor(best Estimate) sim.Decision {
	return sim.Decision{
		Model:       best.Model,
		Cap:         best.Cap,
		PlannedStop: best.PlannedStop,
		Overhead:    c.overhead,
	}
}

// DecideAtCap is Decide restricted to a single power-cap rung. It is the
// primitive the multi-job coordinator (internal/multi) builds on: when
// several inference jobs share one power envelope, each job's controller
// answers "what is the best you can do with exactly this much power", and
// the coordinator searches over the split. ok is false when no candidate at
// this cap satisfies the constraints (the returned fallback still serves).
// It counts toward Decisions() like any served decision, and scans only
// its rung's precomputed index list rather than filtering the whole space.
func (c *Controller) DecideAtCap(spec Spec, cap int) (d sim.Decision, est Estimate, ok bool) {
	c.decisions++
	goal := c.adjustedGoal(spec.Deadline)
	var idxs []int32
	if cap >= 0 && cap < len(c.space.byCap) {
		idxs = c.space.byCap[cap]
	}
	var best, fb Estimate
	var bestSet bool
	if c.opts.ReferenceScorer {
		best, fb, bestSet = c.scanReference(idxs, goal, spec)
	} else {
		best, fb, bestSet = c.scan(idxs, goal, spec, c.scoreParamsFor(spec))
	}
	if !bestSet {
		best = fb
	}
	return c.decisionFor(best), best, bestSet
}

// EstimateAll returns estimates for the full candidate space under the
// spec, scored with the naive reference estimator; used by tests, the
// Figure 9 trace tooling, and as the oracle the differential tests compare
// the optimized scan against.
func (c *Controller) EstimateAll(spec Spec) []Estimate {
	goal := c.adjustedGoal(spec.Deadline)
	out := make([]Estimate, len(c.candidates))
	for i, cand := range c.candidates {
		out[i] = c.estimate(cand, goal, spec)
	}
	return out
}
