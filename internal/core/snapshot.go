package core

// Session snapshot/restore: the serialization layer that turns a stream's
// session into an explicit, versioned, bit-exact value — the primitive the
// cluster layer (internal/serve export/import, client/cluster migration)
// and crash recovery are built on.
//
// The contract is restore-then-replay equals never-having-snapshotted, byte
// for byte: a session restored from a snapshot produces exactly the
// decision/estimate sequence the original would have produced from that
// point, under any future Decide/Observe traffic. Two design decisions make
// that cheap to guarantee:
//
//   - The snapshot carries only genuine state: the two Kalman filter states
//     (kalman.XiState/IdleState), the filter epoch, and the served-decision
//     count. The decision cache is deliberately dropped — a cache hit is a
//     pure re-projection of an Estimate the scan would recompute
//     identically (the differential tests pin cached == uncached == naive
//     bit-for-bit), so a restored session's first post-restore Decide
//     rescans and lands on the same bits. The Scratch workspace is likewise
//     pure workspace. Neither can change a single decision.
//   - The binary encoding is canonical and fixed-width: little-endian
//     float64 bit patterns (math.Float64bits), no JSON float formatting
//     anywhere near the hot path, so encode→decode→encode is the identity
//     on bytes and a snapshot's bytes are a stable artifact two processes
//     (or two software versions honoring the version field) agree on.
//
// The engine itself is NOT in the snapshot: both endpoints of a migration
// build their engines from the same (ProfileTable, Options) configuration,
// which the serving layer verifies out of band (platform/model preflight in
// cmd/alertload, stats probing in client/cluster).

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/alert-project/alert/internal/kalman"
)

// SnapshotVersion is the current SessionSnapshot wire version. Decoders
// reject snapshots from a different version instead of guessing: a session
// resumed from misread state would silently diverge, which is strictly
// worse than failing the migration.
const SnapshotVersion = 1

// SnapshotBinaryLen is the exact encoded length of a version-1 snapshot.
const SnapshotBinaryLen = 2 + 8 + 8 + 6*8 + 3*8 // version, epoch, decisions, xi, idle

// SessionSnapshot is the flat, versioned, serializable value of a Session's
// mutable state. It is engine-independent by construction: everything else
// a decision needs lives on the immutable shared Engine.
type SessionSnapshot struct {
	// Version is the snapshot format version (SnapshotVersion when produced
	// by Session.Snapshot).
	Version uint16
	// Epoch is the filter epoch: the Observe count plus one (epoch 0 is
	// reserved so zero-valued decision-cache entries can never match).
	Epoch uint64
	// Decisions is how many Decide/DecideAtCap calls the session has served.
	Decisions int64
	// Xi and Idle are the two Kalman filter states.
	Xi   kalman.XiState
	Idle kalman.IdleState
}

// Snapshot captures the session's mutable state. The decision cache and
// scan workspace are excluded (see the package comment above: both are pure
// recomputation, so dropping them is bit-exact). The session remains
// usable; Snapshot does not consume it.
func (s *Session) Snapshot() SessionSnapshot {
	return SessionSnapshot{
		Version:   SnapshotVersion,
		Epoch:     s.epoch,
		Decisions: int64(s.decisions),
		Xi:        s.xi.State(),
		Idle:      s.idle.State(),
	}
}

// RestoreSession rebuilds a session from a snapshot with a private scan
// workspace. The restored session continues the original's decision
// sequence bit-for-bit under identical traffic. The snapshot must come
// from a session of an identically configured engine (same profile table
// and options) — the filter parameters are read from this engine's options,
// not the snapshot.
func (e *Engine) RestoreSession(snap SessionSnapshot) (*Session, error) {
	return e.RestoreSessionWith(e.NewScratch(), snap)
}

// RestoreSessionWith is RestoreSession sharing an existing scan workspace,
// the restore-side companion of NewSessionWith (the serving layer restores
// imported sessions onto the owning shard's shared Scratch).
func (e *Engine) RestoreSessionWith(sc *Scratch, snap SessionSnapshot) (*Session, error) {
	if err := snap.Validate(); err != nil {
		return nil, err
	}
	s := e.NewSessionWith(sc)
	s.xi = kalman.MakeXiFilterFromState(e.opts.Xi, snap.Xi)
	s.idle = kalman.MakeIdlePowerFilterFromState(e.opts.Idle, snap.Idle)
	s.epoch = snap.Epoch
	s.decisions = int(snap.Decisions)
	return s, nil
}

// Validate rejects snapshots no genuine session could have produced:
// unknown versions, the reserved epoch 0, negative counters, and non-finite
// filter state (Observe guards its inputs, so NaN/Inf here means corruption
// — restoring it would poison every subsequent prediction).
func (snap SessionSnapshot) Validate() error {
	if snap.Version != SnapshotVersion {
		return fmt.Errorf("core: snapshot version %d, this build speaks %d", snap.Version, SnapshotVersion)
	}
	if snap.Epoch == 0 {
		return fmt.Errorf("core: snapshot epoch 0 is reserved (fresh sessions start at 1)")
	}
	if snap.Decisions < 0 || snap.Xi.N < 0 || snap.Idle.N < 0 {
		return fmt.Errorf("core: snapshot carries negative counters")
	}
	for _, v := range [...]float64{
		snap.Xi.K, snap.Xi.Q, snap.Xi.Y, snap.Xi.Mu, snap.Xi.Sigma2,
		snap.Idle.M, snap.Idle.Phi,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: snapshot carries non-finite filter state")
		}
	}
	if snap.Xi.Sigma2 < 0 || snap.Idle.M < 0 {
		return fmt.Errorf("core: snapshot carries negative variance")
	}
	return nil
}

// MarshalBinary encodes the snapshot in the canonical fixed-width layout:
// version (uint16 LE), epoch (uint64 LE), decisions (int64 LE), then the ξ
// state (K, Q, Y, Mu, Sigma2 as float64 bit patterns, N as int64) and the
// idle state (M, Phi, N) in field order. It never fails; the error is the
// encoding.BinaryMarshaler signature.
func (snap SessionSnapshot) MarshalBinary() ([]byte, error) {
	b := make([]byte, 0, SnapshotBinaryLen)
	b = binary.LittleEndian.AppendUint16(b, snap.Version)
	b = binary.LittleEndian.AppendUint64(b, snap.Epoch)
	b = binary.LittleEndian.AppendUint64(b, uint64(snap.Decisions))
	for _, v := range [...]float64{snap.Xi.K, snap.Xi.Q, snap.Xi.Y, snap.Xi.Mu, snap.Xi.Sigma2} {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(snap.Xi.N))
	for _, v := range [...]float64{snap.Idle.M, snap.Idle.Phi} {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(snap.Idle.N))
	return b, nil
}

// UnmarshalBinary decodes the canonical layout. It accepts exactly the
// bytes MarshalBinary produces — wrong length or unknown version is an
// error — and is a strict codec: accepted bytes decode to a snapshot whose
// re-encoding is byte-identical (float64 bit patterns, including any
// non-finite ones, pass through untouched; semantic validation is
// Validate's job at restore time). It never panics on arbitrary input
// (fuzzed by FuzzSnapshotRoundTrip).
func (snap *SessionSnapshot) UnmarshalBinary(data []byte) error {
	if len(data) != SnapshotBinaryLen {
		return fmt.Errorf("core: snapshot is %d bytes, want %d", len(data), SnapshotBinaryLen)
	}
	v := binary.LittleEndian.Uint16(data[0:2])
	if v != SnapshotVersion {
		return fmt.Errorf("core: snapshot version %d, this build speaks %d", v, SnapshotVersion)
	}
	snap.Version = v
	snap.Epoch = binary.LittleEndian.Uint64(data[2:10])
	snap.Decisions = int64(binary.LittleEndian.Uint64(data[10:18]))
	f := func(off int) float64 { return math.Float64frombits(binary.LittleEndian.Uint64(data[off : off+8])) }
	snap.Xi.K = f(18)
	snap.Xi.Q = f(26)
	snap.Xi.Y = f(34)
	snap.Xi.Mu = f(42)
	snap.Xi.Sigma2 = f(50)
	snap.Xi.N = int64(binary.LittleEndian.Uint64(data[58:66]))
	snap.Idle.M = f(66)
	snap.Idle.Phi = f(74)
	snap.Idle.N = int64(binary.LittleEndian.Uint64(data[82:90]))
	return nil
}
