package core

import (
	"math"
	"unsafe"

	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/kalman"
)

// Engine is the immutable, shareable half of the ALERT controller: the
// enumerated candidate space, its structure-of-arrays view with every
// profile-table invariant precomputed (fastpath.go), and the resolved
// options and overhead model. An Engine is built once per
// (ProfileTable, Options) pair and is safe for concurrent use by any number
// of goroutines — nothing in it is ever written after NewEngine returns.
//
// All mutable per-stream state (the ξ and idle-power Kalman filters, the
// filter epoch, the decision cache) lives in Session, so a deployment
// serving N inference streams on one platform pays for the candidate space
// once and per-stream only for a Session — well under a kilobyte — instead
// of N full Controller copies. That is the layer split that lets the
// serving pool (internal/serve) scale its stream table to millions of
// streams.
type Engine struct {
	prof *dnn.ProfileTable
	opts Options

	// overhead is the precomputed per-decision cost in seconds.
	overhead float64

	// meanProfLat caches the candidate-set mean profiled latency at the
	// top cap, the yardstick for the overhead model.
	meanProfLat float64

	// candidates is the full DNN × cap × stop-stage space, enumerated once
	// at construction. The space depends only on the profile table, so
	// every Session on this engine shares the one slice.
	candidates []Candidate

	// space is the structure-of-arrays view of candidates with the
	// per-candidate profile invariants precomputed (see fastpath.go).
	space candSpace
}

// NewEngine builds the shared engine over a profiled candidate set,
// completing zero-valued options with the paper's defaults.
func NewEngine(prof *dnn.ProfileTable, opts Options) *Engine {
	if opts.StopQuantile <= 0 || opts.StopQuantile >= 1 {
		opts.StopQuantile = 0.9
	}
	if opts.Confidence <= 0 || opts.Confidence >= 1 {
		opts.Confidence = 0.98
	}
	if opts.EnergyConfidence <= 0 || opts.EnergyConfidence >= 1 {
		opts.EnergyConfidence = 0.9
	}
	if opts.Xi == (kalman.XiParams{}) {
		opts.Xi = kalman.DefaultXiParams()
	}
	if opts.Idle == (kalman.IdleParams{}) {
		opts.Idle = kalman.DefaultIdleParams()
	}
	e := &Engine{prof: prof, opts: opts}
	top := prof.NumCaps() - 1
	var sum float64
	for i := 0; i < prof.NumModels(); i++ {
		sum += prof.At(i, top)
	}
	e.meanProfLat = sum / float64(prof.NumModels())
	e.overhead = opts.OverheadFrac * e.meanProfLat
	e.candidates = enumerateCandidates(prof)
	e.space = newCandSpace(prof, e.candidates)
	return e
}

// enumerateCandidates materializes the joint space: every model × cap,
// expanded by stop stage for anytime models.
func enumerateCandidates(prof *dnn.ProfileTable) []Candidate {
	n := 0
	for _, m := range prof.Models {
		if m.IsAnytime() {
			n += len(m.Stages) + 1
		} else {
			n++
		}
	}
	out := make([]Candidate, 0, n*prof.NumCaps())
	for i := 0; i < prof.NumModels(); i++ {
		m := prof.Models[i]
		for j := 0; j < prof.NumCaps(); j++ {
			if !m.IsAnytime() {
				out = append(out, Candidate{Model: i, Cap: j, StopStage: -1})
				continue
			}
			for k := range m.Stages {
				out = append(out, Candidate{Model: i, Cap: j, StopStage: k})
			}
			out = append(out, Candidate{Model: i, Cap: j, StopStage: len(m.Stages) - 1, RunToDeadline: true})
		}
	}
	return out
}

// Profile returns the profile table the engine was built over.
func (e *Engine) Profile() *dnn.ProfileTable { return e.prof }

// Options returns the resolved (default-completed) options.
func (e *Engine) Options() Options { return e.opts }

// Candidates returns the precomputed joint configuration space in
// enumeration order (read-only; shared by every Session).
func (e *Engine) Candidates() []Candidate { return e.candidates }

// Overhead returns the per-decision cost the engine charges each decision.
func (e *Engine) Overhead() float64 { return e.overhead }

// NewScratch allocates a scan workspace sized for this engine's candidate
// space. A Scratch may be shared by any number of Sessions that are driven
// from the same goroutine (e.g. all sessions of one serving shard); sharing
// across goroutines races.
func (e *Engine) NewScratch() *Scratch {
	return &Scratch{buf: make([]float64, e.space.maxStages)}
}

// NewSession creates a fresh per-stream session with its own private scan
// workspace. The session starts at the paper's initial filter state
// (ξ ~ N(µ0, σ0²), φ = φ0); it is not safe for concurrent use.
func (e *Engine) NewSession() *Session {
	return e.NewSessionWith(e.NewScratch())
}

// NewSessionWith creates a session sharing an existing scan workspace.
// Sessions sharing one Scratch must all be driven from the same goroutine;
// the serving layer uses this to amortize the workspace across every
// stream of a shard. A workspace sized for a different engine's shorter
// stage ladders is grown (and its memo invalidated) rather than left to
// overflow mid-scan.
func (e *Engine) NewSessionWith(sc *Scratch) *Session {
	if len(sc.buf) < e.space.maxStages {
		sc.buf = make([]float64, e.space.maxStages)
		sc.ladderNom, sc.ladderN = nil, 0
	}
	return &Session{
		eng:  e,
		sc:   sc,
		xi:   kalman.MakeXiFilter(e.opts.Xi),
		idle: kalman.MakeIdlePowerFilter(e.opts.Idle),
		// Epoch 0 is reserved so zero-valued cache entries can never match.
		epoch: 1,
	}
}

// XiPrior returns the (mean, std) of the ξ belief a fresh session starts
// from — the answer for a stream that has no session yet, letting
// monitoring reads stay side-effect-free instead of materializing state.
func (e *Engine) XiPrior() (mu, sigma float64) {
	return e.opts.Xi.Mu0, math.Sqrt(e.opts.Xi.Var0)
}

// SessionBytes is the in-memory footprint of one Session struct, the
// per-stream marginal cost of a deployment sharing one Engine (the shared
// Scratch and stream-table bookkeeping are amortized across a shard). The
// serving layer's session-bytes gauge and the memory-bound tests read it.
func SessionBytes() int { return int(unsafe.Sizeof(Session{})) }
