package core

import (
	"math"
	"testing"

	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/mathx"
	"github.com/alert-project/alert/internal/platform"
	"github.com/alert-project/alert/internal/sim"
)

// The optimized scan (fastpath.go) must be indistinguishable from the naive
// reference scorer: identical Estimates (compared with ==, i.e. bit-for-bit)
// and identical decision sequences under any interleaving of Observe, spec
// churn, and repeated (cached) Decides. These tests are the contract that
// lets every other layer trust the fast path blindly.

// specGen draws a random but plausible spec: both objectives, anytime and
// traditional feasibility regimes, optional energy budgets and Prth.
func specGen(rng *mathx.Rand) Spec {
	s := Spec{Deadline: 0.01 + 0.49*rng.Float64()}
	if rng.Float64() < 0.5 {
		s.Objective = MinimizeEnergy
		s.AccuracyGoal = 0.80 + 0.19*rng.Float64()
	} else {
		s.Objective = MaximizeAccuracy
		if rng.Float64() < 0.7 {
			s.EnergyBudget = 40 * s.Deadline * rng.Float64()
		}
	}
	if rng.Float64() < 0.3 {
		s.Prth = 0.9 + 0.099*rng.Float64()
	}
	return s
}

// diffProfiles returns the candidate sets the differential tests sweep:
// mixed traditional+anytime, and a large all-traditional zoo.
func diffProfiles(t *testing.T) []*dnn.ProfileTable {
	t.Helper()
	mixed, err := dnn.Profile(platform.CPU1(), dnn.ImageCandidates())
	if err != nil {
		t.Fatal(err)
	}
	zoo, err := dnn.Profile(platform.CPU2(), dnn.ImageNetZoo(1))
	if err != nil {
		t.Fatal(err)
	}
	return []*dnn.ProfileTable{mixed, zoo}
}

// TestEstimateFastMatchesReference fuzzes filter states and specs and
// requires estimateFast to reproduce the naive estimate bit-for-bit on
// every candidate.
func TestEstimateFastMatchesReference(t *testing.T) {
	for _, prof := range diffProfiles(t) {
		for _, variance := range []bool{true, false} {
			opts := DefaultOptions()
			opts.UseVariance = variance
			c := New(prof, opts)
			rng := mathx.NewRand(42)
			for trial := 0; trial < 60; trial++ {
				// Random walk the filters between trials so mu/sigma sweep
				// calm and volatile regimes.
				for i := 0; i < 3; i++ {
					c.Observe(sim.Outcome{
						ObservedXi: 0.6 + 1.8*rng.Float64(),
						IdlePower:  10 * rng.Float64(),
						CapApplied: 30,
					})
				}
				spec := specGen(rng)
				goal := c.adjustedGoal(spec.Deadline)
				p := c.scoreParamsFor(spec)
				for i, cand := range c.Candidates() {
					want := c.estimate(cand, goal, spec)
					got := c.estimateFast(int32(i), goal, spec, p)
					if got != want {
						t.Fatalf("prof %s candidate %+v spec %+v:\nfast %+v\nref  %+v",
							prof.Platform.Name, cand, spec, got, want)
					}
				}
			}
		}
	}
}

// refDecide replays one Decide on a ReferenceScorer twin.
type pairedControllers struct {
	fast, ref *Controller
}

func newPair(prof *dnn.ProfileTable, opts Options) pairedControllers {
	refOpts := opts
	refOpts.ReferenceScorer = true
	return pairedControllers{fast: New(prof, opts), ref: New(prof, refOpts)}
}

func (p pairedControllers) observe(out sim.Outcome) {
	p.fast.Observe(out)
	p.ref.Observe(out)
}

// TestDecideMatchesReferenceUnderChurn drives paired controllers through a
// random interleaving of Observe, spec churn, and repeated Decides (the
// repeats hit the cache), requiring identical decisions and estimates at
// every step — the cached results must match uncached reference results
// after every Observe/SetSpec-like transition.
func TestDecideMatchesReferenceUnderChurn(t *testing.T) {
	for _, prof := range diffProfiles(t) {
		pair := newPair(prof, DefaultOptions())
		rng := mathx.NewRand(7)
		spec := specGen(rng)
		for step := 0; step < 400; step++ {
			switch {
			case rng.Float64() < 0.4:
				pair.observe(sim.Outcome{
					ObservedXi: 0.7 + rng.Float64(),
					IdlePower:  8 * rng.Float64(),
					CapApplied: prof.Caps[rng.Intn(prof.NumCaps())],
				})
			case rng.Float64() < 0.3:
				spec = specGen(rng) // mid-stream churn
			}
			dFast, eFast := pair.fast.Decide(spec)
			dRef, eRef := pair.ref.Decide(spec)
			if dFast != dRef || eFast != eRef {
				t.Fatalf("step %d spec %+v: fast (%+v, %+v) != ref (%+v, %+v)",
					step, spec, dFast, eFast, dRef, eRef)
			}
			// Immediate repeat: a guaranteed cache hit on the fast side must
			// still equal a full reference rescan.
			dHit, eHit := pair.fast.Decide(spec)
			if dHit != dRef || eHit != eRef {
				t.Fatalf("step %d: cached decide diverged from reference", step)
			}
		}
	}
}

// TestDecideAtCapMatchesReference checks the rung-restricted scan against
// the reference scorer on every cap, including the ok flag.
func TestDecideAtCapMatchesReference(t *testing.T) {
	for _, prof := range diffProfiles(t) {
		pair := newPair(prof, DefaultOptions())
		rng := mathx.NewRand(99)
		for trial := 0; trial < 40; trial++ {
			pair.observe(sim.Outcome{ObservedXi: 0.8 + 0.8*rng.Float64(), IdlePower: 5, CapApplied: 30})
			spec := specGen(rng)
			for cap := 0; cap < prof.NumCaps(); cap++ {
				dF, eF, okF := pair.fast.DecideAtCap(spec, cap)
				dR, eR, okR := pair.ref.DecideAtCap(spec, cap)
				if dF != dR || eF != eR || okF != okR {
					t.Fatalf("cap %d spec %+v: fast (%+v, %v) != ref (%+v, %v)",
						cap, spec, dF, okF, dR, okR)
				}
			}
		}
	}
}

// TestEstimateAllMatchesFastScan pins EstimateAll (the exported oracle) to
// the fast per-candidate scorer over random states, so external consumers
// of EstimateAll see exactly what Decide scored.
func TestEstimateAllMatchesFastScan(t *testing.T) {
	prof := diffProfiles(t)[0]
	c := New(prof, DefaultOptions())
	rng := mathx.NewRand(5)
	for trial := 0; trial < 30; trial++ {
		c.Observe(sim.Outcome{ObservedXi: 0.9 + 0.5*rng.Float64(), IdlePower: 6, CapApplied: 30})
		spec := specGen(rng)
		goal := c.adjustedGoal(spec.Deadline)
		p := c.scoreParamsFor(spec)
		for i, want := range c.EstimateAll(spec) {
			if got := c.estimateFast(int32(i), goal, spec, p); got != want {
				t.Fatalf("candidate %d: fast %+v != EstimateAll %+v", i, got, want)
			}
		}
	}
}

// TestDecideCacheEpochInvalidation checks the memoization contract
// directly: hits within an epoch, invalidation on Observe, correctness
// across spec churn, and the epoch counter itself.
func TestDecideCacheEpochInvalidation(t *testing.T) {
	prof := diffProfiles(t)[0]
	c := New(prof, DefaultOptions())
	specA := Spec{Objective: MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.92}
	specB := Spec{Objective: MinimizeEnergy, Deadline: 0.3, AccuracyGoal: 0.9}

	if e := c.FilterEpoch(); e != 1 {
		t.Fatalf("fresh epoch = %d, want 1", e)
	}
	dA1, eA1 := c.Decide(specA)
	if _, _, ok := c.cacheGet(specA); !ok {
		t.Fatal("decision not memoized")
	}
	if _, _, ok := c.cacheGet(specB); ok {
		t.Fatal("unseen spec reported cached")
	}
	dA2, eA2 := c.Decide(specA)
	if dA1 != dA2 || eA1 != eA2 {
		t.Fatal("cache hit returned a different decision")
	}

	// Churn to B and back to A within one epoch: both must be served, both
	// memoized.
	c.Decide(specB)
	if _, _, ok := c.cacheGet(specA); !ok {
		t.Fatal("spec A evicted by one churn (cache too small)")
	}

	before := c.FilterEpoch()
	c.Observe(sim.Outcome{ObservedXi: 1.6, IdlePower: 6, CapApplied: 30})
	if c.FilterEpoch() != before+1 {
		t.Fatalf("Observe did not advance the epoch: %d -> %d", before, c.FilterEpoch())
	}
	if _, _, ok := c.cacheGet(specA); ok {
		t.Fatal("stale decision survived Observe")
	}
	// Post-Observe decide must re-scan against the moved filter, not serve
	// the stale plan.
	dA3, _ := c.Decide(specA)
	// Replay the same observation history on a reference twin.
	refOpts := DefaultOptions()
	refOpts.ReferenceScorer = true
	ref := New(prof, refOpts)
	ref.Observe(sim.Outcome{ObservedXi: 1.6, IdlePower: 6, CapApplied: 30})
	dRef, _ := ref.Decide(specA)
	if dA3 != dRef {
		t.Fatalf("post-Observe decide %+v != reference %+v", dA3, dRef)
	}
	if c.Decisions() != 4 {
		t.Fatalf("Decisions() = %d, want 4 (cache hits count)", c.Decisions())
	}
}

// TestDecideAtCapCountsDecisions is the regression test for the multi-job
// coordinator undercount: DecideAtCap must increment the decision counter
// like Decide does.
func TestDecideAtCapCountsDecisions(t *testing.T) {
	c := New(diffProfiles(t)[0], DefaultOptions())
	spec := Spec{Objective: MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9}
	c.Decide(spec)
	c.DecideAtCap(spec, 0)
	c.DecideAtCap(spec, 1)
	if got := c.Decisions(); got != 3 {
		t.Fatalf("Decisions() = %d after Decide + 2×DecideAtCap, want 3", got)
	}
}

// TestDecideAllocFree asserts the steady-state allocation contract: both
// the cached path and a full uncached scan allocate nothing.
func TestDecideAllocFree(t *testing.T) {
	prof := diffProfiles(t)[0]
	c := New(prof, DefaultOptions())
	spec := Spec{Objective: MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.92}
	out := sim.Outcome{ObservedXi: 1.05, IdlePower: 6, CapApplied: 30}
	c.Observe(out)
	c.Decide(spec) // warm

	if n := testing.AllocsPerRun(200, func() { c.Decide(spec) }); n != 0 {
		t.Errorf("cached Decide allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		c.Observe(out) // busts the cache: every Decide below is a full scan
		c.Decide(spec)
	}); n != 0 {
		t.Errorf("uncached Decide allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { c.DecideAtCap(spec, 2) }); n != 0 {
		t.Errorf("DecideAtCap allocates %.1f/op, want 0", n)
	}
}

// TestAdjustedGoalFallback pins the shared goal-adjustment helper,
// including the degenerate deadline ≤ overhead branch that used to be
// copy-pasted across Decide, DecideAtCap, and EstimateAll.
func TestAdjustedGoalFallback(t *testing.T) {
	c := New(diffProfiles(t)[0], DefaultOptions())
	if c.Overhead() <= 0 {
		t.Fatal("overhead model missing")
	}
	big := 1.0
	if got, want := c.adjustedGoal(big), big-c.Overhead(); got != want {
		t.Errorf("adjustedGoal(%g) = %g, want %g", big, got, want)
	}
	tiny := c.Overhead() * 0.5
	if got, want := c.adjustedGoal(tiny), tiny*0.5; got != want {
		t.Errorf("adjustedGoal(%g) = %g, want %g", tiny, got, want)
	}
	if got := c.adjustedGoal(0); got != 0 {
		t.Errorf("adjustedGoal(0) = %g, want 0", got)
	}
	if math.IsNaN(c.adjustedGoal(c.Overhead())) {
		t.Error("adjustedGoal(overhead) is NaN")
	}
}
