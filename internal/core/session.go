package core

import (
	"math"

	"github.com/alert-project/alert/internal/kalman"
	"github.com/alert-project/alert/internal/mathx"
	"github.com/alert-project/alert/internal/sim"
)

// Session is the mutable per-stream half of the ALERT controller: the
// Kalman belief about the stream's environment (ξ and idle power), the
// filter epoch, and the epoch-keyed decision cache. Everything a decision
// needs beyond that — the candidate space, profile invariants, options —
// is read from the shared immutable Engine, so a Session stays a few
// hundred bytes no matter how large the configuration space is.
//
// A Session serves one inference stream and is not safe for concurrent
// use; drive it from one goroutine at a time. Its decision sequence
// depends only on its own Decide/Observe history — never on sibling
// sessions of the same engine — so any interleaving of N sessions
// reproduces each stream's solo sequence bit-for-bit (the differential
// tests at the core, serve, and alertload levels pin exactly that).
type Session struct {
	eng *Engine
	// sc is the scan workspace, possibly shared with other sessions driven
	// by the same goroutine (see Engine.NewSessionWith).
	sc *Scratch

	// xi and idle are embedded by value: one allocation per session, not
	// three.
	xi   kalman.XiFilter
	idle kalman.IdlePowerFilter

	// epoch counts Observe calls (starting at 1). The decision cache keys
	// on it: a cached (spec, epoch) decision is valid exactly until the
	// next Observe moves the filters.
	epoch     uint64
	cache     [decideCacheSize]decideCacheEntry
	cacheNext int

	decisions int
}

// Engine returns the shared immutable engine this session decides against.
func (s *Session) Engine() *Engine { return s.eng }

// Candidates returns the engine's precomputed joint configuration space in
// enumeration order (read-only; shared by every Session).
func (s *Session) Candidates() []Candidate { return s.eng.candidates }

// Overhead returns the per-decision cost the session charges itself.
func (s *Session) Overhead() float64 { return s.eng.overhead }

// XiMean returns the current posterior mean of ξ.
func (s *Session) XiMean() float64 { return s.xi.Mean() }

// XiStd returns the current posterior standard deviation of ξ.
func (s *Session) XiStd() float64 { return s.xi.Std() }

// IdleRatio returns the current idle-power ratio estimate φ.
func (s *Session) IdleRatio() float64 { return s.idle.Ratio() }

// Decisions returns how many Decide and DecideAtCap calls have been served
// (including cache hits).
func (s *Session) Decisions() int { return s.decisions }

// FilterEpoch returns the decision cache's epoch: it advances on every
// Observe, invalidating all memoized decisions.
func (s *Session) FilterEpoch() uint64 { return s.epoch }

// Observe feeds back the measurement of the input just executed (§3.2
// step 1). It advances the filter epoch, invalidating every memoized
// decision — the filters may move, so every spec must be re-scored.
func (s *Session) Observe(out sim.Outcome) {
	s.epoch++
	s.xi.Observe(out.ObservedXi)
	if out.CapApplied > 0 {
		s.idle.Observe(out.IdlePower / out.CapApplied)
	}
}

// adjustedGoal is the shared §3.2-step-2 deadline adjustment: the
// controller pre-subtracts its own worst-case decision cost, falling back
// to half the deadline when the overhead would consume it entirely.
func (s *Session) adjustedGoal(deadline float64) float64 {
	goal := deadline - s.eng.overhead
	if goal <= 0 {
		goal = deadline * 0.5
	}
	return goal
}

// sigmaForPrediction returns the ξ standard deviation used in predictions:
// the filter's predictive deviation for the next observation (posterior
// variance of the mean plus measurement noise), or zero for the ALERT*
// ablation. The posterior alone would under-margin every decision.
func (s *Session) sigmaForPrediction() float64 {
	if !s.eng.opts.UseVariance {
		return 0
	}
	return s.xi.PredictiveStd()
}

// estimate scores a single candidate under the spec. goal is the adjusted
// deadline (overhead already subtracted by the caller).
//
// This is the naive reference scorer, kept verbatim as the oracle the
// optimized hot path (fastpath.go) is differentially tested against:
// estimateFast must reproduce these Estimates bit-for-bit. EstimateAll and
// Options.ReferenceScorer score with it directly.
func (s *Session) estimate(cand Candidate, goal float64, spec Spec) Estimate {
	m := s.eng.prof.Models[cand.Model]
	power := s.eng.prof.PowerAt(cand.Model, cand.Cap)
	tProf := s.eng.prof.At(cand.Model, cand.Cap)
	mu, sigma := s.xi.Mean(), s.sigmaForPrediction()

	est := Estimate{Candidate: cand}

	// Probability that a work chunk of nominal duration d completes within
	// budget b: Pr[ξ·d ≤ b] (Eq. 6).
	prWithin := func(d, b float64) float64 {
		if d <= 0 {
			return 1
		}
		return mathx.NormCDF(b/d, mu, sigma)
	}

	if !m.IsAnytime() {
		est.LatMean = mu * tProf
		est.PrDeadline = prWithin(tProf, goal)
		// Eq. 7: expectation over the deadline step function.
		est.Quality = est.PrDeadline*m.Accuracy + (1-est.PrDeadline)*m.QFail
		switch {
		case spec.AccuracyGoal <= 0 || m.QFail >= spec.AccuracyGoal:
			est.PrQuality = 1
		case m.Accuracy >= spec.AccuracyGoal:
			est.PrQuality = est.PrDeadline
		default:
			est.PrQuality = 0
		}
		// Latency used for the energy estimate: the Eq. 12 quantile form,
		// at Prth when the user set one and at the default energy
		// confidence otherwise.
		lat := mathx.NormQuantile(s.energyQuantile(spec), mu, sigma) * tProf
		if lat < est.LatMean {
			lat = est.LatMean
		}
		est.Energy = s.energyAt(power, lat, goal)
		return est
	}

	// Anytime candidate stopped after stage k: execution is cut at
	// PlannedStop (never beyond the goal). Expected quality follows the
	// Eq. 13 ladder under the cut.
	k := cand.StopStage
	stageNominal := func(si int) float64 { return m.Stages[si].LatencyFrac * tProf }

	var stop float64
	if cand.RunToDeadline {
		stop = goal
	} else {
		q := s.eng.opts.StopQuantile
		if spec.Prth > 0 {
			q = spec.Prth
		}
		stop = mathx.NormQuantile(q, mu, sigma) * stageNominal(k)
		if stop > goal {
			stop = goal
		}
		if stop <= 0 {
			stop = goal
		}
	}
	est.PlannedStop = stop

	cut := math.Min(stop, goal)
	// Quality ladder: Pr[stage si completes before cut], non-increasing in
	// si; stages beyond the planned stop never complete.
	prev := 1.0
	quality := 0.0
	prFirst := 0.0
	for si := 0; si <= k; si++ {
		pr := prWithin(stageNominal(si), cut)
		if si == 0 {
			prFirst = pr
		}
		if pr > prev {
			pr = prev
		}
		nextPr := 0.0
		if si < k {
			nextPr = math.Min(prWithin(stageNominal(si+1), cut), pr)
		}
		quality += m.Stages[si].Accuracy * (pr - nextPr)
		prev = pr
	}
	quality += m.QFail * (1 - prFirst)
	est.Quality = quality
	est.PrDeadline = prWithin(stageNominal(k), cut)

	// Chance constraint on the realized quality: the first stage at or
	// above the goal must complete inside the cut.
	switch {
	case spec.AccuracyGoal <= 0 || m.QFail >= spec.AccuracyGoal:
		est.PrQuality = 1
	default:
		est.PrQuality = 0
		for si := 0; si <= k; si++ {
			if m.Stages[si].Accuracy >= spec.AccuracyGoal {
				est.PrQuality = prWithin(stageNominal(si), cut)
				break
			}
		}
	}

	// Executed time: the ladder runs until stage k finishes or the cut
	// hits, whichever is first; its mean is E[min(ξ·d, cut)], approximated
	// by min at the mean, the same first-order treatment Eq. 9 applies.
	meanExec := math.Min(mu*stageNominal(k), cut)
	est.LatMean = meanExec
	// Energy at the Eq. 12 quantile (the cut bounds it from above).
	qExec := math.Min(mathx.NormQuantile(s.energyQuantile(spec), mu, sigma)*stageNominal(k), cut)
	if qExec < meanExec {
		qExec = meanExec
	}
	est.Energy = s.energyAt(power, qExec, goal)
	return est
}

// energyQuantile resolves the latency quantile for energy estimates.
func (s *Session) energyQuantile(spec Spec) float64 {
	if spec.Prth > 0 {
		return spec.Prth
	}
	return s.eng.opts.EnergyConfidence
}

// energyAt is Eq. 9: inference at the configuration's profiled power p_{i,j}
// for lat seconds, then idle at φ·p_{i,j} for the remainder of the goal
// window.
func (s *Session) energyAt(power, lat, goal float64) float64 {
	idleTime := goal - lat
	if idleTime < 0 {
		idleTime = 0
	}
	return power*lat + s.idle.Ratio()*power*idleTime
}

// Decide selects the configuration for the next input (§3.2 steps 2–4).
// The returned Estimate describes the chosen candidate's predictions.
//
// The scan walks the engine's precomputed SoA candidate space with the
// per-Decide quantile math hoisted (fastpath.go); the feasibility rules are
// the chance constraints of Eq. 1/2 (10/11 with a threshold), and the
// infeasible fallback follows §4's latency > accuracy > power hierarchy:
// maximizing expected quality already privileges deadline-meeting (missing
// collapses quality to QFail), so the fallback is the quality-maximal
// candidate with energy as the tiebreaker. Results are memoized per
// (spec, filter epoch): a steady-state stream whose spec did not change
// since the last Observe skips the scan entirely.
func (s *Session) Decide(spec Spec) (sim.Decision, Estimate) {
	s.decisions++
	goal := s.adjustedGoal(spec.Deadline)
	if s.eng.opts.ReferenceScorer {
		best, fb, ok := s.scanReference(s.eng.space.all, goal, spec)
		if !ok {
			best = fb
		}
		return s.decisionFor(best), best
	}
	if d, est, ok := s.cacheGet(spec); ok {
		return d, est
	}
	best, fb, ok := s.scan(s.eng.space.all, goal, spec, s.scoreParamsFor(spec))
	if !ok {
		best = fb
	}
	d := s.decisionFor(best)
	s.cachePut(spec, best)
	return d, best
}

// decisionFor projects the winning estimate onto the executor's decision.
func (s *Session) decisionFor(best Estimate) sim.Decision {
	return sim.Decision{
		Model:       best.Model,
		Cap:         best.Cap,
		PlannedStop: best.PlannedStop,
		Overhead:    s.eng.overhead,
	}
}

// DecideAtCap is Decide restricted to a single power-cap rung. It is the
// primitive the multi-job coordinator (internal/multi) builds on: when
// several inference jobs share one power envelope, each job's session
// answers "what is the best you can do with exactly this much power", and
// the coordinator searches over the split. ok is false when no candidate at
// this cap satisfies the constraints (the returned fallback still serves).
// It counts toward Decisions() like any served decision, and scans only
// its rung's precomputed index list rather than filtering the whole space.
func (s *Session) DecideAtCap(spec Spec, cap int) (d sim.Decision, est Estimate, ok bool) {
	s.decisions++
	goal := s.adjustedGoal(spec.Deadline)
	var idxs []int32
	if cap >= 0 && cap < len(s.eng.space.byCap) {
		idxs = s.eng.space.byCap[cap]
	}
	var best, fb Estimate
	var bestSet bool
	if s.eng.opts.ReferenceScorer {
		best, fb, bestSet = s.scanReference(idxs, goal, spec)
	} else {
		best, fb, bestSet = s.scan(idxs, goal, spec, s.scoreParamsFor(spec))
	}
	if !bestSet {
		best = fb
	}
	return s.decisionFor(best), best, bestSet
}

// EstimateAll returns estimates for the full candidate space under the
// spec, scored with the naive reference estimator; used by tests, the
// Figure 9 trace tooling, and as the oracle the differential tests compare
// the optimized scan against.
func (s *Session) EstimateAll(spec Spec) []Estimate {
	goal := s.adjustedGoal(spec.Deadline)
	out := make([]Estimate, len(s.eng.candidates))
	for i, cand := range s.eng.candidates {
		out[i] = s.estimate(cand, goal, spec)
	}
	return out
}
