package core

import (
	"runtime"
	"testing"
	"unsafe"

	"github.com/alert-project/alert/internal/mathx"
	"github.com/alert-project/alert/internal/sim"
)

// These tests pin the Engine/Session contract: sessions over one shared
// engine are byte-for-byte independent of each other (any interleaving of N
// sessions reproduces each stream's solo Controller sequence), the scan
// workspace may be shared without changing a single bit, and a Session
// stays small and allocation-free on the steady-state decide path.

// sessionScript is one stream's deterministic drive: spec churn and
// synthetic feedback drawn only from (stream, step).
type sessionScript struct {
	specs []Spec
	xis   []float64
}

func makeScript(stream, n int) sessionScript {
	rng := mathx.NewRand(int64(7000 + stream))
	sc := sessionScript{specs: make([]Spec, n), xis: make([]float64, n)}
	for i := 0; i < n; i++ {
		sc.specs[i] = specGen(rng)
		sc.xis[i] = 0.8 + 0.6*rng.Float64()
	}
	return sc
}

// soloRun replays a script against a dedicated Controller — the paper's
// one-stream deployment every multi-session interleaving must reproduce.
func soloRun(t *testing.T, script sessionScript) ([]sim.Decision, []Estimate) {
	t.Helper()
	ctl := New(diffProfiles(t)[0], DefaultOptions())
	ds := make([]sim.Decision, len(script.specs))
	es := make([]Estimate, len(script.specs))
	for i, spec := range script.specs {
		ds[i], es[i] = ctl.Decide(spec)
		ctl.Observe(sim.Outcome{ObservedXi: script.xis[i], IdlePower: 6, CapApplied: 30})
	}
	return ds, es
}

// TestSessionsIndependentUnderInterleaving is the core-level differential
// criterion for the Engine/Session split: N sessions sharing one Engine —
// and one Scratch, exactly the serving shard's configuration — are driven
// in an adversarial interleaving (round-robin, bursts, stragglers), and
// every session's decision sequence must equal running its stream alone
// against a dedicated Controller, compared with == (bit-for-bit).
func TestSessionsIndependentUnderInterleaving(t *testing.T) {
	prof := diffProfiles(t)[0]
	eng := NewEngine(prof, DefaultOptions())
	sc := eng.NewScratch()

	const streams, steps = 5, 80
	scripts := make([]sessionScript, streams)
	sessions := make([]*Session, streams)
	for i := range sessions {
		scripts[i] = makeScript(i, steps)
		sessions[i] = eng.NewSessionWith(sc)
	}

	gotD := make([][]sim.Decision, streams)
	gotE := make([][]Estimate, streams)
	next := make([]int, streams)
	step := func(i int) {
		n := next[i]
		if n >= steps {
			return
		}
		d, e := sessions[i].Decide(scripts[i].specs[n])
		sessions[i].Observe(sim.Outcome{ObservedXi: scripts[i].xis[n], IdlePower: 6, CapApplied: 30})
		gotD[i] = append(gotD[i], d)
		gotE[i] = append(gotE[i], e)
		next[i]++
	}

	// Interleaving: bursts of random length on random sessions, so ladders,
	// caches, and the shared workspace are handed between streams at
	// arbitrary points.
	rng := mathx.NewRand(11)
	for {
		done := true
		for i := range next {
			if next[i] < steps {
				done = false
			}
		}
		if done {
			break
		}
		i := rng.Intn(streams)
		for burst := 1 + rng.Intn(4); burst > 0; burst-- {
			step(i)
		}
	}

	for i := 0; i < streams; i++ {
		wantD, wantE := soloRun(t, scripts[i])
		for n := range wantD {
			if gotD[i][n] != wantD[n] || gotE[i][n] != wantE[n] {
				t.Fatalf("stream %d step %d: interleaved session decision (%+v, %+v) != solo controller (%+v, %+v)",
					i, n, gotD[i][n], gotE[i][n], wantD[n], wantE[n])
			}
		}
	}
}

// TestSessionSharedVsPrivateScratch pins the Scratch-sharing claim
// directly: the same session history produces bit-identical estimates
// whether its workspace is private or shared with other active sessions.
func TestSessionSharedVsPrivateScratch(t *testing.T) {
	prof := diffProfiles(t)[0]
	eng := NewEngine(prof, DefaultOptions())
	shared := eng.NewScratch()
	a := eng.NewSessionWith(shared)
	noise := eng.NewSessionWith(shared) // pollutes the shared workspace between a's decides
	b := eng.NewSession()               // private workspace

	rng := mathx.NewRand(23)
	script := makeScript(0, 120)
	for i, spec := range script.specs {
		noise.Decide(specGen(rng)) // leave a foreign ladder memo behind
		da, ea := a.Decide(spec)
		db, eb := b.Decide(spec)
		if da != db || ea != eb {
			t.Fatalf("step %d: shared-scratch decision (%+v, %+v) != private (%+v, %+v)", i, da, ea, db, eb)
		}
		out := sim.Outcome{ObservedXi: script.xis[i], IdlePower: 6, CapApplied: 30}
		a.Observe(out)
		b.Observe(out)
	}
}

// TestSessionFootprint enforces the memory contract that makes
// million-stream serving plausible: the Session struct itself stays well
// under the ~1 KB/stream target, and the *measured* marginal heap cost of
// a session on a shared engine (the serving shard's configuration: shared
// Engine, shared Scratch) stays under 1 KB too.
func TestSessionFootprint(t *testing.T) {
	if sz := unsafe.Sizeof(Session{}); sz > 768 {
		t.Errorf("Session struct is %d bytes, want <= 768 (well under the ~1 KB/stream target)", sz)
	}
	if sb := SessionBytes(); sb != int(unsafe.Sizeof(Session{})) {
		t.Errorf("SessionBytes() = %d, want %d", sb, unsafe.Sizeof(Session{}))
	}

	prof := diffProfiles(t)[0]
	eng := NewEngine(prof, DefaultOptions())
	sc := eng.NewScratch()
	const n = 20000
	sessions := make([]*Session, n)

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := range sessions {
		sessions[i] = eng.NewSessionWith(sc)
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	perSession := float64(after.HeapAlloc-before.HeapAlloc) / n
	if perSession > 1024 {
		t.Errorf("measured %.0f heap bytes/session on a shared engine, want < 1024", perSession)
	}
	runtime.KeepAlive(sessions)
}

// TestSessionDecideAllocFree extends the controller's steady-state
// allocation contract to a bare session on a shared engine: cached decide,
// uncached decide (post-Observe), and DecideAtCap all allocate nothing.
func TestSessionDecideAllocFree(t *testing.T) {
	eng := NewEngine(diffProfiles(t)[0], DefaultOptions())
	s := eng.NewSessionWith(eng.NewScratch())
	spec := Spec{Objective: MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.92}
	out := sim.Outcome{ObservedXi: 1.05, IdlePower: 6, CapApplied: 30}
	s.Observe(out)
	s.Decide(spec) // warm

	if n := testing.AllocsPerRun(200, func() { s.Decide(spec) }); n != 0 {
		t.Errorf("cached session Decide allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		s.Observe(out)
		s.Decide(spec)
	}); n != 0 {
		t.Errorf("uncached session Decide allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { s.DecideAtCap(spec, 2) }); n != 0 {
		t.Errorf("session DecideAtCap allocates %.1f/op, want 0", n)
	}
}

// TestNewSessionWithUndersizedScratch pins the cross-engine workspace
// guard: a Scratch sized for an engine with shorter (or no) anytime stage
// ladders is grown by NewSessionWith instead of overflowing mid-scan, and
// decisions still match a private-workspace twin bit-for-bit.
func TestNewSessionWithUndersizedScratch(t *testing.T) {
	profs := diffProfiles(t)
	mixed := NewEngine(profs[0], DefaultOptions()) // anytime ladders: needs scratch
	zoo := NewEngine(profs[1], DefaultOptions())   // all-traditional: maxStages 0

	small := zoo.NewScratch()
	a := mixed.NewSessionWith(small) // must grow the workspace
	b := mixed.NewSession()
	rng := mathx.NewRand(31)
	for i := 0; i < 40; i++ {
		spec := specGen(rng)
		da, ea := a.Decide(spec)
		db, eb := b.Decide(spec)
		if da != db || ea != eb {
			t.Fatalf("step %d: grown-scratch session diverged from private-scratch twin", i)
		}
		out := sim.Outcome{ObservedXi: 0.9 + 0.4*rng.Float64(), IdlePower: 6, CapApplied: 30}
		a.Observe(out)
		b.Observe(out)
	}
}

// TestEngineXiPrior pins the side-effect-free read the serving layer
// answers sessionless streams with: the prior equals a fresh session's
// belief.
func TestEngineXiPrior(t *testing.T) {
	eng := NewEngine(diffProfiles(t)[0], DefaultOptions())
	mu, sigma := eng.XiPrior()
	s := eng.NewSession()
	if mu != s.XiMean() || sigma != s.XiStd() {
		t.Errorf("XiPrior() = (%g, %g), fresh session = (%g, %g)", mu, sigma, s.XiMean(), s.XiStd())
	}
}

// TestControllerIsEngineSessionFacade pins the facade relationship the
// compatibility layer rests on: a Controller is exactly one Engine plus one
// Session, and its engine is fully shareable — a second session on it
// decides identically to a second Controller.
func TestControllerIsEngineSessionFacade(t *testing.T) {
	prof := diffProfiles(t)[0]
	ctl := New(prof, DefaultOptions())
	if ctl.Engine() == nil {
		t.Fatal("controller has no engine")
	}
	if got, want := len(ctl.Candidates()), len(ctl.Engine().Candidates()); got != want {
		t.Fatalf("facade candidates %d != engine candidates %d", got, want)
	}

	twinA := ctl.Engine().NewSession()
	twinB := New(prof, DefaultOptions())
	spec := Spec{Objective: MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.92}
	for i := 0; i < 20; i++ {
		da, ea := twinA.Decide(spec)
		db, eb := twinB.Decide(spec)
		if da != db || ea != eb {
			t.Fatalf("step %d: engine-shared session != fresh controller", i)
		}
		out := sim.Outcome{ObservedXi: 1.0 + 0.02*float64(i), IdlePower: 6, CapApplied: 30}
		twinA.Observe(out)
		twinB.Observe(out)
	}
}
