package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/platform"
	"github.com/alert-project/alert/internal/sim"
)

func newTestController(t *testing.T, opts Options) (*Controller, *dnn.ProfileTable) {
	t.Helper()
	prof, err := dnn.Profile(platform.CPU1(), dnn.ImageCandidates())
	if err != nil {
		t.Fatal(err)
	}
	return New(prof, opts), prof
}

// feed drives the filter to a steady slowdown level.
func feed(c *Controller, xi float64, n int) {
	for i := 0; i < n; i++ {
		c.Observe(sim.Outcome{ObservedXi: xi, IdlePower: 6, CapApplied: 30})
	}
}

func TestDecideReturnsValidCandidate(t *testing.T) {
	c, prof := newTestController(t, DefaultOptions())
	spec := Spec{Objective: MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.92}
	f := func(xiRaw, dlRaw float64) bool {
		xi := math.Mod(math.Abs(xiRaw), 2) + 0.5
		deadline := math.Mod(math.Abs(dlRaw), 0.5) + 0.01
		feed(c, xi, 3)
		s := spec
		s.Deadline = deadline
		d, _ := c.Decide(s)
		return d.Model >= 0 && d.Model < prof.NumModels() &&
			d.Cap >= 0 && d.Cap < prof.NumCaps() &&
			d.PlannedStop >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLooseConstraintsPickCheapConfig(t *testing.T) {
	c, prof := newTestController(t, DefaultOptions())
	feed(c, 1.0, 50)
	// Miles of latency headroom and the weakest accuracy goal: the
	// cheapest adequate model at a low cap must win.
	d, est := c.Decide(Spec{Objective: MinimizeEnergy, Deadline: 1.0, AccuracyGoal: 0.88})
	if prof.Caps[d.Cap] > prof.Platform.PMin+10 {
		t.Errorf("expected a low cap, got %gW", prof.Caps[d.Cap])
	}
	if est.PrQuality < 0.9 {
		t.Errorf("chosen config misses the goal: PrQuality %g", est.PrQuality)
	}
	// And the chosen model should be a small one, not the XL.
	if prof.Models[d.Model].RefLatency > 0.1 {
		t.Errorf("expected a small model, got %s", prof.Models[d.Model].Name)
	}
}

func TestTightDeadlineExcludesSlowTraditionals(t *testing.T) {
	c, prof := newTestController(t, DefaultOptions())
	feed(c, 1.0, 50)
	// Deadline that only the fastest models can meet.
	deadline := prof.At(prof.ModelIndex("SparseResNet-S"), prof.NumCaps()-1) * 1.3
	d, _ := c.Decide(Spec{Objective: MinimizeEnergy, Deadline: deadline, AccuracyGoal: 0.90})
	m := prof.Models[d.Model]
	if !m.IsAnytime() && prof.At(d.Model, d.Cap) > deadline {
		t.Errorf("picked %s whose nominal latency exceeds the deadline", m.Name)
	}
}

func TestHighVariancePrefersAnytime(t *testing.T) {
	// §3.4's worked example: under high estimated variance the controller
	// must abandon long-latency traditional models for the anytime ladder.
	optsCalm := DefaultOptions()
	calm, prof := newTestController(t, optsCalm)
	feed(calm, 1.0, 100)
	volatile, _ := newTestController(t, DefaultOptions())
	// Oscillating observations keep the adaptive Q elevated.
	for i := 0; i < 60; i++ {
		xi := 1.0
		if i%2 == 0 {
			xi = 1.6
		}
		volatile.Observe(sim.Outcome{ObservedXi: xi, IdlePower: 6, CapApplied: 30})
	}
	if volatile.XiStd() <= calm.XiStd() {
		t.Fatal("volatile filter should carry more variance")
	}
	deadline := prof.At(prof.ModelIndex("SparseResNet-XL"), prof.NumCaps()-1) * 1.35
	spec := Spec{Objective: MaximizeAccuracy, Deadline: deadline, EnergyBudget: 45 * deadline}
	dCalm, _ := calm.Decide(spec)
	dVol, _ := volatile.Decide(spec)
	if prof.Models[dCalm.Model].IsAnytime() {
		t.Errorf("calm environment should afford the traditional model, got %s",
			prof.Models[dCalm.Model].Name)
	}
	if !prof.Models[dVol.Model].IsAnytime() {
		t.Errorf("volatile environment should pick the anytime model, got %s",
			prof.Models[dVol.Model].Name)
	}
}

func TestEnergyBudgetRespectedInEstimates(t *testing.T) {
	c, _ := newTestController(t, DefaultOptions())
	feed(c, 1.0, 50)
	budget := 30 * 0.2
	_, est := c.Decide(Spec{Objective: MaximizeAccuracy, Deadline: 0.2, EnergyBudget: budget})
	if est.Energy > budget {
		t.Errorf("chosen estimate exceeds budget: %g > %g", est.Energy, budget)
	}
}

func TestInfeasibleEnergyBudgetFallsBack(t *testing.T) {
	c, prof := newTestController(t, DefaultOptions())
	feed(c, 1.0, 50)
	// A budget no configuration can meet: the latency>accuracy>power
	// hierarchy keeps serving, sacrificing the power constraint.
	d, est := c.Decide(Spec{Objective: MaximizeAccuracy, Deadline: 0.2, EnergyBudget: 1e-6})
	if d.Model < 0 || d.Model >= prof.NumModels() {
		t.Fatal("fallback returned invalid model")
	}
	if est.Quality < 0.8 {
		t.Errorf("fallback should still chase accuracy, got %g", est.Quality)
	}
}

func TestSlowdownShiftsPowerUp(t *testing.T) {
	opts := DefaultOptions()
	fast, prof := newTestController(t, opts)
	slow, _ := newTestController(t, opts)
	feed(fast, 1.0, 80)
	feed(slow, 1.5, 80)
	deadline := prof.At(prof.ModelIndex("SparseResNet-M"), prof.NumCaps()-1) * 1.6
	spec := Spec{Objective: MinimizeEnergy, Deadline: deadline, AccuracyGoal: 0.93}
	dFast, _ := fast.Decide(spec)
	dSlow, _ := slow.Decide(spec)
	// Same requirement, slower world: the controller must spend more
	// power and/or drop to a faster model.
	if prof.Caps[dSlow.Cap] < prof.Caps[dFast.Cap] &&
		prof.Models[dSlow.Model].RefLatency >= prof.Models[dFast.Model].RefLatency {
		t.Errorf("no compensation for slowdown: fast (%s @ %gW) slow (%s @ %gW)",
			prof.Models[dFast.Model].Name, prof.Caps[dFast.Cap],
			prof.Models[dSlow.Model].Name, prof.Caps[dSlow.Cap])
	}
}

func TestPrthRejectsRiskyCandidates(t *testing.T) {
	c, _ := newTestController(t, DefaultOptions())
	feed(c, 1.2, 50)
	spec := Spec{Objective: MaximizeAccuracy, Deadline: 0.12, EnergyBudget: 9, Prth: 0.999}
	_, est := c.Decide(spec)
	if est.StopStage < 0 && est.PrDeadline < 0.999 {
		t.Errorf("Prth violated: picked traditional candidate with Pr %g", est.PrDeadline)
	}
}

func TestPrthTightensEnergyEstimate(t *testing.T) {
	c, _ := newTestController(t, DefaultOptions())
	feed(c, 1.2, 50)
	base := Spec{Objective: MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.92}
	withTh := base
	withTh.Prth = 0.95
	// Eq. 12: the same candidate's energy estimate must not shrink when a
	// quantile latency replaces the mean.
	for _, e := range c.EstimateAll(base) {
		var match *Estimate
		for _, e2 := range c.EstimateAll(withTh) {
			if e2.Candidate == e.Candidate {
				t.Helper()
				m := e2
				match = &m
				break
			}
		}
		if match == nil {
			t.Fatal("candidate sets diverged")
		}
		if match.Energy < e.Energy-1e-9 {
			t.Fatalf("Prth energy estimate shrank for %+v: %g < %g",
				e.Candidate, match.Energy, e.Energy)
		}
	}
}

func TestExpectedQualityMonotoneInDeadline(t *testing.T) {
	c, _ := newTestController(t, DefaultOptions())
	feed(c, 1.1, 50)
	f := func(aRaw, bRaw float64) bool {
		a := math.Mod(math.Abs(aRaw), 0.4) + 0.01
		b := math.Mod(math.Abs(bRaw), 0.4) + 0.01
		lo, hi := math.Min(a, b), math.Max(a, b)
		sLo := Spec{Objective: MaximizeAccuracy, Deadline: lo}
		sHi := Spec{Objective: MaximizeAccuracy, Deadline: hi}
		estLo := c.EstimateAll(sLo)
		estHi := c.EstimateAll(sHi)
		for i := range estLo {
			// Only compare like-for-like candidates on quality; planned
			// stops move with the deadline, so compare PrDeadline for
			// traditional candidates only.
			if estLo[i].StopStage < 0 && estLo[i].Quality > estHi[i].Quality+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestOverheadSubtractedFromGoal(t *testing.T) {
	c, prof := newTestController(t, DefaultOptions())
	if c.Overhead() <= 0 {
		t.Fatal("overhead model missing")
	}
	feed(c, 1.0, 50)
	// A deadline exactly at a model's nominal latency: with overhead
	// accounting the controller must not bet on that model at that cap.
	top := prof.NumCaps() - 1
	xs := prof.ModelIndex("SparseResNet-XS")
	deadline := prof.At(xs, top) // zero slack
	d, _ := c.Decide(Spec{Objective: MaximizeAccuracy, Deadline: deadline, EnergyBudget: 100})
	if !prof.Models[d.Model].IsAnytime() {
		est := c.EstimateAll(Spec{Objective: MaximizeAccuracy, Deadline: deadline, EnergyBudget: 100})
		_ = est
		if prof.At(d.Model, d.Cap)+c.Overhead() > deadline {
			t.Errorf("picked %s with no room for overhead", prof.Models[d.Model].Name)
		}
	}
}

func TestObserveUpdatesIdleRatio(t *testing.T) {
	c, _ := newTestController(t, DefaultOptions())
	for i := 0; i < 200; i++ {
		c.Observe(sim.Outcome{ObservedXi: 1, IdlePower: 15, CapApplied: 30})
	}
	if math.Abs(c.IdleRatio()-0.5) > 0.05 {
		t.Errorf("idle ratio %g, want ~0.5", c.IdleRatio())
	}
}

func TestALERTStarIgnoresVariance(t *testing.T) {
	opts := DefaultOptions()
	opts.UseVariance = false
	star, _ := newTestController(t, opts)
	feed(star, 1.0, 10)
	// With variance off, deadline probabilities are step functions.
	for _, e := range star.EstimateAll(Spec{Objective: MaximizeAccuracy, Deadline: 0.15, EnergyBudget: 100}) {
		if e.PrDeadline != 0 && e.PrDeadline != 1 {
			t.Fatalf("ALERT* PrDeadline = %g, want 0 or 1", e.PrDeadline)
		}
	}
}

func TestDecisionCountAndEstimateAllSize(t *testing.T) {
	c, prof := newTestController(t, DefaultOptions())
	spec := Spec{Objective: MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9}
	c.Decide(spec)
	c.Decide(spec)
	if c.Decisions() != 2 {
		t.Errorf("decisions = %d", c.Decisions())
	}
	ests := c.EstimateAll(spec)
	want := 0
	for _, m := range prof.Models {
		if m.IsAnytime() {
			want += (len(m.Stages) + 1) * prof.NumCaps()
		} else {
			want += prof.NumCaps()
		}
	}
	if len(ests) != want {
		t.Errorf("EstimateAll size %d, want %d", len(ests), want)
	}
}

func TestAnytimeCandidatesDeadlineSafe(t *testing.T) {
	c, prof := newTestController(t, DefaultOptions())
	feed(c, 1.3, 30)
	for _, e := range c.EstimateAll(Spec{Objective: MaximizeAccuracy, Deadline: 0.1, EnergyBudget: 100}) {
		if e.StopStage >= 0 && e.PlannedStop > 0.1 {
			t.Fatalf("anytime candidate plans to run past the goal: %+v", e)
		}
	}
	_ = prof
}
