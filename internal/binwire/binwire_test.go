package binwire

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"strings"
	"testing"

	"github.com/alert-project/alert"
)

// quietNaN returns a NaN with a payload bit set, to prove float64 fields
// travel as raw bits rather than through any canonicalizing conversion.
func quietNaN() float64 {
	return math.Float64frombits(0x7ff8_0000_0000_0abc)
}

func sampleSpec() alert.Spec {
	return alert.Spec{
		Objective:    alert.MaximizeAccuracy,
		Deadline:     0.25,
		EnergyBudget: 12.5,
		AccuracyGoal: 0.9,
		Prth:         quietNaN(),
	}
}

func sampleDecision() alert.Decision {
	return alert.Decision{Model: 3, Cap: -1, CapW: 42.5, PlannedStop: 0.125, Overhead: quietNaN()}
}

func sampleEstimate() alert.Estimate {
	var e alert.Estimate
	e.Model = 7
	e.Cap = 2
	e.StopStage = -1
	e.RunToDeadline = true
	e.LatMean = 0.05
	e.PrDeadline = 0.99
	e.Quality = 0.87
	e.PrQuality = quietNaN()
	e.Energy = 3.5
	e.PlannedStop = 0.2
	return e
}

func sampleFeedback() alert.Feedback {
	return alert.Feedback{
		Decision:       sampleDecision(),
		Latency:        0.061,
		CompletedStage: -1,
		IdlePowerW:     quietNaN(),
	}
}

// parseOne parses data as exactly one frame.
func parseOne(t *testing.T, data []byte) Frame {
	t.Helper()
	f, n, err := ParseFrame(data)
	if err != nil {
		t.Fatalf("ParseFrame: %v", err)
	}
	if n != len(data) {
		t.Fatalf("ParseFrame consumed %d of %d bytes", n, len(data))
	}
	if f.Version != Version {
		t.Fatalf("version = %d, want %d", f.Version, Version)
	}
	return f
}

func TestDecideRoundTrip(t *testing.T) {
	spec := sampleSpec()
	raw := AppendDecide(nil, 77, -12, spec)
	f := parseOne(t, raw)
	if f.Type != MsgDecide || f.ID != 77 {
		t.Fatalf("frame header = %+v", f)
	}
	stream, got, err := DecodeDecide(f.Body)
	if err != nil {
		t.Fatalf("DecodeDecide: %v", err)
	}
	if stream != -12 {
		t.Fatalf("stream = %d, want -12", stream)
	}
	if math.Float64bits(got.Prth) != math.Float64bits(spec.Prth) {
		t.Fatalf("Prth bits changed: %x vs %x", math.Float64bits(got.Prth), math.Float64bits(spec.Prth))
	}
	got.Prth, spec.Prth = 0, 0
	if got != spec {
		t.Fatalf("spec = %+v, want %+v", got, spec)
	}
	if re := AppendDecide(nil, 77, -12, sampleSpec()); !bytes.Equal(re, raw) {
		t.Fatal("re-encode is not byte-identical")
	}
}

func TestDecideRespRoundTrip(t *testing.T) {
	d, e := sampleDecision(), sampleEstimate()
	raw := AppendDecideResp(nil, 5, d, e, "node-a")
	f := parseOne(t, raw)
	gd, ge, node, err := DecodeDecideResp(f.Body)
	if err != nil {
		t.Fatalf("DecodeDecideResp: %v", err)
	}
	if node != "node-a" {
		t.Fatalf("node = %q", node)
	}
	if math.Float64bits(gd.Overhead) != math.Float64bits(d.Overhead) ||
		math.Float64bits(ge.PrQuality) != math.Float64bits(e.PrQuality) {
		t.Fatal("float bits changed in transit")
	}
	gd.Overhead, d.Overhead = 0, 0
	ge.PrQuality, e.PrQuality = 0, 0
	if gd != d || ge != e {
		t.Fatalf("decoded (%+v, %+v), want (%+v, %+v)", gd, ge, d, e)
	}
}

func TestObserveRoundTrip(t *testing.T) {
	fb := sampleFeedback()
	raw := AppendObserve(nil, 9, 4, fb)
	f := parseOne(t, raw)
	stream, got, err := DecodeObserve(f.Body)
	if err != nil {
		t.Fatalf("DecodeObserve: %v", err)
	}
	if stream != 4 {
		t.Fatalf("stream = %d", stream)
	}
	if math.Float64bits(got.IdlePowerW) != math.Float64bits(fb.IdlePowerW) ||
		math.Float64bits(got.Decision.Overhead) != math.Float64bits(fb.Decision.Overhead) {
		t.Fatal("float bits changed in transit")
	}
	got.IdlePowerW, fb.IdlePowerW = 0, 0
	got.Decision.Overhead, fb.Decision.Overhead = 0, 0
	if got != fb {
		t.Fatalf("feedback = %+v, want %+v", got, fb)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	reqs := []alert.BatchRequest{
		{Stream: 1, Spec: alert.Spec{Objective: alert.MinimizeEnergy, Deadline: 0.1, AccuracyGoal: 0.8}},
		{Stream: 2, Spec: sampleSpec()},
	}
	raw := AppendBatch(nil, 3, reqs)
	f := parseOne(t, raw)
	got, err := DecodeBatch(f.Body, nil)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if len(got) != 2 || got[0] != reqs[0] || got[1].Stream != 2 {
		t.Fatalf("batch = %+v", got)
	}
	if re := AppendBatch(nil, 3, got); !bytes.Equal(re, raw) {
		t.Fatal("re-encode is not byte-identical")
	}

	res := []alert.BatchResult{
		{Stream: 1, Decision: sampleDecision(), Estimate: sampleEstimate()},
	}
	rraw := AppendBatchResp(nil, 3, res)
	rf := parseOne(t, rraw)
	rgot, err := DecodeBatchResp(rf.Body, nil)
	if err != nil {
		t.Fatalf("DecodeBatchResp: %v", err)
	}
	if re := AppendBatchResp(nil, 3, rgot); !bytes.Equal(re, rraw) {
		t.Fatal("batch-resp re-encode is not byte-identical")
	}
}

func TestStreamAndSnapshotRoundTrip(t *testing.T) {
	for _, mt := range []MsgType{MsgExport, MsgCheckpoint, MsgEvict, MsgImportResp, MsgEvictResp} {
		raw := AppendStreamReq(nil, mt, 11, 42)
		f := parseOne(t, raw)
		if f.Type != mt {
			t.Fatalf("type = %v, want %v", f.Type, mt)
		}
		stream, err := DecodeStreamReq(mt, f.Body)
		if err != nil || stream != 42 {
			t.Fatalf("DecodeStreamReq(%v) = %d, %v", mt, stream, err)
		}
	}
	blob := []byte("canonical session bytes \x00\x01\x02")
	for _, mt := range []MsgType{MsgSnapshotResp, MsgImport} {
		raw := AppendSnapshot(nil, mt, 8, 6, blob)
		f := parseOne(t, raw)
		stream, got, err := DecodeSnapshot(mt, f.Body)
		if err != nil || stream != 6 || !bytes.Equal(got, blob) {
			t.Fatalf("DecodeSnapshot(%v) = %d, %q, %v", mt, stream, got, err)
		}
	}
}

func TestObserveRespAndErrorRoundTrip(t *testing.T) {
	f := parseOne(t, AppendObserveResp(nil, 2))
	if f.Type != MsgObserveResp || DecodeObserveResp(f.Body) != nil {
		t.Fatalf("observe-resp frame = %+v", f)
	}
	raw := AppendError(nil, 13, CodeOverloaded, 50, "queue full")
	ef := parseOne(t, raw)
	code, ms, msg, err := DecodeError(ef.Body)
	if err != nil || code != CodeOverloaded || ms != 50 || msg != "queue full" {
		t.Fatalf("DecodeError = %d, %d, %q, %v", code, ms, msg, err)
	}
}

func TestReaderStream(t *testing.T) {
	var wire []byte
	wire = AppendDecide(wire, 1, 0, sampleSpec())
	wire = AppendObserveResp(wire, 2)
	wire = AppendError(wire, 3, CodeUnavailable, 0, "draining")
	rd := NewReader(bytes.NewReader(wire))
	types := []MsgType{MsgDecide, MsgObserveResp, MsgError}
	for i, want := range types {
		f, err := rd.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Type != want || f.ID != uint64(i+1) {
			t.Fatalf("frame %d = %+v, want type %v id %d", i, f, want, i+1)
		}
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

func TestReaderTruncation(t *testing.T) {
	whole := AppendDecide(nil, 1, 0, sampleSpec())
	for cut := 1; cut < len(whole); cut++ {
		rd := NewReader(bytes.NewReader(whole[:cut]))
		if _, err := rd.Next(); err == nil {
			t.Fatalf("cut at %d: no error", cut)
		}
	}
}

func TestStrictness(t *testing.T) {
	bad := func(name string, data []byte) {
		t.Helper()
		if _, _, err := ParseFrame(data); err == nil {
			f, _, _ := ParseFrame(data)
			t.Fatalf("%s: parsed as %+v, want error", name, f)
		}
	}
	// Payload length below the frame header.
	bad("short payload length", []byte{5, 0, 0, 0, Version, 1, 0, 0, 0, 0, 0, 0, 0, 0})
	// Payload length above the cap.
	var huge [14]byte
	binary.LittleEndian.PutUint32(huge[:], MaxFrame+1)
	bad("oversized payload length", huge[:])

	// A valid frame with a corrupted objective byte must be rejected by
	// the typed decoder.
	raw := AppendDecide(nil, 1, 0, sampleSpec())
	raw[len(raw)-specLen] = 9
	f := parseOne(t, raw)
	if _, _, err := DecodeDecide(f.Body); err == nil {
		t.Fatal("bad objective byte accepted")
	}
	// Corrupted run-to-deadline byte.
	rraw := AppendDecideResp(nil, 1, sampleDecision(), sampleEstimate(), "")
	rraw[4+frameRest+decisionLen+12] = 7
	rf := parseOne(t, rraw)
	if _, _, _, err := DecodeDecideResp(rf.Body); err == nil {
		t.Fatal("bad run-to-deadline byte accepted")
	}
	// Batch whose count does not match its body.
	braw := AppendBatch(nil, 1, []alert.BatchRequest{{Stream: 1}})
	binary.LittleEndian.PutUint32(braw[4+frameRest:], 2)
	bf := parseOne(t, braw)
	if _, err := DecodeBatch(bf.Body, nil); err == nil {
		t.Fatal("count/body mismatch accepted")
	}
	// Empty batch.
	var empty []byte
	empty = beginFrame(empty, MsgBatch, 1)
	empty = binary.LittleEndian.AppendUint32(empty, 0)
	empty = endFrame(empty, 0)
	ef := parseOne(t, empty)
	if _, err := DecodeBatch(ef.Body, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	// Snapshot blob length overrunning the body.
	sraw := AppendSnapshot(nil, MsgImport, 1, 1, []byte("xy"))
	binary.LittleEndian.PutUint32(sraw[4+frameRest+8:], 3)
	sf := parseOne(t, sraw)
	if _, _, err := DecodeSnapshot(MsgImport, sf.Body); err == nil {
		t.Fatal("overrunning blob length accepted")
	}
	// Wrong body lengths for the fixed layouts.
	if _, _, err := DecodeDecide(make([]byte, decideLen-1)); err == nil {
		t.Fatal("short decide body accepted")
	}
	if _, _, err := DecodeObserve(make([]byte, observeLen+1)); err == nil {
		t.Fatal("long observe body accepted")
	}
	if _, err := DecodeStreamReq(MsgEvict, nil); err == nil {
		t.Fatal("empty evict body accepted")
	}
	if DecodeObserveResp([]byte{0}) == nil {
		t.Fatal("non-empty observe-resp body accepted")
	}
	if _, _, _, err := DecodeError([]byte{1}); err == nil {
		t.Fatal("short error body accepted")
	}
}

func TestNodeIDTooLongIsStillExact(t *testing.T) {
	// A 70k node id would overflow the uint16 length; the encoder is only
	// ever fed node ids from flags, but the decoder must stay exact if a
	// peer lies about the length.
	raw := AppendDecideResp(nil, 1, sampleDecision(), sampleEstimate(), strings.Repeat("n", 100))
	raw = raw[:len(raw)-1] // drop one byte of the name
	binary.LittleEndian.PutUint32(raw, uint32(len(raw)-4))
	f := parseOne(t, raw)
	if _, _, _, err := DecodeDecideResp(f.Body); err == nil {
		t.Fatal("truncated node id accepted")
	}
}

func TestEncodeDecodeZeroAlloc(t *testing.T) {
	spec := sampleSpec()
	buf := make([]byte, 0, 256)
	if n := testing.AllocsPerRun(100, func() {
		buf = AppendDecide(buf[:0], 1, 2, spec)
	}); n != 0 {
		t.Fatalf("AppendDecide allocates %.1f/op", n)
	}
	d, e := sampleDecision(), sampleEstimate()
	if n := testing.AllocsPerRun(100, func() {
		buf = AppendDecideResp(buf[:0], 1, d, e, "node-a")
	}); n != 0 {
		t.Fatalf("AppendDecideResp allocates %.1f/op", n)
	}

	// Reader.Next + DecodeDecide over a looping stream: the payload
	// buffer is reused, so the steady state is allocation-free.
	frame := AppendDecide(nil, 1, 2, spec)
	lr := &loopReader{data: frame}
	rd := NewReader(lr)
	if _, err := rd.Next(); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	if n := testing.AllocsPerRun(100, func() {
		f, err := rd.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if _, _, err := DecodeDecide(f.Body); err != nil {
			t.Fatalf("DecodeDecide: %v", err)
		}
	}); n != 0 {
		t.Fatalf("Reader.Next+DecodeDecide allocates %.1f/op", n)
	}
}

// loopReader replays the same bytes forever.
type loopReader struct {
	data []byte
	off  int
}

func (l *loopReader) Read(p []byte) (int, error) {
	if l.off == len(l.data) {
		l.off = 0
	}
	n := copy(p, l.data[l.off:])
	l.off += n
	return n, nil
}
