package binwire

import (
	"bytes"
	"errors"
	"testing"

	"github.com/alert-project/alert"
)

// FuzzBinaryFrame feeds arbitrary bytes to the frame parser and the
// typed decoders, checking the protocol's two safety properties:
//
//  1. No input panics or makes the parser read past what it was given.
//  2. Any accepted frame is a fixed point: decoding it and re-encoding
//     the result reproduces the input bytes exactly. Together with the
//     strict length/enum checks this means every logical message has
//     exactly one wire form — the same canonical-binary discipline
//     FuzzMembershipWire pins for the gossip payload.
func FuzzBinaryFrame(f *testing.F) {
	spec := alert.Spec{Objective: alert.MaximizeAccuracy, Deadline: 0.2, EnergyBudget: 9, AccuracyGoal: 0.9, Prth: 0.5}
	var d alert.Decision
	d.Model, d.Cap, d.CapW, d.PlannedStop, d.Overhead = 1, -1, 32.5, 0.1, 1e-6
	var e alert.Estimate
	e.Model, e.Cap, e.StopStage, e.RunToDeadline = 1, 2, -1, true
	e.LatMean, e.PrDeadline, e.Quality, e.PrQuality, e.Energy, e.PlannedStop = 0.05, 0.9, 0.8, 1, 2.5, 0.1
	fb := alert.Feedback{Decision: d, Latency: 0.07, CompletedStage: 3, IdlePowerW: 11}

	f.Add(AppendDecide(nil, 1, 5, spec))
	f.Add(AppendDecideResp(nil, 2, d, e, "n1"))
	f.Add(AppendObserve(nil, 3, 5, fb))
	f.Add(AppendObserveResp(nil, 4))
	f.Add(AppendBatch(nil, 5, []alert.BatchRequest{{Stream: 1, Spec: spec}, {Stream: 2, Spec: spec}}))
	f.Add(AppendBatchResp(nil, 6, []alert.BatchResult{{Stream: 1, Decision: d, Estimate: e}}))
	f.Add(AppendStreamReq(nil, MsgExport, 7, 9))
	f.Add(AppendSnapshot(nil, MsgImport, 8, 9, []byte("blob")))
	f.Add(AppendError(nil, 9, CodeOverloaded, 50, "queue full"))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add(AppendDecide(nil, 1, 5, spec)[:10])

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := ParseFrame(data)
		if err != nil {
			if errors.Is(err, ErrShortFrame) && len(data) >= 4+int(frameRest)+MaxFrame {
				t.Fatalf("%d bytes reported short", len(data))
			}
			return
		}
		if n < 4+frameRest || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if fr.Version != Version {
			return // structurally fine, but not ours to re-encode
		}
		frame := data[:n]
		var re []byte
		switch fr.Type {
		case MsgDecide:
			stream, spec, err := DecodeDecide(fr.Body)
			if err != nil {
				return
			}
			re = AppendDecide(nil, fr.ID, stream, spec)
		case MsgDecideResp:
			d, e, node, err := DecodeDecideResp(fr.Body)
			if err != nil {
				return
			}
			re = AppendDecideResp(nil, fr.ID, d, e, node)
		case MsgObserve:
			stream, fb, err := DecodeObserve(fr.Body)
			if err != nil {
				return
			}
			re = AppendObserve(nil, fr.ID, stream, fb)
		case MsgObserveResp:
			if DecodeObserveResp(fr.Body) != nil {
				return
			}
			re = AppendObserveResp(nil, fr.ID)
		case MsgBatch:
			reqs, err := DecodeBatch(fr.Body, nil)
			if err != nil {
				return
			}
			re = AppendBatch(nil, fr.ID, reqs)
		case MsgBatchResp:
			res, err := DecodeBatchResp(fr.Body, nil)
			if err != nil {
				return
			}
			re = AppendBatchResp(nil, fr.ID, res)
		case MsgExport, MsgCheckpoint, MsgEvict, MsgImportResp, MsgEvictResp:
			stream, err := DecodeStreamReq(fr.Type, fr.Body)
			if err != nil {
				return
			}
			re = AppendStreamReq(nil, fr.Type, fr.ID, stream)
		case MsgSnapshotResp, MsgImport:
			stream, blob, err := DecodeSnapshot(fr.Type, fr.Body)
			if err != nil {
				return
			}
			re = AppendSnapshot(nil, fr.Type, fr.ID, stream, blob)
		case MsgError:
			code, ms, msg, err := DecodeError(fr.Body)
			if err != nil {
				return
			}
			re = AppendError(nil, fr.ID, code, ms, msg)
		default:
			return // unknown type: parseable envelope, no typed layout
		}
		if !bytes.Equal(re, frame) {
			t.Fatalf("decode/re-encode is not a fixed point:\n in  %x\n out %x", frame, re)
		}
	})
}
