// Package binwire is the binary wire protocol of the serving layer: a
// versioned, length-prefixed framing for the same logical messages the
// HTTP/JSON API carries (decide, observe, decide-batch, the stream
// snapshot ops, and errors), designed for persistent TCP connections and
// a zero-allocation steady state.
//
// Every frame is
//
//	uint32  payload length (version byte through end of body)
//	byte    protocol version (Version)
//	byte    message type (MsgType)
//	uint64  request id (echoed verbatim in the response frame)
//	body    fixed-width little-endian layout per type
//
// All integers are little-endian; all float64 fields travel as their IEEE
// 754 bit patterns (math.Float64bits), the same canonical-binary
// discipline as core.SessionSnapshot — a decide request decoded from the
// wire is bit-identical to the one the client held, so decision sequences
// over this transport are byte-identical to the in-process path.
//
// Encoding is append-style into caller-owned buffers (GetBuf/PutBuf pool
// them); decoding aliases the input and never copies. The decoder is
// strict: it never panics, never reads past the declared payload, and
// rejects any body whose length or enum bytes deviate from the canonical
// encoding — an accepted frame always re-encodes to the exact same bytes
// (the FuzzBinaryFrame fixed point). The request id lets a client
// pipeline many requests on one connection and match responses by id
// rather than by order.
package binwire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"github.com/alert-project/alert"
)

// Version is the protocol version carried in every frame. A server
// answers a frame whose version it does not speak with an error frame
// naming its own version — that reply is the whole version negotiation.
const Version byte = 1

// MaxFrame bounds a frame's payload (version byte through body end),
// mirroring the HTTP front end's request-body cap so neither transport
// can be ballooned by one peer.
const MaxFrame = 8 << 20

// MsgType identifies a frame's body layout.
type MsgType byte

// Message types. Requests and responses are distinct types so a decoder
// never guesses a direction.
const (
	MsgDecide       MsgType = 1  // int64 stream + spec
	MsgDecideResp   MsgType = 2  // decision + estimate + node id string
	MsgObserve      MsgType = 3  // int64 stream + feedback
	MsgObserveResp  MsgType = 4  // empty
	MsgBatch        MsgType = 5  // uint32 count + count x (int64 stream + spec)
	MsgBatchResp    MsgType = 6  // uint32 count + count x (int64 stream + decision + estimate)
	MsgExport       MsgType = 7  // int64 stream
	MsgCheckpoint   MsgType = 8  // int64 stream
	MsgSnapshotResp MsgType = 9  // int64 stream + uint32 len + snapshot blob
	MsgImport       MsgType = 10 // int64 stream + uint32 len + snapshot blob
	MsgImportResp   MsgType = 11 // int64 stream
	MsgEvict        MsgType = 12 // int64 stream
	MsgEvictResp    MsgType = 13 // int64 stream
	MsgError        MsgType = 14 // uint16 code + int64 retry_after_ms + uint16 len + message
)

// Error codes carried by MsgError frames. They reuse the HTTP status
// numbers so the two transports share one overload vocabulary: 429/503
// carry a retry_after_ms hint and mean "shed before any state was
// touched, retry safely".
const (
	CodeBadRequest  uint16 = 400
	CodeNotFound    uint16 = 404
	CodeConflict    uint16 = 409
	CodeOverloaded  uint16 = 429
	CodeInternal    uint16 = 500
	CodeUnavailable uint16 = 503
)

// Fixed body-section sizes.
const (
	frameRest    = 1 + 1 + 8 // version + type + id, inside the payload
	specLen      = 1 + 4*8
	decisionLen  = 4 + 4 + 3*8
	estimateLen  = 4 + 4 + 4 + 1 + 6*8
	feedbackLen  = decisionLen + 8 + 4 + 8
	decideLen    = 8 + specLen
	observeLen   = 8 + feedbackLen
	respItemLen  = 8 + decisionLen + estimateLen
	errHeaderLen = 2 + 8 + 2
)

// objective wire bytes; any other byte is rejected.
const (
	objMinEnergy   byte = 0
	objMaxAccuracy byte = 1
)

// Frame is one parsed frame. Body aliases the buffer it was parsed from
// and is valid only until that buffer is reused.
type Frame struct {
	Version byte
	Type    MsgType
	ID      uint64
	Body    []byte
}

// ErrShortFrame reports that the input ends before the declared frame
// does — the caller should read more bytes and retry.
var ErrShortFrame = errors.New("binwire: short frame")

// ParseFrame parses one frame from the front of data, returning the frame
// and the bytes consumed. It returns ErrShortFrame (wrapped) when data is
// a prefix of a valid frame, and a fatal error for anything malformed;
// it never panics and never reads past the declared payload.
func ParseFrame(data []byte) (Frame, int, error) {
	var f Frame
	if len(data) < 4 {
		return f, 0, fmt.Errorf("%w: %d header bytes", ErrShortFrame, len(data))
	}
	n := binary.LittleEndian.Uint32(data)
	if n < frameRest {
		return f, 0, fmt.Errorf("binwire: payload length %d below the %d-byte frame header", n, frameRest)
	}
	if n > MaxFrame {
		return f, 0, fmt.Errorf("binwire: payload length %d exceeds the %d-byte frame cap", n, MaxFrame)
	}
	if uint32(len(data)-4) < n {
		return f, 0, fmt.Errorf("%w: %d of %d payload bytes", ErrShortFrame, len(data)-4, n)
	}
	f.Version = data[4]
	f.Type = MsgType(data[5])
	f.ID = binary.LittleEndian.Uint64(data[6:])
	f.Body = data[4+frameRest : 4+n]
	return f, int(4 + n), nil
}

// Reader reads frames from a stream, reusing one internal payload buffer:
// after the first few frames grow it, Next allocates nothing. The
// returned Frame's Body is valid only until the next call.
type Reader struct {
	r   io.Reader
	hdr [4]byte
	buf []byte
}

// NewReader wraps a stream (typically a net.Conn).
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Next reads one frame. io.EOF means a clean end between frames; any
// other error (including a frame exceeding MaxFrame) is fatal to the
// stream.
func (rd *Reader) Next() (Frame, error) {
	var f Frame
	if _, err := io.ReadFull(rd.r, rd.hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return f, fmt.Errorf("binwire: truncated frame header: %w", err)
		}
		return f, err
	}
	n := binary.LittleEndian.Uint32(rd.hdr[:])
	if n < frameRest {
		return f, fmt.Errorf("binwire: payload length %d below the %d-byte frame header", n, frameRest)
	}
	if n > MaxFrame {
		return f, fmt.Errorf("binwire: payload length %d exceeds the %d-byte frame cap", n, MaxFrame)
	}
	if uint32(cap(rd.buf)) < n {
		rd.buf = make([]byte, n)
	}
	buf := rd.buf[:n]
	if _, err := io.ReadFull(rd.r, buf); err != nil {
		return f, fmt.Errorf("binwire: truncated frame payload: %w", err)
	}
	f.Version = buf[0]
	f.Type = MsgType(buf[1])
	f.ID = binary.LittleEndian.Uint64(buf[2:])
	f.Body = buf[frameRest:]
	return f, nil
}

// bufPool recycles frame-assembly buffers; encode into (*GetBuf())[:0]
// and PutBuf when the frame has been written.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

// GetBuf returns a pooled frame-assembly buffer (length 0). Store the
// appended result back through the pointer before PutBuf so the pool
// keeps the grown capacity.
func GetBuf() *[]byte { return bufPool.Get().(*[]byte) }

// PutBuf returns a buffer to the pool.
func PutBuf(p *[]byte) {
	*p = (*p)[:0]
	bufPool.Put(p)
}

// beginFrame appends the frame header with a length placeholder; the
// caller appends the body and closes with endFrame(start).
func beginFrame(b []byte, t MsgType, id uint64) []byte {
	b = append(b, 0, 0, 0, 0)
	b = append(b, Version, byte(t))
	return binary.LittleEndian.AppendUint64(b, id)
}

// endFrame patches the length prefix of the frame opened at start.
func endFrame(b []byte, start int) []byte {
	binary.LittleEndian.PutUint32(b[start:], uint32(len(b)-start-4))
	return b
}

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func appendI32(b []byte, v int) []byte {
	return binary.LittleEndian.AppendUint32(b, uint32(int32(v)))
}

func appendI64(b []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(b, uint64(v))
}

func appendSpec(b []byte, s alert.Spec) []byte {
	o := objMinEnergy
	if s.Objective == alert.MaximizeAccuracy {
		o = objMaxAccuracy
	}
	b = append(b, o)
	b = appendF64(b, s.Deadline)
	b = appendF64(b, s.EnergyBudget)
	b = appendF64(b, s.AccuracyGoal)
	return appendF64(b, s.Prth)
}

func appendDecision(b []byte, d alert.Decision) []byte {
	b = appendI32(b, d.Model)
	b = appendI32(b, d.Cap)
	b = appendF64(b, d.CapW)
	b = appendF64(b, d.PlannedStop)
	return appendF64(b, d.Overhead)
}

func appendEstimate(b []byte, e alert.Estimate) []byte {
	b = appendI32(b, e.Model)
	b = appendI32(b, e.Cap)
	b = appendI32(b, e.StopStage)
	if e.RunToDeadline {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendF64(b, e.LatMean)
	b = appendF64(b, e.PrDeadline)
	b = appendF64(b, e.Quality)
	b = appendF64(b, e.PrQuality)
	b = appendF64(b, e.Energy)
	return appendF64(b, e.PlannedStop)
}

func appendFeedback(b []byte, f alert.Feedback) []byte {
	b = appendDecision(b, f.Decision)
	b = appendF64(b, f.Latency)
	b = appendI32(b, f.CompletedStage)
	return appendF64(b, f.IdlePowerW)
}

// AppendDecide appends a MsgDecide frame.
func AppendDecide(dst []byte, id uint64, stream int, spec alert.Spec) []byte {
	start := len(dst)
	b := beginFrame(dst, MsgDecide, id)
	b = appendI64(b, int64(stream))
	b = appendSpec(b, spec)
	return endFrame(b, start)
}

// AppendDecideResp appends a MsgDecideResp frame.
func AppendDecideResp(dst []byte, id uint64, d alert.Decision, e alert.Estimate, nodeID string) []byte {
	start := len(dst)
	b := beginFrame(dst, MsgDecideResp, id)
	b = appendDecision(b, d)
	b = appendEstimate(b, e)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(nodeID)))
	b = append(b, nodeID...)
	return endFrame(b, start)
}

// AppendObserve appends a MsgObserve frame.
func AppendObserve(dst []byte, id uint64, stream int, fb alert.Feedback) []byte {
	start := len(dst)
	b := beginFrame(dst, MsgObserve, id)
	b = appendI64(b, int64(stream))
	b = appendFeedback(b, fb)
	return endFrame(b, start)
}

// AppendObserveResp appends a (bodyless) MsgObserveResp frame.
func AppendObserveResp(dst []byte, id uint64) []byte {
	start := len(dst)
	return endFrame(beginFrame(dst, MsgObserveResp, id), start)
}

// AppendBatch appends a MsgBatch frame; reqs must be non-empty.
func AppendBatch(dst []byte, id uint64, reqs []alert.BatchRequest) []byte {
	start := len(dst)
	b := beginFrame(dst, MsgBatch, id)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(reqs)))
	for _, r := range reqs {
		b = appendI64(b, int64(r.Stream))
		b = appendSpec(b, r.Spec)
	}
	return endFrame(b, start)
}

// AppendBatchResp appends a MsgBatchResp frame.
func AppendBatchResp(dst []byte, id uint64, res []alert.BatchResult) []byte {
	start := len(dst)
	b := beginFrame(dst, MsgBatchResp, id)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(res)))
	for _, r := range res {
		b = appendI64(b, int64(r.Stream))
		b = appendDecision(b, r.Decision)
		b = appendEstimate(b, r.Estimate)
	}
	return endFrame(b, start)
}

// AppendStreamReq appends a stream-addressed request frame (MsgExport,
// MsgCheckpoint, or MsgEvict) or echo response (MsgImportResp,
// MsgEvictResp): the body is just the stream id.
func AppendStreamReq(dst []byte, t MsgType, id uint64, stream int) []byte {
	start := len(dst)
	b := beginFrame(dst, t, id)
	b = appendI64(b, int64(stream))
	return endFrame(b, start)
}

// AppendSnapshot appends a snapshot-carrying frame (MsgSnapshotResp or
// MsgImport): stream id plus the canonical binary session blob.
func AppendSnapshot(dst []byte, t MsgType, id uint64, stream int, blob []byte) []byte {
	start := len(dst)
	b := beginFrame(dst, t, id)
	b = appendI64(b, int64(stream))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(blob)))
	b = append(b, blob...)
	return endFrame(b, start)
}

// AppendError appends a MsgError frame. retryAfterMs > 0 is the backoff
// hint that rides 429/503 rejections, the binary twin of the HTTP
// Retry-After header and retry_after_ms body field.
func AppendError(dst []byte, id uint64, code uint16, retryAfterMs int64, msg string) []byte {
	start := len(dst)
	b := beginFrame(dst, MsgError, id)
	b = binary.LittleEndian.AppendUint16(b, code)
	b = appendI64(b, retryAfterMs)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(msg)))
	b = append(b, msg...)
	return endFrame(b, start)
}

func errLen(t MsgType, got, want int) error {
	return fmt.Errorf("binwire: %s body is %d bytes, want %d", typeName(t), got, want)
}

func typeName(t MsgType) string {
	switch t {
	case MsgDecide:
		return "decide"
	case MsgDecideResp:
		return "decide-resp"
	case MsgObserve:
		return "observe"
	case MsgObserveResp:
		return "observe-resp"
	case MsgBatch:
		return "batch"
	case MsgBatchResp:
		return "batch-resp"
	case MsgExport:
		return "export"
	case MsgCheckpoint:
		return "checkpoint"
	case MsgSnapshotResp:
		return "snapshot-resp"
	case MsgImport:
		return "import"
	case MsgImportResp:
		return "import-resp"
	case MsgEvict:
		return "evict"
	case MsgEvictResp:
		return "evict-resp"
	case MsgError:
		return "error"
	default:
		return fmt.Sprintf("type-%d", byte(t))
	}
}

func getF64(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func getI32(b []byte) int {
	return int(int32(binary.LittleEndian.Uint32(b)))
}

func getI64(b []byte) int64 {
	return int64(binary.LittleEndian.Uint64(b))
}

func decodeSpec(b []byte) (alert.Spec, error) {
	var s alert.Spec
	switch b[0] {
	case objMinEnergy:
		s.Objective = alert.MinimizeEnergy
	case objMaxAccuracy:
		s.Objective = alert.MaximizeAccuracy
	default:
		return s, fmt.Errorf("binwire: unknown objective byte %d", b[0])
	}
	s.Deadline = getF64(b[1:])
	s.EnergyBudget = getF64(b[9:])
	s.AccuracyGoal = getF64(b[17:])
	s.Prth = getF64(b[25:])
	return s, nil
}

func decodeDecision(b []byte) alert.Decision {
	return alert.Decision{
		Model:       getI32(b),
		Cap:         getI32(b[4:]),
		CapW:        getF64(b[8:]),
		PlannedStop: getF64(b[16:]),
		Overhead:    getF64(b[24:]),
	}
}

func decodeEstimate(b []byte) (alert.Estimate, error) {
	var e alert.Estimate
	e.Model = getI32(b)
	e.Cap = getI32(b[4:])
	e.StopStage = getI32(b[8:])
	switch b[12] {
	case 0:
	case 1:
		e.RunToDeadline = true
	default:
		return e, fmt.Errorf("binwire: run-to-deadline byte %d is not 0 or 1", b[12])
	}
	e.LatMean = getF64(b[13:])
	e.PrDeadline = getF64(b[21:])
	e.Quality = getF64(b[29:])
	e.PrQuality = getF64(b[37:])
	e.Energy = getF64(b[45:])
	e.PlannedStop = getF64(b[53:])
	return e, nil
}

func decodeFeedback(b []byte) alert.Feedback {
	return alert.Feedback{
		Decision:       decodeDecision(b),
		Latency:        getF64(b[decisionLen:]),
		CompletedStage: getI32(b[decisionLen+8:]),
		IdlePowerW:     getF64(b[decisionLen+12:]),
	}
}

// DecodeDecide decodes a MsgDecide body.
func DecodeDecide(body []byte) (stream int, spec alert.Spec, err error) {
	if len(body) != decideLen {
		return 0, spec, errLen(MsgDecide, len(body), decideLen)
	}
	spec, err = decodeSpec(body[8:])
	return int(getI64(body)), spec, err
}

// DecodeDecideResp decodes a MsgDecideResp body. The node id string is
// the response's only allocation.
func DecodeDecideResp(body []byte) (alert.Decision, alert.Estimate, string, error) {
	const fixed = decisionLen + estimateLen + 2
	if len(body) < fixed {
		return alert.Decision{}, alert.Estimate{}, "", errLen(MsgDecideResp, len(body), fixed)
	}
	d := decodeDecision(body)
	e, err := decodeEstimate(body[decisionLen:])
	if err != nil {
		return d, e, "", err
	}
	n := int(binary.LittleEndian.Uint16(body[decisionLen+estimateLen:]))
	if len(body) != fixed+n {
		return d, e, "", fmt.Errorf("binwire: decide-resp node id declares %d bytes, %d remain", n, len(body)-fixed)
	}
	return d, e, string(body[fixed:]), nil
}

// DecodeObserve decodes a MsgObserve body.
func DecodeObserve(body []byte) (int, alert.Feedback, error) {
	if len(body) != observeLen {
		return 0, alert.Feedback{}, errLen(MsgObserve, len(body), observeLen)
	}
	return int(getI64(body)), decodeFeedback(body[8:]), nil
}

// DecodeBatch decodes a MsgBatch body, appending the requests to into
// (pass a reused into[:0] for an allocation-free steady state once it
// has grown).
func DecodeBatch(body []byte, into []alert.BatchRequest) ([]alert.BatchRequest, error) {
	if len(body) < 4 {
		return into, errLen(MsgBatch, len(body), 4)
	}
	count := binary.LittleEndian.Uint32(body)
	if count == 0 {
		return into, errors.New("binwire: empty batch")
	}
	if uint64(len(body)-4) != uint64(count)*decideLen {
		return into, fmt.Errorf("binwire: batch declares %d requests, body carries %d bytes", count, len(body)-4)
	}
	b := body[4:]
	for i := uint32(0); i < count; i++ {
		spec, err := decodeSpec(b[8:])
		if err != nil {
			return into, fmt.Errorf("binwire: batch request %d: %w", i, err)
		}
		into = append(into, alert.BatchRequest{Stream: int(getI64(b)), Spec: spec})
		b = b[decideLen:]
	}
	return into, nil
}

// DecodeBatchResp decodes a MsgBatchResp body, appending results to into.
func DecodeBatchResp(body []byte, into []alert.BatchResult) ([]alert.BatchResult, error) {
	if len(body) < 4 {
		return into, errLen(MsgBatchResp, len(body), 4)
	}
	count := binary.LittleEndian.Uint32(body)
	if uint64(len(body)-4) != uint64(count)*respItemLen {
		return into, fmt.Errorf("binwire: batch-resp declares %d results, body carries %d bytes", count, len(body)-4)
	}
	b := body[4:]
	for i := uint32(0); i < count; i++ {
		est, err := decodeEstimate(b[8+decisionLen:])
		if err != nil {
			return into, fmt.Errorf("binwire: batch-resp result %d: %w", i, err)
		}
		into = append(into, alert.BatchResult{
			Stream:   int(getI64(b)),
			Decision: decodeDecision(b[8:]),
			Estimate: est,
		})
		b = b[respItemLen:]
	}
	return into, nil
}

// DecodeStreamReq decodes a stream-id-only body (MsgExport,
// MsgCheckpoint, MsgEvict, MsgImportResp, MsgEvictResp).
func DecodeStreamReq(t MsgType, body []byte) (int, error) {
	if len(body) != 8 {
		return 0, errLen(t, len(body), 8)
	}
	return int(getI64(body)), nil
}

// DecodeObserveResp validates a MsgObserveResp body (it carries nothing).
func DecodeObserveResp(body []byte) error {
	if len(body) != 0 {
		return errLen(MsgObserveResp, len(body), 0)
	}
	return nil
}

// DecodeSnapshot decodes a snapshot-carrying body (MsgSnapshotResp or
// MsgImport). The blob aliases body.
func DecodeSnapshot(t MsgType, body []byte) (int, []byte, error) {
	if len(body) < 12 {
		return 0, nil, errLen(t, len(body), 12)
	}
	n := binary.LittleEndian.Uint32(body[8:])
	if uint64(len(body)-12) != uint64(n) {
		return 0, nil, fmt.Errorf("binwire: %s declares a %d-byte snapshot, %d remain", typeName(t), n, len(body)-12)
	}
	return int(getI64(body)), body[12:], nil
}

// DecodeError decodes a MsgError body.
func DecodeError(body []byte) (code uint16, retryAfterMs int64, msg string, err error) {
	if len(body) < errHeaderLen {
		return 0, 0, "", errLen(MsgError, len(body), errHeaderLen)
	}
	code = binary.LittleEndian.Uint16(body)
	retryAfterMs = getI64(body[2:])
	n := int(binary.LittleEndian.Uint16(body[10:]))
	if len(body) != errHeaderLen+n {
		return 0, 0, "", fmt.Errorf("binwire: error message declares %d bytes, %d remain", n, len(body)-errHeaderLen)
	}
	return code, retryAfterMs, string(body[errHeaderLen:]), nil
}
