package rapl

import (
	"fmt"
	"path"
	"strings"
	"testing"
)

// fakeFS is an in-memory sysfs tree.
type fakeFS struct {
	files    map[string]string
	readOnly map[string]bool
	writes   int
}

func newFakeFS() *fakeFS {
	return &fakeFS{files: map[string]string{}, readOnly: map[string]bool{}}
}

func (f *fakeFS) ReadFile(name string) ([]byte, error) {
	v, ok := f.files[name]
	if !ok {
		return nil, fmt.Errorf("no such file: %s", name)
	}
	return []byte(v), nil
}

func (f *fakeFS) WriteFile(name string, data []byte) error {
	if f.readOnly[name] {
		return fmt.Errorf("permission denied: %s", name)
	}
	if _, ok := f.files[name]; !ok {
		return fmt.Errorf("no such file: %s", name)
	}
	f.files[name] = string(data)
	f.writes++
	return nil
}

func (f *fakeFS) Glob(pattern string) ([]string, error) {
	// Supports the single trailing-* pattern Discover uses.
	prefix := strings.TrimSuffix(pattern, "*")
	seen := map[string]bool{}
	var out []string
	for name := range f.files {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		rest := strings.TrimPrefix(name, path.Dir(prefix)+"/")
		dir := strings.SplitN(rest, "/", 2)[0]
		full := path.Join(path.Dir(prefix), dir)
		if !seen[full] {
			seen[full] = true
			out = append(out, full)
		}
	}
	return out, nil
}

// addDomain installs a standard powercap domain into the fake tree.
func (f *fakeFS) addDomain(dir, name string, maxPowerUW, maxRangeUJ, energyUJ uint64) {
	f.files[path.Join(dir, "name")] = name + "\n"
	f.files[path.Join(dir, "constraint_0_power_limit_uw")] = fmt.Sprint(maxPowerUW)
	f.files[path.Join(dir, "constraint_0_max_power_uw")] = fmt.Sprint(maxPowerUW)
	f.files[path.Join(dir, "max_energy_range_uj")] = fmt.Sprint(maxRangeUJ)
	f.files[path.Join(dir, "energy_uj")] = fmt.Sprint(energyUJ)
	f.files[path.Join(dir, "enabled")] = "1"
}

func standardTree() *fakeFS {
	fs := newFakeFS()
	fs.addDomain("/sys/class/powercap/intel-rapl:0", "package-0", 100_000_000, 262143328850, 1_000_000)
	fs.addDomain("/sys/class/powercap/intel-rapl:0:0", "core", 0, 262143328850, 500_000)
	fs.addDomain("/sys/class/powercap/intel-rapl:1", "package-1", 100_000_000, 262143328850, 2_000_000)
	return fs
}

func TestDiscover(t *testing.T) {
	fs := standardTree()
	domains, err := Discover(fs, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(domains) != 3 {
		t.Fatalf("found %d domains", len(domains))
	}
	pkgs := Packages(domains)
	if len(pkgs) != 2 {
		t.Fatalf("found %d packages", len(pkgs))
	}
	if pkgs[0].Name != "package-0" || pkgs[0].MaxPowerUW != 100_000_000 {
		t.Errorf("package-0 parsed wrong: %+v", pkgs[0])
	}
	if pkgs[0].MaxEnergyRangeUJ != 262143328850 {
		t.Errorf("energy range wrong: %d", pkgs[0].MaxEnergyRangeUJ)
	}
}

func TestDiscoverEmpty(t *testing.T) {
	if _, err := Discover(newFakeFS(), ""); err == nil {
		t.Error("expected error for empty tree")
	}
}

func TestActuatorSetAndReadCap(t *testing.T) {
	fs := standardTree()
	domains, _ := Discover(fs, "")
	a := NewActuator(fs, Packages(domains)[0])

	if err := a.SetCapWatts(45); err != nil {
		t.Fatal(err)
	}
	got, err := a.CapWatts()
	if err != nil {
		t.Fatal(err)
	}
	if got != 45 {
		t.Errorf("cap = %gW", got)
	}
	// Hardware max is 100 W; beyond it must fail without a write.
	writes := fs.writes
	if err := a.SetCapWatts(150); err == nil {
		t.Error("expected error above hardware max")
	}
	if err := a.SetCapWatts(-1); err == nil {
		t.Error("expected error for negative cap")
	}
	if fs.writes != writes {
		t.Error("rejected caps must not touch sysfs")
	}
}

func TestActuatorPermissionDenied(t *testing.T) {
	fs := standardTree()
	domains, _ := Discover(fs, "")
	dom := Packages(domains)[0]
	fs.readOnly[path.Join(dom.Path, "constraint_0_power_limit_uw")] = true
	a := NewActuator(fs, dom)
	if err := a.SetCapWatts(40); err == nil {
		t.Error("expected permission error to propagate")
	}
}

func TestActuatorEnableToggle(t *testing.T) {
	fs := standardTree()
	domains, _ := Discover(fs, "")
	a := NewActuator(fs, Packages(domains)[0])
	on, err := a.Enabled()
	if err != nil || !on {
		t.Fatalf("enabled = %v, %v", on, err)
	}
	if err := a.SetEnabled(false); err != nil {
		t.Fatal(err)
	}
	if on, _ = a.Enabled(); on {
		t.Error("disable did not stick")
	}
}

func TestMeterDelta(t *testing.T) {
	fs := standardTree()
	domains, _ := Discover(fs, "")
	dom := Packages(domains)[0]
	m := NewMeter(fs, dom)

	// First call arms the meter.
	d, err := m.DeltaJoules()
	if err != nil || d != 0 {
		t.Fatalf("first delta = %g, %v", d, err)
	}
	fs.files[path.Join(dom.Path, "energy_uj")] = "3500000" // +2.5 J
	d, err = m.DeltaJoules()
	if err != nil {
		t.Fatal(err)
	}
	if d != 2.5 {
		t.Errorf("delta = %g, want 2.5", d)
	}
}

func TestMeterWraparound(t *testing.T) {
	fs := standardTree()
	domains, _ := Discover(fs, "")
	dom := Packages(domains)[0]
	m := NewMeter(fs, dom)

	// Arm near the top of the counter range.
	near := dom.MaxEnergyRangeUJ - 1_000_000
	fs.files[path.Join(dom.Path, "energy_uj")] = fmt.Sprint(near)
	if _, err := m.DeltaJoules(); err != nil {
		t.Fatal(err)
	}
	// Counter wraps: 1 J to the top, 0.5 J past it.
	fs.files[path.Join(dom.Path, "energy_uj")] = "500000"
	d, err := m.DeltaJoules()
	if err != nil {
		t.Fatal(err)
	}
	if d != 1.5 {
		t.Errorf("wrapped delta = %g, want 1.5", d)
	}
}

func TestMeterWrapWithoutRangeErrors(t *testing.T) {
	fs := standardTree()
	domains, _ := Discover(fs, "")
	dom := Packages(domains)[0]
	dom.MaxEnergyRangeUJ = 0
	m := NewMeter(fs, dom)
	fs.files[path.Join(dom.Path, "energy_uj")] = "100"
	if _, err := m.DeltaJoules(); err != nil {
		t.Fatal(err)
	}
	fs.files[path.Join(dom.Path, "energy_uj")] = "50"
	if _, err := m.DeltaJoules(); err == nil {
		t.Error("wrap without a known range must error, not fabricate energy")
	}
}

func TestMeterReset(t *testing.T) {
	fs := standardTree()
	domains, _ := Discover(fs, "")
	dom := Packages(domains)[0]
	m := NewMeter(fs, dom)
	if _, err := m.DeltaJoules(); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	fs.files[path.Join(dom.Path, "energy_uj")] = "99000000"
	// After a reset the first reading is an arm, not a delta.
	if d, _ := m.DeltaJoules(); d != 0 {
		t.Errorf("post-reset delta = %g, want 0", d)
	}
}

func TestReadUintParseError(t *testing.T) {
	fs := standardTree()
	fs.files["/sys/class/powercap/intel-rapl:0/energy_uj"] = "not-a-number"
	domains, _ := Discover(fs, "")
	m := NewMeter(fs, Packages(domains)[0])
	if _, err := m.DeltaJoules(); err == nil {
		t.Error("expected parse error")
	}
}
