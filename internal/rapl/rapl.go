// Package rapl drives Intel's Running Average Power Limit interface through
// the Linux powercap sysfs tree (/sys/class/powercap/intel-rapl*), the
// mechanism ALERT uses to actuate power caps on CPU platforms (§4, citing
// David et al.'s RAPL paper).
//
// Two capabilities matter to the runtime:
//
//   - setting a package power limit (constraint_0_power_limit_uw), which is
//     the system-level knob of ALERT's joint configuration space, and
//   - reading the monotonically increasing energy counter (energy_uj),
//     which — differenced per input and combined with the inference-idle
//     window — yields the measured energy that feeds back into the
//     controller.
//
// The package is written against a small filesystem interface so the sysfs
// protocol (unit conversions, counter wraparound at max_energy_range_uj,
// write permission failures) is fully testable without root or Intel
// hardware; the simulation substrate stands in for RAPL in the experiment
// harness, and OSFS binds this package to the real tree on deployment.
package rapl

import (
	"fmt"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// FS is the filesystem surface RAPL needs. Only absolute paths are used.
type FS interface {
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte) error
	Glob(pattern string) ([]string, error)
}

// OSFS implements FS against the real filesystem.
type OSFS struct{}

// ReadFile implements FS.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// WriteFile implements FS. Sysfs attribute files must not be created, only
// overwritten, hence the 0 permission bits.
func (OSFS) WriteFile(name string, data []byte) error {
	return os.WriteFile(name, data, 0o644)
}

// Glob implements FS.
func (OSFS) Glob(pattern string) ([]string, error) { return filepath.Glob(pattern) }

// DefaultRoot is the standard powercap mount point.
const DefaultRoot = "/sys/class/powercap"

// Domain is one RAPL control domain (a package, or a subdomain like core /
// uncore / dram).
type Domain struct {
	// Path is the sysfs directory of the domain.
	Path string
	// Name is the domain's self-reported name ("package-0", "dram", ...).
	Name string
	// MaxPowerUW is the hardware's maximum settable limit in microwatts;
	// 0 when the attribute is absent.
	MaxPowerUW uint64
	// MaxEnergyRangeUJ is the wraparound modulus of the energy counter.
	MaxEnergyRangeUJ uint64
}

// IsPackage reports whether the domain is a whole-package domain — the
// granularity ALERT caps at.
func (d Domain) IsPackage() bool { return strings.HasPrefix(d.Name, "package-") }

// Discover enumerates RAPL domains under root (DefaultRoot when empty).
func Discover(fsys FS, root string) ([]Domain, error) {
	if root == "" {
		root = DefaultRoot
	}
	dirs, err := fsys.Glob(path.Join(root, "intel-rapl*"))
	if err != nil {
		return nil, fmt.Errorf("rapl: glob: %w", err)
	}
	var domains []Domain
	for _, dir := range dirs {
		nameB, err := fsys.ReadFile(path.Join(dir, "name"))
		if err != nil {
			continue // control-type node or inaccessible domain
		}
		d := Domain{Path: dir, Name: strings.TrimSpace(string(nameB))}
		if v, err := readUint(fsys, path.Join(dir, "constraint_0_max_power_uw")); err == nil {
			d.MaxPowerUW = v
		}
		if v, err := readUint(fsys, path.Join(dir, "max_energy_range_uj")); err == nil {
			d.MaxEnergyRangeUJ = v
		}
		domains = append(domains, d)
	}
	sort.Slice(domains, func(i, j int) bool { return domains[i].Path < domains[j].Path })
	if len(domains) == 0 {
		return nil, fmt.Errorf("rapl: no domains under %s", root)
	}
	return domains, nil
}

// Packages filters a domain list down to package domains.
func Packages(domains []Domain) []Domain {
	var out []Domain
	for _, d := range domains {
		if d.IsPackage() {
			out = append(out, d)
		}
	}
	return out
}

// Actuator sets power limits on one domain.
type Actuator struct {
	fsys FS
	dom  Domain
}

// NewActuator binds an actuator to a domain.
func NewActuator(fsys FS, dom Domain) *Actuator { return &Actuator{fsys: fsys, dom: dom} }

// Domain returns the bound domain.
func (a *Actuator) Domain() Domain { return a.dom }

// SetCapWatts writes the long-term (constraint 0) power limit. Requests
// above the hardware maximum or non-positive requests are rejected before
// touching sysfs.
func (a *Actuator) SetCapWatts(w float64) error {
	if w <= 0 {
		return fmt.Errorf("rapl: non-positive cap %g", w)
	}
	uw := uint64(w * 1e6)
	if a.dom.MaxPowerUW > 0 && uw > a.dom.MaxPowerUW {
		return fmt.Errorf("rapl: cap %gW exceeds hardware max %gW",
			w, float64(a.dom.MaxPowerUW)/1e6)
	}
	p := path.Join(a.dom.Path, "constraint_0_power_limit_uw")
	if err := a.fsys.WriteFile(p, []byte(strconv.FormatUint(uw, 10))); err != nil {
		return fmt.Errorf("rapl: set cap: %w", err)
	}
	return nil
}

// CapWatts reads back the currently applied limit.
func (a *Actuator) CapWatts() (float64, error) {
	v, err := readUint(a.fsys, path.Join(a.dom.Path, "constraint_0_power_limit_uw"))
	if err != nil {
		return 0, fmt.Errorf("rapl: read cap: %w", err)
	}
	return float64(v) / 1e6, nil
}

// Enabled reports whether capping is enabled on the domain.
func (a *Actuator) Enabled() (bool, error) {
	v, err := readUint(a.fsys, path.Join(a.dom.Path, "enabled"))
	if err != nil {
		return false, fmt.Errorf("rapl: read enabled: %w", err)
	}
	return v != 0, nil
}

// SetEnabled toggles capping on the domain.
func (a *Actuator) SetEnabled(on bool) error {
	v := "0"
	if on {
		v = "1"
	}
	if err := a.fsys.WriteFile(path.Join(a.dom.Path, "enabled"), []byte(v)); err != nil {
		return fmt.Errorf("rapl: set enabled: %w", err)
	}
	return nil
}

// Meter reads a domain's energy counter and produces per-interval joule
// deltas, handling the hardware counter's wraparound.
type Meter struct {
	fsys FS
	dom  Domain

	last    uint64
	started bool
}

// NewMeter binds a meter to a domain.
func NewMeter(fsys FS, dom Domain) *Meter { return &Meter{fsys: fsys, dom: dom} }

// ReadMicrojoules returns the raw counter.
func (m *Meter) ReadMicrojoules() (uint64, error) {
	v, err := readUint(m.fsys, path.Join(m.dom.Path, "energy_uj"))
	if err != nil {
		return 0, fmt.Errorf("rapl: read energy: %w", err)
	}
	return v, nil
}

// DeltaJoules returns the energy consumed since the previous call (or since
// the first call, which returns 0 and arms the meter). Counter wraparound
// is unwrapped against max_energy_range_uj.
func (m *Meter) DeltaJoules() (float64, error) {
	cur, err := m.ReadMicrojoules()
	if err != nil {
		return 0, err
	}
	if !m.started {
		m.started = true
		m.last = cur
		return 0, nil
	}
	var deltaUJ uint64
	if cur >= m.last {
		deltaUJ = cur - m.last
	} else {
		if m.dom.MaxEnergyRangeUJ == 0 {
			return 0, fmt.Errorf("rapl: counter wrapped but max_energy_range_uj unknown")
		}
		deltaUJ = m.dom.MaxEnergyRangeUJ - m.last + cur
	}
	m.last = cur
	return float64(deltaUJ) / 1e6, nil
}

// Reset disarms the meter; the next DeltaJoules re-arms at the current
// counter value.
func (m *Meter) Reset() { m.started = false }

func readUint(fsys FS, p string) (uint64, error) {
	b, err := fsys.ReadFile(p)
	if err != nil {
		return 0, err
	}
	s := strings.TrimSpace(string(b))
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("parse %s: %w", p, err)
	}
	return v, nil
}
