// Package baselines implements every scheduling scheme Table 3 evaluates
// against ALERT: the two oracles (dynamic and static), the single-layer
// adaptation baselines (App-only, Sys-only), the uncoordinated combination
// (No-coord), and the ALERT variants (ALERT-Any, ALERT-Trad, and the
// mean-only ablation ALERT*).
package baselines

import (
	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/runner"
	"github.com/alert-project/alert/internal/sim"
	"github.com/alert-project/alert/internal/workload"
)

// Alert adapts a core session to the runner's Scheduler interface.
// The same wrapper serves the ALERT, ALERT-Any, ALERT-Trad and ALERT*
// schemes — they differ only in candidate set and options, decided by the
// profile table and options handed to the constructor.
type Alert struct {
	name string
	sess *core.Session
	spec core.Spec
}

// NewAlert builds the scheme over an already-profiled candidate set: a
// fresh engine with a single session. Schemes sharing a (profile, options)
// pair can instead share an engine via NewAlertSession.
func NewAlert(name string, prof *dnn.ProfileTable, spec core.Spec, opts core.Options) *Alert {
	return NewAlertSession(name, core.NewEngine(prof, opts).NewSession(), spec)
}

// NewAlertSession wraps an existing session (e.g. one of many on a shared
// engine) as a runner scheme.
func NewAlertSession(name string, sess *core.Session, spec core.Spec) *Alert {
	return &Alert{name: name, sess: sess, spec: spec}
}

// Name implements runner.Scheduler.
func (a *Alert) Name() string { return a.name }

// SetSpec implements runner.SpecSetter: scenario spec churn retargets the
// scheme's requirement mid-stream. The Kalman filter state is
// deliberately kept — the environment did not change, only the goal.
func (a *Alert) SetSpec(spec core.Spec) { a.spec = spec }

// Session exposes the wrapped session for trace instrumentation.
func (a *Alert) Session() *core.Session { return a.sess }

// Decide implements runner.Scheduler: the nominal spec with the adjusted
// per-input goal substituted in.
func (a *Alert) Decide(_ *sim.Env, _ workload.Input, goal float64) sim.Decision {
	s := a.spec
	s.Deadline = goal
	d, _ := a.sess.Decide(s)
	return d
}

// Observe implements runner.Scheduler.
func (a *Alert) Observe(_ workload.Input, _ sim.Decision, out sim.Outcome) {
	a.sess.Observe(out)
}

var _ runner.Scheduler = (*Alert)(nil)
