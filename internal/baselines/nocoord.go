package baselines

import (
	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/kalman"
	"github.com/alert-project/alert/internal/runner"
	"github.com/alert-project/alert/internal/sim"
	"github.com/alert-project/alert/internal/workload"
)

// NoCoord combines application-level and system-level adaptation *without*
// coordination (§5.1): the anytime DNN plans its early-stop against the
// default-power profile while, independently, a [63]-style power controller
// moves the cap underneath it. Each layer keeps its own model of the world
// and neither sees the other's actuation, so "the two levels can work at
// cross purposes; e.g., the application switches to a faster DNN to save
// energy while the system makes more power available" — Table 4 shows it
// losing to both single-layer schemes.
type NoCoord struct {
	prof  *dnn.ProfileTable
	spec  core.Spec
	model int

	// System layer state: Kalman latency tracking against the *current*
	// cap's profile, like SysOnly.
	sysXi   *kalman.XiFilter
	sysIdle *kalman.IdlePowerFilter

	// Application layer state: an EWMA slowdown estimate computed against
	// the default-power profile — the app has no idea the cap moved, so
	// cap-induced slowdown is misattributed to the environment with a lag.
	appSlowdown float64
}

// NewNoCoord builds the uncoordinated scheme over an anytime candidate set.
func NewNoCoord(prof *dnn.ProfileTable, spec core.Spec) *NoCoord {
	idx := -1
	for i, m := range prof.Models {
		if m.IsAnytime() {
			idx = i
			break
		}
	}
	if idx < 0 {
		idx = prof.ModelIndex(dnn.MostAccurate(prof.Models).Name)
	}
	return &NoCoord{
		prof:        prof,
		spec:        spec,
		model:       idx,
		sysXi:       kalman.NewXiFilter(kalman.DefaultXiParams()),
		sysIdle:     kalman.NewIdlePowerFilter(kalman.DefaultIdleParams()),
		appSlowdown: 1,
	}
}

// Name implements runner.Scheduler.
func (n *NoCoord) Name() string { return "No-coord" }

// SetSpec implements runner.SpecSetter (scenario spec churn). Both
// uncoordinated layers see the new requirement, as they would via the same
// user-facing knob, but still not each other.
func (n *NoCoord) SetSpec(spec core.Spec) { n.spec = spec }

// Decide implements runner.Scheduler.
func (n *NoCoord) Decide(_ *sim.Env, _ workload.Input, goal float64) sim.Decision {
	m := n.prof.Models[n.model]

	// System layer: cheapest cap whose predicted full-ladder latency meets
	// the goal. It assumes the application will run the network to
	// completion — it has no channel to learn otherwise.
	mu := n.sysXi.Mean()
	phi := n.sysIdle.Ratio()
	capIdx, capSet := 0, false
	var bestEnergy float64
	for j := 0; j < n.prof.NumCaps(); j++ {
		power := n.prof.PowerAt(n.model, j)
		lat := mu * n.prof.At(n.model, j)
		if lat > goal {
			continue
		}
		energy := power*lat + phi*power*(goal-lat)
		if n.spec.Objective == core.MaximizeAccuracy &&
			n.spec.EnergyBudget > 0 && energy > n.spec.EnergyBudget {
			continue
		}
		if !capSet || energy < bestEnergy {
			capIdx, bestEnergy, capSet = j, energy, true
		}
	}
	if !capSet {
		capIdx = n.prof.NumCaps() - 1
	}

	d := sim.Decision{Model: n.model, Cap: capIdx}
	if !m.IsAnytime() {
		return d
	}

	// Application layer: plan the stop stage against the DEFAULT power
	// profile — the defining blind spot. If the system just lowered the
	// cap, real latency exceeds this plan and stages get cut; if the cap
	// went up, the app stops earlier than it needed to.
	defaultCap := n.prof.CapIndex(n.prof.Platform.DefaultCap)
	tFullDefault := n.prof.At(n.model, defaultCap)
	stop := goal
	for k := len(m.Stages) - 1; k >= 0; k-- {
		planned := n.appSlowdown * tFullDefault * m.Stages[k].LatencyFrac
		if planned <= goal {
			stop = planned
			break
		}
	}
	d.PlannedStop = stop
	return d
}

// Observe implements runner.Scheduler. Each layer updates its own model
// from the same measurement, attributing it differently.
func (n *NoCoord) Observe(_ workload.Input, d sim.Decision, out sim.Outcome) {
	n.sysXi.Observe(out.ObservedXi)
	if out.CapApplied > 0 {
		n.sysIdle.Observe(out.IdlePower / out.CapApplied)
	}
	// The app compares measured latency against the default-cap profile of
	// the portion it ran, so the cap's slowdown contaminates its estimate.
	defaultCap := n.prof.CapIndex(n.prof.Platform.DefaultCap)
	m := n.prof.Models[n.model]
	frac := 1.0
	if m.IsAnytime() && out.Stage >= 0 {
		frac = m.Stages[out.Stage].LatencyFrac
	}
	nominal := n.prof.At(n.model, defaultCap) * frac
	if nominal > 0 && out.Latency > 0 {
		obs := out.Latency / nominal
		const beta = 0.3
		n.appSlowdown = (1-beta)*n.appSlowdown + beta*obs
	}
}

var _ runner.Scheduler = (*NoCoord)(nil)
