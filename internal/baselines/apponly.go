package baselines

import (
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/runner"
	"github.com/alert-project/alert/internal/sim"
	"github.com/alert-project/alert/internal/workload"
)

// AppOnly is the system-oblivious baseline (§5.1): it runs the anytime DNN
// at the system's default power setting (the uncapped maximum) and simply
// delivers whatever output stage is ready when the deadline arrives — the
// standard anytime-inference deployment of the paper's citation [5].
//
// The anytime ladder makes it robust to latency constraints (it meets every
// deadline some output can fit), but it is blind to energy: the cap never
// moves, so it burns the full budget regardless of need — the "60 % more
// energy than Combined" pathology of §2.3.
type AppOnly struct {
	prof  *dnn.ProfileTable
	model int
}

// NewAppOnly builds the baseline. The model is the first anytime candidate
// (its companion schemes are given anytime-only candidate sets); an
// all-traditional set falls back to the most accurate model, preserving the
// "application adapts, system does not" structure.
func NewAppOnly(prof *dnn.ProfileTable) *AppOnly {
	idx := -1
	for i, m := range prof.Models {
		if m.IsAnytime() {
			idx = i
			break
		}
	}
	if idx < 0 {
		idx = prof.ModelIndex(dnn.MostAccurate(prof.Models).Name)
	}
	return &AppOnly{prof: prof, model: idx}
}

// Name implements runner.Scheduler.
func (a *AppOnly) Name() string { return "App-only" }

// Decide implements runner.Scheduler: the system's default power setting,
// run to the deadline.
func (a *AppOnly) Decide(_ *sim.Env, _ workload.Input, goal float64) sim.Decision {
	d := sim.Decision{Model: a.model, Cap: a.prof.CapIndex(a.prof.Platform.DefaultCap)}
	if a.prof.Models[a.model].IsAnytime() {
		d.PlannedStop = goal
	}
	return d
}

// Observe implements runner.Scheduler; the scheme is open-loop.
func (a *AppOnly) Observe(workload.Input, sim.Decision, sim.Outcome) {}

var _ runner.Scheduler = (*AppOnly)(nil)
