package baselines

import (
	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/kalman"
	"github.com/alert-project/alert/internal/runner"
	"github.com/alert-project/alert/internal/sim"
	"github.com/alert-project/alert/internal/workload"
)

// SysOnly is the application-oblivious baseline (§5.1): it pins the fastest
// traditional DNN ("to avoid latency violations") and adapts only the power
// cap, following the state-of-the-art soft-real-time energy minimizer of
// the paper's citation [63] — a feedback scheduler that predicts inference
// latency with a Kalman filter and then picks the cheapest cap whose
// predicted latency meets the deadline.
//
// Its structural weakness, which Table 4 quantifies, is that accuracy is
// whatever the pinned model delivers: it cannot trade accuracy for energy,
// so it violates accuracy constraints wholesale and wastes error headroom.
type SysOnly struct {
	prof  *dnn.ProfileTable
	spec  core.Spec
	model int

	xi   *kalman.XiFilter
	idle *kalman.IdlePowerFilter
}

// NewSysOnly builds the baseline over a profile table. The pinned model is
// the fastest traditional candidate; if the set is all-anytime, the fastest
// model overall.
func NewSysOnly(prof *dnn.ProfileTable, spec core.Spec) *SysOnly {
	trad := dnn.Traditional(prof.Models)
	pin := 0
	if len(trad) > 0 {
		pin = prof.ModelIndex(dnn.Fastest(trad).Name)
	} else {
		pin = prof.ModelIndex(dnn.Fastest(prof.Models).Name)
	}
	return &SysOnly{
		prof:  prof,
		spec:  spec,
		model: pin,
		xi:    kalman.NewXiFilter(kalman.DefaultXiParams()),
		idle:  kalman.NewIdlePowerFilter(kalman.DefaultIdleParams()),
	}
}

// Name implements runner.Scheduler.
func (s *SysOnly) Name() string { return "Sys-only" }

// SetSpec implements runner.SpecSetter (scenario spec churn). The pinned
// model stays pinned — this baseline only ever adapts the cap.
func (s *SysOnly) SetSpec(spec core.Spec) { s.spec = spec }

// Decide implements runner.Scheduler: cheapest cap whose predicted latency
// fits the goal (and, in the accuracy-maximizing task, whose predicted
// energy fits the budget); the top cap if nothing fits.
func (s *SysOnly) Decide(_ *sim.Env, _ workload.Input, goal float64) sim.Decision {
	mu := s.xi.Mean()
	phi := s.idle.Ratio()

	best, bestSet := 0, false
	var bestEnergy float64
	for j := 0; j < s.prof.NumCaps(); j++ {
		power := s.prof.PowerAt(s.model, j)
		lat := mu * s.prof.At(s.model, j)
		if lat > goal {
			continue
		}
		idle := goal - lat
		energy := power*lat + phi*power*idle
		if s.spec.Objective == core.MaximizeAccuracy &&
			s.spec.EnergyBudget > 0 && energy > s.spec.EnergyBudget {
			continue
		}
		if !bestSet || energy < bestEnergy {
			best, bestEnergy, bestSet = j, energy, true
		}
	}
	if !bestSet {
		best = s.prof.NumCaps() - 1 // latency first: run as fast as possible
	}
	d := sim.Decision{Model: s.model, Cap: best}
	if s.prof.Models[s.model].IsAnytime() {
		d.PlannedStop = goal
	}
	return d
}

// Observe implements runner.Scheduler.
func (s *SysOnly) Observe(_ workload.Input, d sim.Decision, out sim.Outcome) {
	s.xi.Observe(out.ObservedXi)
	if out.CapApplied > 0 {
		s.idle.Observe(out.IdlePower / out.CapApplied)
	}
}

var _ runner.Scheduler = (*SysOnly)(nil)
