package baselines

import (
	"testing"

	"github.com/alert-project/alert/internal/contention"
	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/dnn"
	"github.com/alert-project/alert/internal/platform"
	"github.com/alert-project/alert/internal/runner"
)

func imageConfig(t *testing.T, spec core.Spec, scenario contention.Scenario) runner.Config {
	t.Helper()
	prof, err := dnn.Profile(platform.CPU1(), dnn.ImageCandidates())
	if err != nil {
		t.Fatal(err)
	}
	return runner.Config{
		Prof:      prof,
		Scenario:  scenario,
		Spec:      spec,
		NumInputs: 200,
		Seed:      5,
	}
}

func TestOracleNeverViolatesFeasibleSettings(t *testing.T) {
	spec := core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.92}
	cfg := imageConfig(t, spec, contention.Memory)
	rec := runner.Run(cfg, NewOracle(spec), nil)
	if rec.ViolationRate() > 0.01 {
		t.Errorf("oracle violation rate %g on a feasible setting", rec.ViolationRate())
	}
}

func TestOracleDominatesAlertOnEnergy(t *testing.T) {
	spec := core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.92}
	cfg := imageConfig(t, spec, contention.Memory)
	oracle := runner.Run(cfg, NewOracle(spec), nil)
	alert := runner.Run(cfg, NewAlert("ALERT", cfg.Prof, spec, core.DefaultOptions()), nil)
	if oracle.AvgEnergy() > alert.AvgEnergy()*1.02 {
		t.Errorf("oracle energy %g exceeds ALERT %g — clairvoyance lost",
			oracle.AvgEnergy(), alert.AvgEnergy())
	}
}

func TestOracleDominatesAlertOnQuality(t *testing.T) {
	spec := core.Spec{Objective: core.MaximizeAccuracy, Deadline: 0.2, EnergyBudget: 30 * 0.2}
	cfg := imageConfig(t, spec, contention.Memory)
	oracle := runner.Run(cfg, NewOracle(spec), nil)
	alert := runner.Run(cfg, NewAlert("ALERT", cfg.Prof, spec, core.DefaultOptions()), nil)
	if oracle.AvgQuality() < alert.AvgQuality()-0.002 {
		t.Errorf("oracle quality %g below ALERT %g", oracle.AvgQuality(), alert.AvgQuality())
	}
}

func TestOracleStaticPinsOneConfig(t *testing.T) {
	spec := core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9}
	cfg := imageConfig(t, spec, contention.Default)
	res := OracleStatic(cfg)
	for _, s := range res.Record.Samples {
		if s.Model != res.Model {
			t.Fatal("static record mixes models")
		}
	}
	// Dynamic oracle must do at least as well as the best static config.
	dyn := runner.Run(cfg, NewOracle(spec), nil)
	if dyn.AvgEnergy() > res.Record.AvgEnergy()*1.02 {
		t.Errorf("dynamic oracle (%g J) lost to static (%g J)",
			dyn.AvgEnergy(), res.Record.AvgEnergy())
	}
}

func TestSysOnlyPinsFastestTraditional(t *testing.T) {
	spec := core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9}
	cfg := imageConfig(t, spec, contention.Default)
	s := NewSysOnly(cfg.Prof, spec)
	rec := runner.Run(cfg, s, nil)
	fastest := cfg.Prof.ModelIndex(dnn.Fastest(dnn.Traditional(cfg.Prof.Models)).Name)
	for _, sample := range rec.Samples {
		if sample.Model != fastest {
			t.Fatal("Sys-only changed models")
		}
	}
}

func TestSysOnlyViolatesHighAccuracyGoals(t *testing.T) {
	// The defining weakness (§5.2): pinned to the fastest model, Sys-only
	// cannot reach goals above that model's accuracy.
	spec := core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.3, AccuracyGoal: 0.93}
	cfg := imageConfig(t, spec, contention.Default)
	rec := runner.Run(cfg, NewSysOnly(cfg.Prof, spec), nil)
	if !rec.SettingViolated() {
		t.Error("Sys-only met an accuracy goal above its pinned model's accuracy?")
	}
}

func TestAppOnlyFixedPower(t *testing.T) {
	spec := core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9}
	cfg := imageConfig(t, spec, contention.Default)
	prof, _ := dnn.Profile(platform.CPU1(), dnn.Anytime(dnn.ImageCandidates()))
	cfg.Prof = prof
	rec := runner.Run(cfg, NewAppOnly(prof), nil)
	want := prof.Caps[prof.CapIndex(prof.Platform.DefaultCap)]
	for _, s := range rec.Samples {
		if s.Cap != want {
			t.Fatalf("App-only moved the cap: %g != %g", s.Cap, want)
		}
	}
}

func TestAppOnlyWastesEnergyVersusAlert(t *testing.T) {
	spec := core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.25, AccuracyGoal: 0.9}
	cfg := imageConfig(t, spec, contention.Default)
	anyProf, _ := dnn.Profile(platform.CPU1(), dnn.Anytime(dnn.ImageCandidates()))
	appCfg := cfg
	appCfg.Prof = anyProf
	app := runner.Run(appCfg, NewAppOnly(anyProf), nil)
	alert := runner.Run(appCfg, NewAlert("ALERT-Any", anyProf, spec, core.DefaultOptions()), nil)
	if app.AvgEnergy() < alert.AvgEnergy() {
		t.Errorf("App-only (%g J) out-saved ALERT (%g J) — it has no energy awareness",
			app.AvgEnergy(), alert.AvgEnergy())
	}
}

func TestNoCoordWorseThanAlertAny(t *testing.T) {
	spec := core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9}
	cfg := imageConfig(t, spec, contention.Memory)
	anyProf, _ := dnn.Profile(platform.CPU1(), dnn.Anytime(dnn.ImageCandidates()))
	c := cfg
	c.Prof = anyProf
	nc := runner.Run(c, NewNoCoord(anyProf, spec), nil)
	al := runner.Run(c, NewAlert("ALERT-Any", anyProf, spec, core.DefaultOptions()), nil)
	// Cross-purpose adaptation must not beat coordinated adaptation.
	if nc.AvgEnergy() < al.AvgEnergy()*0.98 {
		t.Errorf("No-coord energy %g beat ALERT-Any %g", nc.AvgEnergy(), al.AvgEnergy())
	}
}

func TestRestrictedOracles(t *testing.T) {
	zoo := dnn.ImageNetZoo(1)
	prof, err := dnn.Profile(platform.CPU1(), zoo)
	if err != nil {
		t.Fatal(err)
	}
	spec := core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.4, AccuracyGoal: 0.9}
	cfg := runner.Config{Prof: prof, Scenario: contention.Default, Spec: spec, NumInputs: 60, Seed: 2}

	capIdx := prof.CapIndex(prof.Platform.DefaultCap)
	app := runner.Run(cfg, NewAppOracle(spec, capIdx), nil)
	for _, s := range app.Samples {
		if s.Cap != prof.Caps[capIdx] {
			t.Fatal("App-oracle moved the cap")
		}
	}

	def := prof.ModelIndex(dnn.MostAccurate(zoo).Name)
	sys := runner.Run(cfg, NewSysOracle(spec, def), nil)
	for _, s := range sys.Samples {
		if s.Model != def {
			t.Fatal("Sys-oracle changed model")
		}
	}

	combined := runner.Run(cfg, NewOracle(spec), nil)
	if combined.AvgEnergy() > app.AvgEnergy()*1.02 || combined.AvgEnergy() > sys.AvgEnergy()*1.02 {
		t.Errorf("combined oracle (%g) lost to a restricted oracle (app %g, sys %g)",
			combined.AvgEnergy(), app.AvgEnergy(), sys.AvgEnergy())
	}
}

func TestAlertSchedulerNameAndSession(t *testing.T) {
	prof, _ := dnn.Profile(platform.CPU1(), dnn.ImageCandidates())
	spec := core.Spec{Objective: core.MinimizeEnergy, Deadline: 0.2, AccuracyGoal: 0.9}
	a := NewAlert("ALERT-X", prof, spec, core.DefaultOptions())
	if a.Name() != "ALERT-X" {
		t.Error("name lost")
	}
	if a.Session() == nil {
		t.Error("session not exposed")
	}
}
