package baselines

import (
	"github.com/alert-project/alert/internal/core"
	"github.com/alert-project/alert/internal/metrics"
	"github.com/alert-project/alert/internal/runner"
	"github.com/alert-project/alert/internal/sim"
	"github.com/alert-project/alert/internal/workload"
)

// Oracle is the impractical upper bound of §5.1: for every input it
// evaluates every configuration with perfect knowledge of the slowdown that
// input will actually experience, then picks the feasible optimum. It has
// no overhead and never mispredicts; ALERT's headline claim is landing
// within 93–99 % of it.
type Oracle struct {
	name string
	spec core.Spec
	// fixedModel / fixedCap, when >= 0, restrict the search to one layer —
	// the App-level and Sys-level oracles of §2.3's Figure 6 study.
	fixedModel, fixedCap int
	lastFeasible         bool
}

// NewOracle builds the dynamic oracle for a constraint spec.
func NewOracle(spec core.Spec) *Oracle {
	return &Oracle{name: "Oracle", spec: spec, fixedModel: -1, fixedCap: -1}
}

// NewAppOracle builds the application-level oracle of §2.3: clairvoyant DNN
// selection with the system pinned at the given cap index (the default
// setting).
func NewAppOracle(spec core.Spec, capIdx int) *Oracle {
	return &Oracle{name: "App-oracle", spec: spec, fixedModel: -1, fixedCap: capIdx}
}

// NewSysOracle builds the system-level oracle of §2.3: clairvoyant power
// selection with the DNN pinned (the default, highest-accuracy model).
func NewSysOracle(spec core.Spec, modelIdx int) *Oracle {
	return &Oracle{name: "Sys-oracle", spec: spec, fixedModel: modelIdx, fixedCap: -1}
}

// Name implements runner.Scheduler.
func (o *Oracle) Name() string { return o.name }

// SetSpec implements runner.SpecSetter (scenario spec churn): the oracle is
// clairvoyant about the environment and always optimizes the live spec.
func (o *Oracle) SetSpec(spec core.Spec) { o.spec = spec }

// FoundFeasible reports whether the last Decide found any configuration
// meeting all constraints; Figure 6 renders ∞ when a single-layer oracle
// cannot meet a setting at all.
func (o *Oracle) FoundFeasible() bool { return o.lastFeasible }

// Decide implements runner.Scheduler by exhaustive clairvoyant search.
func (o *Oracle) Decide(env *sim.Env, in workload.Input, goal float64) sim.Decision {
	prof := env.Prof
	xi := env.PeekXi(in)

	var best sim.Decision
	bestSet := false
	var bestEnergy, bestQuality float64

	consider := func(d sim.Decision) {
		out := env.EvaluateAt(d, in, goal, o.spec.Deadline)
		feasible := out.Latency <= goal
		switch o.spec.Objective {
		case core.MinimizeEnergy:
			feasible = feasible && out.Quality >= o.spec.AccuracyGoal
			if feasible && (!bestSet || out.Energy < bestEnergy) {
				best, bestEnergy, bestQuality, bestSet = d, out.Energy, out.Quality, true
			}
		case core.MaximizeAccuracy:
			feasible = feasible && (o.spec.EnergyBudget <= 0 || out.Energy <= o.spec.EnergyBudget)
			if feasible && (!bestSet || out.Quality > bestQuality ||
				(out.Quality == bestQuality && out.Energy < bestEnergy)) {
				best, bestEnergy, bestQuality, bestSet = d, out.Energy, out.Quality, true
			}
		}
	}

	for i := 0; i < prof.NumModels(); i++ {
		if o.fixedModel >= 0 && i != o.fixedModel {
			continue
		}
		m := prof.Models[i]
		for j := 0; j < prof.NumCaps(); j++ {
			if o.fixedCap >= 0 && j != o.fixedCap {
				continue
			}
			if !m.IsAnytime() {
				consider(sim.Decision{Model: i, Cap: j})
				continue
			}
			// With perfect knowledge the oracle can stop an anytime model
			// exactly as any stage completes (or run to the deadline).
			tFull := prof.At(i, j) * xi
			for k := range m.Stages {
				stop := tFull * m.Stages[k].LatencyFrac * (1 + 1e-9)
				consider(sim.Decision{Model: i, Cap: j, PlannedStop: stop})
			}
			consider(sim.Decision{Model: i, Cap: j}) // run to deadline
		}
	}

	o.lastFeasible = bestSet
	if !bestSet {
		// Nothing feasible (e.g. an NLP word whose residual budget no
		// model can meet — the paper notes "There the Oracle fails, too").
		// Fall back to the latency-first hierarchy: fastest config at the
		// top cap, within whatever layer restriction applies.
		j := prof.NumCaps() - 1
		if o.fixedCap >= 0 {
			j = o.fixedCap
		}
		i := prof.FastestAt(j)
		if o.fixedModel >= 0 {
			i = o.fixedModel
		}
		d := sim.Decision{Model: i, Cap: j}
		if prof.Models[i].IsAnytime() {
			d.PlannedStop = goal
		}
		return d
	}
	return best
}

// Observe implements runner.Scheduler; the oracle needs no feedback.
func (o *Oracle) Observe(workload.Input, sim.Decision, sim.Outcome) {}

var _ runner.Scheduler = (*Oracle)(nil)

// Static pins one (model, cap) for the whole run; anytime models run to
// the deadline. It is the building block of OracleStatic.
type Static struct {
	name       string
	model, cap int
}

// NewStatic builds a fixed-configuration scheduler.
func NewStatic(name string, model, cap int) *Static {
	return &Static{name: name, model: model, cap: cap}
}

// Name implements runner.Scheduler.
func (s *Static) Name() string { return s.name }

// Decide implements runner.Scheduler.
func (s *Static) Decide(*sim.Env, workload.Input, float64) sim.Decision {
	return sim.Decision{Model: s.model, Cap: s.cap}
}

// Observe implements runner.Scheduler.
func (s *Static) Observe(workload.Input, sim.Decision, sim.Outcome) {}

var _ runner.Scheduler = (*Static)(nil)

// OracleStaticResult is the outcome of the exhaustive static search.
type OracleStaticResult struct {
	Record *metrics.Record
	Model  int
	Cap    int
}

// OracleStatic exhaustively replays the run under every static (model, cap)
// configuration — possible because the environment draws are decision-
// independent — and returns the best: among configurations whose violation
// rate stays within the 10 % rule, the one optimizing the objective;
// otherwise the one with the fewest violations. This is "the best results
// without dynamic adaptation" (§5.1).
func OracleStatic(cfg runner.Config) OracleStaticResult {
	prof := cfg.Prof
	var best OracleStaticResult
	bestSet := false

	betterRecord := func(a, b *metrics.Record) bool {
		av, bv := a.SettingViolated(), b.SettingViolated()
		if av != bv {
			return !av
		}
		if av && bv {
			if a.ViolationRate() != b.ViolationRate() {
				return a.ViolationRate() < b.ViolationRate()
			}
		}
		switch cfg.Spec.Objective {
		case core.MinimizeEnergy:
			return a.AvgEnergy() < b.AvgEnergy()
		default:
			return a.AvgQuality() > b.AvgQuality()
		}
	}

	for i := 0; i < prof.NumModels(); i++ {
		for j := 0; j < prof.NumCaps(); j++ {
			rec := runner.Run(cfg, NewStatic("OracleStatic", i, j), nil)
			if !bestSet || betterRecord(rec, best.Record) {
				best = OracleStaticResult{Record: rec, Model: i, Cap: j}
				bestSet = true
			}
		}
	}
	if !bestSet {
		panic("baselines: empty configuration space")
	}
	return best
}
