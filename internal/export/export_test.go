package export

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/alert-project/alert/internal/experiment"
)

func parse(t *testing.T, out string) [][]string {
	t.Helper()
	recs, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v", err)
	}
	return recs
}

func smallScale() experiment.Scale {
	sc := experiment.QuickScale()
	sc.Inputs = 40
	return sc
}

func TestFig2CSV(t *testing.T) {
	res, err := experiment.RunFig2(smallScale())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Fig2CSV(&b, res); err != nil {
		t.Fatal(err)
	}
	recs := parse(t, b.String())
	if len(recs) != 43 { // header + 42 models
		t.Fatalf("rows = %d", len(recs))
	}
	if recs[0][0] != "model" || len(recs[1]) != 5 {
		t.Error("header/shape wrong")
	}
}

func TestFig3CSV(t *testing.T) {
	res, err := experiment.RunFig3(smallScale())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Fig3CSV(&b, res); err != nil {
		t.Fatal(err)
	}
	recs := parse(t, b.String())
	if len(recs) != 32 { // header + 31 settings
		t.Fatalf("rows = %d", len(recs))
	}
}

func TestFig6CSVInfRendering(t *testing.T) {
	res, err := experiment.RunFig6(smallScale())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Fig6CSV(&b, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "inf") {
		t.Error("expected infeasible settings rendered as inf")
	}
	parse(t, b.String())
}

func TestFig9CSV(t *testing.T) {
	res, err := experiment.RunFig9(smallScale())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Fig9CSV(&b, res); err != nil {
		t.Fatal(err)
	}
	recs := parse(t, b.String())
	if len(recs) != 1+2*160 { // header + two 160-input traces
		t.Fatalf("rows = %d", len(recs))
	}
}

func TestFig11CSV(t *testing.T) {
	res, err := experiment.RunFig11(smallScale())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Fig11CSV(&b, res); err != nil {
		t.Fatal(err)
	}
	recs := parse(t, b.String())
	if len(recs) != 1+3*20 { // header + 3 scenarios x 20 bins
		t.Fatalf("rows = %d", len(recs))
	}
}

func TestWriteAll(t *testing.T) {
	dir := t.TempDir()
	if err := WriteAll(dir, smallScale()); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig2.csv", "fig3.csv", "fig6.csv", "fig9.csv", "fig11.csv"} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}
