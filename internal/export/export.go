// Package export serializes experiment results to CSV so the figures can
// be re-plotted outside the text renderers (gnuplot, matplotlib, R). One
// file per artifact, columns matching the paper's axes.
package export

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"github.com/alert-project/alert/internal/experiment"
)

// writeCSV writes rows (first row = header) to w.
func writeCSV(w io.Writer, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.WriteAll(rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

func f(x float64) string {
	if math.IsNaN(x) {
		return ""
	}
	if math.IsInf(x, 1) {
		return "inf"
	}
	return fmt.Sprintf("%g", x)
}

// Fig2CSV emits one row per network: name, latency, error, energy, hull.
func Fig2CSV(w io.Writer, r *experiment.Fig2Result) error {
	rows := [][]string{{"model", "latency_s", "top5_error_pct", "energy_j", "on_hull"}}
	for _, row := range r.Rows {
		hull := "0"
		if row.OnHull {
			hull = "1"
		}
		rows = append(rows, []string{row.Name, f(row.Latency), f(row.ErrorPct), f(row.Energy), hull})
	}
	return writeCSV(w, rows)
}

// Fig3CSV emits one row per power setting.
func Fig3CSV(w io.Writer, r *experiment.Fig3Result) error {
	rows := [][]string{{"cap_w", "latency_s", "energy_per_period_j"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{f(row.CapW), f(row.Latency), f(row.Energy)})
	}
	return writeCSV(w, rows)
}

// Fig6CSV emits one row per constraint setting with the three oracles'
// energies ("inf" when infeasible).
func Fig6CSV(w io.Writer, r *experiment.Fig6Result) error {
	rows := [][]string{{"deadline_s", "accuracy_goal", "sys_level_j", "app_level_j", "combined_j"}}
	for _, p := range r.Points {
		rows = append(rows, []string{
			f(p.Deadline), f(p.AccuracyGoal), f(p.SysOnly), f(p.AppOnly), f(p.Combined),
		})
	}
	return writeCSV(w, rows)
}

// Table4CSV emits one row per (cell, scheme, objective) with the normalized
// value and violated-setting count.
func Table4CSV(w io.Writer, t *experiment.Table4) error {
	rows := [][]string{{"platform", "family", "workload", "objective", "scheme",
		"norm_value", "violated_settings", "settings"}}
	for _, row := range t.Rows {
		for _, id := range t.Schemes {
			for objName, cell := range map[string]*experiment.Cell{
				"minimize_energy": row.Energy,
				"minimize_error":  row.Error,
			} {
				c := cell.Norm[id]
				rows = append(rows, []string{
					row.Key.Platform, row.Key.Family(), row.Key.Workload(), objName, id,
					f(c.NormValue), fmt.Sprint(c.ViolatedSettings), fmt.Sprint(c.Settings),
				})
			}
		}
	}
	return writeCSV(w, rows)
}

// Fig9CSV emits one row per (scheme, input).
func Fig9CSV(w io.Writer, r *experiment.Fig9Result) error {
	rows := [][]string{{"scheme", "input", "latency_s", "cap_w", "quality", "model", "anytime", "contention"}}
	for _, tr := range r.Traces {
		for _, s := range tr.Samples {
			b := func(v bool) string {
				if v {
					return "1"
				}
				return "0"
			}
			rows = append(rows, []string{
				tr.Scheme, fmt.Sprint(s.Input), f(s.Latency), f(s.CapW), f(s.Quality),
				s.ModelName, b(s.UsedAny), b(s.Contention),
			})
		}
	}
	return writeCSV(w, rows)
}

// Fig11CSV emits one row per histogram bin per scenario, plus the fit.
func Fig11CSV(w io.Writer, r *experiment.Fig11Result) error {
	rows := [][]string{{"scenario", "bin_lo", "freq", "mu_hat", "sigma_hat"}}
	for _, h := range r.Histograms {
		width := (h.Hi - h.Lo) / float64(len(h.Freq))
		for i, freq := range h.Freq {
			rows = append(rows, []string{
				h.Scenario.String(), f(h.Lo + float64(i)*width), f(freq), f(h.MuHat), f(h.SigmaHat),
			})
		}
	}
	return writeCSV(w, rows)
}

// WriteAll regenerates the CSV-exportable artifacts into dir.
func WriteAll(dir string, sc experiment.Scale) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, gen func(io.Writer) error) error {
		fh, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer fh.Close()
		if err := gen(fh); err != nil {
			return fmt.Errorf("export %s: %w", name, err)
		}
		return nil
	}

	fig2, err := experiment.RunFig2(sc)
	if err != nil {
		return err
	}
	if err := write("fig2.csv", func(w io.Writer) error { return Fig2CSV(w, fig2) }); err != nil {
		return err
	}
	fig3, err := experiment.RunFig3(sc)
	if err != nil {
		return err
	}
	if err := write("fig3.csv", func(w io.Writer) error { return Fig3CSV(w, fig3) }); err != nil {
		return err
	}
	fig6, err := experiment.RunFig6(sc)
	if err != nil {
		return err
	}
	if err := write("fig6.csv", func(w io.Writer) error { return Fig6CSV(w, fig6) }); err != nil {
		return err
	}
	fig9, err := experiment.RunFig9(sc)
	if err != nil {
		return err
	}
	if err := write("fig9.csv", func(w io.Writer) error { return Fig9CSV(w, fig9) }); err != nil {
		return err
	}
	fig11, err := experiment.RunFig11(sc)
	if err != nil {
		return err
	}
	if err := write("fig11.csv", func(w io.Writer) error { return Fig11CSV(w, fig11) }); err != nil {
		return err
	}
	return nil
}
