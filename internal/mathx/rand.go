package mathx

import (
	"math"
	"math/rand"
)

// Rand wraps math/rand.Rand with the variate generators the simulators need.
// Every stochastic component in the repository draws through a Rand seeded
// from the experiment seed, so whole scenario runs replay bit-identically.
type Rand struct {
	*rand.Rand
}

// NewRand returns a deterministic generator for the given seed.
func NewRand(seed int64) *Rand {
	return &Rand{rand.New(rand.NewSource(seed))}
}

// LogNormal draws from a lognormal distribution parameterized by the mean and
// standard deviation of the underlying normal (mu, sigma in log space).
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// TruncNormal draws from N(mu, sigma^2) truncated to [lo, hi] by rejection.
// After 64 rejections it falls back to clamping, which only happens when the
// interval has negligible mass and the precise shape no longer matters.
func (r *Rand) TruncNormal(mu, sigma, lo, hi float64) float64 {
	for i := 0; i < 64; i++ {
		x := mu + sigma*r.NormFloat64()
		if x >= lo && x <= hi {
			return x
		}
	}
	return Clamp(mu, lo, hi)
}

// Uniform draws from the closed interval [lo, hi].
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Exponential draws from an exponential distribution with the given mean.
func (r *Rand) Exponential(mean float64) float64 {
	return r.ExpFloat64() * mean
}

// Split derives an independent child generator. Simulators hand one child to
// each stochastic subcomponent so adding a component never perturbs the draws
// seen by the others.
func (r *Rand) Split() *Rand {
	return NewRand(r.Int63())
}
