// Package mathx provides the small numeric toolkit shared by the ALERT
// runtime and its simulation substrates: Gaussian distribution functions,
// online moment estimators, robust summary statistics, and seeded random
// variate generators.
//
// Everything in this package is purely computational and allocation-free on
// the hot paths; the ALERT controller calls into it once per candidate
// configuration per input, so these routines must stay cheap.
package mathx

import "math"

// Sqrt2 is cached because Phi is called in the controller's innermost loop.
var sqrt2 = math.Sqrt(2)

// Phi returns the standard normal cumulative distribution function Φ(z).
func Phi(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/sqrt2))
}

// NormCDF returns Pr[X <= x] for X ~ N(mu, sigma^2).
//
// A degenerate distribution (sigma <= 0) collapses to a step function, which
// is exactly the behaviour the controller wants when the Kalman variance has
// converged to zero: the deadline is either surely met or surely missed.
func NormCDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		if x >= mu {
			return 1
		}
		return 0
	}
	return Phi((x - mu) / sigma)
}

// PhiInv returns the inverse of the standard normal CDF (the quantile
// function) using the Acklam rational approximation, accurate to about
// 1.15e-9 over the open interval (0, 1). Inputs at or beyond the boundary
// saturate to +/-Inf.
func PhiInv(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Coefficients for the central and tail rational approximations.
	a := [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	c := [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}
	const plow = 0.02425
	const phigh = 1 - plow

	var q, r, x float64
	switch {
	case p < plow:
		q = math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= phigh:
		q = p - 0.5
		r = q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q = math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step sharpens the approximation near the tails.
	e := Phi(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// NormQuantile returns the q-th quantile of N(mu, sigma^2).
// It is the inverse of NormCDF and backs the Prth energy estimate (Eq. 12).
func NormQuantile(p, mu, sigma float64) float64 {
	if sigma <= 0 {
		return mu
	}
	return mu + sigma*PhiInv(p)
}

// NormPDF returns the density of N(mu, sigma^2) at x.
func NormPDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		return 0
	}
	z := (x - mu) / sigma
	return math.Exp(-z*z/2) / (sigma * math.Sqrt(2*math.Pi))
}
