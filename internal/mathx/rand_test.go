package mathx

import (
	"math"
	"testing"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	// Drawing through a child must not perturb the parent's stream beyond
	// the single Int63 the split consumes.
	a := NewRand(7)
	child := a.Split()
	next := a.Float64()

	b := NewRand(7)
	_ = b.Int63()
	if next != b.Float64() {
		t.Error("Split consumed more than one parent draw")
	}
	_ = child.Float64()
}

func TestLogNormalMoments(t *testing.T) {
	r := NewRand(11)
	const n = 200000
	mu, sigma := 0.0, 0.1
	var s OnlineStats
	for i := 0; i < n; i++ {
		s.Add(math.Log(r.LogNormal(mu, sigma)))
	}
	if math.Abs(s.Mean()-mu) > 0.002 {
		t.Errorf("log-mean %g", s.Mean())
	}
	if math.Abs(s.Std()-sigma) > 0.002 {
		t.Errorf("log-std %g", s.Std())
	}
}

func TestTruncNormalBounds(t *testing.T) {
	r := NewRand(13)
	for i := 0; i < 10000; i++ {
		x := r.TruncNormal(1.5, 0.5, 1.0, 2.0)
		if x < 1.0 || x > 2.0 {
			t.Fatalf("TruncNormal out of bounds: %g", x)
		}
	}
	// Impossible interval falls back to clamped mean.
	if x := r.TruncNormal(0, 0.001, 10, 11); x != 10 {
		t.Errorf("fallback = %g, want 10", x)
	}
}

func TestUniformBounds(t *testing.T) {
	r := NewRand(17)
	for i := 0; i < 10000; i++ {
		x := r.Uniform(-2, 3)
		if x < -2 || x > 3 {
			t.Fatalf("Uniform out of bounds: %g", x)
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := NewRand(19)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate = %g", rate)
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRand(23)
	var s OnlineStats
	for i := 0; i < 100000; i++ {
		s.Add(r.Exponential(4))
	}
	if math.Abs(s.Mean()-4) > 0.1 {
		t.Errorf("Exponential mean = %g, want 4", s.Mean())
	}
}
