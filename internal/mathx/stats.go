package mathx

import (
	"math"
	"sort"
)

// OnlineStats accumulates mean and variance in one pass using Welford's
// algorithm. It is the measurement backbone for every experiment: latency,
// energy, and accuracy streams all flow through it.
type OnlineStats struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (s *OnlineStats) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations seen so far.
func (s *OnlineStats) N() int { return s.n }

// Mean returns the running mean, or 0 before any observation.
func (s *OnlineStats) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance, or 0 with fewer than two points.
func (s *OnlineStats) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *OnlineStats) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation, or 0 before any observation.
func (s *OnlineStats) Min() float64 { return s.min }

// Max returns the largest observation, or 0 before any observation.
func (s *OnlineStats) Max() float64 { return s.max }

// Sum returns n * mean, the total of all observations.
func (s *OnlineStats) Sum() float64 { return s.mean * float64(s.n) }

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. The input slice is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// BoxStats summarizes a sample the way the paper's whisker plots do:
// 10th/25th/50th/75th/90th percentiles plus mean and full range.
type BoxStats struct {
	Min, P10, P25, Median, P75, P90, Max, Mean float64
	N                                          int
}

// Box computes BoxStats for xs. An empty sample yields all-NaN fields.
func Box(xs []float64) BoxStats {
	if len(xs) == 0 {
		nan := math.NaN()
		return BoxStats{Min: nan, P10: nan, P25: nan, Median: nan, P75: nan, P90: nan, Max: nan, Mean: nan}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	return BoxStats{
		Min:    sorted[0],
		P10:    percentileSorted(sorted, 10),
		P25:    percentileSorted(sorted, 25),
		Median: percentileSorted(sorted, 50),
		P75:    percentileSorted(sorted, 75),
		P90:    percentileSorted(sorted, 90),
		Max:    sorted[len(sorted)-1],
		Mean:   sum / float64(len(sorted)),
		N:      len(sorted),
	}
}

// HarmonicMean returns the harmonic mean of xs, the aggregate the paper uses
// for Table 4's bottom row. Non-positive entries are rejected by returning
// NaN, since a harmonic mean is undefined for them.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var inv float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		inv += 1 / x
	}
	return float64(len(xs)) / inv
}

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
