package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOnlineStatsMatchesDirect(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	var s OnlineStats
	for _, x := range xs {
		s.Add(x)
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var v float64
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	v /= float64(len(xs) - 1)

	if math.Abs(s.Mean()-mean) > 1e-12 {
		t.Errorf("mean %g want %g", s.Mean(), mean)
	}
	if math.Abs(s.Var()-v) > 1e-12 {
		t.Errorf("var %g want %g", s.Var(), v)
	}
	if s.Min() != 1 || s.Max() != 9 || s.N() != len(xs) {
		t.Errorf("min/max/n = %g/%g/%d", s.Min(), s.Max(), s.N())
	}
	if math.Abs(s.Sum()-mean*float64(len(xs))) > 1e-9 {
		t.Errorf("sum %g", s.Sum())
	}
}

func TestOnlineStatsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var s OnlineStats
		var clean []float64
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				continue
			}
			clean = append(clean, x)
			s.Add(x)
		}
		if len(clean) == 0 {
			return s.N() == 0
		}
		// Mean must lie within [min, max]; variance non-negative.
		return s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9 && s.Var() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {75, 40}, {10, 14},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
	// The input must not be reordered.
	orig := []float64{3, 1, 2}
	Percentile(orig, 50)
	if orig[0] != 3 || orig[1] != 1 || orig[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestBoxStats(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i) // 0..100
	}
	b := Box(xs)
	if b.Median != 50 || b.P25 != 25 || b.P75 != 75 || b.Min != 0 || b.Max != 100 {
		t.Errorf("box = %+v", b)
	}
	if math.Abs(b.Mean-50) > 1e-9 || b.N != 101 {
		t.Errorf("mean/n = %g/%d", b.Mean, b.N)
	}
}

func TestHarmonicMean(t *testing.T) {
	if got := HarmonicMean([]float64{1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Errorf("HM(1,1,1) = %g", got)
	}
	// HM(1, 2) = 2/(1 + 1/2) = 4/3
	if got := HarmonicMean([]float64{1, 2}); math.Abs(got-4.0/3) > 1e-12 {
		t.Errorf("HM(1,2) = %g", got)
	}
	if !math.IsNaN(HarmonicMean([]float64{1, 0})) {
		t.Error("HM with zero should be NaN")
	}
	if !math.IsNaN(HarmonicMean(nil)) {
		t.Error("HM of empty should be NaN")
	}
}

func TestHarmonicMeanLeqArithmetic(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			x = math.Abs(x)
			if x > 1e-6 && x < 1e6 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		return HarmonicMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("clamp misbehaves")
	}
}
