package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPhiKnownValues(t *testing.T) {
	cases := []struct {
		z, want float64
	}{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{1.959963984540054, 0.975},
		{-3, 0.0013498980316300933},
	}
	for _, c := range cases {
		if got := Phi(c.z); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Phi(%g) = %.12f, want %.12f", c.z, got, c.want)
		}
	}
}

func TestPhiInvRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Mod(math.Abs(raw), 0.9998) + 1e-4 // p in (1e-4, ~0.9999)
		z := PhiInv(p)
		return math.Abs(Phi(z)-p) < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPhiInvBoundaries(t *testing.T) {
	if !math.IsInf(PhiInv(0), -1) {
		t.Error("PhiInv(0) should be -Inf")
	}
	if !math.IsInf(PhiInv(1), 1) {
		t.Error("PhiInv(1) should be +Inf")
	}
	if got := PhiInv(0.5); math.Abs(got) > 1e-9 {
		t.Errorf("PhiInv(0.5) = %g, want 0", got)
	}
}

func TestNormCDFDegenerate(t *testing.T) {
	if got := NormCDF(2, 1, 0); got != 1 {
		t.Errorf("degenerate CDF above mean = %g, want 1", got)
	}
	if got := NormCDF(0.5, 1, 0); got != 0 {
		t.Errorf("degenerate CDF below mean = %g, want 0", got)
	}
	if got := NormCDF(1, 1, 0); got != 1 {
		t.Errorf("degenerate CDF at mean = %g, want 1", got)
	}
}

func TestNormCDFMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		lo, hi := math.Min(a, b), math.Max(a, b)
		return NormCDF(lo, 0.3, 0.7) <= NormCDF(hi, 0.3, 0.7)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormQuantileInvertsNormCDF(t *testing.T) {
	for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999} {
		x := NormQuantile(p, 2.5, 0.4)
		if got := NormCDF(x, 2.5, 0.4); math.Abs(got-p) > 1e-8 {
			t.Errorf("NormCDF(NormQuantile(%g)) = %g", p, got)
		}
	}
	if got := NormQuantile(0.9, 3, 0); got != 3 {
		t.Errorf("degenerate quantile = %g, want mean", got)
	}
}

func TestNormPDFIntegratesToOne(t *testing.T) {
	// Trapezoidal integration over +/- 8 sigma.
	const n = 4000
	mu, sigma := 1.2, 0.33
	lo, hi := mu-8*sigma, mu+8*sigma
	h := (hi - lo) / n
	var sum float64
	for i := 0; i <= n; i++ {
		w := 1.0
		if i == 0 || i == n {
			w = 0.5
		}
		sum += w * NormPDF(lo+float64(i)*h, mu, sigma)
	}
	if got := sum * h; math.Abs(got-1) > 1e-6 {
		t.Errorf("pdf integrates to %g", got)
	}
}
