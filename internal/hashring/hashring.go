// Package hashring is the cluster's consistent-hash ring over member
// addresses. It lives in one place on purpose: the client router
// (client/cluster) and the server-side checkpoint replicator
// (internal/selfheal) must agree byte-for-byte on which member owns which
// stream — the replicator ships each stream's checkpoint to the member
// that WOULD own it if the current owner died, and that is only the right
// target if both sides hash identically. Both hash the same member
// address strings, so "the ring minus the dead node routes stream s to
// its successor" is a theorem, not a convention.
package hashring

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
)

// vnodesPerMember is how many points each member contributes to the hash
// ring. 64 keeps the per-member load spread within a few percent at small
// cluster sizes while keeping ring rebuilds trivially cheap (a cluster of
// N nodes is N*64 sorted uint64s).
const vnodesPerMember = 64

// Ring is a consistent-hash ring over member addresses. It is immutable
// after Build: membership changes build a new ring, so readers never lock.
type Ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	addr string
}

// Build places vnodesPerMember points per member on the ring. Member
// order does not matter: point positions depend only on the address
// strings, so every client that knows the same member set routes every
// stream identically — the property that makes routing coordination-free.
func Build(members []string) Ring {
	points := make([]ringPoint, 0, len(members)*vnodesPerMember)
	var buf [4]byte
	for _, addr := range members {
		for v := 0; v < vnodesPerMember; v++ {
			h := fnv.New64a()
			h.Write([]byte(addr))
			h.Write([]byte{'#'})
			binary.LittleEndian.PutUint32(buf[:], uint32(v))
			h.Write(buf[:])
			points = append(points, ringPoint{hash: mix64(h.Sum64()), addr: addr})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		// Tie-break on address so equal-hash vnodes (vanishingly rare but
		// possible) still order deterministically across clients.
		return points[i].addr < points[j].addr
	})
	return Ring{points: points}
}

// Owner returns the member owning a stream: the first ring point at or
// clockwise-after the stream's hash. Empty ring returns "".
func (r Ring) Owner(stream int) string {
	if len(r.points) == 0 {
		return ""
	}
	h := streamHash(stream)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap
	}
	return r.points[i].addr
}

// Successor returns the member that would own a stream if `exclude` were
// not on the ring — the stream's failover home, and therefore the correct
// replication target for a checkpoint held by `exclude`. It builds the
// reduced ring on the fly; at replication cadence (not per-request) that
// cost is irrelevant, and it guarantees the answer equals what every
// client computes after the member is declared dead. Returns "" if no
// other member exists.
func Successor(members []string, exclude string, stream int) string {
	rest := make([]string, 0, len(members))
	for _, m := range members {
		if m != exclude {
			rest = append(rest, m)
		}
	}
	return Build(rest).Owner(stream)
}

// streamHash hashes a stream id onto the ring. Fixed-width little-endian
// bytes (not decimal formatting) so ids hash identically regardless of
// locale or sign formatting anywhere.
func streamHash(stream int) uint64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(stream)))
	h := fnv.New64a()
	h.Write(buf[:])
	return mix64(h.Sum64())
}

// mix64 is a 64-bit avalanche finalizer (MurmurHash3's fmix64). FNV-1a
// alone is not enough here: vnode suffixes and small stream ids vary only
// in a few low bytes, so raw FNV sums form arithmetic progressions and the
// members' point sets land as translates of one lattice — measured shares
// as skewed as 80/13/6 on a 3-node ring. Avalanching every bit restores
// the uniform spread consistent hashing assumes.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
