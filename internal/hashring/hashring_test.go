package hashring

import "testing"

// TestRingDeterministic: the ring is a pure function of the member set —
// member order must not matter, or two clients with the same members would
// route the same stream differently.
func TestRingDeterministic(t *testing.T) {
	a := Build([]string{"n1:1", "n2:2", "n3:3"})
	b := Build([]string{"n3:3", "n1:1", "n2:2"})
	for stream := 0; stream < 2000; stream++ {
		if a.Owner(stream) != b.Owner(stream) {
			t.Fatalf("stream %d: owner depends on member order (%s vs %s)",
				stream, a.Owner(stream), b.Owner(stream))
		}
	}
}

// TestRingBalance: with 64 vnodes per member, no member of a 3-node ring
// should own a wildly disproportionate share of streams.
func TestRingBalance(t *testing.T) {
	members := []string{"10.0.0.1:8372", "10.0.0.2:8372", "10.0.0.3:8372"}
	r := Build(members)
	counts := map[string]int{}
	const n = 30000
	for stream := 0; stream < n; stream++ {
		counts[r.Owner(stream)]++
	}
	for _, m := range members {
		share := float64(counts[m]) / n
		if share < 0.15 || share > 0.55 {
			t.Errorf("member %s owns %.1f%% of streams, want a roughly fair share", m, 100*share)
		}
	}
}

// TestRingMinimalDisruption: removing one member must only move the
// streams that member owned — survivors keep everything they had, which is
// what makes membership changes cheap (only the departed node's sessions
// need migrating).
func TestRingMinimalDisruption(t *testing.T) {
	before := Build([]string{"a:1", "b:2", "c:3"})
	after := Build([]string{"a:1", "b:2"})
	for stream := 0; stream < 5000; stream++ {
		was := before.Owner(stream)
		if was == "c:3" {
			continue // the departed member's streams must move somewhere
		}
		if now := after.Owner(stream); now != was {
			t.Fatalf("stream %d moved %s -> %s though its owner survived", stream, was, now)
		}
	}
}

// TestRingEmpty: an empty ring routes nowhere rather than panicking.
func TestRingEmpty(t *testing.T) {
	var r Ring
	if got := r.Owner(1); got != "" {
		t.Errorf("empty ring owner = %q, want empty", got)
	}
}

// TestSuccessorMatchesPostFailureRing pins the property self-healing
// stands on: the replication target computed while the owner is alive
// (Successor of the full member set excluding the owner) must equal the
// hash-home every router computes after the owner is removed. If these
// ever diverged, a dead node's streams would be restored on one member
// while clients route them to another.
func TestSuccessorMatchesPostFailureRing(t *testing.T) {
	members := []string{"a:1", "b:2", "c:3", "d:4"}
	for _, dead := range members {
		survivors := make([]string, 0, len(members)-1)
		for _, m := range members {
			if m != dead {
				survivors = append(survivors, m)
			}
		}
		after := Build(survivors)
		for stream := 0; stream < 3000; stream++ {
			want := after.Owner(stream)
			if got := Successor(members, dead, stream); got != want {
				t.Fatalf("stream %d: Successor(-%s) = %s, post-failure ring owner = %s",
					stream, dead, got, want)
			}
		}
	}
}

// TestSuccessorNoOthers: a one-member cluster has nowhere to replicate.
func TestSuccessorNoOthers(t *testing.T) {
	if got := Successor([]string{"a:1"}, "a:1", 7); got != "" {
		t.Errorf("Successor with no other members = %q, want empty", got)
	}
}

// TestRingAdversarialLowEntropyKeys pins the avalanche finalizer: stream
// ids in real deployments are tiny sequential integers and member
// addresses differ in a single character, so the ring's raw FNV-1a hashes
// differ in only a few low bits. Without mix64 those near-collisions
// cluster consecutive ids onto one member; with it, even the lowest-
// entropy key sets must spread fairly and decorrelate neighboring ids.
func TestRingAdversarialLowEntropyKeys(t *testing.T) {
	// Four members distinguishable only by their final port digit.
	members := []string{
		"10.0.0.1:8370", "10.0.0.1:8371", "10.0.0.1:8372", "10.0.0.1:8373",
	}
	r := Build(members)

	const n = 2048 // sequential ids 0..n-1: the least entropy a key set can have
	counts := map[string]int{}
	adjacent := 0
	prev := ""
	for stream := 0; stream < n; stream++ {
		owner := r.Owner(stream)
		counts[owner]++
		if owner == prev {
			adjacent++
		}
		prev = owner
	}
	for _, m := range members {
		share := float64(counts[m]) / n
		if share < 0.10 || share > 0.45 {
			t.Errorf("member %s owns %.1f%% of sequential ids, want a roughly fair share", m, 100*share)
		}
	}
	// Uncorrelated neighbors land on the same member ~sum(share^2) ≈ 25%
	// of the time; heavy clustering of consecutive ids means the id's low
	// bits never reached the ring.
	if frac := float64(adjacent) / n; frac > 0.5 {
		t.Errorf("%.1f%% of consecutive ids share an owner; low-entropy ids are clustering", 100*frac)
	}

	// Negative and huge ids hash just as well (fixed-width little-endian
	// bytes, no decimal formatting): same-magnitude ids of opposite sign
	// must not collapse onto one owner systematically.
	negCounts := map[string]int{}
	for stream := -n; stream < 0; stream++ {
		negCounts[r.Owner(stream)]++
	}
	for _, m := range members {
		share := float64(negCounts[m]) / n
		if share < 0.10 || share > 0.45 {
			t.Errorf("member %s owns %.1f%% of negative ids, want a roughly fair share", m, 100*share)
		}
	}
}
