package contention

import (
	"testing"

	"github.com/alert-project/alert/internal/mathx"
	"github.com/alert-project/alert/internal/platform"
)

func TestDefaultSlowdownRange(t *testing.T) {
	src := NewSource(Default, platform.CPU, 1)
	for i := 0; i < 5000; i++ {
		e := src.Next()
		if e.Slowdown < 1.0 || e.Slowdown > 1.06 {
			t.Fatalf("Default slowdown %g outside Fig. 11's [1.00, 1.06]", e.Slowdown)
		}
		if e.ExtraPower != 0 {
			t.Fatal("Default must not add co-runner power")
		}
	}
}

func TestScenarioCalibration(t *testing.T) {
	// Observed slowdowns while the co-runner is active must stay inside
	// the Fig. 11 support and average near the calibrated mean.
	cases := []struct {
		sc       Scenario
		lo, hi   float64
		meanLo   float64
		meanHi   float64
		extraPwr float64
	}{
		{Compute, 1.10, 1.70, 1.25, 1.5, 9},
		{Memory, 1.10, 1.90, 1.3, 1.65, 7},
	}
	for _, c := range cases {
		src := NewSource(c.sc, platform.CPU, 7)
		var active mathx.OnlineStats
		for i := 0; i < 20000; i++ {
			e := src.Next()
			if e.Slowdown == 1 {
				continue // co-runner stopped
			}
			if e.Slowdown < c.lo || e.Slowdown > c.hi {
				t.Fatalf("%v slowdown %g outside [%g, %g]", c.sc, e.Slowdown, c.lo, c.hi)
			}
			if e.ExtraPower != c.extraPwr {
				t.Fatalf("%v extra power %g", c.sc, e.ExtraPower)
			}
			active.Add(e.Slowdown)
		}
		if active.N() == 0 {
			t.Fatalf("%v: co-runner never active", c.sc)
		}
		if m := active.Mean(); m < c.meanLo || m > c.meanHi {
			t.Errorf("%v active mean %g outside [%g, %g]", c.sc, m, c.meanLo, c.meanHi)
		}
	}
}

func TestGPUScenariosMilder(t *testing.T) {
	for _, sc := range []Scenario{Compute, Memory} {
		cpu := scenarioParams(sc, platform.CPU)
		gpu := scenarioParams(sc, platform.GPU)
		if gpu.mean >= cpu.mean || gpu.hi >= cpu.hi {
			t.Errorf("%v: GPU contention should be milder than CPU", sc)
		}
	}
}

func TestMarkovTogglesOnAndOff(t *testing.T) {
	src := NewSource(Memory, platform.CPU, 3)
	var on, off int
	for i := 0; i < 5000; i++ {
		if src.Next().Slowdown > 1 {
			on++
		} else {
			off++
		}
	}
	if on == 0 || off == 0 {
		t.Fatalf("expected both phases: on=%d off=%d", on, off)
	}
	// Duty cycle roughly onMean/(onMean+offMean) ~ 54%.
	duty := float64(on) / float64(on+off)
	if duty < 0.3 || duty > 0.8 {
		t.Errorf("duty cycle %g far from calibration", duty)
	}
}

func TestMarkovStartsQuiet(t *testing.T) {
	// Runs begin in the profiled regime: the first input must be
	// uncontended for every seed.
	for seed := int64(0); seed < 50; seed++ {
		src := NewSource(Memory, platform.CPU, seed)
		if e := src.Next(); e.Slowdown != 1 {
			t.Fatalf("seed %d: first input contended", seed)
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	a := NewSource(Memory, platform.CPU, 99)
	b := NewSource(Memory, platform.CPU, 99)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed sources diverged")
		}
	}
}

func TestScriptedBurstWindow(t *testing.T) {
	src := NewScripted(platform.CPU, 5, Burst{Start: 10, End: 20, Scenario: Memory})
	for i := 0; i < 30; i++ {
		e := src.Next()
		inBurst := i >= 10 && i < 20
		if inBurst && (!e.Active || e.Slowdown < 1.10) {
			t.Errorf("input %d: expected active memory contention, got %+v", i, e)
		}
		if !inBurst && e.Slowdown > 1.06 {
			t.Errorf("input %d: expected quiet, got slowdown %g", i, e.Slowdown)
		}
	}
}

func TestScriptedMultipleBursts(t *testing.T) {
	src := NewScripted(platform.CPU, 5,
		Burst{Start: 5, End: 10, Scenario: Compute},
		Burst{Start: 15, End: 20, Scenario: Memory})
	var activeCount int
	for i := 0; i < 25; i++ {
		if src.Next().Active {
			activeCount++
		}
	}
	if activeCount != 10 {
		t.Errorf("active inputs = %d, want 10", activeCount)
	}
}

func TestSteadySource(t *testing.T) {
	var s Steady
	for i := 0; i < 10; i++ {
		if e := s.Next(); e.Slowdown != 1 || e.ExtraPower != 0 || e.Active {
			t.Fatal("Steady must be a unit source")
		}
	}
}

func TestScenarioString(t *testing.T) {
	if Default.String() != "Default" || Compute.String() != "Compute" || Memory.String() != "Memory" {
		t.Error("scenario names wrong")
	}
	if len(Scenarios()) != 3 {
		t.Error("Scenarios() should list all three")
	}
}
