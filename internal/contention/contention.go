// Package contention simulates the co-located jobs the evaluation runs
// against the inference task (§5.1): a memory-intensive job (STREAM on
// CPUs, Rodinia Backprop on the GPU) and a compute-intensive job (PARSEC
// Bodytrack on CPUs, Backprop's forward pass on the GPU), each "repeatedly
// stopped and then started" to create dynamic resource pressure.
//
// A contention source produces, per inference input, a latency slowdown
// multiplier and the extra system power the co-runner draws. The slowdown
// process is an on/off Markov chain with AR(1)-correlated intensity while
// on, calibrated so the observed global-slowdown-factor histograms match
// Figure 11: Default ≈ 1.00–1.06, Compute ≈ 1.1–1.7, Memory ≈ 1.1–1.9
// (narrower on the GPU, which the paper observes to be much quieter).
//
// Invariants every Source implementation maintains:
//
//   - Exactly one Effect is produced per inference input, in input order;
//     sim.Env draws it lazily and caches it so peeking (oracles) and
//     stepping agree on the same draw.
//   - Effect.Slowdown >= 1: co-located load never speeds inference up.
//   - Sources are deterministic functions of their seed. Two sources built
//     with the same (scenario, kind, seed) produce identical Effect
//     sequences, which is what makes every cross-scheme comparison in the
//     evaluation apples-to-apples.
//
// The stock sources here model co-runner contention only. Richer
// environment dynamics — phase-switching contention, thermal/power-cap
// throttling ramps, spec churn — are composed by internal/scenario, whose
// compiled traces replay through the same Source interface (Effect's
// CapLimitW field is the throttling hook).
package contention

import (
	"fmt"

	"github.com/alert-project/alert/internal/mathx"
	"github.com/alert-project/alert/internal/platform"
)

// Scenario names the three run-time environments of Table 3.
type Scenario int

const (
	// Default: the inference task runs alone.
	Default Scenario = iota
	// Compute: co-located with a compute-hungry job.
	Compute
	// Memory: co-located with a memory-bandwidth-hungry job.
	Memory
)

// String implements fmt.Stringer.
func (s Scenario) String() string {
	switch s {
	case Default:
		return "Default"
	case Compute:
		return "Compute"
	case Memory:
		return "Memory"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// Scenarios lists the three environments in Table 3/4 order.
func Scenarios() []Scenario { return []Scenario{Default, Compute, Memory} }

// Effect is what one inference input experiences from co-located load.
type Effect struct {
	// Slowdown multiplies the inference latency; >= 1.
	Slowdown float64
	// ExtraPower is the wattage the co-runner adds to the system draw,
	// visible to ALERT through the inference-idle power measurements that
	// feed Eq. 8.
	ExtraPower float64
	// Active reports whether the co-runner is currently scheduled, exposed
	// so traces (Fig. 9) can mark the burst window.
	Active bool
	// CapLimitW, when positive, is a power ceiling the environment enforces
	// beneath the scheduler: thermal or power-budget throttling clamps the
	// applied cap to min(chosen, CapLimitW). The stock Markov and Scripted
	// sources never set it; scenario traces (internal/scenario) do.
	CapLimitW float64
}

// Source yields one Effect per inference input.
type Source interface {
	Next() Effect
}

// Steady is the Default environment: no co-runner, unit slowdown.
type Steady struct{}

// Next implements Source.
func (Steady) Next() Effect { return Effect{Slowdown: 1} }

// params describes one co-runner class on one platform kind. The slowdown
// process is bimodal, matching how the evaluation actually perturbs the
// system ("a memory-intensive job that repeatedly gets stopped and then
// started"): while the co-runner is scheduled it imposes a roughly constant
// slowdown level — drawn per burst, since each burst lands on different
// cores/banks — plus small per-input jitter; while it is stopped the
// slowdown is 1. A feedback controller can lock onto the level within an
// input or two of each transition, which is exactly the single-input
// reaction the paper demonstrates in Figure 9.
type params struct {
	onMean, offMean float64 // sojourn times in inputs (geometric)
	mean            float64 // mean slowdown level while on
	levelSigma      float64 // across-burst spread of the level
	jitter          float64 // within-burst per-input jitter (AR residual)
	lo, hi          float64 // hard clamp, matching Fig. 11 support
	rho             float64 // AR(1) persistence of the jitter component
	extraPower      float64 // W while on
}

func scenarioParams(sc Scenario, kind platform.Kind) params {
	gpu := kind == platform.GPU
	switch sc {
	case Compute:
		if gpu {
			return params{onMean: 70, offMean: 60, mean: 1.18, levelSigma: 0.07,
				jitter: 0.012, lo: 1.04, hi: 1.42, rho: 0.6, extraPower: 35}
		}
		return params{onMean: 70, offMean: 60, mean: 1.38, levelSigma: 0.12,
			jitter: 0.022, lo: 1.10, hi: 1.70, rho: 0.6, extraPower: 9}
	case Memory:
		if gpu {
			return params{onMean: 70, offMean: 60, mean: 1.22, levelSigma: 0.09,
				jitter: 0.014, lo: 1.05, hi: 1.50, rho: 0.6, extraPower: 30}
		}
		return params{onMean: 70, offMean: 60, mean: 1.48, levelSigma: 0.16,
			jitter: 0.028, lo: 1.10, hi: 1.90, rho: 0.6, extraPower: 7}
	default:
		// Default still sees OS jitter: a persistent whisper of slowdown.
		return params{onMean: 1, offMean: 0, mean: 1.015, levelSigma: 0,
			jitter: 0.008, lo: 1.0, hi: 1.06, rho: 0.5, extraPower: 0}
	}
}

// Markov is the standard stop/start co-runner model.
type Markov struct {
	p     params
	rng   *mathx.Rand
	on    bool
	left  int     // inputs remaining in the current sojourn
	level float64 // constant slowdown level of the current burst
	jit   float64 // AR(1) jitter around the level
}

// NewSource builds the contention source for a scenario on a platform kind,
// seeded deterministically.
func NewSource(sc Scenario, kind platform.Kind, seed int64) Source {
	p := scenarioParams(sc, kind)
	if sc == Default {
		return &Markov{p: p, rng: mathx.NewRand(seed), on: true, left: 1 << 30, level: p.mean}
	}
	m := &Markov{p: p, rng: mathx.NewRand(seed), level: p.mean}
	// Start idle so every run begins in the profiled regime; the first
	// burst arrives after a geometric delay.
	m.on = false
	m.left = m.sojourn(p.offMean)
	return m
}

// NewActiveSource is NewSource with the co-runner initially scheduled:
// scenario contention phases use it so a phase labelled "compute" or
// "memory" actually begins with the co-runner present (it still stops and
// restarts within the phase), instead of idling through a geometric
// warm-up that can outlast a short phase entirely.
func NewActiveSource(sc Scenario, kind platform.Kind, seed int64) Source {
	if sc == Default {
		return NewSource(sc, kind, seed)
	}
	p := scenarioParams(sc, kind)
	m := &Markov{p: p, rng: mathx.NewRand(seed)}
	m.on = true
	m.left = m.sojourn(p.onMean)
	m.level = m.rng.TruncNormal(p.mean, p.levelSigma, p.lo+p.jitter*3, p.hi-p.jitter*3)
	return m
}

func (m *Markov) sojourn(mean float64) int {
	if mean <= 0 {
		return 1 << 30
	}
	n := int(m.rng.Exponential(mean)) + 1
	return n
}

// Next implements Source.
func (m *Markov) Next() Effect {
	if m.left <= 0 {
		m.on = !m.on
		if m.on {
			m.left = m.sojourn(m.p.onMean)
			m.level = m.rng.TruncNormal(m.p.mean, m.p.levelSigma, m.p.lo+m.p.jitter*3, m.p.hi-m.p.jitter*3)
			m.jit = 0
		} else {
			m.left = m.sojourn(m.p.offMean)
		}
	}
	m.left--
	if !m.on {
		return Effect{Slowdown: 1}
	}
	// Small AR(1) jitter around the burst's level keeps successive inputs
	// correlated without turning the level into an untrackable random walk.
	m.jit = m.p.rho*m.jit + m.p.jitter*m.rng.NormFloat64()
	s := mathx.Clamp(m.level+m.jit, m.p.lo, m.p.hi)
	return Effect{Slowdown: s, ExtraPower: m.p.extraPower, Active: m.p.extraPower > 0 || s > 1.06}
}

// Burst describes a scripted contention window over input indices
// [Start, End) — the mechanism behind Figure 9's reproducible trace, where
// memory contention occurs "from about input 46 to 119".
type Burst struct {
	Start, End int
	Scenario   Scenario
}

// Scripted replays a fixed schedule of bursts; outside every burst the
// environment is Default.
type Scripted struct {
	bursts []Burst
	kind   platform.Kind
	rng    *mathx.Rand
	idx    int
	// per-burst state
	level float64
	jit   float64
	inb   int // index of the burst we are inside, -1 otherwise
}

// NewScripted builds a scripted source.
func NewScripted(kind platform.Kind, seed int64, bursts ...Burst) *Scripted {
	return &Scripted{bursts: bursts, kind: kind, rng: mathx.NewRand(seed), inb: -1}
}

// Next implements Source.
func (s *Scripted) Next() Effect {
	i := s.idx
	s.idx++
	for bi, b := range s.bursts {
		if i >= b.Start && i < b.End {
			p := scenarioParams(b.Scenario, s.kind)
			if s.inb != bi {
				s.inb = bi
				s.level = s.rng.TruncNormal(p.mean, p.levelSigma, p.lo+p.jitter*3, p.hi-p.jitter*3)
				s.jit = 0
			}
			s.jit = p.rho*s.jit + p.jitter*s.rng.NormFloat64()
			lvl := mathx.Clamp(s.level+s.jit, p.lo, p.hi)
			return Effect{Slowdown: lvl, ExtraPower: p.extraPower, Active: true}
		}
	}
	s.inb = -1
	p := scenarioParams(Default, s.kind)
	lvl := mathx.Clamp(p.mean+p.jitter*s.rng.NormFloat64(), p.lo, p.hi)
	return Effect{Slowdown: lvl}
}
